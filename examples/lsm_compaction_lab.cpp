// LSM compaction lab: watch a leveled LSM-tree's shape and IO evolve as
// data streams in, and capture the device trace it induces.
//
// The paper's §1 groups LSM-trees with Bε-trees as the write-optimized
// dictionaries whose (large, DAM-invisible) unit sizes the affine model
// explains. This example makes the machinery tangible: level occupancy
// after each burst, compaction traffic, bloom-filter effectiveness, and
// the sequential-write pattern that makes LSM ingest fast on spinning
// disks — shown straight from the recorded IO trace.
//
//   ./examples/lsm_compaction_lab
#include <cstdio>

#include "damkit.h"

int main() {
  using namespace damkit;

  sim::HddDevice disk(sim::testbed_hdd_profile());
  sim::IoContext io(disk);
  sim::IoTrace trace;
  disk.set_trace(&trace);

  kv::EngineConfig config;
  config.lsm.memtable_bytes = 512 * kKiB;
  config.lsm.sstable_target_bytes = 1 * kMiB;
  config.lsm.level1_bytes = 4 * kMiB;
  config.lsm.size_ratio = 4.0;
  const auto db = kv::make_engine(kv::EngineKind::kLsm, disk, io, config);

  // Everything the old per-tree accessors exposed is in the metrics
  // export: level shapes as lsm.level<i>.* gauges, compaction and bloom
  // counters alongside them.
  const auto snapshot = [&db] {
    stats::MetricsRegistry reg;
    db->export_metrics(reg, "lsm.");
    return reg;
  };

  Rng rng(2024);
  constexpr uint64_t kBurst = 20'000;
  constexpr int kBursts = 6;

  std::printf("burst  levels: table counts        compactions  comp GB in/out  sim time\n");
  for (int burst = 1; burst <= kBursts; ++burst) {
    for (uint64_t i = 0; i < kBurst; ++i) {
      const uint64_t id = rng.uniform(1'000'000);
      db->put(kv::encode_key(id), kv::make_value(id, 100));
    }
    db->flush();
    const stats::MetricsRegistry reg = snapshot();
    std::string shape;
    for (size_t l = 0; l < db->height(); ++l) {
      const std::string gauge = "lsm.level" + std::to_string(l) + ".tables";
      shape += "L" + std::to_string(l) + ":" +
               std::to_string(static_cast<uint64_t>(reg.gauge(gauge))) + " ";
    }
    std::printf("%5d  %-28s %11llu  %6.2f/%.2f     %7.2fs\n", burst,
                shape.c_str(),
                static_cast<unsigned long long>(
                    reg.counter("lsm.compactions")),
                static_cast<double>(reg.counter("lsm.compaction_bytes_in")) /
                    1e9,
                static_cast<double>(reg.counter("lsm.compaction_bytes_out")) /
                    1e9,
                sim::to_seconds(io.now()));
  }

  // Point-query mix: uniform ids from the written range (~11% of the 1M
  // id space got written) plus guaranteed misses — misses are what bloom
  // filters exist for.
  Rng probe(77);
  uint64_t hits = 0;
  for (int q = 0; q < 2000; ++q) {
    const uint64_t id = (q % 2 == 0) ? probe.uniform(1'000'000)
                                     : 2'000'000 + probe.uniform(1'000'000);
    hits += db->get(kv::encode_key(id)).has_value() ? 1 : 0;
  }
  std::printf("\npoint queries: 2000 issued, %llu hits\n",
              static_cast<unsigned long long>(hits));

  const stats::MetricsRegistry reg = snapshot();
  const uint64_t bloom_negative = reg.counter("lsm.bloom_negative");
  const uint64_t table_probes = reg.counter("lsm.table_probes");
  std::printf("\nbloom filters: %llu of %llu table probes skipped "
              "(%.0f%%)\n",
              static_cast<unsigned long long>(bloom_negative),
              static_cast<unsigned long long>(table_probes),
              table_probes == 0
                  ? 0.0
                  : 100.0 * static_cast<double>(bloom_negative) /
                        static_cast<double>(table_probes));

  // What did the device actually see? LSM ingest is sequential writes.
  uint64_t write_ios = 0, write_bytes = 0;
  for (const auto& r : trace.records()) {
    if (r.kind == sim::IoKind::kWrite) {
      ++write_ios;
      write_bytes += r.length;
    }
  }
  std::printf("device trace: %zu IOs total; %llu writes averaging %s each; "
              "%.0f%% of consecutive IOs strictly sequential\n",
              trace.size(), static_cast<unsigned long long>(write_ios),
              format_bytes(write_ios == 0 ? 0 : write_bytes / write_ios)
                  .c_str(),
              trace.sequential_fraction() * 100.0);
  std::printf(
      "write amplification so far: %.1fx the logical insert volume\n",
      static_cast<double>(disk.stats().bytes_written) /
          (static_cast<double>(kBurst) * kBursts * 124.0));

  // Replay the same IO pattern on the paper's SSD testbed: the what-if a
  // trace makes possible.
  sim::SsdDevice ssd(sim::testbed_ssd_profile());
  const sim::SimTime ssd_time = sim::replay_trace(ssd, trace);
  std::printf("replaying this trace on the 860 EVO profile: %.2fs vs %.2fs "
              "on the HDD (%.1fx)\n",
              sim::to_seconds(ssd_time), sim::to_seconds(io.now()),
              sim::to_seconds(io.now()) / sim::to_seconds(ssd_time));
  return 0;
}
