// Concurrent queries on an SSD: the §8 design dilemma and its resolution.
//
// A database serves a *varying* number of query clients from one index.
// Small nodes waste device parallelism when clients are few; big plain
// nodes serialize clients when they are many. The van Emde Boas node
// layout serves every client count near-optimally with one layout.
//
//   ./examples/concurrent_queries
#include <algorithm>
#include <cstdio>
#include <vector>

#include "damkit.h"

int main() {
  using namespace damkit;

  // A 4M-key index on a P=16 device.
  Rng rng(5);
  std::vector<uint64_t> keys(1ULL << 21);
  for (auto& k : keys) k = rng.next() >> 1;
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  pdam_tree::PdamTreeConfig cfg;
  cfg.parallelism = 16;
  cfg.block_bytes = 1024;
  cfg.slot_bytes = 16;
  cfg.layout = pdam_tree::NodeLayout::kVeb;
  pdam_tree::PdamTreeConfig bfs_cfg = cfg;
  bfs_cfg.layout = pdam_tree::NodeLayout::kBfs;

  const std::vector<int> clients = {1, 2, 4, 8, 16};
  const harness::PdamQueryRun veb =
      harness::run_pdam_tree_queries(keys, cfg, clients, 500, 99);
  const harness::PdamQueryRun bfs =
      harness::run_pdam_tree_queries(keys, bfs_cfg, clients, 500, 99);

  std::printf("index: %llu keys, global height %d, PB-node height %d, "
              "%llu blocks per node, P = %d\n\n",
              static_cast<unsigned long long>(veb.keys), veb.global_height,
              veb.node_height,
              static_cast<unsigned long long>(veb.node_blocks),
              cfg.parallelism);

  std::printf("%8s %14s %14s %10s\n", "clients", "vEB q/step", "BFS q/step",
              "vEB gain");
  for (size_t i = 0; i < clients.size(); ++i) {
    const auto& rv = veb.points[i].result;
    const auto& rb = bfs.points[i].result;
    std::printf("%8d %14.3f %14.3f %9.2fx\n", clients[i], rv.throughput(),
                rb.throughput(), rv.throughput() / rb.throughput());
  }

  std::printf(
      "\nthe same tree adapts from k=1 (whole node prefetched per step — "
      "the big-node optimum) to k=P (one block per client per step — the "
      "small-node optimum) with no re-tuning; Lemma 13's throughput is "
      "Om(k / log_{PB/k} N).\n");

  // Oracle check: the step-driven clients answer the same queries as a
  // plain binary search (run_pdam_tree_queries probes both layouts).
  std::printf("\nsanity: lower_bound oracle %s\n",
              veb.oracle_ok && bfs.oracle_ok ? "ok" : "MISMATCH");
  return veb.oracle_ok && bfs.oracle_ok ? 0 : 1;
}
