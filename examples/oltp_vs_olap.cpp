// OLTP vs OLAP: why transaction-processing B-trees use small nodes and
// analytics B-trees use large ones (§5's explanation of database practice)
// — and how a Bε-tree serves both from one configuration.
//
// Two workloads over the same data on the same simulated disk:
//   OLTP: point queries + point inserts (latency per op matters)
//   OLAP: long range scans (bandwidth matters)
// Swept across node sizes for a B-tree, then compared with a Bε-tree.
//
//   ./examples/oltp_vs_olap
#include <cstdio>
#include <memory>

#include "damkit.h"

namespace {

using namespace damkit;

constexpr uint64_t kItems = 300'000;
constexpr size_t kValueBytes = 100;
constexpr uint64_t kPointOps = 400;
constexpr int kScans = 30;
constexpr uint32_t kScanLen = 20'000;

struct WorkloadCost {
  double oltp_ms_per_op;
  double olap_scan_mbps;  // effective scan bandwidth
};

WorkloadCost run(kv::Dictionary& tree, sim::IoContext& io, Rng& rng) {
  WorkloadCost out{};
  {
    const sim::SimTime before = io.now();
    for (uint64_t i = 0; i < kPointOps; ++i) {
      const uint64_t id = rng.uniform(kItems);
      if (i % 2 == 0) {
        (void)tree.get(kv::encode_key(id));
      } else {
        tree.put(kv::encode_key(id), kv::make_value(id ^ i, kValueBytes));
      }
    }
    out.oltp_ms_per_op =
        sim::to_seconds(io.now() - before) * 1e3 / kPointOps;
  }
  {
    const sim::SimTime before = io.now();
    uint64_t bytes = 0;
    for (int s = 0; s < kScans; ++s) {
      const uint64_t start = rng.uniform(kItems - kScanLen);
      const auto rows = tree.range_scan(kv::encode_key(start), kScanLen);
      for (const auto& [k, v] : rows) bytes += k.size() + v.size();
    }
    out.olap_scan_mbps =
        static_cast<double>(bytes) / sim::to_seconds(io.now() - before) / 1e6;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("data: %llu pairs x %zu B; cache = data/4; disk = paper "
              "testbed HDD\n\n",
              static_cast<unsigned long long>(kItems), kValueBytes);
  const uint64_t cache =
      kItems * (kValueBytes + 14) / 4;

  std::printf("%-12s %-10s %16s %18s\n", "structure", "node", "OLTP ms/op",
              "OLAP scan MB/s");
  for (const uint64_t node : {16 * kKiB, 128 * kKiB, 1 * kMiB}) {
    sim::HddDevice dev(sim::testbed_hdd_profile(), 7);
    sim::IoContext io(dev);
    kv::EngineConfig cfg;
    cfg.btree.node_bytes = node;
    cfg.btree.cache_bytes = std::max(cache, node * 4);
    const auto tree = kv::make_engine(kv::EngineKind::kBTree, dev, io, cfg);
    tree->bulk_load(kItems, [](uint64_t i) {
      return std::make_pair(kv::encode_key(i), kv::make_value(i, kValueBytes));
    });
    Rng rng(11);
    const WorkloadCost c = run(*tree, io, rng);
    std::printf("%-12s %-10s %16.2f %18.1f\n", "B-tree",
                format_bytes(node).c_str(), c.oltp_ms_per_op,
                c.olap_scan_mbps);
  }

  for (const uint64_t node : {1 * kMiB}) {
    sim::HddDevice dev(sim::testbed_hdd_profile(), 7);
    sim::IoContext io(dev);
    kv::EngineConfig cfg;
    cfg.betree.node_bytes = node;
    cfg.betree.cache_bytes = std::max(cache, node * 4);
    const auto tree = kv::make_engine(kv::EngineKind::kBeTree, dev, io, cfg);
    tree->bulk_load(kItems, [](uint64_t i) {
      return std::make_pair(kv::encode_key(i), kv::make_value(i, kValueBytes));
    });
    Rng rng(11);
    const WorkloadCost c = run(*tree, io, rng);
    std::printf("%-12s %-10s %16.2f %18.1f\n", "Be-tree",
                format_bytes(node).c_str(), c.oltp_ms_per_op,
                c.olap_scan_mbps);
  }

  std::printf(
      "\nreading the table: small B-tree nodes win OLTP but scan slowly; "
      "big nodes scan fast but make point ops expensive — the OLTP/OLAP "
      "dichotomy of §5. The Bε-tree with big nodes gets both: buffered "
      "writes keep point ops cheap while big leaves keep scans at near "
      "disk bandwidth.\n");
  return 0;
}
