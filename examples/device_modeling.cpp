// Device modeling: fit the affine and PDAM models to unknown hardware.
//
// Given a device (here: simulated, but the workflow is the paper's §4
// methodology verbatim), run the two microbenchmarks, regress, and print
// the recovered model parameters plus the derived design guidance:
// half-bandwidth point, optimal B-tree node size (Corollary 7), and the
// Corollary-12 Bε-tree configuration.
//
//   ./examples/device_modeling
#include <cstdio>

#include "damkit.h"

int main() {
  using namespace damkit;

  // --- An HDD we pretend to know nothing about. ---
  sim::HddConfig mystery_hdd = sim::make_hdd_profile(
      "mystery disk", 2015, 1024ULL * kGiB, 7200.0, 0.0135, 0.000030);

  harness::AffineExperimentConfig acfg;
  acfg.reads_per_size = 64;
  const auto affine = harness::run_affine_experiment(mystery_hdd, acfg);
  std::printf("affine fit: s = %.4f s, t = %.1f us/4KiB, alpha = %.4f, "
              "R^2 = %.4f\n",
              affine.fit.s, affine.fit.t_per_4k * 1e6, affine.fit.alpha,
              affine.fit.r2);

  // Design guidance from the fit. The model's unit is one dictionary
  // element; convert the fitted per-byte cost to per-element with the
  // workload's entry size (the paper's analyses are element-based).
  constexpr double kEntryBytes = 128.0;
  const double alpha =
      affine.fit.t_per_byte * kEntryBytes / affine.fit.s;  // per element
  const auto to_bytes = [](double elements) {
    return format_bytes(static_cast<uint64_t>(elements * kEntryBytes));
  };
  std::printf("half-bandwidth point (Cor 6): %s\n",
              to_bytes(1.0 / alpha).c_str());
  const double opt_btree = model::optimal_btree_node_size(alpha);
  std::printf("optimal B-tree node (Cor 7): %s  <-- well below the "
              "half-bandwidth point, as real OLTP systems choose\n",
              to_bytes(opt_btree).c_str());
  const model::OptimalBetreeChoice choice = model::optimal_betree_choice(alpha);
  std::printf("Cor 12 Be-tree: F = %.0f, node = %s  <-- node near the "
              "*square* of the B-tree optimum; this is why TokuDB pairs "
              "huge nodes with basement sub-nodes\n",
              choice.fanout, to_bytes(choice.node_size).c_str());

  // --- An SSD. ---
  sim::SsdConfig mystery_ssd = sim::make_ssd_profile(
      "mystery ssd", 512ULL * kGiB, 4, 8, 4096, 900.0, 4.0, 15e-6);
  harness::PdamExperimentConfig pcfg;
  pcfg.bytes_per_thread = 256ULL * kMiB;
  const auto pdam = harness::run_pdam_experiment(mystery_ssd, pcfg);
  std::printf("\nPDAM fit: P = %.1f, saturated = %.0f MB/s, R^2 = %.3f\n",
              pdam.fit.p, pdam.fit.saturated_mbps, pdam.fit.r2);
  std::printf("guidance: keep >= %.0f IOs outstanding to saturate the "
              "device; a single thread wastes %.0f%% of its bandwidth\n",
              pdam.fit.p,
              100.0 * (1.0 - 1.0 / pdam.fit.p));

  // Model-vs-measurement table, like Figure 1.
  std::printf("\nthreads  measured(s)  PDAM(s)  DAM(s)\n");
  const model::PdamModel m(pdam.fit.p, pcfg.io_bytes,
                           pcfg.io_bytes / (pdam.fit.saturated_mbps * 1e6 /
                                            pdam.fit.p));
  for (const auto& s : pdam.samples) {
    const uint64_t ios = pcfg.bytes_per_thread / pcfg.io_bytes;
    std::printf("%7d  %11.2f  %7.2f  %6.2f\n", s.threads, s.seconds,
                m.predicted_seconds(s.threads, ios),
                m.dam_predicted_seconds(s.threads, ios));
  }
  return 0;
}
