// Quickstart: a write-optimized key-value store on a simulated hard disk.
//
// Creates a simulated HDD, mounts a Bε-tree on it, performs inserts,
// point queries, a blind counter update, a delete, and a range scan, and
// prints how much *simulated device time* each phase cost — the quantity
// every damkit experiment is built around.
//
//   ./examples/quickstart
#include <cstdio>

#include "damkit.h"

int main() {
  using namespace damkit;

  // 1. A storage device. Profiles matching the paper's testbed are built
  // in; any HddConfig/SsdConfig works.
  sim::HddDevice disk(sim::testbed_hdd_profile());
  sim::IoContext io(disk);  // tracks one client's simulated clock

  // 2. A dictionary on the device, built through the EngineFactory: node
  // size B, fanout F ≈ √B, and a RAM budget (the cache is the M of the
  // external-memory models). Swap the EngineKind and the same program
  // runs on any of the five trees.
  kv::EngineConfig config;
  config.betree.node_bytes = 1 * kMiB;
  config.betree.cache_bytes = 16 * kMiB;
  const auto db = kv::make_engine(kv::EngineKind::kBeTree, disk, io, config);

  // 3. Writes are messages: cheap, batched, flushed down in bulk.
  const sim::SimTime t0 = io.now();
  for (uint64_t i = 0; i < 50'000; ++i) {
    db->put(kv::encode_key(i), kv::make_value(i, 64));
  }
  db->flush();
  const sim::SimTime t1 = io.now();
  std::printf("insert 50k pairs: %.3f simulated seconds (%.1f us/op)\n",
              sim::to_seconds(t1 - t0),
              sim::to_seconds(t1 - t0) * 1e6 / 50'000);

  // 4. Point queries see every pending message on the root-leaf path.
  const auto hit = db->get(kv::encode_key(123));
  std::printf("get(123): %s\n", hit.has_value() ? "found" : "MISSING");
  const auto miss = db->get(kv::encode_key(999'999));
  std::printf("get(999999): %s\n", miss.has_value() ? "FOUND?!" : "absent");

  // 5. Upserts are blind read-modify-writes — no read IO at all.
  for (int i = 0; i < 1000; ++i) db->upsert("page-views", 1);
  std::printf("page-views counter: %llu\n",
              static_cast<unsigned long long>(
                  betree::decode_counter(*db->get("page-views"))));

  // 6. Deletes are tombstone messages.
  db->erase(kv::encode_key(123));
  std::printf("get(123) after erase: %s\n",
              db->get(kv::encode_key(123)).has_value() ? "FOUND?!" : "absent");

  // 7. Range scans merge leaf data with buffered messages.
  const auto range = db->range_scan(kv::encode_key(1000), 5);
  std::printf("scan from 1000, 5 results:\n");
  for (const auto& [k, v] : range) {
    std::printf("  key %llu, value[0..8)=%.8s\n",
                static_cast<unsigned long long>(kv::decode_key(k)),
                v.c_str());
  }

  // 8. Device-side accounting.
  const sim::DeviceStats& ds = disk.stats();
  std::printf(
      "device: %llu reads / %llu writes, %s read, %s written, cache hit "
      "rate %.1f%%\n",
      static_cast<unsigned long long>(ds.reads),
      static_cast<unsigned long long>(ds.writes),
      format_bytes(ds.bytes_read).c_str(),
      format_bytes(ds.bytes_written).c_str(),
      db->cache_hit_rate() * 100.0);
  return 0;
}
