# Empty dependencies file for damkit_cli.
# This may be replaced when dependencies are built.
