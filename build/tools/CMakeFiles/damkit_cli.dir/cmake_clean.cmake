file(REMOVE_RECURSE
  "CMakeFiles/damkit_cli.dir/damkit_cli.cpp.o"
  "CMakeFiles/damkit_cli.dir/damkit_cli.cpp.o.d"
  "damkit"
  "damkit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
