# Empty dependencies file for concurrent_queries.
# This may be replaced when dependencies are built.
