file(REMOVE_RECURSE
  "CMakeFiles/concurrent_queries.dir/concurrent_queries.cpp.o"
  "CMakeFiles/concurrent_queries.dir/concurrent_queries.cpp.o.d"
  "concurrent_queries"
  "concurrent_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/concurrent_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
