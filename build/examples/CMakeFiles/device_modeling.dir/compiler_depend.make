# Empty compiler generated dependencies file for device_modeling.
# This may be replaced when dependencies are built.
