file(REMOVE_RECURSE
  "CMakeFiles/device_modeling.dir/device_modeling.cpp.o"
  "CMakeFiles/device_modeling.dir/device_modeling.cpp.o.d"
  "device_modeling"
  "device_modeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_modeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
