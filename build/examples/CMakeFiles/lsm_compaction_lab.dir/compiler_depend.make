# Empty compiler generated dependencies file for lsm_compaction_lab.
# This may be replaced when dependencies are built.
