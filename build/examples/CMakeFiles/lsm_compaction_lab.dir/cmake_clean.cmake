file(REMOVE_RECURSE
  "CMakeFiles/lsm_compaction_lab.dir/lsm_compaction_lab.cpp.o"
  "CMakeFiles/lsm_compaction_lab.dir/lsm_compaction_lab.cpp.o.d"
  "lsm_compaction_lab"
  "lsm_compaction_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_compaction_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
