file(REMOVE_RECURSE
  "CMakeFiles/oltp_vs_olap.dir/oltp_vs_olap.cpp.o"
  "CMakeFiles/oltp_vs_olap.dir/oltp_vs_olap.cpp.o.d"
  "oltp_vs_olap"
  "oltp_vs_olap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_vs_olap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
