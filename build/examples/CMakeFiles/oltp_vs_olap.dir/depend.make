# Empty dependencies file for oltp_vs_olap.
# This may be replaced when dependencies are built.
