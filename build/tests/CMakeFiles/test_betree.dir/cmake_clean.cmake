file(REMOVE_RECURSE
  "CMakeFiles/test_betree.dir/betree/betree_node_fuzz_test.cpp.o"
  "CMakeFiles/test_betree.dir/betree/betree_node_fuzz_test.cpp.o.d"
  "CMakeFiles/test_betree.dir/betree/betree_node_test.cpp.o"
  "CMakeFiles/test_betree.dir/betree/betree_node_test.cpp.o.d"
  "CMakeFiles/test_betree.dir/betree/betree_property_test.cpp.o"
  "CMakeFiles/test_betree.dir/betree/betree_property_test.cpp.o.d"
  "CMakeFiles/test_betree.dir/betree/betree_test.cpp.o"
  "CMakeFiles/test_betree.dir/betree/betree_test.cpp.o.d"
  "CMakeFiles/test_betree.dir/betree/message_test.cpp.o"
  "CMakeFiles/test_betree.dir/betree/message_test.cpp.o.d"
  "test_betree"
  "test_betree.pdb"
  "test_betree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_betree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
