# Empty dependencies file for test_betree.
# This may be replaced when dependencies are built.
