file(REMOVE_RECURSE
  "CMakeFiles/test_cache.dir/blockdev/block_device_test.cpp.o"
  "CMakeFiles/test_cache.dir/blockdev/block_device_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/blockdev/byte_arena_test.cpp.o"
  "CMakeFiles/test_cache.dir/blockdev/byte_arena_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/blockdev/extent_allocator_test.cpp.o"
  "CMakeFiles/test_cache.dir/blockdev/extent_allocator_test.cpp.o.d"
  "CMakeFiles/test_cache.dir/cache/buffer_pool_test.cpp.o"
  "CMakeFiles/test_cache.dir/cache/buffer_pool_test.cpp.o.d"
  "test_cache"
  "test_cache.pdb"
  "test_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
