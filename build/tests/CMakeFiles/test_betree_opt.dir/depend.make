# Empty dependencies file for test_betree_opt.
# This may be replaced when dependencies are built.
