file(REMOVE_RECURSE
  "CMakeFiles/test_betree_opt.dir/betree_opt/opt_betree_test.cpp.o"
  "CMakeFiles/test_betree_opt.dir/betree_opt/opt_betree_test.cpp.o.d"
  "test_betree_opt"
  "test_betree_opt.pdb"
  "test_betree_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_betree_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
