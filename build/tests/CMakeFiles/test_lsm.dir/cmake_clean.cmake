file(REMOVE_RECURSE
  "CMakeFiles/test_lsm.dir/lsm/lsm_property_test.cpp.o"
  "CMakeFiles/test_lsm.dir/lsm/lsm_property_test.cpp.o.d"
  "CMakeFiles/test_lsm.dir/lsm/lsm_tree_test.cpp.o"
  "CMakeFiles/test_lsm.dir/lsm/lsm_tree_test.cpp.o.d"
  "CMakeFiles/test_lsm.dir/lsm/memtable_test.cpp.o"
  "CMakeFiles/test_lsm.dir/lsm/memtable_test.cpp.o.d"
  "CMakeFiles/test_lsm.dir/lsm/sstable_test.cpp.o"
  "CMakeFiles/test_lsm.dir/lsm/sstable_test.cpp.o.d"
  "test_lsm"
  "test_lsm.pdb"
  "test_lsm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
