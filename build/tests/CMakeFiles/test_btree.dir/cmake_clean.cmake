file(REMOVE_RECURSE
  "CMakeFiles/test_btree.dir/btree/btree_churn_property_test.cpp.o"
  "CMakeFiles/test_btree.dir/btree/btree_churn_property_test.cpp.o.d"
  "CMakeFiles/test_btree.dir/btree/btree_node_test.cpp.o"
  "CMakeFiles/test_btree.dir/btree/btree_node_test.cpp.o.d"
  "CMakeFiles/test_btree.dir/btree/btree_property_test.cpp.o"
  "CMakeFiles/test_btree.dir/btree/btree_property_test.cpp.o.d"
  "CMakeFiles/test_btree.dir/btree/btree_test.cpp.o"
  "CMakeFiles/test_btree.dir/btree/btree_test.cpp.o.d"
  "test_btree"
  "test_btree.pdb"
  "test_btree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
