file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/closed_loop_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/closed_loop_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/hdd_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/hdd_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/memstore_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/memstore_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/profile_fit_property_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/profile_fit_property_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/profiles_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/profiles_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/scheduler_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/scheduler_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/ssd_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/ssd_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/trace_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/trace_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
