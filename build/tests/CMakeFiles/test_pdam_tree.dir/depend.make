# Empty dependencies file for test_pdam_tree.
# This may be replaced when dependencies are built.
