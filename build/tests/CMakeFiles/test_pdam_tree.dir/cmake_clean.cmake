file(REMOVE_RECURSE
  "CMakeFiles/test_pdam_tree.dir/pdam_tree/pdam_btree_test.cpp.o"
  "CMakeFiles/test_pdam_tree.dir/pdam_tree/pdam_btree_test.cpp.o.d"
  "CMakeFiles/test_pdam_tree.dir/pdam_tree/veb_layout_test.cpp.o"
  "CMakeFiles/test_pdam_tree.dir/pdam_tree/veb_layout_test.cpp.o.d"
  "test_pdam_tree"
  "test_pdam_tree.pdb"
  "test_pdam_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdam_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
