# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_kv[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_lsm[1]_include.cmake")
include("/root/repo/build/tests/test_btree[1]_include.cmake")
include("/root/repo/build/tests/test_betree[1]_include.cmake")
include("/root/repo/build/tests/test_betree_opt[1]_include.cmake")
include("/root/repo/build/tests/test_pdam_tree[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
