# Empty compiler generated dependencies file for bench_disk_scheduling.
# This may be replaced when dependencies are built.
