file(REMOVE_RECURSE
  "../bench/bench_disk_scheduling"
  "../bench/bench_disk_scheduling.pdb"
  "CMakeFiles/bench_disk_scheduling.dir/bench_disk_scheduling.cpp.o"
  "CMakeFiles/bench_disk_scheduling.dir/bench_disk_scheduling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disk_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
