file(REMOVE_RECURSE
  "../bench/bench_aging"
  "../bench/bench_aging.pdb"
  "CMakeFiles/bench_aging.dir/bench_aging.cpp.o"
  "CMakeFiles/bench_aging.dir/bench_aging.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
