# Empty dependencies file for bench_lemma13_pdam_btree.
# This may be replaced when dependencies are built.
