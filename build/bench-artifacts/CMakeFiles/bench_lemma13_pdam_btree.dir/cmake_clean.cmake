file(REMOVE_RECURSE
  "../bench/bench_lemma13_pdam_btree"
  "../bench/bench_lemma13_pdam_btree.pdb"
  "CMakeFiles/bench_lemma13_pdam_btree.dir/bench_lemma13_pdam_btree.cpp.o"
  "CMakeFiles/bench_lemma13_pdam_btree.dir/bench_lemma13_pdam_btree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lemma13_pdam_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
