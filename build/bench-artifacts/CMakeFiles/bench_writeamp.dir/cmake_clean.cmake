file(REMOVE_RECURSE
  "../bench/bench_writeamp"
  "../bench/bench_writeamp.pdb"
  "CMakeFiles/bench_writeamp.dir/bench_writeamp.cpp.o"
  "CMakeFiles/bench_writeamp.dir/bench_writeamp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_writeamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
