# Empty compiler generated dependencies file for bench_writeamp.
# This may be replaced when dependencies are built.
