# Empty dependencies file for bench_shootout.
# This may be replaced when dependencies are built.
