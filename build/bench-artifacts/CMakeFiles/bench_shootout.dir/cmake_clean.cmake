file(REMOVE_RECURSE
  "../bench/bench_shootout"
  "../bench/bench_shootout.pdb"
  "CMakeFiles/bench_shootout.dir/bench_shootout.cpp.o"
  "CMakeFiles/bench_shootout.dir/bench_shootout.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
