file(REMOVE_RECURSE
  "../bench/bench_opt_betree"
  "../bench/bench_opt_betree.pdb"
  "CMakeFiles/bench_opt_betree.dir/bench_opt_betree.cpp.o"
  "CMakeFiles/bench_opt_betree.dir/bench_opt_betree.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_opt_betree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
