# Empty dependencies file for bench_opt_betree.
# This may be replaced when dependencies are built.
