# Empty compiler generated dependencies file for bench_dam_accuracy.
# This may be replaced when dependencies are built.
