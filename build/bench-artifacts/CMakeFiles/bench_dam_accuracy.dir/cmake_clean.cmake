file(REMOVE_RECURSE
  "../bench/bench_dam_accuracy"
  "../bench/bench_dam_accuracy.pdb"
  "CMakeFiles/bench_dam_accuracy.dir/bench_dam_accuracy.cpp.o"
  "CMakeFiles/bench_dam_accuracy.dir/bench_dam_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dam_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
