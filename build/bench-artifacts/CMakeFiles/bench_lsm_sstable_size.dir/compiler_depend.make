# Empty compiler generated dependencies file for bench_lsm_sstable_size.
# This may be replaced when dependencies are built.
