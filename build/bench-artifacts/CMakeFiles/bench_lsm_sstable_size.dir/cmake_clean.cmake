file(REMOVE_RECURSE
  "../bench/bench_lsm_sstable_size"
  "../bench/bench_lsm_sstable_size.pdb"
  "CMakeFiles/bench_lsm_sstable_size.dir/bench_lsm_sstable_size.cpp.o"
  "CMakeFiles/bench_lsm_sstable_size.dir/bench_lsm_sstable_size.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lsm_sstable_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
