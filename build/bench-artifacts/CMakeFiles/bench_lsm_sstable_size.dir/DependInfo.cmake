
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_lsm_sstable_size.cpp" "bench-artifacts/CMakeFiles/bench_lsm_sstable_size.dir/bench_lsm_sstable_size.cpp.o" "gcc" "bench-artifacts/CMakeFiles/bench_lsm_sstable_size.dir/bench_lsm_sstable_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/damkit_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_betree_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_betree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_pdam_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_model.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
