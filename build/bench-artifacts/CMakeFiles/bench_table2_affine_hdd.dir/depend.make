# Empty dependencies file for bench_table2_affine_hdd.
# This may be replaced when dependencies are built.
