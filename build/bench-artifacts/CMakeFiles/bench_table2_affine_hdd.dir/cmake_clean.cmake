file(REMOVE_RECURSE
  "../bench/bench_table2_affine_hdd"
  "../bench/bench_table2_affine_hdd.pdb"
  "CMakeFiles/bench_table2_affine_hdd.dir/bench_table2_affine_hdd.cpp.o"
  "CMakeFiles/bench_table2_affine_hdd.dir/bench_table2_affine_hdd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_affine_hdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
