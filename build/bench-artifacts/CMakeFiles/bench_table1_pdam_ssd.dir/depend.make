# Empty dependencies file for bench_table1_pdam_ssd.
# This may be replaced when dependencies are built.
