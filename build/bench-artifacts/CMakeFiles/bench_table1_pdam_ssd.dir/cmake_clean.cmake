file(REMOVE_RECURSE
  "../bench/bench_table1_pdam_ssd"
  "../bench/bench_table1_pdam_ssd.pdb"
  "CMakeFiles/bench_table1_pdam_ssd.dir/bench_table1_pdam_ssd.cpp.o"
  "CMakeFiles/bench_table1_pdam_ssd.dir/bench_table1_pdam_ssd.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_pdam_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
