file(REMOVE_RECURSE
  "../bench/bench_table3_sensitivity"
  "../bench/bench_table3_sensitivity.pdb"
  "CMakeFiles/bench_table3_sensitivity.dir/bench_table3_sensitivity.cpp.o"
  "CMakeFiles/bench_table3_sensitivity.dir/bench_table3_sensitivity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
