# Empty dependencies file for bench_fig3_betree_nodesize.
# This may be replaced when dependencies are built.
