file(REMOVE_RECURSE
  "../bench/bench_fig3_betree_nodesize"
  "../bench/bench_fig3_betree_nodesize.pdb"
  "CMakeFiles/bench_fig3_betree_nodesize.dir/bench_fig3_betree_nodesize.cpp.o"
  "CMakeFiles/bench_fig3_betree_nodesize.dir/bench_fig3_betree_nodesize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_betree_nodesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
