file(REMOVE_RECURSE
  "../bench/bench_fig2_btree_nodesize"
  "../bench/bench_fig2_btree_nodesize.pdb"
  "CMakeFiles/bench_fig2_btree_nodesize.dir/bench_fig2_btree_nodesize.cpp.o"
  "CMakeFiles/bench_fig2_btree_nodesize.dir/bench_fig2_btree_nodesize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_btree_nodesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
