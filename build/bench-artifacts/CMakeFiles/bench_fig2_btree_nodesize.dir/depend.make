# Empty dependencies file for bench_fig2_btree_nodesize.
# This may be replaced when dependencies are built.
