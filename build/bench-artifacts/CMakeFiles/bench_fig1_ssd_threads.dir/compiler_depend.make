# Empty compiler generated dependencies file for bench_fig1_ssd_threads.
# This may be replaced when dependencies are built.
