file(REMOVE_RECURSE
  "../bench/bench_fig1_ssd_threads"
  "../bench/bench_fig1_ssd_threads.pdb"
  "CMakeFiles/bench_fig1_ssd_threads.dir/bench_fig1_ssd_threads.cpp.o"
  "CMakeFiles/bench_fig1_ssd_threads.dir/bench_fig1_ssd_threads.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ssd_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
