file(REMOVE_RECURSE
  "CMakeFiles/damkit_betree.dir/betree/betree.cpp.o"
  "CMakeFiles/damkit_betree.dir/betree/betree.cpp.o.d"
  "CMakeFiles/damkit_betree.dir/betree/betree_node.cpp.o"
  "CMakeFiles/damkit_betree.dir/betree/betree_node.cpp.o.d"
  "CMakeFiles/damkit_betree.dir/betree/message.cpp.o"
  "CMakeFiles/damkit_betree.dir/betree/message.cpp.o.d"
  "libdamkit_betree.a"
  "libdamkit_betree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_betree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
