file(REMOVE_RECURSE
  "libdamkit_betree.a"
)
