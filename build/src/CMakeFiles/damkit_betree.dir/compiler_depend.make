# Empty compiler generated dependencies file for damkit_betree.
# This may be replaced when dependencies are built.
