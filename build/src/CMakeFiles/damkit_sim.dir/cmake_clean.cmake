file(REMOVE_RECURSE
  "CMakeFiles/damkit_sim.dir/sim/closed_loop.cpp.o"
  "CMakeFiles/damkit_sim.dir/sim/closed_loop.cpp.o.d"
  "CMakeFiles/damkit_sim.dir/sim/device.cpp.o"
  "CMakeFiles/damkit_sim.dir/sim/device.cpp.o.d"
  "CMakeFiles/damkit_sim.dir/sim/hdd.cpp.o"
  "CMakeFiles/damkit_sim.dir/sim/hdd.cpp.o.d"
  "CMakeFiles/damkit_sim.dir/sim/memstore.cpp.o"
  "CMakeFiles/damkit_sim.dir/sim/memstore.cpp.o.d"
  "CMakeFiles/damkit_sim.dir/sim/profiles.cpp.o"
  "CMakeFiles/damkit_sim.dir/sim/profiles.cpp.o.d"
  "CMakeFiles/damkit_sim.dir/sim/scheduler.cpp.o"
  "CMakeFiles/damkit_sim.dir/sim/scheduler.cpp.o.d"
  "CMakeFiles/damkit_sim.dir/sim/ssd.cpp.o"
  "CMakeFiles/damkit_sim.dir/sim/ssd.cpp.o.d"
  "CMakeFiles/damkit_sim.dir/sim/trace.cpp.o"
  "CMakeFiles/damkit_sim.dir/sim/trace.cpp.o.d"
  "libdamkit_sim.a"
  "libdamkit_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
