# Empty dependencies file for damkit_sim.
# This may be replaced when dependencies are built.
