
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/closed_loop.cpp" "src/CMakeFiles/damkit_sim.dir/sim/closed_loop.cpp.o" "gcc" "src/CMakeFiles/damkit_sim.dir/sim/closed_loop.cpp.o.d"
  "/root/repo/src/sim/device.cpp" "src/CMakeFiles/damkit_sim.dir/sim/device.cpp.o" "gcc" "src/CMakeFiles/damkit_sim.dir/sim/device.cpp.o.d"
  "/root/repo/src/sim/hdd.cpp" "src/CMakeFiles/damkit_sim.dir/sim/hdd.cpp.o" "gcc" "src/CMakeFiles/damkit_sim.dir/sim/hdd.cpp.o.d"
  "/root/repo/src/sim/memstore.cpp" "src/CMakeFiles/damkit_sim.dir/sim/memstore.cpp.o" "gcc" "src/CMakeFiles/damkit_sim.dir/sim/memstore.cpp.o.d"
  "/root/repo/src/sim/profiles.cpp" "src/CMakeFiles/damkit_sim.dir/sim/profiles.cpp.o" "gcc" "src/CMakeFiles/damkit_sim.dir/sim/profiles.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/damkit_sim.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/damkit_sim.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/ssd.cpp" "src/CMakeFiles/damkit_sim.dir/sim/ssd.cpp.o" "gcc" "src/CMakeFiles/damkit_sim.dir/sim/ssd.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/damkit_sim.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/damkit_sim.dir/sim/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/damkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
