file(REMOVE_RECURSE
  "libdamkit_sim.a"
)
