file(REMOVE_RECURSE
  "libdamkit_harness.a"
)
