# Empty dependencies file for damkit_harness.
# This may be replaced when dependencies are built.
