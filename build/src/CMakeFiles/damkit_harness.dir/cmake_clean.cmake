file(REMOVE_RECURSE
  "CMakeFiles/damkit_harness.dir/harness/experiments.cpp.o"
  "CMakeFiles/damkit_harness.dir/harness/experiments.cpp.o.d"
  "CMakeFiles/damkit_harness.dir/harness/fitting.cpp.o"
  "CMakeFiles/damkit_harness.dir/harness/fitting.cpp.o.d"
  "CMakeFiles/damkit_harness.dir/harness/report.cpp.o"
  "CMakeFiles/damkit_harness.dir/harness/report.cpp.o.d"
  "libdamkit_harness.a"
  "libdamkit_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
