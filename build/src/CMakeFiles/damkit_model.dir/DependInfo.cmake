
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/affine.cpp" "src/CMakeFiles/damkit_model.dir/model/affine.cpp.o" "gcc" "src/CMakeFiles/damkit_model.dir/model/affine.cpp.o.d"
  "/root/repo/src/model/dam.cpp" "src/CMakeFiles/damkit_model.dir/model/dam.cpp.o" "gcc" "src/CMakeFiles/damkit_model.dir/model/dam.cpp.o.d"
  "/root/repo/src/model/optimize.cpp" "src/CMakeFiles/damkit_model.dir/model/optimize.cpp.o" "gcc" "src/CMakeFiles/damkit_model.dir/model/optimize.cpp.o.d"
  "/root/repo/src/model/pdam.cpp" "src/CMakeFiles/damkit_model.dir/model/pdam.cpp.o" "gcc" "src/CMakeFiles/damkit_model.dir/model/pdam.cpp.o.d"
  "/root/repo/src/model/tree_costs.cpp" "src/CMakeFiles/damkit_model.dir/model/tree_costs.cpp.o" "gcc" "src/CMakeFiles/damkit_model.dir/model/tree_costs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/damkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
