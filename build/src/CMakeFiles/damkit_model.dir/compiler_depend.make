# Empty compiler generated dependencies file for damkit_model.
# This may be replaced when dependencies are built.
