file(REMOVE_RECURSE
  "CMakeFiles/damkit_model.dir/model/affine.cpp.o"
  "CMakeFiles/damkit_model.dir/model/affine.cpp.o.d"
  "CMakeFiles/damkit_model.dir/model/dam.cpp.o"
  "CMakeFiles/damkit_model.dir/model/dam.cpp.o.d"
  "CMakeFiles/damkit_model.dir/model/optimize.cpp.o"
  "CMakeFiles/damkit_model.dir/model/optimize.cpp.o.d"
  "CMakeFiles/damkit_model.dir/model/pdam.cpp.o"
  "CMakeFiles/damkit_model.dir/model/pdam.cpp.o.d"
  "CMakeFiles/damkit_model.dir/model/tree_costs.cpp.o"
  "CMakeFiles/damkit_model.dir/model/tree_costs.cpp.o.d"
  "libdamkit_model.a"
  "libdamkit_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
