file(REMOVE_RECURSE
  "libdamkit_model.a"
)
