file(REMOVE_RECURSE
  "CMakeFiles/damkit_pdam_tree.dir/pdam_tree/pdam_btree.cpp.o"
  "CMakeFiles/damkit_pdam_tree.dir/pdam_tree/pdam_btree.cpp.o.d"
  "CMakeFiles/damkit_pdam_tree.dir/pdam_tree/veb_layout.cpp.o"
  "CMakeFiles/damkit_pdam_tree.dir/pdam_tree/veb_layout.cpp.o.d"
  "libdamkit_pdam_tree.a"
  "libdamkit_pdam_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_pdam_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
