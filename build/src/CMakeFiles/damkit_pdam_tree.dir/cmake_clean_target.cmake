file(REMOVE_RECURSE
  "libdamkit_pdam_tree.a"
)
