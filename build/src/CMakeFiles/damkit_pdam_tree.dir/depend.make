# Empty dependencies file for damkit_pdam_tree.
# This may be replaced when dependencies are built.
