file(REMOVE_RECURSE
  "CMakeFiles/damkit_cache.dir/cache/buffer_pool.cpp.o"
  "CMakeFiles/damkit_cache.dir/cache/buffer_pool.cpp.o.d"
  "libdamkit_cache.a"
  "libdamkit_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
