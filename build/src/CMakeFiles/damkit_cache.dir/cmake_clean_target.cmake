file(REMOVE_RECURSE
  "libdamkit_cache.a"
)
