# Empty dependencies file for damkit_cache.
# This may be replaced when dependencies are built.
