# Empty dependencies file for damkit_blockdev.
# This may be replaced when dependencies are built.
