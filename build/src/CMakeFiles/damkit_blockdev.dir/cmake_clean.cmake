file(REMOVE_RECURSE
  "CMakeFiles/damkit_blockdev.dir/blockdev/block_device.cpp.o"
  "CMakeFiles/damkit_blockdev.dir/blockdev/block_device.cpp.o.d"
  "CMakeFiles/damkit_blockdev.dir/blockdev/extent_allocator.cpp.o"
  "CMakeFiles/damkit_blockdev.dir/blockdev/extent_allocator.cpp.o.d"
  "libdamkit_blockdev.a"
  "libdamkit_blockdev.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_blockdev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
