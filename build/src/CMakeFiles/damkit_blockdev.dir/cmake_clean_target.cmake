file(REMOVE_RECURSE
  "libdamkit_blockdev.a"
)
