file(REMOVE_RECURSE
  "libdamkit_util.a"
)
