file(REMOVE_RECURSE
  "CMakeFiles/damkit_util.dir/util/bloom.cpp.o"
  "CMakeFiles/damkit_util.dir/util/bloom.cpp.o.d"
  "CMakeFiles/damkit_util.dir/util/bytes.cpp.o"
  "CMakeFiles/damkit_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/damkit_util.dir/util/histogram.cpp.o"
  "CMakeFiles/damkit_util.dir/util/histogram.cpp.o.d"
  "CMakeFiles/damkit_util.dir/util/rng.cpp.o"
  "CMakeFiles/damkit_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/damkit_util.dir/util/stats.cpp.o"
  "CMakeFiles/damkit_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/damkit_util.dir/util/status.cpp.o"
  "CMakeFiles/damkit_util.dir/util/status.cpp.o.d"
  "CMakeFiles/damkit_util.dir/util/table.cpp.o"
  "CMakeFiles/damkit_util.dir/util/table.cpp.o.d"
  "libdamkit_util.a"
  "libdamkit_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
