# Empty dependencies file for damkit_util.
# This may be replaced when dependencies are built.
