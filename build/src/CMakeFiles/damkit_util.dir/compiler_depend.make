# Empty compiler generated dependencies file for damkit_util.
# This may be replaced when dependencies are built.
