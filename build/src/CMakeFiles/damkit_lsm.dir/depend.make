# Empty dependencies file for damkit_lsm.
# This may be replaced when dependencies are built.
