file(REMOVE_RECURSE
  "CMakeFiles/damkit_lsm.dir/lsm/lsm_tree.cpp.o"
  "CMakeFiles/damkit_lsm.dir/lsm/lsm_tree.cpp.o.d"
  "CMakeFiles/damkit_lsm.dir/lsm/sstable.cpp.o"
  "CMakeFiles/damkit_lsm.dir/lsm/sstable.cpp.o.d"
  "libdamkit_lsm.a"
  "libdamkit_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
