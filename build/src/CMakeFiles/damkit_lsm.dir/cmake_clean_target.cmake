file(REMOVE_RECURSE
  "libdamkit_lsm.a"
)
