# Empty compiler generated dependencies file for damkit_lsm.
# This may be replaced when dependencies are built.
