# Empty compiler generated dependencies file for damkit_betree_opt.
# This may be replaced when dependencies are built.
