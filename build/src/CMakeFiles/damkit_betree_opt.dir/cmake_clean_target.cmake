file(REMOVE_RECURSE
  "libdamkit_betree_opt.a"
)
