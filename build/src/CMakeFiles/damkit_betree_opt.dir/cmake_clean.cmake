file(REMOVE_RECURSE
  "CMakeFiles/damkit_betree_opt.dir/betree_opt/opt_betree.cpp.o"
  "CMakeFiles/damkit_betree_opt.dir/betree_opt/opt_betree.cpp.o.d"
  "libdamkit_betree_opt.a"
  "libdamkit_betree_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_betree_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
