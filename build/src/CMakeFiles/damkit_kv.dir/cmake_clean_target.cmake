file(REMOVE_RECURSE
  "libdamkit_kv.a"
)
