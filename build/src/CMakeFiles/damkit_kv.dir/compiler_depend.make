# Empty compiler generated dependencies file for damkit_kv.
# This may be replaced when dependencies are built.
