file(REMOVE_RECURSE
  "CMakeFiles/damkit_kv.dir/kv/codec.cpp.o"
  "CMakeFiles/damkit_kv.dir/kv/codec.cpp.o.d"
  "CMakeFiles/damkit_kv.dir/kv/slice.cpp.o"
  "CMakeFiles/damkit_kv.dir/kv/slice.cpp.o.d"
  "CMakeFiles/damkit_kv.dir/kv/workload.cpp.o"
  "CMakeFiles/damkit_kv.dir/kv/workload.cpp.o.d"
  "libdamkit_kv.a"
  "libdamkit_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
