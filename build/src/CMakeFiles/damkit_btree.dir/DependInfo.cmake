
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/btree/btree.cpp" "src/CMakeFiles/damkit_btree.dir/btree/btree.cpp.o" "gcc" "src/CMakeFiles/damkit_btree.dir/btree/btree.cpp.o.d"
  "/root/repo/src/btree/btree_node.cpp" "src/CMakeFiles/damkit_btree.dir/btree/btree_node.cpp.o" "gcc" "src/CMakeFiles/damkit_btree.dir/btree/btree_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/damkit_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_blockdev.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/damkit_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
