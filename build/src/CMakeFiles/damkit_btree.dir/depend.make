# Empty dependencies file for damkit_btree.
# This may be replaced when dependencies are built.
