file(REMOVE_RECURSE
  "CMakeFiles/damkit_btree.dir/btree/btree.cpp.o"
  "CMakeFiles/damkit_btree.dir/btree/btree.cpp.o.d"
  "CMakeFiles/damkit_btree.dir/btree/btree_node.cpp.o"
  "CMakeFiles/damkit_btree.dir/btree/btree_node.cpp.o.d"
  "libdamkit_btree.a"
  "libdamkit_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/damkit_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
