file(REMOVE_RECURSE
  "libdamkit_btree.a"
)
