// Sparse byte store backing simulated devices. Only pages that have been
// written occupy host memory, so a "500 GiB" simulated disk costs only as
// much RAM as the experiment's live data set.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

namespace damkit::sim {

class MemStore {
 public:
  explicit MemStore(uint64_t capacity_bytes) : capacity_(capacity_bytes) {}

  uint64_t capacity() const { return capacity_; }

  /// Bytes never written read back as zero.
  void read(uint64_t offset, std::span<uint8_t> out) const;
  void write(uint64_t offset, std::span<const uint8_t> data);

  /// Host memory currently pinned by written pages.
  uint64_t resident_bytes() const { return pages_.size() * kPageBytes; }

  /// Drop whole pages fully covered by [offset, offset+length): they read
  /// back as zero and release host memory (TRIM/deallocate semantics).
  void discard(uint64_t offset, uint64_t length);

  void clear() { pages_.clear(); }

 private:
  static constexpr uint64_t kPageBytes = 64 * 1024;

  uint64_t capacity_;
  std::unordered_map<uint64_t, std::unique_ptr<uint8_t[]>> pages_;
};

}  // namespace damkit::sim
