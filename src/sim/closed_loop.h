// Closed-loop multi-client workload driver (discrete-event).
//
// Reproduces the paper's §4.1 experiment harness: p OS threads each issue
// one outstanding IO at a time against the device; a thread's next IO is
// issued the moment its previous one completes. The driver is a
// single-threaded discrete-event simulation — a min-heap over per-client
// next-issue times guarantees the device sees submissions in time order —
// so results are exactly reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/device.h"
#include "util/histogram.h"
#include "util/rng.h"

namespace damkit::sim {

struct ClosedLoopConfig {
  int clients = 1;
  uint64_t ios_per_client = 1024;
  uint64_t io_bytes = 64 * 1024;
  IoKind kind = IoKind::kRead;
  bool align_to_io_size = true;  // block-aligned offsets, as in the paper
  uint64_t seed = 1;
};

struct ClosedLoopResult {
  SimTime makespan = 0;          // completion time of the last IO
  Histogram latency;             // per-IO latency distribution (ns)
  uint64_t total_ios = 0;
  uint64_t total_bytes = 0;

  /// Aggregate throughput in bytes per simulated second.
  double throughput_bps() const {
    return makespan == 0 ? 0.0
                         : static_cast<double>(total_bytes) /
                               to_seconds(makespan);
  }
};

/// Runs the closed loop with uniformly random (optionally aligned) offsets
/// over the device's full LBA range, exactly as §4 describes.
ClosedLoopResult run_closed_loop(Device& dev, const ClosedLoopConfig& config);

/// Generalized form: `next_offset(client, rng)` supplies each IO's offset,
/// enabling sequential or skewed access patterns.
ClosedLoopResult run_closed_loop(
    Device& dev, const ClosedLoopConfig& config,
    const std::function<uint64_t(int client, Rng& rng)>& next_offset);

}  // namespace damkit::sim
