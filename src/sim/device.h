// Simulated storage device interface.
//
// damkit separates *timing* from *data*: a Device computes, in simulated
// nanoseconds, when an IO submitted at time `now` completes (modelling
// seeks, rotation, die parallelism, bus contention, queueing), while the
// payload bytes live in a sparse in-memory store and are read/written
// synchronously. All experiment "seconds" are simulated device time, so
// results are deterministic and independent of host speed.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/memstore.h"
#include "stats/metrics.h"
#include "stats/trace_buffer.h"
#include "util/histogram.h"
#include "util/status.h"

namespace damkit::sim {

/// Simulated time in nanoseconds since device power-on.
using SimTime = uint64_t;

inline constexpr SimTime kNsPerUs = 1000;
inline constexpr SimTime kNsPerMs = 1000 * kNsPerUs;
inline constexpr SimTime kNsPerSec = 1000 * kNsPerMs;

inline double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}
inline SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kNsPerSec));
}

enum class IoKind : uint8_t { kRead, kWrite };

/// How a device may reorder requests it holds concurrently (an NCQ window
/// or a submission-queue batch). Lives here rather than scheduler.h so
/// device configs can carry a policy without a circular include.
///   kFifo — submission order (queue depth irrelevant).
///   kSstf — shortest seek time first within the window.
///   kScan — elevator: sweep the window in one direction, reverse at ends.
enum class SchedPolicy : uint8_t { kFifo, kSstf, kScan };

const char* sched_policy_name(SchedPolicy p);

/// A single device IO: a contiguous byte range. `queue` names the NVMe
/// submission/completion queue pair carrying the request; devices without
/// per-client queues (HDD, plain SSD) ignore it, `MqSsdDevice` routes on
/// it (mod its configured queue_pairs).
struct IoRequest {
  IoKind kind = IoKind::kRead;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t queue = 0;
};

/// When a submitted IO started service and when it completed.
struct IoCompletion {
  SimTime start = 0;   // service start (>= submission time; queueing included)
  SimTime finish = 0;  // completion time
  SimTime latency(SimTime submitted) const { return finish - submitted; }
};

/// Cumulative IO accounting, cheap enough to keep always-on. The
/// write-amplification experiments read `bytes_written` directly.
///
/// setup/transfer decompose each IO's service time the way the affine
/// model does (§4.2): setup is everything paid before the first payload
/// byte moves (command processing, seek, rotation — fixed per IO), and
/// transfer is payload-proportional media/bus time. Each device model
/// fills the split from its own mechanism; `queue_wait` is time spent
/// waiting for device resources *before* service starts and belongs to
/// neither side.
struct DeviceStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  SimTime busy_time = 0;      // total device-busy nanoseconds
  SimTime setup_time = 0;     // per-IO positioning/command time
  SimTime transfer_time = 0;  // payload-proportional media/bus time
  SimTime queue_wait = 0;     // submission-to-service-start wait
  uint64_t batches = 0;       // submit_batch calls
  uint64_t batch_ios = 0;     // requests that arrived via submit_batch

  /// Measured affine parameters of the traffic seen so far: mean setup
  /// seconds per IO and mean transfer seconds per byte. Compare against
  /// HddConfig::expected_setup_s() / expected_transfer_s_per_byte().
  double mean_setup_s_per_io() const {
    const uint64_t ios = reads + writes;
    return ios == 0 ? 0.0 : to_seconds(setup_time) / static_cast<double>(ios);
  }
  double mean_transfer_s_per_byte() const {
    const uint64_t bytes = bytes_read + bytes_written;
    return bytes == 0
               ? 0.0
               : to_seconds(transfer_time) / static_cast<double>(bytes);
  }

  void clear() { *this = DeviceStats{}; }
};

/// Abstract simulated block device.
///
/// Timing contract: submissions must arrive in nondecreasing `now` order
/// (the closed-loop driver and single-threaded IoContext guarantee this;
/// `submit` aborts on violation — a reordered caller would otherwise
/// corrupt timing silently). Devices may queue: `IoCompletion.start` can
/// exceed `now`.
class Device {
 public:
  explicit Device(uint64_t capacity_bytes)
      : capacity_(capacity_bytes), store_(capacity_bytes) {}
  virtual ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Model name, e.g. "1 TB WD Black (2011)".
  virtual std::string name() const = 0;

  /// Compute service timing for `req` submitted at `now`, updating internal
  /// mechanical/electrical state. Does not touch payload bytes.
  IoCompletion submit(const IoRequest& req, SimTime now) {
    enforce_clock(now);
    return submit_io(req, now);
  }

  /// Batched submission (the SQ/CQ path): every request in `reqs` is
  /// outstanding at `now`, so the device may serve them concurrently (SSD
  /// dies) or reorder them within the batch window (HDD NCQ). Completions
  /// are returned in request order; the batch as a whole completes at the
  /// max finish, not the sum of latencies.
  std::vector<IoCompletion> submit_batch(std::span<const IoRequest> reqs,
                                         SimTime now) {
    enforce_clock(now);
    note_batch(reqs, now);
    return submit_batch_io(reqs, now);
  }

  /// Fallible submission: like submit(), but invalid requests surface as
  /// kInvalidArgument/kOutOfRange instead of aborting, and the device's
  /// fault hook may fail the IO (kUnavailable/kCorruption). A faulted IO
  /// still occupies the device — timing is computed, charged, and written
  /// to `*out` — but its payload must not be transferred (use
  /// read_checked/write_checked, which honor this). `*out` is untouched
  /// when the request itself was invalid.
  Status submit_checked(const IoRequest& req, SimTime now, IoCompletion* out) {
    DAMKIT_RETURN_IF_ERROR(bounds_status(req));
    enforce_clock(now);
    Status fault = inject_fault(req, now);
    *out = submit_io(req, now);
    return fault;
  }

  /// Fallible batch submission. Returns non-OK (with no timing charged)
  /// only when a request is invalid; otherwise returns OK and reports each
  /// request's injected-fault verdict in `*per_io` (OK = payload may move).
  /// Completions are computed for every request, faulted or not.
  Status submit_batch_checked(std::span<const IoRequest> reqs, SimTime now,
                              std::vector<IoCompletion>* completions,
                              std::vector<Status>* per_io) {
    for (const IoRequest& req : reqs) {
      DAMKIT_RETURN_IF_ERROR(bounds_status(req));
    }
    enforce_clock(now);
    per_io->clear();
    per_io->reserve(reqs.size());
    for (const IoRequest& req : reqs) per_io->push_back(inject_fault(req, now));
    note_batch(reqs, now);
    *completions = submit_batch_io(reqs, now);
    return Status();
  }

  uint64_t capacity_bytes() const { return capacity_; }

  /// Host memory held by the sparse backing store (written, untrimmed
  /// pages) — not a simulated quantity.
  uint64_t resident_host_bytes() const { return store_.resident_bytes(); }

  const DeviceStats& stats() const { return stats_; }
  void clear_stats() {
    stats_.clear();
    io_size_.clear();
    latency_.clear();
    batch_width_.clear();
  }

  /// Stream every served IO into `trace` (nullptr stops recording). The
  /// trace must outlive the recording window.
  void set_trace(class IoTrace* trace) { trace_ = trace; }

  /// Structured-event sink (nullptr stops emission). The buffer must
  /// outlive the recording window; emission is additionally gated on
  /// stats::collecting().
  void set_event_trace(stats::TraceBuffer* events) { events_ = events; }

  /// Log-scale distributions of per-request IO size (bytes), latency
  /// (ns, submission to finish), and submit_batch width (requests).
  /// Populated only while stats::collecting().
  const Histogram& io_size_histogram() const { return io_size_; }
  const Histogram& latency_histogram() const { return latency_; }
  const Histogram& batch_width_histogram() const { return batch_width_; }

  /// Export counters/gauges/histograms under `prefix` (e.g. "dev.").
  /// Subclasses extend with model-specific metrics (per-die utilization,
  /// seek decomposition) and must call the base implementation.
  virtual void export_metrics(stats::MetricsRegistry& reg,
                              std::string_view prefix) const;

  /// TRIM/deallocate: the range's contents are dropped (read back as
  /// zero) and host memory released. No timing charge — discard commands
  /// are queue-asynchronous on real devices.
  void trim(uint64_t offset, uint64_t length) {
    store_.discard(offset, length);
  }

  /// Payload access (synchronous; timing handled by submit()).
  void read_bytes(uint64_t offset, std::span<uint8_t> out) {
    store_.read(offset, out);
  }
  void write_bytes(uint64_t offset, std::span<const uint8_t> data) {
    store_.write(offset, data);
  }

  /// Convenience: timing + payload in one call.
  IoCompletion read(uint64_t offset, std::span<uint8_t> out, SimTime now) {
    const IoCompletion c = submit({IoKind::kRead, offset, out.size()}, now);
    store_.read(offset, out);
    return c;
  }
  IoCompletion write(uint64_t offset, std::span<const uint8_t> data,
                     SimTime now) {
    const IoCompletion c = submit({IoKind::kWrite, offset, data.size()}, now);
    store_.write(offset, data);
    return c;
  }

  /// Fallible timing + payload. On failure `out` is left untouched (reads)
  /// or routed through note_failed_write (writes), so a faulted IO never
  /// silently transfers data.
  Status read_checked(uint64_t offset, std::span<uint8_t> out, SimTime now,
                      IoCompletion* c) {
    const Status s = submit_checked({IoKind::kRead, offset, out.size()}, now, c);
    if (s.ok()) store_.read(offset, out);
    return s;
  }
  Status write_checked(uint64_t offset, std::span<const uint8_t> data,
                       SimTime now, IoCompletion* c) {
    const Status s =
        submit_checked({IoKind::kWrite, offset, data.size()}, now, c);
    if (s.ok()) {
      store_.write(offset, data);
    } else {
      note_failed_write(offset, data);
    }
    return s;
  }

  /// Payload hook for a write whose checked submission failed. The default
  /// drops the payload entirely (nothing reached the media); fault models
  /// override to persist a torn prefix. Callers that split timing from
  /// payload (batched writes) must route each failed request's payload
  /// here instead of write_bytes().
  virtual void note_failed_write(uint64_t offset,
                                 std::span<const uint8_t> data) {
    (void)offset;
    (void)data;
  }

 protected:
  /// Timing model for a single request. `now` is guaranteed nondecreasing
  /// across calls (enforced by the public wrappers).
  virtual IoCompletion submit_io(const IoRequest& req, SimTime now) = 0;

  /// Timing model for a batch. The default serializes through submit_io at
  /// a constant `now` — device queueing then decides the overlap (per-die
  /// queues overlap on an SSD; the single actuator serializes on an HDD).
  virtual std::vector<IoCompletion> submit_batch_io(
      std::span<const IoRequest> reqs, SimTime now);

  /// Fault-decision hook, consulted once per request in submission order
  /// by the checked paths only (submit()/submit_batch() never fault: their
  /// callers have no way to observe an error other than aborting). The
  /// default injects nothing.
  virtual Status inject_fault(const IoRequest& req, SimTime now) {
    (void)req;
    (void)now;
    return Status();
  }

  void enforce_clock(SimTime now) {
    DAMKIT_CHECK_MSG(now >= last_submit_,
                     "device clock ran backwards: now=" << now
                         << " < last submission=" << last_submit_);
    last_submit_ = now;
  }

  /// `now` is the submission time (for queue-wait and latency accounting);
  /// `setup`/`transfer` are this IO's affine service split, computed by
  /// the concrete device model.
  void account(const IoRequest& req, const IoCompletion& c, SimTime now,
               SimTime setup, SimTime transfer) {
    if (req.kind == IoKind::kRead) {
      ++stats_.reads;
      stats_.bytes_read += req.length;
    } else {
      ++stats_.writes;
      stats_.bytes_written += req.length;
    }
    stats_.busy_time += c.finish - c.start;
    stats_.setup_time += setup;
    stats_.transfer_time += transfer;
    stats_.queue_wait += c.start > now ? c.start - now : 0;
    DAMKIT_STATS_ONLY({
      if (stats::collecting()) {
        io_size_.record(req.length);
        latency_.record(c.latency(now));
        if (events_ != nullptr) {
          events_->emit({c.finish, "io",
                         req.kind == IoKind::kRead ? "read" : "write",
                         req.offset, req.length, c.latency(now)});
        }
      }
    });
    if (trace_ != nullptr) record_trace(req, c, now);
  }

  /// Out-of-line so this header need not see IoTrace's definition.
  void record_trace(const IoRequest& req, const IoCompletion& c,
                    SimTime submit);

  void check_bounds(const IoRequest& req) const {
    DAMKIT_CHECK_MSG(req.length > 0, "zero-length IO");
    DAMKIT_CHECK_MSG(req.offset + req.length <= capacity_,
                     "IO past device end: off=" << req.offset
                                                << " len=" << req.length
                                                << " cap=" << capacity_);
  }

  /// check_bounds() as a Status, overflow-safe, for the checked paths.
  Status bounds_status(const IoRequest& req) const {
    if (req.length == 0) return Status::invalid_argument("zero-length IO");
    if (req.offset > capacity_ || capacity_ - req.offset < req.length) {
      return Status::out_of_range(
          "IO past device end: off=" + std::to_string(req.offset) +
          " len=" + std::to_string(req.length) +
          " cap=" + std::to_string(capacity_));
    }
    return Status();
  }

  /// Shared batch bookkeeping for submit_batch / submit_batch_checked.
  void note_batch(std::span<const IoRequest> reqs, SimTime now) {
    if (reqs.empty()) return;
    ++stats_.batches;
    stats_.batch_ios += reqs.size();
    (void)now;
    DAMKIT_STATS_ONLY({
      if (stats::collecting()) {
        batch_width_.record(reqs.size());
        if (events_ != nullptr) {
          events_->emit({now, "io", "batch", reqs.size(), 0, 0});
        }
      }
    });
  }

  uint64_t capacity_;
  DeviceStats stats_;
  MemStore store_;
  class IoTrace* trace_ = nullptr;
  stats::TraceBuffer* events_ = nullptr;
  SimTime last_submit_ = 0;  // timing-contract watermark
  Histogram io_size_;      // bytes per request
  Histogram latency_;      // ns, submission to completion
  Histogram batch_width_;  // requests per submit_batch
};

/// Tracks one logical client's simulated clock against a device. All
/// single-threaded data structures perform IO through an IoContext so the
/// "wall-clock" they experience includes every device delay.
class IoContext {
 public:
  explicit IoContext(Device& dev) : dev_(&dev) {}

  SimTime now() const { return now_; }
  void advance_to(SimTime t) {
    if (t > now_) now_ = t;
  }
  /// Charge pure CPU time (rarely used; IO dominates in these experiments).
  void spend(SimTime dt) { now_ += dt; }

  Device& device() { return *dev_; }

  /// Issue a read and advance this context's clock to its completion.
  void read(uint64_t offset, std::span<uint8_t> out) {
    now_ = dev_->read(offset, out, now_).finish;
  }
  /// Issue a write and advance this context's clock to its completion.
  void write(uint64_t offset, std::span<const uint8_t> data) {
    now_ = dev_->write(offset, data, now_).finish;
  }
  /// Timing-only read (payload ignored), used by layout experiments.
  void touch_read(uint64_t offset, uint64_t length) {
    now_ = dev_->submit({IoKind::kRead, offset, length}, now_).finish;
  }
  /// Timing-only write, the dual of touch_read (charged rebuild passes).
  void touch_write(uint64_t offset, uint64_t length) {
    now_ = dev_->submit({IoKind::kWrite, offset, length}, now_).finish;
  }

  /// Issue a batch of timing-only IOs and advance the clock to the *max*
  /// completion. This is where batching pays: a serial loop advances by
  /// the sum of latencies, a batch only by the slowest request (the
  /// device overlaps the rest).
  std::vector<IoCompletion> submit_batch(std::span<const IoRequest> reqs) {
    std::vector<IoCompletion> cs = dev_->submit_batch(reqs, now_);
    SimTime done = now_;
    for (const IoCompletion& c : cs) done = std::max(done, c.finish);
    now_ = done;
    return cs;
  }

  /// Fallible variants. The clock still advances to the completion on a
  /// faulted IO — a failed request occupies the device like any other —
  /// so retry loops charge realistic time for every attempt.
  Status read_checked(uint64_t offset, std::span<uint8_t> out) {
    IoCompletion c;
    const Status s = dev_->read_checked(offset, out, now_, &c);
    advance_to(c.finish);
    return s;
  }
  Status write_checked(uint64_t offset, std::span<const uint8_t> data) {
    IoCompletion c;
    const Status s = dev_->write_checked(offset, data, now_, &c);
    advance_to(c.finish);
    return s;
  }
  Status touch_read_checked(uint64_t offset, uint64_t length) {
    IoCompletion c;
    const Status s =
        dev_->submit_checked({IoKind::kRead, offset, length}, now_, &c);
    advance_to(c.finish);
    return s;
  }
  Status touch_write_checked(uint64_t offset, uint64_t length) {
    IoCompletion c;
    const Status s =
        dev_->submit_checked({IoKind::kWrite, offset, length}, now_, &c);
    advance_to(c.finish);
    return s;
  }
  /// Batch counterpart of submit_batch(): advances to the max completion
  /// and reports per-request fault verdicts in `*per_io`. Non-OK return
  /// (invalid request) charges no time.
  Status submit_batch_checked(std::span<const IoRequest> reqs,
                              std::vector<IoCompletion>* completions,
                              std::vector<Status>* per_io) {
    DAMKIT_RETURN_IF_ERROR(
        dev_->submit_batch_checked(reqs, now_, completions, per_io));
    SimTime done = now_;
    for (const IoCompletion& c : *completions) done = std::max(done, c.finish);
    now_ = done;
    return Status();
  }

 private:
  Device* dev_;
  SimTime now_ = 0;
};

}  // namespace damkit::sim
