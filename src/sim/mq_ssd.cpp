#include "sim/mq_ssd.h"

#include <algorithm>

namespace damkit::sim {

namespace {

uint64_t splitmix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void insert_sorted(std::vector<SimTime>& v, SimTime t) {
  v.insert(std::upper_bound(v.begin(), v.end(), t), t);
}

}  // namespace

MqSsdDevice::MqSsdDevice(SsdConfig config) : SsdDevice(std::move(config)) {
  DAMKIT_CHECK_MSG(config_.queue_pairs >= 1, "need at least one SQ/CQ pair");
  DAMKIT_CHECK_MSG(config_.queue_depth >= 1, "need queue depth >= 1");
  DAMKIT_CHECK_MSG(
      config_.gc_interval_s <= 0.0 ||
          config_.gc_interval_s > 2.0 * config_.gc_burst_s,
      "gc bursts would consume more die time than the gc interval provides");
  sq_inflight_.resize(static_cast<size_t>(config_.queue_pairs));
  queue_ios_.assign(static_cast<size_t>(config_.queue_pairs), 0);
  if (config_.gc_interval_s > 0.0) {
    const auto dies = static_cast<size_t>(config_.total_dies());
    gc_next_.resize(dies);
    gc_rng_.resize(dies);
    for (size_t d = 0; d < dies; ++d) {
      gc_rng_[d] = config_.gc_seed ^ (0x517cc1b727220a95ULL * (d + 1));
      gc_next_[d] = next_gc_gap(d);
    }
  }
}

std::string MqSsdDevice::name() const { return config_.name + " (mq)"; }

uint64_t MqSsdDevice::queue_ios(int queue) const {
  DAMKIT_CHECK(queue >= 0 && queue < config_.queue_pairs);
  return queue_ios_[static_cast<size_t>(queue)];
}

void MqSsdDevice::prune(std::vector<SimTime>& inflight, SimTime t) {
  // Sorted ascending: drop the completed prefix.
  auto it = std::upper_bound(inflight.begin(), inflight.end(), t);
  inflight.erase(inflight.begin(), it);
}

SimTime MqSsdDevice::next_gc_gap(size_t die) {
  // Jittered spacing in [0.5, 1.5) × gc_interval_s, per-die deterministic.
  const double u =
      static_cast<double>(splitmix64(&gc_rng_[die]) >> 11) * 0x1.0p-53;
  return from_seconds(config_.gc_interval_s * (0.5 + u));
}

void MqSsdDevice::on_die_touch(int die, SimTime issue) {
  if (gc_next_.empty()) return;
  const auto d = static_cast<size_t>(die);
  const SimTime burst = from_seconds(config_.gc_burst_s);
  // Apply every background burst due by `issue`: each steals die time,
  // pushing the die's free horizon (and thus any foreground IO queued on
  // it) back by the burst length.
  while (gc_next_[d] <= issue) {
    die_free_[d] = std::max(die_free_[d], gc_next_[d]) + burst;
    gc_stolen_total_ += burst;
    ++gc_bursts_;
    gc_next_[d] += next_gc_gap(d);
  }
}

IoCompletion MqSsdDevice::submit_io(const IoRequest& req, SimTime now) {
  check_bounds(req);
  const auto q = static_cast<size_t>(
      req.queue % static_cast<uint32_t>(config_.queue_pairs));
  std::vector<SimTime>& sq = sq_inflight_[q];

  // Bounded SQ admission: free completed slots; if the pair is still at
  // its depth bound, the command stalls in host memory until the pair's
  // earliest outstanding completion frees a slot.
  SimTime admit = now;
  prune(sq, admit);
  if (sq.size() >= static_cast<size_t>(config_.queue_depth)) {
    admit = sq.front();
    ++admission_stalls_;
    sq_wait_total_ += admit - now;
    prune(sq, admit);
  }
  prune(all_inflight_, admit);

  // Depth-dependent fetch/arbitration: every command outstanding across
  // the controller lengthens this command's path to the flash core.
  const uint64_t inflight = all_inflight_.size();
  max_inflight_ = std::max(max_inflight_, inflight + 1);
  const SimTime penalty = from_seconds(config_.inflight_penalty_s) * inflight;
  penalty_total_ += penalty;
  const SimTime issue =
      admit + from_seconds(config_.command_overhead_s) + penalty;

  const FlashService flash = serve_flash(req, issue);
  SimTime link_occupancy = 0;
  SimTime finish = serve_link(req.length, flash.finish, &link_occupancy);

  // CQ reap: doorbell + host completion handling, mode-dependent.
  const SimTime completion = from_seconds(config_.completion_s());
  finish += completion;
  completion_total_ += completion;

  horizon_ = std::max(horizon_, finish);
  insert_sorted(sq, finish);
  insert_sorted(all_inflight_, finish);
  ++queue_ios_[q];

  const SimTime page_service = from_seconds(
      (req.kind == IoKind::kRead) ? config_.page_read_s
                                  : config_.page_write_s);
  const SimTime bus_service = from_seconds(config_.bus_s_per_page);
  const IoCompletion c{issue, finish};
  account(req, c, now, (issue - admit) + completion,
          flash.total_pages * (page_service + bus_service) + link_occupancy);
  return c;
}

void MqSsdDevice::export_metrics(stats::MetricsRegistry& reg,
                                 std::string_view prefix) const {
  SsdDevice::export_metrics(reg, prefix);
  const std::string p = std::string(prefix) + "mq.";
  reg.set(p + "queue_pairs", static_cast<double>(config_.queue_pairs));
  reg.set(p + "queue_depth", static_cast<double>(config_.queue_depth));
  reg.set(p + "sq_wait_seconds", to_seconds(sq_wait_total_));
  reg.set(p + "inflight_penalty_seconds", to_seconds(penalty_total_));
  reg.set(p + "completion_seconds", to_seconds(completion_total_));
  reg.set(p + "max_inflight", static_cast<double>(max_inflight_));
  reg.set(p + "admission_stalls", static_cast<double>(admission_stalls_));
  for (int i = 0; i < config_.queue_pairs; ++i) {
    reg.set(p + "queue" + std::to_string(i) + ".ios",
            static_cast<double>(queue_ios_[static_cast<size_t>(i)]));
  }
  reg.set(p + "gc.bursts", static_cast<double>(gc_bursts_));
  reg.set(p + "gc.stolen_seconds", to_seconds(gc_stolen_total_));
}

}  // namespace damkit::sim
