// Mechanical hard-disk simulator.
//
// The simulator's behaviour is deliberately *richer* than the affine model
// it is used to validate: seek time depends on arm travel distance (a
// square-root curve between track-to-track and full-stroke), rotational
// latency depends on the platter's angular position at seek completion,
// and transfer rate varies by zone (outer tracks carry more sectors).
// §4.2 of the paper fits `cost(x) = s + t·x` to such a device by linear
// regression; the fit quality (R² ≈ 0.999) is the experimental result.
#pragma once

#include <string>

#include "sim/device.h"

namespace damkit::sim {

/// Physical parameterization of a simulated disk.
struct HddConfig {
  std::string name = "generic-hdd";
  int year = 2011;
  uint64_t capacity_bytes = 500ULL * 1024 * 1024 * 1024;
  double rpm = 7200.0;

  // Seek curve: seek(d) = track_to_track + (full_stroke - track_to_track) ·
  // sqrt(d / num_tracks) for d > 0 tracks of travel; 0 for d == 0.
  double track_to_track_s = 0.001;
  double full_stroke_s = 0.020;

  // Sustained media rate averaged over the surface; outer zone reads
  // `zone_ratio`× faster than inner, linear in track index.
  double avg_bandwidth_bps = 150.0e6;
  double zone_ratio = 1.35;  // outer/inner bandwidth ratio

  uint64_t track_bytes = 1024 * 1024;  // nominal bytes per track (average)

  // Fixed per-IO controller/command overhead.
  double command_overhead_s = 50e-6;

  /// How the drive orders the requests of one submit_batch (NCQ). The
  /// actuator still serves them one at a time; reordering only shrinks the
  /// aggregate seek distance. kFifo preserves exact serial-equivalent
  /// timing for batches in submission order.
  SchedPolicy batch_policy = SchedPolicy::kSstf;

  /// Rotation period in seconds.
  double rotation_period_s() const { return 60.0 / rpm; }
  /// E[sqrt(|X-Y|)] for X, Y uniform on [0,1]: the arm travel distance is
  /// triangular, so the sqrt-curve's expected multiplier is 8/15.
  static constexpr double kMeanSqrtTravel = 8.0 / 15.0;
  /// Expected setup cost of a uniformly random access (mean seek over the
  /// sqrt-curve = t2t + (full-t2t)·(8/15), plus half a rotation).
  double expected_setup_s() const {
    return command_overhead_s + track_to_track_s +
           (full_stroke_s - track_to_track_s) * kMeanSqrtTravel +
           rotation_period_s() / 2.0;
  }
  /// Expected per-byte transfer cost in seconds (1 / average bandwidth).
  double expected_transfer_s_per_byte() const { return 1.0 / avg_bandwidth_bps; }
};

/// Single-actuator disk: IOs queue behind the arm. Reads and writes are
/// symmetric (no write cache is modelled — the affine model of the paper
/// does not distinguish them either).
class HddDevice final : public Device {
 public:
  explicit HddDevice(HddConfig config, uint64_t rng_seed = 42);

  std::string name() const override;

  const HddConfig& config() const { return config_; }

  /// Track index containing byte `offset`. Exposed for tests.
  uint64_t track_of(uint64_t offset) const { return offset / config_.track_bytes; }
  uint64_t num_tracks() const { return num_tracks_; }
  /// Arm position after the last completed IO (schedulers peek at this).
  uint64_t head_track() const { return head_track_; }

  /// Media bandwidth (bytes/s) at a given track (zoned).
  double bandwidth_at(uint64_t track) const;

  /// Pure seek time in seconds for arm travel of `distance` tracks.
  double seek_time_s(uint64_t distance) const;

  /// Base metrics plus the mechanical setup decomposition: seek time,
  /// rotational wait, and command overhead separately (their sum is the
  /// base `setup_seconds`), and the arm-travel distance distribution.
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override;

 protected:
  IoCompletion submit_io(const IoRequest& req, SimTime now) override;
  /// Serves the batch one request at a time (single actuator) but in the
  /// order config().batch_policy picks from the current arm position —
  /// the NCQ window reordering of scheduler.h applied to one batch.
  /// Completions are returned in submission order.
  std::vector<IoCompletion> submit_batch_io(std::span<const IoRequest> reqs,
                                            SimTime now) override;

 private:
  HddConfig config_;
  uint64_t num_tracks_;
  SimTime busy_until_ = 0;   // single actuator: next time the arm is free
  uint64_t head_track_ = 0;  // arm position after the last IO
  bool batch_scan_up_ = true;  // kScan sweep direction across batches
  // Setup decomposition (sums to DeviceStats::setup_time).
  SimTime seek_time_total_ = 0;
  SimTime rot_wait_total_ = 0;
  SimTime command_time_total_ = 0;
  Histogram seek_tracks_;  // arm travel distance per IO, in tracks
};

}  // namespace damkit::sim
