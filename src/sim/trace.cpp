#include "sim/trace.h"

#include <cstdio>
#include <cstring>

#include "util/status.h"

namespace damkit::sim {

double IoTrace::sequential_fraction() const {
  if (records_.size() < 2) return records_.empty() ? 0.0 : 1.0;
  uint64_t sequential = 0;
  for (size_t i = 1; i < records_.size(); ++i) {
    if (records_[i].offset ==
        records_[i - 1].offset + records_[i - 1].length) {
      ++sequential;
    }
  }
  return static_cast<double>(sequential) /
         static_cast<double>(records_.size() - 1);
}

double IoTrace::mean_seek_bytes() const {
  if (records_.size() < 2) return 0.0;
  double total = 0.0;
  for (size_t i = 1; i < records_.size(); ++i) {
    const uint64_t expected =
        records_[i - 1].offset + records_[i - 1].length;
    const uint64_t actual = records_[i].offset;
    total += static_cast<double>(expected > actual ? expected - actual
                                                   : actual - expected);
  }
  return total / static_cast<double>(records_.size() - 1);
}

uint64_t IoTrace::total_bytes() const {
  uint64_t bytes = 0;
  for (const auto& r : records_) bytes += r.length;
  return bytes;
}

std::string IoTrace::to_csv() const {
  std::string out = "kind,offset,length,submit,start,finish\n";
  char line[160];
  for (const auto& r : records_) {
    std::snprintf(line, sizeof(line), "%c,%llu,%llu,%llu,%llu,%llu\n",
                  r.kind == IoKind::kRead ? 'R' : 'W',
                  static_cast<unsigned long long>(r.offset),
                  static_cast<unsigned long long>(r.length),
                  static_cast<unsigned long long>(r.submit),
                  static_cast<unsigned long long>(r.start),
                  static_cast<unsigned long long>(r.finish));
    out += line;
  }
  return out;
}

IoTrace IoTrace::from_csv(const std::string& csv) {
  IoTrace trace;
  size_t pos = csv.find('\n');  // skip header
  DAMKIT_CHECK_MSG(pos != std::string::npos, "trace CSV missing header");
  ++pos;
  while (pos < csv.size()) {
    size_t eol = csv.find('\n', pos);
    if (eol == std::string::npos) eol = csv.size();
    const std::string line = csv.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    char kind = 0;
    unsigned long long off = 0, len = 0, submit = 0, start = 0, finish = 0;
    const int n =
        std::sscanf(line.c_str(), "%c,%llu,%llu,%llu,%llu,%llu", &kind, &off,
                    &len, &submit, &start, &finish);
    DAMKIT_CHECK_MSG(n == 6, "malformed trace line: " << line);
    DAMKIT_CHECK_MSG(kind == 'R' || kind == 'W',
                     "bad trace kind: " << kind);
    trace.records_.push_back({kind == 'R' ? IoKind::kRead : IoKind::kWrite,
                              off, len, submit, start, finish});
  }
  return trace;
}

bool IoTrace::save(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = to_csv();
  const size_t n = std::fwrite(csv.data(), 1, csv.size(), f);
  const bool ok = (n == csv.size()) && std::fclose(f) == 0;
  if (n != csv.size()) std::fclose(f);
  return ok;
}

IoTrace IoTrace::load(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  DAMKIT_CHECK_MSG(f != nullptr, "cannot open trace " << path);
  std::string csv;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) csv.append(buf, n);
  std::fclose(f);
  return from_csv(csv);
}

SimTime replay_trace(Device& dev, const IoTrace& trace) {
  SimTime now = 0;
  for (const auto& r : trace.records()) {
    now = dev.submit({r.kind, r.offset, r.length}, now).finish;
  }
  return now;
}

// Out-of-line member of Device (declared in device.h).
void Device::record_trace(const IoRequest& req, const IoCompletion& c,
                          SimTime submit) {
  trace_->record(req, c, submit);
}

}  // namespace damkit::sim
