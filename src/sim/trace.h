// IO trace capture, analysis and replay.
//
// Any Device can stream its served IOs into an IoTrace (set_trace()).
// Traces answer the locality questions behind the paper's aging /
// fragmentation citations [28, 29, 31]: how sequential is a workload,
// what seek distances does it induce, what would it cost on a different
// device or under a different scheduler (replay).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device.h"

namespace damkit::sim {

struct TraceRecord {
  IoKind kind = IoKind::kRead;
  uint64_t offset = 0;
  uint64_t length = 0;
  SimTime submit = 0;  // caller clock at submission (batch members share it)
  SimTime start = 0;   // service start on the recording device
  SimTime finish = 0;  // completion on the recording device
};

class IoTrace {
 public:
  void record(const IoRequest& req, const IoCompletion& c, SimTime submit) {
    records_.push_back(
        {req.kind, req.offset, req.length, submit, c.start, c.finish});
  }

  const std::vector<TraceRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  void clear() { records_.clear(); }

  /// Fraction of IOs whose offset continues the previous IO exactly.
  double sequential_fraction() const;
  /// Mean absolute inter-IO offset gap in bytes (0 = perfectly sequential).
  double mean_seek_bytes() const;
  /// Total payload bytes, reads + writes.
  uint64_t total_bytes() const;

  /// CSV round trip: header "kind,offset,length,submit,start,finish".
  std::string to_csv() const;
  static IoTrace from_csv(const std::string& csv);
  bool save(const std::string& path) const;
  static IoTrace load(const std::string& path);

 private:
  std::vector<TraceRecord> records_;
};

/// Replay a trace against `dev`, issuing each IO when the previous one
/// finishes (closed loop; the recorded timing only orders requests).
/// Returns the replay makespan.
SimTime replay_trace(Device& dev, const IoTrace& trace);

}  // namespace damkit::sim
