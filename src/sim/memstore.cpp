#include "sim/memstore.h"

#include <algorithm>
#include <cstring>

#include "util/status.h"

namespace damkit::sim {

void MemStore::read(uint64_t offset, std::span<uint8_t> out) const {
  DAMKIT_CHECK_MSG(offset + out.size() <= capacity_,
                   "read past capacity: " << offset << "+" << out.size());
  uint64_t pos = offset;
  uint8_t* dst = out.data();
  uint64_t remaining = out.size();
  while (remaining > 0) {
    const uint64_t page = pos / kPageBytes;
    const uint64_t in_page = pos % kPageBytes;
    const uint64_t chunk = std::min(remaining, kPageBytes - in_page);
    const auto it = pages_.find(page);
    if (it == pages_.end()) {
      std::memset(dst, 0, chunk);
    } else {
      std::memcpy(dst, it->second.get() + in_page, chunk);
    }
    pos += chunk;
    dst += chunk;
    remaining -= chunk;
  }
}

void MemStore::write(uint64_t offset, std::span<const uint8_t> data) {
  DAMKIT_CHECK_MSG(offset + data.size() <= capacity_,
                   "write past capacity: " << offset << "+" << data.size());
  uint64_t pos = offset;
  const uint8_t* src = data.data();
  uint64_t remaining = data.size();
  while (remaining > 0) {
    const uint64_t page = pos / kPageBytes;
    const uint64_t in_page = pos % kPageBytes;
    const uint64_t chunk = std::min(remaining, kPageBytes - in_page);
    auto& slot = pages_[page];
    if (!slot) {
      slot = std::make_unique<uint8_t[]>(kPageBytes);
      std::memset(slot.get(), 0, kPageBytes);
    }
    std::memcpy(slot.get() + in_page, src, chunk);
    pos += chunk;
    src += chunk;
    remaining -= chunk;
  }
}

void MemStore::discard(uint64_t offset, uint64_t length) {
  DAMKIT_CHECK(offset + length <= capacity_);
  const uint64_t first_full = (offset + kPageBytes - 1) / kPageBytes;
  const uint64_t end_full = (offset + length) / kPageBytes;
  for (uint64_t page = first_full; page < end_full; ++page) {
    pages_.erase(page);
  }
}

}  // namespace damkit::sim
