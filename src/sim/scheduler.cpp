#include "sim/scheduler.h"

#include <algorithm>

#include "util/status.h"

namespace damkit::sim {

const char* sched_policy_name(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFifo: return "FIFO";
    case SchedPolicy::kSstf: return "SSTF";
    case SchedPolicy::kScan: return "SCAN";
  }
  return "?";
}

SchedulerResult run_scheduled(HddDevice& dev, const SchedulerConfig& config,
                              std::vector<TimedRequest> requests) {
  DAMKIT_CHECK(config.queue_depth >= 1);
  SchedulerResult result;
  if (requests.empty()) return result;

  // Process in availability order; the window holds available requests.
  std::stable_sort(requests.begin(), requests.end(),
                   [](const TimedRequest& a, const TimedRequest& b) {
                     return a.available_at < b.available_at;
                   });

  struct Pending {
    IoRequest io;
    SimTime available_at;
    size_t arrival;  // FIFO order
  };
  std::vector<Pending> window;
  size_t next_arrival = 0;
  SimTime now = 0;
  bool scan_up = true;

  const auto refill = [&] {
    while (next_arrival < requests.size() &&
           window.size() < config.queue_depth &&
           requests[next_arrival].available_at <= now) {
      window.push_back({requests[next_arrival].io,
                        requests[next_arrival].available_at, next_arrival});
      ++next_arrival;
    }
    if (window.empty() && next_arrival < requests.size()) {
      // Idle until the next request arrives.
      now = std::max(now, requests[next_arrival].available_at);
      window.push_back({requests[next_arrival].io,
                        requests[next_arrival].available_at, next_arrival});
      ++next_arrival;
    }
  };

  while (true) {
    refill();
    if (window.empty()) break;

    size_t pick = 0;
    const uint64_t head = dev.head_track();
    switch (config.policy) {
      case SchedPolicy::kFifo: {
        for (size_t i = 1; i < window.size(); ++i) {
          if (window[i].arrival < window[pick].arrival) pick = i;
        }
        break;
      }
      case SchedPolicy::kSstf: {
        auto distance = [&](const Pending& p) {
          const uint64_t t = dev.track_of(p.io.offset);
          return t > head ? t - head : head - t;
        };
        for (size_t i = 1; i < window.size(); ++i) {
          if (distance(window[i]) < distance(window[pick])) pick = i;
        }
        break;
      }
      case SchedPolicy::kScan: {
        // Nearest request in the sweep direction; reverse if none.
        auto in_direction = [&](const Pending& p) {
          const uint64_t t = dev.track_of(p.io.offset);
          return scan_up ? t >= head : t <= head;
        };
        auto distance = [&](const Pending& p) {
          const uint64_t t = dev.track_of(p.io.offset);
          return t > head ? t - head : head - t;
        };
        bool found = false;
        for (size_t i = 0; i < window.size(); ++i) {
          if (!in_direction(window[i])) continue;
          if (!found || distance(window[i]) < distance(window[pick])) {
            pick = i;
            found = true;
          }
        }
        if (!found) {
          scan_up = !scan_up;
          ++result.direction_reversals;
          for (size_t i = 0; i < window.size(); ++i) {
            if (!found || distance(window[i]) < distance(window[pick])) {
              pick = i;
              found = true;
            }
          }
        }
        break;
      }
    }

    const Pending p = window[static_cast<size_t>(pick)];
    window.erase(window.begin() + static_cast<ptrdiff_t>(pick));
    const IoCompletion c = dev.submit(p.io, now);
    now = c.finish;
    result.latency.record(c.finish - p.available_at);
    result.makespan = c.finish;
    ++result.ios;
  }
  return result;
}

}  // namespace damkit::sim
