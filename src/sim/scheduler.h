// Disk IO scheduling over the HDD simulator.
//
// The affine model descends from disk-scheduling theory (the paper's
// ref [3], Andrews–Bender–Zhang): the setup cost `s` a workload actually
// pays depends on how requests are ordered. With a queue of pending
// requests (NCQ-style window), the drive can serve the nearest one
// instead of the submission order, shrinking the effective `s` — and
// with it α = t/s, which moves every node-size optimum in §5–6.
//
// Policies:
//   kFifo — submission order (queue depth irrelevant).
//   kSstf — shortest seek time first within the window.
//   kScan — elevator: sweep the window in one direction, reverse at ends.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/hdd.h"
#include "util/histogram.h"

namespace damkit::sim {

// SchedPolicy and sched_policy_name live in device.h so device configs can
// carry a policy; this header only adds the windowed-trace runner.

struct SchedulerConfig {
  SchedPolicy policy = SchedPolicy::kFifo;
  /// Requests the drive may reorder among (1 = no reordering).
  size_t queue_depth = 1;
};

struct SchedulerResult {
  SimTime makespan = 0;
  Histogram latency;  // per-IO: completion − availability time
  uint64_t ios = 0;
  uint64_t direction_reversals = 0;  // kScan bookkeeping

  double mean_seconds_per_io() const {
    return ios == 0 ? 0.0 : to_seconds(makespan) / static_cast<double>(ios);
  }
};

/// A request that becomes available to the scheduler at `available_at`.
struct TimedRequest {
  IoRequest io;
  SimTime available_at = 0;
};

/// Executes `requests` against the disk, honouring availability times and
/// reordering within a `queue_depth` window per the policy. Requests need
/// not be sorted by availability.
SchedulerResult run_scheduled(HddDevice& dev, const SchedulerConfig& config,
                              std::vector<TimedRequest> requests);

}  // namespace damkit::sim
