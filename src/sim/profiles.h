// Simulated stand-ins for the physical devices the paper benchmarked.
//
// Each profile is calibrated so the *fitted* model parameters land near the
// paper's Table 1 / Table 2 values: for HDDs the expected setup cost s and
// per-4KiB transfer cost t; for SSDs the effective parallelism P and the
// saturated bandwidth ∝PB. The simulators add realistic structure the
// models do not know about (zoned bandwidth, bank conflicts), so fitting is
// a genuine experiment rather than reading back inputs.
#pragma once

#include <vector>

#include "sim/hdd.h"
#include "sim/ssd.h"

namespace damkit::sim {

/// Build an HDD whose expected affine fit is (target_s, target_t_per_4k).
/// `target_s` is seconds of setup (seek + half rotation + command overhead),
/// `target_t_per_4k` is seconds to transfer 4096 bytes at sustained rate.
HddConfig make_hdd_profile(std::string name, int year, uint64_t capacity_bytes,
                           double rpm, double target_s, double target_t_per_4k);

/// Build an SSD with channels × dies_per_channel flash dies whose
/// saturated read bandwidth is ~`saturated_mbps` MB/s (channel-bus
/// limited) and whose §4.1 experiment knee lands near `knee_p` threads
/// (set via the single-stream 64 KiB latency).
SsdConfig make_ssd_profile(std::string name, uint64_t capacity_bytes,
                           int channels, int dies_per_channel,
                           uint64_t page_bytes, double saturated_mbps,
                           double knee_p, double command_overhead_s);

/// The five hard disks of Table 2.
std::vector<HddConfig> paper_hdd_profiles();

/// The four SSDs of Table 1 / Figure 1.
std::vector<SsdConfig> paper_ssd_profiles();

/// The reference devices used by the data-structure experiments (§7): the
/// Toshiba DT01ACA050-like HDD and Samsung 860 EVO-like SSD of the paper's
/// testbed.
HddConfig testbed_hdd_profile();
SsdConfig testbed_ssd_profile();

/// NVMe multi-queue testbed (for sim::MqSsdDevice): a PCIe device whose
/// link never binds — the controller is the bottleneck instead. Carries
/// the MQ knobs (8 SQ/CQ pairs of depth 32, interrupt completions, a
/// linear queue-depth latency penalty) so the §4-style sweep exhibits the
/// smooth lat(q) saturation of the MQ paper rather than the PDAM's sharp
/// knee. GC is off by default; experiments enable it per run.
SsdConfig testbed_mq_profile();

}  // namespace damkit::sim
