#include "sim/profiles.h"

#include "util/bytes.h"
#include "util/status.h"

namespace damkit::sim {

HddConfig make_hdd_profile(std::string name, int year, uint64_t capacity_bytes,
                           double rpm, double target_s,
                           double target_t_per_4k) {
  HddConfig cfg;
  cfg.name = std::move(name);
  cfg.year = year;
  cfg.capacity_bytes = capacity_bytes;
  cfg.rpm = rpm;
  cfg.track_bytes = 1 * kMiB;
  cfg.command_overhead_s = 50e-6;
  cfg.track_to_track_s = 1e-3;
  cfg.zone_ratio = 1.35;

  // Solve for the full-stroke seek so that the mean setup cost of a uniform
  // random access equals target_s:
  //   target_s = cmd + t2t + (full - t2t)·E[sqrt(travel)] + rotation/2
  const double half_rotation = (60.0 / rpm) / 2.0;
  const double mean_seek = target_s - cfg.command_overhead_s - half_rotation;
  DAMKIT_CHECK_MSG(mean_seek > cfg.track_to_track_s,
                   "target setup cost too small for rpm");
  cfg.full_stroke_s = cfg.track_to_track_s +
                      (mean_seek - cfg.track_to_track_s) /
                          HddConfig::kMeanSqrtTravel;

  // Solve for the media rate so the *effective* per-byte cost (media
  // transfer plus the track-switch penalty every track_bytes) matches
  // target_t_per_4k / 4096.
  const double target_per_byte = target_t_per_4k / 4096.0;
  const double switch_per_byte =
      cfg.track_to_track_s * 0.25 / static_cast<double>(cfg.track_bytes);
  DAMKIT_CHECK_MSG(target_per_byte > switch_per_byte,
                   "target transfer cost below track-switch floor");
  cfg.avg_bandwidth_bps = 1.0 / (target_per_byte - switch_per_byte);
  return cfg;
}

SsdConfig make_ssd_profile(std::string name, uint64_t capacity_bytes,
                           int channels, int dies_per_channel,
                           uint64_t page_bytes, double saturated_mbps,
                           double knee_p, double command_overhead_s) {
  SsdConfig cfg;
  cfg.name = std::move(name);
  cfg.capacity_bytes = capacity_bytes;
  cfg.channels = channels;
  cfg.dies_per_channel = dies_per_channel;
  cfg.page_bytes = page_bytes;
  // Real FTLs place stripes pseudo-randomly across many dies. A 64 KiB IO
  // fans out over four 16 KiB stripes; with dozens of dies concurrent
  // streams rarely collide below the knee, and the occasional die/channel
  // collisions produce exactly the soft transition the paper attributes
  // to bank conflicts.
  cfg.stripe_bytes = 16 * kKiB;
  cfg.hashed_striping = true;
  cfg.command_overhead_s = command_overhead_s;

  // Saturation is bound by the host link (SATA/PCIe): one shared pipe
  // every payload crosses. In a closed loop, clients phase-lock around
  // the link, so time stays flat until p · (link occupancy) exceeds the
  // IO latency — a sharp knee at exactly the effective parallelism P,
  // as the paper measures.
  const double bytes_per_s = saturated_mbps * 1e6;
  cfg.link_bps = bytes_per_s;
  // Channel buses get 4x headroom so they never bind.
  cfg.bus_s_per_page = cfg.channels * static_cast<double>(page_bytes) /
                       (4.0 * bytes_per_s);

  // P = L · saturated / 64 KiB, so put the single-stream 64 KiB latency L
  // at knee_p · 64 KiB / saturated. Flash sense time is short (~60 us per
  // stripe, real-NAND territory) so die conflicts barely perturb the flat
  // region; the remainder of L is uncontended firmware/command overhead —
  //   L = overhead + pages_per_stripe·(t_read + bus) + 64 KiB / link.
  const double io_bytes = 64.0 * 1024.0;
  const double pages_per_stripe = static_cast<double>(cfg.stripe_bytes) /
                                  static_cast<double>(page_bytes);
  const double target_latency = knee_p * io_bytes / bytes_per_s;
  cfg.page_read_s = 60e-6 / pages_per_stripe;
  cfg.page_write_s = cfg.page_read_s * 3.0;
  const double overhead =
      target_latency - io_bytes / cfg.link_bps -
      pages_per_stripe * (cfg.page_read_s + cfg.bus_s_per_page);
  DAMKIT_CHECK_MSG(overhead >= command_overhead_s * 0.5,
                   "knee target infeasible for this bandwidth");
  cfg.command_overhead_s = overhead;

  // Sanity: flash-side headroom so the link is the binding limit.
  DAMKIT_CHECK(cfg.saturated_read_bps() >= bytes_per_s * 0.99);
  return cfg;
}

std::vector<HddConfig> paper_hdd_profiles() {
  // Table 2 of the paper: (name, year, s seconds, t seconds per 4 KiB).
  return {
      make_hdd_profile("2 TB Seagate", 2002, 2048ULL * kGiB, 7200.0, 0.018,
                       0.000021),
      make_hdd_profile("250 GB Seagate", 2006, 250ULL * kGiB, 7200.0, 0.015,
                       0.000033),
      make_hdd_profile("1 TB Hitachi", 2009, 1024ULL * kGiB, 7200.0, 0.013,
                       0.000041),
      make_hdd_profile("1 TB WD Black", 2011, 1024ULL * kGiB, 7200.0, 0.012,
                       0.000035),
      make_hdd_profile("6 TB WD Red", 2018, 6144ULL * kGiB, 5400.0, 0.016,
                       0.000026),
  };
}

std::vector<SsdConfig> paper_ssd_profiles() {
  // Table 1 of the paper: fitted P in {3.3, 5.5, 2.9, 4.6}, saturation in
  // {530, 2500, 260, 520} MB/s. Each profile targets the paper's knee via
  // its single-stream latency; many dies behind few channels give the
  // flat-then-linear Figure 1 shape with a soft (bank-conflict) knee.
  // The knee inputs below are calibrated so the *fitted* P of the §4.1
  // experiment (which overshoots the physical knee slightly — the soft
  // transition gives the left regression segment positive slope) matches
  // the paper's reported values.
  return {
      make_ssd_profile("Samsung 860 pro", 256ULL * kGiB, 4, 16, 4096, 530.0,
                       3.2, 20e-6),
      make_ssd_profile("Samsung 970 pro", 512ULL * kGiB, 4, 16, 4096, 2500.0,
                       4.0, 10e-6),
      make_ssd_profile("Silicon Power S55", 240ULL * kGiB, 4, 16, 4096, 260.0,
                       2.75, 25e-6),
      make_ssd_profile("Sandisk Ultra II", 240ULL * kGiB, 4, 16, 4096, 520.0,
                       4.4, 20e-6),
  };
}

HddConfig testbed_hdd_profile() {
  // 500 GiB Toshiba DT01ACA050 stand-in (the paper's PowerEdge T130 disks):
  // ~12ms setup, ~150 MB/s sustained → t(4K) ≈ 27.3us.
  return make_hdd_profile("500 GB Toshiba DT01ACA050", 2016, 500ULL * kGiB,
                          7200.0, 0.012, 0.0000273);
}

SsdConfig testbed_ssd_profile() {
  // 250 GiB Samsung 860 EVO stand-in: ~520 MB/s saturated, SATA overheads.
  return make_ssd_profile("250 GB Samsung 860 EVO", 250ULL * kGiB, 4, 16,
                          4096, 520.0, 3.0, 20e-6);
}

SsdConfig testbed_mq_profile() {
  SsdConfig cfg;
  cfg.name = "500 GB gen4 NVMe";
  cfg.capacity_bytes = 500ULL * kGiB;
  // Eight dies behind four channels: enough flash parallelism that the
  // host-side mechanism (fetch + depth penalty + completion) is what
  // shapes the throughput curve until deep queues.
  cfg.channels = 4;
  cfg.dies_per_channel = 2;
  cfg.page_bytes = 4096;
  cfg.stripe_bytes = 16 * kKiB;
  cfg.hashed_striping = true;
  cfg.page_read_s = 40e-6;
  cfg.page_write_s = 120e-6;
  cfg.bus_s_per_page = 2e-6;
  cfg.command_overhead_s = 20e-6;
  cfg.link_bps = 0.0;  // PCIe gen4 never binds at these rates

  cfg.queue_pairs = 8;
  cfg.queue_depth = 32;
  cfg.completion_mode = CompletionMode::kInterrupt;
  cfg.interrupt_completion_s = 8e-6;
  cfg.polling_completion_s = 1e-6;
  cfg.inflight_penalty_s = 15e-6;
  cfg.gc_interval_s = 0.0;  // experiments opt in
  cfg.gc_burst_s = 2e-3;
  return cfg;
}

}  // namespace damkit::sim
