#include "sim/fault_injection.h"

#include <algorithm>

namespace damkit::sim {

namespace {
void check_rate(double rate, const char* what) {
  DAMKIT_CHECK_MSG(rate >= 0.0 && rate <= 1.0,
                   what << " must be in [0, 1], got " << rate);
}

// splitmix64: the crash tear length must be seeded-deterministic without
// touching fault_rng_, or arming a crash would shift every probabilistic
// draw after it.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

FaultInjectingDevice::FaultInjectingDevice(Device& inner,
                                           const FaultConfig& cfg)
    : Device(inner.capacity_bytes()),
      inner_(&inner),
      cfg_(cfg),
      fault_rng_(cfg.seed),
      spike_rng_(cfg.seed ^ 0x9d2c5680f0e1a3b7ULL),
      crash_at_(cfg.crash_at_io) {
  check_rate(cfg.read_error_rate, "read_error_rate");
  check_rate(cfg.write_error_rate, "write_error_rate");
  check_rate(cfg.torn_write_rate, "torn_write_rate");
  check_rate(cfg.latency_spike_rate, "latency_spike_rate");
}

void FaultInjectingDevice::set_crash_at(uint64_t nth) {
  DAMKIT_CHECK_MSG(nth == 0 || nth > checked_ios(),
                   "crash point " << nth << " already passed ("
                                  << checked_ios() << " checked IOs)");
  crash_at_ = nth;
}

void FaultInjectingDevice::reboot() {
  crash_at_ = 0;
  crashed_ = false;
  pending_torn_.clear();
}

std::string FaultInjectingDevice::name() const {
  return "fault-injected " + inner_->name();
}

void FaultInjectingDevice::export_metrics(stats::MetricsRegistry& reg,
                                          std::string_view prefix) const {
  Device::export_metrics(reg, prefix);
  const std::string p(prefix);
  reg.add(p + "faults.checked_reads", fstats_.checked_reads);
  reg.add(p + "faults.checked_writes", fstats_.checked_writes);
  reg.add(p + "faults.injected_read_errors", fstats_.injected_read_errors);
  reg.add(p + "faults.injected_write_errors", fstats_.injected_write_errors);
  reg.add(p + "faults.injected_torn_writes", fstats_.injected_torn_writes);
  reg.add(p + "faults.injected_latency_spikes",
          fstats_.injected_latency_spikes);
  reg.add(p + "faults.crashes", fstats_.crashes);
  reg.add(p + "faults.post_crash_rejections", fstats_.post_crash_rejections);
}

void FaultInjectingDevice::maybe_spike(IoCompletion& c) {
  if (draw(spike_rng_, cfg_.latency_spike_rate)) {
    c.finish += cfg_.latency_spike_ns;
    ++fstats_.injected_latency_spikes;
  }
}

IoCompletion FaultInjectingDevice::submit_io(const IoRequest& req,
                                             SimTime now) {
  // Snapshot the inner affine split around delegation so the wrapper's
  // stats carry the same setup/transfer decomposition as the inner model.
  const DeviceStats& is = inner_->stats();
  const SimTime setup0 = is.setup_time;
  const SimTime transfer0 = is.transfer_time;
  IoCompletion c = inner_->submit(req, now);
  maybe_spike(c);
  account(req, c, now, is.setup_time - setup0, is.transfer_time - transfer0);
  return c;
}

std::vector<IoCompletion> FaultInjectingDevice::submit_batch_io(
    std::span<const IoRequest> reqs, SimTime now) {
  const DeviceStats& is = inner_->stats();
  const SimTime setup0 = is.setup_time;
  const SimTime transfer0 = is.transfer_time;
  std::vector<IoCompletion> cs = inner_->submit_batch(reqs, now);
  for (size_t i = 0; i < cs.size(); ++i) {
    maybe_spike(cs[i]);
    account(reqs[i], cs[i], now, 0, 0);
  }
  // The affine split is only known batch-wide; fold it in once.
  stats_.setup_time += is.setup_time - setup0;
  stats_.transfer_time += is.transfer_time - transfer0;
  return cs;
}

Status FaultInjectingDevice::inject_fault(const IoRequest& req, SimTime now) {
  (void)now;
  // The crash clock ticks first and consumes no randomness: an armed crash
  // leaves the probabilistic schedule of every pre-crash IO untouched.
  const bool is_read = req.kind == IoKind::kRead;
  if (is_read) {
    ++fstats_.checked_reads;
  } else {
    ++fstats_.checked_writes;
  }
  if (crash_at_ != 0 && checked_ios() >= crash_at_) {
    if (!crashed_) {
      // The crash instant itself: a write in flight lands as a seeded
      // strict prefix (power loss mid-extent); a read returns nothing.
      crashed_ = true;
      ++fstats_.crashes;
      if (!is_read) {
        const uint64_t h = mix64(cfg_.seed ^ mix64(crash_at_ ^ req.offset));
        pending_torn_[req.offset] = req.length <= 1 ? 0 : h % req.length;
        return Status::corruption("device crashed mid-write at offset " +
                                  std::to_string(req.offset));
      }
      return Status::unavailable("device crashed during read at offset " +
                                 std::to_string(req.offset));
    }
    ++fstats_.post_crash_rejections;
    return Status::unavailable("device is crashed; reboot() to continue");
  }
  if (is_read) {
    if (draw(fault_rng_, cfg_.read_error_rate)) {
      ++fstats_.injected_read_errors;
      return Status::unavailable("injected transient read error at offset " +
                                 std::to_string(req.offset));
    }
    return Status();
  }
  if (draw(fault_rng_, cfg_.write_error_rate)) {
    ++fstats_.injected_write_errors;
    return Status::unavailable("injected transient write error at offset " +
                               std::to_string(req.offset));
  }
  if (draw(fault_rng_, cfg_.torn_write_rate)) {
    ++fstats_.injected_torn_writes;
    // Strict prefix: a torn write never lands in full.
    pending_torn_[req.offset] =
        req.length <= 1 ? 0 : fault_rng_.uniform(req.length);
    return Status::corruption("injected torn write at offset " +
                              std::to_string(req.offset));
  }
  return Status();
}

void FaultInjectingDevice::note_failed_write(uint64_t offset,
                                             std::span<const uint8_t> data) {
  const auto it = pending_torn_.find(offset);
  if (it == pending_torn_.end()) return;  // transient error: nothing landed
  const uint64_t torn = std::min<uint64_t>(it->second, data.size());
  pending_torn_.erase(it);
  if (torn > 0) store_.write(offset, data.subspan(0, torn));
}

}  // namespace damkit::sim
