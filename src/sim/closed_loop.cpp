#include "sim/closed_loop.h"

#include <algorithm>
#include <queue>

namespace damkit::sim {

ClosedLoopResult run_closed_loop(Device& dev, const ClosedLoopConfig& config) {
  const uint64_t span = dev.capacity_bytes() - config.io_bytes;
  const uint64_t align = config.align_to_io_size ? config.io_bytes : 1;
  const uint64_t slots = span / align + 1;
  return run_closed_loop(dev, config, [&](int /*client*/, Rng& rng) {
    return rng.uniform(slots) * align;
  });
}

ClosedLoopResult run_closed_loop(
    Device& dev, const ClosedLoopConfig& config,
    const std::function<uint64_t(int client, Rng& rng)>& next_offset) {
  DAMKIT_CHECK(config.clients > 0);
  DAMKIT_CHECK(config.io_bytes > 0);
  DAMKIT_CHECK(config.io_bytes <= dev.capacity_bytes());

  struct Pending {
    SimTime issue_at;
    int client;
    bool operator>(const Pending& other) const {
      // Tie-break on client id for determinism.
      return issue_at != other.issue_at ? issue_at > other.issue_at
                                        : client > other.client;
    }
  };

  Rng rng(config.seed);
  std::vector<uint64_t> remaining(static_cast<size_t>(config.clients),
                                  config.ios_per_client);
  std::priority_queue<Pending, std::vector<Pending>, std::greater<>> queue;
  for (int c = 0; c < config.clients; ++c) queue.push({0, c});

  ClosedLoopResult result;
  while (!queue.empty()) {
    const Pending p = queue.top();
    queue.pop();
    auto& left = remaining[static_cast<size_t>(p.client)];
    if (left == 0) continue;
    --left;

    const uint64_t offset = next_offset(p.client, rng);
    DAMKIT_CHECK_MSG(offset + config.io_bytes <= dev.capacity_bytes(),
                     "offset generator out of range");
    // Each client owns its queue-pair tag: multi-queue devices route the
    // IO onto the client's SQ/CQ pair, single-queue devices ignore it.
    const IoCompletion c =
        dev.submit({config.kind, offset, config.io_bytes,
                    static_cast<uint32_t>(p.client)},
                   p.issue_at);

    result.latency.record(c.latency(p.issue_at));
    result.makespan = std::max(result.makespan, c.finish);
    ++result.total_ios;
    result.total_bytes += config.io_bytes;

    if (left > 0) queue.push({c.finish, p.client});
  }
  return result;
}

}  // namespace damkit::sim
