#include "sim/device.h"

// Device is header-only apart from the destructor; keeping one
// out-of-line definition pins the vtable to this translation unit.

namespace damkit::sim {

Device::~Device() = default;

}  // namespace damkit::sim
