#include "sim/device.h"

// Device is mostly header-only; the destructor pins the vtable to this
// translation unit and the default batch path lives here so subclasses
// that don't override it stay small.

namespace damkit::sim {

Device::~Device() = default;

void Device::export_metrics(stats::MetricsRegistry& reg,
                            std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "reads", stats_.reads);
  reg.add(p + "writes", stats_.writes);
  reg.add(p + "bytes_read", stats_.bytes_read);
  reg.add(p + "bytes_written", stats_.bytes_written);
  reg.add(p + "batches", stats_.batches);
  reg.add(p + "batch_ios", stats_.batch_ios);
  reg.set(p + "busy_seconds", to_seconds(stats_.busy_time));
  reg.set(p + "setup_seconds", to_seconds(stats_.setup_time));
  reg.set(p + "transfer_seconds", to_seconds(stats_.transfer_time));
  reg.set(p + "queue_wait_seconds", to_seconds(stats_.queue_wait));
  reg.set(p + "setup_seconds_per_io", stats_.mean_setup_s_per_io());
  reg.set(p + "transfer_seconds_per_byte", stats_.mean_transfer_s_per_byte());
  if (io_size_.count() > 0) reg.histo(p + "io_size_bytes").merge(io_size_);
  if (latency_.count() > 0) reg.histo(p + "latency_ns").merge(latency_);
  if (batch_width_.count() > 0) {
    reg.histo(p + "batch_width").merge(batch_width_);
  }
}

std::vector<IoCompletion> Device::submit_batch_io(
    std::span<const IoRequest> reqs, SimTime now) {
  // Every request is outstanding at the same `now`; the device's own
  // queueing state (die/channel free times, actuator busy_until) decides
  // how much of the batch overlaps.
  std::vector<IoCompletion> out;
  out.reserve(reqs.size());
  for (const IoRequest& req : reqs) out.push_back(submit_io(req, now));
  return out;
}

}  // namespace damkit::sim
