#include "sim/device.h"

// Device is mostly header-only; the destructor pins the vtable to this
// translation unit and the default batch path lives here so subclasses
// that don't override it stay small.

namespace damkit::sim {

Device::~Device() = default;

std::vector<IoCompletion> Device::submit_batch_io(
    std::span<const IoRequest> reqs, SimTime now) {
  // Every request is outstanding at the same `now`; the device's own
  // queueing state (die/channel free times, actuator busy_until) decides
  // how much of the batch overlaps.
  std::vector<IoCompletion> out;
  out.reserve(reqs.size());
  for (const IoRequest& req : reqs) out.push_back(submit_io(req, now));
  return out;
}

}  // namespace damkit::sim
