// Flash SSD / NVMe simulator.
//
// Like the HDD simulator, this models *more* mechanism than the PDAM it
// validates: flash is organized as channels × dies, logical space is
// striped across dies at a fixed stripe size, each die serves one page
// operation at a time (bank conflicts!), and page payloads cross a shared
// per-channel bus. §4.1 of the paper runs p concurrent random-read streams
// against such a device and fits a two-segment regression; the left segment
// is flat (parallelism absorbs added threads), the right is linear
// (saturation), and the intersection estimates P.
#pragma once

#include <string>
#include <vector>

#include "sim/device.h"

namespace damkit::sim {

struct SsdConfig {
  std::string name = "generic-ssd";
  uint64_t capacity_bytes = 250ULL * 1024 * 1024 * 1024;

  int channels = 2;
  int dies_per_channel = 2;

  uint64_t page_bytes = 4096;        // flash read unit
  uint64_t stripe_bytes = 64 * 1024; // consecutive LBAs map to one die per stripe
  /// FTL placement: false = round-robin stripes over dies (simple,
  /// transparent for tests); true = pseudo-random die per stripe, which is
  /// what real FTLs approximate and what softens bank conflicts — a
  /// multi-stripe IO then fans out over random dies (fork-join).
  bool hashed_striping = false;

  double page_read_s = 60e-6;   // die busy time per page read
  double page_write_s = 250e-6; // die busy time per page program
  double bus_s_per_page = 3e-6; // channel occupancy per page transferred
  double command_overhead_s = 15e-6;  // host/firmware per-IO latency
  /// Host link (SATA/PCIe) bandwidth in bytes/s; 0 disables the stage.
  /// The link is a single shared pipe each IO occupies contiguously for
  /// length/link_bps — typically the resource whose saturation defines
  /// the device's effective parallelism P.
  double link_bps = 0.0;

  int total_dies() const { return channels * dies_per_channel; }

  /// Which die serves byte `offset` (the FTL stripe mapping). Lives on
  /// the config so schedulers can build per-die dispatch lanes without a
  /// device instance.
  int die_of(uint64_t offset) const {
    const uint64_t stripe = offset / stripe_bytes;
    if (!hashed_striping) {
      return static_cast<int>(stripe % static_cast<uint64_t>(total_dies()));
    }
    uint64_t z = stripe + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<int>(z % static_cast<uint64_t>(total_dies()));
  }

  /// Device saturation bandwidth implied by the config (bytes/s): dies
  /// limited by page reads, channels limited by bus transfers.
  double saturated_read_bps() const;
  /// Single-stream (queue depth 1) read bandwidth for `io_bytes` IOs.
  double qd1_read_bps(uint64_t io_bytes) const;
};

/// SSD with per-die and per-channel service queues. Submissions must be in
/// nondecreasing time order (enforced by drivers); completions may overlap
/// arbitrarily across dies — that overlap is the device parallelism P.
class SsdDevice final : public Device {
 public:
  explicit SsdDevice(SsdConfig config);

  std::string name() const override;

  const SsdConfig& config() const { return config_; }

  /// Which die serves byte `offset` (stripe mapping). Exposed for tests.
  int die_of(uint64_t offset) const { return config_.die_of(offset); }
  int channel_of_die(int die) const { return die % config_.channels; }

  /// Fraction of simulated time die `die` spent serving page ops, over the
  /// window from power-on to the last completion. This is the measured
  /// face of the PDAM's P: a batch workload with width ≥ total_dies()
  /// drives every die's utilization toward 1.
  double die_utilization(int die) const;

  /// Base metrics plus: per-die busy seconds and utilization
  /// (die<i>.busy_seconds / die<i>.utilization), their mean, and the time
  /// requests spent queued behind busy dies (`die_wait_seconds`).
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override;

 protected:
  IoCompletion submit_io(const IoRequest& req, SimTime now) override;
  /// P-way-parallel batch service: requests are dispatched round-robin
  /// across the per-die buckets they map to, so a batch of ≤ total_dies()
  /// single-stripe reads on distinct dies completes in one page-service
  /// "step" — exactly the PDAM's `P` IOs of size `B` per time step.
  /// Completions are returned in submission order.
  std::vector<IoCompletion> submit_batch_io(std::span<const IoRequest> reqs,
                                            SimTime now) override;

 private:
  SsdConfig config_;
  std::vector<SimTime> die_free_;      // next idle time per die
  std::vector<SimTime> channel_free_;  // next idle time per channel bus
  SimTime link_free_ = 0;              // next idle time of the host link
  std::vector<SimTime> die_busy_;      // cumulative page-service time per die
  SimTime die_wait_total_ = 0;         // time spent queued behind busy dies
  SimTime horizon_ = 0;                // latest completion seen (utilization)
};

}  // namespace damkit::sim
