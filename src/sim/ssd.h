// Flash SSD / NVMe simulator.
//
// Like the HDD simulator, this models *more* mechanism than the PDAM it
// validates: flash is organized as channels × dies, logical space is
// striped across dies at a fixed stripe size, each die serves one page
// operation at a time (bank conflicts!), and page payloads cross a shared
// per-channel bus. §4.1 of the paper runs p concurrent random-read streams
// against such a device and fits a two-segment regression; the left segment
// is flat (parallelism absorbs added threads), the right is linear
// (saturation), and the intersection estimates P.
#pragma once

#include <string>
#include <vector>

#include "sim/device.h"

namespace damkit::sim {

/// How the host learns about NVMe command completions (consumed by
/// MqSsdDevice; the plain SsdDevice predates doorbells and ignores it).
///   kPolling   — the host spins on the CQ: cheap per completion, burns CPU.
///   kInterrupt — MSI-X per completion: higher fixed cost per IO.
enum class CompletionMode : uint8_t { kPolling, kInterrupt };

const char* completion_mode_name(CompletionMode m);

struct SsdConfig {
  std::string name = "generic-ssd";
  uint64_t capacity_bytes = 250ULL * 1024 * 1024 * 1024;

  int channels = 2;
  int dies_per_channel = 2;

  uint64_t page_bytes = 4096;        // flash read unit
  uint64_t stripe_bytes = 64 * 1024; // consecutive LBAs map to one die per stripe
  /// FTL placement: false = round-robin stripes over dies (simple,
  /// transparent for tests); true = pseudo-random die per stripe, which is
  /// what real FTLs approximate and what softens bank conflicts — a
  /// multi-stripe IO then fans out over random dies (fork-join).
  bool hashed_striping = false;

  double page_read_s = 60e-6;   // die busy time per page read
  double page_write_s = 250e-6; // die busy time per page program
  double bus_s_per_page = 3e-6; // channel occupancy per page transferred
  double command_overhead_s = 15e-6;  // host/firmware per-IO latency
  /// Host link (SATA/PCIe) bandwidth in bytes/s; 0 disables the stage.
  /// The link is a single shared pipe each IO occupies contiguously for
  /// length/link_bps — typically the resource whose saturation defines
  /// the device's effective parallelism P.
  double link_bps = 0.0;

  // --- NVMe multi-queue extension (consumed by MqSsdDevice only; the
  // --- plain SsdDevice models a single implicit SQ and ignores these).
  /// Number of submission/completion queue pairs the controller exposes.
  /// Requests route by IoRequest::queue % queue_pairs.
  int queue_pairs = 8;
  /// Bounded entries per submission queue: the (queue_depth+1)-th command
  /// on a pair stalls until a slot frees at a prior completion.
  int queue_depth = 32;
  CompletionMode completion_mode = CompletionMode::kInterrupt;
  double polling_completion_s = 1e-6;    // CQ reap cost per IO when polling
  double interrupt_completion_s = 8e-6;  // MSI-X + ISR cost per IO
  /// Queue-depth-dependent latency: every outstanding command at admission
  /// adds this much to the new command's fetch/arbitration latency — the
  /// linear lat(q) law the MQ paper measures (FTL map contention, doorbell
  /// arbitration). Pure latency, not a serializing resource.
  double inflight_penalty_s = 0.0;
  /// Die-level garbage collection: each die runs seeded background
  /// program/erase bursts of `gc_burst_s` die-seconds, spaced
  /// ~`gc_interval_s` apart (per-die jittered). 0 disables GC.
  double gc_interval_s = 0.0;
  double gc_burst_s = 2e-3;
  uint64_t gc_seed = 0x6a09e667f3bcc908ULL;

  int total_dies() const { return channels * dies_per_channel; }

  /// Per-IO host completion cost under the configured mode.
  double completion_s() const {
    return completion_mode == CompletionMode::kPolling ? polling_completion_s
                                                       : interrupt_completion_s;
  }

  /// Which die serves byte `offset` (the FTL stripe mapping). Lives on
  /// the config so schedulers can build per-die dispatch lanes without a
  /// device instance.
  int die_of(uint64_t offset) const {
    const uint64_t stripe = offset / stripe_bytes;
    if (!hashed_striping) {
      return static_cast<int>(stripe % static_cast<uint64_t>(total_dies()));
    }
    uint64_t z = stripe + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<int>(z % static_cast<uint64_t>(total_dies()));
  }

  /// Number of stripes a contiguous IO at `offset` spans (its fan-out).
  uint64_t stripes_of(uint64_t offset, uint64_t length) const {
    if (length == 0) return 0;
    return (offset + length - 1) / stripe_bytes - offset / stripe_bytes + 1;
  }

  /// Device saturation bandwidth implied by the config (bytes/s): dies
  /// limited by page reads, channels limited by bus transfers.
  double saturated_read_bps() const;
  /// Single-stream (queue depth 1) read bandwidth for `io_bytes` IOs:
  /// io_bytes over the fork-join latency of one IO on an idle device,
  /// walking the same stripe/die/channel/link mechanism submit_io uses.
  /// Under hashed striping the latency depends on which dies the stripes
  /// land on, so the closed form averages a deterministic sample of
  /// io-aligned placements.
  double qd1_read_bps(uint64_t io_bytes) const;
};

/// SSD with per-die and per-channel service queues. Submissions must be in
/// nondecreasing time order (enforced by drivers); completions may overlap
/// arbitrarily across dies — that overlap is the device parallelism P.
class SsdDevice : public Device {
 public:
  explicit SsdDevice(SsdConfig config);

  std::string name() const override;

  const SsdConfig& config() const { return config_; }

  /// Which die serves byte `offset` (stripe mapping). Exposed for tests.
  int die_of(uint64_t offset) const { return config_.die_of(offset); }
  int channel_of_die(int die) const { return die % config_.channels; }

  /// Fraction of simulated time die `die` spent serving page ops, over the
  /// window from power-on to the last completion. This is the measured
  /// face of the PDAM's P: a batch workload with width ≥ total_dies()
  /// drives every die's utilization toward 1.
  double die_utilization(int die) const;

  /// Time requests spent queued behind *other* requests' die backlog.
  double die_wait_seconds() const { return to_seconds(die_wait_total_); }
  /// Time later stripes of a request spent queued behind sibling stripes
  /// of the *same* request that hashed to the same die (intra-IO
  /// self-serialization — internal fan-out lost to die collisions, not
  /// cross-request contention).
  double intra_io_wait_seconds() const { return to_seconds(self_wait_total_); }

  /// Base metrics plus: per-die busy seconds and utilization
  /// (die<i>.busy_seconds / die<i>.utilization), their mean, the time
  /// requests spent queued behind other requests' die backlog
  /// (`die_wait_seconds`), and the intra-IO self-serialization time
  /// (`intra_io_wait_seconds`).
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override;

 protected:
  IoCompletion submit_io(const IoRequest& req, SimTime now) override;
  /// P-way-parallel batch service: requests are dispatched round-robin
  /// across the per-die buckets they map to, weighted by each request's
  /// stripe fan-out (a two-stripe request consumes two dispatch credits),
  /// so a batch of ≤ total_dies() single-stripe reads on distinct dies
  /// completes in one page-service "step" — exactly the PDAM's `P` IOs of
  /// size `B` per time step — and multi-stripe requests cannot starve
  /// their bucket's round-robin share. Completions are returned in
  /// submission order.
  std::vector<IoCompletion> submit_batch_io(std::span<const IoRequest> reqs,
                                            SimTime now) override;

  /// Result of the flash-side (die + channel bus) service of one request.
  struct FlashService {
    SimTime finish = 0;        // last payload byte off the channel buses
    uint64_t total_pages = 0;  // page ops charged (transfer accounting)
  };

  /// Walks `req` stripe by stripe through the die/channel mechanism
  /// starting at `issue`, updating the free-time queues, busy counters and
  /// the die-wait split. Shared by SsdDevice and MqSsdDevice so both speak
  /// the same flash core.
  FlashService serve_flash(const IoRequest& req, SimTime issue);

  /// Host-link stage: the payload crosses one shared pipe contiguously
  /// once flash has produced it. Returns the completion time and the
  /// link occupancy via `*occupancy` (0 when the link is disabled).
  SimTime serve_link(uint64_t length, SimTime flash_finish,
                     SimTime* occupancy);

  /// Hook invoked once per stripe just before its die's free time is
  /// read. MqSsdDevice injects garbage-collection bursts here.
  virtual void on_die_touch(int die, SimTime issue) {
    (void)die;
    (void)issue;
  }

  SsdConfig config_;
  std::vector<SimTime> die_free_;      // next idle time per die
  std::vector<SimTime> channel_free_;  // next idle time per channel bus
  SimTime link_free_ = 0;              // next idle time of the host link
  std::vector<SimTime> die_busy_;      // cumulative page-service time per die
  SimTime die_wait_total_ = 0;   // queued behind OTHER requests' die backlog
  SimTime self_wait_total_ = 0;  // intra-IO sibling-stripe serialization
  SimTime horizon_ = 0;          // latest completion seen (utilization)

 private:
  // Per-request scratch for the die-wait split: die service added by the
  // request in flight, so later stripes can tell self-inflicted backlog
  // from cross-request queueing. Members to avoid per-IO allocation.
  std::vector<SimTime> own_service_scratch_;
  std::vector<int> touched_scratch_;
};

}  // namespace damkit::sim
