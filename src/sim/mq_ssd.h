// NVMe-style multi-queue SSD simulator — the device the MQ model
// (arXiv 2507.06349, ROADMAP item 2) is fitted against.
//
// MqSsdDevice shares SsdDevice's flash core (channels × dies, striping,
// per-channel buses, host link) and adds the host/firmware mechanism the
// PDAM cannot express:
//
//   * per-client SQ/CQ pairs: IoRequest::queue % queue_pairs names the
//     pair; each pair holds at most queue_depth outstanding commands, and
//     an admission past the bound stalls until the pair's earliest
//     completion frees a slot;
//   * queue-depth-dependent latency: every command outstanding across the
//     controller at admission adds inflight_penalty_s to the new command's
//     fetch/arbitration time — the linear lat(q) law the MQ paper
//     measures. It is pure latency (commands overlap freely), so a closed
//     loop saturates *smoothly* toward 1/penalty instead of at the PDAM's
//     sharp knee;
//   * polling-vs-interrupt completion: a fixed per-IO host cost appended
//     after the flash/link stages, selected by SsdConfig::completion_mode;
//   * die-level garbage collection: each die runs seeded background
//     program/erase bursts (gc_interval_s apart, gc_burst_s long) that
//     steal die time from foreground IOs — the tail-latency perturbation
//     no averaged model predicts.
//
// Timing only: data placement and payload semantics are identical to
// SsdDevice, so any engine must produce bit-identical results on either
// device (the cross-device differential test pins this).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/ssd.h"

namespace damkit::sim {

class MqSsdDevice final : public SsdDevice {
 public:
  explicit MqSsdDevice(SsdConfig config);

  std::string name() const override;

  /// Introspection for tests and benches.
  uint64_t gc_bursts() const { return gc_bursts_; }
  double gc_stolen_seconds() const { return to_seconds(gc_stolen_total_); }
  uint64_t admission_stalls() const { return admission_stalls_; }
  double sq_wait_seconds() const { return to_seconds(sq_wait_total_); }
  uint64_t max_inflight() const { return max_inflight_; }
  uint64_t queue_ios(int queue) const;

  /// SsdDevice metrics plus, under `<prefix>mq.`: queue_pairs/queue_depth,
  /// sq_wait_seconds (bounded-depth admission stalls),
  /// inflight_penalty_seconds (depth-dependent fetch latency),
  /// completion_seconds (polling/interrupt reap cost), max_inflight,
  /// admission_stalls, per-queue IO counts (queue<i>.ios), and
  /// gc.bursts / gc.stolen_seconds.
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override;

 protected:
  IoCompletion submit_io(const IoRequest& req, SimTime now) override;
  void on_die_touch(int die, SimTime issue) override;

 private:
  /// Drop completions at or before `t` from a queue's outstanding set
  /// (slots free the moment their command completes).
  static void prune(std::vector<SimTime>& inflight, SimTime t);

  SimTime next_gc_gap(size_t die);

  // Outstanding completion times, per queue pair and controller-wide.
  // Sorted-vector multisets: queue_depth is small (NVMe SQs are bounded)
  // and submissions vastly outnumber queue slots.
  std::vector<std::vector<SimTime>> sq_inflight_;
  std::vector<SimTime> all_inflight_;
  std::vector<uint64_t> queue_ios_;

  // GC schedule per die: next burst start (in die time) and RNG stream.
  std::vector<SimTime> gc_next_;
  std::vector<uint64_t> gc_rng_;

  SimTime sq_wait_total_ = 0;       // admission stalls on full SQs
  SimTime penalty_total_ = 0;       // depth-dependent fetch latency
  SimTime completion_total_ = 0;    // CQ reap cost (polling/interrupt)
  SimTime gc_stolen_total_ = 0;     // die time consumed by GC bursts
  uint64_t gc_bursts_ = 0;
  uint64_t admission_stalls_ = 0;
  uint64_t max_inflight_ = 0;
};

}  // namespace damkit::sim
