#include "sim/hdd.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace damkit::sim {

HddDevice::HddDevice(HddConfig config, uint64_t rng_seed)
    : Device(config.capacity_bytes), config_(std::move(config)) {
  DAMKIT_CHECK(config_.track_bytes > 0);
  DAMKIT_CHECK(config_.capacity_bytes >= config_.track_bytes);
  DAMKIT_CHECK(config_.full_stroke_s >= config_.track_to_track_s);
  DAMKIT_CHECK(config_.zone_ratio >= 1.0);
  num_tracks_ = config_.capacity_bytes / config_.track_bytes;
  Rng rng(rng_seed);
  head_track_ = rng.uniform(num_tracks_);
}

std::string HddDevice::name() const {
  return config_.name + " (" + std::to_string(config_.year) + ")";
}

double HddDevice::bandwidth_at(uint64_t track) const {
  // Outer tracks (low index) are faster; linear interpolation chosen so the
  // surface-average bandwidth equals config_.avg_bandwidth_bps.
  const double r = config_.zone_ratio;
  const double outer = 2.0 * r / (1.0 + r);
  const double inner = 2.0 / (1.0 + r);
  const double frac =
      static_cast<double>(track) / static_cast<double>(num_tracks_);
  return config_.avg_bandwidth_bps * (outer + (inner - outer) * frac);
}

double HddDevice::seek_time_s(uint64_t distance) const {
  if (distance == 0) return 0.0;
  const double frac =
      static_cast<double>(distance) / static_cast<double>(num_tracks_);
  return config_.track_to_track_s +
         (config_.full_stroke_s - config_.track_to_track_s) * std::sqrt(frac);
}

IoCompletion HddDevice::submit_io(const IoRequest& req, SimTime now) {
  check_bounds(req);
  const SimTime start = std::max(now, busy_until_);

  // 1. Command processing + arm seek.
  const uint64_t target_track = track_of(req.offset);
  const uint64_t distance = (target_track > head_track_)
                                ? target_track - head_track_
                                : head_track_ - target_track;
  const SimTime command_t = from_seconds(config_.command_overhead_s);
  const SimTime seek_t = from_seconds(seek_time_s(distance));
  const SimTime arrive = start + command_t + seek_t;

  // 2. Rotational latency: wait for the target sector to come under the
  // head. The platter's angular position is a pure function of time.
  const SimTime period = from_seconds(config_.rotation_period_s());
  const double target_frac =
      static_cast<double>(req.offset % config_.track_bytes) /
      static_cast<double>(config_.track_bytes);
  const SimTime target_in_period =
      static_cast<SimTime>(target_frac * static_cast<double>(period));
  const SimTime phase = arrive % period;
  const SimTime rot_wait = (target_in_period >= phase)
                               ? target_in_period - phase
                               : period - phase + target_in_period;
  SimTime t = arrive + rot_wait;

  // 3. Media transfer, zone-aware, with a head/track switch at each track
  // boundary crossed.
  uint64_t off = req.offset;
  uint64_t remaining = req.length;
  double transfer_s = 0.0;
  while (remaining > 0) {
    const uint64_t track = off / config_.track_bytes;
    const uint64_t in_track = config_.track_bytes - off % config_.track_bytes;
    const uint64_t chunk = std::min(remaining, in_track);
    transfer_s += static_cast<double>(chunk) / bandwidth_at(track);
    off += chunk;
    remaining -= chunk;
    if (remaining > 0) transfer_s += config_.track_to_track_s * 0.25;
  }
  t += from_seconds(transfer_s);

  head_track_ = track_of(req.offset + req.length - 1);
  busy_until_ = t;

  // Affine split: setup = command + seek + rotational wait (everything
  // before the first payload byte), transfer = zoned media time.
  command_time_total_ += command_t;
  seek_time_total_ += seek_t;
  rot_wait_total_ += rot_wait;
  DAMKIT_STATS_ONLY({
    if (stats::collecting()) seek_tracks_.record(distance);
  });

  const IoCompletion c{start, t};
  account(req, c, now, command_t + seek_t + rot_wait,
          from_seconds(transfer_s));
  return c;
}

void HddDevice::export_metrics(stats::MetricsRegistry& reg,
                               std::string_view prefix) const {
  Device::export_metrics(reg, prefix);
  const std::string p(prefix);
  reg.set(p + "seek_seconds", to_seconds(seek_time_total_));
  reg.set(p + "rot_wait_seconds", to_seconds(rot_wait_total_));
  reg.set(p + "command_seconds", to_seconds(command_time_total_));
  reg.set(p + "predicted_setup_seconds_per_io", config_.expected_setup_s());
  reg.set(p + "predicted_transfer_seconds_per_byte",
          config_.expected_transfer_s_per_byte());
  if (seek_tracks_.count() > 0) {
    reg.histo(p + "seek_tracks").merge(seek_tracks_);
  }
}

std::vector<IoCompletion> HddDevice::submit_batch_io(
    std::span<const IoRequest> reqs, SimTime now) {
  std::vector<IoCompletion> out(reqs.size());
  std::vector<size_t> pending(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) pending[i] = i;

  // Greedy service order from the live arm position, mirroring the NCQ
  // policies of scheduler.h at batch granularity.
  while (!pending.empty()) {
    size_t pick = 0;
    if (config_.batch_policy != SchedPolicy::kFifo) {
      const uint64_t head = head_track_;
      auto distance = [&](size_t idx) {
        const uint64_t t = track_of(reqs[idx].offset);
        return t > head ? t - head : head - t;
      };
      if (config_.batch_policy == SchedPolicy::kSstf) {
        for (size_t j = 1; j < pending.size(); ++j) {
          if (distance(pending[j]) < distance(pending[pick])) pick = j;
        }
      } else {  // kScan: nearest track on the current sweep side
        auto on_side = [&](size_t idx) {
          const uint64_t t = track_of(reqs[idx].offset);
          return batch_scan_up_ ? t >= head : t <= head;
        };
        bool found = false;
        for (size_t j = 0; j < pending.size(); ++j) {
          if (!on_side(pending[j])) continue;
          if (!found || distance(pending[j]) < distance(pending[pick])) {
            pick = j;
            found = true;
          }
        }
        if (!found) {  // nothing left on this side: reverse the sweep
          batch_scan_up_ = !batch_scan_up_;
          for (size_t j = 1; j < pending.size(); ++j) {
            if (distance(pending[j]) < distance(pending[pick])) pick = j;
          }
        }
      }
    }
    const size_t idx = pending[pick];
    out[idx] = submit_io(reqs[idx], now);
    pending.erase(pending.begin() + static_cast<ptrdiff_t>(pick));
  }
  return out;
}

}  // namespace damkit::sim
