#include "sim/ssd.h"

#include <algorithm>
#include <cmath>

namespace damkit::sim {

double SsdConfig::saturated_read_bps() const {
  const double die_limit = static_cast<double>(total_dies()) *
                           static_cast<double>(page_bytes) / page_read_s;
  const double bus_limit = static_cast<double>(channels) *
                           static_cast<double>(page_bytes) / bus_s_per_page;
  double limit = std::min(die_limit, bus_limit);
  if (link_bps > 0.0) limit = std::min(limit, link_bps);
  return limit;
}

double SsdConfig::qd1_read_bps(uint64_t io_bytes) const {
  // An IO fans out over its stripes (parallel dies); each die serves its
  // stripe's pages serially. A single stream never overlaps its own IOs,
  // so QD1 bandwidth is io_bytes over one fork-join latency.
  const double pages_per_stripe =
      std::ceil(static_cast<double>(std::min(io_bytes, stripe_bytes)) /
                static_cast<double>(page_bytes));
  double latency = command_overhead_s +
                   pages_per_stripe * (page_read_s + bus_s_per_page);
  if (link_bps > 0.0) latency += static_cast<double>(io_bytes) / link_bps;
  return static_cast<double>(io_bytes) / latency;
}

SsdDevice::SsdDevice(SsdConfig config)
    : Device(config.capacity_bytes), config_(std::move(config)) {
  DAMKIT_CHECK(config_.channels > 0 && config_.dies_per_channel > 0);
  DAMKIT_CHECK(config_.page_bytes > 0);
  DAMKIT_CHECK(config_.stripe_bytes >= config_.page_bytes);
  die_free_.assign(static_cast<size_t>(config_.total_dies()), 0);
  channel_free_.assign(static_cast<size_t>(config_.channels), 0);
  die_busy_.assign(static_cast<size_t>(config_.total_dies()), 0);
}

std::string SsdDevice::name() const { return config_.name; }

IoCompletion SsdDevice::submit_io(const IoRequest& req, SimTime now) {
  check_bounds(req);
  const SimTime issue = now + from_seconds(config_.command_overhead_s);
  const double service_s = (req.kind == IoKind::kRead) ? config_.page_read_s
                                                       : config_.page_write_s;
  const SimTime page_service = from_seconds(service_s);
  const SimTime bus_service = from_seconds(config_.bus_s_per_page);

  // Walk the request stripe by stripe; each stripe's pages are served
  // serially by its die (a die has one sense amp), then cross the channel
  // bus. Different stripes of one large IO land on different dies and
  // proceed in parallel — exactly the internal parallelism the PDAM models.
  SimTime finish = issue;
  uint64_t off = req.offset;
  uint64_t remaining = req.length;
  uint64_t total_pages = 0;
  while (remaining > 0) {
    const uint64_t in_stripe =
        config_.stripe_bytes - (off % config_.stripe_bytes);
    const uint64_t chunk = std::min(remaining, in_stripe);
    const uint64_t pages =
        (chunk + config_.page_bytes - 1) / config_.page_bytes;

    const int die = die_of(off);
    const int chan = channel_of_die(die);
    SimTime die_t = std::max(issue, die_free_[static_cast<size_t>(die)]);
    die_wait_total_ += die_t - issue;  // queued behind this die's backlog
    SimTime chan_t = channel_free_[static_cast<size_t>(chan)];
    for (uint64_t p = 0; p < pages; ++p) {
      die_t += page_service;  // die busy for the page op
      // Page payload crosses the channel bus after the die finishes it.
      chan_t = std::max(chan_t, die_t) + bus_service;
    }
    die_busy_[static_cast<size_t>(die)] += pages * page_service;
    die_free_[static_cast<size_t>(die)] = die_t;
    channel_free_[static_cast<size_t>(chan)] = chan_t;
    finish = std::max(finish, chan_t);

    total_pages += pages;
    off += chunk;
    remaining -= chunk;
  }

  // Host-link stage: the whole payload crosses one shared pipe
  // contiguously once the flash side has produced it. Link saturation is
  // what bounds the device's effective parallelism.
  SimTime link_occupancy = 0;
  if (config_.link_bps > 0.0) {
    link_occupancy =
        from_seconds(static_cast<double>(req.length) / config_.link_bps);
    const SimTime start_link = std::max(finish, link_free_);
    link_free_ = start_link + link_occupancy;
    finish = link_free_;
  }

  horizon_ = std::max(horizon_, finish);

  // Affine split: setup is the fixed host/firmware command cost; transfer
  // is the page-proportional flash + bus work plus the link occupancy
  // (die queueing is tracked separately as die_wait).
  const IoCompletion c{issue, finish};
  account(req, c, now, issue - now,
          total_pages * (page_service + bus_service) + link_occupancy);
  return c;
}

double SsdDevice::die_utilization(int die) const {
  DAMKIT_CHECK(die >= 0 && die < config_.total_dies());
  if (horizon_ == 0) return 0.0;
  return to_seconds(die_busy_[static_cast<size_t>(die)]) /
         to_seconds(horizon_);
}

void SsdDevice::export_metrics(stats::MetricsRegistry& reg,
                               std::string_view prefix) const {
  Device::export_metrics(reg, prefix);
  const std::string p(prefix);
  reg.set(p + "die_wait_seconds", to_seconds(die_wait_total_));
  double total_util = 0.0;
  for (int d = 0; d < config_.total_dies(); ++d) {
    const double util = die_utilization(d);
    total_util += util;
    const std::string dp = p + "die" + std::to_string(d) + ".";
    reg.set(dp + "busy_seconds",
            to_seconds(die_busy_[static_cast<size_t>(d)]));
    reg.set(dp + "utilization", util);
  }
  reg.set(p + "mean_die_utilization",
          total_util / static_cast<double>(config_.total_dies()));
}

std::vector<IoCompletion> SsdDevice::submit_batch_io(
    std::span<const IoRequest> reqs, SimTime now) {
  // Bucket requests by the die serving their first stripe, then dispatch
  // round-robin across the buckets. All requests carry the same `now`, so
  // the per-die/per-channel free-time queues overlap them; the dispatch
  // order only decides who queues behind whom on a shared die, channel
  // bus, or host link — round-robin keeps that fair across dies instead
  // of letting one die's backlog serialize the bus.
  std::vector<IoCompletion> out(reqs.size());
  std::vector<std::vector<size_t>> by_die(
      static_cast<size_t>(config_.total_dies()));
  for (size_t i = 0; i < reqs.size(); ++i) {
    by_die[static_cast<size_t>(die_of(reqs[i].offset))].push_back(i);
  }
  size_t served = 0;
  for (size_t round = 0; served < reqs.size(); ++round) {
    for (const auto& bucket : by_die) {
      if (round >= bucket.size()) continue;
      out[bucket[round]] = submit_io(reqs[bucket[round]], now);
      ++served;
    }
  }
  return out;
}

}  // namespace damkit::sim
