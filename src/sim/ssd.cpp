#include "sim/ssd.h"

#include <algorithm>
#include <cmath>

namespace damkit::sim {

const char* completion_mode_name(CompletionMode m) {
  switch (m) {
    case CompletionMode::kPolling:
      return "polling";
    case CompletionMode::kInterrupt:
      return "interrupt";
  }
  return "unknown";
}

double SsdConfig::saturated_read_bps() const {
  const double die_limit = static_cast<double>(total_dies()) *
                           static_cast<double>(page_bytes) / page_read_s;
  const double bus_limit = static_cast<double>(channels) *
                           static_cast<double>(page_bytes) / bus_s_per_page;
  double limit = std::min(die_limit, bus_limit);
  if (link_bps > 0.0) limit = std::min(limit, link_bps);
  return limit;
}

namespace {

/// Fork-join latency in seconds of one read IO at `offset` on an idle
/// device: the exact stripe/die/channel walk of SsdDevice::submit_io plus
/// command overhead and the link stage, evaluated statelessly. At QD1 a
/// stream never overlaps its own IOs (every resource drains before the
/// next submission), so this is the precise per-IO time of a closed loop.
double qd1_read_latency_s(const SsdConfig& cfg, uint64_t offset,
                          uint64_t io_bytes) {
  std::vector<double> die_free(static_cast<size_t>(cfg.total_dies()), 0.0);
  std::vector<double> chan_free(static_cast<size_t>(cfg.channels), 0.0);
  double finish = 0.0;
  uint64_t off = offset;
  uint64_t remaining = io_bytes;
  while (remaining > 0) {
    const uint64_t in_stripe = cfg.stripe_bytes - (off % cfg.stripe_bytes);
    const uint64_t chunk = std::min(remaining, in_stripe);
    const uint64_t pages = (chunk + cfg.page_bytes - 1) / cfg.page_bytes;
    const auto die = static_cast<size_t>(cfg.die_of(off));
    const size_t chan = die % static_cast<size_t>(cfg.channels);
    double die_t = die_free[die];
    double chan_t = chan_free[chan];
    for (uint64_t p = 0; p < pages; ++p) {
      die_t += cfg.page_read_s;
      chan_t = std::max(chan_t, die_t) + cfg.bus_s_per_page;
    }
    die_free[die] = die_t;
    chan_free[chan] = chan_t;
    finish = std::max(finish, chan_t);
    off += chunk;
    remaining -= chunk;
  }
  double latency = cfg.command_overhead_s + finish;
  if (cfg.link_bps > 0.0) {
    latency += static_cast<double>(io_bytes) / cfg.link_bps;
  }
  return latency;
}

}  // namespace

double SsdConfig::qd1_read_bps(uint64_t io_bytes) const {
  DAMKIT_CHECK(io_bytes > 0 && io_bytes <= capacity_bytes);
  if (!hashed_striping) {
    // Round-robin striping is rotation-symmetric: every aligned placement
    // sees the same relative die/channel sequence, so one walk suffices.
    return static_cast<double>(io_bytes) /
           qd1_read_latency_s(*this, 0, io_bytes);
  }
  // Hashed striping: the fan-out (and hence the fork-join latency) depends
  // on which dies the IO's stripes hash to. Average over a deterministic
  // sample of io-aligned placements — the same distribution a closed loop
  // with aligned uniform offsets draws from.
  constexpr int kSamples = 128;
  double sum = 0.0;
  int n = 0;
  for (int i = 0; i < kSamples; ++i) {
    const uint64_t off = static_cast<uint64_t>(i) * io_bytes;
    if (off + io_bytes > capacity_bytes) break;
    sum += qd1_read_latency_s(*this, off, io_bytes);
    ++n;
  }
  DAMKIT_CHECK(n > 0);
  return static_cast<double>(io_bytes) / (sum / n);
}

SsdDevice::SsdDevice(SsdConfig config)
    : Device(config.capacity_bytes), config_(std::move(config)) {
  DAMKIT_CHECK(config_.channels > 0 && config_.dies_per_channel > 0);
  DAMKIT_CHECK(config_.page_bytes > 0);
  DAMKIT_CHECK(config_.stripe_bytes >= config_.page_bytes);
  die_free_.assign(static_cast<size_t>(config_.total_dies()), 0);
  channel_free_.assign(static_cast<size_t>(config_.channels), 0);
  die_busy_.assign(static_cast<size_t>(config_.total_dies()), 0);
  own_service_scratch_.assign(static_cast<size_t>(config_.total_dies()), 0);
}

std::string SsdDevice::name() const { return config_.name; }

SsdDevice::FlashService SsdDevice::serve_flash(const IoRequest& req,
                                               SimTime issue) {
  const double service_s = (req.kind == IoKind::kRead) ? config_.page_read_s
                                                       : config_.page_write_s;
  const SimTime page_service = from_seconds(service_s);
  const SimTime bus_service = from_seconds(config_.bus_s_per_page);

  // Walk the request stripe by stripe; each stripe's pages are served
  // serially by its die (a die has one sense amp), then cross the channel
  // bus. Different stripes of one large IO land on different dies and
  // proceed in parallel — exactly the internal parallelism the PDAM models.
  FlashService out;
  out.finish = issue;
  uint64_t off = req.offset;
  uint64_t remaining = req.length;
  while (remaining > 0) {
    const uint64_t in_stripe =
        config_.stripe_bytes - (off % config_.stripe_bytes);
    const uint64_t chunk = std::min(remaining, in_stripe);
    const uint64_t pages =
        (chunk + config_.page_bytes - 1) / config_.page_bytes;

    const int die = die_of(off);
    const int chan = channel_of_die(die);
    on_die_touch(die, issue);
    SimTime die_t = std::max(issue, die_free_[static_cast<size_t>(die)]);
    // Die-wait split: backlog this request created on the die (sibling
    // stripes that hashed to it) is self-serialization, not contention
    // with other requests.
    const SimTime wait = die_t - issue;
    const SimTime self =
        std::min(wait, own_service_scratch_[static_cast<size_t>(die)]);
    self_wait_total_ += self;
    die_wait_total_ += wait - self;
    if (own_service_scratch_[static_cast<size_t>(die)] == 0) {
      touched_scratch_.push_back(die);
    }
    SimTime chan_t = channel_free_[static_cast<size_t>(chan)];
    for (uint64_t p = 0; p < pages; ++p) {
      die_t += page_service;  // die busy for the page op
      // Page payload crosses the channel bus after the die finishes it.
      chan_t = std::max(chan_t, die_t) + bus_service;
    }
    die_busy_[static_cast<size_t>(die)] += pages * page_service;
    die_free_[static_cast<size_t>(die)] = die_t;
    own_service_scratch_[static_cast<size_t>(die)] += pages * page_service;
    channel_free_[static_cast<size_t>(chan)] = chan_t;
    out.finish = std::max(out.finish, chan_t);

    out.total_pages += pages;
    off += chunk;
    remaining -= chunk;
  }
  for (const int die : touched_scratch_) {
    own_service_scratch_[static_cast<size_t>(die)] = 0;
  }
  touched_scratch_.clear();
  return out;
}

SimTime SsdDevice::serve_link(uint64_t length, SimTime flash_finish,
                              SimTime* occupancy) {
  *occupancy = 0;
  if (config_.link_bps <= 0.0) return flash_finish;
  *occupancy =
      from_seconds(static_cast<double>(length) / config_.link_bps);
  const SimTime start_link = std::max(flash_finish, link_free_);
  link_free_ = start_link + *occupancy;
  return link_free_;
}

IoCompletion SsdDevice::submit_io(const IoRequest& req, SimTime now) {
  check_bounds(req);
  const SimTime issue = now + from_seconds(config_.command_overhead_s);
  const FlashService flash = serve_flash(req, issue);

  // Host-link stage: the whole payload crosses one shared pipe
  // contiguously once the flash side has produced it. Link saturation is
  // what bounds the device's effective parallelism.
  SimTime link_occupancy = 0;
  const SimTime finish = serve_link(req.length, flash.finish, &link_occupancy);

  horizon_ = std::max(horizon_, finish);

  // Affine split: setup is the fixed host/firmware command cost; transfer
  // is the page-proportional flash + bus work plus the link occupancy
  // (die queueing is tracked separately as die_wait).
  const SimTime page_service = from_seconds(
      (req.kind == IoKind::kRead) ? config_.page_read_s
                                  : config_.page_write_s);
  const SimTime bus_service = from_seconds(config_.bus_s_per_page);
  const IoCompletion c{issue, finish};
  account(req, c, now, issue - now,
          flash.total_pages * (page_service + bus_service) + link_occupancy);
  return c;
}

double SsdDevice::die_utilization(int die) const {
  DAMKIT_CHECK(die >= 0 && die < config_.total_dies());
  if (horizon_ == 0) return 0.0;
  return to_seconds(die_busy_[static_cast<size_t>(die)]) /
         to_seconds(horizon_);
}

void SsdDevice::export_metrics(stats::MetricsRegistry& reg,
                               std::string_view prefix) const {
  Device::export_metrics(reg, prefix);
  const std::string p(prefix);
  reg.set(p + "die_wait_seconds", to_seconds(die_wait_total_));
  reg.set(p + "intra_io_wait_seconds", to_seconds(self_wait_total_));
  double total_util = 0.0;
  for (int d = 0; d < config_.total_dies(); ++d) {
    const double util = die_utilization(d);
    total_util += util;
    const std::string dp = p + "die" + std::to_string(d) + ".";
    reg.set(dp + "busy_seconds",
            to_seconds(die_busy_[static_cast<size_t>(d)]));
    reg.set(dp + "utilization", util);
  }
  reg.set(p + "mean_die_utilization",
          total_util / static_cast<double>(config_.total_dies()));
}

std::vector<IoCompletion> SsdDevice::submit_batch_io(
    std::span<const IoRequest> reqs, SimTime now) {
  // Bucket requests by the die serving their first stripe, then dispatch
  // round-robin across the buckets. All requests carry the same `now`, so
  // the per-die/per-channel free-time queues overlap them; the dispatch
  // order only decides who queues behind whom on a shared die, channel
  // bus, or host link — round-robin keeps that fair across dies instead
  // of letting one die's backlog serialize the bus. Dispatch credits are
  // weighted by stripe fan-out: a w-stripe request occupies w dies'
  // worth of service, so its bucket sits out the next w-1 rounds rather
  // than claiming a fresh slot every round.
  std::vector<IoCompletion> out(reqs.size());
  struct Bucket {
    std::vector<size_t> idx;
    size_t next = 0;
    size_t resume_round = 0;
  };
  std::vector<Bucket> by_die(static_cast<size_t>(config_.total_dies()));
  for (size_t i = 0; i < reqs.size(); ++i) {
    by_die[static_cast<size_t>(die_of(reqs[i].offset))].idx.push_back(i);
  }
  size_t served = 0;
  for (size_t round = 0; served < reqs.size(); ++round) {
    for (Bucket& bucket : by_die) {
      if (bucket.next >= bucket.idx.size() || round < bucket.resume_round) {
        continue;
      }
      const size_t i = bucket.idx[bucket.next++];
      out[i] = submit_io(reqs[i], now);
      bucket.resume_round =
          round + static_cast<size_t>(
                      config_.stripes_of(reqs[i].offset, reqs[i].length));
      ++served;
    }
  }
  return out;
}

}  // namespace damkit::sim
