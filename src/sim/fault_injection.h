// Deterministic fault injection for any simulated device.
//
// FaultInjectingDevice decorates an inner Device: timing is delegated to
// the inner model (so an HDD still seeks and an SSD still stripes across
// dies under injected faults), payload lives in the wrapper's own sparse
// store, and a seeded Rng drives per-request fault draws in submission
// order — the same seed and config replay the same fault schedule
// bit-for-bit.
//
// Three fault classes, each with an independent probability:
//   - transient read/write errors: the IO occupies the device (timing is
//     charged) but fails with kUnavailable; no payload moves. Retrying is
//     safe and usually succeeds.
//   - torn writes: the submission fails with kCorruption and only a
//     random strict prefix of the payload reaches the media (via the
//     note_failed_write hook). Callers that give up must not re-read the
//     extent without recovery.
//   - latency spikes: the IO succeeds but completes late by a configured
//     delta (garbage collection, remapping, link retraining — the tail
//     events Didona et al. highlight).
//
// On top of the probabilistic classes sits a deterministic *crash point*:
// arm it at the Nth checked IO and that IO fails — a write lands only as
// a seeded strict prefix (power loss mid-extent), a read returns nothing —
// and every later checked IO fails kUnavailable until reboot() is called.
// The media (the wrapper's sparse store) survives the crash, which is
// exactly what a recovery path gets to work with. The crash check consumes
// no randomness, so arming it never perturbs the probabilistic schedules
// of IOs before the crash point.
//
// Faults are only consulted on the *checked* submission paths
// (submit_checked / read_checked / ...); the legacy CHECK-abort paths
// never fail, so code that has not opted into error handling keeps its
// exact previous behavior. Latency spikes apply to every path — a slow IO
// is not an error.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/device.h"
#include "util/rng.h"
#include "util/status.h"

namespace damkit::sim {

/// Probabilities are per checked request, in [0, 1]. Error and torn draws
/// happen in submission order from one stream; spike draws use a second
/// stream so enabling checked paths does not perturb spike placement.
struct FaultConfig {
  uint64_t seed = 1;
  double read_error_rate = 0.0;     // P(kUnavailable) per checked read
  double write_error_rate = 0.0;    // P(kUnavailable) per checked write
  double torn_write_rate = 0.0;     // P(kCorruption + torn prefix) per write
  double latency_spike_rate = 0.0;  // P(finish += latency_spike_ns) per IO
  SimTime latency_spike_ns = 10 * kNsPerMs;
  /// 1-based checked-IO index at which the device dies; 0 = never. The
  /// crash_at_io-th checked IO and every later one fail until reboot().
  uint64_t crash_at_io = 0;
};

struct FaultStats {
  uint64_t checked_reads = 0;
  uint64_t checked_writes = 0;
  uint64_t injected_read_errors = 0;
  uint64_t injected_write_errors = 0;
  uint64_t injected_torn_writes = 0;
  uint64_t injected_latency_spikes = 0;
  uint64_t crashes = 0;                // crash points that actually fired
  uint64_t post_crash_rejections = 0;  // checked IOs refused while dead

  uint64_t injected_errors() const {
    return injected_read_errors + injected_write_errors +
           injected_torn_writes;
  }
};

class FaultInjectingDevice : public Device {
 public:
  /// `inner` provides the timing model and must outlive the wrapper; its
  /// payload store stays untouched (all payload goes through the wrapper).
  FaultInjectingDevice(Device& inner, const FaultConfig& cfg);

  std::string name() const override;

  /// Base device metrics plus "faults.*" counters under `prefix`.
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override;

  const FaultStats& fault_stats() const { return fstats_; }
  const FaultConfig& fault_config() const { return cfg_; }
  Device& inner() { return *inner_; }

  /// Checked IOs observed so far (reads + writes), the clock the crash
  /// point is armed against.
  uint64_t checked_ios() const {
    return fstats_.checked_reads + fstats_.checked_writes;
  }
  /// True once the crash point has fired and until reboot().
  bool crashed() const { return crashed_; }
  /// Arm (or re-arm) the crash at the `nth` checked IO, 1-based and
  /// absolute; 0 disarms. Must name an IO that has not happened yet.
  void set_crash_at(uint64_t nth);
  /// Arm the crash so that exactly `more` further checked IOs succeed and
  /// the one after them dies.
  void crash_after(uint64_t more) { set_crash_at(checked_ios() + more + 1); }
  /// Power the device back up: the crash disarms, checked IOs succeed
  /// again, and the media keeps whatever had landed (torn tail included).
  void reboot();

  /// Persists the torn prefix recorded for a failed write at `offset`, if
  /// any; a transient error leaves the media untouched.
  void note_failed_write(uint64_t offset,
                         std::span<const uint8_t> data) override;

 protected:
  IoCompletion submit_io(const IoRequest& req, SimTime now) override;
  std::vector<IoCompletion> submit_batch_io(std::span<const IoRequest> reqs,
                                            SimTime now) override;
  Status inject_fault(const IoRequest& req, SimTime now) override;

 private:
  /// Bernoulli draw; consumes randomness only when the rate is non-zero,
  /// so disabled fault classes do not shift the others' schedules.
  static bool draw(Rng& rng, double rate) {
    return rate > 0.0 && rng.uniform_double() < rate;
  }
  void maybe_spike(IoCompletion& c);

  Device* inner_;
  FaultConfig cfg_;
  Rng fault_rng_;  // error/torn draws, checked submissions only
  Rng spike_rng_;  // latency spikes, every submission
  FaultStats fstats_;
  uint64_t crash_at_ = 0;  // 1-based checked-IO index; 0 = disarmed
  bool crashed_ = false;
  // Torn prefix length per faulted write offset, recorded by inject_fault
  // and consumed by note_failed_write.
  std::unordered_map<uint64_t, uint64_t> pending_torn_;
};

}  // namespace damkit::sim
