// Shared application of one generated Op against a Dictionary.
//
// WorkloadRunner::run() and the concurrent serving layer (src/serve/) must
// observe byte-identical behavior per op — same written values, same digest
// mixing over read results — or the cross-engine differential test cannot
// extend to concurrent runs. Factoring the op switch here makes divergence
// impossible by construction: both callers drive the same code.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "kv/dictionary.h"
#include "kv/workload.h"

namespace damkit::kv {

/// FNV-1a over `bytes` plus a field separator, accumulated into *h.
/// Seed h with kFnvOffsetBasis; identical op streams against engines that
/// return identical data yield identical digests.
inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
void fnv_mix(uint64_t* h, std::string_view bytes);

struct ApplyCounters {
  uint64_t puts = 0, gets = 0, erases = 0, scans = 0, upserts = 0;
  uint64_t get_hits = 0;
  uint64_t failed_ops = 0;
};

struct ApplyOptions {
  /// Drive the try_* twins; non-OK ops count as failed instead of aborting.
  bool fallible = false;
};

/// Reusable per-stream buffers for apply_op. The key/value encodings are
/// rebuilt for every op; routing them through a scratch keeps their string
/// capacity alive across ops so the hot generator loop does zero
/// steady-state allocations. One scratch per driving thread.
struct ApplyScratch {
  std::string key;
  std::string value;
};

/// Apply `op` to `dict`. `global_index` is the op's position in the overall
/// generated stream — put values are make_value(key_id + global_index, ...),
/// so the index an op is *applied under* must match the index it was
/// *generated at* regardless of which client session carried it.
/// Read results are mixed into *digest; counters are bumped in *counters.
/// `scratch` may be null (a per-thread fallback is used); passing one per
/// run keeps buffer reuse explicit.
void apply_op(Dictionary& dict, const Op& op, uint64_t global_index,
              const WorkloadSpec& spec, const ApplyOptions& options,
              uint64_t* digest, ApplyCounters* counters,
              ApplyScratch* scratch = nullptr);

}  // namespace damkit::kv
