#include "kv/engine.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>
#include <utility>
#include <vector>

#include "betree/message.h"
#include "betree_opt/opt_betree.h"
#include "blockdev/retry.h"
#include "node/slotted_page.h"
#include "util/bytes.h"

namespace damkit::kv {

namespace {

// Shared read-modify-write upsert emulation for engines without native
// upserts. Byte-for-byte the semantics of betree::apply_message(kUpsert):
// absent counts as zero, arithmetic wraps.
std::string bump_counter(const std::optional<std::string>& current,
                         int64_t delta) {
  const uint64_t base =
      current.has_value() ? betree::decode_counter(*current) : 0;
  return betree::encode_counter(base + static_cast<uint64_t>(delta));
}

// ---------------------------------------------------------------------------
// B-tree
// ---------------------------------------------------------------------------

class BTreeEngine final : public Dictionary {
 public:
  BTreeEngine(sim::Device& dev, sim::IoContext& io,
              const btree::BTreeConfig& config)
      : tree_(dev, io, config) {
    caps_.native_upsert = false;
    caps_.native_bulk_load = true;
  }

  std::string_view name() const override { return "btree"; }
  const Capabilities& capabilities() const override { return caps_; }

  void put(std::string_view key, std::string_view value) override {
    tree_.put(key, value);
  }
  Status try_put(std::string_view key, std::string_view value) override {
    return tree_.try_put(key, value);
  }
  std::optional<std::string> get(std::string_view key) override {
    return tree_.get(key);
  }
  StatusOr<std::optional<std::string>> try_get(std::string_view key) override {
    return tree_.try_get(key);
  }
  void erase(std::string_view key) override { (void)tree_.erase(key); }
  Status try_erase(std::string_view key) override {
    return tree_.try_erase(key).status();
  }
  void upsert(std::string_view key, int64_t delta) override {
    tree_.put(key, bump_counter(tree_.get(key), delta));
  }
  Status try_upsert(std::string_view key, int64_t delta) override {
    StatusOr<std::optional<std::string>> current = tree_.try_get(key);
    if (!current.ok()) return current.status();
    return tree_.try_put(key, bump_counter(*current, delta));
  }
  std::vector<std::pair<std::string, std::string>> range_scan(
      std::string_view lo, size_t limit) override {
    return tree_.scan(lo, limit);
  }
  StatusOr<std::vector<std::pair<std::string, std::string>>> try_range_scan(
      std::string_view lo, size_t limit) override {
    return tree_.try_scan(lo, limit);
  }
  void bulk_load(
      uint64_t count,
      const std::function<std::pair<std::string, std::string>(uint64_t)>& item)
      override {
    tree_.bulk_load(count, item);
  }
  void flush() override { tree_.flush(); }
  Status checkpoint() override { return tree_.try_flush(); }
  void abandon() override { tree_.abandon(); }
  void set_retry_policy(const blockdev::RetryPolicy& policy) override {
    tree_.set_retry_policy(policy);
  }
  blockdev::RetryCounters retry_counters() const override {
    return tree_.retry_counters();
  }
  size_t height() const override { return tree_.height(); }
  double cache_hit_rate() const override {
    return tree_.cache_stats().hit_rate();
  }
  void check_invariants() override { tree_.check_invariants(); }
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override {
    tree_.export_metrics(reg, prefix);
  }

 private:
  btree::BTree tree_;
  Capabilities caps_;
};

// ---------------------------------------------------------------------------
// Bε-tree and its optimized variant (one adapter; OptBeTree is-a BeTree)
// ---------------------------------------------------------------------------

class BeTreeEngine final : public Dictionary {
 public:
  BeTreeEngine(sim::Device& dev, sim::IoContext& io,
               const betree::BeTreeConfig& config, bool optimized)
      : tree_(optimized ? std::unique_ptr<betree::BeTree>(
                              std::make_unique<betree_opt::OptBeTree>(dev, io,
                                                                      config))
                        : std::make_unique<betree::BeTree>(dev, io, config)),
        name_(optimized ? "opt-betree" : "betree") {
    caps_.native_upsert = true;
    caps_.native_bulk_load = true;
  }

  std::string_view name() const override { return name_; }
  const Capabilities& capabilities() const override { return caps_; }

  void put(std::string_view key, std::string_view value) override {
    tree_->put(key, value);
  }
  Status try_put(std::string_view key, std::string_view value) override {
    return tree_->try_put(key, value);
  }
  std::optional<std::string> get(std::string_view key) override {
    return tree_->get(key);
  }
  StatusOr<std::optional<std::string>> try_get(std::string_view key) override {
    return tree_->try_get(key);
  }
  void erase(std::string_view key) override { tree_->erase(key); }
  Status try_erase(std::string_view key) override {
    return tree_->try_erase(key);
  }
  void upsert(std::string_view key, int64_t delta) override {
    tree_->upsert(key, delta);
  }
  Status try_upsert(std::string_view key, int64_t delta) override {
    return tree_->try_upsert(key, delta);
  }
  std::vector<std::pair<std::string, std::string>> range_scan(
      std::string_view lo, size_t limit) override {
    return tree_->scan(lo, limit);
  }
  StatusOr<std::vector<std::pair<std::string, std::string>>> try_range_scan(
      std::string_view lo, size_t limit) override {
    return tree_->try_scan(lo, limit);
  }
  void bulk_load(
      uint64_t count,
      const std::function<std::pair<std::string, std::string>(uint64_t)>& item)
      override {
    tree_->bulk_load(count, item);
  }
  void flush() override { tree_->flush_cache(); }
  Status checkpoint() override { return tree_->try_flush_cache(); }
  void abandon() override { tree_->abandon(); }
  void set_retry_policy(const blockdev::RetryPolicy& policy) override {
    tree_->set_retry_policy(policy);
  }
  blockdev::RetryCounters retry_counters() const override {
    return tree_->retry_counters();
  }
  size_t height() const override { return tree_->height(); }
  double cache_hit_rate() const override {
    return tree_->cache_stats().hit_rate();
  }
  void check_invariants() override { tree_->check_invariants(); }
  void set_event_trace(stats::TraceBuffer* events) override {
    tree_->set_event_trace(events);
  }
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override {
    tree_->export_metrics(reg, prefix);
  }

 private:
  std::unique_ptr<betree::BeTree> tree_;
  std::string_view name_;
  Capabilities caps_;
};

// ---------------------------------------------------------------------------
// LSM-tree
// ---------------------------------------------------------------------------

class LsmEngine final : public Dictionary {
 public:
  LsmEngine(sim::Device& dev, sim::IoContext& io, const lsm::LsmConfig& config)
      : tree_(dev, io, config) {
    caps_.native_upsert = false;
    caps_.native_bulk_load = false;  // emulated: memtable ingest in key order
  }

  std::string_view name() const override { return "lsm"; }
  const Capabilities& capabilities() const override { return caps_; }

  void put(std::string_view key, std::string_view value) override {
    tree_.put(key, value);
  }
  Status try_put(std::string_view key, std::string_view value) override {
    return tree_.try_put(key, value);
  }
  std::optional<std::string> get(std::string_view key) override {
    return tree_.get(key);
  }
  StatusOr<std::optional<std::string>> try_get(std::string_view key) override {
    return tree_.try_get(key);
  }
  void erase(std::string_view key) override { tree_.erase(key); }
  Status try_erase(std::string_view key) override {
    return tree_.try_erase(key);
  }
  void upsert(std::string_view key, int64_t delta) override {
    tree_.put(key, bump_counter(tree_.get(key), delta));
  }
  Status try_upsert(std::string_view key, int64_t delta) override {
    StatusOr<std::optional<std::string>> current = tree_.try_get(key);
    if (!current.ok()) return current.status();
    return tree_.try_put(key, bump_counter(*current, delta));
  }
  std::vector<std::pair<std::string, std::string>> range_scan(
      std::string_view lo, size_t limit) override {
    return tree_.scan(lo, limit);
  }
  StatusOr<std::vector<std::pair<std::string, std::string>>> try_range_scan(
      std::string_view lo, size_t limit) override {
    return tree_.try_scan(lo, limit);
  }
  void bulk_load(
      uint64_t count,
      const std::function<std::pair<std::string, std::string>(uint64_t)>& item)
      override {
    for (uint64_t i = 0; i < count; ++i) {
      const std::pair<std::string, std::string> kv = item(i);
      tree_.put(kv.first, kv.second);
    }
  }
  void flush() override { tree_.flush(); }
  Status checkpoint() override { return tree_.try_flush(); }
  void set_retry_policy(const blockdev::RetryPolicy& policy) override {
    tree_.set_retry_policy(policy);
  }
  blockdev::RetryCounters retry_counters() const override {
    return tree_.retry_counters();
  }
  size_t height() const override { return tree_.level_count(); }
  double cache_hit_rate() const override { return 0.0; }
  void check_invariants() override { tree_.check_invariants(); }
  void set_event_trace(stats::TraceBuffer* events) override {
    tree_.set_event_trace(events);
  }
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override {
    tree_.export_metrics(reg, prefix);
  }

 private:
  lsm::LsmTree tree_;
  Capabilities caps_;
};

// ---------------------------------------------------------------------------
// PDAM B-tree
// ---------------------------------------------------------------------------

// The §8 structure is a *static* index; the adapter makes it a dictionary
// the LSM way: an in-memory write buffer (mutations + tombstones) over a
// sorted base run. Merging the buffer rewrites the base sequentially and
// rebuilds a PdamBTree over the new ranks; the rebuilt tree supplies the
// IO geometry (global height, PB-node height, blocks per node) that point
// descents charge against the device. Offsets are a deterministic hash of
// (level, node index) into a bounded device window — the index is a cost
// model, not a byte store, exactly like the PdamBTree itself.
class PdamEngine final : public Dictionary {
 public:
  PdamEngine(sim::Device& dev, sim::IoContext& io,
             const PdamEngineConfig& config)
      : io_(&io), cfg_(config) {
    (void)dev;
    caps_.native_upsert = false;
    caps_.native_bulk_load = true;
  }

  std::string_view name() const override { return "pdam"; }
  const Capabilities& capabilities() const override { return caps_; }

  void put(std::string_view key, std::string_view value) override {
    ++puts_;
    buffer_insert(key, std::string(value));
    if (buffer_bytes_ > cfg_.buffer_bytes) merge_buffer();
  }
  Status try_put(std::string_view key, std::string_view value) override {
    ++puts_;
    buffer_insert(key, std::string(value));
    if (buffer_bytes_ > cfg_.buffer_bytes) return try_merge_buffer();
    return Status();
  }

  std::optional<std::string> get(std::string_view key) override {
    ++gets_;
    const auto hit = buffer_.find(std::string(key));
    if (hit != buffer_.end()) return hit->second;  // value or tombstone
    const size_t rank = base_rank(key);
    if (rank >= base_.count() || compare(base_key(rank), key) != 0) {
      if (!base_.empty()) charge_descent(rank);
      return std::nullopt;
    }
    charge_descent(rank);
    return std::string(base_value(rank));
  }
  StatusOr<std::optional<std::string>> try_get(std::string_view key) override {
    ++gets_;
    const auto hit = buffer_.find(std::string(key));
    if (hit != buffer_.end()) return hit->second;
    const size_t rank = base_rank(key);
    const bool found =
        rank < base_.count() && compare(base_key(rank), key) == 0;
    if (!base_.empty()) {
      DAMKIT_RETURN_IF_ERROR(try_charge_descent(rank));
    }
    if (!found) return std::optional<std::string>();
    return std::optional<std::string>(std::string(base_value(rank)));
  }

  void erase(std::string_view key) override {
    ++erases_;
    buffer_insert(key, std::nullopt);
    if (buffer_bytes_ > cfg_.buffer_bytes) merge_buffer();
  }
  Status try_erase(std::string_view key) override {
    ++erases_;
    buffer_insert(key, std::nullopt);
    if (buffer_bytes_ > cfg_.buffer_bytes) return try_merge_buffer();
    return Status();
  }

  void upsert(std::string_view key, int64_t delta) override {
    ++upserts_;
    --gets_;  // the embedded read is part of the upsert, not a user get
    put(key, bump_counter(get(key), delta));
    --puts_;
  }
  Status try_upsert(std::string_view key, int64_t delta) override {
    ++upserts_;
    --gets_;
    StatusOr<std::optional<std::string>> current = try_get(key);
    if (!current.ok()) return current.status();
    const Status s = try_put(key, bump_counter(*current, delta));
    --puts_;
    return s;
  }

  std::vector<std::pair<std::string, std::string>> range_scan(
      std::string_view lo, size_t limit) override {
    uint64_t base_consumed = 0;
    auto out = merged_scan(lo, limit, &base_consumed);
    charge_scan(lo, base_consumed);
    return out;
  }
  StatusOr<std::vector<std::pair<std::string, std::string>>> try_range_scan(
      std::string_view lo, size_t limit) override {
    uint64_t base_consumed = 0;
    auto out = merged_scan(lo, limit, &base_consumed);
    DAMKIT_RETURN_IF_ERROR(try_charge_scan(lo, base_consumed));
    return out;
  }

  void bulk_load(
      uint64_t count,
      const std::function<std::pair<std::string, std::string>(uint64_t)>& item)
      override {
    DAMKIT_CHECK_MSG(base_.empty() && buffer_.empty(),
                     "bulk_load requires an empty dictionary");
    for (uint64_t i = 0; i < count; ++i) {
      const std::pair<std::string, std::string> kv = item(i);
      if (!base_.empty()) {
        DAMKIT_CHECK_MSG(compare(base_key(base_.count() - 1), kv.first) < 0,
                         "bulk_load keys must be strictly ascending");
      }
      append_base_entry(kv.first, kv.second);
    }
    rebuild_index();
    charge_base_write(base_.live_bytes());
  }

  void flush() override {
    if (!buffer_.empty() || index_ == nullptr) merge_buffer();
  }
  Status checkpoint() override {
    if (!buffer_.empty() || (index_ == nullptr && !base_.empty())) {
      return try_merge_buffer();
    }
    return Status();
  }

  void set_retry_policy(const blockdev::RetryPolicy& policy) override {
    retry_ = policy;
  }
  blockdev::RetryCounters retry_counters() const override { return counters_; }

  size_t height() const override { return descent_levels(); }
  double cache_hit_rate() const override { return 0.0; }
  void check_invariants() override {
    for (size_t i = 1; i < base_.count(); ++i) {
      DAMKIT_CHECK(compare(base_key(i - 1), base_key(i)) < 0);
    }
    DAMKIT_CHECK(index_ == nullptr || base_.count() > 0);
  }
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override {
    const std::string p(prefix);
    reg.add(p + "puts", puts_);
    reg.add(p + "gets", gets_);
    reg.add(p + "erases", erases_);
    reg.add(p + "upserts", upserts_);
    reg.add(p + "scans", scans_);
    reg.add(p + "buffer_merges", buffer_merges_);
    reg.add(p + "merge_bytes_written", merge_bytes_written_);
    reg.add(p + "node_reads", node_reads_);
    reg.add(p + "io_retries", counters_.retries);
    reg.add(p + "io_give_ups", counters_.give_ups);
    reg.set(p + "height", static_cast<double>(descent_levels()));
    reg.set(p + "base_entries", static_cast<double>(base_.count()));
    reg.set(p + "buffer_entries", static_cast<double>(buffer_.size()));
    reg.set(p + "buffer_bytes", static_cast<double>(buffer_bytes_));
  }

 private:
  static uint64_t entry_bytes(std::string_view key, std::string_view value) {
    return key.size() + value.size() + 6;  // leaf framing, as elsewhere
  }

  // The base run is a flat slotted page of [u16 klen][u32 vlen][key][value]
  // records in key order; record size equals entry_bytes exactly, so
  // live_bytes() IS the base's accounted byte total.
  static size_t base_record_len(const uint8_t* p) {
    return size_t{6} + load_u16(p) + load_u32(p + 2);
  }
  static std::string_view base_record_key(std::string_view rec) {
    return rec.substr(6,
                      load_u16(reinterpret_cast<const uint8_t*>(rec.data())));
  }
  std::string_view base_key(size_t i) const {
    return base_record_key(base_.record(i));
  }
  std::string_view base_value(size_t i) const {
    const std::string_view rec = base_.record(i);
    return rec.substr(
        6 + load_u16(reinterpret_cast<const uint8_t*>(rec.data())));
  }
  static void append_entry(node::SlottedPage& page, std::string_view key,
                           std::string_view value) {
    uint8_t* p = page.insert_alloc(page.count(),
                                   entry_bytes(key, value));
    store_u16(p, static_cast<uint16_t>(key.size()));
    store_u32(p + 2, static_cast<uint32_t>(value.size()));
    std::memcpy(p + 6, key.data(), key.size());
    std::memcpy(p + 6 + key.size(), value.data(), value.size());
  }
  void append_base_entry(std::string_view key, std::string_view value) {
    append_entry(base_, key, value);
  }

  void buffer_insert(std::string_view key, std::optional<std::string> value) {
    const uint64_t bytes =
        entry_bytes(key, value.has_value() ? *value : std::string_view());
    auto [it, inserted] = buffer_.insert_or_assign(std::string(key),
                                                   std::move(value));
    (void)it;
    if (inserted) buffer_bytes_ += bytes;
  }

  size_t base_rank(std::string_view key) const {
    return base_.lower_bound(key, base_record_key);
  }

  int descent_levels() const {
    if (index_ == nullptr || base_.empty()) return 0;
    const int node_h = std::max(1, index_->node_height());
    return std::max(1, (index_->global_height() + node_h - 1) / node_h);
  }

  uint64_t node_bytes() const {
    return index_->node_blocks() * cfg_.tree.block_bytes;
  }

  // Deterministic device offset for the PB-node at (level, rank path).
  uint64_t node_offset(int level, uint64_t rank) const {
    const int node_h = std::max(1, index_->node_height());
    const int depth = std::min(index_->global_height(), (level + 1) * node_h);
    const int shift = index_->global_height() - depth;
    const uint64_t node_index = shift >= 64 ? 0 : rank >> shift;
    const uint64_t nb = node_bytes();
    const uint64_t slots = std::max<uint64_t>(1, cfg_.region_bytes / nb);
    const uint64_t mixed =
        (static_cast<uint64_t>(level) + 1) * 0x9e3779b97f4a7c15ULL +
        node_index;
    return cfg_.base_offset + (mixed % slots) * nb;
  }

  void charge_descent(uint64_t rank) {
    const int levels = descent_levels();
    for (int l = 0; l < levels; ++l) {
      io_->touch_read(node_offset(l, rank), node_bytes());
      ++node_reads_;
    }
  }
  Status try_charge_descent(uint64_t rank) {
    const int levels = descent_levels();
    for (int l = 0; l < levels; ++l) {
      const uint64_t off = node_offset(l, rank);
      ++node_reads_;
      DAMKIT_RETURN_IF_ERROR(blockdev::with_retries(
          *io_, retry_, &counters_, /*retry_corruption=*/false,
          [&] { return io_->touch_read_checked(off, node_bytes()); }));
    }
    return Status();
  }

  std::vector<std::pair<std::string, std::string>> merged_scan(
      std::string_view lo, size_t limit, uint64_t* base_consumed) {
    ++scans_;
    std::vector<std::pair<std::string, std::string>> out;
    size_t bi = base_rank(lo);
    auto di = buffer_.lower_bound(std::string(lo));
    while (out.size() < limit &&
           (bi < base_.count() || di != buffer_.end())) {
      const bool take_base =
          di == buffer_.end() ||
          (bi < base_.count() && compare(base_key(bi), di->first) < 0);
      if (take_base) {
        out.emplace_back(std::string(base_key(bi)),
                         std::string(base_value(bi)));
        ++bi;
        ++*base_consumed;
      } else {
        if (bi < base_.count() && compare(base_key(bi), di->first) == 0) {
          ++bi;  // buffer shadows the base entry
          ++*base_consumed;
        }
        if (di->second.has_value()) {
          out.emplace_back(di->first, *di->second);
        }
        ++di;
      }
    }
    return out;
  }

  uint64_t scan_run_bytes(uint64_t base_entries) const {
    if (base_entries == 0 || base_.empty()) return 0;
    // Approximate the leaf run with the base's mean entry size; the flat
    // run makes the total a gauge read instead of an O(n) walk.
    const uint64_t mean =
        std::max<uint64_t>(1, base_.live_bytes() / base_.count());
    const uint64_t b = cfg_.tree.block_bytes;
    return (base_entries * mean + b - 1) / b * b;
  }

  void charge_scan(std::string_view lo, uint64_t base_entries) {
    if (base_entries == 0 || base_.empty()) return;
    const uint64_t rank = base_rank(lo);
    charge_descent(rank);
    io_->touch_read(node_offset(descent_levels() - 1, rank),
                    scan_run_bytes(base_entries));
  }
  Status try_charge_scan(std::string_view lo, uint64_t base_entries) {
    if (base_entries == 0 || base_.empty()) return Status();
    const uint64_t rank = base_rank(lo);
    DAMKIT_RETURN_IF_ERROR(try_charge_descent(rank));
    const uint64_t off = node_offset(descent_levels() - 1, rank);
    return blockdev::with_retries(
        *io_, retry_, &counters_, /*retry_corruption=*/false, [&] {
          return io_->touch_read_checked(off, scan_run_bytes(base_entries));
        });
  }

  node::SlottedPage merge_entries() const {
    node::SlottedPage merged;
    size_t bi = 0;
    auto di = buffer_.begin();
    while (bi < base_.count() || di != buffer_.end()) {
      const bool take_base =
          di == buffer_.end() ||
          (bi < base_.count() && compare(base_key(bi), di->first) < 0);
      if (take_base) {
        merged.append(base_.record(bi));
        ++bi;
      } else {
        if (bi < base_.count() && compare(base_key(bi), di->first) == 0) ++bi;
        if (di->second.has_value()) {
          append_entry(merged, di->first, *di->second);
        }
        ++di;
      }
    }
    return merged;
  }

  void commit_merge(node::SlottedPage merged) {
    base_ = std::move(merged);
    buffer_.clear();
    buffer_bytes_ = 0;
    ++buffer_merges_;
    rebuild_index();
  }

  void merge_buffer() {
    node::SlottedPage merged = merge_entries();
    charge_base_write(merged.live_bytes());
    commit_merge(std::move(merged));
  }
  Status try_merge_buffer() {
    node::SlottedPage merged = merge_entries();
    DAMKIT_RETURN_IF_ERROR(try_charge_base_write(merged.live_bytes()));
    commit_merge(std::move(merged));
    return Status();
  }

  void charge_base_write(uint64_t bytes) {
    merge_bytes_written_ += bytes;
    const uint64_t chunk = std::max<uint64_t>(cfg_.tree.block_bytes, 1);
    for (uint64_t off = 0; off < bytes; off += chunk) {
      io_->touch_write(cfg_.base_offset + off % cfg_.region_bytes,
                       std::min(chunk, bytes - off));
    }
  }
  Status try_charge_base_write(uint64_t bytes) {
    merge_bytes_written_ += bytes;
    const uint64_t chunk = std::max<uint64_t>(cfg_.tree.block_bytes, 1);
    for (uint64_t off = 0; off < bytes; off += chunk) {
      const uint64_t at = cfg_.base_offset + off % cfg_.region_bytes;
      const uint64_t len = std::min(chunk, bytes - off);
      // A torn write is repaired by rewriting the extent in full.
      DAMKIT_RETURN_IF_ERROR(blockdev::with_retries(
          *io_, retry_, &counters_, /*retry_corruption=*/true,
          [&] { return io_->touch_write_checked(at, len); }));
    }
    return Status();
  }

  void rebuild_index() {
    if (base_.empty()) {
      index_.reset();
      return;
    }
    std::vector<uint64_t> ranks(base_.count());
    std::iota(ranks.begin(), ranks.end(), 0);
    index_ = std::make_unique<pdam_tree::PdamBTree>(std::move(ranks),
                                                    cfg_.tree);
  }

  sim::IoContext* io_;
  PdamEngineConfig cfg_;
  Capabilities caps_;

  node::SlottedPage base_;  // sorted flat run of wire-format records
  std::map<std::string, std::optional<std::string>> buffer_;  // nullopt = del
  uint64_t buffer_bytes_ = 0;
  std::unique_ptr<pdam_tree::PdamBTree> index_;

  blockdev::RetryPolicy retry_;
  blockdev::RetryCounters counters_;

  uint64_t puts_ = 0, gets_ = 0, erases_ = 0, upserts_ = 0, scans_ = 0;
  uint64_t buffer_merges_ = 0, merge_bytes_written_ = 0, node_reads_ = 0;
};

}  // namespace

std::string_view engine_kind_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kBTree:
      return "btree";
    case EngineKind::kBeTree:
      return "betree";
    case EngineKind::kOptBeTree:
      return "opt-betree";
    case EngineKind::kLsm:
      return "lsm";
    case EngineKind::kPdam:
      return "pdam";
  }
  return "unknown";
}

std::optional<EngineKind> parse_engine_kind(std::string_view name) {
  for (const EngineKind kind : kAllEngineKinds) {
    if (engine_kind_name(kind) == name) return kind;
  }
  return std::nullopt;
}

void set_base_offset(EngineConfig& config, uint64_t offset) {
  config.btree.base_offset = offset;
  config.betree.base_offset = offset;
  config.lsm.base_offset = offset;
  config.pdam.base_offset = offset;
}

std::unique_ptr<Dictionary> EngineFactory::make_engine(
    EngineKind kind, sim::Device& dev, sim::IoContext& io,
    const EngineConfig& config) {
  // Resolve the factory-level codec once (kDefault consults DAMKIT_CODEC)
  // and push it into the per-tree sub-configs so the built tree is
  // indistinguishable from a hand-built one with that codec.
  EngineConfig cfg = config;
  const blockdev::CodecKind codec = blockdev::resolve_codec_kind(cfg.codec);
  cfg.btree.codec = codec;
  cfg.betree.codec = codec;
  cfg.lsm.codec = codec;
  switch (kind) {
    case EngineKind::kBTree:
      return std::make_unique<BTreeEngine>(dev, io, cfg.btree);
    case EngineKind::kBeTree:
      return std::make_unique<BeTreeEngine>(dev, io, cfg.betree, false);
    case EngineKind::kOptBeTree:
      return std::make_unique<BeTreeEngine>(dev, io, cfg.betree, true);
    case EngineKind::kLsm:
      return std::make_unique<LsmEngine>(dev, io, cfg.lsm);
    case EngineKind::kPdam:
      return std::make_unique<PdamEngine>(dev, io, cfg.pdam);
  }
  DAMKIT_CHECK_MSG(false, "unknown engine kind");
  return nullptr;
}

}  // namespace damkit::kv
