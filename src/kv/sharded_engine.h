// ShardedEngine: a kv::Dictionary that partitions the key space across k
// inner engines, each living in its own device region (base_offset +
// i * shard_stride_bytes). Point ops route to one shard; range_scan fans
// out and k-way-merges the ordered shard results; metrics aggregate under
// shard<i>. prefixes.
//
// This is the composition the Multi-Queue SSD modeling line motivates:
// partition the key space across P parallel shards so independent point
// descents can land on independent device regions. With k = 1 the router
// is a pure pass-through — every call forwards to the single inner engine
// with no extra simulated time.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kv/engine.h"

namespace damkit::kv {

struct ShardedConfig {
  int shards = 4;
  enum class Partition : uint8_t { kHash, kRange };
  Partition partition = Partition::kHash;
  /// For kRange: shards-1 ascending split keys; shard i holds keys in
  /// [splits[i-1], splits[i]). Empty selects kHash.
  std::vector<std::string> range_splits;
  /// Device region stride between consecutive shards.
  uint64_t shard_stride_bytes = 4ULL << 30;
  /// Region start of shard 0.
  uint64_t base_offset = 0;
};

/// Stable key → shard hash (FNV-1a 64), exposed for tests.
uint64_t shard_hash(std::string_view key);

class ShardedEngine final : public Dictionary {
 public:
  /// Builds `sharded.shards` inner engines of `kind` on `dev`/`io`, shard
  /// i's extent space rebased to base_offset + i * stride.
  ShardedEngine(EngineKind kind, sim::Device& dev, sim::IoContext& io,
                const EngineConfig& config, const ShardedConfig& sharded);
  ~ShardedEngine() override;

  std::string_view name() const override { return name_; }
  const Capabilities& capabilities() const override { return caps_; }

  void put(std::string_view key, std::string_view value) override;
  Status try_put(std::string_view key, std::string_view value) override;
  std::optional<std::string> get(std::string_view key) override;
  StatusOr<std::optional<std::string>> try_get(std::string_view key) override;
  void erase(std::string_view key) override;
  Status try_erase(std::string_view key) override;
  void upsert(std::string_view key, int64_t delta) override;
  Status try_upsert(std::string_view key, int64_t delta) override;
  std::vector<std::pair<std::string, std::string>> range_scan(
      std::string_view lo, size_t limit) override;
  StatusOr<std::vector<std::pair<std::string, std::string>>> try_range_scan(
      std::string_view lo, size_t limit) override;
  void bulk_load(
      uint64_t count,
      const std::function<std::pair<std::string, std::string>(uint64_t)>& item)
      override;
  void flush() override;
  Status checkpoint() override;
  void abandon() override;
  void set_retry_policy(const blockdev::RetryPolicy& policy) override;
  blockdev::RetryCounters retry_counters() const override;
  size_t height() const override;
  double cache_hit_rate() const override;
  void check_invariants() override;
  void set_event_trace(stats::TraceBuffer* events) override;
  /// Exports each shard under `<prefix>shard<i>.` plus aggregate
  /// `<prefix>io_retries` / `io_give_ups` counters and a `shards` gauge.
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override;

  int shard_count() const { return static_cast<int>(inner_.size()); }
  /// Which shard `key` routes to (tests).
  size_t shard_of(std::string_view key) const;
  Dictionary& shard(size_t i) { return *inner_[i]; }

 private:
  std::vector<std::unique_ptr<Dictionary>> inner_;
  ShardedConfig cfg_;
  Capabilities caps_;
  std::string name_;
};

/// Convenience: a k-shard router over `kind`, or the bare engine when
/// sharded.shards == 1 and no custom partitioning is requested (the
/// single-shard fast path — zero wrapper layers).
std::unique_ptr<Dictionary> make_sharded_engine(EngineKind kind,
                                                sim::Device& dev,
                                                sim::IoContext& io,
                                                const EngineConfig& config,
                                                const ShardedConfig& sharded);

}  // namespace damkit::kv
