#include "kv/workload.h"

#include <numeric>

#include "kv/slice.h"
#include "util/status.h"

namespace damkit::kv {

OpGenerator::OpGenerator(const WorkloadSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  DAMKIT_CHECK(spec_.key_space > 0);
  total_weight_ = spec_.get_weight + spec_.put_weight + spec_.delete_weight +
                  spec_.scan_weight + spec_.upsert_weight;
  DAMKIT_CHECK_MSG(total_weight_ > 0.0, "all op weights are zero");
  DAMKIT_CHECK_MSG(spec_.olap_every == 0 || spec_.olap_len > 0,
                   "olap_every set but olap_len is zero");
  if (spec_.distribution == Distribution::kZipfian) {
    zipf_.emplace(spec_.key_space, spec_.zipf_theta);
  }
}

uint64_t OpGenerator::next_key_id() {
  switch (spec_.distribution) {
    case Distribution::kUniform:
      return rng_.uniform(spec_.key_space);
    case Distribution::kZipfian: {
      // Scramble the rank so hot keys are spread over the key space.
      const uint64_t rank = zipf_->sample(rng_);
      uint64_t id = (rank * 0x9e3779b97f4a7c15ULL) % spec_.key_space;
      if (spec_.hot_shift_every > 0) {
        // Rotate the scrambled hot set over time. Pure post-processing of
        // the drawn rank: the RNG stream is untouched, so with the field
        // at its default 0 the stream is bit-identical to the base.
        const uint64_t epoch = op_index_ / spec_.hot_shift_every;
        id = (id + epoch * spec_.hot_shift_stride) % spec_.key_space;
      }
      return id;
    }
    case Distribution::kSequential: {
      const uint64_t id = sequential_cursor_;
      sequential_cursor_ = (sequential_cursor_ + 1) % spec_.key_space;
      return id;
    }
  }
  return 0;
}

Op OpGenerator::next() {
  Op op;
  op.key_id = next_key_id();
  double r = rng_.uniform_double() * total_weight_;
  if ((r -= spec_.get_weight) < 0.0) {
    op.type = OpType::kGet;
  } else if ((r -= spec_.put_weight) < 0.0) {
    op.type = OpType::kPut;
  } else if ((r -= spec_.delete_weight) < 0.0) {
    op.type = OpType::kDelete;
  } else if ((r -= spec_.scan_weight) < 0.0) {
    op.type = OpType::kScan;
    op.scan_length = spec_.scan_length;
  } else {
    op.type = OpType::kUpsert;
  }
  if (spec_.olap_every > 0) {
    // Periodic analytic burst: the op keeps its RNG draws (key id and mix
    // roll) so the stream stays aligned, but inside the burst window the
    // type is overridden to a range scan.
    const uint64_t phase = op_index_ % (spec_.olap_every + spec_.olap_len);
    if (phase >= spec_.olap_every) {
      op.type = OpType::kScan;
      op.scan_length = spec_.scan_length;
    }
  }
  ++op_index_;
  return op;
}

std::optional<WorkloadSpec> make_workload_preset(std::string_view name) {
  // All presets share the YCSB-style base: Zipfian key popularity over the
  // default key space. Weights follow the YCSB core workload definitions
  // (read-modify-write maps to the dictionary's upsert).
  WorkloadSpec spec;
  spec.distribution = Distribution::kZipfian;
  spec.get_weight = spec.put_weight = 0.0;
  if (name == "ycsb-a") {  // update heavy: 50/50 read/update
    spec.get_weight = 0.5;
    spec.put_weight = 0.5;
  } else if (name == "ycsb-b") {  // read mostly: 95/5
    spec.get_weight = 0.95;
    spec.put_weight = 0.05;
  } else if (name == "ycsb-c") {  // read only
    spec.get_weight = 1.0;
  } else if (name == "ycsb-d") {  // read latest: drifting hot set
    spec.get_weight = 0.95;
    spec.put_weight = 0.05;
    spec.hot_shift_every = 1000;
    spec.hot_shift_stride = 127;
  } else if (name == "ycsb-e") {  // scan heavy: short ranges
    spec.scan_weight = 0.95;
    spec.put_weight = 0.05;
    spec.scan_length = 50;
  } else if (name == "ycsb-f") {  // read-modify-write
    spec.get_weight = 0.5;
    spec.upsert_weight = 0.5;
  } else if (name == "shift") {  // OLTP mix under a fast-moving hot set
    spec.get_weight = 0.45;
    spec.put_weight = 0.45;
    spec.delete_weight = 0.05;
    spec.upsert_weight = 0.05;
    spec.hot_shift_every = 500;
    spec.hot_shift_stride = 4099;
  } else if (name == "olap") {  // OLTP mix with periodic analytic bursts
    spec.get_weight = 0.5;
    spec.put_weight = 0.5;
    spec.olap_every = 900;
    spec.olap_len = 100;
    spec.scan_length = 200;
  } else {
    return std::nullopt;
  }
  return spec;
}

const char* workload_preset_names() {
  return "ycsb-a|ycsb-b|ycsb-c|ycsb-d|ycsb-e|ycsb-f|shift|olap";
}

std::vector<uint64_t> shuffled_ids(uint64_t n, uint64_t seed) {
  std::vector<uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  Rng rng(seed);
  rng.shuffle(ids);
  return ids;
}

BulkItem bulk_item(uint64_t index, const WorkloadSpec& spec) {
  return BulkItem{encode_key(index, spec.key_bytes),
                  make_value(index, spec.value_bytes)};
}

void bulk_item_to(uint64_t index, const WorkloadSpec& spec, BulkItem* out) {
  encode_key_to(index, spec.key_bytes, &out->key);
  make_value_to(index, spec.value_bytes, &out->value);
}

}  // namespace damkit::kv
