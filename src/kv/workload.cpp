#include "kv/workload.h"

#include <numeric>

#include "kv/slice.h"
#include "util/status.h"

namespace damkit::kv {

OpGenerator::OpGenerator(const WorkloadSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  DAMKIT_CHECK(spec_.key_space > 0);
  total_weight_ = spec_.get_weight + spec_.put_weight + spec_.delete_weight +
                  spec_.scan_weight + spec_.upsert_weight;
  DAMKIT_CHECK_MSG(total_weight_ > 0.0, "all op weights are zero");
  if (spec_.distribution == Distribution::kZipfian) {
    zipf_.emplace(spec_.key_space, spec_.zipf_theta);
  }
}

uint64_t OpGenerator::next_key_id() {
  switch (spec_.distribution) {
    case Distribution::kUniform:
      return rng_.uniform(spec_.key_space);
    case Distribution::kZipfian: {
      // Scramble the rank so hot keys are spread over the key space.
      const uint64_t rank = zipf_->sample(rng_);
      return (rank * 0x9e3779b97f4a7c15ULL) % spec_.key_space;
    }
    case Distribution::kSequential: {
      const uint64_t id = sequential_cursor_;
      sequential_cursor_ = (sequential_cursor_ + 1) % spec_.key_space;
      return id;
    }
  }
  return 0;
}

Op OpGenerator::next() {
  Op op;
  op.key_id = next_key_id();
  double r = rng_.uniform_double() * total_weight_;
  if ((r -= spec_.get_weight) < 0.0) {
    op.type = OpType::kGet;
  } else if ((r -= spec_.put_weight) < 0.0) {
    op.type = OpType::kPut;
  } else if ((r -= spec_.delete_weight) < 0.0) {
    op.type = OpType::kDelete;
  } else if ((r -= spec_.scan_weight) < 0.0) {
    op.type = OpType::kScan;
    op.scan_length = spec_.scan_length;
  } else {
    op.type = OpType::kUpsert;
  }
  return op;
}

std::vector<uint64_t> shuffled_ids(uint64_t n, uint64_t seed) {
  std::vector<uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  Rng rng(seed);
  rng.shuffle(ids);
  return ids;
}

BulkItem bulk_item(uint64_t index, const WorkloadSpec& spec) {
  return BulkItem{encode_key(index, spec.key_bytes),
                  make_value(index, spec.value_bytes)};
}

}  // namespace damkit::kv
