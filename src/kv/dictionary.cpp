#include "kv/dictionary.h"

namespace damkit::kv {

Dictionary::~Dictionary() = default;

void Dictionary::set_event_trace(stats::TraceBuffer* /*events*/) {}

void Dictionary::abandon() {}

}  // namespace damkit::kv
