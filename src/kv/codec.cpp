#include "kv/codec.h"

// Writer/Reader are header-only; this TU anchors the target.

namespace damkit::kv {}  // namespace damkit::kv
