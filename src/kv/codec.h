// Bounds-checked binary serialization for on-"disk" node images.
// Little-endian fixed-width framing via util/bytes.h primitives.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace damkit::kv {

/// Appends primitives to a byte vector.
class Writer {
 public:
  explicit Writer(std::vector<uint8_t>& out) : out_(&out) {}

  void put_u8(uint8_t v) { out_->push_back(v); }
  void put_u16(uint16_t v) {
    const size_t at = grow(2);
    store_u16(out_->data() + at, v);
  }
  void put_u32(uint32_t v) {
    const size_t at = grow(4);
    store_u32(out_->data() + at, v);
  }
  void put_u64(uint64_t v) {
    const size_t at = grow(8);
    store_u64(out_->data() + at, v);
  }
  void put_bytes(std::string_view s) {
    const size_t at = grow(s.size());
    std::memcpy(out_->data() + at, s.data(), s.size());
  }
  /// u32 length prefix + bytes.
  void put_lp_bytes(std::string_view s) {
    DAMKIT_CHECK(s.size() <= UINT32_MAX);
    put_u32(static_cast<uint32_t>(s.size()));
    put_bytes(s);
  }

  size_t size() const { return out_->size(); }

 private:
  size_t grow(size_t by) {
    const size_t at = out_->size();
    out_->resize(at + by);
    return at;
  }
  std::vector<uint8_t>* out_;
};

/// Reads primitives from a byte span; all reads are bounds-CHECKed (a
/// short read means the node image is corrupt, which is a library bug,
/// not a user error).
class Reader {
 public:
  explicit Reader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t get_u8() {
    need(1);
    return data_[pos_++];
  }
  uint16_t get_u16() {
    need(2);
    const uint16_t v = load_u16(data_.data() + pos_);
    pos_ += 2;
    return v;
  }
  uint32_t get_u32() {
    need(4);
    const uint32_t v = load_u32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }
  uint64_t get_u64() {
    need(8);
    const uint64_t v = load_u64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }
  std::string get_bytes(size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::string get_lp_bytes() { return get_bytes(get_u32()); }

  size_t position() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(size_t n) {
    DAMKIT_CHECK_MSG(pos_ + n <= data_.size(),
                     "short read: need " << n << " at " << pos_ << " of "
                                         << data_.size());
  }
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace damkit::kv
