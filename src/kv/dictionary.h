// The uniform dictionary interface the paper's comparative experiments
// (§5–§8) need: one workload driven against B-tree, Bε-tree, optimized
// Bε-tree, LSM-tree, and PDAM B-tree under one cost model.
//
// Every engine adapter forwards straight to the concrete tree — a call
// through kv::Dictionary charges exactly the simulated time the direct
// call would (virtual dispatch is host-side only), so single-engine
// results are bit-identical to the pre-interface code paths.
//
// Engines differ in what they support natively; the Capabilities
// descriptor records how each call is realized (e.g. a Bε-tree upsert is
// a blind message, a B-tree upsert is an emulated read-modify-write with
// identical counter semantics).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "blockdev/retry.h"
#include "stats/metrics.h"
#include "stats/trace_buffer.h"
#include "util/status.h"

namespace damkit::kv {

/// How an engine realizes the Dictionary contract.
struct Capabilities {
  /// Upserts are blind messages (no read IO). When false the engine
  /// emulates upsert as read-modify-write with the same 8-byte LE counter
  /// semantics, so results agree across engines and only the cost differs.
  bool native_upsert = false;
  /// bulk_load writes each node once, bottom-up. When false the engine
  /// emulates it with an ingest loop (e.g. the LSM memtable path).
  bool native_bulk_load = true;
  /// range_scan returns key-ordered results (true for every engine).
  bool ordered_scans = true;
  /// This dictionary routes across shards (see kv::make_sharded_engine).
  bool sharded = false;
  int shard_count = 1;
};

/// Abstract ordered key-value dictionary over a simulated device.
///
/// Infallible methods CHECK-abort on unrecoverable device errors (the
/// non-faulting experiment path); the try_* twins surface a Status after
/// the engine's retry policy is exhausted and never abort. `flush` /
/// `checkpoint` are the write-back pair: flush is the infallible full
/// checkpoint, checkpoint() is one fallible attempt whose failure leaves
/// the remaining dirty state intact for a retry.
class Dictionary {
 public:
  virtual ~Dictionary();

  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// Engine name ("btree", "betree", "opt-betree", "lsm", "pdam", ...).
  virtual std::string_view name() const = 0;
  virtual const Capabilities& capabilities() const = 0;

  virtual void put(std::string_view key, std::string_view value) = 0;
  virtual Status try_put(std::string_view key, std::string_view value) = 0;

  virtual std::optional<std::string> get(std::string_view key) = 0;
  virtual StatusOr<std::optional<std::string>> try_get(
      std::string_view key) = 0;

  /// Delete (blind: engines that know whether the key existed discard it).
  virtual void erase(std::string_view key) = 0;
  virtual Status try_erase(std::string_view key) = 0;

  /// Add `delta` to the 8-byte LE counter stored at `key` (absent = 0,
  /// wrap-around by design — betree::encode_counter/decode_counter).
  virtual void upsert(std::string_view key, int64_t delta) = 0;
  virtual Status try_upsert(std::string_view key, int64_t delta) = 0;

  /// Up to `limit` pairs with key >= `lo`, in key order.
  virtual std::vector<std::pair<std::string, std::string>> range_scan(
      std::string_view lo, size_t limit) = 0;
  virtual StatusOr<std::vector<std::pair<std::string, std::string>>>
  try_range_scan(std::string_view lo, size_t limit) = 0;

  /// Build from `count` items in strictly ascending key order; item(i)
  /// supplies the i-th pair. The dictionary must be empty.
  virtual void bulk_load(
      uint64_t count,
      const std::function<std::pair<std::string, std::string>(uint64_t)>&
          item) = 0;

  /// Write back all dirty state (infallible checkpoint).
  virtual void flush() = 0;
  /// One fallible checkpoint attempt: failed extents stay dirty (no data
  /// loss); calling again retries exactly the remaining set.
  virtual Status checkpoint() = 0;

  /// Crash teardown: drop all dirty in-memory state WITHOUT writing it
  /// back, so a dictionary whose device died can be destroyed without
  /// tripping the flush-on-destruction aborts. The dictionary must not be
  /// used afterwards except for destruction; recovery builds a fresh one.
  /// Default is a no-op (engines with no deferred write-back state).
  virtual void abandon();

  virtual void set_retry_policy(const blockdev::RetryPolicy& policy) = 0;
  virtual blockdev::RetryCounters retry_counters() const = 0;

  /// Levels of the structure (B-tree height, LSM level count, PDAM
  /// node-levels per descent).
  virtual size_t height() const = 0;
  /// Buffer-pool hit rate, or 0 for engines without a node cache.
  virtual double cache_hit_rate() const = 0;

  /// Structural invariant check (test support); CHECK-aborts on violation.
  virtual void check_invariants() = 0;

  /// Structured-event sink for engines that emit events (nullptr
  /// disables; default no-op for engines without one).
  virtual void set_event_trace(stats::TraceBuffer* events);

  /// Export op counters, cache/store IO mix, and derived gauges under
  /// `prefix` (e.g. "btree.").
  virtual void export_metrics(stats::MetricsRegistry& reg,
                              std::string_view prefix) const = 0;
};

}  // namespace damkit::kv
