#include "kv/sharded_engine.h"

#include <algorithm>
#include <queue>

#include "util/table.h"

namespace damkit::kv {

uint64_t shard_hash(std::string_view key) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (const char c : key) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ShardedEngine::ShardedEngine(EngineKind kind, sim::Device& dev,
                             sim::IoContext& io, const EngineConfig& config,
                             const ShardedConfig& sharded)
    : cfg_(sharded) {
  DAMKIT_CHECK_MSG(sharded.shards >= 1, "need at least one shard");
  if (cfg_.partition == ShardedConfig::Partition::kRange) {
    DAMKIT_CHECK_MSG(
        cfg_.range_splits.size() + 1 == static_cast<size_t>(sharded.shards),
        "range partitioning needs shards-1 split keys");
    DAMKIT_CHECK(std::is_sorted(cfg_.range_splits.begin(),
                                cfg_.range_splits.end()));
  }
  inner_.reserve(static_cast<size_t>(sharded.shards));
  for (int i = 0; i < sharded.shards; ++i) {
    EngineConfig shard_config = config;
    set_base_offset(shard_config,
                    sharded.base_offset +
                        static_cast<uint64_t>(i) * sharded.shard_stride_bytes);
    inner_.push_back(make_engine(kind, dev, io, shard_config));
  }
  caps_ = inner_[0]->capabilities();
  caps_.sharded = true;
  caps_.shard_count = sharded.shards;
  name_ = strfmt("sharded-%s", std::string(inner_[0]->name()).c_str());
}

ShardedEngine::~ShardedEngine() = default;

size_t ShardedEngine::shard_of(std::string_view key) const {
  if (cfg_.partition == ShardedConfig::Partition::kRange) {
    const auto it = std::upper_bound(cfg_.range_splits.begin(),
                                     cfg_.range_splits.end(), key);
    return static_cast<size_t>(it - cfg_.range_splits.begin());
  }
  return shard_hash(key) % inner_.size();
}

void ShardedEngine::put(std::string_view key, std::string_view value) {
  inner_[shard_of(key)]->put(key, value);
}
Status ShardedEngine::try_put(std::string_view key, std::string_view value) {
  return inner_[shard_of(key)]->try_put(key, value);
}
std::optional<std::string> ShardedEngine::get(std::string_view key) {
  return inner_[shard_of(key)]->get(key);
}
StatusOr<std::optional<std::string>> ShardedEngine::try_get(
    std::string_view key) {
  return inner_[shard_of(key)]->try_get(key);
}
void ShardedEngine::erase(std::string_view key) {
  inner_[shard_of(key)]->erase(key);
}
Status ShardedEngine::try_erase(std::string_view key) {
  return inner_[shard_of(key)]->try_erase(key);
}
void ShardedEngine::upsert(std::string_view key, int64_t delta) {
  inner_[shard_of(key)]->upsert(key, delta);
}
Status ShardedEngine::try_upsert(std::string_view key, int64_t delta) {
  return inner_[shard_of(key)]->try_upsert(key, delta);
}

namespace {

// Ordered k-way merge of per-shard scan results, truncated to `limit`.
// Shards partition the key space, so no key appears twice.
std::vector<std::pair<std::string, std::string>> merge_scans(
    std::vector<std::vector<std::pair<std::string, std::string>>> runs,
    size_t limit) {
  using Head = std::pair<std::string_view, size_t>;  // next key, run index
  const auto greater = [](const Head& a, const Head& b) {
    return a.first > b.first;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(greater)> heap(
      greater);
  std::vector<size_t> cursor(runs.size(), 0);
  for (size_t r = 0; r < runs.size(); ++r) {
    if (!runs[r].empty()) heap.emplace(runs[r][0].first, r);
  }
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(std::min(limit, static_cast<size_t>(64)));
  while (out.size() < limit && !heap.empty()) {
    const size_t r = heap.top().second;
    heap.pop();
    out.push_back(std::move(runs[r][cursor[r]]));
    if (++cursor[r] < runs[r].size()) {
      heap.emplace(runs[r][cursor[r]].first, r);
    }
  }
  return out;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> ShardedEngine::range_scan(
    std::string_view lo, size_t limit) {
  if (inner_.size() == 1) return inner_[0]->range_scan(lo, limit);
  std::vector<std::vector<std::pair<std::string, std::string>>> runs;
  runs.reserve(inner_.size());
  if (cfg_.partition == ShardedConfig::Partition::kRange) {
    // Later shards only matter if earlier ones run dry before `limit`.
    size_t need = limit;
    for (size_t s = shard_of(lo); s < inner_.size() && need > 0; ++s) {
      runs.push_back(inner_[s]->range_scan(lo, need));
      need -= std::min(need, runs.back().size());
    }
  } else {
    for (const auto& shard : inner_) runs.push_back(shard->range_scan(lo, limit));
  }
  return merge_scans(std::move(runs), limit);
}

StatusOr<std::vector<std::pair<std::string, std::string>>>
ShardedEngine::try_range_scan(std::string_view lo, size_t limit) {
  if (inner_.size() == 1) return inner_[0]->try_range_scan(lo, limit);
  std::vector<std::vector<std::pair<std::string, std::string>>> runs;
  runs.reserve(inner_.size());
  if (cfg_.partition == ShardedConfig::Partition::kRange) {
    size_t need = limit;
    for (size_t s = shard_of(lo); s < inner_.size() && need > 0; ++s) {
      auto run = inner_[s]->try_range_scan(lo, need);
      if (!run.ok()) return run.status();
      need -= std::min(need, run->size());
      runs.push_back(*std::move(run));
    }
  } else {
    for (const auto& shard : inner_) {
      auto run = shard->try_range_scan(lo, limit);
      if (!run.ok()) return run.status();
      runs.push_back(*std::move(run));
    }
  }
  return merge_scans(std::move(runs), limit);
}

void ShardedEngine::bulk_load(
    uint64_t count,
    const std::function<std::pair<std::string, std::string>(uint64_t)>& item) {
  if (inner_.size() == 1) {
    inner_[0]->bulk_load(count, item);
    return;
  }
  // Partition the ascending stream; each shard's slice stays ascending.
  std::vector<std::vector<std::pair<std::string, std::string>>> slices(
      inner_.size());
  for (uint64_t i = 0; i < count; ++i) {
    std::pair<std::string, std::string> kv = item(i);
    slices[shard_of(kv.first)].push_back(std::move(kv));
  }
  for (size_t s = 0; s < inner_.size(); ++s) {
    if (slices[s].empty()) continue;
    const auto& slice = slices[s];
    inner_[s]->bulk_load(slice.size(), [&slice](uint64_t i) {
      return slice[static_cast<size_t>(i)];
    });
  }
}

void ShardedEngine::flush() {
  for (const auto& shard : inner_) shard->flush();
}

Status ShardedEngine::checkpoint() {
  // Attempt every shard; clean shards re-checkpoint as no-ops, so a retry
  // after a partial failure touches exactly the still-dirty remainder.
  Status first;
  for (const auto& shard : inner_) {
    const Status s = shard->checkpoint();
    if (!s.ok() && first.ok()) first = s;
  }
  return first;
}

void ShardedEngine::abandon() {
  for (const auto& shard : inner_) shard->abandon();
}

void ShardedEngine::set_retry_policy(const blockdev::RetryPolicy& policy) {
  for (const auto& shard : inner_) shard->set_retry_policy(policy);
}

blockdev::RetryCounters ShardedEngine::retry_counters() const {
  blockdev::RetryCounters total;
  for (const auto& shard : inner_) {
    const blockdev::RetryCounters c = shard->retry_counters();
    total.retries += c.retries;
    total.give_ups += c.give_ups;
  }
  return total;
}

size_t ShardedEngine::height() const {
  size_t h = 0;
  for (const auto& shard : inner_) h = std::max(h, shard->height());
  return h;
}

double ShardedEngine::cache_hit_rate() const {
  double sum = 0;
  for (const auto& shard : inner_) sum += shard->cache_hit_rate();
  return sum / static_cast<double>(inner_.size());
}

void ShardedEngine::check_invariants() {
  for (const auto& shard : inner_) shard->check_invariants();
}

void ShardedEngine::set_event_trace(stats::TraceBuffer* events) {
  for (const auto& shard : inner_) shard->set_event_trace(events);
}

void ShardedEngine::export_metrics(stats::MetricsRegistry& reg,
                                   std::string_view prefix) const {
  const std::string p(prefix);
  for (size_t s = 0; s < inner_.size(); ++s) {
    inner_[s]->export_metrics(reg, strfmt("%sshard%zu.", p.c_str(), s));
  }
  const blockdev::RetryCounters total = retry_counters();
  reg.add(p + "io_retries", total.retries);
  reg.add(p + "io_give_ups", total.give_ups);
  reg.set(p + "shards", static_cast<double>(inner_.size()));
}

std::unique_ptr<Dictionary> make_sharded_engine(EngineKind kind,
                                                sim::Device& dev,
                                                sim::IoContext& io,
                                                const EngineConfig& config,
                                                const ShardedConfig& sharded) {
  if (sharded.shards == 1 && sharded.base_offset == 0) {
    return make_engine(kind, dev, io, config);
  }
  return std::make_unique<ShardedEngine>(kind, dev, io, config, sharded);
}

}  // namespace damkit::kv
