#include "kv/slice.h"

#include <cstring>

#include "util/status.h"

namespace damkit::kv {

std::string encode_key(uint64_t id, size_t width) {
  std::string key;
  encode_key_to(id, width, &key);
  return key;
}

void encode_key_to(uint64_t id, size_t width, std::string* out) {
  DAMKIT_CHECK(width >= 8);
  out->assign(width, '\0');
  for (int i = 0; i < 8; ++i) {
    (*out)[width - 1 - static_cast<size_t>(i)] =
        static_cast<char>((id >> (8 * i)) & 0xff);
  }
}

uint64_t decode_key(std::string_view key) {
  DAMKIT_CHECK(key.size() >= 8);
  uint64_t id = 0;
  const size_t base = key.size() - 8;
  for (size_t i = 0; i < 8; ++i) {
    id = (id << 8) | static_cast<uint8_t>(key[base + i]);
  }
  return id;
}

std::string make_value(uint64_t id, size_t len) {
  std::string value;
  make_value_to(id, len, &value);
  return value;
}

void make_value_to(uint64_t id, size_t len, std::string* out) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  out->resize(len);
  uint64_t state = id * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  for (size_t i = 0; i < len; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    (*out)[i] = kAlphabet[state & 63];
  }
}

bool check_value(uint64_t id, std::string_view value) {
  return make_value(id, value.size()) == value;
}

}  // namespace damkit::kv
