#include "kv/slice.h"

#include <cstring>

#include "util/status.h"

namespace damkit::kv {

std::string encode_key(uint64_t id, size_t width) {
  DAMKIT_CHECK(width >= 8);
  std::string key(width, '\0');
  for (int i = 0; i < 8; ++i) {
    key[width - 1 - static_cast<size_t>(i)] =
        static_cast<char>((id >> (8 * i)) & 0xff);
  }
  return key;
}

uint64_t decode_key(std::string_view key) {
  DAMKIT_CHECK(key.size() >= 8);
  uint64_t id = 0;
  const size_t base = key.size() - 8;
  for (size_t i = 0; i < 8; ++i) {
    id = (id << 8) | static_cast<uint8_t>(key[base + i]);
  }
  return id;
}

std::string make_value(uint64_t id, size_t len) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_";
  std::string value(len, '\0');
  uint64_t state = id * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  for (size_t i = 0; i < len; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    value[i] = kAlphabet[state & 63];
  }
  return value;
}

bool check_value(uint64_t id, std::string_view value) {
  return make_value(id, value.size()) == value;
}

int compare(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  const int c = n == 0 ? 0 : std::memcmp(a.data(), b.data(), n);
  if (c != 0) return c;
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace damkit::kv
