// Workload generation for the data-structure experiments (§7): bulk data
// sets, then streams of random inserts / queries / scans over a configured
// key distribution, mirroring the paper's "insert 16GB of key-value pairs,
// then perform random inserts and random queries" procedure.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"

namespace damkit::kv {

enum class Distribution : uint8_t { kUniform, kZipfian, kSequential };

enum class OpType : uint8_t { kGet, kPut, kDelete, kScan, kUpsert };

struct Op {
  OpType type = OpType::kGet;
  uint64_t key_id = 0;
  uint32_t scan_length = 0;  // for kScan
};

struct WorkloadSpec {
  uint64_t key_space = 1'000'000;  // ids drawn from [0, key_space)
  size_t key_bytes = 16;
  size_t value_bytes = 100;
  Distribution distribution = Distribution::kUniform;
  double zipf_theta = 0.99;

  // Mix (weights; need not sum to 1, normalized internally).
  double get_weight = 0.5;
  double put_weight = 0.5;
  double delete_weight = 0.0;
  double scan_weight = 0.0;
  double upsert_weight = 0.0;
  uint32_t scan_length = 100;

  uint64_t seed = 7;

  // --- Scenario extensions (all default-off). With every field at its
  // default the generated op stream is bit-identical to the base
  // generator: the extensions neither draw from nor reorder the RNG
  // stream, they only post-process the drawn (key, op) pair.

  /// Time-shifting Zipfian hot set: every `hot_shift_every` ops the
  /// scrambled hot key ids rotate forward by `hot_shift_stride`, modelling
  /// a working set that drifts over time (YCSB-D's "read latest" flavor).
  /// 0 = static hot set. Applies to the Zipfian distribution only.
  uint64_t hot_shift_every = 0;
  uint64_t hot_shift_stride = 0;

  /// Periodic scan-heavy OLAP phase: after every `olap_every` ordinary
  /// ops, the next `olap_len` ops are forced to range scans of
  /// `scan_length` rows (an analytic burst riding on the OLTP mix).
  /// olap_every = 0 disables the phase.
  uint64_t olap_every = 0;
  uint64_t olap_len = 0;
};

/// Named workload presets: the YCSB core workloads "ycsb-a" .. "ycsb-f"
/// (update-heavy, read-mostly, read-only, read-latest, scan-heavy,
/// read-modify-write) plus the scenario extras "shift" (time-shifting
/// Zipfian hot set) and "olap" (periodic scan burst on an OLTP mix).
/// Returns nullopt for an unknown name.
std::optional<WorkloadSpec> make_workload_preset(std::string_view name);

/// Comma-separated preset names for CLI help/usage text.
const char* workload_preset_names();

/// Stream of operations drawn from a WorkloadSpec.
class OpGenerator {
 public:
  explicit OpGenerator(const WorkloadSpec& spec);

  Op next();

  const WorkloadSpec& spec() const { return spec_; }

 private:
  uint64_t next_key_id();

  WorkloadSpec spec_;
  Rng rng_;
  std::optional<Zipfian> zipf_;
  uint64_t sequential_cursor_ = 0;
  uint64_t op_index_ = 0;  // ops generated so far (hot-shift / OLAP clock)
  double total_weight_;
};

/// The ids 0..n-1 in a deterministic random permutation — the paper's
/// "random insert" load order (every key inserted exactly once).
std::vector<uint64_t> shuffled_ids(uint64_t n, uint64_t seed);

/// A sorted bulk-load stream: (encode_key(i), make_value(i, value_bytes))
/// for i in [0, n), materialized lazily by index to bound host memory.
struct BulkItem {
  std::string key;
  std::string value;
};
BulkItem bulk_item(uint64_t index, const WorkloadSpec& spec);

/// bulk_item into caller-owned buffers: the strings' capacity is reused
/// across calls, so a bulk-load loop does zero steady-state allocations.
void bulk_item_to(uint64_t index, const WorkloadSpec& spec, BulkItem* out);

}  // namespace damkit::kv
