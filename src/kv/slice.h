// Key/value conventions for the dictionary structures.
//
// Keys and values are owned byte strings; lookups take string_views. Keys
// compare lexicographically, so fixed-width integer keys are encoded
// big-endian (numeric order == byte order).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace damkit::kv {

/// Keys and values flow through the node layer as borrowed views; the
/// alias names the contract (zero-copy, valid only while the backing node
/// or pin is alive) at API boundaries.
using Slice = std::string_view;

/// Encode `id` as a fixed-width big-endian key of `width` >= 8 bytes
/// (left-padded with zeros) so lexicographic order matches numeric order.
std::string encode_key(uint64_t id, size_t width = 8);

/// encode_key into a caller-owned buffer whose capacity is reused across
/// calls — the per-op allocation-free path for generator loops.
void encode_key_to(uint64_t id, size_t width, std::string* out);

/// Inverse of encode_key (reads the trailing 8 bytes).
uint64_t decode_key(std::string_view key);

/// Deterministic pseudo-random printable value of `len` bytes derived from
/// `id` — verifiable without storing the expected bytes.
std::string make_value(uint64_t id, size_t len);

/// make_value into a caller-owned buffer (capacity reused across calls).
void make_value_to(uint64_t id, size_t len, std::string* out);

/// True iff `value` equals make_value(id, value.size()).
bool check_value(uint64_t id, std::string_view value);

/// Three-way lexicographic comparison (memcmp semantics). Inline and
/// word-wise on purpose: this sits inside the node-search dependency
/// chain, where an out-of-line memcmp call costs more than the compare.
inline int compare(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    uint64_t x, y;
    std::memcpy(&x, a.data() + i, 8);
    std::memcpy(&y, b.data() + i, 8);
    if (x != y) {
      // First differing byte decides; byte order == numeric order after a
      // big-endian swap.
      x = __builtin_bswap64(x);
      y = __builtin_bswap64(y);
      return x < y ? -1 : 1;
    }
  }
  for (; i < n; ++i) {
    const int d = static_cast<int>(static_cast<uint8_t>(a[i])) -
                  static_cast<int>(static_cast<uint8_t>(b[i]));
    if (d != 0) return d;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

}  // namespace damkit::kv
