// Key/value conventions for the dictionary structures.
//
// Keys and values are owned byte strings; lookups take string_views. Keys
// compare lexicographically, so fixed-width integer keys are encoded
// big-endian (numeric order == byte order).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace damkit::kv {

/// Encode `id` as a fixed-width big-endian key of `width` >= 8 bytes
/// (left-padded with zeros) so lexicographic order matches numeric order.
std::string encode_key(uint64_t id, size_t width = 8);

/// Inverse of encode_key (reads the trailing 8 bytes).
uint64_t decode_key(std::string_view key);

/// Deterministic pseudo-random printable value of `len` bytes derived from
/// `id` — verifiable without storing the expected bytes.
std::string make_value(uint64_t id, size_t len);

/// True iff `value` equals make_value(id, value.size()).
bool check_value(uint64_t id, std::string_view value);

/// Three-way lexicographic comparison (memcmp semantics).
int compare(std::string_view a, std::string_view b);

}  // namespace damkit::kv
