#include "kv/op_apply.h"

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "kv/slice.h"
#include "util/table.h"

namespace damkit::kv {

void fnv_mix(uint64_t* h, std::string_view bytes) {
  for (const char c : bytes) {
    *h ^= static_cast<uint8_t>(c);
    *h *= 0x100000001b3ULL;
  }
  *h ^= 0xff;  // separator so field boundaries are part of the digest
  *h *= 0x100000001b3ULL;
}

void apply_op(Dictionary& dict, const Op& op, uint64_t global_index,
              const WorkloadSpec& spec, const ApplyOptions& options,
              uint64_t* digest, ApplyCounters* counters,
              ApplyScratch* scratch) {
  thread_local ApplyScratch fallback;
  if (scratch == nullptr) scratch = &fallback;
  std::string& key = scratch->key;
  encode_key_to(op.key_id, spec.key_bytes, &key);
  switch (op.type) {
    case OpType::kPut: {
      ++counters->puts;
      std::string& value = scratch->value;
      make_value_to(op.key_id + global_index, spec.value_bytes, &value);
      if (options.fallible) {
        if (!dict.try_put(key, value).ok()) ++counters->failed_ops;
      } else {
        dict.put(key, value);
      }
      break;
    }
    case OpType::kGet: {
      ++counters->gets;
      std::optional<std::string> got;
      if (options.fallible) {
        StatusOr<std::optional<std::string>> r = dict.try_get(key);
        if (!r.ok()) {
          ++counters->failed_ops;
          break;
        }
        got = *std::move(r);
      } else {
        got = dict.get(key);
      }
      fnv_mix(digest, key);
      fnv_mix(digest, got.has_value() ? "1" : "0");
      if (got.has_value()) {
        ++counters->get_hits;
        fnv_mix(digest, *got);
      }
      break;
    }
    case OpType::kDelete: {
      ++counters->erases;
      if (options.fallible) {
        if (!dict.try_erase(key).ok()) ++counters->failed_ops;
      } else {
        dict.erase(key);
      }
      break;
    }
    case OpType::kScan: {
      ++counters->scans;
      std::vector<std::pair<std::string, std::string>> rows;
      if (options.fallible) {
        auto r = dict.try_range_scan(key, op.scan_length);
        if (!r.ok()) {
          ++counters->failed_ops;
          break;
        }
        rows = *std::move(r);
      } else {
        rows = dict.range_scan(key, op.scan_length);
      }
      fnv_mix(digest, strfmt("scan:%zu", rows.size()));
      for (const auto& [k, v] : rows) {
        fnv_mix(digest, k);
        fnv_mix(digest, v);
      }
      break;
    }
    case OpType::kUpsert: {
      ++counters->upserts;
      const auto delta = static_cast<int64_t>(op.key_id % 1000 + 1);
      if (options.fallible) {
        if (!dict.try_upsert(key, delta).ok()) ++counters->failed_ops;
      } else {
        dict.upsert(key, delta);
      }
      break;
    }
  }
}

}  // namespace damkit::kv
