// EngineFactory: construct any of the five dictionaries behind one
// kv::Dictionary interface, preserving each tree's concrete API and its
// simulated-time behavior bit-for-bit (adapters forward straight through).
//
// The PDAM B-tree is a static structure with no device of its own; its
// adapter keeps an in-memory write buffer (mutations + tombstones) over a
// sorted base run and charges device IO from the rebuilt PdamBTree's
// geometry — see PdamEngineConfig.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "betree/betree.h"
#include "blockdev/codec.h"
#include "btree/btree.h"
#include "kv/dictionary.h"
#include "lsm/lsm_tree.h"
#include "pdam_tree/pdam_btree.h"
#include "sim/device.h"

namespace damkit::kv {

enum class EngineKind : uint8_t { kBTree, kBeTree, kOptBeTree, kLsm, kPdam };

/// "btree", "betree", "opt-betree", "lsm", "pdam".
std::string_view engine_kind_name(EngineKind kind);
/// Inverse of engine_kind_name; nullopt on an unknown name.
std::optional<EngineKind> parse_engine_kind(std::string_view name);
/// All five kinds, in declaration order (sweep support).
inline constexpr EngineKind kAllEngineKinds[] = {
    EngineKind::kBTree, EngineKind::kBeTree, EngineKind::kOptBeTree,
    EngineKind::kLsm, EngineKind::kPdam};

/// PDAM adapter knobs. `tree` shapes the rebuilt index (P, B, layout);
/// the write buffer absorbs mutations in memory (the memtable analog)
/// and is merged into the base run — one sequential device write — when
/// it exceeds `buffer_bytes` or on flush/checkpoint. Point descents
/// charge one node-sized read per PB-node level; scans charge the leaf
/// run sequentially.
struct PdamEngineConfig {
  pdam_tree::PdamTreeConfig tree;
  uint64_t buffer_bytes = 4 * 1024 * 1024;
  uint64_t base_offset = 0;
  /// Device window the charged node reads fall in (offsets wrap modulo
  /// this region; the PDAM index is a cost model, not a byte store).
  uint64_t region_bytes = 1ULL << 30;
};

/// Per-engine configuration bundle: exactly the concrete tree configs, so
/// factory-built engines are indistinguishable from hand-built trees.
/// Only the sub-config matching the requested kind is read.
struct EngineConfig {
  btree::BTreeConfig btree;
  betree::BeTreeConfig betree;
  lsm::LsmConfig lsm;
  PdamEngineConfig pdam;
  /// Block codec for the built engine's stored images. kDefault resolves
  /// via the DAMKIT_CODEC environment variable (identity when unset), so a
  /// CI leg can flip every factory-built engine without code changes. The
  /// resolved kind overrides the per-tree `codec` sub-config fields; the
  /// PDAM engine is touch-only (a cost model, not a byte store) and
  /// ignores it.
  blockdev::CodecKind codec = blockdev::CodecKind::kDefault;
};

/// Place every engine kind's extent space at `offset` (shard regions).
void set_base_offset(EngineConfig& config, uint64_t offset);

/// Builds a Dictionary adapter over the requested tree on `dev`/`io`.
class EngineFactory {
 public:
  static std::unique_ptr<Dictionary> make_engine(EngineKind kind,
                                                 sim::Device& dev,
                                                 sim::IoContext& io,
                                                 const EngineConfig& config);
};

inline std::unique_ptr<Dictionary> make_engine(EngineKind kind,
                                               sim::Device& dev,
                                               sim::IoContext& io,
                                               const EngineConfig& config) {
  return EngineFactory::make_engine(kind, dev, io, config);
}

}  // namespace damkit::kv
