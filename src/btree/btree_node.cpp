#include "btree/btree_node.h"

#include <algorithm>

#include "kv/codec.h"
#include "kv/slice.h"
#include "util/status.h"

namespace damkit::btree {

namespace {
constexpr uint32_t kMagic = 0x42544e44;  // "BTND"
}  // namespace

uint64_t BTreeNode::header_bytes() {
  // magic u32 + flags u8 + count u32 + next_leaf u64.
  return 4 + 1 + 4 + 8;
}

uint64_t BTreeNode::leaf_entry_bytes(size_t klen, size_t vlen) {
  return 2 + 4 + klen + vlen;  // u16 klen + u32 vlen + payloads
}

uint64_t BTreeNode::pivot_bytes(size_t klen) { return 2 + klen; }

std::shared_ptr<BTreeNode> BTreeNode::make_leaf() {
  auto n = std::shared_ptr<BTreeNode>(new BTreeNode());
  n->is_leaf_ = true;
  n->byte_size_ = header_bytes();
  return n;
}

std::shared_ptr<BTreeNode> BTreeNode::make_internal() {
  auto n = std::shared_ptr<BTreeNode>(new BTreeNode());
  n->is_leaf_ = false;
  n->byte_size_ = header_bytes();
  return n;
}

size_t BTreeNode::lower_bound(std::string_view key) const {
  const auto it = std::lower_bound(
      keys_.begin(), keys_.end(), key,
      [](const std::string& a, std::string_view b) {
        return kv::compare(a, b) < 0;
      });
  return static_cast<size_t>(it - keys_.begin());
}

bool BTreeNode::key_equals(size_t i, std::string_view key) const {
  return i < keys_.size() && kv::compare(keys_[i], key) == 0;
}

bool BTreeNode::leaf_put(std::string_view key, std::string_view value) {
  DAMKIT_CHECK(is_leaf_);
  const size_t i = lower_bound(key);
  if (key_equals(i, key)) {
    byte_size_ += value.size();
    byte_size_ -= values_[i].size();
    values_[i].assign(value);
    return false;
  }
  keys_.insert(keys_.begin() + static_cast<ptrdiff_t>(i), std::string(key));
  values_.insert(values_.begin() + static_cast<ptrdiff_t>(i),
                 std::string(value));
  byte_size_ += leaf_entry_bytes(key.size(), value.size());
  return true;
}

bool BTreeNode::leaf_erase(std::string_view key) {
  DAMKIT_CHECK(is_leaf_);
  const size_t i = lower_bound(key);
  if (!key_equals(i, key)) return false;
  byte_size_ -= leaf_entry_bytes(keys_[i].size(), values_[i].size());
  keys_.erase(keys_.begin() + static_cast<ptrdiff_t>(i));
  values_.erase(values_.begin() + static_cast<ptrdiff_t>(i));
  return true;
}

void BTreeNode::leaf_append(std::string key, std::string value) {
  DAMKIT_CHECK(is_leaf_);
  DAMKIT_CHECK(keys_.empty() || kv::compare(keys_.back(), key) < 0);
  byte_size_ += leaf_entry_bytes(key.size(), value.size());
  keys_.push_back(std::move(key));
  values_.push_back(std::move(value));
}

size_t BTreeNode::child_index(std::string_view key) const {
  DAMKIT_CHECK(!is_leaf_);
  const auto it = std::upper_bound(
      keys_.begin(), keys_.end(), key,
      [](std::string_view a, const std::string& b) {
        return kv::compare(a, b) < 0;
      });
  return static_cast<size_t>(it - keys_.begin());
}

void BTreeNode::internal_init(uint64_t first_child) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(children_.empty());
  children_.push_back(first_child);
  byte_size_ += child_bytes();
}

void BTreeNode::internal_insert(size_t child_idx, std::string pivot,
                                uint64_t right_child) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(child_idx < children_.size());
  byte_size_ += pivot_bytes(pivot.size()) + child_bytes();
  keys_.insert(keys_.begin() + static_cast<ptrdiff_t>(child_idx),
               std::move(pivot));
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
                   right_child);
}

void BTreeNode::internal_remove(size_t pivot_idx) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(pivot_idx < keys_.size());
  byte_size_ -= pivot_bytes(keys_[pivot_idx].size()) + child_bytes();
  keys_.erase(keys_.begin() + static_cast<ptrdiff_t>(pivot_idx));
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(pivot_idx) + 1);
}

void BTreeNode::internal_set_pivot(size_t i, std::string key) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(i < keys_.size());
  byte_size_ += pivot_bytes(key.size());
  byte_size_ -= pivot_bytes(keys_[i].size());
  keys_[i] = std::move(key);
}

BTreeNode::SplitResult BTreeNode::split() {
  SplitResult result;
  if (is_leaf_) {
    DAMKIT_CHECK(keys_.size() >= 2);
    // Split point: first index where the prefix reaches half the payload.
    const uint64_t payload = byte_size_ - header_bytes();
    uint64_t acc = 0;
    size_t m = 0;
    while (m + 1 < keys_.size() && acc < payload / 2) {
      acc += leaf_entry_bytes(keys_[m].size(), values_[m].size());
      ++m;
    }
    if (m == 0) m = 1;

    result.right = make_leaf();
    BTreeNode& r = *result.right;
    for (size_t i = m; i < keys_.size(); ++i) {
      r.byte_size_ += leaf_entry_bytes(keys_[i].size(), values_[i].size());
    }
    r.keys_.assign(std::make_move_iterator(keys_.begin() + static_cast<ptrdiff_t>(m)),
                   std::make_move_iterator(keys_.end()));
    r.values_.assign(
        std::make_move_iterator(values_.begin() + static_cast<ptrdiff_t>(m)),
        std::make_move_iterator(values_.end()));
    keys_.resize(m);
    values_.resize(m);
    byte_size_ -= r.byte_size_ - header_bytes();
    r.next_leaf_ = next_leaf_;
    // Caller sets this->next_leaf_ to the new node's id once allocated.
    result.separator = r.keys_.front();
  } else {
    DAMKIT_CHECK(keys_.size() >= 3);
    // Median pivot (by bytes) moves up.
    const uint64_t payload = byte_size_ - header_bytes();
    uint64_t acc = child_bytes();
    size_t m = 0;
    while (m + 2 < keys_.size() && acc < payload / 2) {
      acc += pivot_bytes(keys_[m].size()) + child_bytes();
      ++m;
    }
    if (m == 0) m = 1;

    result.separator = std::move(keys_[m]);
    result.right = make_internal();
    BTreeNode& r = *result.right;
    for (size_t i = m + 1; i < keys_.size(); ++i) {
      r.byte_size_ += pivot_bytes(keys_[i].size());
    }
    r.byte_size_ += child_bytes() * (children_.size() - (m + 1));
    r.keys_.assign(
        std::make_move_iterator(keys_.begin() + static_cast<ptrdiff_t>(m) + 1),
        std::make_move_iterator(keys_.end()));
    r.children_.assign(children_.begin() + static_cast<ptrdiff_t>(m) + 1,
                       children_.end());
    keys_.resize(m);
    children_.resize(m + 1);
    byte_size_ -= r.byte_size_ - header_bytes();
    byte_size_ -= pivot_bytes(result.separator.size());
  }
  return result;
}

void BTreeNode::merge_from_right(BTreeNode& right, std::string_view separator) {
  DAMKIT_CHECK(is_leaf_ == right.is_leaf_);
  if (is_leaf_) {
    for (size_t i = 0; i < right.keys_.size(); ++i) {
      byte_size_ +=
          leaf_entry_bytes(right.keys_[i].size(), right.values_[i].size());
      keys_.push_back(std::move(right.keys_[i]));
      values_.push_back(std::move(right.values_[i]));
    }
    next_leaf_ = right.next_leaf_;
  } else {
    byte_size_ += pivot_bytes(separator.size());
    keys_.emplace_back(separator);
    for (auto& k : right.keys_) {
      byte_size_ += pivot_bytes(k.size());
      keys_.push_back(std::move(k));
    }
    for (uint64_t c : right.children_) {
      byte_size_ += child_bytes();
      children_.push_back(c);
    }
  }
  right.keys_.clear();
  right.values_.clear();
  right.children_.clear();
  right.byte_size_ = header_bytes();
}

std::string BTreeNode::borrow_balance(BTreeNode& right,
                                      std::string_view separator) {
  DAMKIT_CHECK(is_leaf_ == right.is_leaf_);
  if (is_leaf_) {
    // Move entries across until the byte sizes are as balanced as possible.
    while (byte_size_ < right.byte_size_ && right.keys_.size() > 1) {
      const uint64_t moved =
          leaf_entry_bytes(right.keys_.front().size(),
                           right.values_.front().size());
      if (byte_size_ + moved > right.byte_size_ - moved &&
          byte_size_ + moved > right.byte_size_) {
        break;
      }
      keys_.push_back(std::move(right.keys_.front()));
      values_.push_back(std::move(right.values_.front()));
      right.keys_.erase(right.keys_.begin());
      right.values_.erase(right.values_.begin());
      byte_size_ += moved;
      right.byte_size_ -= moved;
    }
    while (right.byte_size_ < byte_size_ && keys_.size() > 1) {
      const uint64_t moved =
          leaf_entry_bytes(keys_.back().size(), values_.back().size());
      if (right.byte_size_ + moved > byte_size_ - moved &&
          right.byte_size_ + moved > byte_size_) {
        break;
      }
      right.keys_.insert(right.keys_.begin(), std::move(keys_.back()));
      right.values_.insert(right.values_.begin(), std::move(values_.back()));
      keys_.pop_back();
      values_.pop_back();
      right.byte_size_ += moved;
      byte_size_ -= moved;
    }
    return right.keys_.front();
  }

  // Internal: rotate through the separator.
  std::string sep(separator);
  while (byte_size_ < right.byte_size_ && right.keys_.size() > 1) {
    const uint64_t gain = pivot_bytes(sep.size()) + child_bytes();
    const uint64_t loss =
        pivot_bytes(right.keys_.front().size()) + child_bytes();
    if (byte_size_ + gain > right.byte_size_ - loss) break;
    keys_.push_back(std::move(sep));
    children_.push_back(right.children_.front());
    byte_size_ += gain;
    sep = std::move(right.keys_.front());
    right.keys_.erase(right.keys_.begin());
    right.children_.erase(right.children_.begin());
    right.byte_size_ -= loss;
  }
  while (right.byte_size_ < byte_size_ && keys_.size() > 1) {
    const uint64_t gain = pivot_bytes(sep.size()) + child_bytes();
    const uint64_t loss = pivot_bytes(keys_.back().size()) + child_bytes();
    if (right.byte_size_ + gain > byte_size_ - loss) break;
    right.keys_.insert(right.keys_.begin(), std::move(sep));
    right.children_.insert(right.children_.begin(), children_.back());
    right.byte_size_ += gain;
    sep = std::move(keys_.back());
    keys_.pop_back();
    children_.pop_back();
    byte_size_ -= loss;
  }
  return sep;
}

void BTreeNode::serialize(std::vector<uint8_t>& out) const {
  out.clear();
  out.reserve(byte_size_);
  kv::Writer w(out);
  w.put_u32(kMagic);
  w.put_u8(is_leaf_ ? 1 : 0);
  w.put_u32(static_cast<uint32_t>(is_leaf_ ? keys_.size() : children_.size()));
  w.put_u64(next_leaf_);
  if (is_leaf_) {
    for (size_t i = 0; i < keys_.size(); ++i) {
      w.put_u16(static_cast<uint16_t>(keys_[i].size()));
      w.put_u32(static_cast<uint32_t>(values_[i].size()));
      w.put_bytes(keys_[i]);
      w.put_bytes(values_[i]);
    }
  } else {
    for (uint64_t c : children_) w.put_u64(c);
    for (const auto& k : keys_) {
      w.put_u16(static_cast<uint16_t>(k.size()));
      w.put_bytes(k);
    }
  }
  DAMKIT_CHECK_MSG(out.size() == byte_size_,
                   "size accounting drift: serialized "
                       << out.size() << " vs tracked " << byte_size_);
}

std::shared_ptr<BTreeNode> BTreeNode::deserialize(
    std::span<const uint8_t> image) {
  kv::Reader r(image);
  DAMKIT_CHECK_MSG(r.get_u32() == kMagic, "bad node magic");
  const bool leaf = r.get_u8() != 0;
  const uint32_t count = r.get_u32();
  const uint64_t next = r.get_u64();
  auto node = leaf ? make_leaf() : make_internal();
  node->next_leaf_ = next;
  if (leaf) {
    node->keys_.reserve(count);
    node->values_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      const uint16_t klen = r.get_u16();
      const uint32_t vlen = r.get_u32();
      node->keys_.push_back(r.get_bytes(klen));
      node->values_.push_back(r.get_bytes(vlen));
      node->byte_size_ += leaf_entry_bytes(klen, vlen);
    }
  } else {
    node->children_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      node->children_.push_back(r.get_u64());
      node->byte_size_ += child_bytes();
    }
    node->keys_.reserve(count - 1);
    for (uint32_t i = 0; i + 1 < count; ++i) {
      const uint16_t klen = r.get_u16();
      node->keys_.push_back(r.get_bytes(klen));
      node->byte_size_ += pivot_bytes(klen);
    }
  }
  return node;
}

uint64_t BTreeNode::recomputed_byte_size() const {
  uint64_t size = header_bytes();
  if (is_leaf_) {
    for (size_t i = 0; i < keys_.size(); ++i) {
      size += leaf_entry_bytes(keys_[i].size(), values_[i].size());
    }
  } else {
    size += child_bytes() * children_.size();
    for (const auto& k : keys_) size += pivot_bytes(k.size());
  }
  return size;
}

}  // namespace damkit::btree
