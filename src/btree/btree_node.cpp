#include "btree/btree_node.h"

#include <algorithm>

#include "kv/codec.h"
#include "kv/slice.h"
#include "util/status.h"

namespace damkit::btree {

namespace {

constexpr uint32_t kMagic = 0x42544e44;  // "BTND"

size_t leaf_record_len(const uint8_t* p) {
  return size_t{6} + load_u16(p) + load_u32(p + 2);
}

size_t pivot_record_len(const uint8_t* p) { return size_t{2} + load_u16(p); }

std::string_view leaf_record_key(std::string_view rec) {
  return rec.substr(6, load_u16(reinterpret_cast<const uint8_t*>(rec.data())));
}

std::string_view pivot_record_key(std::string_view rec) {
  return rec.substr(2);
}

}  // namespace

uint64_t BTreeNode::header_bytes() {
  // magic u32 + flags u8 + count u32 + next_leaf u64.
  return 4 + 1 + 4 + 8;
}

uint64_t BTreeNode::leaf_entry_bytes(size_t klen, size_t vlen) {
  return 2 + 4 + klen + vlen;  // u16 klen + u32 vlen + payloads
}

uint64_t BTreeNode::pivot_bytes(size_t klen) { return 2 + klen; }

void BTreeNode::encode_leaf_record(uint8_t* p, std::string_view key,
                                   std::string_view value) {
  store_u16(p, static_cast<uint16_t>(key.size()));
  store_u32(p + 2, static_cast<uint32_t>(value.size()));
  std::memcpy(p + 6, key.data(), key.size());
  std::memcpy(p + 6 + key.size(), value.data(), value.size());
}

void BTreeNode::encode_pivot_record(uint8_t* p, std::string_view key) {
  store_u16(p, static_cast<uint16_t>(key.size()));
  std::memcpy(p + 2, key.data(), key.size());
}

std::shared_ptr<BTreeNode> BTreeNode::make_leaf() {
  auto n = std::shared_ptr<BTreeNode>(new BTreeNode());
  n->is_leaf_ = true;
  return n;
}

std::shared_ptr<BTreeNode> BTreeNode::make_internal() {
  auto n = std::shared_ptr<BTreeNode>(new BTreeNode());
  n->is_leaf_ = false;
  return n;
}

size_t BTreeNode::lower_bound(std::string_view key) const {
  return page_.lower_bound(key, leaf_record_key);
}

bool BTreeNode::key_equals(size_t i, std::string_view key) const {
  return i < page_.count() && kv::compare(this->key(i), key) == 0;
}

bool BTreeNode::leaf_put(std::string_view key, std::string_view value) {
  DAMKIT_CHECK(is_leaf_);
  const size_t i = lower_bound(key);
  if (key_equals(i, key)) {
    uint8_t* p = page_.replace_alloc(i, leaf_entry_bytes(key.size(),
                                                         value.size()));
    encode_leaf_record(p, key, value);
    return false;
  }
  uint8_t* p =
      page_.insert_alloc(i, leaf_entry_bytes(key.size(), value.size()));
  encode_leaf_record(p, key, value);
  return true;
}

bool BTreeNode::leaf_erase(std::string_view key) {
  DAMKIT_CHECK(is_leaf_);
  const size_t i = lower_bound(key);
  if (!key_equals(i, key)) return false;
  page_.erase(i);
  return true;
}

void BTreeNode::leaf_append(std::string_view key, std::string_view value) {
  DAMKIT_CHECK(is_leaf_);
  DAMKIT_CHECK(page_.empty() ||
               kv::compare(this->key(page_.count() - 1), key) < 0);
  uint8_t* p = page_.insert_alloc(page_.count(),
                                  leaf_entry_bytes(key.size(), value.size()));
  encode_leaf_record(p, key, value);
}

size_t BTreeNode::child_index(std::string_view key) const {
  DAMKIT_CHECK(!is_leaf_);
  return page_.upper_bound(key, pivot_record_key);
}

void BTreeNode::internal_init(uint64_t first_child) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(children_.empty());
  children_.push_back(first_child);
}

void BTreeNode::internal_insert(size_t child_idx, std::string_view pivot,
                                uint64_t right_child) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(child_idx < children_.size());
  uint8_t* p = page_.insert_alloc(child_idx, pivot_bytes(pivot.size()));
  encode_pivot_record(p, pivot);
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
                   right_child);
}

void BTreeNode::internal_remove(size_t pivot_idx) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(pivot_idx < page_.count());
  page_.erase(pivot_idx);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(pivot_idx) + 1);
}

void BTreeNode::internal_set_pivot(size_t i, std::string_view key) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(i < page_.count());
  uint8_t* p = page_.replace_alloc(i, pivot_bytes(key.size()));
  encode_pivot_record(p, key);
}

BTreeNode::SplitResult BTreeNode::split() {
  SplitResult result;
  if (is_leaf_) {
    DAMKIT_CHECK(page_.count() >= 2);
    // Split point: first index where the prefix reaches half the payload.
    const uint64_t payload = byte_size() - header_bytes();
    uint64_t acc = 0;
    size_t m = 0;
    while (m + 1 < page_.count() && acc < payload / 2) {
      acc += page_.record(m).size();
      ++m;
    }
    if (m == 0) m = 1;

    result.right = make_leaf();
    BTreeNode& r = *result.right;
    for (size_t i = m; i < page_.count(); ++i) r.page_.append(page_.record(i));
    page_.truncate(m);
    r.next_leaf_ = next_leaf_;
    // Caller sets this->next_leaf_ to the new node's id once allocated.
    result.separator = std::string(r.key(0));
  } else {
    DAMKIT_CHECK(page_.count() >= 3);
    // Median pivot (by bytes) moves up.
    const uint64_t payload = byte_size() - header_bytes();
    uint64_t acc = child_bytes();
    size_t m = 0;
    while (m + 2 < page_.count() && acc < payload / 2) {
      acc += page_.record(m).size() + child_bytes();
      ++m;
    }
    if (m == 0) m = 1;

    result.separator = std::string(pivot(m));
    result.right = make_internal();
    BTreeNode& r = *result.right;
    for (size_t i = m + 1; i < page_.count(); ++i) {
      r.page_.append(page_.record(i));
    }
    r.children_.assign(children_.begin() + static_cast<ptrdiff_t>(m) + 1,
                       children_.end());
    page_.truncate(m);
    children_.resize(m + 1);
  }
  return result;
}

void BTreeNode::merge_from_right(BTreeNode& right, std::string_view separator) {
  DAMKIT_CHECK(is_leaf_ == right.is_leaf_);
  if (is_leaf_) {
    for (size_t i = 0; i < right.page_.count(); ++i) {
      page_.append(right.page_.record(i));
    }
    next_leaf_ = right.next_leaf_;
  } else {
    uint8_t* p = page_.insert_alloc(page_.count(),
                                    pivot_bytes(separator.size()));
    encode_pivot_record(p, separator);
    for (size_t i = 0; i < right.page_.count(); ++i) {
      page_.append(right.page_.record(i));
    }
    for (uint64_t c : right.children_) children_.push_back(c);
  }
  right.page_.clear();
  right.children_.clear();
}

std::string BTreeNode::borrow_balance(BTreeNode& right,
                                      std::string_view separator) {
  DAMKIT_CHECK(is_leaf_ == right.is_leaf_);
  if (is_leaf_) {
    // Move entries across until the byte sizes are as balanced as possible.
    while (byte_size() < right.byte_size() && right.page_.count() > 1) {
      const uint64_t moved = right.page_.record(0).size();
      if (byte_size() + moved > right.byte_size() - moved &&
          byte_size() + moved > right.byte_size()) {
        break;
      }
      page_.append(right.page_.record(0));
      right.page_.drop_front(1);
    }
    while (right.byte_size() < byte_size() && page_.count() > 1) {
      const uint64_t moved = page_.record(page_.count() - 1).size();
      if (right.byte_size() + moved > byte_size() - moved &&
          right.byte_size() + moved > byte_size()) {
        break;
      }
      right.page_.insert(0, page_.record(page_.count() - 1));
      page_.truncate(page_.count() - 1);
    }
    return std::string(right.key(0));
  }

  // Internal: rotate through the separator.
  std::string sep(separator);
  while (byte_size() < right.byte_size() && right.page_.count() > 1) {
    const uint64_t gain = pivot_bytes(sep.size()) + child_bytes();
    const uint64_t loss = right.page_.record(0).size() + child_bytes();
    if (byte_size() + gain > right.byte_size() - loss) break;
    uint8_t* p = page_.insert_alloc(page_.count(), pivot_bytes(sep.size()));
    encode_pivot_record(p, sep);
    children_.push_back(right.children_.front());
    sep = std::string(right.pivot(0));
    right.page_.drop_front(1);
    right.children_.erase(right.children_.begin());
  }
  while (right.byte_size() < byte_size() && page_.count() > 1) {
    const uint64_t gain = pivot_bytes(sep.size()) + child_bytes();
    const uint64_t loss = page_.record(page_.count() - 1).size() +
                          child_bytes();
    if (right.byte_size() + gain > byte_size() - loss) break;
    uint8_t* p = right.page_.insert_alloc(0, pivot_bytes(sep.size()));
    encode_pivot_record(p, sep);
    right.children_.insert(right.children_.begin(), children_.back());
    sep = std::string(pivot(page_.count() - 1));
    page_.truncate(page_.count() - 1);
    children_.pop_back();
  }
  return sep;
}

void BTreeNode::serialize(std::vector<uint8_t>& out) const {
  out.clear();
  out.reserve(byte_size());
  kv::Writer w(out);
  w.put_u32(kMagic);
  w.put_u8(is_leaf_ ? 1 : 0);
  w.put_u32(static_cast<uint32_t>(is_leaf_ ? page_.count()
                                           : children_.size()));
  w.put_u64(next_leaf_);
  if (!is_leaf_) {
    for (uint64_t c : children_) w.put_u64(c);
  }
  page_.write_to(&out);
  DAMKIT_CHECK_MSG(out.size() == byte_size(),
                   "size accounting drift: serialized "
                       << out.size() << " vs tracked " << byte_size());
}

std::shared_ptr<BTreeNode> BTreeNode::deserialize(
    std::span<const uint8_t> image) {
  kv::Reader r(image);
  DAMKIT_CHECK_MSG(r.get_u32() == kMagic, "bad node magic");
  const bool leaf = r.get_u8() != 0;
  const uint32_t count = r.get_u32();
  const uint64_t next = r.get_u64();
  auto node = leaf ? make_leaf() : make_internal();
  node->next_leaf_ = next;
  if (leaf) {
    node->page_.build_from_prefix(image.data() + r.position(),
                                  image.size() - r.position(), count,
                                  leaf_record_len);
  } else {
    node->children_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) node->children_.push_back(r.get_u64());
    node->page_.build_from_prefix(image.data() + r.position(),
                                  image.size() - r.position(),
                                  count == 0 ? 0 : count - 1,
                                  pivot_record_len);
  }
  return node;
}

uint64_t BTreeNode::recomputed_byte_size() const {
  uint64_t size = header_bytes();
  if (is_leaf_) {
    for (size_t i = 0; i < page_.count(); ++i) {
      size += leaf_entry_bytes(key(i).size(), value(i).size());
    }
  } else {
    size += child_bytes() * children_.size();
    for (size_t i = 0; i < page_.count(); ++i) {
      size += pivot_bytes(pivot(i).size());
    }
  }
  return size;
}

}  // namespace damkit::btree
