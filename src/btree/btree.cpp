#include "btree/btree.h"

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "kv/slice.h"

namespace damkit::btree {

BTree::BTree(sim::Device& dev, sim::IoContext& io, BTreeConfig config)
    : dev_(&dev),
      io_(&io),
      config_(config),
      store_(dev, io, config.node_bytes, config.base_offset, config.codec) {
  DAMKIT_CHECK(config_.node_bytes >= 512);
  DAMKIT_CHECK(config_.cache_bytes >= config_.node_bytes);
  pool_ = std::make_unique<cache::BufferPool>(
      config_.cache_bytes, [this](uint64_t id, void* object) {
        auto* node = static_cast<BTreeNode*>(object);
        node->serialize(io_buf_);
        return store_.try_write_node(id, io_buf_);
      });
  // Checkpoints write all dirty nodes as one device batch.
  pool_->set_batch_writeback(
      [this](std::span<const std::pair<uint64_t, void*>> dirty,
             std::vector<bool>* written) {
        std::vector<std::vector<uint8_t>> images(dirty.size());
        std::vector<blockdev::NodeStore::NodeImage> writes;
        writes.reserve(dirty.size());
        for (size_t i = 0; i < dirty.size(); ++i) {
          static_cast<BTreeNode*>(dirty[i].second)->serialize(images[i]);
          writes.push_back({dirty[i].first, images[i]});
        }
        return store_.try_write_nodes(writes, written);
      });
}

BTree::~BTree() { DAMKIT_CHECK_OK(pool_->flush_all()); }

StatusOr<BTree::NodeRef> BTree::try_fetch(uint64_t id) {
  DAMKIT_CHECK(id != kInvalidNode);
  if (NodeRef cached = pool_->get<BTreeNode>(id)) return cached;
  DAMKIT_RETURN_IF_ERROR(store_.try_read_node(id, io_buf_));
  NodeRef node = BTreeNode::deserialize(io_buf_);
  pool_->put(id, node, config_.node_bytes, /*dirty=*/false);
  return node;
}

BTree::NodeRef BTree::fetch(uint64_t id) {
  StatusOr<NodeRef> node = try_fetch(id);
  DAMKIT_CHECK_OK(node.status());
  return *std::move(node);
}

void BTree::install_new(uint64_t id, NodeRef node) {
  pool_->put(id, std::move(node), config_.node_bytes, /*dirty=*/true);
}

Status BTree::descend(std::string_view key, uint64_t* leaf_id,
                      std::vector<PathEntry>* path, NodeRef* leaf) {
  uint64_t id = root_;
  StatusOr<NodeRef> node = try_fetch(id);
  DAMKIT_RETURN_IF_ERROR(node.status());
  while (!(*node)->is_leaf()) {
    const size_t idx = (*node)->child_index(key);
    if (path != nullptr) path->push_back({id, *node, idx});
    id = (*node)->child(idx);
    node = try_fetch(id);
    DAMKIT_RETURN_IF_ERROR(node.status());
  }
  *leaf_id = id;
  *leaf = *std::move(node);
  return Status();
}

void BTree::put(std::string_view key, std::string_view value) {
  DAMKIT_CHECK_OK(try_put(key, value));
}

Status BTree::try_put(std::string_view key, std::string_view value) {
  // A leaf must be able to hold two entries or splitting cannot make
  // progress; surface misconfiguration loudly.
  DAMKIT_CHECK_MSG(
      BTreeNode::leaf_entry_bytes(key.size(), value.size()) <=
          config_.node_bytes / 2,
      "entry of " << key.size() + value.size()
                  << " bytes too large for node_bytes=" << config_.node_bytes);
  ++op_stats_.puts;
  op_stats_.logical_bytes_written += key.size() + value.size();
  if (root_ == kInvalidNode) {
    StatusOr<uint64_t> id = store_.try_allocate();
    DAMKIT_RETURN_IF_ERROR(id.status());
    root_ = *id;
    install_new(root_, BTreeNode::make_leaf());
    height_ = 1;
  }
  std::vector<PathEntry> path;
  uint64_t leaf_id;
  NodeRef leaf;
  DAMKIT_RETURN_IF_ERROR(descend(key, &leaf_id, &path, &leaf));
  if (leaf->leaf_put(key, value)) ++size_;
  mark_dirty(leaf_id);
  if (overflowing(*leaf)) return split_upward(path, leaf_id, leaf);
  return Status();
}

Status BTree::split_upward(std::vector<PathEntry>& path, uint64_t node_id,
                           NodeRef node) {
  while (overflowing(*node)) {
    // Reserve every extent this round needs BEFORE mutating any node, so
    // an allocation failure leaves the tree structurally intact (the node
    // stays overflowing; a later put retries the split).
    StatusOr<uint64_t> right_alloc = store_.try_allocate();
    DAMKIT_RETURN_IF_ERROR(right_alloc.status());
    const uint64_t right_id = *right_alloc;
    uint64_t new_root = kInvalidNode;
    if (path.empty()) {
      StatusOr<uint64_t> root_alloc = store_.try_allocate();
      if (!root_alloc.ok()) {
        store_.free(right_id);
        return root_alloc.status();
      }
      new_root = *root_alloc;
    }

    ++op_stats_.splits;
    BTreeNode::SplitResult split = node->split();
    if (node->is_leaf()) node->set_next_leaf(right_id);
    install_new(right_id, split.right);
    mark_dirty(node_id);

    if (path.empty()) {
      // Grow a new root above.
      NodeRef root = BTreeNode::make_internal();
      root->internal_init(node_id);
      root->internal_insert(0, std::move(split.separator), right_id);
      install_new(new_root, root);
      root_ = new_root;
      ++height_;
      return Status();
    }

    PathEntry parent = path.back();
    path.pop_back();
    parent.node->internal_insert(parent.child_idx, std::move(split.separator),
                                 right_id);
    mark_dirty(parent.id);
    node = parent.node;
    node_id = parent.id;
  }
  return Status();
}

std::optional<std::string> BTree::get(std::string_view key) {
  StatusOr<std::optional<std::string>> v = try_get(key);
  DAMKIT_CHECK_OK(v.status());
  return *std::move(v);
}

StatusOr<std::optional<std::string>> BTree::try_get(std::string_view key) {
  ++op_stats_.gets;
  if (root_ == kInvalidNode) return std::optional<std::string>();
  uint64_t leaf_id;
  NodeRef leaf;
  DAMKIT_RETURN_IF_ERROR(descend(key, &leaf_id, nullptr, &leaf));
  const size_t i = leaf->lower_bound(key);
  if (!leaf->key_equals(i, key)) return std::optional<std::string>();
  return std::optional<std::string>(std::string(leaf->value(i)));
}

bool BTree::erase(std::string_view key) {
  StatusOr<bool> erased = try_erase(key);
  DAMKIT_CHECK_OK(erased.status());
  return *erased;
}

StatusOr<bool> BTree::try_erase(std::string_view key) {
  ++op_stats_.erases;
  if (root_ == kInvalidNode) return false;
  std::vector<PathEntry> path;
  uint64_t leaf_id;
  NodeRef leaf;
  DAMKIT_RETURN_IF_ERROR(descend(key, &leaf_id, &path, &leaf));
  if (!leaf->leaf_erase(key)) return false;
  --size_;
  op_stats_.logical_bytes_written += key.size();
  mark_dirty(leaf_id);
  if (underflowing(*leaf) && !path.empty()) {
    // The key is already gone; a rebalance failure leaves the tree valid
    // but under-filled, and the error is still surfaced to the caller.
    DAMKIT_RETURN_IF_ERROR(rebalance_upward(path, leaf_id, leaf));
  }
  return true;
}

Status BTree::rebalance_upward(std::vector<PathEntry>& path, uint64_t node_id,
                               NodeRef node) {
  while (underflowing(*node) && !path.empty()) {
    PathEntry parent = path.back();
    path.pop_back();

    // Pair the node with a sibling: prefer the right one.
    size_t left_idx;
    uint64_t left_id, right_id;
    NodeRef left, right;
    if (parent.child_idx + 1 < parent.node->child_count()) {
      left_idx = parent.child_idx;
      left_id = node_id;
      left = node;
      right_id = parent.node->child(left_idx + 1);
      StatusOr<NodeRef> sib = try_fetch(right_id);
      DAMKIT_RETURN_IF_ERROR(sib.status());
      right = *std::move(sib);
    } else {
      DAMKIT_CHECK(parent.child_idx > 0);
      left_idx = parent.child_idx - 1;
      left_id = parent.node->child(left_idx);
      StatusOr<NodeRef> sib = try_fetch(left_id);
      DAMKIT_RETURN_IF_ERROR(sib.status());
      left = *std::move(sib);
      right_id = node_id;
      right = node;
    }
    const std::string separator(parent.node->pivot(left_idx));

    uint64_t merged = left->byte_size() + right->byte_size() -
                      BTreeNode::header_bytes();
    if (!left->is_leaf()) {
      merged += BTreeNode::pivot_bytes(separator.size());
    }

    if (merged <= config_.node_bytes) {
      ++op_stats_.merges;
      left->merge_from_right(*right, separator);
      parent.node->internal_remove(left_idx);
      mark_dirty(left_id);
      mark_dirty(parent.id);
      pool_->erase(right_id);
      store_.free(right_id);
    } else {
      ++op_stats_.borrows;
      std::string new_sep = left->borrow_balance(*right, separator);
      parent.node->internal_set_pivot(left_idx, std::move(new_sep));
      mark_dirty(left_id);
      mark_dirty(right_id);
      mark_dirty(parent.id);
      // Borrowing fixes the pair locally; the parent's size is unchanged,
      // so no further propagation is needed.
      break;
    }

    node = parent.node;
    node_id = parent.id;
  }

  // Collapse trivial roots: an internal root with one child.
  while (height_ > 1) {
    StatusOr<NodeRef> root = try_fetch(root_);
    DAMKIT_RETURN_IF_ERROR(root.status());
    if ((*root)->is_leaf() || (*root)->child_count() > 1) break;
    const uint64_t only_child = (*root)->child(0);
    pool_->erase(root_);
    store_.free(root_);
    root_ = only_child;
    --height_;
  }
  return Status();
}

std::vector<std::pair<std::string, std::string>> BTree::scan(
    std::string_view lo, size_t limit) {
  StatusOr<std::vector<std::pair<std::string, std::string>>> out =
      try_scan(lo, limit);
  DAMKIT_CHECK_OK(out.status());
  return *std::move(out);
}

StatusOr<std::vector<std::pair<std::string, std::string>>> BTree::try_scan(
    std::string_view lo, size_t limit) {
  ++op_stats_.scans;
  std::vector<std::pair<std::string, std::string>> out;
  if (root_ == kInvalidNode || limit == 0) return out;
  uint64_t leaf_id;
  NodeRef leaf;
  DAMKIT_RETURN_IF_ERROR(descend(lo, &leaf_id, nullptr, &leaf));
  size_t i = leaf->lower_bound(lo);
  while (out.size() < limit) {
    if (i >= leaf->entry_count()) {
      const uint64_t next = leaf->next_leaf();
      if (next == kInvalidNode) break;
      StatusOr<NodeRef> next_leaf = try_fetch(next);
      DAMKIT_RETURN_IF_ERROR(next_leaf.status());
      leaf = *std::move(next_leaf);
      i = 0;
      continue;
    }
    out.emplace_back(leaf->key(i), leaf->value(i));
    ++i;
  }
  return out;
}

void BTree::bulk_load(
    uint64_t count,
    const std::function<std::pair<std::string, std::string>(uint64_t)>& item) {
  DAMKIT_CHECK_MSG(root_ == kInvalidNode, "bulk_load requires an empty tree");
  if (count == 0) return;

  const auto target =
      static_cast<uint64_t>(config_.bulk_fill *
                            static_cast<double>(config_.node_bytes));

  struct Level {  // (first key, node id) per completed node
    std::vector<std::pair<std::string, uint64_t>> nodes;
  };
  Level leaves;

  // Build leaves; a leaf is written as soon as its successor's id is known
  // (the chain pointer must be in the image).
  NodeRef pending;
  uint64_t pending_id = kInvalidNode;
  std::string pending_first;
  NodeRef cur = BTreeNode::make_leaf();
  uint64_t cur_id = store_.allocate();
  std::string cur_first;
  std::string prev_key;

  auto write_direct = [this](uint64_t id, BTreeNode& n) {
    n.serialize(io_buf_);
    store_.write_node(id, io_buf_);
  };

  for (uint64_t i = 0; i < count; ++i) {
    auto [key, value] = item(i);
    DAMKIT_CHECK_MSG(i == 0 || kv::compare(prev_key, key) < 0,
                     "bulk_load keys must be strictly ascending");
    prev_key = key;
    const uint64_t add = BTreeNode::leaf_entry_bytes(key.size(), value.size());
    if (cur->entry_count() > 0 && cur->byte_size() + add > target) {
      if (pending) {
        pending->set_next_leaf(cur_id);
        write_direct(pending_id, *pending);
        leaves.nodes.emplace_back(std::move(pending_first), pending_id);
      }
      pending = std::move(cur);
      pending_id = cur_id;
      pending_first = std::move(cur_first);
      cur = BTreeNode::make_leaf();
      cur_id = store_.allocate();
    }
    if (cur->entry_count() == 0) cur_first = key;
    cur->leaf_append(key, value);
  }
  if (pending) {
    pending->set_next_leaf(cur_id);
    write_direct(pending_id, *pending);
    leaves.nodes.emplace_back(std::move(pending_first), pending_id);
  }
  cur->set_next_leaf(kInvalidNode);
  write_direct(cur_id, *cur);
  leaves.nodes.emplace_back(std::move(cur_first), cur_id);

  size_ = count;
  height_ = 1;

  // Build internal levels until a single node remains.
  Level below = std::move(leaves);
  while (below.nodes.size() > 1) {
    Level above;
    size_t i = 0;
    while (i < below.nodes.size()) {
      NodeRef node = BTreeNode::make_internal();
      const uint64_t id = store_.allocate();
      std::string first = below.nodes[i].first;
      node->internal_init(below.nodes[i].second);
      ++i;
      while (i < below.nodes.size()) {
        const uint64_t add =
            BTreeNode::pivot_bytes(below.nodes[i].first.size()) +
            BTreeNode::child_bytes();
        if (node->byte_size() + add > target && node->child_count() >= 2) {
          break;
        }
        // Never strand a single child for the next node.
        if (i + 1 == below.nodes.size() - 1 &&
            node->byte_size() + add > target) {
          break;
        }
        node->internal_insert(node->child_count() - 1,
                              std::move(below.nodes[i].first),
                              below.nodes[i].second);
        ++i;
      }
      write_direct(id, *node);
      above.nodes.emplace_back(std::move(first), id);
    }
    below = std::move(above);
    ++height_;
  }
  root_ = below.nodes.front().second;
}

void BTree::flush() { DAMKIT_CHECK_OK(pool_->flush_all()); }

Status BTree::try_flush() { return pool_->flush_all(); }

void BTree::check_invariants() {
  if (root_ == kInvalidNode) {
    DAMKIT_CHECK(size_ == 0);
    return;
  }
  uint64_t entries = 0;
  uint64_t leftmost = kInvalidNode;
  check_subtree(root_, nullptr, nullptr, 0, height_ - 1, &entries, &leftmost);
  DAMKIT_CHECK_MSG(entries == size_,
                   "entry count " << entries << " != size " << size_);
}

void BTree::export_metrics(stats::MetricsRegistry& reg,
                           std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "puts", op_stats_.puts);
  reg.add(p + "gets", op_stats_.gets);
  reg.add(p + "erases", op_stats_.erases);
  reg.add(p + "scans", op_stats_.scans);
  reg.add(p + "splits", op_stats_.splits);
  reg.add(p + "merges", op_stats_.merges);
  reg.add(p + "borrows", op_stats_.borrows);
  reg.add(p + "logical_bytes_written", op_stats_.logical_bytes_written);
  reg.set(p + "height", static_cast<double>(height_));
  reg.set(p + "size", static_cast<double>(size_));
  if (op_stats_.logical_bytes_written > 0) {
    reg.set(p + "write_amplification",
            static_cast<double>(store_.stats().bytes_written) /
                static_cast<double>(op_stats_.logical_bytes_written));
  }
  pool_->export_metrics(reg, p + "cache.");
  store_.export_metrics(reg, p + "store.");
}

void BTree::check_subtree(uint64_t id, const std::string* lo,
                          const std::string* hi, size_t depth,
                          size_t leaf_depth, uint64_t* entries,
                          uint64_t* expected_leaf) {
  NodeRef node = fetch(id);
  DAMKIT_CHECK_MSG(node->byte_size() == node->recomputed_byte_size(),
                   "byte-size drift at node " << id);
  DAMKIT_CHECK_MSG(node->byte_size() <= config_.node_bytes,
                   "overflowing node " << id << " left behind");
  if (node->is_leaf()) {
    DAMKIT_CHECK_MSG(depth == leaf_depth, "leaf at wrong depth");
    if (*expected_leaf != kInvalidNode) {
      DAMKIT_CHECK_MSG(*expected_leaf == id, "leaf chain broken at " << id);
    }
    *expected_leaf = node->next_leaf();
    for (size_t i = 0; i < node->entry_count(); ++i) {
      if (i > 0) {
        DAMKIT_CHECK(kv::compare(node->key(i - 1), node->key(i)) < 0);
      }
      if (lo != nullptr) DAMKIT_CHECK(kv::compare(*lo, node->key(i)) <= 0);
      if (hi != nullptr) DAMKIT_CHECK(kv::compare(node->key(i), *hi) < 0);
    }
    *entries += node->entry_count();
    return;
  }
  DAMKIT_CHECK(node->child_count() >= 2 || id != root_ || height_ == 1);
  DAMKIT_CHECK(node->child_count() == node->pivot_count() + 1);
  for (size_t i = 0; i + 1 < node->pivot_count(); ++i) {
    DAMKIT_CHECK(kv::compare(node->pivot(i), node->pivot(i + 1)) < 0);
  }
  for (size_t i = 0; i < node->child_count(); ++i) {
    // Pivot views don't outlive fetches inside the recursion; materialize
    // the bounds for this child.
    std::string lo_buf, hi_buf;
    const std::string* child_lo = lo;
    if (i > 0) {
      lo_buf = std::string(node->pivot(i - 1));
      child_lo = &lo_buf;
    }
    const std::string* child_hi = hi;
    if (i != node->pivot_count()) {
      hi_buf = std::string(node->pivot(i));
      child_hi = &hi_buf;
    }
    check_subtree(node->child(i), child_lo, child_hi, depth + 1, leaf_depth,
                  entries, expected_leaf);
  }
}

}  // namespace damkit::btree
