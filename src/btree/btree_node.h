// In-memory B-tree node and its on-"disk" image.
//
// A node is either a leaf (sorted key/value entries, chained to the next
// leaf B+-tree style) or an internal node (n-1 pivots, n child ids).
//
// Records live in a node::SlottedPage in wire format, so deserialize is
// one bulk copy plus a header walk (no per-entry string allocations),
// serialize of an untouched node is one memcpy, and key()/value()/pivot()
// are zero-copy kv::Slice views into the page. The wire image is
// byte-identical to the pre-slotted layout, and byte_size() is derived
// from the page's live bytes, so sizes (and therefore every split/merge
// decision and sim-time gauge) are unchanged by construction.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "kv/slice.h"
#include "node/slotted_page.h"
#include "util/bytes.h"

namespace damkit::btree {

inline constexpr uint64_t kInvalidNode = ~0ULL;

class BTreeNode {
 public:
  static std::shared_ptr<BTreeNode> make_leaf();
  static std::shared_ptr<BTreeNode> make_internal();

  bool is_leaf() const { return is_leaf_; }
  uint64_t byte_size() const {
    return header_bytes() + child_bytes() * children_.size() +
           page_.live_bytes();
  }

  // --- Leaf accessors (views are invalidated by any mutation) ---
  size_t entry_count() const { return page_.count(); }
  kv::Slice key(size_t i) const {
    const kv::Slice rec = page_.record(i);
    return rec.substr(6, rec_klen(rec));
  }
  kv::Slice value(size_t i) const {
    const kv::Slice rec = page_.record(i);
    return rec.substr(6 + rec_klen(rec));
  }
  uint64_t next_leaf() const { return next_leaf_; }
  void set_next_leaf(uint64_t id) { next_leaf_ = id; }

  /// Index of the first entry with key >= `key` (leaf binary search).
  size_t lower_bound(std::string_view key) const;
  /// True if entry `i` exists and equals `key`.
  bool key_equals(size_t i, std::string_view key) const;

  /// Insert or overwrite; returns true if a new entry was created.
  bool leaf_put(std::string_view key, std::string_view value);
  /// Remove `key` if present; returns true if removed.
  bool leaf_erase(std::string_view key);
  /// Append an entry known to sort after all existing ones (bulk load).
  void leaf_append(std::string_view key, std::string_view value);

  // --- Internal accessors ---
  size_t child_count() const { return children_.size(); }
  uint64_t child(size_t i) const { return children_[i]; }
  size_t pivot_count() const { return page_.count(); }
  kv::Slice pivot(size_t i) const { return page_.record(i).substr(2); }

  /// Index of the child covering `key`: first pivot > key.
  size_t child_index(std::string_view key) const;

  /// Seed an internal node with its first child (no pivot yet).
  void internal_init(uint64_t first_child);
  /// Insert `(pivot, right_child)` after child at `child_idx`.
  void internal_insert(size_t child_idx, std::string_view pivot,
                       uint64_t right_child);
  /// Remove pivot `i` and child `i+1` (after a merge of i+1 into i).
  void internal_remove(size_t pivot_idx);
  /// Replace pivot i's key (borrow rebalancing).
  void internal_set_pivot(size_t i, std::string_view key);

  // --- Splitting (both kinds) ---
  struct SplitResult {
    std::string separator;             // pivot to insert into the parent
    std::shared_ptr<BTreeNode> right;  // new right sibling
  };
  /// Split roughly in half by bytes. For internal nodes the median pivot
  /// moves up (classic B-tree); for leaves the separator is the right
  /// node's first key (B+-tree).
  SplitResult split();

  /// Move entries/pivots from `right` (this node's right sibling, with
  /// `separator` between them for internal nodes) into this node. The
  /// caller removes the separator from the parent and frees `right`.
  void merge_from_right(BTreeNode& right, std::string_view separator);

  /// Rebalance with the right sibling by moving whole entries so both end
  /// up near half the combined bytes. Returns the new separator.
  std::string borrow_balance(BTreeNode& right, std::string_view separator);

  // --- Serialization ---
  void serialize(std::vector<uint8_t>& out) const;
  static std::shared_ptr<BTreeNode> deserialize(
      std::span<const uint8_t> image);

  /// Recompute byte_size_ from scratch (used by tests to cross-check the
  /// record length fields against the encoded key/value lengths).
  uint64_t recomputed_byte_size() const;

  static uint64_t header_bytes();
  static uint64_t leaf_entry_bytes(size_t klen, size_t vlen);
  static uint64_t pivot_bytes(size_t klen);
  static uint64_t child_bytes() { return 8; }

 private:
  BTreeNode() = default;

  static uint16_t rec_klen(std::string_view rec) {
    return load_u16(reinterpret_cast<const uint8_t*>(rec.data()));
  }
  /// Encode a leaf record [u16 klen][u32 vlen][key][value] at `p`.
  static void encode_leaf_record(uint8_t* p, std::string_view key,
                                 std::string_view value);
  /// Encode a pivot record [u16 klen][key] at `p`.
  static void encode_pivot_record(uint8_t* p, std::string_view key);

  bool is_leaf_ = true;
  // Leaf: [u16 klen][u32 vlen][key][value] records. Internal: [u16
  // klen][key] pivot records (child_count-1 of them).
  node::SlottedPage page_;
  std::vector<uint64_t> children_;     // internal only
  uint64_t next_leaf_ = kInvalidNode;  // leaf only
};

}  // namespace damkit::btree
