// A disk-resident B-tree (B+-tree variant) over a simulated device.
//
// This is the "BerkeleyDB" stand-in of the paper's §7 experiments: nodes
// are the unit of IO (read and written whole), the node size is the
// central tuning knob, and a byte-budgeted buffer pool plays the role of
// RAM (the M of the models). All IO passes through the owning IoContext,
// so `io.now()` advances by exactly the simulated device time the
// workload would take.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blockdev/block_device.h"
#include "btree/btree_node.h"
#include "cache/buffer_pool.h"
#include "sim/device.h"

namespace damkit::btree {

struct BTreeConfig {
  uint64_t node_bytes = 64 * 1024;
  uint64_t cache_bytes = 32 * 1024 * 1024;
  /// Bulk-load leaf/internal fill fraction (§7 loads the data set first).
  double bulk_fill = 0.85;
  /// Underflow threshold as a fraction of node_bytes.
  double min_fill = 0.25;
  /// Device offset where this tree's extents begin.
  uint64_t base_offset = 0;
  /// Block codec for stored node images (see blockdev::NodeStore): node
  /// writes become partial-extent IOs of the compressed frame, shrinking
  /// the transfer term while layout and setup cost are unchanged.
  blockdev::CodecKind codec = blockdev::CodecKind::kIdentity;
};

struct BTreeOpStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t erases = 0;
  uint64_t scans = 0;
  uint64_t splits = 0;
  uint64_t merges = 0;
  uint64_t borrows = 0;
  uint64_t logical_bytes_written = 0;  // key+value bytes the user modified
};

class BTree {
 public:
  BTree(sim::Device& dev, sim::IoContext& io, BTreeConfig config);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Insert or overwrite a key/value pair.
  void put(std::string_view key, std::string_view value);
  /// Fallible put: non-OK means the tree was not modified, except that an
  /// error during split propagation may leave a node transiently
  /// overflowing — reads stay correct and a later put retries the split.
  Status try_put(std::string_view key, std::string_view value);

  /// Point query; returns the value if present.
  std::optional<std::string> get(std::string_view key);
  StatusOr<std::optional<std::string>> try_get(std::string_view key);

  /// Delete; returns true if the key existed.
  bool erase(std::string_view key);
  /// Fallible erase. A non-OK status after the key was already removed
  /// (rebalance IO failed) still reports the error; the tree stays valid
  /// but may be transiently under-filled.
  StatusOr<bool> try_erase(std::string_view key);

  /// Range query: up to `limit` pairs with key >= `lo`, in key order.
  std::vector<std::pair<std::string, std::string>> scan(std::string_view lo,
                                                        size_t limit);
  StatusOr<std::vector<std::pair<std::string, std::string>>> try_scan(
      std::string_view lo, size_t limit);

  /// Build the tree from `count` items in strictly ascending key order;
  /// item(i) supplies the i-th pair. The tree must be empty. Nodes are
  /// written once each, bottom-up.
  void bulk_load(uint64_t count,
                 const std::function<std::pair<std::string, std::string>(
                     uint64_t)>& item);

  /// Write back all dirty nodes (checkpoint).
  void flush();
  /// Fallible checkpoint: failed nodes stay dirty in the cache (no data
  /// loss); calling again retries exactly the still-dirty set.
  Status try_flush();

  /// Crash teardown: drop all cached (possibly dirty) nodes without
  /// writing them back, so a tree over a dead device can be destroyed
  /// without the destructor's flush aborting. Terminal — destroy after.
  void abandon() { pool_->discard_all(); }

  /// Retry policy for this tree's device IO (see blockdev::RetryPolicy).
  void set_retry_policy(const blockdev::RetryPolicy& policy) {
    store_.set_retry_policy(policy);
  }
  const blockdev::RetryCounters& retry_counters() const {
    return store_.retry_counters();
  }

  uint64_t size() const { return size_; }
  size_t height() const { return height_; }
  uint64_t nodes_in_use() const { return store_.nodes_in_use(); }
  const BTreeOpStats& op_stats() const { return op_stats_; }
  const cache::BufferPoolStats& cache_stats() const { return pool_->stats(); }
  const BTreeConfig& config() const { return config_; }
  sim::IoContext& io() { return *io_; }

  /// Structural invariant check (test support): key order within and
  /// across nodes, child counts, leaf chain consistency, size accounting.
  void check_invariants();

  /// Export op counters, cache (`<prefix>cache.`), node-store IO mix
  /// (`<prefix>store.`), and derived gauges (write amplification vs the
  /// device bytes this tree's store moved) under `prefix` (e.g. "btree.").
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const;

 private:
  using NodeRef = std::shared_ptr<BTreeNode>;

  StatusOr<NodeRef> try_fetch(uint64_t id);
  NodeRef fetch(uint64_t id);  // CHECK-on-error wrapper (invariant checks)
  void install_new(uint64_t id, NodeRef node);
  void mark_dirty(uint64_t id) { pool_->mark_dirty(id); }

  struct PathEntry {
    uint64_t id;
    NodeRef node;
    size_t child_idx;  // which child we descended into
  };
  /// Descend to the leaf for `key`, recording the internal path.
  Status descend(std::string_view key, uint64_t* leaf_id,
                 std::vector<PathEntry>* path, NodeRef* leaf);

  Status split_upward(std::vector<PathEntry>& path, uint64_t node_id,
                      NodeRef node);
  Status rebalance_upward(std::vector<PathEntry>& path, uint64_t node_id,
                          NodeRef node);

  bool overflowing(const BTreeNode& n) const {
    return n.byte_size() > config_.node_bytes;
  }
  bool underflowing(const BTreeNode& n) const {
    return static_cast<double>(n.byte_size()) <
           config_.min_fill * static_cast<double>(config_.node_bytes);
  }

  void check_subtree(uint64_t id, const std::string* lo, const std::string* hi,
                     size_t depth, size_t leaf_depth, uint64_t* entries,
                     uint64_t* leftmost_leaf);

  sim::Device* dev_;
  sim::IoContext* io_;
  BTreeConfig config_;
  blockdev::NodeStore store_;
  std::unique_ptr<cache::BufferPool> pool_;

  uint64_t root_ = kInvalidNode;
  size_t height_ = 0;  // number of levels (1 = just a leaf root)
  uint64_t size_ = 0;  // live key count
  BTreeOpStats op_stats_;
  std::vector<uint8_t> io_buf_;  // scratch for node IO
};

}  // namespace damkit::btree
