#include "stats/metrics.h"

#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <limits>

#include "stats/json.h"

namespace damkit::stats {

#if DAMKIT_STATS_ENABLED
namespace {
std::atomic<bool> g_collecting{true};
}  // namespace

bool collecting() { return g_collecting.load(std::memory_order_relaxed); }
void set_collecting(bool on) {
  g_collecting.store(on, std::memory_order_relaxed);
}
#endif

void MetricsRegistry::add(std::string_view name, uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::set(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

Histogram& MetricsRegistry::histo(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

uint64_t MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

const Histogram* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

bool MetricsRegistry::has_counter(std::string_view name) const {
  return counters_.find(name) != counters_.end();
}

bool MetricsRegistry::has_gauge(std::string_view name) const {
  return gauges_.find(name) != gauges_.end();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, v] : other.counters_) add(name, v);
  for (const auto& [name, v] : other.gauges_) {
    const auto it = gauges_.find(name);
    if (it == gauges_.end()) {
      gauges_.emplace(name, v);
    } else if (v > it->second) {
      it->second = v;
    }
  }
  for (const auto& [name, h] : other.histograms_) histo(name).merge(h);
}

void MetricsRegistry::clear() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void MetricsRegistry::for_each_counter(
    const std::function<void(const std::string&, uint64_t)>& fn) const {
  for (const auto& [name, v] : counters_) fn(name, v);
}

void MetricsRegistry::for_each_gauge(
    const std::function<void(const std::string&, double)>& fn) const {
  for (const auto& [name, v] : gauges_) fn(name, v);
}

void MetricsRegistry::for_each_histogram(
    const std::function<void(const std::string&, const Histogram&)>& fn)
    const {
  for (const auto& [name, h] : histograms_) fn(name, h);
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\n  \"counters\": {";
  char buf[32];
  bool first = true;
  for (const auto& [name, v] : counters_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_string(out, name);
    std::snprintf(buf, sizeof(buf), ": %" PRIu64, v);
    out += buf;
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_string(out, name);
    out += ": ";
    json_append_double(out, v);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    json_append_string(out, name);
    std::snprintf(buf, sizeof(buf), ": {\"count\": %" PRIu64, h.count());
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"sum\": %" PRIu64, h.sum());
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"min\": %" PRIu64, h.min());
    out += buf;
    std::snprintf(buf, sizeof(buf), ", \"max\": %" PRIu64, h.max());
    out += buf;
    out += ", \"buckets\": [";
    bool first_bucket = true;
    h.for_each_bucket([&](int index, uint64_t /*floor*/, uint64_t count) {
      if (!first_bucket) out += ", ";
      first_bucket = false;
      std::snprintf(buf, sizeof(buf), "[%d, %" PRIu64 "]", index, count);
      out += buf;
    });
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

StatusOr<MetricsRegistry> MetricsRegistry::from_json(std::string_view json) {
  StatusOr<JsonValue> parsed = parse_json(json);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = *parsed;
  if (!root.is_object()) {
    return Status::invalid_argument("metrics json: root is not an object");
  }

  MetricsRegistry reg;
  if (const JsonValue* counters = root.find("counters")) {
    for (const auto& [name, v] : counters->object) {
      if (!v.is_number() || !v.is_integer) {
        return Status::invalid_argument("metrics json: counter '" + name +
                                        "' is not a non-negative integer");
      }
      reg.add(name, v.uint_val);
    }
  }
  if (const JsonValue* gauges = root.find("gauges")) {
    for (const auto& [name, v] : gauges->object) {
      // The writer serializes non-finite gauges as null (JSON has no NaN
      // literal); read them back as NaN so the round-trip is total.
      if (v.kind == JsonValue::Kind::kNull) {
        reg.set(name, std::numeric_limits<double>::quiet_NaN());
        continue;
      }
      if (!v.is_number()) {
        return Status::invalid_argument("metrics json: gauge '" + name +
                                        "' is not a number");
      }
      reg.set(name, v.num);
    }
  }
  if (const JsonValue* histos = root.find("histograms")) {
    for (const auto& [name, v] : histos->object) {
      const JsonValue* count = v.find("count");
      const JsonValue* sum = v.find("sum");
      const JsonValue* min = v.find("min");
      const JsonValue* max = v.find("max");
      const JsonValue* buckets = v.find("buckets");
      if (count == nullptr || !count->is_integer || sum == nullptr ||
          !sum->is_integer || min == nullptr || !min->is_integer ||
          max == nullptr || !max->is_integer || buckets == nullptr ||
          !buckets->is_array()) {
        return Status::invalid_argument("metrics json: histogram '" + name +
                                        "' is malformed");
      }
      std::vector<std::pair<int, uint64_t>> pairs;
      pairs.reserve(buckets->array.size());
      uint64_t total = 0;
      for (const JsonValue& b : buckets->array) {
        if (!b.is_array() || b.array.size() != 2 || !b.array[0].is_integer ||
            !b.array[1].is_integer ||
            b.array[0].uint_val >=
                static_cast<uint64_t>(Histogram::bucket_limit())) {
          return Status::invalid_argument("metrics json: histogram '" + name +
                                          "' has a malformed bucket");
        }
        pairs.emplace_back(static_cast<int>(b.array[0].uint_val),
                           b.array[1].uint_val);
        total += b.array[1].uint_val;
      }
      if (total != count->uint_val) {
        return Status::invalid_argument("metrics json: histogram '" + name +
                                        "' bucket counts disagree with count");
      }
      reg.histo(name) = Histogram::restore(count->uint_val, sum->uint_val,
                                           min->uint_val, max->uint_val, pairs);
    }
  }
  return reg;
}

void export_histogram_summary(MetricsRegistry& reg, std::string_view name,
                              const Histogram& h) {
  const std::string base(name);
  reg.histo(base).merge(h);
  reg.add(base + ".count", h.count());
  reg.set(base + ".mean", h.mean());
  reg.set(base + ".p50", static_cast<double>(h.percentile(50.0)));
  reg.set(base + ".p99", static_cast<double>(h.percentile(99.0)));
  reg.set(base + ".p999", static_cast<double>(h.percentile(99.9)));
}

}  // namespace damkit::stats
