#include "stats/json.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace damkit::stats {

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void json_append_double(std::string& out, double v) {
  // JSON has no literal for NaN or ±Inf ("%g" would print "nan"/"inf",
  // which no conforming parser accepts); serialize non-finite as null.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  // %.17g round-trips any double; fall back from shorter forms when they
  // reparse exactly, keeping the common case ("0.25") readable.
  for (const int prec : {6, 12, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += buf;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> run() {
    JsonValue v;
    DAMKIT_RETURN_IF_ERROR(value(&v));
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters");
    return v;
  }

 private:
  Status fail(const std::string& what) const {
    return Status::invalid_argument("json parse error at byte " +
                                    std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status value(JsonValue* out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') return string_value(out);
    if (c == 't' || c == 'f') return bool_value(out);
    if (c == 'n') return null_value(out);
    return number(out);
  }

  Status object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    consume('{');
    if (consume('}')) return Status();
    for (;;) {
      JsonValue key;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail("expected object key");
      }
      DAMKIT_RETURN_IF_ERROR(string_value(&key));
      if (!consume(':')) return fail("expected ':'");
      JsonValue val;
      DAMKIT_RETURN_IF_ERROR(value(&val));
      out->object.emplace_back(std::move(key.str), std::move(val));
      if (consume(',')) continue;
      if (consume('}')) return Status();
      return fail("expected ',' or '}'");
    }
  }

  Status array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    consume('[');
    if (consume(']')) return Status();
    for (;;) {
      JsonValue val;
      DAMKIT_RETURN_IF_ERROR(value(&val));
      out->array.push_back(std::move(val));
      if (consume(',')) continue;
      if (consume(']')) return Status();
      return fail("expected ',' or ']'");
    }
  }

  Status string_value(JsonValue* out) {
    out->kind = JsonValue::Kind::kString;
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status();
      if (c != '\\') {
        out->str += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->str += '"';
          break;
        case '\\':
          out->str += '\\';
          break;
        case '/':
          out->str += '/';
          break;
        case 'n':
          out->str += '\n';
          break;
        case 't':
          out->str += '\t';
          break;
        case 'r':
          out->str += '\r';
          break;
        case 'b':
          out->str += '\b';
          break;
        case 'f':
          out->str += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long cp = std::strtol(hex.c_str(), nullptr, 16);
          // ASCII only — the exporter never emits anything else.
          if (cp < 0 || cp > 0x7f) return fail("non-ASCII \\u escape");
          out->str += static_cast<char>(cp);
          break;
        }
        default:
          return fail("bad escape");
      }
    }
    return fail("unterminated string");
  }

  Status bool_value(JsonValue* out) {
    out->kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      out->bool_val = true;
      pos_ += 4;
      return Status();
    }
    if (text_.substr(pos_, 5) == "false") {
      out->bool_val = false;
      pos_ += 5;
      return Status();
    }
    return fail("bad literal");
  }

  Status null_value(JsonValue* out) {
    out->kind = JsonValue::Kind::kNull;
    if (text_.substr(pos_, 4) == "null") {
      pos_ += 4;
      return Status();
    }
    return fail("bad literal");
  }

  Status number(JsonValue* out) {
    out->kind = JsonValue::Kind::kNumber;
    const size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    const std::string lit(text_.substr(start, pos_ - start));
    errno = 0;
    out->num = std::strtod(lit.c_str(), nullptr);
    if (errno == ERANGE && !std::isfinite(out->num)) {
      return fail("number out of range");
    }
    if (integral && lit[0] != '-') {
      errno = 0;
      out->uint_val = std::strtoull(lit.c_str(), nullptr, 10);
      out->is_integer = errno != ERANGE;
    }
    return Status();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

StatusOr<JsonValue> parse_json(std::string_view text) {
  return Parser(text).run();
}

}  // namespace damkit::stats
