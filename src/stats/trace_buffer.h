// Structured event trace: a fixed-capacity ring buffer of typed events
// with a JSONL dump, the "why was that IO issued" companion to the
// numeric MetricsRegistry.
//
// Producers (Device, BufferPool, the trees) hold an optional TraceBuffer*
// and emit through it only when non-null and stats::collecting() — a
// single predictable branch per event on the hot path, and nothing at all
// when DAMKIT_STATS_ENABLED=0. The buffer is single-owner and not
// thread-safe by design: in parallel sweeps each worker wires its own
// buffer to its own device/tree, matching the one-registry-per-worker
// metrics discipline.
//
// Event fields are deliberately flat (three generic u64 payload slots)
// so emission is a struct copy; the category/name pair gives the schema:
//   io:       name=read|write|batch, v0=offset (batch: width), v1=length,
//             v2=latency_ns
//   cache:    name=evict|writeback,  v0=id, v1=bytes, v2=dirty(0/1)
//   betree:   name=flush,            v0=depth, v1=messages, v2=0
//   lsm:      name=memtable_flush|compaction, v0=level, v1=bytes_in,
//             v2=bytes_out
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace damkit::stats {

struct Event {
  uint64_t t = 0;  // simulated ns when known, else 0
  const char* category = "";
  const char* name = "";
  uint64_t v0 = 0;
  uint64_t v1 = 0;
  uint64_t v2 = 0;
};

class TraceBuffer {
 public:
  explicit TraceBuffer(size_t capacity = 1 << 16);

  /// Record one event (overwrites the oldest once full). `category` and
  /// `name` must be string literals or otherwise outlive the buffer.
  void emit(const Event& e);

  size_t size() const { return size_; }
  size_t capacity() const { return ring_.capacity(); }
  uint64_t total_emitted() const { return seq_; }
  bool overflowed() const { return seq_ > size_; }

  /// Events oldest-first (copies; the ring stays intact).
  std::vector<Event> events() const;

  /// One JSON object per line, oldest-first:
  ///   {"seq":N,"t":NS,"cat":"io","name":"read","v0":...,"v1":...,"v2":...}
  std::string to_jsonl() const;
  /// Write to_jsonl() to `path`; false (with errno intact) on IO failure.
  bool dump_jsonl(const std::string& path) const;

  void clear();

 private:
  std::vector<Event> ring_;  // reserved to capacity up front
  size_t head_ = 0;          // next write slot once the ring is full
  size_t size_ = 0;
  uint64_t seq_ = 0;  // events ever emitted (first dropped = seq_ - size_)
};

}  // namespace damkit::stats
