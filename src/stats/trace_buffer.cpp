#include "stats/trace_buffer.h"

#include <cinttypes>
#include <cstdio>

#include "stats/json.h"
#include "util/status.h"

namespace damkit::stats {

TraceBuffer::TraceBuffer(size_t capacity) {
  DAMKIT_CHECK(capacity > 0);
  ring_.reserve(capacity);
}

void TraceBuffer::emit(const Event& e) {
  ++seq_;
  if (ring_.size() < ring_.capacity()) {
    ring_.push_back(e);
    ++size_;
    return;
  }
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
}

std::vector<Event> TraceBuffer::events() const {
  std::vector<Event> out;
  out.reserve(size_);
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % size_]);
  }
  return out;
}

std::string TraceBuffer::to_jsonl() const {
  std::string out;
  char buf[64];
  const uint64_t first_seq = seq_ - size_;
  for (size_t i = 0; i < size_; ++i) {
    const Event& e = ring_[(head_ + i) % size_];
    std::snprintf(buf, sizeof(buf), "{\"seq\": %" PRIu64 ", \"t\": %" PRIu64,
                  first_seq + i, e.t);
    out += buf;
    out += ", \"cat\": ";
    json_append_string(out, e.category);
    out += ", \"name\": ";
    json_append_string(out, e.name);
    std::snprintf(buf, sizeof(buf),
                  ", \"v0\": %" PRIu64 ", \"v1\": %" PRIu64
                  ", \"v2\": %" PRIu64 "}\n",
                  e.v0, e.v1, e.v2);
    out += buf;
  }
  return out;
}

bool TraceBuffer::dump_jsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = to_jsonl();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

void TraceBuffer::clear() {
  ring_.clear();
  head_ = 0;
  size_ = 0;
  seq_ = 0;
}

}  // namespace damkit::stats
