// Minimal JSON support for the metrics exporter: a stream-free writer
// with stable formatting (sorted keys come from the caller; doubles
// render with round-trip precision) and a small recursive-descent parser
// covering the subset the exporter emits (objects, arrays, strings,
// numbers, booleans, null). No external dependencies by design — the CI
// bench-smoke job must run on a bare toolchain image.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace damkit::stats {

/// Append a JSON string literal (quotes + escapes) to `out`.
void json_append_string(std::string& out, std::string_view s);
/// Append a double with enough digits to round-trip bit-exactly; integral
/// values render without an exponent where possible. Non-finite values
/// (NaN, ±Inf) have no JSON literal and are serialized as `null`.
void json_append_double(std::string& out, double v);

/// Parsed JSON value. Numbers keep both views: `num` (double) always, and
/// `is_integer`/`uint_val` when the literal was a non-negative integer that
/// fits in 64 bits (counters and histogram buckets need exactness beyond
/// 2^53).
class JsonValue {
 public:
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_val = false;
  double num = 0.0;
  bool is_integer = false;
  uint64_t uint_val = 0;
  std::string str;
  std::vector<JsonValue> array;
  // Parse-order preserving; the exporter writes sorted keys anyway.
  std::vector<std::pair<std::string, JsonValue>> object;

  /// nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error).
StatusOr<JsonValue> parse_json(std::string_view text);

}  // namespace damkit::stats
