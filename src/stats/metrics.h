// Metrics core: a registry of named counters, gauges, and log-scale
// histograms that every damkit layer exports into.
//
// Design rules (kept deliberately simple so instrumentation stays cheap):
//   - Hot paths keep their own plain struct counters (DeviceStats,
//     BufferPoolStats, ...) exactly as before — a counter bump is one add.
//   - Histogram recording and structured-event emission are gated behind
//     stats::collecting(), a relaxed atomic flag, and can be compiled out
//     entirely with -DDAMKIT_STATS_ENABLED=0 (the CMake DAMKIT_STATS
//     option). With the switch off the macros below expand to nothing, so
//     the disabled build carries zero instrumentation overhead.
//   - A MetricsRegistry is a *snapshot* container: subsystems export into
//     it on demand (export_metrics methods), it is never written from hot
//     paths. Names are sorted (std::map), so iteration, merge, and the
//     JSON rendering are deterministic.
//
// Merge semantics (parallel_sweep: one registry per worker, merged in
// point order): counters add, histograms merge bucket-wise, gauges keep
// the maximum. Prefer counters for anything that must aggregate exactly;
// gauges are for snapshots and high-water marks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "util/histogram.h"
#include "util/status.h"

#ifndef DAMKIT_STATS_ENABLED
#define DAMKIT_STATS_ENABLED 1
#endif

namespace damkit::stats {

#if DAMKIT_STATS_ENABLED
/// Runtime switch for histogram recording and event tracing. Defaults to
/// on; flip off to strip the (already small) per-IO recording cost.
bool collecting();
void set_collecting(bool on);
/// Statement guard: DAMKIT_STATS_ONLY(x) compiles x only when stats are
/// built in; pair with stats::collecting() for the runtime gate.
#define DAMKIT_STATS_ONLY(x) x
#else
constexpr bool collecting() { return false; }
inline void set_collecting(bool) {}
#define DAMKIT_STATS_ONLY(x)
#endif

/// Snapshot registry of named metrics. See file comment for semantics.
class MetricsRegistry {
 public:
  /// Add `delta` to counter `name` (created at zero on first use).
  void add(std::string_view name, uint64_t delta);
  /// Set gauge `name`; merge() keeps the max of the two sides.
  void set(std::string_view name, double value);
  /// Mutable histogram `name` (created empty on first use).
  Histogram& histo(std::string_view name);

  uint64_t counter(std::string_view name) const;
  double gauge(std::string_view name) const;
  /// nullptr when absent.
  const Histogram* histogram(std::string_view name) const;
  bool has_counter(std::string_view name) const;
  bool has_gauge(std::string_view name) const;

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }
  bool empty() const { return size() == 0; }

  /// Counters add, gauges max, histograms merge. Deterministic for any
  /// merge order of commutative inputs; parallel_sweep merges in point
  /// order so even gauge maxima are order-independent.
  void merge(const MetricsRegistry& other);
  void clear();

  /// Sorted iteration (names ascend within each kind).
  void for_each_counter(
      const std::function<void(const std::string&, uint64_t)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, double)>& fn) const;
  void for_each_histogram(
      const std::function<void(const std::string&, const Histogram&)>& fn)
      const;

  /// Stable JSON snapshot: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{count,sum,min,max,buckets:[[index,count],...]}}}.
  /// Gauges render with enough digits to round-trip exactly.
  std::string to_json() const;
  /// Inverse of to_json (exact for counters/histograms, bit-exact for
  /// gauges). Returns an error on malformed input.
  static StatusOr<MetricsRegistry> from_json(std::string_view json);

 private:
  std::map<std::string, uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Store a copy of `h` as histogram `name` and export the standard tail
/// summary next to it as gauges: "<name>.p50", "<name>.p99", "<name>.p999",
/// "<name>.mean", and counter "<name>.count". The serving layer and benches
/// publish latency distributions through this so reports and gates read
/// percentiles without re-deriving them from buckets.
void export_histogram_summary(MetricsRegistry& reg, std::string_view name,
                              const Histogram& h);

}  // namespace damkit::stats
