#include "cache/buffer_pool.h"

#include <algorithm>

namespace damkit::cache {

BufferPool::BufferPool(uint64_t capacity_bytes, WritebackFn writeback)
    : capacity_bytes_(capacity_bytes), writeback_(std::move(writeback)) {
  DAMKIT_CHECK(capacity_bytes_ > 0);
  DAMKIT_CHECK(writeback_ != nullptr);
}

BufferPool::~BufferPool() {
  // Owners are expected to flush before teardown; losing dirty state here
  // would silently skip simulated write IO, so surface it loudly.
  for (const Entry& e : lru_) {
    DAMKIT_CHECK_MSG(!e.dirty,
                     "BufferPool destroyed with dirty entry id=" << e.id
                         << "; call flush_all() first");
  }
}

std::shared_ptr<void> BufferPool::get_erased(uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to MRU
  return it->second->object;
}

void BufferPool::put(uint64_t id, std::shared_ptr<void> object,
                     uint64_t charged_bytes, bool dirty) {
  DAMKIT_CHECK(object != nullptr);
  DAMKIT_CHECK_MSG(index_.find(id) == index_.end(),
                   "put of already-resident id " << id);
  make_room(charged_bytes);
  // If we are still over budget, make_room evicted everything unpinned and
  // the residue is all pinned. The incoming entry may push past M
  // transiently (a descent pins the parent while loading a child), but a
  // *resident* pinned set that alone exceeds M is a caller leak that would
  // silently invalidate every experiment run against this pool — abort.
  // Entries kept resident only because their writeback failed are not
  // caller leaks and are excluded from the abort condition.
  if (charged_bytes_ + charged_bytes > capacity_bytes_) {
    DAMKIT_CHECK_MSG(
        charged_bytes_ - writeback_deferred_bytes_ <= capacity_bytes_,
        "BufferPool pinned set exceeds capacity: pinned="
            << charged_bytes_ << " > capacity=" << capacity_bytes_
            << " (callers hold too many references; incoming id=" << id
            << " bytes=" << charged_bytes << ")");
  }
  lru_.push_front(Entry{id, std::move(object), charged_bytes, dirty});
  index_[id] = lru_.begin();
  charged_bytes_ += charged_bytes;
  if (charged_bytes_ > stats_.charged_bytes_hwm) {
    stats_.charged_bytes_hwm = charged_bytes_;
  }
  ++stats_.inserted;
}

void BufferPool::mark_dirty(uint64_t id) {
  const auto it = index_.find(id);
  DAMKIT_CHECK_MSG(it != index_.end(), "mark_dirty of absent id " << id);
  it->second->dirty = true;
}

bool BufferPool::is_dirty(uint64_t id) const {
  const auto it = index_.find(id);
  return it != index_.end() && it->second->dirty;
}

void BufferPool::erase(uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return;
  Entry& e = *it->second;
  charged_bytes_ -= e.bytes;
  lru_.erase(it->second);
  index_.erase(it);
}

Status BufferPool::writeback(Entry& e) {
  if (!e.dirty) return Status();
  const Status s = writeback_(e.id, e.object.get());
  if (!s.ok()) {
    ++stats_.writeback_failures;
    return s;
  }
  e.dirty = false;
  ++stats_.dirty_writebacks;
  DAMKIT_STATS_ONLY({
    if (events_ != nullptr && stats::collecting()) {
      events_->emit({0, "cache", "writeback", e.id, e.bytes, 1});
    }
  });
  return Status();
}

Status BufferPool::flush_all() {
  if (batch_writeback_ != nullptr) {
    // Gather every dirty entry (MRU→LRU, a stable order) and hand them to
    // the owner as one batch; the owner issues a single vectored write and
    // reports which entries landed.
    std::vector<std::pair<uint64_t, void*>> dirty;
    std::vector<LruList::iterator> dirty_its;
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->dirty) {
        dirty.emplace_back(it->id, it->object.get());
        dirty_its.push_back(it);
      }
    }
    if (dirty.empty()) return Status();
    std::vector<bool> written(dirty.size(), false);
    const Status s = batch_writeback_(dirty, &written);
    for (size_t i = 0; i < dirty.size(); ++i) {
      if (written[i]) {
        dirty_its[i]->dirty = false;
        ++stats_.dirty_writebacks;
      } else {
        ++stats_.writeback_failures;
      }
    }
    DAMKIT_CHECK_MSG(s.ok() || !std::all_of(written.begin(), written.end(),
                                            [](bool w) { return w; }),
                     "batch writeback reported failure but marked every "
                     "entry written");
    return s;
  }
  // Per-entry path: keep going after a failure so one bad extent does not
  // block the rest of the checkpoint; report the first failure.
  Status first_failure;
  for (Entry& e : lru_) {
    const Status s = writeback(e);
    if (!s.ok() && first_failure.ok()) first_failure = s;
  }
  return first_failure;
}

uint64_t BufferPool::pinned_bytes() const {
  uint64_t total = 0;
  for (const Entry& e : lru_) {
    if (pinned(e)) total += e.bytes;
  }
  return total;
}

Status BufferPool::clear() {
  DAMKIT_RETURN_IF_ERROR(flush_all());
  for (const Entry& e : lru_) {
    DAMKIT_CHECK_MSG(!pinned(e), "clear() with pinned entry id=" << e.id);
  }
  lru_.clear();
  index_.clear();
  charged_bytes_ = 0;
  writeback_deferred_bytes_ = 0;
  return Status();
}

void BufferPool::discard_all() {
  for (const Entry& e : lru_) {
    DAMKIT_CHECK_MSG(!pinned(e), "discard_all() with pinned entry id=" << e.id);
  }
  lru_.clear();
  index_.clear();
  charged_bytes_ = 0;
  writeback_deferred_bytes_ = 0;
}

void BufferPool::make_room(uint64_t incoming_bytes) {
  writeback_deferred_bytes_ = 0;
  if (charged_bytes_ + incoming_bytes <= capacity_bytes_) return;
  // Walk from the cold end, skipping pinned entries. If everything is
  // pinned the pool runs over budget — by design it never deadlocks; the
  // trees pin only O(height) nodes at a time.
  auto it = lru_.end();
  uint64_t pinned_seen = 0;  // opportunistic pinned high-water sample
  while (charged_bytes_ + incoming_bytes > capacity_bytes_ &&
         it != lru_.begin()) {
    --it;
    if (pinned(*it)) {
      pinned_seen += it->bytes;
      continue;
    }
    if (!writeback(*it).ok()) {
      // The pool copy is now the only good one: keep the entry dirty and
      // resident, try the next victim. A later eviction or flush retries.
      writeback_deferred_bytes_ += it->bytes;
      continue;
    }
    charged_bytes_ -= it->bytes;
    index_.erase(it->id);
    DAMKIT_STATS_ONLY({
      if (events_ != nullptr && stats::collecting()) {
        events_->emit({0, "cache", "evict", it->id, it->bytes, 0});
      }
    });
    it = lru_.erase(it);
    ++stats_.evictions;
  }
  if (pinned_seen > stats_.pinned_bytes_hwm) {
    stats_.pinned_bytes_hwm = pinned_seen;
  }
}

void BufferPool::export_metrics(stats::MetricsRegistry& reg,
                                std::string_view prefix) const {
  const BufferPoolStats& st = stats();  // refreshes the pinned snapshot
  const std::string p(prefix);
  reg.add(p + "hits", st.hits);
  reg.add(p + "misses", st.misses);
  reg.add(p + "evictions", st.evictions);
  reg.add(p + "dirty_writebacks", st.dirty_writebacks);
  reg.add(p + "writeback_failures", st.writeback_failures);
  reg.add(p + "inserted", st.inserted);
  reg.set(p + "hit_rate", st.hit_rate());
  reg.set(p + "capacity_bytes", static_cast<double>(capacity_bytes_));
  reg.set(p + "charged_bytes", static_cast<double>(charged_bytes_));
  reg.set(p + "charged_bytes_hwm", static_cast<double>(st.charged_bytes_hwm));
  reg.set(p + "pinned_bytes", static_cast<double>(st.pinned_bytes));
  reg.set(p + "pinned_bytes_hwm", static_cast<double>(st.pinned_bytes_hwm));
}

}  // namespace damkit::cache
