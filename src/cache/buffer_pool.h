// BufferPool: a byte-budgeted object cache for deserialized tree nodes —
// the "M" of the DAM/affine/PDAM models.
//
// The pool is deliberately an *object* cache (like TokuDB's cachetable)
// rather than a page cache: trees keep deserialized nodes in it, and the
// pool tracks a budget of charged bytes, evicting cold, unpinned entries
// LRU-first. Eviction of a dirty entry invokes the owner's writeback
// callback, which serializes the node and performs (and charges!) the
// device write. Pinning is implicit: an entry whose handle is still held
// by a caller (shared_ptr use_count > 1) is never evicted.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "stats/metrics.h"
#include "stats/trace_buffer.h"
#include "util/status.h"

namespace damkit::cache {

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t dirty_writebacks = 0;
  uint64_t writeback_failures = 0;  // failed attempts; entry stays dirty
  uint64_t inserted = 0;
  uint64_t pinned_bytes = 0;  // snapshot, refreshed by stats()
  uint64_t charged_bytes_hwm = 0;  // high-water of charged bytes
  /// High-water of pinned bytes. Pins are implicit shared_ptr refs, so
  /// this is sampled where the pool already walks entries (eviction scans,
  /// stats() calls) rather than recomputed per operation — treat it as a
  /// lower bound on the true peak.
  uint64_t pinned_bytes_hwm = 0;

  double hit_rate() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class BufferPool {
 public:
  /// Writeback(id, object): owner must serialize and write the object to
  /// its backing store, charging the IO to its IoContext. A non-OK return
  /// means the object did NOT durably land; the pool keeps the entry dirty
  /// and resident, so no data is lost — the write is retried on the next
  /// eviction attempt or flush_all().
  using WritebackFn = std::function<Status(uint64_t id, void* object)>;

  /// Vectored writeback for checkpoints: the owner serializes every listed
  /// object and writes them as ONE device batch (NodeStore::write_nodes),
  /// so a flush cascade pays the slowest write instead of the sum. The
  /// owner must set (*written)[i] for every entry that durably landed —
  /// the pool clears dirty bits only for those — and return the first
  /// failure (or OK). `*written` arrives sized to `dirty.size()`, all
  /// false.
  using BatchWritebackFn =
      std::function<Status(std::span<const std::pair<uint64_t, void*>> dirty,
                           std::vector<bool>* written)>;

  BufferPool(uint64_t capacity_bytes, WritebackFn writeback);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Look up `id`; returns the cached object (moved to MRU) or nullptr.
  /// The typed wrapper below is the usual entry point.
  std::shared_ptr<void> get_erased(uint64_t id);

  template <typename T>
  std::shared_ptr<T> get(uint64_t id) {
    return std::static_pointer_cast<T>(get_erased(id));
  }

  /// Insert an object charged at `charged_bytes`. The id must not already
  /// be present. May trigger evictions (and dirty writebacks) to fit. The
  /// incoming entry may push past capacity transiently while callers pin a
  /// descent path, but a resident pinned set that alone exceeds capacity
  /// aborts — it means callers are leaking references and the M budget no
  /// longer bounds memory.
  void put(uint64_t id, std::shared_ptr<void> object, uint64_t charged_bytes,
           bool dirty);

  /// Mark a resident entry dirty (id must be present).
  void mark_dirty(uint64_t id);
  bool is_dirty(uint64_t id) const;

  /// Drop an entry without writeback (caller deleted the node). No-op if
  /// absent. The entry must not be pinned by anyone but the caller.
  void erase(uint64_t id);

  /// Optional batched checkpoint path; when set, flush_all() hands all
  /// dirty entries to `fn` in one call instead of one writeback per entry.
  /// Single-entry eviction writebacks still use the per-entry callback.
  void set_batch_writeback(BatchWritebackFn fn) {
    batch_writeback_ = std::move(fn);
  }

  /// Write back every dirty entry (checkpoint); entries stay resident.
  /// On failure the entries whose writeback failed stay dirty (their data
  /// is intact in the pool) and the first failure is returned — calling
  /// again retries exactly the still-dirty set.
  Status flush_all();

  /// Write back and drop everything evictable; CHECKs nothing is pinned.
  /// On writeback failure nothing is dropped and the failure is returned.
  Status clear();

  /// Drop every entry WITHOUT writeback — crash teardown. Dirty state is
  /// lost by design (the caller is abandoning a dead device, and the
  /// destructor's dirty-entry abort must not fire on that path); CHECKs
  /// nothing is pinned. The pool is empty afterwards.
  void discard_all();

  bool contains(uint64_t id) const { return index_.count(id) > 0; }
  uint64_t charged_bytes() const { return charged_bytes_; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  size_t entries() const { return index_.size(); }

  /// Bytes charged by entries currently pinned (handle held by a caller).
  /// Pins are implicit shared_ptr refs, so this is computed on demand.
  uint64_t pinned_bytes() const;

  const BufferPoolStats& stats() const {
    stats_.pinned_bytes = pinned_bytes();
    if (stats_.pinned_bytes > stats_.pinned_bytes_hwm) {
      stats_.pinned_bytes_hwm = stats_.pinned_bytes;
    }
    return stats_;
  }
  void clear_stats() { stats_ = BufferPoolStats{}; }

  /// Structured-event sink for evictions/writebacks (nullptr disables).
  void set_event_trace(stats::TraceBuffer* events) { events_ = events; }

  /// Export hit/miss/eviction counters and byte-budget gauges under
  /// `prefix` (e.g. "btree.cache."). Refreshes the pinned snapshot.
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const;

 private:
  struct Entry {
    uint64_t id = 0;
    std::shared_ptr<void> object;
    uint64_t bytes = 0;
    bool dirty = false;
  };
  using LruList = std::list<Entry>;

  bool pinned(const Entry& e) const { return e.object.use_count() > 1; }
  /// Write back `e` if dirty. On failure the entry stays dirty (and must
  /// stay resident — its pool copy is the only authoritative one).
  Status writeback(Entry& e);
  /// Evict cold unpinned entries until the budget fits `incoming_bytes`.
  /// Entries whose writeback fails are skipped (kept dirty + resident) and
  /// accounted in writeback_deferred_bytes_.
  void make_room(uint64_t incoming_bytes);

  uint64_t capacity_bytes_;
  WritebackFn writeback_;
  BatchWritebackFn batch_writeback_;
  LruList lru_;  // front = MRU, back = LRU victim candidate
  std::unordered_map<uint64_t, LruList::iterator> index_;
  uint64_t charged_bytes_ = 0;
  // Bytes the latest make_room() could not evict because their writeback
  // failed: unevictable through no fault of the caller, so put()'s
  // pinned-leak abort excludes them from the resident pinned set.
  uint64_t writeback_deferred_bytes_ = 0;
  mutable BufferPoolStats stats_;
  stats::TraceBuffer* events_ = nullptr;
};

}  // namespace damkit::cache
