// The Disk-Access Machine (DAM) model of Aggarwal–Vitter: data moves in
// blocks of size B at unit cost per block; performance is the block count.
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace damkit::model {

class DamModel {
 public:
  explicit DamModel(uint64_t block_bytes) : block_bytes_(block_bytes) {
    DAMKIT_CHECK(block_bytes_ > 0);
  }

  uint64_t block_bytes() const { return block_bytes_; }

  /// Number of block transfers to move `bytes` contiguous bytes.
  uint64_t ios_for(uint64_t bytes) const {
    return damkit::ceil_div(bytes, block_bytes_);
  }

  /// DAM cost of an algorithm that performs `ios` block transfers: the DAM
  /// counts IOs and nothing else.
  double cost(uint64_t ios) const { return static_cast<double>(ios); }

  /// Predicted wall-clock seconds for `ios` transfers on hardware with
  /// setup cost `s` seconds and bandwidth cost `t` seconds/byte, under the
  /// DAM assumption that every IO moves exactly one block.
  double predicted_seconds(uint64_t ios, double s, double t) const {
    return static_cast<double>(ios) *
           (s + t * static_cast<double>(block_bytes_));
  }

 private:
  uint64_t block_bytes_;
};

}  // namespace damkit::model
