// The affine IO model (§2.3): an IO of x bytes costs 1 + αx in normalized
// units (the setup cost is 1), where α = t/s for hardware with setup cost
// s seconds and transfer cost t seconds/byte. Most predictive of HDDs.
#pragma once

#include <cstdint>

#include "util/status.h"

namespace damkit::model {

class AffineModel {
 public:
  /// Construct from the normalized bandwidth cost α (0 < α ≤ 1 expected
  /// for storage; the model itself only needs α > 0).
  explicit AffineModel(double alpha) : alpha_(alpha), setup_s_(1.0) {
    DAMKIT_CHECK(alpha > 0.0);
  }

  /// Construct from physical parameters: setup `s` seconds and transfer
  /// `t` seconds/byte; α = t/s.
  AffineModel(double setup_s, double t_s_per_byte)
      : alpha_(t_s_per_byte / setup_s), setup_s_(setup_s) {
    DAMKIT_CHECK(setup_s > 0.0 && t_s_per_byte > 0.0);
  }

  double alpha() const { return alpha_; }
  double setup_seconds() const { return setup_s_; }
  double transfer_seconds_per_byte() const { return alpha_ * setup_s_; }

  /// Normalized cost of one IO of `bytes` bytes: 1 + α·bytes.
  double io_cost(double bytes) const { return 1.0 + alpha_ * bytes; }

  /// Physical seconds for one IO of `bytes` bytes.
  double io_seconds(double bytes) const { return setup_s_ * io_cost(bytes); }

  /// The half-bandwidth point: the IO size where setup and transfer cost
  /// are equal (cost 2). Lemma 1: a DAM with B = 1/α is within 2x of the
  /// affine model in both directions.
  double half_bandwidth_bytes() const { return 1.0 / alpha_; }

  /// Lemma 1, forward direction: upper bound on the DAM cost (blocks of
  /// size 1/α) of an affine algorithm with cost `affine_cost`.
  double dam_cost_upper_bound(double affine_cost) const {
    return 2.0 * affine_cost;
  }

 private:
  double alpha_;
  double setup_s_;
};

}  // namespace damkit::model
