#include "model/pdam.h"

#include <cmath>

namespace damkit::model {

double PdamModel::veb_btree_throughput(double k, double n_items) const {
  DAMKIT_CHECK(k > 0.0 && k <= p_ + 1e-9);
  DAMKIT_CHECK(n_items > 2.0);
  // Each client gets P/k block slots per step; with the node's blocks in
  // van Emde Boas order a client descends log(PB/k) bits of the node's
  // height per step, so a root-to-leaf path of log(N) bits takes
  // log_{PB/k}(N) steps. k queries complete per wave.
  const double node_fetch = p_ / k * static_cast<double>(block_bytes_);
  const double base = std::max(node_fetch, 2.0);
  return k / (std::log(n_items) / std::log(base));
}

double PdamModel::small_node_throughput(double k, double n_items) const {
  DAMKIT_CHECK(k > 0.0);
  DAMKIT_CHECK(n_items > 2.0);
  const double base = std::max(static_cast<double>(block_bytes_), 2.0);
  const double steps_per_query = std::log(n_items) / std::log(base);
  // The device serves min(k, P) block IOs per step; each query consumes one
  // per step of its root-to-leaf walk.
  return std::min(k, p_) / steps_per_query;
}

double PdamModel::big_plain_node_throughput(double k, double n_items) const {
  DAMKIT_CHECK(k > 0.0);
  DAMKIT_CHECK(n_items > 2.0);
  const double node_bytes = p_ * static_cast<double>(block_bytes_);
  const double base = std::max(node_bytes, 2.0);
  const double levels = std::log(n_items) / std::log(base);
  // Loading one full node takes P block-slots = one step if a single client
  // owns the device, but k clients must share: k·P slots per level wave
  // over P slots/step = k steps per level.
  const double steps_per_wave = std::max(k, 1.0) * levels;
  return k / steps_per_wave;
}

}  // namespace damkit::model
