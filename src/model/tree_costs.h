// Affine-model cost formulas for B-trees and Bε-trees — the analytical
// heart of §5 and §6 (Table 3, Lemmas 5 & 8, Theorem 9).
//
// Conventions: B and F are in *elements* of unit size (the paper treats a
// word/element as the unit; to apply to byte-sized nodes divide by the
// entry size). Costs are per operation, in normalized affine units where
// one IO setup costs 1. Logarithms are natural unless a base is explicit.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/status.h"

namespace damkit::model {

/// Parameters shared by all formulas.
struct TreeParams {
  double alpha = 1e-4;  // normalized bandwidth cost (affine model)
  double n = 1e9;       // total elements in the dictionary
  double m = 1e6;       // elements that fit in cache
  double levels_uncached(double fanout) const {
    DAMKIT_CHECK(fanout > 1.0);
    DAMKIT_CHECK(n > m && m >= 1.0);
    return std::log(n / m) / std::log(fanout);
  }
};

// ---------------------------------------------------------------------------
// B-tree (§5, Lemma 5 / Table 3 row 1).
// ---------------------------------------------------------------------------

/// Affine cost of a point query / insert / delete in a B-tree with size-B
/// nodes: (1 + αB)·log_{B+1}(N/M).
double btree_op_cost(const TreeParams& p, double b);

/// Affine cost of a range query returning `ell` elements (excluding the
/// initial point query): ceil(ell/B) leaf IOs of cost (1 + αB) each.
double btree_range_cost(const TreeParams& p, double b, double ell);

/// Worst-case write amplification of a B-tree with size-B nodes: Θ(B)
/// (Lemma 3). Returned as exactly B — constants of the folklore bound.
double btree_write_amp(double b);

// ---------------------------------------------------------------------------
// Bε-tree, naive whole-node IOs (§6, Lemma 8 / Table 3 row 3 insert).
// ---------------------------------------------------------------------------

/// Amortized affine insert cost with node size B and fanout F:
/// (F/B + αF)·log_F(N/M).
double betree_insert_cost(const TreeParams& p, double b, double f);

/// Affine point-query cost reading whole nodes: (1 + αB)·log_F(N/M).
double betree_query_cost_naive(const TreeParams& p, double b, double f);

/// Affine range-query cost returning `ell` elements (excluding the point
/// query): ceil(ell/B)·(1 + αB).
double betree_range_cost(const TreeParams& p, double b, double ell);

/// Write amplification: O(F·log_F(N/M)) data written per element flushed
/// down each level (Theorem 4 restated for the affine analysis in §6).
double betree_write_amp(const TreeParams& p, double b, double f);

// ---------------------------------------------------------------------------
// Optimized Bε-tree (Theorem 9): per-child contiguous buffer segments of at
// most B/F elements, pivots stored in the parent, weight-balanced fanout.
// ---------------------------------------------------------------------------

/// Query cost with sub-node IOs: (1 + αB/F + αF)·log_F(N/M)·(1 + 1/log F).
double betree_query_cost_optimized(const TreeParams& p, double b, double f);

/// Table 3 row 2 (the B^{1/2}-tree): costs with F = sqrt(B).
double bhalf_tree_insert_cost(const TreeParams& p, double b);
double bhalf_tree_query_cost(const TreeParams& p, double b);

// ---------------------------------------------------------------------------
// Optimal parameter choices (§5 Corollaries 6–7, §6 Corollaries 11–12).
// ---------------------------------------------------------------------------

/// Corollary 6: node size optimizing all B-tree ops to within constant
/// factors — the half-bandwidth point 1/α.
double half_bandwidth_node_size(double alpha);

/// Corollary 7: the node size minimizing (1 + αx)/ln(x + 1), i.e. the
/// point-query/insert optimum Θ(1/(α·ln(1/α))). Solved numerically to
/// machine precision (Newton on the stationarity condition).
double optimal_btree_node_size(double alpha);

/// Corollary 12: fanout F = 1/(α·ln(1/α)) and node size B = F² giving a
/// Bε-tree whose query cost matches the optimal B-tree up to lower-order
/// terms while inserts are Θ(log(1/α)) faster.
struct OptimalBetreeChoice {
  double fanout;
  double node_size;
};
OptimalBetreeChoice optimal_betree_choice(double alpha);

/// Insert speedup of the Corollary-12 Bε-tree over the optimal B-tree
/// (should be Θ(log(1/α))).
double corollary12_insert_speedup(const TreeParams& p);

}  // namespace damkit::model
