#include "model/tree_costs.h"

#include "model/optimize.h"

namespace damkit::model {

double btree_op_cost(const TreeParams& p, double b) {
  DAMKIT_CHECK(b > 1.0);
  return (1.0 + p.alpha * b) * p.levels_uncached(b + 1.0);
}

double btree_range_cost(const TreeParams& p, double b, double ell) {
  DAMKIT_CHECK(b > 1.0 && ell >= 0.0);
  const double leaf_ios = std::ceil(ell / b);
  return leaf_ios * (1.0 + p.alpha * b);
}

double btree_write_amp(double b) { return b; }

double betree_insert_cost(const TreeParams& p, double b, double f) {
  DAMKIT_CHECK(b > 1.0 && f > 1.0 && f <= b);
  return (f / b + p.alpha * f) * p.levels_uncached(f);
}

double betree_query_cost_naive(const TreeParams& p, double b, double f) {
  DAMKIT_CHECK(b > 1.0 && f > 1.0 && f <= b);
  return (1.0 + p.alpha * b) * p.levels_uncached(f);
}

double betree_range_cost(const TreeParams& p, double b, double ell) {
  DAMKIT_CHECK(b > 1.0 && ell >= 0.0);
  return std::ceil(ell / b) * (1.0 + p.alpha * b);
}

double betree_write_amp(const TreeParams& p, double b, double f) {
  DAMKIT_CHECK(b > 1.0 && f > 1.0 && f <= b);
  // Each element is rewritten O(F) times per level it descends (the node
  // and its F children are rewritten to move B elements down one level).
  return f * p.levels_uncached(f);
}

double betree_query_cost_optimized(const TreeParams& p, double b, double f) {
  DAMKIT_CHECK(b > 1.0 && f > 1.0 && f <= b);
  const double log_f = std::log(f);
  return (1.0 + p.alpha * b / f + p.alpha * f) * p.levels_uncached(f) *
         (1.0 + 1.0 / log_f);
}

double bhalf_tree_insert_cost(const TreeParams& p, double b) {
  return betree_insert_cost(p, b, std::sqrt(b));
}

double bhalf_tree_query_cost(const TreeParams& p, double b) {
  return betree_query_cost_optimized(p, b, std::sqrt(b));
}

double half_bandwidth_node_size(double alpha) {
  DAMKIT_CHECK(alpha > 0.0);
  return 1.0 / alpha;
}

double optimal_btree_node_size(double alpha) {
  DAMKIT_CHECK(alpha > 0.0 && alpha < 1.0);
  // Minimize f(x) = (1 + αx)/ln(x + 1). Unimodal for x in (0, ∞); use
  // golden-section on a bracket that certainly contains the optimum:
  // the optimum is below the half-bandwidth point 1/α and above 2.
  const auto f = [alpha](double x) {
    return (1.0 + alpha * x) / std::log(x + 1.0);
  };
  return minimize_golden(f, 2.0, 4.0 / alpha, 1e-10);
}

OptimalBetreeChoice optimal_betree_choice(double alpha) {
  DAMKIT_CHECK(alpha > 0.0 && alpha < 0.5);
  const double f = 1.0 / (alpha * std::log(1.0 / alpha));
  return {f, f * f};
}

double corollary12_insert_speedup(const TreeParams& p) {
  const double b_btree = optimal_btree_node_size(p.alpha);
  const OptimalBetreeChoice c = optimal_betree_choice(p.alpha);
  const double btree_insert = btree_op_cost(p, b_btree);
  const double be_insert = betree_insert_cost(p, c.node_size, c.fanout);
  DAMKIT_CHECK(be_insert > 0.0);
  return btree_insert / be_insert;
}

}  // namespace damkit::model
