// The MQ model — the multi-queue refinement of the PDAM (arXiv 2507.06349,
// ROADMAP item 2). Where the PDAM says "P block IOs per step, flat until
// the knee", the MQ model says per-IO latency grows *linearly* with total
// queue depth q,
//
//   lat(q) = l0 + beta · (q − 1),
//
// so a closed loop of q one-outstanding clients saturates smoothly toward
// 1/beta IOs per second instead of hitting a sharp knee at P, until the
// flash core's hard ceiling (saturated_iops) finally binds:
//
//   throughput(q) = min( q / lat(q), saturated_iops ).
//
// Fitted by harness::fit_mq from the same §4.1-style sweep the PDAM fit
// uses; bench_mq compares both models' predictions against the simulated
// multi-queue device.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/status.h"

namespace damkit::model {

class MqModel {
 public:
  /// `base_latency_s` is lat(1) (queue depth one, no contention),
  /// `depth_slope_s` the added latency per additional outstanding command,
  /// `saturated_iops` the flash-side ceiling, `block_bytes` the IO size
  /// the parameters were fitted at.
  MqModel(double base_latency_s, double depth_slope_s, double saturated_iops,
          uint64_t block_bytes)
      : l0_s_(base_latency_s),
        beta_s_(depth_slope_s),
        saturated_iops_(saturated_iops),
        block_bytes_(block_bytes) {
    DAMKIT_CHECK(base_latency_s > 0.0);
    DAMKIT_CHECK(depth_slope_s >= 0.0);
    DAMKIT_CHECK(saturated_iops > 0.0);
    DAMKIT_CHECK(block_bytes > 0);
  }

  double base_latency_s() const { return l0_s_; }
  double depth_slope_s() const { return beta_s_; }
  double saturated_iops() const { return saturated_iops_; }
  uint64_t block_bytes() const { return block_bytes_; }

  /// Per-IO latency at total outstanding depth q (the linear MQ law).
  double latency_s(double q) const {
    DAMKIT_CHECK(q >= 1.0);
    return l0_s_ + beta_s_ * (q - 1.0);
  }

  /// Closed-loop throughput of q one-outstanding clients, IOs per second:
  /// latency-limited while shallow, flash-ceiling-limited when deep.
  double throughput_iops(double q) const {
    return std::min(q / latency_s(q), saturated_iops_);
  }

  double saturated_bps() const {
    return saturated_iops_ * static_cast<double>(block_bytes_);
  }

  /// Predicted seconds for the §4.1 protocol: `clients` closed-loop
  /// streams, each performing `ios_per_client` block IOs.
  double predicted_seconds(double clients, uint64_t ios_per_client) const {
    return static_cast<double>(ios_per_client) * clients /
           throughput_iops(clients);
  }

  /// Per-client time ratio vs the single-client run — the normalized curve
  /// bench_mq gates. The PDAM predicts max(1, clients/P) (flat, then
  /// linear); the MQ model predicts a smooth rise from q = 1 on.
  double predicted_ratio(double clients) const {
    return predicted_seconds(clients, 1) / predicted_seconds(1.0, 1);
  }

 private:
  double l0_s_;
  double beta_s_;
  double saturated_iops_;
  uint64_t block_bytes_;
};

}  // namespace damkit::model
