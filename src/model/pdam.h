// The PDAM model (§2.2, Definition 1): in each time step the device serves
// up to P IOs of size B; unused slots are wasted. Performance is measured
// in time steps. Most predictive of SSDs and NVMe devices.
#pragma once

#include <algorithm>
#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace damkit::model {

class PdamModel {
 public:
  PdamModel(double parallelism, uint64_t block_bytes, double step_seconds = 1.0)
      : p_(parallelism), block_bytes_(block_bytes), step_s_(step_seconds) {
    DAMKIT_CHECK(parallelism > 0.0);
    DAMKIT_CHECK(block_bytes > 0);
    DAMKIT_CHECK(step_seconds > 0.0);
  }

  double parallelism() const { return p_; }
  uint64_t block_bytes() const { return block_bytes_; }
  double step_seconds() const { return step_s_; }

  /// Saturated device bandwidth in bytes per second: P·B per step.
  double saturated_bps() const {
    return p_ * static_cast<double>(block_bytes_) / step_s_;
  }

  /// Time steps for `total_ios` independent block IOs issued by `clients`
  /// concurrent threads, each keeping one IO outstanding: the device
  /// serves min(clients, P) per step.
  double steps_for(uint64_t total_ios, double clients) const {
    DAMKIT_CHECK(clients > 0.0);
    const double served_per_step = std::min(clients, p_);
    return static_cast<double>(total_ios) / served_per_step;
  }

  /// Predicted seconds for the §4.1 experiment: `clients` threads, each
  /// performing `ios_per_client` random reads of one block, closed loop.
  double predicted_seconds(double clients, uint64_t ios_per_client) const {
    return steps_for(ios_per_client * static_cast<uint64_t>(clients), clients) *
           step_s_;
  }

  /// DAM prediction of the same experiment (P ignored: one IO per step).
  double dam_predicted_seconds(double clients, uint64_t ios_per_client) const {
    return static_cast<double>(ios_per_client) * clients * step_s_;
  }

  /// Lemma 13: query throughput (queries per step) of a B-tree with nodes
  /// of size P·B in van Emde Boas layout serving k ≤ P concurrent clients
  /// over N items: Ω(k / log_{PB/k}(N)).
  double veb_btree_throughput(double k, double n_items) const;

  /// Throughput of the fixed-node-size alternatives Lemma 13 improves on:
  /// small nodes (size B, sequential root-to-leaf, k clients):
  ///   k / log_B(N)  per step.
  double small_node_throughput(double k, double n_items) const;
  /// big nodes (size PB) *without* vEB internal structure: a client must
  /// fetch all P blocks of a node level by level; with k clients sharing P
  /// slots, each node takes ceil(kP/P)=k steps of blocked transfer — big
  /// plain nodes serve k clients in k·log_{PB}(N) steps per query wave.
  double big_plain_node_throughput(double k, double n_items) const;

 private:
  double p_;
  uint64_t block_bytes_;
  double step_s_;
};

}  // namespace damkit::model
