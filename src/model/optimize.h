// Small numeric optimizers used to find optimal node sizes and fanouts.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace damkit::model {

/// Golden-section search minimizing a unimodal `f` on [lo, hi] to within
/// absolute x-tolerance `tol`. Returns the minimizing x.
double minimize_golden(const std::function<double(double)>& f, double lo,
                       double hi, double tol = 1e-9);

/// Exhaustive minimum over an explicit candidate list; returns the
/// minimizing candidate (useful for integral node sizes / powers of two).
/// Candidates must be non-empty.
uint64_t minimize_over(const std::function<double(uint64_t)>& f,
                       const std::vector<uint64_t>& candidates);

/// Geometric candidate ladder: lo, lo·ratio, ... up to hi (inclusive-ish),
/// rounded to integers, deduplicated.
std::vector<uint64_t> geometric_ladder(uint64_t lo, uint64_t hi, double ratio);

}  // namespace damkit::model
