#include "model/affine.h"

// AffineModel is header-only; this TU exists so the target has a stable
// archive member per public header.

namespace damkit::model {}  // namespace damkit::model
