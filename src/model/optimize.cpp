#include "model/optimize.h"

#include <cmath>

#include "util/status.h"

namespace damkit::model {

double minimize_golden(const std::function<double(double)>& f, double lo,
                       double hi, double tol) {
  DAMKIT_CHECK(lo < hi);
  constexpr double kInvPhi = 0.6180339887498949;  // 1/φ
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(c), fd = f(d);
  while (b - a > tol * (1.0 + std::abs(a) + std::abs(b))) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(d);
    }
  }
  return (a + b) / 2.0;
}

uint64_t minimize_over(const std::function<double(uint64_t)>& f,
                       const std::vector<uint64_t>& candidates) {
  DAMKIT_CHECK(!candidates.empty());
  uint64_t best = candidates.front();
  double best_val = f(best);
  for (size_t i = 1; i < candidates.size(); ++i) {
    const double v = f(candidates[i]);
    if (v < best_val) {
      best_val = v;
      best = candidates[i];
    }
  }
  return best;
}

std::vector<uint64_t> geometric_ladder(uint64_t lo, uint64_t hi, double ratio) {
  DAMKIT_CHECK(lo > 0 && lo <= hi);
  DAMKIT_CHECK(ratio > 1.0);
  std::vector<uint64_t> out;
  double x = static_cast<double>(lo);
  while (x <= static_cast<double>(hi) * (1.0 + 1e-12)) {
    const auto v = static_cast<uint64_t>(std::llround(x));
    if (out.empty() || v != out.back()) out.push_back(v);
    x *= ratio;
  }
  if (out.empty() || out.back() != hi) out.push_back(hi);
  return out;
}

}  // namespace damkit::model
