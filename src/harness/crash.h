// Crash-cycle differential driver: the executable definition of crash
// consistency for any engine behind a wal::DurableEngine.
//
// One cycle = run a seeded workload against a durable engine on a
// fault-injecting device armed to die at the k-th checked IO → abandon
// the dead engine → reboot → recover from device bytes TWICE (the second
// recovery must reproduce the first bit-for-bit — recovery is read-only
// up to the tail seal) → resume the regenerated op stream skipping
// exactly the mutations that survived → flush. The final state digest
// must equal an uncrashed reference run's digest for EVERY crash point k:
// the durable prefix plus the re-driven suffix is the whole stream.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "kv/dictionary.h"
#include "kv/workload.h"
#include "sim/device.h"
#include "wal/durable_engine.h"

namespace damkit::harness {

struct CrashCycleSpec {
  /// Builds a fresh EMPTY inner engine over the given device — called once
  /// for the crashed run and once per recovery.
  std::function<std::unique_ptr<kv::Dictionary>(sim::Device&, sim::IoContext&)>
      make_engine;
  /// Builds the underlying simulated device (reference run, and the inner
  /// device the fault injector wraps in the crashed run). Defaults to
  /// SsdDevice(testbed_ssd_profile()); the crash soak also sweeps
  /// MqSsdDevice — device models change timing, never payload semantics,
  /// so every digest must be identical either way.
  std::function<std::unique_ptr<sim::Device>()> make_device;
  kv::WorkloadSpec workload;
  uint64_t bulk_items = 1500;
  uint64_t ops = 2000;
  /// Checked device IOs after setup (bulk load + snapshot) before the
  /// device dies mid-run; 0 = never crash (clean run, used for probing).
  uint64_t crash_after_ios = 0;
  /// Issue a fallible checkpoint() every N ops during the crashed run
  /// (0 = none) so crash points can land INSIDE a checkpoint.
  uint64_t checkpoint_every_ops = 0;
  /// Seed for the fault injector (deterministic torn-write placement).
  uint64_t fault_seed = 1;
  /// Durability layout; defaults to default_durability_config(capacity).
  std::optional<wal::DurabilityConfig> durability;
};

struct CrashCycleReport {
  bool crashed = false;
  /// Device checked-IO count consumed between arming and the end of the op
  /// stream — a clean probe run reports the sweep range for crash points.
  uint64_t post_setup_ios = 0;
  uint64_t mutations_total = 0;    // mutations carried by the full stream
  uint64_t durable_mutations = 0;  // the prefix that survived the crash
  uint64_t resumed_ops = 0;        // ops re-driven after recovery
  uint64_t reference_digest = 0;   // from reference_state_digest()
  uint64_t recovered_digest = 0;   // state right after the first recovery
  uint64_t rerecovered_digest = 0;  // after the second recovery (idempotence)
  uint64_t final_digest = 0;        // after resuming + flush
  wal::RecoveryReport recovery;     // the first recovery's report
};

/// FNV-1a over every (key, value) pair of the dictionary's full contents,
/// read in key order via chunked range scans. Equal digests == equal state.
uint64_t state_digest(kv::Dictionary& dict);

/// The uncrashed reference: same engine factory on a pristine device (no
/// WAL wrapper — also a transparency check), full op stream, flush, digest.
uint64_t reference_state_digest(const CrashCycleSpec& spec);

/// One crash/recover/resume cycle; see the file comment for the protocol.
/// `reference_digest` is compared by the caller (it is echoed in the
/// report) so a sweep computes it once across many crash points.
CrashCycleReport run_crash_cycle(const CrashCycleSpec& spec,
                                 uint64_t reference_digest);

}  // namespace damkit::harness
