#include "harness/workload_runner.h"

#include <map>
#include <set>
#include <utility>

#include "kv/op_apply.h"
#include "kv/slice.h"
#include "serve/scheduler.h"
#include "util/rng.h"
#include "util/table.h"

namespace damkit::harness {

void WorkloadRunner::bulk_load(uint64_t items, const kv::WorkloadSpec& spec) {
  dict_->bulk_load(items, [&spec](uint64_t i) {
    kv::BulkItem item = kv::bulk_item(i, spec);
    return std::make_pair(std::move(item.key), std::move(item.value));
  });
}

WorkloadRunResult WorkloadRunner::run(const kv::WorkloadSpec& spec,
                                      uint64_t ops,
                                      const WorkloadRunOptions& options) {
  WorkloadRunResult result;
  kv::OpGenerator gen(spec);
  const sim::SimTime before = io_->now();

  kv::ApplyCounters counters;
  const kv::ApplyOptions apply_options{options.fallible};
  kv::ApplyScratch scratch;  // key/value buffers reused across all ops
  for (uint64_t i = 0; i < ops; ++i) {
    const kv::Op op = gen.next();
    kv::apply_op(*dict_, op, i, spec, apply_options, &result.digest,
                 &counters, &scratch);
  }
  result.puts = counters.puts;
  result.gets = counters.gets;
  result.erases = counters.erases;
  result.scans = counters.scans;
  result.upserts = counters.upserts;
  result.get_hits = counters.get_hits;
  result.failed_ops = counters.failed_ops;

  if (options.flush_at_end) {
    if (options.fallible) {
      if (!checkpoint_with_retries(*dict_, 200).ok()) ++result.failed_ops;
    } else {
      dict_->flush();
    }
  }
  result.sim_elapsed = io_->now() - before;
  return result;
}

ConcurrentRunResult WorkloadRunner::run_concurrent(
    const kv::WorkloadSpec& spec, uint64_t ops,
    const ConcurrentRunOptions& options) {
  serve::ServeConfig config;
  config.clients = options.clients;
  config.inflight = options.inflight;
  config.fallible = options.fallible;
  config.replay_device_factory = options.replay_device_factory;
  config.lane_of = options.lane_of;
  config.lanes = options.lanes;

  const sim::SimTime before = io_->now();
  serve::Scheduler scheduler(*dict_, *io_, config);
  serve::ServeResult served = scheduler.serve(spec, ops);

  ConcurrentRunResult result;
  result.base.puts = served.counters.puts;
  result.base.gets = served.counters.gets;
  result.base.erases = served.counters.erases;
  result.base.scans = served.counters.scans;
  result.base.upserts = served.counters.upserts;
  result.base.get_hits = served.counters.get_hits;
  result.base.failed_ops = served.counters.failed_ops;
  result.base.digest = served.digest;

  if (options.flush_at_end) {
    if (options.fallible) {
      if (!checkpoint_with_retries(*dict_, 200).ok()) {
        ++result.base.failed_ops;
      }
    } else {
      dict_->flush();
    }
  }
  result.base.sim_elapsed = io_->now() - before;

  result.concurrent_elapsed = served.concurrent_elapsed;
  result.speedup = served.speedup();
  result.throughput_ops_per_sec = served.throughput_ops_per_sec();
  result.latency = std::move(served.latency);
  result.batches = served.batches;
  result.batch_ios = served.batch_ios;
  result.lane_ios = std::move(served.lane_ios);
  result.max_lane_depth = served.max_lane_depth;
  return result;
}

PutGetResult run_put_get(kv::Dictionary& dict, const PutGetSpec& spec) {
  DAMKIT_CHECK(spec.key_of != nullptr);
  DAMKIT_CHECK(spec.key_modulus > 0);
  PutGetResult result;
  Rng rng(spec.seed);
  const std::string value(spec.value_bytes, 'v');
  for (uint64_t i = 0; i < spec.puts; ++i) {
    const std::string key = spec.key_of(rng.next() % spec.key_modulus);
    if (spec.fallible) {
      const Status put = dict.try_put(key, value);
      if (!put.ok()) {
        DAMKIT_CHECK(spec.tolerate_failures);
        ++result.failed_ops;
      }
    } else {
      dict.put(key, value);
    }
  }
  for (uint64_t i = 0; i < spec.gets; ++i) {
    const std::string key = spec.key_of(rng.next() % spec.key_modulus);
    if (spec.fallible) {
      StatusOr<std::optional<std::string>> hit = dict.try_get(key);
      if (!hit.ok()) {
        DAMKIT_CHECK(spec.tolerate_failures);
        ++result.failed_ops;
      } else if (hit->has_value()) {
        ++result.get_hits;
      }
    } else {
      if (dict.get(key).has_value()) ++result.get_hits;
    }
  }
  for (uint64_t i = 0; i < spec.scans; ++i) {
    if (spec.fallible) {
      const Status scan =
          dict.try_range_scan(spec.key_of(0), spec.scan_limit).status();
      if (!scan.ok()) {
        DAMKIT_CHECK(spec.tolerate_failures);
        ++result.failed_ops;
      }
    } else {
      (void)dict.range_scan(spec.key_of(0), spec.scan_limit);
    }
  }
  return result;
}

Status checkpoint_with_retries(kv::Dictionary& dict, int max_attempts) {
  Status s = dict.checkpoint();
  for (int tries = 0; !s.ok() && tries < max_attempts; ++tries) {
    s = dict.checkpoint();
  }
  return s;
}

SoakReport run_fault_soak(kv::Dictionary& dict, const SoakSpec& spec) {
  std::map<std::string, std::string> expected;
  std::set<std::string> uncertain;  // failed mutation: old-or-new state
  SoakReport report;
  Rng rng(spec.seed);

  for (uint64_t i = 0; i < spec.ops; ++i) {
    const std::string key = kv::encode_key(rng.uniform(spec.key_space));
    const uint64_t dice = rng.uniform(10);
    if (dice < 6) {
      const std::string value = kv::make_value(rng.next(), spec.value_bytes);
      if (dict.try_put(key, value).ok()) {
        expected[key] = value;
        uncertain.erase(key);
        ++report.ok_ops;
      } else {
        uncertain.insert(key);
        ++report.failed_ops;
      }
    } else if (dice < 8) {
      if (dict.try_erase(key).ok()) {
        expected.erase(key);
        uncertain.erase(key);
        ++report.ok_ops;
      } else {
        uncertain.insert(key);
        ++report.failed_ops;
      }
    } else {
      StatusOr<std::optional<std::string>> got = dict.try_get(key);
      if (!got.ok()) {
        ++report.failed_ops;
      } else {
        ++report.ok_ops;
        if (uncertain.count(key) == 0) {
          const auto want = expected.find(key);
          if (want == expected.end()) {
            if (got->has_value()) {
              report.violations.push_back("phantom key " + key);
            }
          } else if (!got->has_value()) {
            report.violations.push_back("lost key " + key);
          } else if (**got != want->second) {
            report.violations.push_back("wrong value for key " + key);
          }
        }
      }
    }
  }

  // The checkpoint must eventually land (each attempt consumes fresh
  // fault draws, so a give-up does not repeat forever).
  const Status checkpoint =
      checkpoint_with_retries(dict, spec.checkpoint_attempts);
  report.checkpoint_ok = checkpoint.ok();
  if (!checkpoint.ok()) {
    report.violations.push_back("checkpoint never landed: " +
                                std::string(checkpoint.message()));
  }

  // Full verification sweep: every op that reported success is durable.
  // Reads can still fault; retry each key until the dictionary answers.
  for (const auto& [key, value] : expected) {
    if (uncertain.count(key) != 0) continue;
    StatusOr<std::optional<std::string>> got = dict.try_get(key);
    for (int tries = 0; !got.ok() && tries < spec.verify_read_attempts;
         ++tries) {
      got = dict.try_get(key);
    }
    if (!got.ok()) {
      report.violations.push_back("verify read kept failing for " + key);
    } else if (!got->has_value()) {
      report.violations.push_back("lost key " + key);
    } else if (**got != value) {
      report.violations.push_back("wrong value for key " + key);
    }
  }
  return report;
}

}  // namespace damkit::harness
