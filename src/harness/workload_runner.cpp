#include "harness/workload_runner.h"

#include <map>
#include <set>
#include <utility>

#include "kv/slice.h"
#include "util/rng.h"
#include "util/table.h"

namespace damkit::harness {

namespace {

void fnv_mix(uint64_t* h, std::string_view bytes) {
  for (const char c : bytes) {
    *h ^= static_cast<uint8_t>(c);
    *h *= 0x100000001b3ULL;
  }
  *h ^= 0xff;  // separator so field boundaries are part of the digest
  *h *= 0x100000001b3ULL;
}

}  // namespace

void WorkloadRunner::bulk_load(uint64_t items, const kv::WorkloadSpec& spec) {
  dict_->bulk_load(items, [&spec](uint64_t i) {
    kv::BulkItem item = kv::bulk_item(i, spec);
    return std::make_pair(std::move(item.key), std::move(item.value));
  });
}

WorkloadRunResult WorkloadRunner::run(const kv::WorkloadSpec& spec,
                                      uint64_t ops,
                                      const WorkloadRunOptions& options) {
  WorkloadRunResult result;
  kv::OpGenerator gen(spec);
  const sim::SimTime before = io_->now();

  for (uint64_t i = 0; i < ops; ++i) {
    const kv::Op op = gen.next();
    const std::string key = kv::encode_key(op.key_id, spec.key_bytes);
    switch (op.type) {
      case kv::OpType::kPut: {
        ++result.puts;
        const std::string value =
            kv::make_value(op.key_id + i, spec.value_bytes);
        if (options.fallible) {
          if (!dict_->try_put(key, value).ok()) ++result.failed_ops;
        } else {
          dict_->put(key, value);
        }
        break;
      }
      case kv::OpType::kGet: {
        ++result.gets;
        std::optional<std::string> got;
        if (options.fallible) {
          StatusOr<std::optional<std::string>> r = dict_->try_get(key);
          if (!r.ok()) {
            ++result.failed_ops;
            break;
          }
          got = *std::move(r);
        } else {
          got = dict_->get(key);
        }
        fnv_mix(&result.digest, key);
        fnv_mix(&result.digest, got.has_value() ? "1" : "0");
        if (got.has_value()) {
          ++result.get_hits;
          fnv_mix(&result.digest, *got);
        }
        break;
      }
      case kv::OpType::kDelete: {
        ++result.erases;
        if (options.fallible) {
          if (!dict_->try_erase(key).ok()) ++result.failed_ops;
        } else {
          dict_->erase(key);
        }
        break;
      }
      case kv::OpType::kScan: {
        ++result.scans;
        std::vector<std::pair<std::string, std::string>> rows;
        if (options.fallible) {
          auto r = dict_->try_range_scan(key, op.scan_length);
          if (!r.ok()) {
            ++result.failed_ops;
            break;
          }
          rows = *std::move(r);
        } else {
          rows = dict_->range_scan(key, op.scan_length);
        }
        fnv_mix(&result.digest, strfmt("scan:%zu", rows.size()));
        for (const auto& [k, v] : rows) {
          fnv_mix(&result.digest, k);
          fnv_mix(&result.digest, v);
        }
        break;
      }
      case kv::OpType::kUpsert: {
        ++result.upserts;
        const auto delta = static_cast<int64_t>(op.key_id % 1000 + 1);
        if (options.fallible) {
          if (!dict_->try_upsert(key, delta).ok()) ++result.failed_ops;
        } else {
          dict_->upsert(key, delta);
        }
        break;
      }
    }
  }

  if (options.flush_at_end) {
    if (options.fallible) {
      if (!checkpoint_with_retries(*dict_, 200).ok()) ++result.failed_ops;
    } else {
      dict_->flush();
    }
  }
  result.sim_elapsed = io_->now() - before;
  return result;
}

PutGetResult run_put_get(kv::Dictionary& dict, const PutGetSpec& spec) {
  DAMKIT_CHECK(spec.key_of != nullptr);
  DAMKIT_CHECK(spec.key_modulus > 0);
  PutGetResult result;
  Rng rng(spec.seed);
  const std::string value(spec.value_bytes, 'v');
  for (uint64_t i = 0; i < spec.puts; ++i) {
    const std::string key = spec.key_of(rng.next() % spec.key_modulus);
    if (spec.fallible) {
      const Status put = dict.try_put(key, value);
      if (!put.ok()) {
        DAMKIT_CHECK(spec.tolerate_failures);
        ++result.failed_ops;
      }
    } else {
      dict.put(key, value);
    }
  }
  for (uint64_t i = 0; i < spec.gets; ++i) {
    const std::string key = spec.key_of(rng.next() % spec.key_modulus);
    if (spec.fallible) {
      StatusOr<std::optional<std::string>> hit = dict.try_get(key);
      if (!hit.ok()) {
        DAMKIT_CHECK(spec.tolerate_failures);
        ++result.failed_ops;
      } else if (hit->has_value()) {
        ++result.get_hits;
      }
    } else {
      if (dict.get(key).has_value()) ++result.get_hits;
    }
  }
  for (uint64_t i = 0; i < spec.scans; ++i) {
    if (spec.fallible) {
      const Status scan =
          dict.try_range_scan(spec.key_of(0), spec.scan_limit).status();
      if (!scan.ok()) {
        DAMKIT_CHECK(spec.tolerate_failures);
        ++result.failed_ops;
      }
    } else {
      (void)dict.range_scan(spec.key_of(0), spec.scan_limit);
    }
  }
  return result;
}

Status checkpoint_with_retries(kv::Dictionary& dict, int max_attempts) {
  Status s = dict.checkpoint();
  for (int tries = 0; !s.ok() && tries < max_attempts; ++tries) {
    s = dict.checkpoint();
  }
  return s;
}

SoakReport run_fault_soak(kv::Dictionary& dict, const SoakSpec& spec) {
  std::map<std::string, std::string> expected;
  std::set<std::string> uncertain;  // failed mutation: old-or-new state
  SoakReport report;
  Rng rng(spec.seed);

  for (uint64_t i = 0; i < spec.ops; ++i) {
    const std::string key = kv::encode_key(rng.uniform(spec.key_space));
    const uint64_t dice = rng.uniform(10);
    if (dice < 6) {
      const std::string value = kv::make_value(rng.next(), spec.value_bytes);
      if (dict.try_put(key, value).ok()) {
        expected[key] = value;
        uncertain.erase(key);
        ++report.ok_ops;
      } else {
        uncertain.insert(key);
        ++report.failed_ops;
      }
    } else if (dice < 8) {
      if (dict.try_erase(key).ok()) {
        expected.erase(key);
        uncertain.erase(key);
        ++report.ok_ops;
      } else {
        uncertain.insert(key);
        ++report.failed_ops;
      }
    } else {
      StatusOr<std::optional<std::string>> got = dict.try_get(key);
      if (!got.ok()) {
        ++report.failed_ops;
      } else {
        ++report.ok_ops;
        if (uncertain.count(key) == 0) {
          const auto want = expected.find(key);
          if (want == expected.end()) {
            if (got->has_value()) {
              report.violations.push_back("phantom key " + key);
            }
          } else if (!got->has_value()) {
            report.violations.push_back("lost key " + key);
          } else if (**got != want->second) {
            report.violations.push_back("wrong value for key " + key);
          }
        }
      }
    }
  }

  // The checkpoint must eventually land (each attempt consumes fresh
  // fault draws, so a give-up does not repeat forever).
  const Status checkpoint =
      checkpoint_with_retries(dict, spec.checkpoint_attempts);
  report.checkpoint_ok = checkpoint.ok();
  if (!checkpoint.ok()) {
    report.violations.push_back("checkpoint never landed: " +
                                std::string(checkpoint.message()));
  }

  // Full verification sweep: every op that reported success is durable.
  // Reads can still fault; retry each key until the dictionary answers.
  for (const auto& [key, value] : expected) {
    if (uncertain.count(key) != 0) continue;
    StatusOr<std::optional<std::string>> got = dict.try_get(key);
    for (int tries = 0; !got.ok() && tries < spec.verify_read_attempts;
         ++tries) {
      got = dict.try_get(key);
    }
    if (!got.ok()) {
      report.violations.push_back("verify read kept failing for " + key);
    } else if (!got->has_value()) {
      report.violations.push_back("lost key " + key);
    } else if (**got != value) {
      report.violations.push_back("wrong value for key " + key);
    }
  }
  return report;
}

}  // namespace damkit::harness
