#include "harness/fitting.h"

#include <algorithm>
#include <cmath>

#include "util/status.h"

namespace damkit::harness {

AffineFit fit_affine(const std::vector<AffineSample>& samples) {
  DAMKIT_CHECK(samples.size() >= 2);
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    x.push_back(static_cast<double>(s.io_bytes));
    y.push_back(s.seconds);
  }
  const LinearFit lf = linear_fit(x, y);
  AffineFit fit;
  fit.s = lf.intercept;
  fit.t_per_byte = lf.slope;
  fit.t_per_4k = lf.slope * 4096.0;
  fit.alpha = (fit.s > 0.0) ? fit.t_per_4k / fit.s : 0.0;
  fit.r2 = lf.r2;
  fit.rms = lf.rms;
  return fit;
}

PdamFit fit_pdam(const std::vector<PdamSample>& samples) {
  DAMKIT_CHECK(samples.size() >= 4);
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    x.push_back(static_cast<double>(s.threads));
    y.push_back(s.seconds);
  }
  PdamFit fit;
  fit.segments = segmented_linear_fit(x, y);
  fit.p = fit.segments.breakpoint;
  fit.r2 = fit.segments.r2;
  // Saturated throughput: on the linear segment, each added thread adds
  // (bytes per thread) work and slope seconds, so throughput converges to
  // bytes_per_thread / slope. Use the measured largest round as a
  // cross-check; prefer the regression slope (the paper's ∝PB).
  const PdamSample& last = samples.back();
  const double bytes_per_thread =
      static_cast<double>(last.total_bytes) / last.threads;
  if (fit.segments.right.slope > 0.0) {
    fit.saturated_mbps =
        bytes_per_thread / fit.segments.right.slope / 1e6;
  } else {
    fit.saturated_mbps =
        static_cast<double>(last.total_bytes) / last.seconds / 1e6;
  }
  return fit;
}

MqFit fit_mq(const std::vector<MqSample>& samples) {
  DAMKIT_CHECK(samples.size() >= 3);
  MqFit fit;
  // The ceiling is the best throughput any round achieved; rounds near it
  // are flash-limited, the rest are latency-limited and carry the linear
  // lat(q) law.
  double sat = 0.0;
  for (const MqSample& s : samples) {
    DAMKIT_CHECK(s.clients >= 1 && s.seconds > 0.0 && s.total_ios > 0);
    sat = std::max(sat, static_cast<double>(s.total_ios) / s.seconds);
  }
  fit.saturated_iops = sat;

  std::vector<double> x, y;
  for (const MqSample& s : samples) {
    const double throughput = static_cast<double>(s.total_ios) / s.seconds;
    if (throughput >= 0.85 * sat && s.clients > 1) continue;
    // Effective per-IO time of a q-client closed loop: q · makespan / ios.
    const double per_io =
        s.seconds * static_cast<double>(s.clients) /
        static_cast<double>(s.total_ios);
    x.push_back(static_cast<double>(s.clients) - 1.0);
    y.push_back(per_io);
  }
  if (x.size() >= 2) {
    const LinearFit lf = linear_fit(x, y);
    fit.l0_s = lf.intercept;
    fit.beta_s = std::max(0.0, lf.slope);
  } else {
    // Degenerate sweep (everything at the ceiling): flat latency law.
    fit.l0_s = y.empty() ? samples.front().seconds *
                               samples.front().clients /
                               static_cast<double>(samples.front().total_ios)
                         : y.front();
    fit.beta_s = 0.0;
  }
  if (fit.l0_s <= 0.0) {
    fit.l0_s = y.empty() ? 1e-6 : y.front();
    fit.beta_s = 0.0;
  }

  // r² of the full model against every sample's per-IO time.
  double ss_res = 0.0, ss_tot = 0.0, mean = 0.0;
  std::vector<double> per_io;
  for (const MqSample& s : samples) {
    per_io.push_back(s.seconds * static_cast<double>(s.clients) /
                     static_cast<double>(s.total_ios));
    mean += per_io.back();
  }
  mean /= static_cast<double>(per_io.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    const double q = static_cast<double>(samples[i].clients);
    const double predicted =
        std::max(fit.l0_s + fit.beta_s * (q - 1.0), q / fit.saturated_iops);
    ss_res += (per_io[i] - predicted) * (per_io[i] - predicted);
    ss_tot += (per_io[i] - mean) * (per_io[i] - mean);
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace damkit::harness
