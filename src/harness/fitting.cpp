#include "harness/fitting.h"

#include <cmath>

#include "util/status.h"

namespace damkit::harness {

AffineFit fit_affine(const std::vector<AffineSample>& samples) {
  DAMKIT_CHECK(samples.size() >= 2);
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    x.push_back(static_cast<double>(s.io_bytes));
    y.push_back(s.seconds);
  }
  const LinearFit lf = linear_fit(x, y);
  AffineFit fit;
  fit.s = lf.intercept;
  fit.t_per_byte = lf.slope;
  fit.t_per_4k = lf.slope * 4096.0;
  fit.alpha = (fit.s > 0.0) ? fit.t_per_4k / fit.s : 0.0;
  fit.r2 = lf.r2;
  fit.rms = lf.rms;
  return fit;
}

PdamFit fit_pdam(const std::vector<PdamSample>& samples) {
  DAMKIT_CHECK(samples.size() >= 4);
  std::vector<double> x, y;
  x.reserve(samples.size());
  y.reserve(samples.size());
  for (const auto& s : samples) {
    x.push_back(static_cast<double>(s.threads));
    y.push_back(s.seconds);
  }
  PdamFit fit;
  fit.segments = segmented_linear_fit(x, y);
  fit.p = fit.segments.breakpoint;
  fit.r2 = fit.segments.r2;
  // Saturated throughput: on the linear segment, each added thread adds
  // (bytes per thread) work and slope seconds, so throughput converges to
  // bytes_per_thread / slope. Use the measured largest round as a
  // cross-check; prefer the regression slope (the paper's ∝PB).
  const PdamSample& last = samples.back();
  const double bytes_per_thread =
      static_cast<double>(last.total_bytes) / last.threads;
  if (fit.segments.right.slope > 0.0) {
    fit.saturated_mbps =
        bytes_per_thread / fit.segments.right.slope / 1e6;
  } else {
    fit.saturated_mbps =
        static_cast<double>(last.total_bytes) / last.seconds / 1e6;
  }
  return fit;
}

}  // namespace damkit::harness
