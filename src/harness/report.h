// Table/figure emitters: render experiment results in the paper's shape
// (stdout tables) and drop machine-readable CSVs next to them.
#pragma once

#include <string>

#include "harness/experiments.h"
#include "util/table.h"

namespace damkit::harness {

/// Table 2-style row set for a list of HDD results.
Table make_affine_table(
    const std::vector<std::pair<std::string, AffineExperimentResult>>& rows);

/// Table 1-style row set for a list of SSD results.
Table make_pdam_table(
    const std::vector<std::pair<std::string, PdamExperimentResult>>& rows);

/// Figure 1-style series: one column per device, rows = thread counts.
Table make_pdam_figure(
    const std::vector<std::pair<std::string, PdamExperimentResult>>& rows);

/// Figure 2/3-style series for a node-size sweep.
Table make_sweep_figure(const SweepResult& result);

/// Print a table with a caption and optionally write CSV to `csv_path`
/// (empty = skip). Returns the rendered text (also written to stdout).
std::string emit(const std::string& caption, const Table& table,
                 const std::string& csv_path);

}  // namespace damkit::harness
