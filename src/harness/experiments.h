// Shared experiment runners behind the paper's tables and figures. Each
// bench binary configures one of these and prints the rows; tests drive
// them at reduced scale to pin the qualitative results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "harness/fitting.h"
#include "kv/engine.h"
#include "pdam_tree/pdam_btree.h"
#include "sim/hdd.h"
#include "sim/ssd.h"

namespace damkit::harness {

// ---------------------------------------------------------------------------
// §4.2 / Table 2: affine microbenchmark on an HDD.
// ---------------------------------------------------------------------------

struct AffineExperimentConfig {
  std::vector<uint64_t> io_sizes;  // default: 4 KiB … 16 MiB, ×2 ladder
  int reads_per_size = 64;         // the paper issues 64 per size
  uint64_t seed = 17;
  /// Host threads running sweep points concurrently (one device + RNG per
  /// point, so results are identical for any value). Same knob on every
  /// sweep config below.
  int threads = 1;
};

struct AffineExperimentResult {
  std::vector<AffineSample> samples;
  AffineFit fit;
};

AffineExperimentResult run_affine_experiment(const sim::HddConfig& hdd,
                                             AffineExperimentConfig config);

// ---------------------------------------------------------------------------
// §4.1 / Table 1 / Figure 1: PDAM microbenchmark on an SSD.
// ---------------------------------------------------------------------------

struct PdamExperimentConfig {
  std::vector<int> thread_counts = {1, 2, 4, 8, 16, 32, 64};
  uint64_t bytes_per_thread = 1ULL << 30;  // paper: 10 GiB; scaled to 1 GiB
  uint64_t io_bytes = 64 * 1024;
  uint64_t seed = 23;
  int threads = 1;
};

struct PdamExperimentResult {
  std::vector<PdamSample> samples;
  PdamFit fit;
};

PdamExperimentResult run_pdam_experiment(const sim::SsdConfig& ssd,
                                         PdamExperimentConfig config);

// ---------------------------------------------------------------------------
// MQ refit (ROADMAP item 2): the §4.1 protocol against the multi-queue
// device, fitted to both models so benches can show where they diverge.
// ---------------------------------------------------------------------------

struct MqExperimentConfig {
  std::vector<int> client_counts = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64};
  uint64_t ios_per_client = 2048;
  uint64_t io_bytes = 16 * 1024;
  uint64_t seed = 41;
  int threads = 1;
};

struct MqExperimentResult {
  std::vector<MqSample> samples;
  MqFit fit;
  /// The same sweep viewed through the paper's §4.1 methodology: a
  /// two-segment regression whose breakpoint would be "P". On an MQ
  /// device the left segment is not flat (lat grows with q from q = 1),
  /// so this fit is the PDAM's best — and wrong — reading of the device.
  std::vector<PdamSample> pdam_samples;
  PdamFit pdam_fit;
};

/// Runs the closed-loop sweep on a sim::MqSsdDevice built from `ssd`
/// (which carries the MQ knobs) and fits both models.
MqExperimentResult run_mq_experiment(const sim::SsdConfig& ssd,
                                     MqExperimentConfig config);

// ---------------------------------------------------------------------------
// §7 / Figures 2–3: node-size sweeps for the dictionaries.
// ---------------------------------------------------------------------------

struct SweepConfig {
  kv::EngineKind kind = kv::EngineKind::kBTree;
  std::vector<uint64_t> node_sizes;
  uint64_t items = 1'000'000;   // bulk-loaded data set
  size_t key_bytes = 16;
  size_t value_bytes = 100;
  double cache_ratio = 0.25;    // cache = ratio × data bytes (paper: 4/16)
  uint64_t queries = 2000;      // measured random point queries
  uint64_t inserts = 2000;      // measured random inserts
  size_t betree_fanout = 0;     // 0 = sqrt(B) default
  uint64_t seed = 31;
  int threads = 1;
};

struct SweepPoint {
  uint64_t node_bytes = 0;
  double query_ms = 0.0;    // mean simulated milliseconds per point query
  double insert_ms = 0.0;   // mean simulated milliseconds per insert
  double write_amp = 0.0;   // device bytes written / logical bytes (inserts)
  double cache_hit_rate = 0.0;
  size_t height = 0;
};

struct SweepResult {
  std::vector<SweepPoint> points;
  /// Affine overlay fitted to the measured query times (the black line in
  /// Figures 2–3): predicted_ms(B) from the device's (s, t) and the
  /// tree's uncached height.
  std::vector<double> affine_query_ms;
  std::vector<double> affine_insert_ms;
};

/// Runs the sweep on the given HDD profile (the §7 testbed is HDD-based).
SweepResult run_nodesize_sweep(const sim::HddConfig& hdd, SweepConfig config);

// ---------------------------------------------------------------------------
// Write-amplification experiment (Lemma 3 vs Theorem 4.4).
// ---------------------------------------------------------------------------

struct WriteAmpConfig {
  std::vector<uint64_t> node_sizes;
  uint64_t items = 200'000;
  uint64_t updates = 20'000;
  size_t key_bytes = 16;
  size_t value_bytes = 100;
  double cache_ratio = 0.1;
  uint64_t seed = 37;
  int threads = 1;
};

struct WriteAmpPoint {
  uint64_t node_bytes = 0;
  double btree_write_amp = 0.0;
  double betree_write_amp = 0.0;
};

std::vector<WriteAmpPoint> run_write_amp_experiment(const sim::HddConfig& hdd,
                                                    WriteAmpConfig config);

// ---------------------------------------------------------------------------
// §8 / Lemma 13: step-driven PDAM B-tree query runs.
// ---------------------------------------------------------------------------

struct PdamQueryPoint {
  int clients = 0;
  pdam_tree::PdamBTree::RunResult result;
};

struct PdamQueryRun {
  std::vector<PdamQueryPoint> points;  // one per requested client count
  int global_height = 0;
  int node_height = 0;
  uint64_t node_blocks = 0;
  uint64_t keys = 0;
  /// Step-driven clients answer lower_bound exactly (checked against
  /// std::lower_bound on random probes).
  bool oracle_ok = true;
};

/// Builds one static PdamBTree over `sorted_keys` and runs the PDAM step
/// scheduler once per entry of `client_counts` (each run_queries call uses
/// `seed`, matching the historical per-bench loops).
PdamQueryRun run_pdam_tree_queries(const std::vector<uint64_t>& sorted_keys,
                                   const pdam_tree::PdamTreeConfig& config,
                                   const std::vector<int>& client_counts,
                                   uint64_t queries_per_client, uint64_t seed);

}  // namespace damkit::harness
