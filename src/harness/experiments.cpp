#include "harness/experiments.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "harness/parallel.h"

#include "kv/engine.h"
#include "kv/slice.h"
#include "kv/workload.h"
#include "sim/closed_loop.h"
#include "sim/mq_ssd.h"
#include "util/bytes.h"

namespace damkit::harness {

namespace {

std::vector<uint64_t> default_io_ladder() {
  std::vector<uint64_t> sizes;
  for (uint64_t s = 4 * kKiB; s <= 16 * kMiB; s *= 2) sizes.push_back(s);
  return sizes;
}

}  // namespace

AffineExperimentResult run_affine_experiment(const sim::HddConfig& hdd,
                                             AffineExperimentConfig config) {
  if (config.io_sizes.empty()) config.io_sizes = default_io_ladder();
  AffineExperimentResult result;
  result.samples.resize(config.io_sizes.size());
  parallel_sweep(config.io_sizes.size(), config.threads, [&](size_t i) {
    const uint64_t io_bytes = config.io_sizes[i];
    // Fresh device per size: each round starts from quiescent hardware,
    // exactly like re-running the microbenchmark binary.
    sim::HddDevice dev(hdd, config.seed);
    sim::ClosedLoopConfig cl;
    cl.clients = 1;
    cl.ios_per_client = static_cast<uint64_t>(config.reads_per_size);
    cl.io_bytes = io_bytes;
    cl.seed = config.seed ^ io_bytes;
    const sim::ClosedLoopResult r = sim::run_closed_loop(dev, cl);
    AffineSample sample;
    sample.io_bytes = io_bytes;
    sample.seconds = sim::to_seconds(r.makespan) /
                     static_cast<double>(r.total_ios);
    result.samples[i] = sample;
  });
  result.fit = fit_affine(result.samples);
  return result;
}

PdamExperimentResult run_pdam_experiment(const sim::SsdConfig& ssd,
                                         PdamExperimentConfig config) {
  PdamExperimentResult result;
  result.samples.resize(config.thread_counts.size());
  parallel_sweep(config.thread_counts.size(), config.threads, [&](size_t i) {
    const int threads = config.thread_counts[i];
    sim::SsdDevice dev(ssd);
    sim::ClosedLoopConfig cl;
    cl.clients = threads;
    cl.ios_per_client = config.bytes_per_thread / config.io_bytes;
    cl.io_bytes = config.io_bytes;
    cl.seed = config.seed + static_cast<uint64_t>(threads);
    const sim::ClosedLoopResult r = sim::run_closed_loop(dev, cl);
    PdamSample sample;
    sample.threads = threads;
    sample.seconds = sim::to_seconds(r.makespan);
    sample.total_bytes = r.total_bytes;
    result.samples[i] = sample;
  });
  result.fit = fit_pdam(result.samples);
  return result;
}

MqExperimentResult run_mq_experiment(const sim::SsdConfig& ssd,
                                     MqExperimentConfig config) {
  MqExperimentResult result;
  result.samples.resize(config.client_counts.size());
  result.pdam_samples.resize(config.client_counts.size());
  parallel_sweep(config.client_counts.size(), config.threads, [&](size_t i) {
    const int clients = config.client_counts[i];
    sim::MqSsdDevice dev(ssd);
    sim::ClosedLoopConfig cl;
    cl.clients = clients;
    cl.ios_per_client = config.ios_per_client;
    cl.io_bytes = config.io_bytes;
    cl.seed = config.seed + static_cast<uint64_t>(clients);
    const sim::ClosedLoopResult r = sim::run_closed_loop(dev, cl);
    MqSample sample;
    sample.clients = clients;
    sample.seconds = sim::to_seconds(r.makespan);
    sample.total_ios = r.total_ios;
    result.samples[i] = sample;
    result.pdam_samples[i] = PdamSample{
        clients, sample.seconds, r.total_bytes};
  });
  result.fit = fit_mq(result.samples);
  result.pdam_fit = fit_pdam(result.pdam_samples);
  return result;
}

namespace {

/// EngineConfig for one sweep point: `node_bytes` mapped onto each
/// engine's natural node/run granularity, cache sized by the sweep.
kv::EngineConfig sweep_engine_config(const SweepConfig& config,
                                     uint64_t node_bytes,
                                     uint64_t effective_cache) {
  kv::EngineConfig ecfg;
  ecfg.btree.node_bytes = node_bytes;
  ecfg.btree.cache_bytes = effective_cache;
  ecfg.betree.node_bytes = node_bytes;
  ecfg.betree.cache_bytes = effective_cache;
  ecfg.betree.target_fanout = config.betree_fanout;
  ecfg.betree.pivot_estimate_bytes = config.key_bytes + 8;
  // LSM: the sorted-run granularity plays the node-size role.
  ecfg.lsm.memtable_bytes = std::max<uint64_t>(node_bytes, 4 * kKiB);
  ecfg.lsm.sstable_target_bytes = std::max<uint64_t>(node_bytes, 4 * kKiB);
  ecfg.lsm.block_bytes = std::min<uint64_t>(node_bytes, 4 * kKiB);
  ecfg.lsm.level1_bytes = std::max<uint64_t>(node_bytes * 8, 64 * kKiB);
  // PDAM: a P·B node of roughly node_bytes.
  ecfg.pdam.tree.block_bytes = std::max<uint64_t>(
      512, node_bytes / static_cast<uint64_t>(ecfg.pdam.tree.parallelism));
  ecfg.pdam.buffer_bytes = effective_cache;
  return ecfg;
}

}  // namespace

SweepResult run_nodesize_sweep(const sim::HddConfig& hdd, SweepConfig config) {
  DAMKIT_CHECK(!config.node_sizes.empty());
  SweepResult result;

  kv::WorkloadSpec spec;
  spec.key_space = config.items;
  spec.key_bytes = config.key_bytes;
  spec.value_bytes = config.value_bytes;

  const uint64_t entry_bytes =
      config.key_bytes + config.value_bytes + 6;  // leaf framing
  const uint64_t data_bytes = config.items * entry_bytes;
  const auto cache_bytes = static_cast<uint64_t>(
      config.cache_ratio * static_cast<double>(data_bytes));

  result.points.resize(config.node_sizes.size());
  parallel_sweep(config.node_sizes.size(), config.threads, [&](size_t pi) {
    const uint64_t node_bytes = config.node_sizes[pi];
    sim::HddDevice dev(hdd, config.seed);
    sim::IoContext io(dev);
    // The cache must hold at least a root-to-leaf path; beyond that the
    // configured data ratio governs (the paper's 4 GiB RAM / 16 GiB data).
    const uint64_t effective_cache = std::max(cache_bytes, node_bytes * 4);
    const std::unique_ptr<kv::Dictionary> dict = kv::make_engine(
        config.kind, dev, io,
        sweep_engine_config(config, node_bytes, effective_cache));

    dict->bulk_load(config.items, [&spec](uint64_t i) {
      kv::BulkItem item = kv::bulk_item(i, spec);
      return std::make_pair(std::move(item.key), std::move(item.value));
    });

    Rng rng(config.seed ^ node_bytes);
    SweepPoint point;
    point.node_bytes = node_bytes;
    point.height = dict->height();

    // Random point queries over loaded keys.
    {
      const sim::SimTime before = io.now();
      for (uint64_t q = 0; q < config.queries; ++q) {
        const uint64_t id = rng.uniform(config.items);
        const bool ok =
            dict->get(kv::encode_key(id, config.key_bytes)).has_value();
        DAMKIT_CHECK_MSG(ok, "loaded key missing during sweep");
      }
      point.query_ms = sim::to_seconds(io.now() - before) * 1e3 /
                       static_cast<double>(config.queries);
    }

    // Random inserts (overwrites of uniform keys, the paper's procedure).
    // The timed window includes the final cache flush: at steady state
    // every dirtied node is eventually written back, so charging the
    // write-back to the inserts approximates the sustained per-op cost.
    {
      dev.clear_stats();
      const sim::SimTime before = io.now();
      for (uint64_t u = 0; u < config.inserts; ++u) {
        const uint64_t id = rng.uniform(config.items);
        dict->put(kv::encode_key(id, config.key_bytes),
                  kv::make_value(id ^ 0x5a5a, config.value_bytes));
      }
      dict->flush();
      point.insert_ms = sim::to_seconds(io.now() - before) * 1e3 /
                        static_cast<double>(config.inserts);
      const uint64_t logical =
          config.inserts * (config.key_bytes + config.value_bytes);
      point.write_amp = static_cast<double>(dev.stats().bytes_written) /
                        static_cast<double>(logical);
    }
    point.cache_hit_rate = dict->cache_hit_rate();
    result.points[pi] = point;
  });

  // Affine overlays (the fitted model lines of Figures 2–3): per-IO cost
  // s + t·x with the device's expected parameters, times the number of
  // uncached levels; one scale constant calibrated at the first point.
  const double s = hdd.expected_setup_s();
  const double t = hdd.expected_transfer_s_per_byte();
  const double m_items =
      std::max(1.0, static_cast<double>(cache_bytes) /
                        static_cast<double>(entry_bytes));
  const double n_items = static_cast<double>(config.items);
  auto levels = [&](double fanout) {
    if (n_items <= m_items) return 1.0;
    return std::max(1.0, std::log(n_items / m_items) / std::log(fanout));
  };

  std::vector<double> raw_q, raw_i;
  for (const SweepPoint& p : result.points) {
    const double b = static_cast<double>(p.node_bytes);
    const double b_elems =
        std::max(2.0, b / static_cast<double>(entry_bytes));
    switch (config.kind) {
      // B-tree-shaped overlay: one node-sized IO per uncached level. The
      // LSM and PDAM engines fall back to the same shape (sorted-run /
      // PB-node reads per level), calibrated at the first point like the
      // others.
      case kv::EngineKind::kBTree:
      case kv::EngineKind::kLsm:
      case kv::EngineKind::kPdam: {
        const double l = levels(b_elems);
        raw_q.push_back((s + t * b) * l * 1e3);
        raw_i.push_back((s + t * b) * l * 1e3);
        break;
      }
      case kv::EngineKind::kBeTree:
      case kv::EngineKind::kOptBeTree: {
        const double f = (config.betree_fanout > 0)
                             ? static_cast<double>(config.betree_fanout)
                             : std::sqrt(b / static_cast<double>(
                                                 config.key_bytes + 8));
        const double l = levels(std::max(2.0, f));
        if (config.kind == kv::EngineKind::kBeTree) {
          raw_q.push_back((s + t * b) * l * 1e3);
        } else {
          raw_q.push_back((s + t * (b / f + f * 32.0)) * l * 1e3);
        }
        raw_i.push_back((s + t * b) * (f / b_elems) * l * 1e3);
        break;
      }
    }
  }
  const double qs = (raw_q[0] > 0.0) ? result.points[0].query_ms / raw_q[0]
                                     : 1.0;
  const double is = (raw_i[0] > 0.0) ? result.points[0].insert_ms / raw_i[0]
                                     : 1.0;
  for (size_t i = 0; i < raw_q.size(); ++i) {
    result.affine_query_ms.push_back(raw_q[i] * qs);
    result.affine_insert_ms.push_back(raw_i[i] * is);
  }
  return result;
}

std::vector<WriteAmpPoint> run_write_amp_experiment(const sim::HddConfig& hdd,
                                                    WriteAmpConfig config) {
  DAMKIT_CHECK(!config.node_sizes.empty());
  kv::WorkloadSpec spec;
  spec.key_space = config.items;
  spec.key_bytes = config.key_bytes;
  spec.value_bytes = config.value_bytes;
  const uint64_t entry_bytes = config.key_bytes + config.value_bytes + 6;
  const auto cache_bytes = static_cast<uint64_t>(
      config.cache_ratio * static_cast<double>(config.items * entry_bytes));
  const uint64_t logical =
      config.updates * (config.key_bytes + config.value_bytes);

  std::vector<WriteAmpPoint> out(config.node_sizes.size());
  parallel_sweep(config.node_sizes.size(), config.threads, [&](size_t pi) {
    const uint64_t node_bytes = config.node_sizes[pi];
    WriteAmpPoint point;
    point.node_bytes = node_bytes;
    const uint64_t effective_cache = std::max(cache_bytes, node_bytes * 4);

    const auto measure = [&](kv::EngineKind kind) {
      sim::HddDevice dev(hdd, config.seed);
      sim::IoContext io(dev);
      kv::EngineConfig ecfg;
      ecfg.btree.node_bytes = node_bytes;
      ecfg.btree.cache_bytes = effective_cache;
      ecfg.betree.node_bytes = node_bytes;
      ecfg.betree.cache_bytes = effective_cache;
      ecfg.betree.pivot_estimate_bytes = config.key_bytes + 8;
      const std::unique_ptr<kv::Dictionary> dict =
          kv::make_engine(kind, dev, io, ecfg);
      dict->bulk_load(config.items, [&spec](uint64_t i) {
        kv::BulkItem item = kv::bulk_item(i, spec);
        return std::make_pair(std::move(item.key), std::move(item.value));
      });
      dev.clear_stats();
      Rng rng(config.seed);
      for (uint64_t u = 0; u < config.updates; ++u) {
        const uint64_t id = rng.uniform(config.items);
        dict->put(kv::encode_key(id, config.key_bytes),
                  kv::make_value(id ^ u, config.value_bytes));
      }
      dict->flush();
      return static_cast<double>(dev.stats().bytes_written) /
             static_cast<double>(logical);
    };
    point.btree_write_amp = measure(kv::EngineKind::kBTree);
    point.betree_write_amp = measure(kv::EngineKind::kBeTree);
    out[pi] = point;
  });
  return out;
}

PdamQueryRun run_pdam_tree_queries(const std::vector<uint64_t>& sorted_keys,
                                   const pdam_tree::PdamTreeConfig& config,
                                   const std::vector<int>& client_counts,
                                   uint64_t queries_per_client,
                                   uint64_t seed) {
  const pdam_tree::PdamBTree tree(sorted_keys, config);
  PdamQueryRun run;
  run.global_height = tree.global_height();
  run.node_height = tree.node_height();
  run.node_blocks = tree.node_blocks();
  run.keys = sorted_keys.size();
  for (const int k : client_counts) {
    PdamQueryPoint point;
    point.clients = k;
    point.result = tree.run_queries(k, queries_per_client, seed);
    run.points.push_back(point);
  }
  // Oracle sweep (pure host CPU, no simulated time): the step-driven
  // clients must answer lower_bound exactly. Probes stay within
  // [0, max key]: past the last key the padded descent parks at the final
  // leaf, a rank plain lower_bound cannot express.
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  const uint64_t back = sorted_keys.back();
  for (int i = 0; i < 64 && run.oracle_ok; ++i) {
    const uint64_t probe =
        (i % 2 == 0) ? sorted_keys[rng.uniform(sorted_keys.size())]
                     : rng.next() % (back + (back != ~0ULL ? 1 : 0));
    const auto expect = static_cast<uint64_t>(
        std::lower_bound(sorted_keys.begin(), sorted_keys.end(), probe) -
        sorted_keys.begin());
    run.oracle_ok = tree.lower_bound(probe) == expect;
  }
  return run;
}

}  // namespace damkit::harness
