// ParallelSweep: run independent sweep points on a pool of host threads.
//
// Simulated time is unaffected: every point owns its own device,
// IoContext, and RNG, so results are bit-identical for any thread count —
// threads only shrink host wall-clock. Work is handed out through an
// atomic cursor; each point writes only its own result slot, so no
// ordering between points is observable.
#pragma once

#include <cstddef>
#include <functional>

namespace damkit::harness {

/// Runs fn(i) for every i in [0, n), using up to `threads` host threads
/// (inline when threads <= 1 or n <= 1). fn must touch only state owned
/// by point i; it runs concurrently for distinct i.
void parallel_sweep(size_t n, int threads,
                    const std::function<void(size_t)>& fn);

}  // namespace damkit::harness
