// WorkloadRunner: the one generic workload driver. Benches, the CLI,
// integration tests, and examples all drive any kv::Dictionary — a bare
// tree from EngineFactory or a ShardedEngine composition — through these
// loops instead of carrying per-tree copies of setup/drive/teardown code.
//
// Three entry points, by what the caller needs reproduced:
//   - run(): OpGenerator-driven mixed workload with a result digest, for
//     cross-engine differential comparison and generic driving.
//   - run_put_get(): the fixed put/get/scan loop the benches and the CLI
//     have always used, byte-for-byte (same RNG draws, same key strings),
//     so pre-refactor simulated times are preserved exactly.
//   - run_fault_soak(): the fault-injection soak from the integration
//     tests — fallible ops against a reference model with old-or-new
//     uncertainty for failed mutations, checkpoint-until-clean, then a
//     full verification sweep. Violations are reported as strings so the
//     harness stays gtest-free.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "kv/dictionary.h"
#include "kv/workload.h"
#include "serve/scheduler.h"
#include "sim/device.h"
#include "util/histogram.h"

namespace damkit::harness {

// ---------------------------------------------------------------------------
// Generic OpGenerator-driven run.
// ---------------------------------------------------------------------------

struct WorkloadRunOptions {
  /// Drive the try_* twins; non-OK ops count as failed instead of aborting.
  bool fallible = false;
  /// Write back all dirty state after the op stream (charged to the run).
  bool flush_at_end = true;
};

struct WorkloadRunResult {
  uint64_t puts = 0, gets = 0, erases = 0, scans = 0, upserts = 0;
  uint64_t get_hits = 0;
  uint64_t failed_ops = 0;
  /// FNV-1a over every observed read result (get presence + value bytes,
  /// scan pairs). Two engines given the same spec and op count agree on
  /// this digest iff they returned identical data.
  uint64_t digest = 14695981039346656037ULL;
  sim::SimTime sim_elapsed = 0;
};

/// run_concurrent(): the serving-layer entry point. The base fields mirror
/// run() exactly — same counters, same digest, same serial simulated time
/// — plus the concurrent timeline computed by serve::Scheduler.
struct ConcurrentRunOptions {
  /// Client sessions (the CLI/bench --clients flag).
  uint64_t clients = 1;
  /// Per-client admission depth (--inflight).
  uint64_t inflight = 4;
  bool fallible = false;
  bool flush_at_end = true;
  /// Fresh same-timing device for the concurrent replay; when absent the
  /// concurrent timeline equals the serial one (see serve::ServeConfig).
  std::function<std::unique_ptr<sim::Device>()> replay_device_factory;
  /// Dispatch-lane map (die/shard) for replay; default single lane.
  std::function<size_t(uint64_t)> lane_of;
  size_t lanes = 1;
};

struct ConcurrentRunResult {
  /// Identical to what run() would report for the same (spec, ops).
  WorkloadRunResult base;
  sim::SimTime concurrent_elapsed = 0;
  double speedup = 1.0;
  double throughput_ops_per_sec = 0.0;
  Histogram latency;  // per-op ns under concurrency
  uint64_t batches = 0;
  uint64_t batch_ios = 0;
  std::vector<uint64_t> lane_ios;
  uint64_t max_lane_depth = 0;
};

class WorkloadRunner {
 public:
  WorkloadRunner(kv::Dictionary& dict, sim::IoContext& io)
      : dict_(&dict), io_(&io) {}

  /// Bulk-load `items` sorted pairs from kv::bulk_item(i, spec).
  void bulk_load(uint64_t items, const kv::WorkloadSpec& spec);

  /// Drive `ops` operations drawn from `spec`'s distribution and mix.
  /// Deterministic for a given (spec, ops): engine choice never changes
  /// which ops run or what values they write.
  WorkloadRunResult run(const kv::WorkloadSpec& spec, uint64_t ops,
                        const WorkloadRunOptions& options = {});

  /// Serve the same op stream through k concurrent client sessions (see
  /// serve::Scheduler). Digest and counters equal run()'s by construction;
  /// the concurrent makespan, speedup, and latency tails are added on top.
  ConcurrentRunResult run_concurrent(const kv::WorkloadSpec& spec,
                                     uint64_t ops,
                                     const ConcurrentRunOptions& options = {});

  kv::Dictionary& dictionary() { return *dict_; }

 private:
  kv::Dictionary* dict_;
  sim::IoContext* io_;
};

// ---------------------------------------------------------------------------
// The legacy fixed loop (bench_smoke, damkit_cli) — byte-exact.
// ---------------------------------------------------------------------------

struct PutGetSpec {
  uint64_t puts = 0;
  uint64_t gets = 0;
  /// Key ids are rng.next() % key_modulus, matching the historical loops.
  uint64_t key_modulus = 1;
  size_t value_bytes = 100;
  uint64_t seed = 0;
  /// id → key string (each caller keeps its exact historical format).
  std::function<std::string(uint64_t)> key_of;
  /// Scans issued after the gets, each from key_of(0), this many pairs.
  uint64_t scans = 0;
  size_t scan_limit = 0;
  /// Use try_* twins and CHECK-fail on non-OK (the CLI's fault-free path).
  bool fallible = false;
  /// With fallible: count non-OK ops instead of CHECK-failing (the CLI's
  /// fault-injection path, where surfaced give-ups are expected).
  bool tolerate_failures = false;
};

struct PutGetResult {
  uint64_t failed_ops = 0;
  uint64_t get_hits = 0;
};

/// puts × put(key_of(rng.next() % modulus), 'v'*value_bytes), then gets ×
/// get(same draw), then the scans. RNG draw order is identical to the
/// loops this replaces, so simulated time is too.
PutGetResult run_put_get(kv::Dictionary& dict, const PutGetSpec& spec);

/// checkpoint() until OK, at most `max_attempts` extra draws; returns the
/// last status (OK iff the checkpoint landed).
Status checkpoint_with_retries(kv::Dictionary& dict, int max_attempts);

// ---------------------------------------------------------------------------
// Fault soak (integration tests).
// ---------------------------------------------------------------------------

struct SoakSpec {
  uint64_t ops = 4000;
  uint64_t key_space = 4000;
  size_t value_bytes = 100;
  uint64_t seed = 0;
  int checkpoint_attempts = 200;
  int verify_read_attempts = 200;
};

struct SoakReport {
  uint64_t ok_ops = 0;
  uint64_t failed_ops = 0;
  bool checkpoint_ok = false;
  /// Human-readable contract violations (phantom/lost/mismatched keys,
  /// checkpoint or verify failures). Empty on a clean soak.
  std::vector<std::string> violations;
};

/// Mixed put/erase/get soak through the try_* APIs against a reference
/// model. Failed mutations mark their key "uncertain" (old-or-new state is
/// both legal); everything that reported success must be durable, verified
/// by a final sweep after checkpoint-until-clean.
SoakReport run_fault_soak(kv::Dictionary& dict, const SoakSpec& spec);

}  // namespace damkit::harness
