#include "harness/crash.h"

#include <string>
#include <utility>
#include <vector>

#include "kv/op_apply.h"
#include "sim/fault_injection.h"
#include "sim/profiles.h"
#include "sim/ssd.h"

namespace damkit::harness {

namespace {

bool is_mutation(const kv::Op& op) {
  return op.type == kv::OpType::kPut || op.type == kv::OpType::kDelete ||
         op.type == kv::OpType::kUpsert;
}

uint64_t count_mutations(const kv::WorkloadSpec& spec, uint64_t ops) {
  kv::OpGenerator gen(spec);
  uint64_t n = 0;
  for (uint64_t i = 0; i < ops; ++i) {
    if (is_mutation(gen.next())) ++n;
  }
  return n;
}

void bulk_load_items(kv::Dictionary& dict, uint64_t items,
                     const kv::WorkloadSpec& spec) {
  if (items == 0) return;
  dict.bulk_load(items, [&spec](uint64_t i) {
    kv::BulkItem item = kv::bulk_item(i, spec);
    return std::make_pair(std::move(item.key), std::move(item.value));
  });
}

}  // namespace

uint64_t state_digest(kv::Dictionary& dict) {
  uint64_t h = kv::kFnvOffsetBasis;
  constexpr size_t kChunk = 512;
  std::string lo;
  while (true) {
    const std::vector<std::pair<std::string, std::string>> rows =
        dict.range_scan(lo, kChunk);
    for (const auto& [k, v] : rows) {
      kv::fnv_mix(&h, k);
      kv::fnv_mix(&h, v);
    }
    if (rows.size() < kChunk) break;
    // The shortest key strictly greater than the last one seen.
    lo = rows.back().first;
    lo.push_back('\0');
  }
  return h;
}

namespace {

std::unique_ptr<sim::Device> make_cycle_device(const CrashCycleSpec& spec) {
  if (spec.make_device) return spec.make_device();
  return std::make_unique<sim::SsdDevice>(sim::testbed_ssd_profile());
}

}  // namespace

uint64_t reference_state_digest(const CrashCycleSpec& spec) {
  const std::unique_ptr<sim::Device> dev_holder = make_cycle_device(spec);
  sim::Device& dev = *dev_holder;
  sim::IoContext io(dev);
  const std::unique_ptr<kv::Dictionary> dict = spec.make_engine(dev, io);
  bulk_load_items(*dict, spec.bulk_items, spec.workload);
  kv::OpGenerator gen(spec.workload);
  uint64_t read_digest = kv::kFnvOffsetBasis;
  kv::ApplyCounters counters;
  for (uint64_t i = 0; i < spec.ops; ++i) {
    kv::apply_op(*dict, gen.next(), i, spec.workload, {}, &read_digest,
                 &counters);
  }
  dict->flush();
  return state_digest(*dict);
}

CrashCycleReport run_crash_cycle(const CrashCycleSpec& spec,
                                 uint64_t reference_digest) {
  CrashCycleReport report;
  report.reference_digest = reference_digest;
  report.mutations_total = count_mutations(spec.workload, spec.ops);

  const std::unique_ptr<sim::Device> inner_dev = make_cycle_device(spec);
  sim::FaultConfig faults;  // zero rates: the crash is the only fault
  faults.seed = spec.fault_seed;
  sim::FaultInjectingDevice dev(*inner_dev, faults);
  sim::IoContext io(dev);
  const wal::DurabilityConfig dcfg = spec.durability.value_or(
      wal::default_durability_config(dev.capacity_bytes()));

  // Phase 1: fresh durable engine, setup, arm the crash, drive until the
  // device dies (or the stream ends).
  auto eng = std::make_unique<wal::DurableEngine>(spec.make_engine(dev, io),
                                                  dev, io, dcfg);
  bulk_load_items(*eng, spec.bulk_items, spec.workload);
  const uint64_t armed_base = dev.checked_ios();
  if (spec.crash_after_ios > 0) {
    dev.set_crash_at(armed_base + spec.crash_after_ios);
  }

  kv::OpGenerator gen(spec.workload);
  uint64_t read_digest = kv::kFnvOffsetBasis;
  kv::ApplyCounters counters;
  kv::ApplyOptions fallible;
  fallible.fallible = true;
  for (uint64_t i = 0; i < spec.ops && !dev.crashed(); ++i) {
    kv::apply_op(*eng, gen.next(), i, spec.workload, fallible, &read_digest,
                 &counters);
    if (spec.checkpoint_every_ops != 0 &&
        (i + 1) % spec.checkpoint_every_ops == 0) {
      // May fail when the crash lands inside it — recovery handles that.
      (void)eng->checkpoint();
    }
  }
  report.post_setup_ios = dev.checked_ios() - armed_base;
  report.crashed = dev.crashed();

  if (!report.crashed) {
    // Clean run: nothing to recover; the wrapper must still agree with the
    // unwrapped reference.
    eng->flush();
    report.durable_mutations = eng->durable_mutations();
    report.final_digest = state_digest(*eng);
    report.recovered_digest = report.final_digest;
    report.rerecovered_digest = report.final_digest;
    return report;
  }

  // Phase 2: the crash. Drop all volatile state — buffered WAL records and
  // dirty cache pages die here by definition — then bring the device back.
  eng->abandon();
  eng.reset();
  dev.reboot();

  // Phase 3: recover twice. Recovery writes nothing but the tail seal, so
  // the second pass must land on bit-identical state (idempotence).
  const auto make_inner = [&spec, &dev, &io] {
    return spec.make_engine(dev, io);
  };
  StatusOr<std::unique_ptr<wal::DurableEngine>> first =
      wal::DurableEngine::recover(make_inner, dev, io, dcfg, &report.recovery);
  DAMKIT_CHECK_OK(first.status());
  report.recovered_digest = state_digest(**first);
  const uint64_t first_durable = (*first)->durable_mutations();
  (*first).reset();  // normal teardown: the device is healthy again

  StatusOr<std::unique_ptr<wal::DurableEngine>> second =
      wal::DurableEngine::recover(make_inner, dev, io, dcfg, nullptr);
  DAMKIT_CHECK_OK(second.status());
  std::unique_ptr<wal::DurableEngine> recovered = std::move(*second);
  report.rerecovered_digest = state_digest(*recovered);
  report.durable_mutations = recovered->durable_mutations();
  DAMKIT_CHECK_MSG(report.durable_mutations == first_durable,
                   "double recovery disagreed on the durable prefix: "
                       << first_durable << " then "
                       << report.durable_mutations);

  // Phase 4: resume. Regenerate the op stream and skip exactly the
  // mutations that survived — interleaved reads mutate nothing, so
  // skipping them preserves the final state. Put values depend on the
  // GLOBAL op index, so the suffix is applied under its original indices.
  kv::OpGenerator resume_gen(spec.workload);
  uint64_t skipped = 0;
  uint64_t idx = 0;
  while (skipped < report.durable_mutations) {
    DAMKIT_CHECK_MSG(idx < spec.ops,
                     "durable prefix of " << report.durable_mutations
                                          << " mutations exceeds the stream");
    if (is_mutation(resume_gen.next())) ++skipped;
    ++idx;
  }
  for (; idx < spec.ops; ++idx) {
    kv::apply_op(*recovered, resume_gen.next(), idx, spec.workload, {},
                 &read_digest, &counters);
    ++report.resumed_ops;
  }
  recovered->flush();
  report.final_digest = state_digest(*recovered);
  return report;
}

}  // namespace damkit::harness
