#include "harness/report.h"

#include <cstdio>

#include "util/bytes.h"

namespace damkit::harness {

Table make_affine_table(
    const std::vector<std::pair<std::string, AffineExperimentResult>>& rows) {
  Table t({"Disk", "s (s)", "t (s/4K)", "alpha", "R^2"});
  for (const auto& [name, res] : rows) {
    t.add_row({name, strfmt("%.4f", res.fit.s),
               strfmt("%.6f", res.fit.t_per_4k),
               strfmt("%.4f", res.fit.alpha), strfmt("%.4f", res.fit.r2)});
  }
  return t;
}

Table make_pdam_table(
    const std::vector<std::pair<std::string, PdamExperimentResult>>& rows) {
  Table t({"Device", "P", "~PB (MB/s)", "R^2"});
  for (const auto& [name, res] : rows) {
    t.add_row({name, strfmt("%.1f", res.fit.p),
               strfmt("%.0f", res.fit.saturated_mbps),
               strfmt("%.3f", res.fit.r2)});
  }
  return t;
}

Table make_pdam_figure(
    const std::vector<std::pair<std::string, PdamExperimentResult>>& rows) {
  std::vector<std::string> header{"threads"};
  header.reserve(rows.size() + 1);
  for (const auto& [name, res] : rows) {
    header.push_back(name + " (s)");
  }
  Table t(std::move(header));
  if (rows.empty()) return t;
  const size_t points = rows.front().second.samples.size();
  for (size_t i = 0; i < points; ++i) {
    std::vector<std::string> cells;
    cells.push_back(
        strfmt("%d", rows.front().second.samples[i].threads));
    for (const auto& [name, res] : rows) {
      cells.push_back(strfmt("%.2f", res.samples[i].seconds));
    }
    t.add_row(std::move(cells));
  }
  return t;
}

Table make_sweep_figure(const SweepResult& result) {
  Table t({"node size", "query (ms/op)", "insert (ms/op)",
           "affine query (ms)", "affine insert (ms)", "write amp", "height",
           "cache hit"});
  for (size_t i = 0; i < result.points.size(); ++i) {
    const SweepPoint& p = result.points[i];
    t.add_row({format_bytes(p.node_bytes), strfmt("%.2f", p.query_ms),
               strfmt("%.2f", p.insert_ms),
               strfmt("%.2f", result.affine_query_ms[i]),
               strfmt("%.2f", result.affine_insert_ms[i]),
               strfmt("%.1f", p.write_amp), strfmt("%zu", p.height),
               strfmt("%.2f", p.cache_hit_rate)});
  }
  return t;
}

std::string emit(const std::string& caption, const Table& table,
                 const std::string& csv_path) {
  std::string out = "\n== " + caption + " ==\n" + table.to_string();
  std::fputs(out.c_str(), stdout);
  std::fflush(stdout);
  if (!csv_path.empty()) {
    if (!table.write_csv(csv_path)) {
      std::fprintf(stderr, "warning: could not write %s\n", csv_path.c_str());
    }
  }
  return out;
}

}  // namespace damkit::harness
