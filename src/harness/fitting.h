// Fitting measured device behaviour to the affine and PDAM models — the
// §4 methodology: issue microbenchmarks, then regress.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.h"

namespace damkit::harness {

/// One point of the §4.2 experiment: mean time of random reads of a size.
struct AffineSample {
  uint64_t io_bytes = 0;
  double seconds = 0.0;  // mean seconds per IO at this size
};

/// Affine-model parameters recovered by OLS (Table 2 columns).
struct AffineFit {
  double s = 0.0;           // setup seconds (intercept)
  double t_per_byte = 0.0;  // transfer seconds per byte (slope)
  double t_per_4k = 0.0;    // the paper reports t per 4096 bytes
  double alpha = 0.0;       // t_per_4k-normalized? No: alpha = t/s per *block*
  double r2 = 0.0;
  double rms = 0.0;
};

/// OLS of seconds against io_bytes. `alpha` follows the paper's Table 2
/// convention: α = t/s with t in seconds per 4 KiB block.
AffineFit fit_affine(const std::vector<AffineSample>& samples);

/// One point of the §4.1 experiment: total time for p threads to each
/// complete their reads.
struct PdamSample {
  int threads = 0;
  double seconds = 0.0;      // makespan
  uint64_t total_bytes = 0;  // bytes moved in this round
};

/// PDAM parameters recovered by segmented linear regression (Table 1).
struct PdamFit {
  double p = 0.0;              // effective parallelism (segment intersection)
  double saturated_mbps = 0.0; // ∝ PB: throughput on the saturated segment
  double r2 = 0.0;
  SegmentedFit segments;       // full regression detail
};

PdamFit fit_pdam(const std::vector<PdamSample>& samples);

}  // namespace damkit::harness
