// Fitting measured device behaviour to the affine and PDAM models — the
// §4 methodology: issue microbenchmarks, then regress.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.h"

namespace damkit::harness {

/// One point of the §4.2 experiment: mean time of random reads of a size.
struct AffineSample {
  uint64_t io_bytes = 0;
  double seconds = 0.0;  // mean seconds per IO at this size
};

/// Affine-model parameters recovered by OLS (Table 2 columns).
struct AffineFit {
  double s = 0.0;           // setup seconds (intercept)
  double t_per_byte = 0.0;  // transfer seconds per byte (slope)
  double t_per_4k = 0.0;    // the paper reports t per 4096 bytes
  double alpha = 0.0;       // t_per_4k-normalized? No: alpha = t/s per *block*
  double r2 = 0.0;
  double rms = 0.0;
};

/// OLS of seconds against io_bytes. `alpha` follows the paper's Table 2
/// convention: α = t/s with t in seconds per 4 KiB block.
AffineFit fit_affine(const std::vector<AffineSample>& samples);

/// One point of the §4.1 experiment: total time for p threads to each
/// complete their reads.
struct PdamSample {
  int threads = 0;
  double seconds = 0.0;      // makespan
  uint64_t total_bytes = 0;  // bytes moved in this round
};

/// PDAM parameters recovered by segmented linear regression (Table 1).
struct PdamFit {
  double p = 0.0;              // effective parallelism (segment intersection)
  double saturated_mbps = 0.0; // ∝ PB: throughput on the saturated segment
  double r2 = 0.0;
  SegmentedFit segments;       // full regression detail
};

PdamFit fit_pdam(const std::vector<PdamSample>& samples);

/// One point of the MQ sweep: makespan of `clients` closed-loop streams
/// issuing `total_ios` block IOs in total against a multi-queue device.
struct MqSample {
  int clients = 0;
  double seconds = 0.0;      // makespan
  uint64_t total_ios = 0;    // IOs completed in this round
};

/// MQ-model parameters (model::MqModel) recovered from the sweep: the
/// linear latency law lat(q) = l0 + beta·(q−1) by OLS over the
/// latency-limited points, plus the flash-side throughput ceiling.
struct MqFit {
  double l0_s = 0.0;            // lat(1): base per-IO latency
  double beta_s = 0.0;          // added latency per outstanding command
  double saturated_iops = 0.0;  // flash-core ceiling (IOs per second)
  double r2 = 0.0;              // of the full min(q/lat, sat) model
};

/// Fits the MQ latency law. Each sample yields an effective per-IO time
/// seconds·clients/total_ios = max(lat(q), q/sat); points at ≥85% of the
/// best observed throughput are treated as ceiling-limited and excluded
/// from the latency OLS (they'd bend the line the ceiling explains).
MqFit fit_mq(const std::vector<MqSample>& samples);

}  // namespace damkit::harness
