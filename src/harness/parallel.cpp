#include "harness/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

namespace damkit::harness {

void parallel_sweep(size_t n, int threads,
                    const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers =
      std::min<size_t>(n, threads > 1 ? static_cast<size_t>(threads) : 1);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Atomic work cursor: points vary wildly in cost (large node sizes are
  // slower to simulate), so dynamic handout beats static striping.
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i);
      }
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace damkit::harness
