#include "blockdev/codec.h"

#include <cstdlib>
#include <cstring>

#include "util/status.h"

namespace damkit::blockdev {

namespace {

constexpr uint8_t kModeRaw = 0;
constexpr uint8_t kModeTokens = 1;

// Fibonacci hash of the next 4/8 bytes at `p` into `bits` buckets.
inline uint32_t hash4(const uint8_t* p, int bits) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - bits);
}
inline uint32_t hash8(const uint8_t* p, int bits) {
  uint64_t v;
  std::memcpy(&v, p, 8);
  return static_cast<uint32_t>((v * 0x9e3779b97f4a7c15ULL) >> (64 - bits));
}

inline size_t match_length(const uint8_t* a, const uint8_t* b,
                           const uint8_t* end) {
  const uint8_t* start = a;
  while (a < end && *a == *b) {
    ++a;
    ++b;
  }
  return static_cast<size_t>(a - start);
}

// Emit [lit][match] token pairs. `emit_match(len, dist)` follows each
// literal run except the final one.
class TokenWriter {
 public:
  TokenWriter(std::span<const uint8_t> raw, std::vector<uint8_t>& out)
      : raw_(raw), out_(&out) {}

  void emit_match(size_t pos, size_t len, size_t dist) {
    put_uvarint(*out_, pos - lit_start_);
    out_->insert(out_->end(), raw_.begin() + static_cast<ptrdiff_t>(lit_start_),
                 raw_.begin() + static_cast<ptrdiff_t>(pos));
    put_uvarint(*out_, len);
    put_uvarint(*out_, dist);
    lit_start_ = pos + len;
  }

  void finish() {
    put_uvarint(*out_, raw_.size() - lit_start_);
    out_->insert(out_->end(), raw_.begin() + static_cast<ptrdiff_t>(lit_start_),
                 raw_.end());
  }

 private:
  std::span<const uint8_t> raw_;
  std::vector<uint8_t>* out_;
  size_t lit_start_ = 0;
};

}  // namespace

std::string_view codec_kind_name(CodecKind kind) {
  switch (kind) {
    case CodecKind::kIdentity:
      return "identity";
    case CodecKind::kPrefix:
      return "prefix";
    case CodecKind::kLz:
      return "lz";
    case CodecKind::kDefault:
      return "default";
  }
  return "unknown";
}

std::optional<CodecKind> parse_codec_kind(std::string_view name) {
  for (const CodecKind kind : kAllCodecKinds) {
    if (codec_kind_name(kind) == name) return kind;
  }
  if (name == "default") return CodecKind::kDefault;
  return std::nullopt;
}

CodecKind resolve_codec_kind(CodecKind kind) {
  if (kind != CodecKind::kDefault) return kind;
  const char* env = std::getenv("DAMKIT_CODEC");
  if (env != nullptr && *env != '\0') {
    const std::optional<CodecKind> parsed = parse_codec_kind(env);
    if (parsed.has_value() && *parsed != CodecKind::kDefault) return *parsed;
  }
  return CodecKind::kIdentity;
}

void CodecStats::export_metrics(stats::MetricsRegistry& reg,
                                std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "encode_calls", encode_calls);
  reg.add(p + "decode_calls", decode_calls);
  reg.add(p + "raw_bytes", raw_bytes);
  reg.add(p + "encoded_bytes", encoded_bytes);
  reg.add(p + "raw_fallbacks", raw_fallbacks);
  reg.set(p + "ratio", ratio());
  reg.set(p + "bytes_saved", static_cast<double>(bytes_saved()));
}

BlockCodec::~BlockCodec() = default;

void BlockCodec::encode(std::span<const uint8_t> raw,
                        std::vector<uint8_t>& out) const {
  out.clear();
  put_uvarint(out, raw.size());
  out.push_back(kModeTokens);
  const size_t header = out.size();
  bool tokens = encode_tokens(raw, out);
  // A token stream no smaller than the input is worse than storing raw.
  if (tokens && out.size() - header >= raw.size()) tokens = false;
  if (!tokens) {
    out.resize(header);
    out[header - 1] = kModeRaw;
    out.insert(out.end(), raw.begin(), raw.end());
    ++stats_.raw_fallbacks;
  }
  ++stats_.encode_calls;
  stats_.raw_bytes += raw.size();
  stats_.encoded_bytes += out.size();
}

bool BlockCodec::decode(std::span<const uint8_t> frame,
                        std::vector<uint8_t>& out) const {
  ++stats_.decode_calls;
  out.clear();
  size_t pos = 0;
  uint64_t raw_len = 0;
  if (!get_uvarint(frame, pos, &raw_len)) return false;
  if (pos >= frame.size()) return false;  // mode byte is always present
  const uint8_t mode = frame[pos++];
  out.reserve(raw_len);
  if (mode == kModeRaw) {
    if (frame.size() - pos != raw_len) return false;  // exact: no trailing
    out.assign(frame.begin() + static_cast<ptrdiff_t>(pos),
               frame.begin() + static_cast<ptrdiff_t>(pos + raw_len));
    return true;
  }
  if (mode != kModeTokens) return false;
  // The stream is [lit][match]...[lit]: every match is followed by another
  // literal run, and the final run may be empty (the encoder always closes
  // with one).
  for (;;) {
    uint64_t lit_len = 0;
    if (!get_uvarint(frame, pos, &lit_len)) return false;
    if (lit_len > raw_len - out.size() || frame.size() - pos < lit_len) {
      return false;
    }
    out.insert(out.end(), frame.begin() + static_cast<ptrdiff_t>(pos),
               frame.begin() + static_cast<ptrdiff_t>(pos + lit_len));
    pos += lit_len;
    if (out.size() == raw_len) return pos == frame.size();
    uint64_t match_len = 0;
    uint64_t dist = 0;
    if (!get_uvarint(frame, pos, &match_len)) return false;
    if (!get_uvarint(frame, pos, &dist)) return false;
    if (match_len == 0 || dist == 0 || dist > out.size() ||
        match_len > raw_len - out.size()) {
      return false;
    }
    // Byte-at-a-time copy: overlapping matches (dist < match_len) replay
    // their own output, run-length style.
    size_t from = out.size() - dist;
    for (uint64_t i = 0; i < match_len; ++i) out.push_back(out[from + i]);
  }
}

bool IdentityCodec::encode_tokens(std::span<const uint8_t> raw,
                                  std::vector<uint8_t>& out) const {
  (void)raw;
  (void)out;
  return false;  // always frame verbatim
}

bool PrefixDeltaCodec::encode_tokens(std::span<const uint8_t> raw,
                                     std::vector<uint8_t>& out) const {
  constexpr size_t kMinMatch = 8;
  constexpr int kHashBits = 15;
  if (raw.size() < kMinMatch) return false;
  std::vector<uint32_t> last(1u << kHashBits, 0);
  std::vector<bool> seen(1u << kHashBits, false);
  const uint8_t* base = raw.data();
  const uint8_t* end = base + raw.size();
  TokenWriter tokens(raw, out);
  size_t pos = 0;
  const size_t limit = raw.size() - kMinMatch;
  while (pos <= limit) {
    const uint32_t h = hash8(base + pos, kHashBits);
    const size_t candidate = last[h];
    const bool have = seen[h];
    last[h] = static_cast<uint32_t>(pos);
    seen[h] = true;
    if (have) {
      const size_t len = match_length(base + pos, base + candidate, end);
      if (len >= kMinMatch) {
        tokens.emit_match(pos, len, pos - candidate);
        // Seed the table sparsely inside the match so the *next* record's
        // shared prefix still finds this one.
        for (size_t i = pos + 1; i + kMinMatch <= pos + len; i += kMinMatch) {
          const uint32_t hi = hash8(base + i, kHashBits);
          last[hi] = static_cast<uint32_t>(i);
          seen[hi] = true;
        }
        pos += len;
        continue;
      }
    }
    ++pos;
  }
  tokens.finish();
  return true;
}

bool LzCodec::encode_tokens(std::span<const uint8_t> raw,
                            std::vector<uint8_t>& out) const {
  constexpr size_t kMinMatch = 4;
  constexpr int kHashBits = 15;
  constexpr int kMaxChain = 32;
  if (raw.size() < kMinMatch) return false;
  constexpr uint32_t kNil = 0xffffffffu;
  std::vector<uint32_t> head(1u << kHashBits, kNil);
  std::vector<uint32_t> prev(raw.size(), kNil);
  const uint8_t* base = raw.data();
  const uint8_t* end = base + raw.size();
  const auto insert = [&](size_t p) {
    const uint32_t h = hash4(base + p, kHashBits);
    prev[p] = head[h];
    head[h] = static_cast<uint32_t>(p);
  };
  TokenWriter tokens(raw, out);
  size_t pos = 0;
  const size_t limit = raw.size() - kMinMatch;
  while (pos <= limit) {
    size_t best_len = 0;
    size_t best_pos = 0;
    uint32_t candidate = head[hash4(base + pos, kHashBits)];
    for (int depth = 0; candidate != kNil && depth < kMaxChain; ++depth) {
      const size_t len = match_length(base + pos, base + candidate, end);
      if (len > best_len) {
        best_len = len;
        best_pos = candidate;
      }
      candidate = prev[candidate];
    }
    if (best_len >= kMinMatch) {
      tokens.emit_match(pos, best_len, pos - best_pos);
      const size_t stop = std::min(pos + best_len, limit + 1);
      for (size_t i = pos; i < stop; ++i) insert(i);
      pos += best_len;
    } else {
      insert(pos);
      ++pos;
    }
  }
  tokens.finish();
  return true;
}

std::unique_ptr<BlockCodec> make_codec(CodecKind kind) {
  switch (resolve_codec_kind(kind)) {
    case CodecKind::kIdentity:
      return std::make_unique<IdentityCodec>();
    case CodecKind::kPrefix:
      return std::make_unique<PrefixDeltaCodec>();
    case CodecKind::kLz:
      return std::make_unique<LzCodec>();
    case CodecKind::kDefault:
      break;  // unreachable: resolve_codec_kind never returns kDefault
  }
  DAMKIT_CHECK_MSG(false, "unresolved codec kind");
  return nullptr;
}

}  // namespace damkit::blockdev
