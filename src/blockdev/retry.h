// Retry-with-backoff for transient device faults.
//
// A RetryPolicy bounds how many times a fallible IO is re-attempted and
// how much *simulated* time each backoff costs — retries are not free:
// every re-attempt occupies the device again and every backoff advances
// the caller's IoContext clock, so fault handling shows up honestly in
// measured simulated seconds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>

#include "sim/device.h"
#include "util/status.h"

namespace damkit::blockdev {

/// `max_attempts` counts total tries (1 = fail fast, no retry). Attempt
/// k+1 is preceded by a simulated wait of backoff_ns * multiplier^(k-1).
struct RetryPolicy {
  uint32_t max_attempts = 3;
  sim::SimTime backoff_ns = 50 * sim::kNsPerUs;
  double backoff_multiplier = 2.0;
};

struct RetryCounters {
  uint64_t retries = 0;   // individual re-attempts after a retryable failure
  uint64_t give_ups = 0;  // requests abandoned with a non-OK status
};

/// Run `attempt` until it returns OK or the policy is exhausted, charging
/// each inter-attempt backoff to `io`. Transient (kUnavailable) failures
/// are always retryable; kCorruption is retryable only when
/// `retry_corruption` is set (a torn *write* is repaired by rewriting the
/// extent in full; a corrupt read has nothing to retry into). Any other
/// code surfaces immediately.
template <typename Fn>
Status with_retries(sim::IoContext& io, const RetryPolicy& policy,
                    RetryCounters* counters, bool retry_corruption,
                    Fn&& attempt) {
  const uint32_t max_attempts = std::max<uint32_t>(policy.max_attempts, 1);
  double backoff = static_cast<double>(policy.backoff_ns);
  Status s = attempt();
  for (uint32_t tries = 1; !s.ok(); ++tries) {
    const bool retryable =
        s.code() == StatusCode::kUnavailable ||
        (retry_corruption && s.code() == StatusCode::kCorruption);
    if (!retryable || tries >= max_attempts) {
      if (counters != nullptr) ++counters->give_ups;
      return s;
    }
    io.spend(static_cast<sim::SimTime>(backoff));
    backoff *= policy.backoff_multiplier;
    if (counters != nullptr) ++counters->retries;
    s = attempt();
  }
  return s;
}

}  // namespace damkit::blockdev
