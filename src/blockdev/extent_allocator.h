// Fixed-size extent allocator: hands out node slots on a simulated device.
// Slot ids are dense and stable; freed slots are recycled LIFO (a freed
// slot is usually still warm in the device's mechanical neighbourhood).
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace damkit::blockdev {

class ExtentAllocator {
 public:
  /// Manages `slot_count` extents of `slot_bytes` starting at `base_offset`.
  ExtentAllocator(uint64_t base_offset, uint64_t slot_bytes,
                  uint64_t slot_count);

  /// Allocate a slot id; returns kResourceExhausted when every slot is in
  /// use.
  StatusOr<uint64_t> try_allocate();

  /// CHECK-failing allocate for callers that size devices generously
  /// enough that exhaustion is a config bug.
  uint64_t allocate();

  void free(uint64_t slot);

  uint64_t offset_of(uint64_t slot) const {
    DAMKIT_CHECK(slot < slot_count_);
    return base_offset_ + slot * slot_bytes_;
  }

  uint64_t slot_bytes() const { return slot_bytes_; }
  uint64_t slots_in_use() const { return next_fresh_ - free_list_.size(); }
  uint64_t slot_count() const { return slot_count_; }

 private:
  uint64_t base_offset_;
  uint64_t slot_bytes_;
  uint64_t slot_count_;
  uint64_t next_fresh_ = 0;          // never-yet-allocated watermark
  std::vector<uint64_t> free_list_;  // recycled ids, LIFO
  // Double-free/stale-free detection. Always present: conditional members
  // would make the ABI depend on NDEBUG, and a vector<bool> per slot is
  // cheap next to the simulated device state.
  std::vector<bool> allocated_;
};

}  // namespace damkit::blockdev
