// Pluggable block codecs for node / SSTable-block images.
//
// The affine model prices an IO at 1 + αx, so every byte a codec removes
// from a stored image saves α on the transfer term while the setup term
// is untouched — compression is a pure shrink of the *effective* α, which
// is exactly the kind of constant-factor refinement the paper argues
// changes design conclusions (optimal node sizes shift as α shrinks).
//
// A codec turns a raw image into a self-describing frame:
//
//   [uvarint raw_len][u8 mode][payload]
//
// mode 0 stores the payload verbatim (incompressible input costs at most
// the ~6-byte header); mode 1 stores an LZ77 token stream:
//
//   repeat until raw_len bytes are produced:
//     [uvarint lit_len][lit_len literal bytes]
//     [uvarint match_len][uvarint distance]     (omitted at end-of-frame)
//
// Matches may overlap their output (distance 1 replays the previous byte,
// which is how zero padding and repeated fragments collapse). The frame
// format is shared by every codec, so any codec can decode any frame —
// kinds differ only in how hard encode() searches for matches:
//
//   kPrefix — one candidate per position (the most recent occurrence of
//             the next 8 bytes), greedy extend. On sorted records this is
//             byte-level prefix truncation: each key's longest match is
//             its shared prefix with a recent neighbor. Cheap, weaker.
//   kLz     — hash chains, multiple candidates, 4-byte minimum match.
//             Stronger ratio at more encode CPU (host CPU, not simulated
//             time — the DAM has no CPU term).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "stats/metrics.h"

namespace damkit::blockdev {

/// kDefault is a factory-level sentinel, not a codec: EngineFactory
/// resolves it via the DAMKIT_CODEC environment variable (falling back to
/// identity) so a CI leg can flip every factory-built engine's codec
/// without touching per-test configuration.
enum class CodecKind : uint8_t { kIdentity, kPrefix, kLz, kDefault };

/// "identity", "prefix", "lz" ("default" for the sentinel).
std::string_view codec_kind_name(CodecKind kind);
/// Inverse of codec_kind_name; nullopt on an unknown name.
std::optional<CodecKind> parse_codec_kind(std::string_view name);
/// Resolve kDefault through the DAMKIT_CODEC environment variable
/// (unset/unparsable → kIdentity); concrete kinds pass through.
CodecKind resolve_codec_kind(CodecKind kind);
/// The three concrete kinds, in declaration order (sweep support).
inline constexpr CodecKind kAllCodecKinds[] = {
    CodecKind::kIdentity, CodecKind::kPrefix, CodecKind::kLz};

// ---------------------------------------------------------------------------
// LEB128 varints — the frame and token framing above.
// ---------------------------------------------------------------------------

inline void put_uvarint(std::vector<uint8_t>& out, uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<uint8_t>(v));
}

/// Decode a varint at `pos`, advancing it. False on truncation/overlong
/// input (more than 10 bytes) — torn frames must fail, not abort.
inline bool get_uvarint(std::span<const uint8_t> in, size_t& pos,
                        uint64_t* out) {
  uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (pos >= in.size()) return false;
    const uint8_t byte = in[pos++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *out = v;
      return true;
    }
  }
  return false;
}

/// Cumulative encode/decode accounting. `ratio` and `bytes_saved` are the
/// derived gauges the affine analysis reads: saved bytes × the device's
/// expected transfer seconds/byte is the predicted sim-time reduction.
struct CodecStats {
  uint64_t encode_calls = 0;
  uint64_t decode_calls = 0;
  uint64_t raw_bytes = 0;      // bytes presented to encode()
  uint64_t encoded_bytes = 0;  // frame bytes encode() produced
  uint64_t raw_fallbacks = 0;  // frames stored verbatim (incompressible)

  /// encoded/raw (1.0 before any encode; < 1.0 when compressing).
  double ratio() const {
    return raw_bytes == 0
               ? 1.0
               : static_cast<double>(encoded_bytes) /
                     static_cast<double>(raw_bytes);
  }
  uint64_t bytes_saved() const {
    return encoded_bytes >= raw_bytes ? 0 : raw_bytes - encoded_bytes;
  }

  void clear() { *this = CodecStats{}; }

  /// Counters plus `ratio` / `bytes_saved` gauges under `prefix`
  /// (e.g. "btree.store.codec.").
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const;
};

/// A block codec. Thread-compatible like the stores that own it: stats
/// are mutated without synchronization, one instance per tree.
class BlockCodec {
 public:
  virtual ~BlockCodec();

  virtual CodecKind kind() const = 0;
  std::string_view name() const { return codec_kind_name(kind()); }

  /// Encode `raw` into a self-describing frame (out is replaced). Never
  /// fails: input the search cannot shrink is framed verbatim.
  void encode(std::span<const uint8_t> raw, std::vector<uint8_t>& out) const;

  /// Decode a frame back to the exact raw bytes (out is replaced). False
  /// when the frame is malformed or truncated (e.g. a torn write) — the
  /// caller surfaces kCorruption instead of aborting.
  bool decode(std::span<const uint8_t> frame, std::vector<uint8_t>& out) const;

  const CodecStats& stats() const { return stats_; }
  void clear_stats() { stats_.clear(); }

 protected:
  /// Append a token stream for `raw` to `out` (which already holds the
  /// frame header). Return false to decline (identity codec, or input the
  /// search predicts it cannot shrink) — encode() then emits a raw frame.
  virtual bool encode_tokens(std::span<const uint8_t> raw,
                             std::vector<uint8_t>& out) const = 0;

 private:
  mutable CodecStats stats_;
};

/// Frames verbatim (mode 0 always). The stores bypass codecs of kind
/// kIdentity entirely — this class exists so the factory is total and the
/// frame round-trip is testable for every kind.
class IdentityCodec final : public BlockCodec {
 public:
  CodecKind kind() const override { return CodecKind::kIdentity; }

 protected:
  bool encode_tokens(std::span<const uint8_t> raw,
                     std::vector<uint8_t>& out) const override;
};

/// Single-candidate greedy matcher (see file comment): byte-level prefix
/// truncation / delta encoding for images of sorted records.
class PrefixDeltaCodec final : public BlockCodec {
 public:
  CodecKind kind() const override { return CodecKind::kPrefix; }

 protected:
  bool encode_tokens(std::span<const uint8_t> raw,
                     std::vector<uint8_t>& out) const override;
};

/// Hash-chain LZ77 with a 4-byte minimum match — the stronger page codec.
class LzCodec final : public BlockCodec {
 public:
  CodecKind kind() const override { return CodecKind::kLz; }

 protected:
  bool encode_tokens(std::span<const uint8_t> raw,
                     std::vector<uint8_t>& out) const override;
};

/// Build a codec of `kind` (kDefault is resolved first). Never null.
std::unique_ptr<BlockCodec> make_codec(CodecKind kind);

}  // namespace damkit::blockdev
