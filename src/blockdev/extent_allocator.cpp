#include "blockdev/extent_allocator.h"

namespace damkit::blockdev {

ExtentAllocator::ExtentAllocator(uint64_t base_offset, uint64_t slot_bytes,
                                 uint64_t slot_count)
    : base_offset_(base_offset),
      slot_bytes_(slot_bytes),
      slot_count_(slot_count) {
  DAMKIT_CHECK(slot_bytes_ > 0);
  DAMKIT_CHECK(slot_count_ > 0);
  allocated_.assign(slot_count_, false);
}

StatusOr<uint64_t> ExtentAllocator::try_allocate() {
  uint64_t slot;
  if (!free_list_.empty()) {
    slot = free_list_.back();
    free_list_.pop_back();
  } else {
    if (next_fresh_ >= slot_count_) {
      return Status::resource_exhausted(
          "extent space exhausted: " + std::to_string(slot_count_) +
          " slots of " + std::to_string(slot_bytes_) + " bytes");
    }
    slot = next_fresh_++;
  }
  DAMKIT_CHECK(!allocated_[slot]);
  allocated_[slot] = true;
  return slot;
}

uint64_t ExtentAllocator::allocate() {
  StatusOr<uint64_t> slot = try_allocate();
  DAMKIT_CHECK_OK(slot.status());
  return *slot;
}

void ExtentAllocator::free(uint64_t slot) {
  DAMKIT_CHECK(slot < next_fresh_);
  DAMKIT_CHECK_MSG(allocated_[slot], "double free of slot " << slot);
  allocated_[slot] = false;
  free_list_.push_back(slot);
}

}  // namespace damkit::blockdev
