#include "blockdev/block_device.h"

#include <cstring>

namespace damkit::blockdev {

NodeStore::NodeStore(sim::Device& dev, sim::IoContext& io, uint64_t node_bytes,
                     uint64_t base_offset)
    : dev_(&dev),
      io_(&io),
      node_bytes_(node_bytes),
      alloc_(base_offset, node_bytes,
             (dev.capacity_bytes() - base_offset) / node_bytes) {
  DAMKIT_CHECK(node_bytes_ > 0);
  DAMKIT_CHECK(base_offset < dev.capacity_bytes());
}

std::span<const uint8_t> NodeStore::pad_image(std::span<const uint8_t> image) {
  DAMKIT_CHECK_MSG(image.size() <= node_bytes_,
                   "node image " << image.size() << " exceeds extent "
                                 << node_bytes_);
  scratch_.resize(node_bytes_);
  std::memcpy(scratch_.data(), image.data(), image.size());
  std::memset(scratch_.data() + image.size(), 0, node_bytes_ - image.size());
  return scratch_;
}

// The legacy void methods delegate to the try_* implementations: on an
// infallible device the two are byte- and clock-identical, and on a
// faulty device the legacy path aborts only after the shared retry
// policy is exhausted (callers that can handle errors use try_*).

void NodeStore::read_node(uint64_t node_id, std::vector<uint8_t>& out) {
  DAMKIT_CHECK_OK(try_read_node(node_id, out));
}

Status NodeStore::try_read_node(uint64_t node_id, std::vector<uint8_t>& out) {
  out.resize(node_bytes_);
  const uint64_t offset = alloc_.offset_of(node_id);
  DAMKIT_RETURN_IF_ERROR(with_retries(
      *io_, retry_, &retry_counters_, /*retry_corruption=*/false,
      [&] { return io_->read_checked(offset, std::span<uint8_t>(out)); }));
  ++stats_.node_reads;
  stats_.bytes_read += node_bytes_;
  return Status();
}

void NodeStore::write_node(uint64_t node_id, std::span<const uint8_t> image) {
  DAMKIT_CHECK_OK(try_write_node(node_id, image));
}

Status NodeStore::try_write_node(uint64_t node_id,
                                 std::span<const uint8_t> image) {
  // Whole-extent write: pad the image so the device sees a node_bytes IO.
  const std::span<const uint8_t> padded = pad_image(image);
  const uint64_t offset = alloc_.offset_of(node_id);
  DAMKIT_RETURN_IF_ERROR(with_retries(
      *io_, retry_, &retry_counters_, /*retry_corruption=*/true,
      [&] { return io_->write_checked(offset, padded); }));
  ++stats_.node_writes;
  stats_.bytes_written += node_bytes_;
  return Status();
}

void NodeStore::read_span(uint64_t node_id, uint64_t offset,
                          std::span<uint8_t> out) {
  DAMKIT_CHECK_OK(try_read_span(node_id, offset, out));
}

Status NodeStore::try_read_span(uint64_t node_id, uint64_t offset,
                                std::span<uint8_t> out) {
  DAMKIT_CHECK(offset + out.size() <= node_bytes_);
  const uint64_t dev_offset = alloc_.offset_of(node_id) + offset;
  DAMKIT_RETURN_IF_ERROR(
      with_retries(*io_, retry_, &retry_counters_, /*retry_corruption=*/false,
                   [&] { return io_->read_checked(dev_offset, out); }));
  ++stats_.span_reads;
  stats_.bytes_read += out.size();
  return Status();
}

void NodeStore::peek_node(uint64_t node_id, std::vector<uint8_t>& out) {
  out.resize(node_bytes_);
  dev_->read_bytes(alloc_.offset_of(node_id), out);
}

void NodeStore::touch_read(uint64_t node_id, uint64_t offset,
                           uint64_t length) {
  DAMKIT_CHECK_OK(try_touch_read(node_id, offset, length));
}

Status NodeStore::try_touch_read(uint64_t node_id, uint64_t offset,
                                 uint64_t length) {
  DAMKIT_CHECK(offset + length <= node_bytes_);
  const uint64_t dev_offset = alloc_.offset_of(node_id) + offset;
  DAMKIT_RETURN_IF_ERROR(with_retries(
      *io_, retry_, &retry_counters_, /*retry_corruption=*/false,
      [&] { return io_->touch_read_checked(dev_offset, length); }));
  ++stats_.touch_reads;
  stats_.bytes_read += length;
  return Status();
}

void NodeStore::read_nodes(std::span<const uint64_t> ids,
                           std::vector<std::vector<uint8_t>>& out) {
  DAMKIT_CHECK_OK(try_read_nodes(ids, out));
}

Status NodeStore::try_read_nodes(std::span<const uint64_t> ids,
                                 std::vector<std::vector<uint8_t>>& out) {
  out.resize(ids.size());
  if (ids.empty()) return Status();
  std::vector<sim::IoRequest> reqs;
  reqs.reserve(ids.size());
  std::vector<size_t> pending;  // indices into ids still unserved
  pending.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    reqs.push_back(
        {sim::IoKind::kRead, alloc_.offset_of(ids[i]), node_bytes_});
    pending.push_back(i);
  }
  const uint32_t max_attempts = std::max<uint32_t>(retry_.max_attempts, 1);
  double backoff = static_cast<double>(retry_.backoff_ns);
  std::vector<sim::IoCompletion> cs;
  std::vector<Status> per_io;
  Status abandoned;  // first failure among requests that exhausted retries
  for (uint32_t attempt = 1;; ++attempt) {
    std::vector<sim::IoRequest> batch;
    batch.reserve(pending.size());
    for (const size_t i : pending) batch.push_back(reqs[i]);
    DAMKIT_RETURN_IF_ERROR(io_->submit_batch_checked(batch, &cs, &per_io));
    std::vector<size_t> failed;
    for (size_t j = 0; j < pending.size(); ++j) {
      const size_t i = pending[j];
      if (per_io[j].ok()) {
        out[i].resize(node_bytes_);
        dev_->read_bytes(reqs[i].offset, out[i]);
      } else if (per_io[j].code() == StatusCode::kUnavailable &&
                 attempt < max_attempts) {
        failed.push_back(i);
      } else {
        ++retry_counters_.give_ups;
        if (abandoned.ok()) abandoned = per_io[j];
      }
    }
    if (failed.empty()) break;
    io_->spend(static_cast<sim::SimTime>(backoff));
    backoff *= retry_.backoff_multiplier;
    retry_counters_.retries += failed.size();
    pending = std::move(failed);
  }
  DAMKIT_RETURN_IF_ERROR(abandoned);
  ++stats_.read_batches;
  stats_.batched_reads += ids.size();
  stats_.bytes_read += node_bytes_ * ids.size();
  return Status();
}

void NodeStore::write_nodes(std::span<const NodeImage> writes) {
  DAMKIT_CHECK_OK(try_write_nodes(writes));
}

Status NodeStore::try_write_nodes(std::span<const NodeImage> writes,
                                  std::vector<bool>* written) {
  if (written != nullptr) written->assign(writes.size(), false);
  if (writes.empty()) return Status();
  std::vector<sim::IoRequest> reqs;
  reqs.reserve(writes.size());
  std::vector<size_t> pending;
  pending.reserve(writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    DAMKIT_CHECK_MSG(writes[i].image.size() <= node_bytes_,
                     "node image " << writes[i].image.size()
                                   << " exceeds extent " << node_bytes_);
    reqs.push_back({sim::IoKind::kWrite, alloc_.offset_of(writes[i].node_id),
                    node_bytes_});
    pending.push_back(i);
  }
  const uint32_t max_attempts = std::max<uint32_t>(retry_.max_attempts, 1);
  double backoff = static_cast<double>(retry_.backoff_ns);
  std::vector<sim::IoCompletion> cs;
  std::vector<Status> per_io;
  Status abandoned;  // first failure among requests that exhausted retries
  for (uint32_t attempt = 1;; ++attempt) {
    std::vector<sim::IoRequest> batch;
    batch.reserve(pending.size());
    for (const size_t i : pending) batch.push_back(reqs[i]);
    DAMKIT_RETURN_IF_ERROR(io_->submit_batch_checked(batch, &cs, &per_io));
    std::vector<size_t> failed;
    for (size_t j = 0; j < pending.size(); ++j) {
      const size_t i = pending[j];
      const std::span<const uint8_t> padded = pad_image(writes[i].image);
      if (per_io[j].ok()) {
        dev_->write_bytes(reqs[i].offset, padded);
        if (written != nullptr) (*written)[i] = true;
        continue;
      }
      // A failed write's payload goes through the device's failure hook:
      // nothing lands on a transient error, a torn prefix on kCorruption.
      dev_->note_failed_write(reqs[i].offset, padded);
      const bool retryable = per_io[j].code() == StatusCode::kUnavailable ||
                             per_io[j].code() == StatusCode::kCorruption;
      if (retryable && attempt < max_attempts) {
        failed.push_back(i);
      } else {
        ++retry_counters_.give_ups;
        if (abandoned.ok()) abandoned = per_io[j];
      }
    }
    if (failed.empty()) break;
    io_->spend(static_cast<sim::SimTime>(backoff));
    backoff *= retry_.backoff_multiplier;
    retry_counters_.retries += failed.size();
    pending = std::move(failed);
  }
  DAMKIT_RETURN_IF_ERROR(abandoned);
  ++stats_.write_batches;
  stats_.batched_writes += writes.size();
  stats_.bytes_written += node_bytes_ * writes.size();
  return Status();
}

void NodeStore::touch_read_batch(std::span<const NodeSpan> spans) {
  DAMKIT_CHECK_OK(try_touch_read_batch(spans));
}

Status NodeStore::try_touch_read_batch(std::span<const NodeSpan> spans) {
  if (spans.empty()) return Status();
  std::vector<sim::IoRequest> reqs;
  reqs.reserve(spans.size());
  std::vector<size_t> pending;
  pending.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const NodeSpan& s = spans[i];
    DAMKIT_CHECK(s.offset + s.length <= node_bytes_);
    reqs.push_back({sim::IoKind::kRead,
                    alloc_.offset_of(s.node_id) + s.offset, s.length});
    pending.push_back(i);
  }
  const uint32_t max_attempts = std::max<uint32_t>(retry_.max_attempts, 1);
  double backoff = static_cast<double>(retry_.backoff_ns);
  std::vector<sim::IoCompletion> cs;
  std::vector<Status> per_io;
  Status abandoned;  // first failure among requests that exhausted retries
  for (uint32_t attempt = 1;; ++attempt) {
    std::vector<sim::IoRequest> batch;
    batch.reserve(pending.size());
    for (const size_t i : pending) batch.push_back(reqs[i]);
    DAMKIT_RETURN_IF_ERROR(io_->submit_batch_checked(batch, &cs, &per_io));
    std::vector<size_t> failed;
    for (size_t j = 0; j < pending.size(); ++j) {
      if (per_io[j].ok()) continue;
      if (per_io[j].code() == StatusCode::kUnavailable &&
          attempt < max_attempts) {
        failed.push_back(pending[j]);
      } else {
        ++retry_counters_.give_ups;
        if (abandoned.ok()) abandoned = per_io[j];
      }
    }
    if (failed.empty()) break;
    io_->spend(static_cast<sim::SimTime>(backoff));
    backoff *= retry_.backoff_multiplier;
    retry_counters_.retries += failed.size();
    pending = std::move(failed);
  }
  DAMKIT_RETURN_IF_ERROR(abandoned);
  for (const NodeSpan& s : spans) stats_.bytes_read += s.length;
  ++stats_.touch_batches;
  stats_.batched_touches += spans.size();
  return Status();
}

void NodeStore::export_metrics(stats::MetricsRegistry& reg,
                               std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "node_reads", stats_.node_reads);
  reg.add(p + "node_writes", stats_.node_writes);
  reg.add(p + "span_reads", stats_.span_reads);
  reg.add(p + "touch_reads", stats_.touch_reads);
  reg.add(p + "batched_reads", stats_.batched_reads);
  reg.add(p + "batched_writes", stats_.batched_writes);
  reg.add(p + "batched_touches", stats_.batched_touches);
  reg.add(p + "read_batches", stats_.read_batches);
  reg.add(p + "write_batches", stats_.write_batches);
  reg.add(p + "touch_batches", stats_.touch_batches);
  reg.add(p + "bytes_read", stats_.bytes_read);
  reg.add(p + "bytes_written", stats_.bytes_written);
  reg.add(p + "io_retries", retry_counters_.retries);
  reg.add(p + "io_give_ups", retry_counters_.give_ups);
  reg.add(p + "nodes_in_use", alloc_.slots_in_use());
}

}  // namespace damkit::blockdev
