#include "blockdev/block_device.h"

#include <cstring>

namespace damkit::blockdev {

NodeStore::NodeStore(sim::Device& dev, sim::IoContext& io, uint64_t node_bytes,
                     uint64_t base_offset)
    : dev_(&dev),
      io_(&io),
      node_bytes_(node_bytes),
      alloc_(base_offset, node_bytes,
             (dev.capacity_bytes() - base_offset) / node_bytes) {
  DAMKIT_CHECK(node_bytes_ > 0);
  DAMKIT_CHECK(base_offset < dev.capacity_bytes());
}

void NodeStore::read_node(uint64_t node_id, std::vector<uint8_t>& out) {
  out.resize(node_bytes_);
  io_->read(alloc_.offset_of(node_id), out);
  ++stats_.node_reads;
  stats_.bytes_read += node_bytes_;
}

void NodeStore::write_node(uint64_t node_id, std::span<const uint8_t> image) {
  DAMKIT_CHECK_MSG(image.size() <= node_bytes_,
                   "node image " << image.size() << " exceeds extent "
                                 << node_bytes_);
  // Whole-extent write: pad the image so the device sees a node_bytes IO.
  scratch_.resize(node_bytes_);
  std::memcpy(scratch_.data(), image.data(), image.size());
  std::memset(scratch_.data() + image.size(), 0, node_bytes_ - image.size());
  io_->write(alloc_.offset_of(node_id), scratch_);
  ++stats_.node_writes;
  stats_.bytes_written += node_bytes_;
}

void NodeStore::read_span(uint64_t node_id, uint64_t offset,
                          std::span<uint8_t> out) {
  DAMKIT_CHECK(offset + out.size() <= node_bytes_);
  io_->read(alloc_.offset_of(node_id) + offset, out);
  ++stats_.span_reads;
  stats_.bytes_read += out.size();
}

void NodeStore::peek_node(uint64_t node_id, std::vector<uint8_t>& out) {
  out.resize(node_bytes_);
  dev_->read_bytes(alloc_.offset_of(node_id), out);
}

void NodeStore::touch_read(uint64_t node_id, uint64_t offset, uint64_t length) {
  DAMKIT_CHECK(offset + length <= node_bytes_);
  io_->touch_read(alloc_.offset_of(node_id) + offset, length);
  ++stats_.touch_reads;
  stats_.bytes_read += length;
}

void NodeStore::read_nodes(std::span<const uint64_t> ids,
                           std::vector<std::vector<uint8_t>>& out) {
  out.resize(ids.size());
  if (ids.empty()) return;
  std::vector<sim::IoRequest> reqs;
  reqs.reserve(ids.size());
  for (uint64_t id : ids) {
    reqs.push_back({sim::IoKind::kRead, alloc_.offset_of(id), node_bytes_});
  }
  io_->submit_batch(reqs);
  ++stats_.read_batches;
  stats_.batched_reads += ids.size();
  stats_.bytes_read += node_bytes_ * ids.size();
  for (size_t i = 0; i < ids.size(); ++i) {
    out[i].resize(node_bytes_);
    dev_->read_bytes(reqs[i].offset, out[i]);
  }
}

void NodeStore::write_nodes(std::span<const NodeImage> writes) {
  if (writes.empty()) return;
  std::vector<sim::IoRequest> reqs;
  reqs.reserve(writes.size());
  for (const NodeImage& w : writes) {
    DAMKIT_CHECK_MSG(w.image.size() <= node_bytes_,
                     "node image " << w.image.size() << " exceeds extent "
                                   << node_bytes_);
    reqs.push_back({sim::IoKind::kWrite, alloc_.offset_of(w.node_id),
                    node_bytes_});
  }
  io_->submit_batch(reqs);
  ++stats_.write_batches;
  stats_.batched_writes += writes.size();
  stats_.bytes_written += node_bytes_ * writes.size();
  scratch_.resize(node_bytes_);
  for (size_t i = 0; i < writes.size(); ++i) {
    std::memcpy(scratch_.data(), writes[i].image.data(),
                writes[i].image.size());
    std::memset(scratch_.data() + writes[i].image.size(), 0,
                node_bytes_ - writes[i].image.size());
    dev_->write_bytes(reqs[i].offset, scratch_);
  }
}

void NodeStore::touch_read_batch(std::span<const NodeSpan> spans) {
  if (spans.empty()) return;
  std::vector<sim::IoRequest> reqs;
  reqs.reserve(spans.size());
  for (const NodeSpan& s : spans) {
    DAMKIT_CHECK(s.offset + s.length <= node_bytes_);
    reqs.push_back(
        {sim::IoKind::kRead, alloc_.offset_of(s.node_id) + s.offset, s.length});
    stats_.bytes_read += s.length;
  }
  io_->submit_batch(reqs);
  ++stats_.touch_batches;
  stats_.batched_touches += spans.size();
}

void NodeStore::export_metrics(stats::MetricsRegistry& reg,
                               std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "node_reads", stats_.node_reads);
  reg.add(p + "node_writes", stats_.node_writes);
  reg.add(p + "span_reads", stats_.span_reads);
  reg.add(p + "touch_reads", stats_.touch_reads);
  reg.add(p + "batched_reads", stats_.batched_reads);
  reg.add(p + "batched_writes", stats_.batched_writes);
  reg.add(p + "batched_touches", stats_.batched_touches);
  reg.add(p + "read_batches", stats_.read_batches);
  reg.add(p + "write_batches", stats_.write_batches);
  reg.add(p + "touch_batches", stats_.touch_batches);
  reg.add(p + "bytes_read", stats_.bytes_read);
  reg.add(p + "bytes_written", stats_.bytes_written);
  reg.add(p + "nodes_in_use", alloc_.slots_in_use());
}

}  // namespace damkit::blockdev
