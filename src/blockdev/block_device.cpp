#include "blockdev/block_device.h"

#include <cstring>

namespace damkit::blockdev {

NodeStore::NodeStore(sim::Device& dev, sim::IoContext& io, uint64_t node_bytes,
                     uint64_t base_offset, CodecKind codec)
    : dev_(&dev),
      io_(&io),
      node_bytes_(node_bytes),
      alloc_(base_offset, node_bytes,
             (dev.capacity_bytes() - base_offset) / node_bytes) {
  DAMKIT_CHECK(node_bytes_ > 0);
  DAMKIT_CHECK(base_offset < dev.capacity_bytes());
  const CodecKind resolved = resolve_codec_kind(codec);
  if (resolved != CodecKind::kIdentity) codec_ = make_codec(resolved);
}

std::span<const uint8_t> NodeStore::pad_image(std::span<const uint8_t> image) {
  DAMKIT_CHECK_MSG(image.size() <= node_bytes_,
                   "node image " << image.size() << " exceeds extent "
                                 << node_bytes_);
  scratch_.resize(node_bytes_);
  std::memcpy(scratch_.data(), image.data(), image.size());
  std::memset(scratch_.data() + image.size(), 0, node_bytes_ - image.size());
  return scratch_;
}

void NodeStore::set_stored_len(uint64_t node_id, uint64_t len) {
  if (node_id >= stored_len_.size()) stored_len_.resize(node_id + 1, 0);
  stored_len_[node_id] = static_cast<uint32_t>(len);
}

NodeStore::PhysSpan NodeStore::physical_span(uint64_t node_id, uint64_t offset,
                                             uint64_t length) const {
  if (!compressed_node(node_id)) return {offset, length};
  // Charge the stored image pro rata: a read of length/node_bytes of the
  // node costs the same fraction of its compressed frame (at least one
  // byte), clamped to fall inside the frame.
  const uint64_t sl = stored_len(node_id);
  const uint64_t plen = std::min(
      sl, std::max<uint64_t>(1, (length * sl + node_bytes_ - 1) / node_bytes_));
  uint64_t poff = offset * sl / node_bytes_;
  if (poff + plen > sl) poff = sl - plen;
  return {poff, plen};
}

void NodeStore::encode_image(std::span<const uint8_t> padded,
                             std::vector<uint8_t>& out) const {
  codec_->encode(padded, out);
  // A frame that does not fit the extent falls back to the raw padded
  // image (stored_len == node_bytes_ marks it unframed).
  if (out.size() >= node_bytes_) out.assign(padded.begin(), padded.end());
}

Status NodeStore::fetch_payload(uint64_t node_id, std::vector<uint8_t>& out) {
  const uint64_t offset = alloc_.offset_of(node_id);
  if (!compressed_node(node_id)) {
    out.resize(node_bytes_);
    dev_->read_bytes(offset, out);
    return Status();
  }
  dec_scratch_.resize(stored_len(node_id));
  dev_->read_bytes(offset, dec_scratch_);
  if (!codec_->decode(dec_scratch_, out) || out.size() != node_bytes_) {
    return Status::corruption("node " + std::to_string(node_id) +
                              ": stored codec frame failed to decode");
  }
  return Status();
}

// The legacy void methods delegate to the try_* implementations: on an
// infallible device the two are byte- and clock-identical, and on a
// faulty device the legacy path aborts only after the shared retry
// policy is exhausted (callers that can handle errors use try_*).

void NodeStore::read_node(uint64_t node_id, std::vector<uint8_t>& out) {
  DAMKIT_CHECK_OK(try_read_node(node_id, out));
}

Status NodeStore::try_read_node(uint64_t node_id, std::vector<uint8_t>& out) {
  const uint64_t offset = alloc_.offset_of(node_id);
  if (!compressed_node(node_id)) {
    out.resize(node_bytes_);
    DAMKIT_RETURN_IF_ERROR(with_retries(
        *io_, retry_, &retry_counters_, /*retry_corruption=*/false,
        [&] { return io_->read_checked(offset, std::span<uint8_t>(out)); }));
    ++stats_.node_reads;
    stats_.bytes_read += node_bytes_;
    return Status();
  }
  // Partial-extent read of the compressed frame: transfer time is charged
  // for the stored bytes only, setup for the IO as usual.
  dec_scratch_.resize(stored_len(node_id));
  DAMKIT_RETURN_IF_ERROR(
      with_retries(*io_, retry_, &retry_counters_, /*retry_corruption=*/false,
                   [&] {
                     return io_->read_checked(
                         offset, std::span<uint8_t>(dec_scratch_));
                   }));
  if (!codec_->decode(dec_scratch_, out) || out.size() != node_bytes_) {
    return Status::corruption("node " + std::to_string(node_id) +
                              ": stored codec frame failed to decode");
  }
  ++stats_.node_reads;
  stats_.bytes_read += dec_scratch_.size();
  return Status();
}

void NodeStore::write_node(uint64_t node_id, std::span<const uint8_t> image) {
  DAMKIT_CHECK_OK(try_write_node(node_id, image));
}

Status NodeStore::try_write_node(uint64_t node_id,
                                 std::span<const uint8_t> image) {
  // Whole-extent write: pad the image so the device sees a node_bytes IO.
  const std::span<const uint8_t> padded = pad_image(image);
  const uint64_t offset = alloc_.offset_of(node_id);
  if (codec_ == nullptr) {
    DAMKIT_RETURN_IF_ERROR(with_retries(
        *io_, retry_, &retry_counters_, /*retry_corruption=*/true,
        [&] { return io_->write_checked(offset, padded); }));
    ++stats_.node_writes;
    stats_.bytes_written += node_bytes_;
    return Status();
  }
  // Compressed partial-extent write at the unchanged extent offset. On a
  // torn write the retry rewrites the frame in full; stored_len_ is
  // updated only once the image durably landed, and the try_* contract
  // (the caller keeps failed images dirty) covers the give-up case.
  encode_image(padded, enc_scratch_);
  DAMKIT_RETURN_IF_ERROR(with_retries(
      *io_, retry_, &retry_counters_, /*retry_corruption=*/true, [&] {
        return io_->write_checked(offset,
                                  std::span<const uint8_t>(enc_scratch_));
      }));
  set_stored_len(node_id, enc_scratch_.size());
  ++stats_.node_writes;
  stats_.bytes_written += enc_scratch_.size();
  return Status();
}

void NodeStore::read_span(uint64_t node_id, uint64_t offset,
                          std::span<uint8_t> out) {
  DAMKIT_CHECK_OK(try_read_span(node_id, offset, out));
}

Status NodeStore::try_read_span(uint64_t node_id, uint64_t offset,
                                std::span<uint8_t> out) {
  DAMKIT_CHECK(offset + out.size() <= node_bytes_);
  const uint64_t dev_offset = alloc_.offset_of(node_id) + offset;
  if (!compressed_node(node_id)) {
    DAMKIT_RETURN_IF_ERROR(with_retries(
        *io_, retry_, &retry_counters_, /*retry_corruption=*/false,
        [&] { return io_->read_checked(dev_offset, out); }));
    ++stats_.span_reads;
    stats_.bytes_read += out.size();
    return Status();
  }
  // The logical span does not exist contiguously inside the frame: charge
  // the scaled physical IO, then serve the payload from the decoded node.
  const PhysSpan ps = physical_span(node_id, offset, out.size());
  const uint64_t phys_offset = alloc_.offset_of(node_id) + ps.offset;
  DAMKIT_RETURN_IF_ERROR(with_retries(
      *io_, retry_, &retry_counters_, /*retry_corruption=*/false,
      [&] { return io_->touch_read_checked(phys_offset, ps.length); }));
  DAMKIT_RETURN_IF_ERROR(fetch_payload(node_id, node_scratch_));
  std::memcpy(out.data(), node_scratch_.data() + offset, out.size());
  ++stats_.span_reads;
  stats_.bytes_read += ps.length;
  return Status();
}

void NodeStore::peek_node(uint64_t node_id, std::vector<uint8_t>& out) {
  DAMKIT_CHECK_OK(fetch_payload(node_id, out));
}

void NodeStore::touch_read(uint64_t node_id, uint64_t offset,
                           uint64_t length) {
  DAMKIT_CHECK_OK(try_touch_read(node_id, offset, length));
}

Status NodeStore::try_touch_read(uint64_t node_id, uint64_t offset,
                                 uint64_t length) {
  DAMKIT_CHECK(offset + length <= node_bytes_);
  const PhysSpan ps = physical_span(node_id, offset, length);
  const uint64_t dev_offset = alloc_.offset_of(node_id) + ps.offset;
  DAMKIT_RETURN_IF_ERROR(with_retries(
      *io_, retry_, &retry_counters_, /*retry_corruption=*/false,
      [&] { return io_->touch_read_checked(dev_offset, ps.length); }));
  ++stats_.touch_reads;
  stats_.bytes_read += ps.length;
  return Status();
}

void NodeStore::read_nodes(std::span<const uint64_t> ids,
                           std::vector<std::vector<uint8_t>>& out) {
  DAMKIT_CHECK_OK(try_read_nodes(ids, out));
}

Status NodeStore::try_read_nodes(std::span<const uint64_t> ids,
                                 std::vector<std::vector<uint8_t>>& out) {
  out.resize(ids.size());
  if (ids.empty()) return Status();
  std::vector<sim::IoRequest>& reqs = reqs_scratch_;
  reqs.clear();
  reqs.reserve(ids.size());
  std::vector<size_t>& pending = pending_scratch_;  // ids still unserved
  pending.clear();
  pending.reserve(ids.size());
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    const uint64_t len =
        compressed_node(ids[i]) ? stored_len(ids[i]) : node_bytes_;
    reqs.push_back({sim::IoKind::kRead, alloc_.offset_of(ids[i]), len});
    total_bytes += len;
    pending.push_back(i);
  }
  const uint32_t max_attempts = std::max<uint32_t>(retry_.max_attempts, 1);
  double backoff = static_cast<double>(retry_.backoff_ns);
  std::vector<sim::IoCompletion>& cs = cs_scratch_;
  std::vector<Status>& per_io = per_io_scratch_;
  Status abandoned;  // first failure among requests that exhausted retries
  for (uint32_t attempt = 1;; ++attempt) {
    std::vector<sim::IoRequest>& batch = batch_scratch_;
    batch.clear();
    batch.reserve(pending.size());
    for (const size_t i : pending) batch.push_back(reqs[i]);
    DAMKIT_RETURN_IF_ERROR(io_->submit_batch_checked(batch, &cs, &per_io));
    std::vector<size_t>& failed = failed_scratch_;
    failed.clear();
    for (size_t j = 0; j < pending.size(); ++j) {
      const size_t i = pending[j];
      if (per_io[j].ok()) {
        if (const Status decoded = fetch_payload(ids[i], out[i]);
            !decoded.ok() && abandoned.ok()) {
          abandoned = decoded;
        }
      } else if (per_io[j].code() == StatusCode::kUnavailable &&
                 attempt < max_attempts) {
        failed.push_back(i);
      } else {
        ++retry_counters_.give_ups;
        if (abandoned.ok()) abandoned = per_io[j];
      }
    }
    if (failed.empty()) break;
    io_->spend(static_cast<sim::SimTime>(backoff));
    backoff *= retry_.backoff_multiplier;
    retry_counters_.retries += failed.size();
    std::swap(pending, failed);
  }
  DAMKIT_RETURN_IF_ERROR(abandoned);
  ++stats_.read_batches;
  stats_.batched_reads += ids.size();
  stats_.bytes_read += total_bytes;
  return Status();
}

void NodeStore::write_nodes(std::span<const NodeImage> writes) {
  DAMKIT_CHECK_OK(try_write_nodes(writes));
}

Status NodeStore::try_write_nodes(std::span<const NodeImage> writes,
                                  std::vector<bool>* written) {
  if (written != nullptr) written->assign(writes.size(), false);
  if (writes.empty()) return Status();
  // Stage every device image up front (padded, and encoded when a codec
  // is active) so retry attempts reuse the same bytes instead of
  // re-padding per IO per attempt.
  if (batch_images_.size() < writes.size()) batch_images_.resize(writes.size());
  std::vector<sim::IoRequest>& reqs = reqs_scratch_;
  reqs.clear();
  reqs.reserve(writes.size());
  std::vector<size_t>& pending = pending_scratch_;
  pending.clear();
  pending.reserve(writes.size());
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < writes.size(); ++i) {
    const std::span<const uint8_t> padded = pad_image(writes[i].image);
    if (codec_ == nullptr) {
      batch_images_[i].assign(padded.begin(), padded.end());
    } else {
      encode_image(padded, batch_images_[i]);
    }
    reqs.push_back({sim::IoKind::kWrite, alloc_.offset_of(writes[i].node_id),
                    batch_images_[i].size()});
    total_bytes += batch_images_[i].size();
    pending.push_back(i);
  }
  const uint32_t max_attempts = std::max<uint32_t>(retry_.max_attempts, 1);
  double backoff = static_cast<double>(retry_.backoff_ns);
  std::vector<sim::IoCompletion>& cs = cs_scratch_;
  std::vector<Status>& per_io = per_io_scratch_;
  Status abandoned;  // first failure among requests that exhausted retries
  for (uint32_t attempt = 1;; ++attempt) {
    std::vector<sim::IoRequest>& batch = batch_scratch_;
    batch.clear();
    batch.reserve(pending.size());
    for (const size_t i : pending) batch.push_back(reqs[i]);
    DAMKIT_RETURN_IF_ERROR(io_->submit_batch_checked(batch, &cs, &per_io));
    std::vector<size_t>& failed = failed_scratch_;
    failed.clear();
    for (size_t j = 0; j < pending.size(); ++j) {
      const size_t i = pending[j];
      if (per_io[j].ok()) {
        dev_->write_bytes(reqs[i].offset, batch_images_[i]);
        if (codec_ != nullptr) {
          set_stored_len(writes[i].node_id, batch_images_[i].size());
        }
        if (written != nullptr) (*written)[i] = true;
        continue;
      }
      // A failed write's payload goes through the device's failure hook:
      // nothing lands on a transient error, a torn prefix on kCorruption.
      dev_->note_failed_write(reqs[i].offset, batch_images_[i]);
      const bool retryable = per_io[j].code() == StatusCode::kUnavailable ||
                             per_io[j].code() == StatusCode::kCorruption;
      if (retryable && attempt < max_attempts) {
        failed.push_back(i);
      } else {
        ++retry_counters_.give_ups;
        if (abandoned.ok()) abandoned = per_io[j];
      }
    }
    if (failed.empty()) break;
    io_->spend(static_cast<sim::SimTime>(backoff));
    backoff *= retry_.backoff_multiplier;
    retry_counters_.retries += failed.size();
    std::swap(pending, failed);
  }
  DAMKIT_RETURN_IF_ERROR(abandoned);
  ++stats_.write_batches;
  stats_.batched_writes += writes.size();
  stats_.bytes_written += total_bytes;
  return Status();
}

void NodeStore::touch_read_batch(std::span<const NodeSpan> spans) {
  DAMKIT_CHECK_OK(try_touch_read_batch(spans));
}

Status NodeStore::try_touch_read_batch(std::span<const NodeSpan> spans) {
  if (spans.empty()) return Status();
  std::vector<sim::IoRequest>& reqs = reqs_scratch_;
  reqs.clear();
  reqs.reserve(spans.size());
  std::vector<size_t>& pending = pending_scratch_;
  pending.clear();
  pending.reserve(spans.size());
  uint64_t total_bytes = 0;
  for (size_t i = 0; i < spans.size(); ++i) {
    const NodeSpan& s = spans[i];
    DAMKIT_CHECK(s.offset + s.length <= node_bytes_);
    const PhysSpan ps = physical_span(s.node_id, s.offset, s.length);
    reqs.push_back({sim::IoKind::kRead,
                    alloc_.offset_of(s.node_id) + ps.offset, ps.length});
    total_bytes += ps.length;
    pending.push_back(i);
  }
  const uint32_t max_attempts = std::max<uint32_t>(retry_.max_attempts, 1);
  double backoff = static_cast<double>(retry_.backoff_ns);
  std::vector<sim::IoCompletion>& cs = cs_scratch_;
  std::vector<Status>& per_io = per_io_scratch_;
  Status abandoned;  // first failure among requests that exhausted retries
  for (uint32_t attempt = 1;; ++attempt) {
    std::vector<sim::IoRequest>& batch = batch_scratch_;
    batch.clear();
    batch.reserve(pending.size());
    for (const size_t i : pending) batch.push_back(reqs[i]);
    DAMKIT_RETURN_IF_ERROR(io_->submit_batch_checked(batch, &cs, &per_io));
    std::vector<size_t>& failed = failed_scratch_;
    failed.clear();
    for (size_t j = 0; j < pending.size(); ++j) {
      if (per_io[j].ok()) continue;
      if (per_io[j].code() == StatusCode::kUnavailable &&
          attempt < max_attempts) {
        failed.push_back(pending[j]);
      } else {
        ++retry_counters_.give_ups;
        if (abandoned.ok()) abandoned = per_io[j];
      }
    }
    if (failed.empty()) break;
    io_->spend(static_cast<sim::SimTime>(backoff));
    backoff *= retry_.backoff_multiplier;
    retry_counters_.retries += failed.size();
    std::swap(pending, failed);
  }
  DAMKIT_RETURN_IF_ERROR(abandoned);
  stats_.bytes_read += total_bytes;
  ++stats_.touch_batches;
  stats_.batched_touches += spans.size();
  return Status();
}

void NodeStore::export_metrics(stats::MetricsRegistry& reg,
                               std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "node_reads", stats_.node_reads);
  reg.add(p + "node_writes", stats_.node_writes);
  reg.add(p + "span_reads", stats_.span_reads);
  reg.add(p + "touch_reads", stats_.touch_reads);
  reg.add(p + "batched_reads", stats_.batched_reads);
  reg.add(p + "batched_writes", stats_.batched_writes);
  reg.add(p + "batched_touches", stats_.batched_touches);
  reg.add(p + "read_batches", stats_.read_batches);
  reg.add(p + "write_batches", stats_.write_batches);
  reg.add(p + "touch_batches", stats_.touch_batches);
  reg.add(p + "bytes_read", stats_.bytes_read);
  reg.add(p + "bytes_written", stats_.bytes_written);
  reg.add(p + "io_retries", retry_counters_.retries);
  reg.add(p + "io_give_ups", retry_counters_.give_ups);
  reg.add(p + "nodes_in_use", alloc_.slots_in_use());
  // codec.* appears only when compression is on, so identity-codec metric
  // snapshots stay byte-identical to the pre-codec ones.
  if (codec_ != nullptr) codec_->stats().export_metrics(reg, p + "codec.");
}

}  // namespace damkit::blockdev
