// Byte-granularity extent arena for variable-sized on-device objects
// (LSM SSTables). Bump allocation with TRIM-on-free: freed ranges return
// their simulated-host memory but are not recycled — the device address
// space is effectively infinite at experiment scale, and real LSM stores
// likewise treat table files as append-then-delete objects. Fragmentation
// is therefore not modelled (recorded in DESIGN.md).
#pragma once

#include <cstdint>

#include "sim/device.h"
#include "util/bytes.h"
#include "util/status.h"

namespace damkit::blockdev {

class ByteArena {
 public:
  ByteArena(sim::Device& dev, uint64_t base_offset, uint64_t alignment = 4096)
      : dev_(&dev),
        next_(base_offset),
        alignment_(alignment) {
    DAMKIT_CHECK(alignment_ > 0);
    DAMKIT_CHECK(base_offset < dev.capacity_bytes());
  }

  /// Reserve `length` bytes; returns the device offset, or
  /// kResourceExhausted when the bump pointer would pass the device end.
  StatusOr<uint64_t> try_allocate(uint64_t length) {
    DAMKIT_CHECK(length > 0);
    const uint64_t padded = damkit::align_up(length, alignment_);
    if (padded < length || dev_->capacity_bytes() < padded ||
        next_ > dev_->capacity_bytes() - padded) {
      return Status::resource_exhausted(
          "arena exhausted the device address space");
    }
    const uint64_t offset = next_;
    next_ += padded;
    live_bytes_ += length;
    return offset;
  }

  /// CHECK-failing allocate for callers where exhaustion is a config bug.
  uint64_t allocate(uint64_t length) {
    StatusOr<uint64_t> offset = try_allocate(length);
    DAMKIT_CHECK_OK(offset.status());
    return *offset;
  }

  /// Release a previously allocated range (TRIMs the device).
  void free(uint64_t offset, uint64_t length) {
    dev_->trim(offset, damkit::align_up(length, alignment_));
    DAMKIT_CHECK(live_bytes_ >= length);
    live_bytes_ -= length;
    freed_bytes_ += length;
  }

  uint64_t live_bytes() const { return live_bytes_; }
  uint64_t freed_bytes() const { return freed_bytes_; }
  uint64_t high_water_offset() const { return next_; }

 private:
  sim::Device* dev_;
  uint64_t next_;
  uint64_t alignment_;
  uint64_t live_bytes_ = 0;
  uint64_t freed_bytes_ = 0;
};

}  // namespace damkit::blockdev
