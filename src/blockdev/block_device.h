// NodeStore: the trees' view of a device — numbered node extents of a
// fixed size with whole-extent and sub-extent IO, every access charged to
// an IoContext so the caller's simulated clock reflects real device delays.
//
// Whole-node reads/writes model the classic B-tree / Bε-tree IO discipline
// ("a node is the unit of transfer", §5–6); sub-extent reads model the
// Theorem-9 optimized Bε-tree, which exploits the affine model by issuing
// smaller IOs into a known region of a node.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "blockdev/codec.h"
#include "blockdev/extent_allocator.h"
#include "blockdev/retry.h"
#include "sim/device.h"
#include "stats/metrics.h"

namespace damkit::blockdev {

/// Always-on accounting of the store's IO mix: how much moved through the
/// scalar (one IO, clock advances by the full latency) versus the
/// vectored (one batch, clock advances to the slowest completion) paths.
/// The vectored/scalar ratio is the "did batching actually engage"
/// signal the benches watch.
struct NodeStoreStats {
  uint64_t node_reads = 0;        // whole-extent scalar reads
  uint64_t node_writes = 0;       // whole-extent scalar writes
  uint64_t span_reads = 0;        // sub-extent scalar reads
  uint64_t touch_reads = 0;       // timing-only scalar reads
  uint64_t batched_reads = 0;     // requests through read_nodes
  uint64_t batched_writes = 0;    // requests through write_nodes
  uint64_t batched_touches = 0;   // requests through touch_read_batch
  uint64_t read_batches = 0;      // read_nodes calls
  uint64_t write_batches = 0;     // write_nodes calls
  uint64_t touch_batches = 0;     // touch_read_batch calls
  uint64_t bytes_read = 0;        // payload+timing bytes, both paths
  uint64_t bytes_written = 0;

  void clear() { *this = NodeStoreStats{}; }
};

class NodeStore {
 public:
  /// Carves the device (from `base_offset` up) into node slots of
  /// `node_bytes`. The IoContext is borrowed; it must outlive the store.
  ///
  /// With a non-identity `codec`, every whole-node write compresses the
  /// padded image and stores it at the front of the (unchanged) extent as
  /// a partial-extent IO, so the device charges transfer time only for
  /// the compressed bytes while the allocator layout and setup cost stay
  /// exactly as before — the affine model's point. Reads issue the stored
  /// (compressed) length and decode; sub-extent span/touch charges are
  /// scaled by the node's stored/logical ratio. Callers keep addressing
  /// nodes in logical (uncompressed) units throughout.
  NodeStore(sim::Device& dev, sim::IoContext& io, uint64_t node_bytes,
            uint64_t base_offset = 0,
            CodecKind codec = CodecKind::kIdentity);

  uint64_t node_bytes() const { return node_bytes_; }
  uint64_t nodes_in_use() const { return alloc_.slots_in_use(); }

  /// The active codec (kIdentity when compression is off).
  CodecKind codec_kind() const {
    return codec_ == nullptr ? CodecKind::kIdentity : codec_->kind();
  }
  /// Physical bytes node_id occupies on the device: its compressed frame
  /// size, or node_bytes() when stored raw / never written.
  uint64_t stored_bytes(uint64_t node_id) const {
    const uint32_t sl = stored_len(node_id);
    return sl == 0 ? node_bytes_ : sl;
  }

  uint64_t allocate() { return alloc_.allocate(); }
  StatusOr<uint64_t> try_allocate() { return alloc_.try_allocate(); }
  void free(uint64_t node_id) {
    alloc_.free(node_id);
    if (node_id < stored_len_.size()) stored_len_[node_id] = 0;
  }

  /// Retry policy applied by every try_* IO below: transient faults are
  /// re-attempted up to the policy's budget with simulated backoff charged
  /// to the IoContext, then surfaced. The legacy void methods share the
  /// same policy and CHECK-abort on final failure.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const { return retry_; }
  const RetryCounters& retry_counters() const { return retry_counters_; }

  /// Read the entire node extent (cost: one IO of node_bytes).
  void read_node(uint64_t node_id, std::vector<uint8_t>& out);
  Status try_read_node(uint64_t node_id, std::vector<uint8_t>& out);

  /// Write a node image (padded to the full extent; cost: one IO of
  /// node_bytes — classic trees write whole nodes).
  void write_node(uint64_t node_id, std::span<const uint8_t> image);
  Status try_write_node(uint64_t node_id, std::span<const uint8_t> image);

  /// Read `length` bytes at `offset` within the node (cost: one IO of
  /// `length` bytes). Used by the optimized Bε-tree's pivot/segment reads.
  void read_span(uint64_t node_id, uint64_t offset, std::span<uint8_t> out);
  Status try_read_span(uint64_t node_id, uint64_t offset,
                       std::span<uint8_t> out);

  /// Charge a read of `length` bytes at node-relative `offset` without
  /// copying payload (layout experiments where only timing matters).
  void touch_read(uint64_t node_id, uint64_t offset, uint64_t length);
  Status try_touch_read(uint64_t node_id, uint64_t offset, uint64_t length);

  /// Payload-only read with NO timing charge. Callers must charge the
  /// appropriate (possibly smaller) IO separately via touch_read — this is
  /// the OptBeTree sub-node read path, where the IO size is decided by the
  /// pivots the parent level already delivered.
  void peek_node(uint64_t node_id, std::vector<uint8_t>& out);

  /// A pending whole-node write for the batched path.
  struct NodeImage {
    uint64_t node_id = 0;
    std::span<const uint8_t> image;
  };
  /// A sub-extent read for the batched path (node-relative offset).
  struct NodeSpan {
    uint64_t node_id = 0;
    uint64_t offset = 0;
    uint64_t length = 0;
  };

  /// Vectored reads: all node extents are submitted as ONE device batch,
  /// so the clock advances to the slowest completion instead of the sum.
  /// out is resized to ids.size(), each element to node_bytes.
  void read_nodes(std::span<const uint64_t> ids,
                  std::vector<std::vector<uint8_t>>& out);
  /// Fallible vectored reads: failed requests alone are re-batched under
  /// the retry policy; on give-up the first failure is returned and the
  /// corresponding out slots are unspecified.
  Status try_read_nodes(std::span<const uint64_t> ids,
                        std::vector<std::vector<uint8_t>>& out);

  /// Vectored whole-node writes (each padded to the full extent), one
  /// device batch.
  void write_nodes(std::span<const NodeImage> writes);
  /// Fallible vectored writes; failed requests alone are re-batched under
  /// the retry policy. On give-up some extents may hold torn data — the
  /// caller must keep the in-memory images authoritative (dirty) until a
  /// later write succeeds. When `written` is non-null it is resized to
  /// writes.size() and (*written)[i] reports whether write i durably
  /// landed (all true on an OK return).
  Status try_write_nodes(std::span<const NodeImage> writes,
                         std::vector<bool>* written = nullptr);

  /// Vectored timing-only sub-extent reads, one device batch.
  void touch_read_batch(std::span<const NodeSpan> spans);
  Status try_touch_read_batch(std::span<const NodeSpan> spans);

  sim::IoContext& io() { return *io_; }
  sim::Device& device() { return *dev_; }

  const NodeStoreStats& stats() const { return stats_; }
  void clear_stats() { stats_.clear(); }

  /// Export scalar/vectored IO-mix counters under `prefix`
  /// (e.g. "btree.store.").
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const;

 private:
  /// Pad `image` into scratch_ as a full node_bytes extent image.
  std::span<const uint8_t> pad_image(std::span<const uint8_t> image);

  /// Stored (device) length of node_id's image. 0 = never written through
  /// this store (read raw, full extent); node_bytes_ = stored raw
  /// unframed (incompressible); anything smaller is a codec frame.
  uint32_t stored_len(uint64_t node_id) const {
    return node_id < stored_len_.size() ? stored_len_[node_id] : 0;
  }
  void set_stored_len(uint64_t node_id, uint64_t len);
  /// True when node_id's on-device image is a codec frame.
  bool compressed_node(uint64_t node_id) const {
    const uint32_t sl = stored_len(node_id);
    return codec_ != nullptr && sl != 0 && sl != node_bytes_;
  }
  /// Map a logical [offset, length) within the node to the physical IO
  /// charged against its stored image (identity on uncompressed nodes).
  struct PhysSpan {
    uint64_t offset;
    uint64_t length;
  };
  PhysSpan physical_span(uint64_t node_id, uint64_t offset,
                         uint64_t length) const;
  /// Encode `padded` (a full logical image) into `out` as the bytes that
  /// actually hit the device: the codec frame, or the padded image itself
  /// when the frame would not fit the extent.
  void encode_image(std::span<const uint8_t> padded,
                    std::vector<uint8_t>& out) const;
  /// Fetch node_id's payload into `out` (decoding compressed frames).
  /// Non-OK only when a frame fails to decode (kCorruption).
  Status fetch_payload(uint64_t node_id, std::vector<uint8_t>& out);

  sim::Device* dev_;
  sim::IoContext* io_;
  uint64_t node_bytes_;
  ExtentAllocator alloc_;
  std::unique_ptr<BlockCodec> codec_;  // nullptr = identity (no-op path)
  std::vector<uint32_t> stored_len_;   // per-node stored image length
  // Reused per-store scratch (no per-IO vector allocations on hot paths).
  std::vector<uint8_t> scratch_;      // write padding buffer
  std::vector<uint8_t> enc_scratch_;  // codec frame staging
  std::vector<uint8_t> dec_scratch_;  // stored-image staging for decode
  std::vector<uint8_t> node_scratch_;  // decoded node for span reads
  std::vector<std::vector<uint8_t>> batch_images_;  // batched write staging
  std::vector<sim::IoRequest> reqs_scratch_;
  std::vector<sim::IoRequest> batch_scratch_;
  std::vector<size_t> pending_scratch_;
  std::vector<size_t> failed_scratch_;
  std::vector<sim::IoCompletion> cs_scratch_;
  std::vector<Status> per_io_scratch_;
  NodeStoreStats stats_;
  RetryPolicy retry_;
  RetryCounters retry_counters_;
};

}  // namespace damkit::blockdev
