#include "betree_opt/opt_betree.h"

#include <algorithm>
#include <span>
#include <string>
#include <vector>

namespace damkit::betree_opt {

using betree::BeTreeNode;
using betree::kInvalidNode;
using betree::Message;

OptBeTree::OptBeTree(sim::Device& dev, sim::IoContext& io,
                     betree::BeTreeConfig config)
    : BeTree(dev, io, config) {
  segment_cap_ = std::max<uint64_t>(config_.node_bytes / target_fanout(), 512);
}

bool OptBeTree::flush_pressure(const BeTreeNode& node) const {
  if (node.is_leaf()) return false;
  return node.buffer_bytes(node.fullest_child()) > dynamic_cap(node);
}

uint64_t OptBeTree::dynamic_cap(const BeTreeNode& node) const {
  // Theorem 9 caps each buffer segment at B/F. Its weight-balanced
  // rebuilds keep every node's fanout at (1±o(1))F, so B/F is also each
  // child's fair share of a full buffer. Our size-based splitter lets
  // under-full nodes (child_count ≪ F, e.g. near the root of a small
  // tree) exist; capping those at B/F would flush 1/child_count-th of
  // the theorem's batch size and destroy insert amortization. Cap at the
  // fair share instead — for full-fanout nodes the two coincide.
  const uint64_t fair_share =
      config_.node_bytes / (2 * std::max<size_t>(node.child_count(), 1));
  return std::max(segment_cap_, fair_share);
}

uint64_t OptBeTree::index_block_bytes(const BeTreeNode& node) const {
  // The node's index region: header + child table + pivot keys. This is
  // the αF term of Theorem 9; the buffer segment on the query path
  // (bounded by the flush cap) is the αB/F term.
  return node.byte_size() - node.total_buffer_bytes();
}

uint64_t OptBeTree::leaf_segment_bytes(const BeTreeNode& leaf) const {
  // Basement-node read: one B/F chunk of the leaf (or the whole leaf if
  // it is smaller than a chunk).
  return std::min<uint64_t>(leaf.byte_size(), segment_cap_);
}

uint32_t OptBeTree::leaf_chunk_of(const BeTreeNode& leaf,
                                  std::string_view key) const {
  if (leaf.entry_count() == 0) return 0;
  const uint64_t chunk_bytes = leaf_segment_bytes(leaf);
  const uint64_t chunks =
      std::max<uint64_t>(1, (leaf.byte_size() + chunk_bytes - 1) / chunk_bytes);
  const size_t pos = leaf.lower_bound(key);
  return static_cast<uint32_t>(
      std::min<uint64_t>(chunks - 1,
                         pos * chunks / (leaf.entry_count() + 1)));
}

StatusOr<OptBeTree::NodeRef> OptBeTree::try_fetch(uint64_t id) {
  StatusOr<NodeRef> node_or = BeTree::try_fetch(id);
  DAMKIT_RETURN_IF_ERROR(node_or.status());
  NodeRef node = *std::move(node_or);
  if (!node->residency.partial) return node;
  // Structural access needs the full node: charge the bytes the query
  // path skipped, then re-account the cache entry at full size.
  const uint64_t charged =
      std::min<uint64_t>(node->residency.charged_bytes, config_.node_bytes);
  const uint64_t remainder = config_.node_bytes - charged;
  if (remainder > 0) {
    DAMKIT_RETURN_IF_ERROR(store_.try_touch_read(id, charged, remainder));
  }
  node->residency = BeTreeNode::Residency{};
  ++opt_stats_.residency_upgrades;
  pool_->erase(id);
  pool_->put(id, node, config_.node_bytes, /*dirty=*/false);
  return node;
}

Status OptBeTree::charge_segment(uint64_t id, const NodeRef& node,
                                 uint32_t seg, std::span<const IoPart> parts,
                                 bool newly_loaded) {
  // All parts of one descent step go out as a single batch: the pivot
  // block and the buffer segment are known together (the parent's pivot
  // block delivered both addresses), so the device may overlap them.
  std::vector<blockdev::NodeStore::NodeSpan> spans;
  spans.reserve(parts.size());
  uint64_t total = 0;
  for (const IoPart& p : parts) {
    if (p.length == 0) continue;
    const uint64_t len = std::min<uint64_t>(p.length, config_.node_bytes);
    const uint64_t offset =
        std::min<uint64_t>(p.offset, config_.node_bytes - len);
    spans.push_back({id, offset, len});
    total += len;
  }
  DAMKIT_RETURN_IF_ERROR(store_.try_touch_read_batch(spans));
  opt_stats_.segment_reads += spans.size();
  opt_stats_.segment_bytes_read += total;

  node->residency.partial = true;
  node->residency.charged_bytes =
      std::min<uint64_t>(node->residency.charged_bytes + total,
                         config_.node_bytes);
  node->residency.segments.push_back(seg);

  if (newly_loaded) {
    pool_->put(id, node, node->residency.charged_bytes, /*dirty=*/false);
  } else {
    // Re-account at the grown charge (entry stays clean: mutations always
    // upgrade to full residency before dirtying).
    pool_->erase(id);
    pool_->put(id, node, node->residency.charged_bytes, /*dirty=*/false);
  }
  return Status();
}

StatusOr<std::optional<std::string>> OptBeTree::try_get(std::string_view key) {
  ++op_stats_.gets;
  if (root_ == kInvalidNode) return std::optional<std::string>();

  std::vector<std::vector<Message>> collected;  // root-first
  uint64_t id = root_;
  std::optional<std::string> result_state;
  for (;;) {
    NodeRef node = pool_->get<BeTreeNode>(id);
    bool newly_loaded = false;
    if (node == nullptr) {
      // Deserialize first; the IO size to charge depends on which child
      // the descent takes (the parent's pivot block told the real system
      // this before the IO was issued).
      store_.peek_node(id, io_buf_);
      node = BeTreeNode::deserialize(io_buf_);
      newly_loaded = true;
    }

    if (node->is_leaf()) {
      const uint32_t chunk = leaf_chunk_of(*node, key);
      const bool need_charge =
          newly_loaded ||
          (node->residency.partial && !node->residency.has_segment(chunk));
      if (need_charge) {
        const uint64_t len = leaf_segment_bytes(*node);
        const uint64_t hint = static_cast<uint64_t>(chunk) * len;
        const IoPart part{hint, len};
        DAMKIT_RETURN_IF_ERROR(
            charge_segment(id, node, chunk, {&part, 1}, newly_loaded));
      }
      const size_t i = node->lower_bound(key);
      if (node->key_equals(i, key)) result_state = node->value(i);
      break;
    }

    const size_t idx = node->child_index(key);
    const bool need_charge =
        newly_loaded ||
        (node->residency.partial &&
         !node->residency.has_segment(static_cast<uint32_t>(idx)));
    if (need_charge) {
      // Pivot block at the extent head + the one buffer segment on the
      // query path, issued together as a two-request batch.
      const uint64_t hint = (config_.node_bytes * idx) / node->child_count();
      const IoPart parts[] = {{0, index_block_bytes(*node)},
                              {hint, node->buffer_bytes(idx)}};
      DAMKIT_RETURN_IF_ERROR(charge_segment(
          id, node, static_cast<uint32_t>(idx), parts, newly_loaded));
    }
    std::vector<Message> msgs;
    node->collect_for_key(idx, key, &msgs);
    collected.push_back(std::move(msgs));
    id = node->child(idx);
  }

  for (auto level = collected.rbegin(); level != collected.rend(); ++level) {
    for (const Message& m : *level) {
      result_state = apply_message(std::move(result_state), m);
    }
  }
  return result_state;
}

void OptBeTree::export_metrics(stats::MetricsRegistry& reg,
                               std::string_view prefix) const {
  BeTree::export_metrics(reg, prefix);
  const std::string p(prefix);
  reg.add(p + "segment_reads", opt_stats_.segment_reads);
  reg.add(p + "segment_bytes_read", opt_stats_.segment_bytes_read);
  reg.add(p + "residency_upgrades", opt_stats_.residency_upgrades);
  reg.set(p + "segment_cap_bytes", static_cast<double>(segment_cap_));
  if (opt_stats_.segment_reads > 0) {
    reg.set(p + "mean_segment_read_bytes",
            static_cast<double>(opt_stats_.segment_bytes_read) /
                static_cast<double>(opt_stats_.segment_reads));
  }
}

}  // namespace damkit::betree_opt
