// The affine-optimized Bε-tree of Theorem 9.
//
// Three changes versus the standard Bε-tree turn the whole-node query cost
// (1 + αB)·log_F(N/M) into (1 + αB/F + αF)·log_F(N/M)(1 + o(1)) without
// hurting inserts:
//
//  1. Per-child buffer segments are capped at B/F bytes: whenever a
//     child's pending messages exceed the cap, that child is flushed even
//     if the node as a whole still fits. Every segment a query must read
//     is therefore ≤ B/F.
//  2. A node's pivots are materialized next to the buffer segment for
//     that child in its *parent* (in our simulation: the descent already
//     knows the child index before issuing the child IO, so each level
//     costs one IO of pivot-block + one-segment size instead of a whole
//     node).
//  3. Leaves are read at basement granularity (B/F chunks), TokuDB-style.
//
// Inserts, deletes, upserts, flushes and range scans use the standard
// whole-node IO discipline inherited from BeTree — Theorem 9 leaves the
// insert bound unchanged.
//
// Paper simplification note (recorded in DESIGN.md): the theorem's
// weight-balanced subtree rebuilds serve to pin the fanout to (1±o(1))F;
// our size-based splitting keeps fanout within [F/2, F], a constant-factor
// band, which is what the measured per-level IO size depends on.
#pragma once

#include "betree/betree.h"

namespace damkit::betree_opt {

struct OptBeTreeStats {
  uint64_t segment_reads = 0;       // sub-node query IOs issued
  uint64_t segment_bytes_read = 0;  // total bytes of those IOs
  uint64_t residency_upgrades = 0;  // partial nodes later read in full
};

class OptBeTree final : public betree::BeTree {
 public:
  OptBeTree(sim::Device& dev, sim::IoContext& io, betree::BeTreeConfig config);

  /// Point query using sub-node IOs: per internal level, one IO covering
  /// the child's pivot block plus the one buffer segment on the query
  /// path; at the leaf, one basement chunk.
  StatusOr<std::optional<std::string>> try_get(std::string_view key) override;

  /// Per-child buffer cap B/F in bytes.
  uint64_t segment_cap_bytes() const { return segment_cap_; }

  const OptBeTreeStats& opt_stats() const { return opt_stats_; }

  /// Base Bε-tree metrics plus the Theorem-9 query-path counters
  /// (segment_reads, segment_bytes_read, residency_upgrades) and the mean
  /// segment-read size.
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override;

 protected:
  /// Structural access requires the whole node: upgrade partially-charged
  /// residents by charging the remaining bytes as one IO.
  StatusOr<NodeRef> try_fetch(uint64_t id) override;

  /// Theorem 9 invariant: flush as soon as any child's segment exceeds B/F.
  bool flush_pressure(const betree::BeTreeNode& node) const override;

 private:
  /// Per-node flush cap: max(B/F, fair share for under-full nodes).
  uint64_t dynamic_cap(const betree::BeTreeNode& node) const;

  /// Bytes of the node's index region (header + child table + pivot keys)
  /// — the pivot-block read of a query-path descent (the αF term).
  uint64_t index_block_bytes(const betree::BeTreeNode& node) const;
  uint64_t leaf_segment_bytes(const betree::BeTreeNode& leaf) const;
  /// Which basement chunk of `leaf` the key falls into.
  uint32_t leaf_chunk_of(const betree::BeTreeNode& leaf,
                         std::string_view key) const;
  /// One node-relative sub-extent of a query-path charge.
  struct IoPart {
    uint64_t offset = 0;
    uint64_t length = 0;
  };
  /// Charge the sub-node IOs in `parts` for segment `seg` as ONE device
  /// batch (internal levels issue pivot block + buffer segment together)
  /// and (re-)account the cache entry at the node's accumulated charge.
  /// On a non-OK return nothing is charged and the residency/cache state
  /// is unchanged.
  Status charge_segment(uint64_t id, const NodeRef& node, uint32_t seg,
                        std::span<const IoPart> parts, bool newly_loaded);

  uint64_t segment_cap_;
  OptBeTreeStats opt_stats_;
};

}  // namespace damkit::betree_opt
