// A disk-resident Bε-tree over a simulated device — the "TokuDB" of the
// paper's §7 experiments.
//
// Inserts/deletes/upserts become messages appended to the root's buffer;
// when a node's serialized size exceeds the node size, the buffer of the
// fullest child is flushed down one level (recursing as children
// overflow). Queries collect pending messages for the key on the
// root-to-leaf path and apply them to the leaf state. Node size B and
// target fanout F are the tuning knobs of §6: F ≈ B^ε.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "betree/betree_node.h"
#include "blockdev/block_device.h"
#include "cache/buffer_pool.h"
#include "sim/device.h"
#include "stats/metrics.h"
#include "stats/trace_buffer.h"

namespace damkit::betree {

enum class FlushPolicy : uint8_t {
  kFullestChild,  // classic: flush the child with the most pending bytes
  kRoundRobin,    // ablation baseline: rotate through children
};

struct BeTreeConfig {
  uint64_t node_bytes = 1024 * 1024;
  /// Target fanout F. 0 means "choose F = sqrt(B / pivot_estimate)" — the
  /// ε = 1/2 regime the paper calls the B^(1/2)-tree.
  size_t target_fanout = 0;
  uint64_t cache_bytes = 32 * 1024 * 1024;
  double bulk_fill = 0.85;
  double min_fill = 0.2;  // leaf-merge threshold during flushes
  FlushPolicy flush_policy = FlushPolicy::kFullestChild;
  uint64_t base_offset = 0;
  /// Estimated key size used only for the default-fanout heuristic.
  size_t pivot_estimate_bytes = 24;
  /// Max children batch-prefetched ahead of a range scan (0/1 disables).
  /// The window doubles from 2 as a scan proceeds through an internal
  /// node, so a short scan wastes at most one small batch while a long
  /// one reaches full device parallelism.
  size_t scan_prefetch_window = 8;
  /// Block codec for stored node images (see blockdev::NodeStore). The
  /// optimized Bε-tree's sub-node charges are scaled by each node's
  /// stored/logical ratio, so Theorem-9 accounting stays consistent.
  blockdev::CodecKind codec = blockdev::CodecKind::kIdentity;
};

struct BeTreeOpStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t erases = 0;
  uint64_t upserts = 0;
  uint64_t scans = 0;
  uint64_t flushes = 0;
  uint64_t leaf_splits = 0;
  uint64_t internal_splits = 0;
  uint64_t leaf_merges = 0;
  uint64_t messages_moved = 0;
  uint64_t logical_bytes_written = 0;
};

class BeTree {
 public:
  BeTree(sim::Device& dev, sim::IoContext& io, BeTreeConfig config);
  virtual ~BeTree();

  BeTree(const BeTree&) = delete;
  BeTree& operator=(const BeTree&) = delete;

  /// Insert or overwrite.
  void put(std::string_view key, std::string_view value);
  /// Fallible put. Non-OK means some IO along the message path gave up
  /// after retries; the tree stays structurally valid and no previously
  /// acknowledged data is lost, but this message may not have been applied.
  Status try_put(std::string_view key, std::string_view value);
  /// Delete (tombstone message; returns void — a Bε-tree delete is blind).
  void erase(std::string_view key);
  Status try_erase(std::string_view key);
  /// Blind counter increment (8-byte LE semantics, see message.h).
  void upsert(std::string_view key, int64_t delta);
  Status try_upsert(std::string_view key, int64_t delta);

  /// Point query (CHECK-aborts on IO failure; see try_get).
  std::optional<std::string> get(std::string_view key);
  virtual StatusOr<std::optional<std::string>> try_get(std::string_view key);

  /// Range query: up to `limit` live pairs with key >= lo, in key order.
  std::vector<std::pair<std::string, std::string>> scan(std::string_view lo,
                                                        size_t limit);
  StatusOr<std::vector<std::pair<std::string, std::string>>> try_scan(
      std::string_view lo, size_t limit);

  /// Build from `count` strictly-ascending items; tree must be empty.
  void bulk_load(uint64_t count,
                 const std::function<std::pair<std::string, std::string>(
                     uint64_t)>& item);

  void flush_cache();  // write back all dirty nodes
  /// Fallible checkpoint: failed nodes stay dirty (retried on next call).
  Status try_flush_cache();

  /// Crash teardown: drop all cached (possibly dirty) nodes without
  /// writing them back, so a tree over a dead device can be destroyed
  /// without the destructor's flush aborting. Terminal — destroy after.
  void abandon() { pool_->discard_all(); }

  /// Retry policy for this tree's device IO (see blockdev::RetryPolicy).
  void set_retry_policy(const blockdev::RetryPolicy& policy) {
    store_.set_retry_policy(policy);
  }
  const blockdev::RetryCounters& retry_counters() const {
    return store_.retry_counters();
  }

  size_t height() const { return height_; }
  size_t target_fanout() const { return fanout_; }
  uint64_t nodes_in_use() const { return store_.nodes_in_use(); }
  const BeTreeOpStats& op_stats() const { return op_stats_; }
  const cache::BufferPoolStats& cache_stats() const { return pool_->stats(); }
  const BeTreeConfig& config() const { return config_; }
  sim::IoContext& io() { return *io_; }

  /// Structural invariants: key ordering, buffer routing (every buffered
  /// message's key lies in its child's range), size accounting, uniform
  /// leaf depth, fanout bounds.
  void check_invariants();

  /// Flush counts by the depth of the flushing node at flush time (root =
  /// 0). Depths are as-of-flush: a later root split does not re-label
  /// earlier flushes.
  const std::vector<uint64_t>& flushes_by_depth() const {
    return flushes_by_depth_;
  }

  /// Structured-event sink for flush events (nullptr disables).
  void set_event_trace(stats::TraceBuffer* events) { events_ = events; }

  /// Export op counters, per-depth flush counts (`<prefix>flushes.depth<d>`),
  /// cache (`<prefix>cache.`), store IO mix (`<prefix>store.`), and write
  /// amplification under `prefix` (e.g. "betree.").
  virtual void export_metrics(stats::MetricsRegistry& reg,
                              std::string_view prefix) const;

 protected:
  using NodeRef = std::shared_ptr<BeTreeNode>;

  struct SplitInfo {
    std::string separator;
    uint64_t right_id;
  };

  /// Fetch for structural/mutating access (whole-node IO on miss).
  /// Subclasses may refine the IO accounting (see OptBeTree).
  virtual StatusOr<NodeRef> try_fetch(uint64_t id);
  /// CHECK-on-error wrapper around try_fetch (legacy/invariant paths).
  NodeRef fetch(uint64_t id);
  /// Batch-read children [begin, end) of `node` that are not yet cached
  /// (one vectored device IO), inserting them clean and fully resident.
  Status prefetch_children(const BeTreeNode& node, size_t begin, size_t end);
  /// Additional flush pressure beyond whole-node overflow. The optimized
  /// Bε-tree caps per-child buffers at B/F (Theorem 9) by overriding this.
  virtual bool flush_pressure(const BeTreeNode& node) const;
  void install_new(uint64_t id, NodeRef node);
  void mark_dirty(uint64_t id) { pool_->mark_dirty(id); }

  Status root_add(Message msg);
  /// Restore size/fanout invariants at (id, node); any splits that the
  /// parent must absorb are appended to `out` in ascending key order —
  /// INCLUDING on a non-OK return (the caller must link whatever splits
  /// were produced or their subtrees would be orphaned). `depth` is the
  /// node's distance from the root (flush attribution).
  Status fix_node(uint64_t id, NodeRef node, std::vector<SplitInfo>& out,
                  size_t depth);
  /// Move one child buffer down a level; fixes the child recursively and
  /// absorbs its splits into `node`. The flush is attributed to `depth`.
  Status flush_one(uint64_t id, NodeRef node, size_t depth);
  /// Apply messages to a leaf child of (parent); may merge/drop the leaf.
  Status apply_to_leaf_child(uint64_t parent_id, NodeRef parent,
                             size_t child_idx, std::vector<Message> msgs,
                             size_t depth);
  Status fix_root();
  Status collapse_root();
  /// Depth-first range collection merging leaf entries with the pending
  /// ancestor messages routed to each subtree. Returns true once `limit`
  /// pairs have been emitted.
  StatusOr<bool> scan_rec(
      uint64_t id, std::string_view lo, size_t limit,
      const std::vector<std::vector<Message>>& pending,
      std::vector<std::pair<std::string, std::string>>* out);

  bool overflowing(const BeTreeNode& n) const {
    return n.byte_size() > config_.node_bytes;
  }
  size_t pick_flush_child(const BeTreeNode& n);

  void check_subtree(uint64_t id, const std::string* lo, const std::string* hi,
                     size_t depth, size_t leaf_depth, uint64_t* live);

  sim::Device* dev_;
  sim::IoContext* io_;
  BeTreeConfig config_;
  size_t fanout_;
  blockdev::NodeStore store_;
  std::unique_ptr<cache::BufferPool> pool_;

  uint64_t root_ = kInvalidNode;
  size_t height_ = 0;
  BeTreeOpStats op_stats_;
  std::vector<uint64_t> flushes_by_depth_;  // index = flushing node's depth
  stats::TraceBuffer* events_ = nullptr;
  size_t round_robin_cursor_ = 0;
  std::vector<uint8_t> io_buf_;
};

}  // namespace damkit::betree
