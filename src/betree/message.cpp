#include "betree/message.h"

#include "util/bytes.h"
#include "util/status.h"

namespace damkit::betree {

std::string encode_counter(uint64_t v) {
  std::string out(8, '\0');
  store_u64(reinterpret_cast<uint8_t*>(out.data()), v);
  return out;
}

uint64_t decode_counter(std::string_view v) {
  if (v.size() != 8) return 0;  // non-counter values count as zero
  return load_u64(reinterpret_cast<const uint8_t*>(v.data()));
}

std::string encode_delta(int64_t d) {
  return encode_counter(static_cast<uint64_t>(d));
}

std::optional<std::string> apply_message(std::optional<std::string> base,
                                         const Message& msg) {
  switch (msg.kind) {
    case MessageKind::kPut:
      return msg.payload;
    case MessageKind::kTombstone:
      return std::nullopt;
    case MessageKind::kUpsert: {
      const uint64_t current = base.has_value() ? decode_counter(*base) : 0;
      const uint64_t delta = decode_counter(msg.payload);
      return encode_counter(current + delta);  // wrap-around by design
    }
  }
  DAMKIT_CHECK_MSG(false, "unknown message kind");
  return std::nullopt;
}

}  // namespace damkit::betree
