#include "betree/betree.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <span>
#include <utility>

#include "kv/slice.h"

namespace damkit::betree {

BeTree::BeTree(sim::Device& dev, sim::IoContext& io, BeTreeConfig config)
    : dev_(&dev),
      io_(&io),
      config_(config),
      store_(dev, io, config.node_bytes, config.base_offset, config.codec) {
  DAMKIT_CHECK(config_.node_bytes >= 1024);
  DAMKIT_CHECK(config_.cache_bytes >= config_.node_bytes);
  if (config_.target_fanout > 0) {
    fanout_ = config_.target_fanout;
  } else {
    // ε = 1/2 default: F = sqrt(B / pivot_estimate) — the B^(1/2)-tree.
    fanout_ = static_cast<size_t>(std::sqrt(
        static_cast<double>(config_.node_bytes) /
        static_cast<double>(config_.pivot_estimate_bytes)));
  }
  fanout_ = std::max<size_t>(fanout_, 4);
  pool_ = std::make_unique<cache::BufferPool>(
      config_.cache_bytes, [this](uint64_t id, void* object) {
        auto* node = static_cast<BeTreeNode*>(object);
        node->serialize(io_buf_);
        return store_.try_write_node(id, io_buf_);
      });
  // Checkpoints batch: serialize every dirty node, then write all extents
  // as one submission so the flush pays the slowest write, not the sum.
  pool_->set_batch_writeback(
      [this](std::span<const std::pair<uint64_t, void*>> dirty,
             std::vector<bool>* written) {
        std::vector<std::vector<uint8_t>> images(dirty.size());
        std::vector<blockdev::NodeStore::NodeImage> writes;
        writes.reserve(dirty.size());
        for (size_t i = 0; i < dirty.size(); ++i) {
          static_cast<BeTreeNode*>(dirty[i].second)->serialize(images[i]);
          writes.push_back({dirty[i].first, images[i]});
        }
        return store_.try_write_nodes(writes, written);
      });
}

BeTree::~BeTree() { DAMKIT_CHECK_OK(pool_->flush_all()); }

StatusOr<BeTree::NodeRef> BeTree::try_fetch(uint64_t id) {
  DAMKIT_CHECK(id != kInvalidNode);
  if (NodeRef cached = pool_->get<BeTreeNode>(id)) return cached;
  DAMKIT_RETURN_IF_ERROR(store_.try_read_node(id, io_buf_));
  NodeRef node = BeTreeNode::deserialize(io_buf_);
  pool_->put(id, node, config_.node_bytes, /*dirty=*/false);
  return node;
}

BeTree::NodeRef BeTree::fetch(uint64_t id) {
  StatusOr<NodeRef> node = try_fetch(id);
  DAMKIT_CHECK_OK(node.status());
  return *std::move(node);
}

void BeTree::install_new(uint64_t id, NodeRef node) {
  pool_->put(id, std::move(node), config_.node_bytes, /*dirty=*/true);
}

Status BeTree::prefetch_children(const BeTreeNode& node, size_t begin,
                                 size_t end) {
  std::vector<uint64_t> missing;
  for (size_t i = begin; i < end && i < node.child_count(); ++i) {
    const uint64_t cid = node.child(i);
    if (!pool_->contains(cid)) missing.push_back(cid);
  }
  // A batch of one gains nothing over the fetch() the caller will do.
  if (missing.size() < 2) return Status();
  std::vector<std::vector<uint8_t>> images;
  DAMKIT_RETURN_IF_ERROR(store_.try_read_nodes(missing, images));
  for (size_t i = 0; i < missing.size(); ++i) {
    pool_->put(missing[i], BeTreeNode::deserialize(images[i]),
               config_.node_bytes, /*dirty=*/false);
  }
  return Status();
}

void BeTree::put(std::string_view key, std::string_view value) {
  DAMKIT_CHECK_OK(try_put(key, value));
}

Status BeTree::try_put(std::string_view key, std::string_view value) {
  // A leaf must be able to hold two entries or splitting cannot make
  // progress; surface misconfiguration loudly.
  DAMKIT_CHECK_MSG(
      Message::bytes_for(key.size(), value.size()) <= config_.node_bytes / 2,
      "entry of " << key.size() + value.size()
                  << " bytes too large for node_bytes=" << config_.node_bytes);
  ++op_stats_.puts;
  op_stats_.logical_bytes_written += key.size() + value.size();
  return root_add(
      Message{MessageKind::kPut, std::string(key), std::string(value)});
}

void BeTree::erase(std::string_view key) { DAMKIT_CHECK_OK(try_erase(key)); }

Status BeTree::try_erase(std::string_view key) {
  ++op_stats_.erases;
  op_stats_.logical_bytes_written += key.size();
  return root_add(Message{MessageKind::kTombstone, std::string(key), {}});
}

void BeTree::upsert(std::string_view key, int64_t delta) {
  DAMKIT_CHECK_OK(try_upsert(key, delta));
}

Status BeTree::try_upsert(std::string_view key, int64_t delta) {
  ++op_stats_.upserts;
  op_stats_.logical_bytes_written += key.size() + 8;
  return root_add(
      Message{MessageKind::kUpsert, std::string(key), encode_delta(delta)});
}

Status BeTree::root_add(Message msg) {
  if (root_ == kInvalidNode) {
    StatusOr<uint64_t> id = store_.try_allocate();
    DAMKIT_RETURN_IF_ERROR(id.status());
    root_ = *id;
    install_new(root_, BeTreeNode::make_leaf());
    height_ = 1;
  }
  StatusOr<NodeRef> root_or = try_fetch(root_);
  DAMKIT_RETURN_IF_ERROR(root_or.status());
  NodeRef root = *std::move(root_or);
  if (root->is_leaf()) {
    root->leaf_apply(msg);
  } else {
    // Two statements: the child index must be computed before the message
    // is moved into the buffer (argument evaluation order is unspecified).
    const size_t idx = root->child_index(msg.key);
    root->buffer_add(idx, std::move(msg));
  }
  mark_dirty(root_);
  if (overflowing(*root) || flush_pressure(*root)) return fix_root();
  return Status();
}

bool BeTree::flush_pressure(const BeTreeNode& /*node*/) const { return false; }

Status BeTree::fix_root() {
  StatusOr<NodeRef> root_or = try_fetch(root_);
  DAMKIT_RETURN_IF_ERROR(root_or.status());
  NodeRef root = *std::move(root_or);
  // Reserve the potential new root up front: once fix_node has produced
  // splits they MUST be linked under a new root, and an allocation failure
  // at that point would orphan their subtrees.
  StatusOr<uint64_t> reserved = store_.try_allocate();
  DAMKIT_RETURN_IF_ERROR(reserved.status());
  std::vector<SplitInfo> splits;
  const Status fixed = fix_node(root_, root, splits, /*depth=*/0);
  if (splits.empty()) {
    store_.free(*reserved);
    return fixed;
  }
  const uint64_t new_root_id = *reserved;
  NodeRef new_root = BeTreeNode::make_internal();
  new_root->internal_init(root_);
  for (auto& s : splits) {
    new_root->internal_insert(new_root->child_count() - 1,
                              std::move(s.separator), s.right_id);
  }
  install_new(new_root_id, new_root);
  root_ = new_root_id;
  ++height_;
  DAMKIT_RETURN_IF_ERROR(fixed);
  // A burst of splits can overfill even the fresh root.
  if (overflowing(*new_root) ||
      new_root->child_count() > fanout_) {
    return fix_root();
  }
  return Status();
}

size_t BeTree::pick_flush_child(const BeTreeNode& n) {
  if (config_.flush_policy == FlushPolicy::kFullestChild) {
    return n.fullest_child();
  }
  // Round robin over non-empty buffers.
  const size_t count = n.child_count();
  for (size_t step = 0; step < count; ++step) {
    const size_t i = (round_robin_cursor_ + step) % count;
    if (n.buffer_bytes(i) > 0) {
      round_robin_cursor_ = (i + 1) % count;
      return i;
    }
  }
  return n.fullest_child();
}

Status BeTree::fix_node(uint64_t id, NodeRef node, std::vector<SplitInfo>& out,
                        size_t depth) {
  if (!node->is_leaf()) {
    while ((overflowing(*node) || flush_pressure(*node)) &&
           node->total_buffer_bytes() > 0) {
      DAMKIT_RETURN_IF_ERROR(flush_one(id, node, depth));
    }
  }
  const bool need_split = overflowing(*node) ||
                          (!node->is_leaf() && node->child_count() > fanout_);
  if (!need_split) return Status();
  if (node->is_leaf() && node->entry_count() < 2) return Status();
  if (!node->is_leaf() && node->child_count() < 2) return Status();

  // Allocate BEFORE split() mutates the node: an exhausted allocator then
  // leaves the node whole (oversized but readable; retried later).
  StatusOr<uint64_t> right_alloc = store_.try_allocate();
  DAMKIT_RETURN_IF_ERROR(right_alloc.status());
  const uint64_t right_id = *right_alloc;
  BeTreeNode::SplitResult sr = node->split();
  if (node->is_leaf()) {
    ++op_stats_.leaf_splits;
  } else {
    ++op_stats_.internal_splits;
  }
  NodeRef right = sr.right;
  install_new(right_id, right);
  mark_dirty(id);
  // Either half may still violate limits; recurse on both, emitting the
  // accumulated separators in strictly ascending key order: left's splits
  // (keys < separator), then the separator, then right's (keys > it).
  // The separator for the half just produced is pushed even when the left
  // recursion fails — dropping it would orphan the right subtree.
  const Status left_fixed = fix_node(id, node, out, depth);
  out.push_back({std::move(sr.separator), right_id});
  DAMKIT_RETURN_IF_ERROR(left_fixed);
  return fix_node(right_id, right, out, depth);
}

Status BeTree::flush_one(uint64_t id, NodeRef node, size_t depth) {
  const size_t idx = pick_flush_child(*node);
  if (node->buffer_bytes(idx) == 0) return Status();
  // Fetch the child BEFORE draining the buffer: a read failure then leaves
  // every pending message in place.
  const uint64_t child_id = node->child(idx);
  StatusOr<NodeRef> child_or = try_fetch(child_id);
  DAMKIT_RETURN_IF_ERROR(child_or.status());
  NodeRef child = *std::move(child_or);
  std::vector<Message> msgs = node->buffer_take(idx);
  ++op_stats_.flushes;
  op_stats_.messages_moved += msgs.size();
  if (depth >= flushes_by_depth_.size()) flushes_by_depth_.resize(depth + 1);
  ++flushes_by_depth_[depth];
  DAMKIT_STATS_ONLY(if (events_ != nullptr && stats::collecting()) {
    events_->emit({io_->now(), "betree", "flush", depth, msgs.size(), 0});
  });
  mark_dirty(id);

  if (child->is_leaf()) {
    return apply_to_leaf_child(id, node, idx, std::move(msgs), depth);
  }

  for (Message& m : msgs) {
    const size_t ci = child->child_index(m.key);
    child->buffer_add(ci, std::move(m));
  }
  mark_dirty(child_id);
  if (overflowing(*child)) {
    std::vector<SplitInfo> splits;
    const Status fixed = fix_node(child_id, child, splits, depth + 1);
    size_t at = idx;
    for (auto& s : splits) {
      node->internal_insert(at, std::move(s.separator), s.right_id);
      ++at;
    }
    DAMKIT_RETURN_IF_ERROR(fixed);
  }
  return Status();
}

Status BeTree::apply_to_leaf_child(uint64_t parent_id, NodeRef parent,
                                   size_t child_idx, std::vector<Message> msgs,
                                   size_t depth) {
  const uint64_t leaf_id = parent->child(child_idx);
  StatusOr<NodeRef> leaf_or = try_fetch(leaf_id);
  if (!leaf_or.ok()) {
    // Nothing applied yet: hand the messages back to the parent buffer so
    // the flush can be retried without loss.
    for (Message& m : msgs) parent->buffer_add(child_idx, std::move(m));
    return leaf_or.status();
  }
  NodeRef leaf = *std::move(leaf_or);
  for (const Message& m : msgs) leaf->leaf_apply(m);
  mark_dirty(leaf_id);

  if (overflowing(*leaf)) {
    std::vector<SplitInfo> splits;
    const Status fixed = fix_node(leaf_id, leaf, splits, depth + 1);
    size_t at = child_idx;
    for (auto& s : splits) {
      parent->internal_insert(at, std::move(s.separator), s.right_id);
      ++at;
    }
    mark_dirty(parent_id);
    return fixed;
  }

  // Underflow: merge small leaves so tombstone-heavy workloads shrink the
  // tree instead of accumulating empty leaves.
  const auto min_bytes = static_cast<uint64_t>(
      config_.min_fill * static_cast<double>(config_.node_bytes));
  if (leaf->byte_size() >= min_bytes || parent->child_count() < 2) {
    return Status();
  }

  const size_t li = (child_idx + 1 < parent->child_count()) ? child_idx
                                                            : child_idx - 1;
  const uint64_t left_id = parent->child(li);
  const uint64_t right_id = parent->child(li + 1);
  StatusOr<NodeRef> left_or = try_fetch(left_id);
  DAMKIT_RETURN_IF_ERROR(left_or.status());
  StatusOr<NodeRef> right_or = try_fetch(right_id);
  DAMKIT_RETURN_IF_ERROR(right_or.status());
  NodeRef left = *std::move(left_or);
  NodeRef right = *std::move(right_or);
  if (!left->is_leaf() || !right->is_leaf()) return Status();
  const uint64_t merged =
      left->byte_size() + right->byte_size() - BeTreeNode::header_bytes();
  if (merged > config_.node_bytes * 9 / 10) return Status();

  left->leaf_merge_from_right(*right);
  parent->internal_remove_child(li);
  mark_dirty(left_id);
  mark_dirty(parent_id);
  pool_->erase(right_id);
  store_.free(right_id);
  ++op_stats_.leaf_merges;
  return collapse_root();
}

Status BeTree::collapse_root() {
  while (height_ > 1) {
    StatusOr<NodeRef> root_or = try_fetch(root_);
    DAMKIT_RETURN_IF_ERROR(root_or.status());
    NodeRef root = *std::move(root_or);
    if (root->is_leaf() || root->child_count() > 1) return Status();
    if (root->total_buffer_bytes() > 0) {
      // Push the stragglers down before collapsing.
      DAMKIT_RETURN_IF_ERROR(flush_one(root_, root, /*depth=*/0));
      continue;
    }
    const uint64_t only = root->child(0);
    pool_->erase(root_);
    store_.free(root_);
    root_ = only;
    --height_;
  }
  return Status();
}

std::optional<std::string> BeTree::get(std::string_view key) {
  StatusOr<std::optional<std::string>> v = try_get(key);
  DAMKIT_CHECK_OK(v.status());
  return *std::move(v);
}

StatusOr<std::optional<std::string>> BeTree::try_get(std::string_view key) {
  ++op_stats_.gets;
  if (root_ == kInvalidNode) return std::optional<std::string>();
  std::vector<std::vector<Message>> collected;  // root-first
  uint64_t id = root_;
  StatusOr<NodeRef> node = try_fetch(id);
  DAMKIT_RETURN_IF_ERROR(node.status());
  while (!(*node)->is_leaf()) {
    const size_t idx = (*node)->child_index(key);
    std::vector<Message> msgs;
    (*node)->collect_for_key(idx, key, &msgs);
    collected.push_back(std::move(msgs));
    id = (*node)->child(idx);
    node = try_fetch(id);
    DAMKIT_RETURN_IF_ERROR(node.status());
  }
  std::optional<std::string> state;
  const size_t i = (*node)->lower_bound(key);
  if ((*node)->key_equals(i, key)) state = (*node)->value(i);
  // Deeper buffers are older: apply leaf-adjacent levels first, each level
  // in arrival order.
  for (auto level = collected.rbegin(); level != collected.rend(); ++level) {
    for (const Message& m : *level) state = apply_message(std::move(state), m);
  }
  return state;
}

namespace {

/// Keep only messages whose key is within [lo, hi) (either bound optional),
/// preserving level structure and order.
std::vector<std::vector<Message>> filter_pending(
    const std::vector<std::vector<Message>>& pending, const std::string* lo,
    const std::string* hi) {
  std::vector<std::vector<Message>> out;
  out.reserve(pending.size());
  for (const auto& level : pending) {
    std::vector<Message> kept;
    for (const Message& m : level) {
      if (lo != nullptr && kv::compare(m.key, *lo) < 0) continue;
      if (hi != nullptr && kv::compare(m.key, *hi) >= 0) continue;
      kept.push_back(m);
    }
    out.push_back(std::move(kept));
  }
  return out;
}

}  // namespace

StatusOr<bool> BeTree::scan_rec(
    uint64_t id, std::string_view lo, size_t limit,
    const std::vector<std::vector<Message>>& pending,
    std::vector<std::pair<std::string, std::string>>* out) {
  StatusOr<NodeRef> node_or = try_fetch(id);
  DAMKIT_RETURN_IF_ERROR(node_or.status());
  NodeRef node = *std::move(node_or);
  if (node->is_leaf()) {
    // Merge leaf entries with pending messages; std::map gives key order.
    std::map<std::string, std::optional<std::string>> state;
    for (size_t i = node->lower_bound(lo); i < node->entry_count(); ++i) {
      state.emplace(node->key(i), node->value(i));
    }
    for (auto level = pending.rbegin(); level != pending.rend(); ++level) {
      for (const Message& m : *level) {
        auto it = state.find(m.key);
        std::optional<std::string> base;
        if (it != state.end()) base = it->second;
        state[m.key] = apply_message(std::move(base), m);
      }
    }
    for (auto& [k, v] : state) {
      if (!v.has_value()) continue;
      if (out->size() >= limit) return true;
      out->emplace_back(k, std::move(*v));
    }
    return out->size() >= limit;
  }

  const size_t start = node->child_index(lo);
  // Read ahead of the scan in doubling batches: the children are
  // independent extents, so an SSD serves a window P at a time (PDAM) and
  // an HDD reorders it within the NCQ window. Starting at 2 bounds the
  // waste when the scan stops early.
  size_t window = 2;
  size_t prefetched_until = start;
  for (size_t i = start; i < node->child_count(); ++i) {
    if (config_.scan_prefetch_window > 1 && i >= prefetched_until) {
      const size_t end = std::min(i + window, node->child_count());
      DAMKIT_RETURN_IF_ERROR(prefetch_children(*node, i, end));
      prefetched_until = end;
      window = std::min(window * 2, config_.scan_prefetch_window);
    }
    std::string lo_buf, hi_buf;
    const std::string* child_lo = nullptr;
    if (i > 0) {
      lo_buf = std::string(node->pivot(i - 1));
      child_lo = &lo_buf;
    }
    const std::string* child_hi = nullptr;
    if (i != node->pivot_count()) {
      hi_buf = std::string(node->pivot(i));
      child_hi = &hi_buf;
    }
    std::vector<std::vector<Message>> child_pending =
        filter_pending(pending, child_lo, child_hi);
    std::vector<Message> mine;
    for (const MessageView m : node->buffer(i)) {
      if (kv::compare(m.key, lo) >= 0) mine.push_back(m.to_message());
    }
    child_pending.push_back(std::move(mine));
    StatusOr<bool> done = scan_rec(node->child(i), lo, limit, child_pending,
                                   out);
    DAMKIT_RETURN_IF_ERROR(done.status());
    if (*done) return true;
  }
  return false;
}

std::vector<std::pair<std::string, std::string>> BeTree::scan(
    std::string_view lo, size_t limit) {
  StatusOr<std::vector<std::pair<std::string, std::string>>> out =
      try_scan(lo, limit);
  DAMKIT_CHECK_OK(out.status());
  return *std::move(out);
}

StatusOr<std::vector<std::pair<std::string, std::string>>> BeTree::try_scan(
    std::string_view lo, size_t limit) {
  ++op_stats_.scans;
  std::vector<std::pair<std::string, std::string>> out;
  if (root_ == kInvalidNode || limit == 0) return out;
  StatusOr<bool> done = scan_rec(root_, lo, limit, {}, &out);
  DAMKIT_RETURN_IF_ERROR(done.status());
  return out;
}

void BeTree::bulk_load(
    uint64_t count,
    const std::function<std::pair<std::string, std::string>(uint64_t)>& item) {
  DAMKIT_CHECK_MSG(root_ == kInvalidNode, "bulk_load requires an empty tree");
  if (count == 0) return;

  const auto target = static_cast<uint64_t>(
      config_.bulk_fill * static_cast<double>(config_.node_bytes));

  auto write_direct = [this](uint64_t id, BeTreeNode& n) {
    n.serialize(io_buf_);
    store_.write_node(id, io_buf_);
  };

  std::vector<std::pair<std::string, uint64_t>> level;  // (first key, id)
  NodeRef cur = BeTreeNode::make_leaf();
  std::string cur_first;
  std::string prev_key;
  for (uint64_t i = 0; i < count; ++i) {
    auto [key, value] = item(i);
    DAMKIT_CHECK_MSG(i == 0 || kv::compare(prev_key, key) < 0,
                     "bulk_load keys must be strictly ascending");
    prev_key = key;
    const uint64_t add =
        BeTreeNode::leaf_entry_bytes(key.size(), value.size());
    if (cur->entry_count() > 0 && cur->byte_size() + add > target) {
      const uint64_t id = store_.allocate();
      write_direct(id, *cur);
      level.emplace_back(std::move(cur_first), id);
      cur = BeTreeNode::make_leaf();
    }
    if (cur->entry_count() == 0) cur_first = key;
    cur->leaf_append(key, value);
  }
  {
    const uint64_t id = store_.allocate();
    write_direct(id, *cur);
    level.emplace_back(std::move(cur_first), id);
  }
  height_ = 1;

  while (level.size() > 1) {
    std::vector<std::pair<std::string, uint64_t>> above;
    size_t i = 0;
    while (i < level.size()) {
      NodeRef node = BeTreeNode::make_internal();
      std::string first = level[i].first;
      node->internal_init(level[i].second);
      ++i;
      while (i < level.size() && node->child_count() < fanout_) {
        const uint64_t add = BeTreeNode::pivot_bytes(level[i].first.size()) +
                             BeTreeNode::child_bytes();
        if (node->byte_size() + add > target && node->child_count() >= 2) {
          break;
        }
        node->internal_insert(node->child_count() - 1,
                              std::move(level[i].first), level[i].second);
        ++i;
      }
      const uint64_t id = store_.allocate();
      write_direct(id, *node);
      above.emplace_back(std::move(first), id);
    }
    level = std::move(above);
    ++height_;
  }
  root_ = level.front().second;
}

void BeTree::flush_cache() { DAMKIT_CHECK_OK(pool_->flush_all()); }

Status BeTree::try_flush_cache() { return pool_->flush_all(); }

void BeTree::export_metrics(stats::MetricsRegistry& reg,
                            std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "puts", op_stats_.puts);
  reg.add(p + "gets", op_stats_.gets);
  reg.add(p + "erases", op_stats_.erases);
  reg.add(p + "upserts", op_stats_.upserts);
  reg.add(p + "scans", op_stats_.scans);
  reg.add(p + "flushes", op_stats_.flushes);
  reg.add(p + "leaf_splits", op_stats_.leaf_splits);
  reg.add(p + "internal_splits", op_stats_.internal_splits);
  reg.add(p + "leaf_merges", op_stats_.leaf_merges);
  reg.add(p + "messages_moved", op_stats_.messages_moved);
  reg.add(p + "logical_bytes_written", op_stats_.logical_bytes_written);
  for (size_t d = 0; d < flushes_by_depth_.size(); ++d) {
    reg.add(p + "flushes.depth" + std::to_string(d), flushes_by_depth_[d]);
  }
  reg.set(p + "height", static_cast<double>(height_));
  reg.set(p + "target_fanout", static_cast<double>(fanout_));
  if (op_stats_.flushes > 0) {
    reg.set(p + "messages_per_flush",
            static_cast<double>(op_stats_.messages_moved) /
                static_cast<double>(op_stats_.flushes));
  }
  if (op_stats_.logical_bytes_written > 0) {
    reg.set(p + "write_amplification",
            static_cast<double>(store_.stats().bytes_written) /
                static_cast<double>(op_stats_.logical_bytes_written));
  }
  pool_->export_metrics(reg, p + "cache.");
  store_.export_metrics(reg, p + "store.");
}

void BeTree::check_invariants() {
  if (root_ == kInvalidNode) return;
  uint64_t live = 0;
  check_subtree(root_, nullptr, nullptr, 0, height_ - 1, &live);
}

void BeTree::check_subtree(uint64_t id, const std::string* lo,
                           const std::string* hi, size_t depth,
                           size_t leaf_depth, uint64_t* live) {
  NodeRef node = fetch(id);
  DAMKIT_CHECK_MSG(node->byte_size() == node->recomputed_byte_size(),
                   "byte-size drift at node " << id);
  DAMKIT_CHECK_MSG(node->byte_size() <= config_.node_bytes,
                   "overflowing node " << id << " left behind");
  if (node->is_leaf()) {
    DAMKIT_CHECK_MSG(depth == leaf_depth, "leaf at wrong depth");
    for (size_t i = 0; i < node->entry_count(); ++i) {
      if (i > 0) DAMKIT_CHECK(kv::compare(node->key(i - 1), node->key(i)) < 0);
      if (lo != nullptr) DAMKIT_CHECK(kv::compare(*lo, node->key(i)) <= 0);
      if (hi != nullptr) DAMKIT_CHECK(kv::compare(node->key(i), *hi) < 0);
    }
    *live += node->entry_count();
    return;
  }
  DAMKIT_CHECK_MSG(node->child_count() <= fanout_,
                   "fanout " << node->child_count() << " exceeds cap "
                             << fanout_);
  DAMKIT_CHECK(node->child_count() == node->pivot_count() + 1);
  for (size_t i = 0; i + 1 < node->pivot_count(); ++i) {
    DAMKIT_CHECK(kv::compare(node->pivot(i), node->pivot(i + 1)) < 0);
  }
  for (size_t i = 0; i < node->child_count(); ++i) {
    std::string lo_buf, hi_buf;
    const std::string* child_lo = lo;
    if (i > 0) {
      lo_buf = std::string(node->pivot(i - 1));
      child_lo = &lo_buf;
    }
    const std::string* child_hi = hi;
    if (i != node->pivot_count()) {
      hi_buf = std::string(node->pivot(i));
      child_hi = &hi_buf;
    }
    // Buffer routing: every pending message belongs to this child's range.
    for (const MessageView m : node->buffer(i)) {
      DAMKIT_CHECK_MSG(
          child_lo == nullptr || kv::compare(*child_lo, m.key) <= 0,
          "misrouted message below child " << i << "/" << node->child_count()
              << " of node " << id << " key=" << kv::decode_key(m.key));
      DAMKIT_CHECK_MSG(
          child_hi == nullptr || kv::compare(m.key, *child_hi) < 0,
          "misrouted message above child " << i << "/" << node->child_count()
              << " of node " << id << " key=" << kv::decode_key(m.key)
              << " hi=" << kv::decode_key(*child_hi));
    }
    check_subtree(node->child(i), child_lo, child_hi, depth + 1, leaf_depth,
                  live);
  }
}

}  // namespace damkit::betree
