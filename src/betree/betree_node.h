// In-memory Bε-tree node and its on-"disk" image.
//
// Leaves hold sorted key/value entries exactly like B-tree leaves.
// Internal nodes hold pivots, child ids, and one message buffer *per
// child*: all messages destined for child i sit contiguously in arrival
// order. Keeping buffers bucketed by child is how TokuDB organizes nodes
// and is also the prerequisite for the Theorem-9 optimization (a query
// needs only the one segment for the child it descends into).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "betree/message.h"

namespace damkit::betree {

inline constexpr uint64_t kInvalidNode = ~0ULL;

class BeTreeNode {
 public:
  static std::shared_ptr<BeTreeNode> make_leaf();
  static std::shared_ptr<BeTreeNode> make_internal();

  bool is_leaf() const { return is_leaf_; }
  uint64_t byte_size() const { return byte_size_; }

  /// IO accounting for partial (sub-node) reads — used only by OptBeTree
  /// (Theorem 9). When `partial` is set, only the listed segments (child
  /// buffer segments for internal nodes, basement chunks for leaves) have
  /// been charged to the device; touching any other segment, or mutating
  /// the node, must charge the missing bytes first. Not serialized.
  struct Residency {
    bool partial = false;
    uint64_t charged_bytes = 0;
    std::vector<uint32_t> segments;  // small, unsorted

    bool has_segment(uint32_t idx) const {
      return std::find(segments.begin(), segments.end(), idx) !=
             segments.end();
    }
  };
  Residency residency;

  // --- Leaf interface ---
  size_t entry_count() const { return keys_.size(); }
  const std::string& key(size_t i) const { return keys_[i]; }
  const std::string& value(size_t i) const { return values_[i]; }
  size_t lower_bound(std::string_view key) const;
  bool key_equals(size_t i, std::string_view key) const;
  /// Apply a message to the leaf's entries (put/tombstone/upsert).
  void leaf_apply(const Message& msg);
  void leaf_append(std::string key, std::string value);  // bulk load

  // --- Internal interface ---
  size_t child_count() const { return children_.size(); }
  uint64_t child(size_t i) const { return children_[i]; }
  size_t pivot_count() const { return pivots_.size(); }
  const std::string& pivot(size_t i) const { return pivots_[i]; }
  size_t child_index(std::string_view key) const;

  void internal_init(uint64_t first_child);
  /// Insert (pivot, right_child) after child `child_idx` with an empty
  /// buffer; used when a child splits (its buffer here is empty then).
  void internal_insert(size_t child_idx, std::string pivot,
                       uint64_t right_child);
  /// Remove pivot i and child i+1, folding child i+1's buffer into child
  /// i's (key ranges are disjoint so per-key order is preserved).
  void internal_remove_child(size_t pivot_idx);
  void internal_set_child(size_t i, uint64_t id) { children_[i] = id; }

  // --- Buffers ---
  uint64_t buffer_bytes(size_t child_idx) const {
    return buffer_bytes_[child_idx];
  }
  uint64_t total_buffer_bytes() const { return total_buffer_bytes_; }
  size_t buffer_count(size_t child_idx) const {
    return buffers_[child_idx].size();
  }
  const std::vector<Message>& buffer(size_t child_idx) const {
    return buffers_[child_idx];
  }
  /// Append a message to child i's buffer (arrival order).
  void buffer_add(size_t child_idx, Message msg);
  /// Move child i's entire buffer out (clears it).
  std::vector<Message> buffer_take(size_t child_idx);
  /// Index of the child with the largest pending buffer (bytes).
  size_t fullest_child() const;
  /// Collect messages for `key` in child i's buffer, in arrival order.
  void collect_for_key(size_t child_idx, std::string_view key,
                       std::vector<Message>* out) const;

  // --- Splitting ---
  struct SplitResult {
    std::string separator;
    std::shared_ptr<BeTreeNode> right;
  };
  /// Split roughly in half by bytes. Leaves split like B-tree leaves;
  /// internal nodes split at a child boundary, partitioning buffers.
  SplitResult split();

  /// Merge the right sibling leaf into this leaf (both leaves).
  void leaf_merge_from_right(BeTreeNode& right);

  // --- Serialization ---
  void serialize(std::vector<uint8_t>& out) const;
  static std::shared_ptr<BeTreeNode> deserialize(
      std::span<const uint8_t> image);
  uint64_t recomputed_byte_size() const;

  static uint64_t header_bytes() { return 4 + 1 + 4; }
  static uint64_t leaf_entry_bytes(size_t klen, size_t vlen) {
    return 2 + 4 + klen + vlen;
  }
  static uint64_t pivot_bytes(size_t klen) { return 2 + klen; }
  /// Per-child fixed cost: child id (8) + buffer count (4).
  static uint64_t child_bytes() { return 12; }

 private:
  BeTreeNode() = default;

  bool is_leaf_ = true;
  std::vector<std::string> keys_;    // leaf entry keys
  std::vector<std::string> values_;  // leaf entry values
  std::vector<std::string> pivots_;
  std::vector<uint64_t> children_;
  std::vector<std::vector<Message>> buffers_;  // parallel to children_
  std::vector<uint64_t> buffer_bytes_;         // parallel to children_
  uint64_t total_buffer_bytes_ = 0;
  uint64_t byte_size_ = 0;
};

}  // namespace damkit::betree
