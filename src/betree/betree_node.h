// In-memory Bε-tree node and its on-"disk" image.
//
// Leaves hold sorted key/value entries exactly like B-tree leaves.
// Internal nodes hold pivots, child ids, and one message buffer *per
// child*: all messages destined for child i sit contiguously in arrival
// order. Keeping buffers bucketed by child is how TokuDB organizes nodes
// and is also the prerequisite for the Theorem-9 optimization (a query
// needs only the one segment for the child it descends into).
//
// Storage is zero-copy: leaf entries and pivots live in node::SlottedPage
// containers in wire format, and each child's buffer is a packed
// MsgSegment of wire-format message records (arrival order, append-only),
// so serialize/deserialize move bytes without per-entry allocations and
// buffer(i) yields MessageView borrows. The wire image and all byte-size
// accounting are bit-identical to the pre-slotted layout.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "betree/message.h"
#include "kv/slice.h"
#include "node/slotted_page.h"

namespace damkit::betree {

inline constexpr uint64_t kInvalidNode = ~0ULL;

class BeTreeNode {
 public:
  static std::shared_ptr<BeTreeNode> make_leaf();
  static std::shared_ptr<BeTreeNode> make_internal();

  bool is_leaf() const { return is_leaf_; }
  uint64_t byte_size() const {
    if (is_leaf_) return header_bytes() + page_.live_bytes();
    return header_bytes() + child_bytes() * children_.size() +
           total_buffer_bytes_ + pivots_.live_bytes();
  }

  /// IO accounting for partial (sub-node) reads — used only by OptBeTree
  /// (Theorem 9). When `partial` is set, only the listed segments (child
  /// buffer segments for internal nodes, basement chunks for leaves) have
  /// been charged to the device; touching any other segment, or mutating
  /// the node, must charge the missing bytes first. Not serialized.
  struct Residency {
    bool partial = false;
    uint64_t charged_bytes = 0;
    std::vector<uint32_t> segments;  // small, unsorted

    bool has_segment(uint32_t idx) const {
      return std::find(segments.begin(), segments.end(), idx) !=
             segments.end();
    }
  };
  Residency residency;

  // --- Leaf interface (views are invalidated by any mutation) ---
  size_t entry_count() const { return page_.count(); }
  kv::Slice key(size_t i) const {
    const kv::Slice rec = page_.record(i);
    return rec.substr(6, rec_klen(rec));
  }
  kv::Slice value(size_t i) const {
    const kv::Slice rec = page_.record(i);
    return rec.substr(6 + rec_klen(rec));
  }
  size_t lower_bound(std::string_view key) const;
  bool key_equals(size_t i, std::string_view key) const;
  /// Apply a message to the leaf's entries (put/tombstone/upsert).
  void leaf_apply(const Message& msg);
  void leaf_append(std::string_view key, std::string_view value);  // bulk load

  // --- Internal interface ---
  size_t child_count() const { return children_.size(); }
  uint64_t child(size_t i) const { return children_[i]; }
  size_t pivot_count() const { return pivots_.count(); }
  kv::Slice pivot(size_t i) const { return pivots_.record(i).substr(2); }
  size_t child_index(std::string_view key) const;

  void internal_init(uint64_t first_child);
  /// Insert (pivot, right_child) after child `child_idx` with an empty
  /// buffer; used when a child splits (its buffer here is empty then).
  void internal_insert(size_t child_idx, std::string_view pivot,
                       uint64_t right_child);
  /// Remove pivot i and child i+1, folding child i+1's buffer into child
  /// i's (key ranges are disjoint so per-key order is preserved).
  void internal_remove_child(size_t pivot_idx);
  void internal_set_child(size_t i, uint64_t id) { children_[i] = id; }

  // --- Buffers ---
  uint64_t buffer_bytes(size_t child_idx) const {
    return segments_[child_idx].bytes.size();
  }
  uint64_t total_buffer_bytes() const { return total_buffer_bytes_; }
  size_t buffer_count(size_t child_idx) const {
    return segments_[child_idx].count;
  }
  /// Borrowed view over child i's packed buffer segment (arrival order).
  /// Invalidated by any mutation of this node.
  MsgRange buffer(size_t child_idx) const {
    const MsgSegment& s = segments_[child_idx];
    return MsgRange(s.bytes.data(), s.bytes.size(), s.count);
  }
  /// Append a message to child i's buffer (arrival order).
  void buffer_add(size_t child_idx, const Message& msg);
  /// Move child i's entire buffer out as owned messages (clears it).
  std::vector<Message> buffer_take(size_t child_idx);
  /// Index of the child with the largest pending buffer (bytes).
  size_t fullest_child() const;
  /// Collect messages for `key` in child i's buffer, in arrival order.
  void collect_for_key(size_t child_idx, std::string_view key,
                       std::vector<Message>* out) const;

  // --- Splitting ---
  struct SplitResult {
    std::string separator;
    std::shared_ptr<BeTreeNode> right;
  };
  /// Split roughly in half by bytes. Leaves split like B-tree leaves;
  /// internal nodes split at a child boundary, partitioning buffers.
  SplitResult split();

  /// Merge the right sibling leaf into this leaf (both leaves).
  void leaf_merge_from_right(BeTreeNode& right);

  // --- Serialization ---
  void serialize(std::vector<uint8_t>& out) const;
  static std::shared_ptr<BeTreeNode> deserialize(
      std::span<const uint8_t> image);
  uint64_t recomputed_byte_size() const;

  static uint64_t header_bytes() { return 4 + 1 + 4; }
  static uint64_t leaf_entry_bytes(size_t klen, size_t vlen) {
    return 2 + 4 + klen + vlen;
  }
  static uint64_t pivot_bytes(size_t klen) { return 2 + klen; }
  /// Per-child fixed cost: child id (8) + buffer count (4).
  static uint64_t child_bytes() { return 12; }

 private:
  BeTreeNode() = default;

  static uint16_t rec_klen(std::string_view rec) {
    return load_u16(reinterpret_cast<const uint8_t*>(rec.data()));
  }

  /// One child's pending messages, packed in wire format (append-only;
  /// the serialized image embeds the bytes verbatim).
  struct MsgSegment {
    std::vector<uint8_t> bytes;
    uint32_t count = 0;
  };

  bool is_leaf_ = true;
  node::SlottedPage page_;    // leaf [u16 klen][u32 vlen][key][value] records
  node::SlottedPage pivots_;  // internal [u16 klen][key] records
  std::vector<uint64_t> children_;
  std::vector<MsgSegment> segments_;  // parallel to children_
  uint64_t total_buffer_bytes_ = 0;
};

}  // namespace damkit::betree
