#include "betree/betree_node.h"

#include <algorithm>
#include <cstring>

#include "kv/codec.h"
#include "kv/slice.h"
#include "util/status.h"

namespace damkit::betree {

namespace {

constexpr uint32_t kMagic = 0x4245544e;  // "BETN"

size_t leaf_record_len(const uint8_t* p) {
  return size_t{6} + load_u16(p) + load_u32(p + 2);
}

size_t pivot_record_len(const uint8_t* p) { return size_t{2} + load_u16(p); }

std::string_view leaf_record_key(std::string_view rec) {
  return rec.substr(6, load_u16(reinterpret_cast<const uint8_t*>(rec.data())));
}

std::string_view pivot_record_key(std::string_view rec) {
  return rec.substr(2);
}

void encode_leaf_record(uint8_t* p, std::string_view key,
                        std::string_view value) {
  store_u16(p, static_cast<uint16_t>(key.size()));
  store_u32(p + 2, static_cast<uint32_t>(value.size()));
  std::memcpy(p + 6, key.data(), key.size());
  std::memcpy(p + 6 + key.size(), value.data(), value.size());
}

void encode_pivot_record(uint8_t* p, std::string_view key) {
  store_u16(p, static_cast<uint16_t>(key.size()));
  std::memcpy(p + 2, key.data(), key.size());
}

}  // namespace

std::shared_ptr<BeTreeNode> BeTreeNode::make_leaf() {
  auto n = std::shared_ptr<BeTreeNode>(new BeTreeNode());
  n->is_leaf_ = true;
  return n;
}

std::shared_ptr<BeTreeNode> BeTreeNode::make_internal() {
  auto n = std::shared_ptr<BeTreeNode>(new BeTreeNode());
  n->is_leaf_ = false;
  return n;
}

size_t BeTreeNode::lower_bound(std::string_view key) const {
  return page_.lower_bound(key, leaf_record_key);
}

bool BeTreeNode::key_equals(size_t i, std::string_view key) const {
  return i < page_.count() && kv::compare(this->key(i), key) == 0;
}

void BeTreeNode::leaf_apply(const Message& msg) {
  DAMKIT_CHECK(is_leaf_);
  const size_t i = lower_bound(msg.key);
  const bool present = key_equals(i, msg.key);
  std::optional<std::string> base;
  if (present) base = std::string(value(i));
  std::optional<std::string> next = apply_message(std::move(base), msg);

  if (next.has_value()) {
    if (present) {
      uint8_t* p = page_.replace_alloc(
          i, leaf_entry_bytes(msg.key.size(), next->size()));
      encode_leaf_record(p, msg.key, *next);
    } else {
      uint8_t* p = page_.insert_alloc(
          i, leaf_entry_bytes(msg.key.size(), next->size()));
      encode_leaf_record(p, msg.key, *next);
    }
  } else if (present) {
    page_.erase(i);
  }
}

void BeTreeNode::leaf_append(std::string_view key, std::string_view value) {
  DAMKIT_CHECK(is_leaf_);
  DAMKIT_CHECK(page_.empty() ||
               kv::compare(this->key(page_.count() - 1), key) < 0);
  uint8_t* p = page_.insert_alloc(page_.count(),
                                  leaf_entry_bytes(key.size(), value.size()));
  encode_leaf_record(p, key, value);
}

size_t BeTreeNode::child_index(std::string_view key) const {
  DAMKIT_CHECK(!is_leaf_);
  return pivots_.upper_bound(key, pivot_record_key);
}

void BeTreeNode::internal_init(uint64_t first_child) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(children_.empty());
  children_.push_back(first_child);
  segments_.emplace_back();
}

void BeTreeNode::internal_insert(size_t child_idx, std::string_view pivot,
                                 uint64_t right_child) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(child_idx < children_.size());
  uint8_t* p = pivots_.insert_alloc(child_idx, pivot_bytes(pivot.size()));
  encode_pivot_record(p, pivot);
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
                   right_child);
  segments_.insert(segments_.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
                   MsgSegment());
}

void BeTreeNode::internal_remove_child(size_t pivot_idx) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(pivot_idx < pivots_.count());
  const size_t victim = pivot_idx + 1;
  // Fold the removed child's pending messages into its left neighbour
  // (which now covers the union of both ranges). Ranges are disjoint, so
  // per-key ordering is unaffected by concatenation.
  MsgSegment& left = segments_[pivot_idx];
  MsgSegment& gone = segments_[victim];
  left.bytes.insert(left.bytes.end(), gone.bytes.begin(), gone.bytes.end());
  left.count += gone.count;
  pivots_.erase(pivot_idx);
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(victim));
  segments_.erase(segments_.begin() + static_cast<ptrdiff_t>(victim));
}

void BeTreeNode::buffer_add(size_t child_idx, const Message& msg) {
  DAMKIT_CHECK(!is_leaf_);
  MsgSegment& s = segments_[child_idx];
  const size_t b = static_cast<size_t>(msg.bytes());
  const size_t old = s.bytes.size();
  s.bytes.resize(old + b);
  encode_message_record(s.bytes.data() + old, msg.kind, msg.key, msg.payload);
  s.count += 1;
  total_buffer_bytes_ += b;
}

std::vector<Message> BeTreeNode::buffer_take(size_t child_idx) {
  DAMKIT_CHECK(!is_leaf_);
  MsgSegment& s = segments_[child_idx];
  std::vector<Message> out;
  out.reserve(s.count);
  for (const MessageView m : buffer(child_idx)) out.push_back(m.to_message());
  total_buffer_bytes_ -= s.bytes.size();
  s.bytes.clear();
  s.count = 0;
  return out;
}

size_t BeTreeNode::fullest_child() const {
  DAMKIT_CHECK(!is_leaf_);
  size_t best = 0;
  for (size_t i = 1; i < segments_.size(); ++i) {
    if (segments_[i].bytes.size() > segments_[best].bytes.size()) best = i;
  }
  return best;
}

void BeTreeNode::collect_for_key(size_t child_idx, std::string_view key,
                                 std::vector<Message>* out) const {
  for (const MessageView m : buffer(child_idx)) {
    if (kv::compare(m.key, key) == 0) out->push_back(m.to_message());
  }
}

BeTreeNode::SplitResult BeTreeNode::split() {
  SplitResult result;
  if (is_leaf_) {
    DAMKIT_CHECK(page_.count() >= 2);
    const uint64_t payload = byte_size() - header_bytes();
    uint64_t acc = 0;
    size_t m = 0;
    while (m + 1 < page_.count() && acc < payload / 2) {
      acc += page_.record(m).size();
      ++m;
    }
    if (m == 0) m = 1;
    result.right = make_leaf();
    BeTreeNode& r = *result.right;
    for (size_t i = m; i < page_.count(); ++i) r.page_.append(page_.record(i));
    page_.truncate(m);
    result.separator = std::string(r.key(0));
    return result;
  }

  // Internal: split at the child boundary closest to half the bytes.
  DAMKIT_CHECK(children_.size() >= 2);
  const uint64_t payload = byte_size() - header_bytes();
  uint64_t acc = 0;
  size_t c = 1;  // boundary: left keeps children [0, c)
  for (; c < children_.size() - 1; ++c) {
    acc += child_bytes() + segments_[c - 1].bytes.size() +
           pivots_.record(c - 1).size();
    if (acc >= payload / 2) {
      ++c;
      break;
    }
  }
  if (c >= children_.size()) c = children_.size() - 1;

  result.separator = std::string(pivot(c - 1));
  result.right = make_internal();
  BeTreeNode& r = *result.right;
  for (size_t i = c; i < children_.size(); ++i) {
    r.children_.push_back(children_[i]);
    r.segments_.push_back(std::move(segments_[i]));
    r.total_buffer_bytes_ += r.segments_.back().bytes.size();
  }
  for (size_t i = c; i < pivots_.count(); ++i) {
    r.pivots_.append(pivots_.record(i));
  }
  total_buffer_bytes_ -= r.total_buffer_bytes_;
  pivots_.truncate(c - 1);
  children_.resize(c);
  segments_.resize(c);
  return result;
}

void BeTreeNode::leaf_merge_from_right(BeTreeNode& right) {
  DAMKIT_CHECK(is_leaf_ && right.is_leaf_);
  for (size_t i = 0; i < right.page_.count(); ++i) {
    page_.append(right.page_.record(i));
  }
  right.page_.clear();
}

void BeTreeNode::serialize(std::vector<uint8_t>& out) const {
  out.clear();
  out.reserve(byte_size());
  kv::Writer w(out);
  w.put_u32(kMagic);
  w.put_u8(is_leaf_ ? 1 : 0);
  w.put_u32(static_cast<uint32_t>(is_leaf_ ? page_.count()
                                           : children_.size()));
  if (is_leaf_) {
    page_.write_to(&out);
  } else {
    for (size_t i = 0; i < children_.size(); ++i) {
      w.put_u64(children_[i]);
      w.put_u32(segments_[i].count);
      out.insert(out.end(), segments_[i].bytes.begin(),
                 segments_[i].bytes.end());
    }
    pivots_.write_to(&out);
  }
  DAMKIT_CHECK_MSG(out.size() == byte_size(),
                   "size accounting drift: serialized "
                       << out.size() << " vs tracked " << byte_size());
}

std::shared_ptr<BeTreeNode> BeTreeNode::deserialize(
    std::span<const uint8_t> image) {
  kv::Reader r(image);
  DAMKIT_CHECK_MSG(r.get_u32() == kMagic, "bad betree node magic");
  const bool leaf = r.get_u8() != 0;
  const uint32_t count = r.get_u32();
  auto node = leaf ? make_leaf() : make_internal();
  if (leaf) {
    node->page_.build_from_prefix(image.data() + r.position(),
                                  image.size() - r.position(), count,
                                  leaf_record_len);
    return node;
  }
  // Internal layout: per child [u64 child][u32 msg count][msg records...],
  // then the pivot records. Walked with a manual cursor so each child's
  // message segment is captured as one bulk copy.
  const uint8_t* base = image.data();
  const size_t size = image.size();
  size_t off = r.position();
  node->children_.reserve(count);
  node->segments_.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    DAMKIT_CHECK_MSG(off + 12 <= size,
                     "short read: betree child header overruns the image");
    node->children_.push_back(load_u64(base + off));
    const uint32_t msgs = load_u32(base + off + 8);
    off += 12;
    const size_t seg_start = off;
    for (uint32_t j = 0; j < msgs; ++j) {
      DAMKIT_CHECK_MSG(off + 7 <= size,
                       "short read: message header overruns the image");
      const size_t len = message_record_len(base + off);
      DAMKIT_CHECK_MSG(off + len <= size,
                       "short read: message record overruns the image");
      off += len;
    }
    MsgSegment& s = node->segments_[i];
    s.bytes.assign(base + seg_start, base + off);
    s.count = msgs;
    node->total_buffer_bytes_ += s.bytes.size();
  }
  node->pivots_.build_from_prefix(base + off, size - off,
                                  count == 0 ? 0 : count - 1,
                                  pivot_record_len);
  return node;
}

uint64_t BeTreeNode::recomputed_byte_size() const {
  uint64_t size = header_bytes();
  if (is_leaf_) {
    for (size_t i = 0; i < page_.count(); ++i) {
      size += leaf_entry_bytes(key(i).size(), value(i).size());
    }
    return size;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    size += child_bytes();
    for (const MessageView m : buffer(i)) size += m.bytes();
  }
  for (size_t i = 0; i < pivots_.count(); ++i) {
    size += pivot_bytes(pivot(i).size());
  }
  return size;
}

}  // namespace damkit::betree
