#include "betree/betree_node.h"

#include <algorithm>

#include "kv/codec.h"
#include "kv/slice.h"
#include "util/status.h"

namespace damkit::betree {

namespace {
constexpr uint32_t kMagic = 0x4245544e;  // "BETN"
}  // namespace

std::shared_ptr<BeTreeNode> BeTreeNode::make_leaf() {
  auto n = std::shared_ptr<BeTreeNode>(new BeTreeNode());
  n->is_leaf_ = true;
  n->byte_size_ = header_bytes();
  return n;
}

std::shared_ptr<BeTreeNode> BeTreeNode::make_internal() {
  auto n = std::shared_ptr<BeTreeNode>(new BeTreeNode());
  n->is_leaf_ = false;
  n->byte_size_ = header_bytes();
  return n;
}

size_t BeTreeNode::lower_bound(std::string_view key) const {
  const auto it = std::lower_bound(
      keys_.begin(), keys_.end(), key,
      [](const std::string& a, std::string_view b) {
        return kv::compare(a, b) < 0;
      });
  return static_cast<size_t>(it - keys_.begin());
}

bool BeTreeNode::key_equals(size_t i, std::string_view key) const {
  return i < keys_.size() && kv::compare(keys_[i], key) == 0;
}

void BeTreeNode::leaf_apply(const Message& msg) {
  DAMKIT_CHECK(is_leaf_);
  const size_t i = lower_bound(msg.key);
  const bool present = key_equals(i, msg.key);
  std::optional<std::string> base;
  if (present) base = values_[i];
  std::optional<std::string> next = apply_message(std::move(base), msg);

  if (next.has_value()) {
    if (present) {
      byte_size_ += next->size();
      byte_size_ -= values_[i].size();
      values_[i] = std::move(*next);
    } else {
      byte_size_ += leaf_entry_bytes(msg.key.size(), next->size());
      keys_.insert(keys_.begin() + static_cast<ptrdiff_t>(i), msg.key);
      values_.insert(values_.begin() + static_cast<ptrdiff_t>(i),
                     std::move(*next));
    }
  } else if (present) {
    byte_size_ -= leaf_entry_bytes(keys_[i].size(), values_[i].size());
    keys_.erase(keys_.begin() + static_cast<ptrdiff_t>(i));
    values_.erase(values_.begin() + static_cast<ptrdiff_t>(i));
  }
}

void BeTreeNode::leaf_append(std::string key, std::string value) {
  DAMKIT_CHECK(is_leaf_);
  DAMKIT_CHECK(keys_.empty() || kv::compare(keys_.back(), key) < 0);
  byte_size_ += leaf_entry_bytes(key.size(), value.size());
  keys_.push_back(std::move(key));
  values_.push_back(std::move(value));
}

size_t BeTreeNode::child_index(std::string_view key) const {
  DAMKIT_CHECK(!is_leaf_);
  const auto it = std::upper_bound(
      pivots_.begin(), pivots_.end(), key,
      [](std::string_view a, const std::string& b) {
        return kv::compare(a, b) < 0;
      });
  return static_cast<size_t>(it - pivots_.begin());
}

void BeTreeNode::internal_init(uint64_t first_child) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(children_.empty());
  children_.push_back(first_child);
  buffers_.emplace_back();
  buffer_bytes_.push_back(0);
  byte_size_ += child_bytes();
}

void BeTreeNode::internal_insert(size_t child_idx, std::string pivot,
                                 uint64_t right_child) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(child_idx < children_.size());
  byte_size_ += pivot_bytes(pivot.size()) + child_bytes();
  pivots_.insert(pivots_.begin() + static_cast<ptrdiff_t>(child_idx),
                 std::move(pivot));
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
                   right_child);
  buffers_.insert(buffers_.begin() + static_cast<ptrdiff_t>(child_idx) + 1,
                  std::vector<Message>());
  buffer_bytes_.insert(
      buffer_bytes_.begin() + static_cast<ptrdiff_t>(child_idx) + 1, 0);
}

void BeTreeNode::internal_remove_child(size_t pivot_idx) {
  DAMKIT_CHECK(!is_leaf_);
  DAMKIT_CHECK(pivot_idx < pivots_.size());
  const size_t victim = pivot_idx + 1;
  // Fold the removed child's pending messages into its left neighbour
  // (which now covers the union of both ranges). Ranges are disjoint, so
  // per-key ordering is unaffected by concatenation.
  for (Message& m : buffers_[victim]) {
    buffers_[pivot_idx].push_back(std::move(m));
  }
  buffer_bytes_[pivot_idx] += buffer_bytes_[victim];
  byte_size_ -= pivot_bytes(pivots_[pivot_idx].size()) + child_bytes();
  pivots_.erase(pivots_.begin() + static_cast<ptrdiff_t>(pivot_idx));
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(victim));
  buffers_.erase(buffers_.begin() + static_cast<ptrdiff_t>(victim));
  buffer_bytes_.erase(buffer_bytes_.begin() + static_cast<ptrdiff_t>(victim));
}

void BeTreeNode::buffer_add(size_t child_idx, Message msg) {
  DAMKIT_CHECK(!is_leaf_);
  const uint64_t b = msg.bytes();
  buffers_[child_idx].push_back(std::move(msg));
  buffer_bytes_[child_idx] += b;
  total_buffer_bytes_ += b;
  byte_size_ += b;
}

std::vector<Message> BeTreeNode::buffer_take(size_t child_idx) {
  DAMKIT_CHECK(!is_leaf_);
  std::vector<Message> out = std::move(buffers_[child_idx]);
  buffers_[child_idx].clear();
  total_buffer_bytes_ -= buffer_bytes_[child_idx];
  byte_size_ -= buffer_bytes_[child_idx];
  buffer_bytes_[child_idx] = 0;
  return out;
}

size_t BeTreeNode::fullest_child() const {
  DAMKIT_CHECK(!is_leaf_);
  size_t best = 0;
  for (size_t i = 1; i < buffer_bytes_.size(); ++i) {
    if (buffer_bytes_[i] > buffer_bytes_[best]) best = i;
  }
  return best;
}

void BeTreeNode::collect_for_key(size_t child_idx, std::string_view key,
                                 std::vector<Message>* out) const {
  for (const Message& m : buffers_[child_idx]) {
    if (kv::compare(m.key, key) == 0) out->push_back(m);
  }
}

BeTreeNode::SplitResult BeTreeNode::split() {
  SplitResult result;
  if (is_leaf_) {
    DAMKIT_CHECK(keys_.size() >= 2);
    const uint64_t payload = byte_size_ - header_bytes();
    uint64_t acc = 0;
    size_t m = 0;
    while (m + 1 < keys_.size() && acc < payload / 2) {
      acc += leaf_entry_bytes(keys_[m].size(), values_[m].size());
      ++m;
    }
    if (m == 0) m = 1;
    result.right = make_leaf();
    BeTreeNode& r = *result.right;
    for (size_t i = m; i < keys_.size(); ++i) {
      r.byte_size_ += leaf_entry_bytes(keys_[i].size(), values_[i].size());
    }
    r.keys_.assign(
        std::make_move_iterator(keys_.begin() + static_cast<ptrdiff_t>(m)),
        std::make_move_iterator(keys_.end()));
    r.values_.assign(
        std::make_move_iterator(values_.begin() + static_cast<ptrdiff_t>(m)),
        std::make_move_iterator(values_.end()));
    keys_.resize(m);
    values_.resize(m);
    byte_size_ -= r.byte_size_ - header_bytes();
    result.separator = r.keys_.front();
    return result;
  }

  // Internal: split at the child boundary closest to half the bytes.
  DAMKIT_CHECK(children_.size() >= 2);
  const uint64_t payload = byte_size_ - header_bytes();
  uint64_t acc = 0;
  size_t c = 1;  // boundary: left keeps children [0, c)
  for (; c < children_.size() - 1; ++c) {
    acc += child_bytes() + buffer_bytes_[c - 1] +
           pivot_bytes(pivots_[c - 1].size());
    if (acc >= payload / 2) {
      ++c;
      break;
    }
  }
  if (c >= children_.size()) c = children_.size() - 1;

  result.separator = pivots_[c - 1];
  result.right = make_internal();
  BeTreeNode& r = *result.right;
  for (size_t i = c; i < children_.size(); ++i) {
    r.children_.push_back(children_[i]);
    r.buffers_.push_back(std::move(buffers_[i]));
    r.buffer_bytes_.push_back(buffer_bytes_[i]);
    r.total_buffer_bytes_ += buffer_bytes_[i];
    r.byte_size_ += child_bytes() + buffer_bytes_[i];
  }
  for (size_t i = c; i < pivots_.size(); ++i) {
    r.byte_size_ += pivot_bytes(pivots_[i].size());
    r.pivots_.push_back(std::move(pivots_[i]));
  }
  byte_size_ -= r.byte_size_ - header_bytes();
  byte_size_ -= pivot_bytes(result.separator.size());
  total_buffer_bytes_ -= r.total_buffer_bytes_;
  pivots_.resize(c - 1);
  children_.resize(c);
  buffers_.resize(c);
  buffer_bytes_.resize(c);
  return result;
}

void BeTreeNode::leaf_merge_from_right(BeTreeNode& right) {
  DAMKIT_CHECK(is_leaf_ && right.is_leaf_);
  for (size_t i = 0; i < right.keys_.size(); ++i) {
    byte_size_ +=
        leaf_entry_bytes(right.keys_[i].size(), right.values_[i].size());
    keys_.push_back(std::move(right.keys_[i]));
    values_.push_back(std::move(right.values_[i]));
  }
  right.keys_.clear();
  right.values_.clear();
  right.byte_size_ = header_bytes();
}

void BeTreeNode::serialize(std::vector<uint8_t>& out) const {
  out.clear();
  out.reserve(byte_size_);
  kv::Writer w(out);
  w.put_u32(kMagic);
  w.put_u8(is_leaf_ ? 1 : 0);
  w.put_u32(static_cast<uint32_t>(is_leaf_ ? keys_.size() : children_.size()));
  if (is_leaf_) {
    for (size_t i = 0; i < keys_.size(); ++i) {
      w.put_u16(static_cast<uint16_t>(keys_[i].size()));
      w.put_u32(static_cast<uint32_t>(values_[i].size()));
      w.put_bytes(keys_[i]);
      w.put_bytes(values_[i]);
    }
  } else {
    for (size_t i = 0; i < children_.size(); ++i) {
      w.put_u64(children_[i]);
      w.put_u32(static_cast<uint32_t>(buffers_[i].size()));
      for (const Message& m : buffers_[i]) {
        w.put_u8(static_cast<uint8_t>(m.kind));
        w.put_u16(static_cast<uint16_t>(m.key.size()));
        w.put_u32(static_cast<uint32_t>(m.payload.size()));
        w.put_bytes(m.key);
        w.put_bytes(m.payload);
      }
    }
    for (const auto& p : pivots_) {
      w.put_u16(static_cast<uint16_t>(p.size()));
      w.put_bytes(p);
    }
  }
  DAMKIT_CHECK_MSG(out.size() == byte_size_,
                   "size accounting drift: serialized "
                       << out.size() << " vs tracked " << byte_size_);
}

std::shared_ptr<BeTreeNode> BeTreeNode::deserialize(
    std::span<const uint8_t> image) {
  kv::Reader r(image);
  DAMKIT_CHECK_MSG(r.get_u32() == kMagic, "bad betree node magic");
  const bool leaf = r.get_u8() != 0;
  const uint32_t count = r.get_u32();
  auto node = leaf ? make_leaf() : make_internal();
  if (leaf) {
    node->keys_.reserve(count);
    node->values_.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      const uint16_t klen = r.get_u16();
      const uint32_t vlen = r.get_u32();
      node->keys_.push_back(r.get_bytes(klen));
      node->values_.push_back(r.get_bytes(vlen));
      node->byte_size_ += leaf_entry_bytes(klen, vlen);
    }
    return node;
  }
  node->children_.reserve(count);
  node->buffers_.resize(count);
  node->buffer_bytes_.assign(count, 0);
  for (uint32_t i = 0; i < count; ++i) {
    node->children_.push_back(r.get_u64());
    const uint32_t msgs = r.get_u32();
    node->byte_size_ += child_bytes();
    node->buffers_[i].reserve(msgs);
    for (uint32_t j = 0; j < msgs; ++j) {
      Message m;
      m.kind = static_cast<MessageKind>(r.get_u8());
      const uint16_t klen = r.get_u16();
      const uint32_t plen = r.get_u32();
      m.key = r.get_bytes(klen);
      m.payload = r.get_bytes(plen);
      const uint64_t b = m.bytes();
      node->buffers_[i].push_back(std::move(m));
      node->buffer_bytes_[i] += b;
      node->total_buffer_bytes_ += b;
      node->byte_size_ += b;
    }
  }
  node->pivots_.reserve(count - 1);
  for (uint32_t i = 0; i + 1 < count; ++i) {
    const uint16_t klen = r.get_u16();
    node->pivots_.push_back(r.get_bytes(klen));
    node->byte_size_ += pivot_bytes(klen);
  }
  return node;
}

uint64_t BeTreeNode::recomputed_byte_size() const {
  uint64_t size = header_bytes();
  if (is_leaf_) {
    for (size_t i = 0; i < keys_.size(); ++i) {
      size += leaf_entry_bytes(keys_[i].size(), values_[i].size());
    }
    return size;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    size += child_bytes();
    for (const Message& m : buffers_[i]) size += m.bytes();
  }
  for (const auto& p : pivots_) size += pivot_bytes(p.size());
  return size;
}

}  // namespace damkit::betree
