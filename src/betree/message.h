// Bε-tree messages (§3): modifications are encoded as messages that drift
// down the tree in node buffers and are eventually applied to the leaves.
//
// Three kinds, matching the write-optimized dictionaries the paper cites:
//   kPut       — insert-or-overwrite with the payload value.
//   kTombstone — delete (the payload is empty).
//   kUpsert    — blind read-modify-write: the payload is an 8-byte
//                little-endian delta added to the current 8-byte LE
//                counter value (missing/deleted counts as zero). Upserts
//                are what make Bε-trees strictly faster than B-trees for
//                read-modify-write workloads: no read is needed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace damkit::betree {

enum class MessageKind : uint8_t { kPut = 0, kTombstone = 1, kUpsert = 2 };

struct Message {
  MessageKind kind = MessageKind::kPut;
  std::string key;
  std::string payload;  // value for kPut, delta for kUpsert, empty for kTombstone

  /// Serialized footprint of a message with the given sizes.
  static uint64_t bytes_for(size_t key_len, size_t payload_len) {
    return 1 + 2 + 4 + key_len + payload_len;
  }
  uint64_t bytes() const { return bytes_for(key.size(), payload.size()); }
};

/// Encode a counter for use with kUpsert payloads/values.
std::string encode_counter(uint64_t v);
uint64_t decode_counter(std::string_view v);
/// Encode a (possibly negative) upsert delta.
std::string encode_delta(int64_t d);

/// Apply one message to the current state of a key (nullopt = absent).
/// Returns the new state (nullopt = absent/deleted).
std::optional<std::string> apply_message(std::optional<std::string> base,
                                         const Message& msg);

}  // namespace damkit::betree
