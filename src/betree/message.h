// Bε-tree messages (§3): modifications are encoded as messages that drift
// down the tree in node buffers and are eventually applied to the leaves.
//
// Three kinds, matching the write-optimized dictionaries the paper cites:
//   kPut       — insert-or-overwrite with the payload value.
//   kTombstone — delete (the payload is empty).
//   kUpsert    — blind read-modify-write: the payload is an 8-byte
//                little-endian delta added to the current 8-byte LE
//                counter value (missing/deleted counts as zero). Upserts
//                are what make Bε-trees strictly faster than B-trees for
//                read-modify-write workloads: no read is needed.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace damkit::betree {

enum class MessageKind : uint8_t { kPut = 0, kTombstone = 1, kUpsert = 2 };

struct Message {
  MessageKind kind = MessageKind::kPut;
  std::string key;
  std::string payload;  // value for kPut, delta for kUpsert, empty for kTombstone

  /// Serialized footprint of a message with the given sizes.
  static uint64_t bytes_for(size_t key_len, size_t payload_len) {
    return 1 + 2 + 4 + key_len + payload_len;
  }
  uint64_t bytes() const { return bytes_for(key.size(), payload.size()); }
};

// ---------------------------------------------------------------------------
// Wire-format message records. Node buffer segments hold messages packed in
// arrival order as [u8 kind][u16 klen][u32 plen][key][payload] — exactly the
// serialized node layout, so segments round-trip by memcpy.
// ---------------------------------------------------------------------------

/// Full record length of the message record at `p`.
inline size_t message_record_len(const uint8_t* p) {
  return size_t{7} + load_u16(p + 1) + load_u32(p + 3);
}

/// Encode a message record at `p` (caller allocates bytes_for(...) bytes).
inline void encode_message_record(uint8_t* p, MessageKind kind,
                                  std::string_view key,
                                  std::string_view payload) {
  p[0] = static_cast<uint8_t>(kind);
  store_u16(p + 1, static_cast<uint16_t>(key.size()));
  store_u32(p + 3, static_cast<uint32_t>(payload.size()));
  std::memcpy(p + 7, key.data(), key.size());
  std::memcpy(p + 7 + key.size(), payload.data(), payload.size());
}

/// Zero-copy view of one message record; valid while the backing segment
/// is unmutated.
struct MessageView {
  MessageKind kind = MessageKind::kPut;
  std::string_view key;
  std::string_view payload;

  Message to_message() const {
    return Message{kind, std::string(key), std::string(payload)};
  }
  uint64_t bytes() const {
    return Message::bytes_for(key.size(), payload.size());
  }
};

inline MessageView decode_message_view(const uint8_t* p) {
  const uint16_t klen = load_u16(p + 1);
  const uint32_t plen = load_u32(p + 3);
  return MessageView{
      static_cast<MessageKind>(p[0]),
      std::string_view(reinterpret_cast<const char*>(p + 7), klen),
      std::string_view(reinterpret_cast<const char*>(p + 7 + klen), plen)};
}

/// Forward range over a packed message segment, in arrival order.
class MsgRange {
 public:
  MsgRange() = default;
  MsgRange(const uint8_t* data, size_t size, size_t count)
      : data_(data), size_(size), count_(count) {}

  class iterator {
   public:
    explicit iterator(const uint8_t* p) : p_(p) {}
    MessageView operator*() const { return decode_message_view(p_); }
    iterator& operator++() {
      p_ += message_record_len(p_);
      return *this;
    }
    bool operator==(const iterator& o) const { return p_ == o.p_; }
    bool operator!=(const iterator& o) const { return p_ != o.p_; }

   private:
    const uint8_t* p_;
  };

  iterator begin() const { return iterator(data_); }
  iterator end() const { return iterator(data_ + size_); }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  /// O(i) positional decode — test/debug convenience only.
  MessageView operator[](size_t i) const {
    iterator it = begin();
    for (; i > 0; --i) ++it;
    return *it;
  }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t count_ = 0;
};

/// Encode a counter for use with kUpsert payloads/values.
std::string encode_counter(uint64_t v);
uint64_t decode_counter(std::string_view v);
/// Encode a (possibly negative) upsert delta.
std::string encode_delta(int64_t d);

/// Apply one message to the current state of a key (nullopt = absent).
/// Returns the new state (nullopt = absent/deleted).
std::optional<std::string> apply_message(std::optional<std::string> base,
                                         const Message& msg);

}  // namespace damkit::betree
