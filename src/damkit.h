// damkit — umbrella header.
//
// A library for reasoning about and exploiting refined external-memory
// models (DAM, affine, PDAM), with simulated storage devices and
// model-optimized dictionary data structures. Reproduces Bender et al.,
// "Small Refinements to the DAM Can Have Big Consequences for
// Data-Structure Design", SPAA 2019.
#pragma once

#include "betree/betree.h"             // IWYU pragma: export
#include "betree/message.h"            // IWYU pragma: export
#include "betree_opt/opt_betree.h"     // IWYU pragma: export
#include "blockdev/block_device.h"     // IWYU pragma: export
#include "btree/btree.h"               // IWYU pragma: export
#include "cache/buffer_pool.h"         // IWYU pragma: export
#include "harness/crash.h"             // IWYU pragma: export
#include "harness/experiments.h"       // IWYU pragma: export
#include "harness/fitting.h"           // IWYU pragma: export
#include "harness/parallel.h"          // IWYU pragma: export
#include "harness/report.h"            // IWYU pragma: export
#include "harness/workload_runner.h"   // IWYU pragma: export
#include "blockdev/byte_arena.h"       // IWYU pragma: export
#include "kv/dictionary.h"             // IWYU pragma: export
#include "kv/engine.h"                 // IWYU pragma: export
#include "kv/op_apply.h"               // IWYU pragma: export
#include "kv/sharded_engine.h"         // IWYU pragma: export
#include "kv/slice.h"                  // IWYU pragma: export
#include "kv/workload.h"               // IWYU pragma: export
#include "lsm/lsm_tree.h"              // IWYU pragma: export
#include "lsm/sstable.h"               // IWYU pragma: export
#include "model/affine.h"              // IWYU pragma: export
#include "model/dam.h"                 // IWYU pragma: export
#include "model/mq.h"                  // IWYU pragma: export
#include "model/optimize.h"            // IWYU pragma: export
#include "model/pdam.h"                // IWYU pragma: export
#include "model/tree_costs.h"          // IWYU pragma: export
#include "pdam_tree/pdam_btree.h"      // IWYU pragma: export
#include "pdam_tree/veb_layout.h"      // IWYU pragma: export
#include "serve/io_chain.h"            // IWYU pragma: export
#include "serve/op_queue.h"            // IWYU pragma: export
#include "serve/scheduler.h"           // IWYU pragma: export
#include "serve/session.h"             // IWYU pragma: export
#include "sim/closed_loop.h"           // IWYU pragma: export
#include "sim/device.h"                // IWYU pragma: export
#include "sim/fault_injection.h"       // IWYU pragma: export
#include "sim/hdd.h"                   // IWYU pragma: export
#include "sim/mq_ssd.h"                // IWYU pragma: export
#include "sim/profiles.h"              // IWYU pragma: export
#include "sim/scheduler.h"             // IWYU pragma: export
#include "sim/ssd.h"                   // IWYU pragma: export
#include "sim/trace.h"                 // IWYU pragma: export
#include "stats/json.h"                // IWYU pragma: export
#include "stats/metrics.h"             // IWYU pragma: export
#include "stats/trace_buffer.h"        // IWYU pragma: export
#include "util/bloom.h"                // IWYU pragma: export
#include "util/histogram.h"            // IWYU pragma: export
#include "util/rng.h"                  // IWYU pragma: export
#include "util/stats.h"                // IWYU pragma: export
#include "util/status.h"               // IWYU pragma: export
#include "util/table.h"                // IWYU pragma: export
#include "wal/durable_engine.h"        // IWYU pragma: export
#include "wal/snapshot.h"              // IWYU pragma: export
#include "wal/wal.h"                   // IWYU pragma: export
