// Lightweight error handling for damkit.
//
// The library favours Status/StatusOr returns on fallible paths and
// CHECK-style invariant macros for programming errors. CHECK failures
// abort with a message; they are never used for user-input validation.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace damkit {

// Error categories, deliberately small; most call sites only branch on ok().
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kCorruption,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
};

/// Human-readable name of a StatusCode ("ok", "invalid_argument", ...).
std::string_view status_code_name(StatusCode code);

/// Value-type result of a fallible operation: a code plus optional message.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status invalid_argument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status not_found(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status out_of_range(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status resource_exhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status failed_precondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  /// Transient failure (e.g. an injected device fault); safe to retry.
  static Status unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>".
  std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or a non-ok Status. Minimal StatusOr good enough for the
/// library's internal plumbing; value access CHECKs ok().
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(T value) : rep_(std::move(value)) {}
  StatusOr(Status status) : rep_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  T& value() & {
    check_ok();
    return std::get<T>(rep_);
  }
  const T& value() const& {
    check_ok();
    return std::get<T>(rep_);
  }
  T&& value() && {
    check_ok();
    return std::move(std::get<T>(rep_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  void check_ok() const {
    if (!ok()) {
      std::fprintf(stderr, "StatusOr::value() on error: %s\n",
                   std::get<Status>(rep_).to_string().c_str());
      std::abort();
    }
  }
  std::variant<T, Status> rep_;
};

namespace detail {
[[noreturn]] void check_failed(const char* file, int line, const char* expr,
                               const std::string& extra);
}  // namespace detail

}  // namespace damkit

// Invariant checks. Active in all build types: the simulators and trees are
// the experiment; silent corruption would invalidate every measured number.
#define DAMKIT_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      ::damkit::detail::check_failed(__FILE__, __LINE__, #expr, "");    \
    }                                                                   \
  } while (0)

#define DAMKIT_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) [[unlikely]] {                                         \
      std::ostringstream oss_;                                          \
      oss_ << msg; /* NOLINT */                                         \
      ::damkit::detail::check_failed(__FILE__, __LINE__, #expr,         \
                                     oss_.str());                       \
    }                                                                   \
  } while (0)

#define DAMKIT_CHECK_OK(status_expr)                                    \
  do {                                                                  \
    const ::damkit::Status s_ = (status_expr);                          \
    if (!s_.ok()) [[unlikely]] {                                        \
      ::damkit::detail::check_failed(__FILE__, __LINE__, #status_expr,  \
                                     s_.to_string());                   \
    }                                                                   \
  } while (0)

#define DAMKIT_RETURN_IF_ERROR(status_expr)       \
  do {                                            \
    ::damkit::Status s_ = (status_expr);          \
    if (!s_.ok()) [[unlikely]] { return s_; }     \
  } while (0)
