#include "util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

#include "util/status.h"

namespace damkit {

Histogram::Histogram() : buckets_(kBucketCount, 0) {}

int Histogram::bucket_index(uint64_t value) {
  if (value < kSubBuckets) return static_cast<int>(value);
  const int log2 = 63 - std::countl_zero(value);
  // Position within the decade, scaled to kSubBuckets sub-buckets.
  const int shift = log2 - 4;  // log2(kSubBuckets) == 4
  const int sub = static_cast<int>((value >> shift) & (kSubBuckets - 1));
  return log2 * kSubBuckets + sub;
}

uint64_t Histogram::bucket_floor(int index) {
  if (index < kSubBuckets) return static_cast<uint64_t>(index);
  const int log2 = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  return (1ULL << log2) + (static_cast<uint64_t>(sub) << (log2 - 4));
}

void Histogram::record(uint64_t value) {
  ++buckets_[static_cast<size_t>(bucket_index(value))];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::merge(const Histogram& other) {
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

uint64_t Histogram::percentile(double p) const {
  DAMKIT_CHECK(p >= 0.0 && p <= 100.0);
  if (count_ == 0) return 0;
  const uint64_t target =
      static_cast<uint64_t>(p / 100.0 * static_cast<double>(count_ - 1)) + 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= target) return bucket_floor(i);
  }
  return max_;
}

void Histogram::for_each_bucket(
    const std::function<void(int, uint64_t, uint64_t)>& fn) const {
  for (int i = 0; i < kBucketCount; ++i) {
    const uint64_t c = buckets_[static_cast<size_t>(i)];
    if (c > 0) fn(i, bucket_floor(i), c);
  }
}

Histogram Histogram::restore(
    uint64_t count, uint64_t sum, uint64_t min, uint64_t max,
    const std::vector<std::pair<int, uint64_t>>& buckets) {
  Histogram h;
  uint64_t total = 0;
  for (const auto& [index, c] : buckets) {
    DAMKIT_CHECK_MSG(index >= 0 && index < kBucketCount,
                     "histogram bucket index out of range: " << index);
    h.buckets_[static_cast<size_t>(index)] += c;
    total += c;
  }
  DAMKIT_CHECK_MSG(total == count, "histogram restore: bucket counts sum to "
                                       << total << ", expected " << count);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = count == 0 ? ~0ULL : min;
  h.max_ = max;
  return h;
}

std::string Histogram::to_string(size_t max_rows) const {
  struct Row {
    int index;
    uint64_t count;
  };
  std::vector<Row> rows;
  for (int i = 0; i < kBucketCount; ++i) {
    if (buckets_[static_cast<size_t>(i)] > 0) {
      rows.push_back({i, buckets_[static_cast<size_t>(i)]});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.count > b.count; });
  if (rows.size() > max_rows) rows.resize(max_rows);
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.index < b.index; });

  uint64_t peak = 1;
  for (const Row& r : rows) peak = std::max(peak, r.count);

  std::string out;
  char line[160];
  for (const Row& r : rows) {
    const int bar = static_cast<int>(40 * r.count / peak);
    std::snprintf(line, sizeof(line), "%12llu | %10llu | %.*s\n",
                  static_cast<unsigned long long>(bucket_floor(r.index)),
                  static_cast<unsigned long long>(r.count), bar,
                  "########################################");
    out += line;
  }
  return out;
}

}  // namespace damkit
