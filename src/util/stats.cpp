#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/status.h"

namespace damkit {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) return s;
  s.min = std::numeric_limits<double>::infinity();
  s.max = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n >= 2) {
    double ss = 0.0;
    for (double x : xs) {
      const double d = x - s.mean;
      ss += d * d;
    }
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  return s;
}

double percentile(std::vector<double> xs, double p) {
  DAMKIT_CHECK(!xs.empty());
  DAMKIT_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  DAMKIT_CHECK(x.size() == y.size());
  DAMKIT_CHECK(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n, my = sy / n;
  double sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxx += (x[i] - mx) * (x[i] - mx);
    sxy += (x[i] - mx) * (y[i] - my);
  }
  LinearFit fit;
  fit.n = x.size();
  // Degenerate x (all equal): best constant fit.
  fit.slope = (sxx > 0.0) ? sxy / sxx : 0.0;
  fit.intercept = my - fit.slope * mx;
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - my) * (y[i] - my);
  }
  fit.r2 = (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
  fit.rms = std::sqrt(ss_res / n);
  return fit;
}

namespace {
// Residual sum of squares of an OLS fit on a range, without recomputing
// the fit parameters separately.
double fit_sse(std::span<const double> x, std::span<const double> y) {
  const LinearFit f = linear_fit(x, y);
  double sse = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (f.slope * x[i] + f.intercept);
    sse += e * e;
  }
  return sse;
}
}  // namespace

SegmentedFit segmented_linear_fit(std::span<const double> x,
                                  std::span<const double> y) {
  DAMKIT_CHECK(x.size() == y.size());
  DAMKIT_CHECK_MSG(x.size() >= 4, "need >= 2 points per segment");
  for (size_t i = 1; i < x.size(); ++i) DAMKIT_CHECK(x[i] >= x[i - 1]);

  double best_sse = std::numeric_limits<double>::infinity();
  size_t best_split = 2;
  for (size_t split = 2; split + 2 <= x.size(); ++split) {
    const double sse = fit_sse(x.subspan(0, split), y.subspan(0, split)) +
                       fit_sse(x.subspan(split), y.subspan(split));
    if (sse < best_sse) {
      best_sse = sse;
      best_split = split;
    }
  }

  SegmentedFit out;
  out.split_index = best_split;
  out.left = linear_fit(x.subspan(0, best_split), y.subspan(0, best_split));
  out.right = linear_fit(x.subspan(best_split), y.subspan(best_split));

  const double ds = out.right.slope - out.left.slope;
  if (std::abs(ds) > 1e-30) {
    out.breakpoint = (out.left.intercept - out.right.intercept) / ds;
  } else {
    out.breakpoint = x[best_split];
  }

  // Combined R² over all points using the piecewise prediction.
  std::vector<double> pred(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    const LinearFit& f = (x[i] < out.breakpoint) ? out.left : out.right;
    pred[i] = f.slope * x[i] + f.intercept;
  }
  out.r2 = r_squared(y, pred);
  return out;
}

double r_squared(std::span<const double> observed,
                 std::span<const double> predicted) {
  DAMKIT_CHECK(observed.size() == predicted.size());
  DAMKIT_CHECK(!observed.empty());
  double mean = 0.0;
  for (double o : observed) mean += o;
  mean /= static_cast<double>(observed.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
    ss_tot += (observed[i] - mean) * (observed[i] - mean);
  }
  return (ss_tot > 0.0) ? 1.0 - ss_res / ss_tot : 1.0;
}

}  // namespace damkit
