// Log-bucketed latency histogram. Benches record per-operation simulated
// latencies here; reports read back counts, means, and percentiles without
// storing every sample.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace damkit {

/// Histogram over non-negative 64-bit values (typically nanoseconds) with
/// sub-buckets inside each power-of-two decade for ~3% relative resolution.
class Histogram {
 public:
  Histogram();

  void record(uint64_t value);
  void merge(const Histogram& other);
  void clear();

  /// Total bucket slots (valid indices are [0, bucket_limit())).
  static constexpr int bucket_limit() { return kBucketCount; }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Approximate percentile (p in [0,100]) from bucket boundaries.
  uint64_t percentile(double p) const;

  /// Multi-line ASCII rendering (bucket | count | bar), top `max_rows`
  /// most-populated buckets.
  std::string to_string(size_t max_rows = 12) const;

  /// Visit every non-empty bucket in ascending order:
  /// fn(bucket_index, bucket_floor_value, count). Serialization support.
  void for_each_bucket(
      const std::function<void(int, uint64_t, uint64_t)>& fn) const;

  /// Rebuild a histogram from serialized state (the exact inverse of
  /// reading count()/sum()/min()/max() + for_each_bucket). The bucket
  /// counts must sum to `count`; indices must be in range.
  static Histogram restore(uint64_t count, uint64_t sum, uint64_t min,
                           uint64_t max,
                           const std::vector<std::pair<int, uint64_t>>& buckets);

 private:
  static constexpr int kSubBuckets = 16;  // per power-of-two
  static constexpr int kBucketCount = 64 * kSubBuckets;

  static int bucket_index(uint64_t value);
  static uint64_t bucket_floor(int index);

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = ~0ULL;
  uint64_t max_ = 0;
};

}  // namespace damkit
