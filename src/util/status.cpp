#include "util/status.h"

namespace damkit {

std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kNotFound: return "not_found";
    case StatusCode::kOutOfRange: return "out_of_range";
    case StatusCode::kCorruption: return "corruption";
    case StatusCode::kResourceExhausted: return "resource_exhausted";
    case StatusCode::kFailedPrecondition: return "failed_precondition";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out(status_code_name(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace detail {

void check_failed(const char* file, int line, const char* expr,
                  const std::string& extra) {
  std::fprintf(stderr, "DAMKIT_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, extra.empty() ? "" : " — ", extra.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace detail
}  // namespace damkit
