#include "util/bytes.h"

#include <cctype>
#include <cstdio>

namespace damkit {

std::string format_bytes(uint64_t bytes) {
  struct Unit {
    uint64_t scale;
    const char* suffix;
  };
  static constexpr Unit kUnits[] = {
      {kGiB, "GiB"}, {kMiB, "MiB"}, {kKiB, "KiB"}};
  for (const Unit& u : kUnits) {
    if (bytes >= u.scale) {
      const double v = static_cast<double>(bytes) / static_cast<double>(u.scale);
      char buf[32];
      if (bytes % u.scale == 0) {
        std::snprintf(buf, sizeof(buf), "%.0f %s", v, u.suffix);
      } else {
        std::snprintf(buf, sizeof(buf), "%.2f %s", v, u.suffix);
      }
      return buf;
    }
  }
  return std::to_string(bytes) + " B";
}

uint64_t parse_bytes(std::string_view text) {
  size_t i = 0;
  uint64_t value = 0;
  bool any_digit = false;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) {
    value = value * 10 + static_cast<uint64_t>(text[i] - '0');
    any_digit = true;
    ++i;
  }
  if (!any_digit) return 0;
  // Optional fractional part only matters with a unit suffix; keep it simple
  // and integral — callers pass whole units.
  while (i < text.size() && text[i] == ' ') ++i;
  if (i == text.size()) return value;
  const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(text[i])));
  switch (c) {
    case 'k': return value * kKiB;
    case 'm': return value * kMiB;
    case 'g': return value * kGiB;
    case 'b': return value;
    default: return 0;
  }
}

uint64_t fnv1a(std::span<const uint8_t> data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace damkit
