// ASCII table and CSV emitters used by the benchmark harness to print
// paper-style tables (Table 1, Table 2, ...) and figure series.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace damkit {

/// Column-aligned plain-text table builder.
///
///   Table t({"Device", "P", "~PB (MB/s)", "R^2"});
///   t.add_row({"Samsung 860 pro", "3.3", "530", "0.999"});
///   std::fputs(t.to_string().c_str(), stdout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule; numeric-looking cells right-aligned.
  std::string to_string() const;

  /// Comma-separated rendering (header + rows) for machine consumption.
  std::string to_csv() const;

  /// Write the CSV form to `path`; returns false on IO failure.
  bool write_csv(const std::string& path) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style helper returning std::string.
std::string strfmt(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace damkit
