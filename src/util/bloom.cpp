#include "util/bloom.h"

#include <cmath>

#include "util/bytes.h"
#include "util/status.h"

namespace damkit {

BloomFilter::BloomFilter(uint64_t expected_keys, double bits_per_key) {
  DAMKIT_CHECK(bits_per_key > 0.0);
  bit_count_ = std::max<uint64_t>(
      64, static_cast<uint64_t>(static_cast<double>(expected_keys) *
                                bits_per_key));
  bit_count_ = align_up(bit_count_, 64);
  bits_.assign(bit_count_ / 64, 0);
  // Optimal k = ln2 · bits/key, clamped to a sane range.
  hash_count_ = static_cast<int>(bits_per_key * 0.6931 + 0.5);
  if (hash_count_ < 1) hash_count_ = 1;
  if (hash_count_ > 16) hash_count_ = 16;
}

void BloomFilter::hash_pair(std::string_view key, uint64_t* h1, uint64_t* h2) {
  // Two independent FNV-1a-style passes with different offsets/primes.
  uint64_t a = 0xcbf29ce484222325ULL;
  uint64_t b = 0x84222325cbf29ce4ULL;
  for (unsigned char c : key) {
    a = (a ^ c) * 0x100000001b3ULL;
    b = (b ^ c) * 0x100000001b5ULL;
  }
  // Finalize (splitmix-style avalanche).
  a ^= a >> 33;
  a *= 0xff51afd7ed558ccdULL;
  a ^= a >> 33;
  b ^= b >> 29;
  b *= 0xc4ceb9fe1a85ec53ULL;
  b ^= b >> 32;
  *h1 = a;
  *h2 = b | 1;  // odd stride
}

void BloomFilter::add(std::string_view key) {
  uint64_t h1, h2;
  hash_pair(key, &h1, &h2);
  for (int i = 0; i < hash_count_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bit_count_;
    bits_[bit / 64] |= 1ULL << (bit % 64);
  }
}

bool BloomFilter::may_contain(std::string_view key) const {
  uint64_t h1, h2;
  hash_pair(key, &h1, &h2);
  for (int i = 0; i < hash_count_; ++i) {
    const uint64_t bit = (h1 + static_cast<uint64_t>(i) * h2) % bit_count_;
    if ((bits_[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

void BloomFilter::serialize(std::vector<uint8_t>& out) const {
  out.resize(16 + bits_.size() * 8);
  store_u64(out.data(), bit_count_);
  store_u32(out.data() + 8, static_cast<uint32_t>(hash_count_));
  store_u32(out.data() + 12, 0);
  for (size_t i = 0; i < bits_.size(); ++i) {
    store_u64(out.data() + 16 + i * 8, bits_[i]);
  }
}

BloomFilter BloomFilter::deserialize(std::span<const uint8_t> image) {
  DAMKIT_CHECK(image.size() >= 16);
  BloomFilter f;
  f.bit_count_ = load_u64(image.data());
  f.hash_count_ = static_cast<int>(load_u32(image.data() + 8));
  DAMKIT_CHECK(f.bit_count_ % 64 == 0);
  const size_t words = f.bit_count_ / 64;
  DAMKIT_CHECK(image.size() >= 16 + words * 8);
  f.bits_.resize(words);
  for (size_t i = 0; i < words; ++i) {
    f.bits_[i] = load_u64(image.data() + 16 + i * 8);
  }
  return f;
}

}  // namespace damkit
