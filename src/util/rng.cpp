#include "util/rng.h"

#include <cmath>
#include <map>
#include <mutex>
#include <utility>

namespace damkit {

namespace {
uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

void Rng::reseed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::uniform(uint64_t bound) {
  DAMKIT_CHECK(bound > 0);
  // Lemire's nearly-divisionless method.
  uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    const uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

Zipfian::Zipfian(uint64_t n, double theta) : n_(n), theta_(theta) {
  DAMKIT_CHECK(n > 0);
  DAMKIT_CHECK(theta > 0.0 && theta < 1.0);
  zetan_ = zeta_cached(n, theta);
  zeta2theta_ = zeta_cached(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
         (1.0 - zeta2theta_ / zetan_);
}

double Zipfian::zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

double Zipfian::zeta_cached(uint64_t n, double theta) {
  // Partial zeta sums accumulate left-to-right, so extending a cached
  // prefix (theta, n0 < n) gives bit-identical results to a fresh O(n)
  // computation — determinism is preserved across cache hits and misses.
  static std::mutex mu;
  static std::map<std::pair<double, uint64_t>, double> cache;
  std::lock_guard<std::mutex> lock(mu);
  const auto exact = cache.find({theta, n});
  if (exact != cache.end()) return exact->second;
  // Largest cached n0 <= n for this theta: predecessor of (theta, n).
  uint64_t start = 0;
  double sum = 0.0;
  auto it = cache.lower_bound({theta, n});
  if (it != cache.begin()) {
    --it;
    if (it->first.first == theta) {
      start = it->first.second;
      sum = it->second;
    }
  }
  for (uint64_t i = start + 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  cache.emplace(std::make_pair(theta, n), sum);
  return sum;
}

uint64_t Zipfian::sample(Rng& rng) {
  const double u = rng.uniform_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const double v =
      static_cast<double>(n_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_);
  uint64_t rank = static_cast<uint64_t>(v);
  if (rank >= n_) rank = n_ - 1;
  return rank;
}

}  // namespace damkit
