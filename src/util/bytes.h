// Byte-level helpers: little-endian fixed-width encode/decode used by the
// on-"disk" node formats, and human-readable byte-size formatting/parsing
// used by benches and reports.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

namespace damkit {

// ---------------------------------------------------------------------------
// Little-endian fixed-width codecs. All node serialization goes through
// these so that the stored images are architecture-independent.
// ---------------------------------------------------------------------------

inline void store_u16(uint8_t* dst, uint16_t v) {
  dst[0] = static_cast<uint8_t>(v);
  dst[1] = static_cast<uint8_t>(v >> 8);
}

inline void store_u32(uint8_t* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline void store_u64(uint8_t* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst[i] = static_cast<uint8_t>(v >> (8 * i));
}

inline uint16_t load_u16(const uint8_t* src) {
  return static_cast<uint16_t>(src[0] | (static_cast<uint16_t>(src[1]) << 8));
}

inline uint32_t load_u32(const uint8_t* src) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(src[i]) << (8 * i);
  return v;
}

inline uint64_t load_u64(const uint8_t* src) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(src[i]) << (8 * i);
  return v;
}

// ---------------------------------------------------------------------------
// Size literals and formatting.
// ---------------------------------------------------------------------------

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

/// "4 KiB", "2.5 MiB", "128 B" — two significant decimals max.
std::string format_bytes(uint64_t bytes);

/// Parses "64k", "64KiB", "4m", "1GiB", "512" (bytes). Returns 0 on failure.
uint64_t parse_bytes(std::string_view text);

/// Round `v` up to a multiple of `alignment` (alignment must be > 0).
constexpr uint64_t align_up(uint64_t v, uint64_t alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

/// Integer ceiling division.
constexpr uint64_t ceil_div(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

/// FNV-1a over a byte span; used for cheap content checksums in node images.
uint64_t fnv1a(std::span<const uint8_t> data);

}  // namespace damkit
