#include "util/table.h"

#include <cctype>
#include <cstdarg>

#include "util/status.h"

namespace damkit {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '%' && c != 'x') {
      return false;
    }
  }
  return digit;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DAMKIT_CHECK(!header_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  DAMKIT_CHECK_MSG(cells.size() == header_.size(),
                   "row width " << cells.size() << " vs header "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += (c == 0) ? "| " : " | ";
      const size_t pad = width[c] - row[c].size();
      if (looks_numeric(row[c])) {
        out.append(pad, ' ');
        out += row[c];
      } else {
        out += row[c];
        out.append(pad, ' ');
      }
    }
    out += " |\n";
  };

  std::string out;
  emit_row(header_, out);
  out += "|";
  for (size_t c = 0; c < header_.size(); ++c) {
    out.append(width[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += csv_escape(row[c]);
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

bool Table::write_csv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string csv = to_csv();
  const size_t written = std::fwrite(csv.data(), 1, csv.size(), f);
  const bool ok = (written == csv.size()) && (std::fclose(f) == 0);
  if (written != csv.size()) std::fclose(f);
  return ok;
}

std::string strfmt(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace damkit
