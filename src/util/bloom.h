// Blocked Bloom filter for LSM-tree point-query filtering.
//
// Standard double-hashing construction (Kirsch–Mitzenmacher): k probe
// positions derived from two 64-bit hashes. Serializable, since filters
// live alongside their SSTables on the simulated device.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace damkit {

class BloomFilter {
 public:
  /// Sized for `expected_keys` at `bits_per_key` (10 → ~1% false-positive
  /// rate). expected_keys == 0 yields an always-false filter.
  BloomFilter(uint64_t expected_keys, double bits_per_key = 10.0);

  void add(std::string_view key);

  /// False positives possible; false negatives never.
  bool may_contain(std::string_view key) const;

  uint64_t bit_count() const { return bit_count_; }
  int hash_count() const { return hash_count_; }
  uint64_t byte_size() const { return bits_.size() * 8 + 16; }

  /// Serialized image: u64 bit_count, u32 hash_count, u32 pad, words.
  void serialize(std::vector<uint8_t>& out) const;
  static BloomFilter deserialize(std::span<const uint8_t> image);

 private:
  BloomFilter() = default;
  static void hash_pair(std::string_view key, uint64_t* h1, uint64_t* h2);

  uint64_t bit_count_ = 0;
  int hash_count_ = 1;
  std::vector<uint64_t> bits_;
};

}  // namespace damkit
