// Statistics used to fit the affine and PDAM models to measured device
// behaviour, mirroring §4 of the paper: ordinary least squares with R²
// (Table 2) and two-segment ("segmented") linear regression whose segment
// intersection estimates the device parallelism P (Table 1 / Figure 1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace damkit {

/// Summary statistics of a sample.
struct Summary {
  size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

/// p in [0,100]; linear interpolation between order statistics.
double percentile(std::vector<double> xs, double p);

/// Ordinary least-squares fit y ≈ slope·x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;       // coefficient of determination on the fitted data
  double rms = 0.0;      // root-mean-square residual
  size_t n = 0;
};

LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// Two-segment continuous piecewise-linear fit.
///
/// Finds the segment boundary (over candidate splits between consecutive
/// sample points) minimizing total squared error of independent OLS fits on
/// each side, then reports the x-coordinate where the two fitted lines
/// intersect as `breakpoint`. This is how the paper extracts P from the
/// time-vs-threads curve: the left segment is nearly flat (device not yet
/// saturated), the right grows linearly, and their intersection is the
/// effective parallelism.
struct SegmentedFit {
  LinearFit left;
  LinearFit right;
  double breakpoint = 0.0;  // x where the two segments intersect
  double r2 = 0.0;          // combined R² over all points
  size_t split_index = 0;   // first index assigned to the right segment
};

/// Requires x sorted ascending and at least 4 points (2 per segment).
SegmentedFit segmented_linear_fit(std::span<const double> x,
                                  std::span<const double> y);

/// R² of arbitrary predictions vs observations.
double r_squared(std::span<const double> observed,
                 std::span<const double> predicted);

}  // namespace damkit
