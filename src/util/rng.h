// Deterministic pseudo-random number generation for workloads and
// simulators. Every experiment takes an explicit seed so runs are
// reproducible bit-for-bit; nothing in the library touches global RNG state.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace damkit {

/// xoshiro256++ — fast, high-quality, 2^256-1 period. Satisfies the
/// UniformRandomBitGenerator concept so it composes with <random> if needed.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize state from a 64-bit seed via splitmix64 expansion.
  void reseed(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  uint64_t operator()() { return next(); }

  uint64_t next() {
    const uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  uint64_t uniform(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Handles the full 64-bit range
  /// ([0, UINT64_MAX]), where `hi - lo + 1` would wrap to zero.
  uint64_t uniform_range(uint64_t lo, uint64_t hi) {
    DAMKIT_CHECK(hi >= lo);
    const uint64_t span = hi - lo;
    if (span == ~0ULL) return next();
    return lo + uniform(span + 1);
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(uniform(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// Zipfian distribution over {0, ..., n-1} with skew theta (0 < theta < 1
/// typical; theta→0 approaches uniform). Uses the Gray et al. rejection-free
/// method with precomputed zeta constants — O(1) per sample after O(n) setup
/// amortized via incremental zeta updates for the common "fixed n" case: a
/// process-wide cache keyed on (theta, n) makes repeated construction with
/// the same parameters O(log cache) and extends the partial sum
/// incrementally when n grows for an already-seen theta. The cache is
/// guarded by a mutex (constructors only; sampling never touches it).
class Zipfian {
 public:
  Zipfian(uint64_t n, double theta);

  /// Sample an item rank; rank 0 is the most popular item.
  uint64_t sample(Rng& rng);

  uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(uint64_t n, double theta);
  /// zeta(n, theta) via the process-wide (theta, n) cache described above.
  static double zeta_cached(uint64_t n, double theta);

  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

}  // namespace damkit
