// Double-slot checkpoint snapshot store.
//
// A checkpoint serializes the dictionary's full sorted contents into a
// payload and writes it to one of two alternating slots: payload blocks
// first, the header block last. The header carries the sequence number,
// the last LSN the snapshot covers, and FNV-1a checksums over both itself
// and the payload — so a crash at ANY point mid-checkpoint leaves that
// slot unverifiable and load() falls back to the other slot's older but
// complete snapshot. This is what makes a crash *during* checkpoint
// recoverable: the WAL is only truncated after the new slot is durable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "blockdev/retry.h"
#include "sim/device.h"
#include "stats/metrics.h"
#include "util/status.h"

namespace damkit::wal {

struct SnapshotConfig {
  /// Region start of slot 0; slot 1 follows at base_offset + slot_bytes.
  uint64_t base_offset = 0;
  uint64_t slot_bytes = 16ULL << 20;
  uint64_t block_bytes = 4096;
};

struct SnapshotMeta {
  uint64_t seq = 0;       // monotone checkpoint sequence; slot = seq % 2
  uint64_t last_lsn = 0;  // WAL replay resumes at last_lsn + 1
  uint64_t entries = 0;
  uint64_t payload_bytes = 0;
};

class SnapshotStore {
 public:
  SnapshotStore(sim::Device& dev, sim::IoContext& io,
                const SnapshotConfig& cfg);

  /// Write `payload` under `meta` to slot meta.seq % 2. Ordering makes it
  /// atomic: the header (with its checksums) lands after every payload
  /// block, so an interrupted write never yields a loadable half-snapshot.
  Status write(const SnapshotMeta& meta, std::span<const uint8_t> payload);

  /// Load the newest verifiable snapshot. Returns false (and clears the
  /// outputs) when neither slot holds one — a fresh store. Payload
  /// checksum failures demote a slot, they do not error.
  StatusOr<bool> load(SnapshotMeta* meta, std::vector<uint8_t>* payload);

  void set_retry_policy(const blockdev::RetryPolicy& policy) {
    retry_ = policy;
  }
  const blockdev::RetryCounters& retry_counters() const { return counters_; }

  /// "snapshot.*" counters under `prefix`.
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const;

 private:
  uint64_t slot_offset(uint64_t seq) const {
    return cfg_.base_offset + (seq % 2) * cfg_.slot_bytes;
  }
  /// Read one slot's header + payload; returns false when the slot does
  /// not verify (any reason), true with outputs filled when it does.
  StatusOr<bool> load_slot(int slot, SnapshotMeta* meta,
                           std::vector<uint8_t>* payload);

  sim::Device* dev_;
  sim::IoContext* io_;
  SnapshotConfig cfg_;
  blockdev::RetryPolicy retry_;
  blockdev::RetryCounters counters_;

  uint64_t writes_ = 0;
  uint64_t written_bytes_ = 0;
  uint64_t loads_ = 0;
  uint64_t invalid_slots_ = 0;  // slots demoted during load
};

}  // namespace damkit::wal
