#include "wal/durable_engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace damkit::wal {

namespace {

void append_entry(std::vector<uint8_t>* payload, std::string_view key,
                  std::string_view value) {
  const size_t at = payload->size();
  payload->resize(at + 8 + key.size() + value.size());
  uint8_t* p = payload->data() + at;
  store_u32(p, static_cast<uint32_t>(key.size()));
  store_u32(p + 4, static_cast<uint32_t>(value.size()));
  std::copy(key.begin(), key.end(), p + 8);
  std::copy(value.begin(), value.end(), p + 8 + key.size());
}

std::string encode_delta(int64_t delta) {
  std::string out(8, '\0');
  store_u64(reinterpret_cast<uint8_t*>(out.data()),
            static_cast<uint64_t>(delta));
  return out;
}

}  // namespace

DurabilityConfig default_durability_config(uint64_t device_capacity_bytes) {
  DurabilityConfig cfg;
  const uint64_t wal_region = cfg.wal.region_bytes;
  const uint64_t snap_region = 2 * cfg.snapshot.slot_bytes;
  DAMKIT_CHECK_MSG(device_capacity_bytes > 4 * (wal_region + snap_region),
                   "device too small for the default durability layout");
  cfg.snapshot.base_offset = device_capacity_bytes - snap_region;
  cfg.wal.base_offset = cfg.snapshot.base_offset - wal_region;
  return cfg;
}

DurableEngine::DurableEngine(std::unique_ptr<kv::Dictionary> inner,
                             sim::Device& dev, sim::IoContext& io,
                             const DurabilityConfig& cfg)
    : DurableEngine(RecoverTag{}, std::move(inner), dev, io, cfg) {
  // Fresh birth: fence the log region so leftover device bytes (a prior
  // incarnation, test reuse) can never replay into this engine.
  DAMKIT_CHECK_OK(log_.reset(1));
}

DurableEngine::DurableEngine(RecoverTag, std::unique_ptr<kv::Dictionary> inner,
                             sim::Device& dev, sim::IoContext& io,
                             const DurabilityConfig& cfg)
    : inner_(std::move(inner)),
      cfg_(cfg),
      log_(dev, io, cfg.wal),
      snapshot_(dev, io, cfg.snapshot),
      name_(std::string(inner_->name()) + "+wal") {}

DurableEngine::~DurableEngine() = default;

Status DurableEngine::append_mutation(WriteAheadLog::RecordType type,
                                      std::string_view key,
                                      std::string_view value) {
  return log_.append(type, key, value, log_.next_lsn());
}

Status DurableEngine::maybe_auto_checkpoint() {
  if (cfg_.checkpoint_wal_bytes == 0 || in_checkpoint_) return Status();
  const uint64_t pending = log_.durable_bytes() + log_.buffered_bytes();
  if (pending < cfg_.checkpoint_wal_bytes) {
    return Status();
  }
  ++auto_checkpoints_;
  return checkpoint();
}

void DurableEngine::put(std::string_view key, std::string_view value) {
  DAMKIT_CHECK_OK(try_put(key, value));
}

Status DurableEngine::try_put(std::string_view key, std::string_view value) {
  DAMKIT_RETURN_IF_ERROR(
      append_mutation(WriteAheadLog::RecordType::kPut, key, value));
  DAMKIT_RETURN_IF_ERROR(inner_->try_put(key, value));
  return maybe_auto_checkpoint();
}

void DurableEngine::erase(std::string_view key) {
  DAMKIT_CHECK_OK(try_erase(key));
}

Status DurableEngine::try_erase(std::string_view key) {
  DAMKIT_RETURN_IF_ERROR(
      append_mutation(WriteAheadLog::RecordType::kErase, key, {}));
  DAMKIT_RETURN_IF_ERROR(inner_->try_erase(key));
  return maybe_auto_checkpoint();
}

void DurableEngine::upsert(std::string_view key, int64_t delta) {
  DAMKIT_CHECK_OK(try_upsert(key, delta));
}

Status DurableEngine::try_upsert(std::string_view key, int64_t delta) {
  DAMKIT_RETURN_IF_ERROR(append_mutation(WriteAheadLog::RecordType::kUpsert,
                                         key, encode_delta(delta)));
  DAMKIT_RETURN_IF_ERROR(inner_->try_upsert(key, delta));
  return maybe_auto_checkpoint();
}

void DurableEngine::bulk_load(
    uint64_t count,
    const std::function<std::pair<std::string, std::string>(uint64_t)>& item) {
  std::vector<uint8_t> payload;
  uint64_t consumed = 0;
  inner_->bulk_load(count, [&](uint64_t i) {
    std::pair<std::string, std::string> kv = item(i);
    // Engines consume the ascending stream exactly once in order, so the
    // forwarding pass doubles as the snapshot serialization pass.
    DAMKIT_CHECK_MSG(i == consumed, "bulk_load items consumed out of order");
    ++consumed;
    append_entry(&payload, kv.first, kv.second);
    return kv;
  });
  DAMKIT_CHECK_MSG(consumed == count, "bulk_load did not consume every item");
  SnapshotMeta meta;
  meta.seq = ++snapshot_seq_;
  meta.last_lsn = log_.next_lsn() - 1;
  meta.entries = count;
  meta.payload_bytes = payload.size();
  DAMKIT_CHECK_OK(snapshot_.write(meta, payload));
  DAMKIT_CHECK_OK(log_.reset(log_.next_lsn()));
}

void DurableEngine::flush() {
  DAMKIT_CHECK_OK(log_.commit());
  inner_->flush();
}

Status DurableEngine::checkpoint() {
  in_checkpoint_ = true;
  const auto done = [this](Status s) {
    in_checkpoint_ = false;
    return s;
  };
  DAMKIT_RETURN_IF_ERROR(done(log_.commit()));
  DAMKIT_RETURN_IF_ERROR(done(inner_->checkpoint()));
  // The checkpoint LSN: every mutation up to here is in the inner engine
  // and will be in the snapshot; the WAL only needs what comes after.
  const uint64_t checkpoint_lsn = log_.next_lsn() - 1;
  std::vector<uint8_t> payload;
  uint64_t entries = 0;
  DAMKIT_RETURN_IF_ERROR(done(serialize_state(&payload, &entries)));
  SnapshotMeta meta;
  meta.seq = snapshot_seq_ + 1;  // bump only once the write lands
  meta.last_lsn = checkpoint_lsn;
  meta.entries = entries;
  meta.payload_bytes = payload.size();
  DAMKIT_RETURN_IF_ERROR(done(snapshot_.write(meta, payload)));
  snapshot_seq_ = meta.seq;
  DAMKIT_RETURN_IF_ERROR(done(log_.truncate(log_.next_lsn())));
  ++checkpoints_;
  return done(Status());
}

Status DurableEngine::serialize_state(std::vector<uint8_t>* payload,
                                      uint64_t* entries) {
  payload->clear();
  *entries = 0;
  const size_t chunk =
      static_cast<size_t>(std::max<uint64_t>(cfg_.snapshot_scan_chunk, 1));
  std::string lo;
  while (true) {
    StatusOr<std::vector<std::pair<std::string, std::string>>> rows =
        inner_->try_range_scan(lo, chunk);
    if (!rows.ok()) return rows.status();
    for (const auto& [k, v] : *rows) {
      append_entry(payload, k, v);
      ++*entries;
    }
    if (rows->size() < chunk) break;
    // Strictly after the last key: the shortest key greater than it.
    lo = rows->back().first;
    lo.push_back('\0');
  }
  return Status();
}

void DurableEngine::abandon() {
  // Buffered WAL records die with the process by definition of a crash;
  // the inner engine drops its dirty cache the same way.
  inner_->abandon();
}

void DurableEngine::set_retry_policy(const blockdev::RetryPolicy& policy) {
  inner_->set_retry_policy(policy);
  log_.set_retry_policy(policy);
  snapshot_.set_retry_policy(policy);
}

blockdev::RetryCounters DurableEngine::retry_counters() const {
  blockdev::RetryCounters total = inner_->retry_counters();
  total.retries +=
      log_.retry_counters().retries + snapshot_.retry_counters().retries;
  total.give_ups +=
      log_.retry_counters().give_ups + snapshot_.retry_counters().give_ups;
  return total;
}

void DurableEngine::export_metrics(stats::MetricsRegistry& reg,
                                   std::string_view prefix) const {
  inner_->export_metrics(reg, prefix);
  log_.export_metrics(reg, prefix);
  snapshot_.export_metrics(reg, prefix);
  const std::string p(prefix);
  reg.add(p + "wal.checkpoints", checkpoints_);
  reg.add(p + "wal.auto_checkpoints", auto_checkpoints_);
  reg.add(p + "recovery.runs", recovered_ ? 1 : 0);
  reg.add(p + "recovery.snapshot_entries", recovery_.snapshot_entries);
  reg.add(p + "recovery.replayed_records", recovery_.replayed_records);
  reg.add(p + "recovery.durable_lsn", recovery_.durable_lsn);
  reg.add(p + "recovery.torn_tail", recovery_.torn_tail ? 1 : 0);
  reg.add(p + "recovery.stale_records", recovery_.stale_records);
}

StatusOr<std::unique_ptr<DurableEngine>> DurableEngine::recover(
    const std::function<std::unique_ptr<kv::Dictionary>()>& make_inner,
    sim::Device& dev, sim::IoContext& io, const DurabilityConfig& cfg,
    RecoveryReport* report) {
  std::unique_ptr<DurableEngine> engine(
      new DurableEngine(RecoverTag{}, make_inner(), dev, io, cfg));

  // 1. The newest verifiable snapshot (either slot), or empty state.
  SnapshotMeta meta;
  std::vector<uint8_t> payload;
  StatusOr<bool> has = engine->snapshot_.load(&meta, &payload);
  DAMKIT_RETURN_IF_ERROR(has.status());
  RecoveryReport rep;
  if (*has) {
    std::vector<std::pair<std::string, std::string>> entries;
    entries.reserve(meta.entries);
    size_t pos = 0;
    for (uint64_t i = 0; i < meta.entries; ++i) {
      if (pos + 8 > payload.size()) {
        return Status::corruption("snapshot payload truncated");
      }
      const uint64_t klen = load_u32(payload.data() + pos);
      const uint64_t vlen = load_u32(payload.data() + pos + 4);
      if (pos + 8 + klen + vlen > payload.size()) {
        return Status::corruption("snapshot entry past payload end");
      }
      entries.emplace_back(
          std::string(reinterpret_cast<const char*>(payload.data() + pos + 8),
                      klen),
          std::string(
              reinterpret_cast<const char*>(payload.data() + pos + 8 + klen),
              vlen));
      pos += 8 + klen + vlen;
    }
    if (!entries.empty()) {
      engine->inner_->bulk_load(
          entries.size(),
          [&entries](uint64_t i) { return entries[static_cast<size_t>(i)]; });
    }
    engine->snapshot_seq_ = meta.seq;
    rep.snapshot_entries = meta.entries;
    rep.snapshot_lsn = meta.last_lsn;
  }

  // 2. Replay the WAL's valid prefix on top of the snapshot state.
  StatusOr<WriteAheadLog::ReplayResult> scan =
      engine->log_.recover_scan(meta.last_lsn + 1);
  DAMKIT_RETURN_IF_ERROR(scan.status());
  for (const WriteAheadLog::Record& r : scan->records) {
    switch (r.type) {
      case WriteAheadLog::RecordType::kPut:
        DAMKIT_RETURN_IF_ERROR(engine->inner_->try_put(r.key, r.value));
        break;
      case WriteAheadLog::RecordType::kErase:
        DAMKIT_RETURN_IF_ERROR(engine->inner_->try_erase(r.key));
        break;
      case WriteAheadLog::RecordType::kUpsert: {
        if (r.value.size() != 8) {
          return Status::corruption("upsert record with malformed delta");
        }
        const int64_t delta = static_cast<int64_t>(
            load_u64(reinterpret_cast<const uint8_t*>(r.value.data())));
        DAMKIT_RETURN_IF_ERROR(engine->inner_->try_upsert(r.key, delta));
        break;
      }
    }
  }
  rep.replayed_records = scan->records.size();
  rep.durable_lsn = engine->log_.next_lsn() - 1;
  rep.torn_tail = scan->torn_tail;
  rep.stale_records = scan->stale_records;
  engine->recovery_ = rep;
  engine->recovered_ = true;
  if (report != nullptr) *report = rep;
  return StatusOr<std::unique_ptr<DurableEngine>>(std::move(engine));
}

std::unique_ptr<kv::Dictionary> make_durable(
    std::unique_ptr<kv::Dictionary> inner, sim::Device& dev,
    sim::IoContext& io, const DurabilityConfig& cfg) {
  return std::make_unique<DurableEngine>(std::move(inner), dev, io, cfg);
}

}  // namespace damkit::wal
