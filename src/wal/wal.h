// Write-ahead log over a simulated device region.
//
// Records are framed with a magic, a monotone LSN, and a trailing FNV-1a
// checksum, appended to an in-memory group buffer and made durable by
// group commit: commit() rewrites the partial tail block plus any new
// full blocks as ONE submit_batch — the SQ/CQ path — so a commit pays the
// slowest block write, not the sum. Rewriting the tail block is safe
// under torn writes because the already-durable prefix bytes of that
// block are bit-identical in the new image: a tear either lands past
// them (new records lost, old intact) or within them (the old image's
// bytes land unchanged).
//
// Replay walks the region from the base and accepts the longest valid
// prefix: parse stops at zero padding (clean shutdown), at a record whose
// checksum or framing fails (torn tail — counted loudly), or at a valid
// record with an unexpected LSN (a stale record from before the last
// truncation — normal after reuse). Truncation at a checkpoint LSN
// resets the physical tail to the region base and writes a zeroed fence
// block so dead bytes cannot be mistaken for live log.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "blockdev/retry.h"
#include "sim/device.h"
#include "stats/metrics.h"
#include "util/status.h"

namespace damkit::wal {

struct WalConfig {
  /// Region start on the device; the caller places it away from engine
  /// extent space (see default_durability_config).
  uint64_t base_offset = 0;
  uint64_t region_bytes = 32ULL << 20;
  /// Commit granularity: commits write whole multiples of this.
  uint64_t block_bytes = 4096;
  /// Group-commit policy: an append auto-commits once this many records
  /// or this many buffered bytes are pending. 1 record = commit per op.
  uint64_t group_ops = 32;
  uint64_t group_bytes = 256ULL << 10;
};

class WriteAheadLog {
 public:
  enum class RecordType : uint8_t { kPut = 1, kErase = 2, kUpsert = 3 };

  struct Record {
    uint64_t lsn = 0;
    RecordType type = RecordType::kPut;
    std::string key;
    std::string value;
  };

  struct ReplayResult {
    std::vector<Record> records;  // the valid prefix, LSNs consecutive
    bool torn_tail = false;       // parse/checksum failure at the frontier
    uint64_t stale_records = 0;   // valid frames with out-of-sequence LSNs
    uint64_t scanned_bytes = 0;
  };

  WriteAheadLog(sim::Device& dev, sim::IoContext& io, const WalConfig& cfg);

  /// Start an empty log whose next record must carry `next_lsn`: logical
  /// and physical reset plus a zeroed fence block at the region base.
  Status reset(uint64_t next_lsn);

  /// Buffer one record; `lsn` must be exactly the next expected LSN.
  /// Auto-commits per the group policy; a commit failure leaves the
  /// buffer intact (the records are NOT durable) and surfaces here.
  Status append(RecordType type, std::string_view key, std::string_view value,
                uint64_t lsn);

  /// Force the group commit of all buffered records (no-op when empty).
  /// On success every buffered record is durable; on failure none may be
  /// assumed durable and the buffer is kept for retry.
  Status commit();

  /// Truncate after a checkpoint covering LSNs < `next_lsn`: physical
  /// tail back to the region base plus a fence block. Buffer must be
  /// empty (commit first).
  Status truncate(uint64_t next_lsn);

  /// Parse the region expecting `start_lsn` first and position this log
  /// for appends at the end of the valid prefix. When the frontier held
  /// garbage (torn tail or stale records) it is fenced off with a tail
  /// rewrite so the dead bytes cannot resurrect under later appends.
  StatusOr<ReplayResult> recover_scan(uint64_t start_lsn);

  uint64_t next_lsn() const { return next_lsn_; }
  /// Durable log bytes (committed content since the last truncation).
  uint64_t durable_bytes() const { return tail_; }
  uint64_t buffered_bytes() const { return buffer_.size(); }
  uint64_t buffered_records() const { return buffer_records_; }

  void set_retry_policy(const blockdev::RetryPolicy& policy) {
    retry_ = policy;
  }
  const blockdev::RetryCounters& retry_counters() const { return counters_; }

  /// "wal.*" counters/gauges under `prefix`.
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const;

 private:
  /// Serialized record size for a key/value pair.
  static uint64_t record_bytes(std::string_view key, std::string_view value);
  /// Write `content` as whole-block images starting at block index
  /// `first_block` in one checked batch (with retries); `content` must be
  /// block-aligned in length.
  Status write_blocks(uint64_t first_block,
                      std::vector<uint8_t>&& content);
  /// Rewrite the current tail block (partial content zero-padded) plus a
  /// zeroed fence block after it — used by recover_scan to bury garbage.
  Status seal();

  sim::Device* dev_;
  sim::IoContext* io_;
  WalConfig cfg_;

  uint64_t next_lsn_ = 1;
  uint64_t tail_ = 0;  // committed content bytes since region base
  std::vector<uint8_t> tail_partial_;  // committed bytes of the tail block
  std::vector<uint8_t> buffer_;        // appended, not yet committed
  uint64_t buffer_records_ = 0;

  blockdev::RetryPolicy retry_;
  blockdev::RetryCounters counters_;

  // Lifetime counters (survive truncation).
  uint64_t records_appended_ = 0;
  uint64_t commits_ = 0;
  uint64_t committed_bytes_ = 0;   // payload bytes made durable
  uint64_t commit_blocks_ = 0;     // block writes issued by commits
  uint64_t truncations_ = 0;
  uint64_t replay_torn_tails_ = 0;
  uint64_t replay_stale_records_ = 0;
};

}  // namespace damkit::wal
