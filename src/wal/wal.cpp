#include "wal/wal.h"

#include <algorithm>
#include <utility>

#include "util/bytes.h"

namespace damkit::wal {

namespace {

// "KWAL" in little-endian byte order; 0 never collides with it, so zeroed
// padding/fence bytes read as a clean log end.
constexpr uint32_t kRecordMagic = 0x4C41574Bu;
// magic + lsn + type + klen + vlen.
constexpr uint64_t kHeaderBytes = 4 + 8 + 1 + 4 + 4;
constexpr uint64_t kCheckBytes = 8;
// Bytes fetched per replay read; parsing stops at the frontier, so replay
// cost scales with live log bytes, not region size.
constexpr uint64_t kReplayChunk = 256ULL << 10;

}  // namespace

WriteAheadLog::WriteAheadLog(sim::Device& dev, sim::IoContext& io,
                             const WalConfig& cfg)
    : dev_(&dev), io_(&io), cfg_(cfg) {
  DAMKIT_CHECK_MSG(cfg_.block_bytes > kHeaderBytes + kCheckBytes,
                   "WAL block_bytes too small: " << cfg_.block_bytes);
  DAMKIT_CHECK_MSG(cfg_.region_bytes >= 2 * cfg_.block_bytes &&
                       cfg_.region_bytes % cfg_.block_bytes == 0,
                   "WAL region must be >= 2 blocks and block-aligned");
  DAMKIT_CHECK_MSG(cfg_.base_offset + cfg_.region_bytes <=
                       dev_->capacity_bytes(),
                   "WAL region past device end");
  DAMKIT_CHECK_MSG(cfg_.group_ops > 0, "group_ops must be >= 1");
}

uint64_t WriteAheadLog::record_bytes(std::string_view key,
                                     std::string_view value) {
  return kHeaderBytes + key.size() + value.size() + kCheckBytes;
}

Status WriteAheadLog::reset(uint64_t next_lsn) {
  buffer_.clear();
  buffer_records_ = 0;
  return truncate(next_lsn);
}

Status WriteAheadLog::truncate(uint64_t next_lsn) {
  DAMKIT_CHECK_MSG(buffer_.empty(),
                   "truncate with " << buffer_records_
                                    << " uncommitted records; commit first");
  tail_ = 0;
  tail_partial_.clear();
  next_lsn_ = next_lsn;
  ++truncations_;
  // Fence: the region base must not parse as live log until re-appended.
  return write_blocks(0, std::vector<uint8_t>(cfg_.block_bytes, 0));
}

Status WriteAheadLog::append(RecordType type, std::string_view key,
                             std::string_view value, uint64_t lsn) {
  DAMKIT_CHECK_MSG(lsn == next_lsn_, "WAL append lsn " << lsn << " != next "
                                                       << next_lsn_);
  const uint64_t rec = record_bytes(key, value);
  DAMKIT_CHECK_MSG(rec + 2 * cfg_.block_bytes <= cfg_.region_bytes,
                   "record of " << rec << " bytes cannot fit the WAL region");
  const size_t at = buffer_.size();
  buffer_.resize(at + rec);
  uint8_t* p = buffer_.data() + at;
  store_u32(p, kRecordMagic);
  store_u64(p + 4, lsn);
  p[12] = static_cast<uint8_t>(type);
  store_u32(p + 13, static_cast<uint32_t>(key.size()));
  store_u32(p + 17, static_cast<uint32_t>(value.size()));
  std::copy(key.begin(), key.end(), p + kHeaderBytes);
  std::copy(value.begin(), value.end(), p + kHeaderBytes + key.size());
  const uint64_t check =
      fnv1a({p, static_cast<size_t>(rec - kCheckBytes)});
  store_u64(p + rec - kCheckBytes, check);

  ++next_lsn_;
  ++records_appended_;
  ++buffer_records_;
  if (buffer_records_ >= cfg_.group_ops || buffer_.size() >= cfg_.group_bytes) {
    return commit();
  }
  return Status();
}

Status WriteAheadLog::commit() {
  if (buffer_.empty()) return Status();
  const uint64_t bb = cfg_.block_bytes;
  const uint64_t first_block = tail_ / bb;

  // The new tail-block image repeats the already-durable partial bytes
  // verbatim, then the buffered records, then zero padding. A zeroed fence
  // block follows whenever fewer than a record header's worth of padding
  // would separate the content from whatever stale bytes come next.
  std::vector<uint8_t> content = tail_partial_;
  content.insert(content.end(), buffer_.begin(), buffer_.end());
  const uint64_t content_bytes = content.size();
  uint64_t padded = align_up(content_bytes, bb);
  if (padded - content_bytes < kHeaderBytes) padded += bb;
  if (first_block * bb + padded > cfg_.region_bytes) {
    return Status::resource_exhausted(
        "WAL region full: " + std::to_string(tail_ + buffer_.size()) +
        " content bytes of " + std::to_string(cfg_.region_bytes) +
        "; checkpoint to truncate");
  }
  // The new partial-tail cache is the last (new_tail % block) bytes of the
  // content — capture it before the content is padded and moved.
  const uint64_t new_tail = tail_ + buffer_.size();
  const uint64_t rem = new_tail % bb;
  std::vector<uint8_t> partial(content.begin() + (content_bytes - rem),
                               content.begin() + content_bytes);
  content.resize(padded, 0);
  DAMKIT_RETURN_IF_ERROR(write_blocks(first_block, std::move(content)));

  ++commits_;
  committed_bytes_ += buffer_.size();
  tail_ = new_tail;
  tail_partial_ = std::move(partial);
  buffer_.clear();
  buffer_records_ = 0;
  return Status();
}

Status WriteAheadLog::write_blocks(uint64_t first_block,
                                   std::vector<uint8_t>&& content) {
  const uint64_t bb = cfg_.block_bytes;
  DAMKIT_CHECK(content.size() % bb == 0 && !content.empty());
  const uint64_t blocks = content.size() / bb;
  std::vector<sim::IoRequest> reqs;
  reqs.reserve(blocks);
  for (uint64_t b = 0; b < blocks; ++b) {
    reqs.push_back(
        {sim::IoKind::kWrite, cfg_.base_offset + (first_block + b) * bb, bb});
  }
  const std::span<const uint8_t> all(content);
  // One SQ/CQ batch per attempt; a retry rewrites every block in full,
  // which is also the torn-write repair (hence retry_corruption).
  const Status s = blockdev::with_retries(
      *io_, retry_, &counters_, /*retry_corruption=*/true, [&]() -> Status {
        std::vector<sim::IoCompletion> cs;
        std::vector<Status> per_io;
        DAMKIT_RETURN_IF_ERROR(io_->submit_batch_checked(reqs, &cs, &per_io));
        Status first;
        for (uint64_t b = 0; b < blocks; ++b) {
          const auto img = all.subspan(b * bb, bb);
          if (per_io[b].ok()) {
            dev_->write_bytes(reqs[b].offset, img);
          } else {
            dev_->note_failed_write(reqs[b].offset, img);
            if (first.ok()) first = per_io[b];
          }
        }
        return first;
      });
  if (s.ok()) commit_blocks_ += blocks;
  return s;
}

Status WriteAheadLog::seal() {
  const uint64_t bb = cfg_.block_bytes;
  std::vector<uint8_t> content = tail_partial_;
  uint64_t padded = align_up(std::max<uint64_t>(content.size(), 1), bb);
  if (padded - content.size() < kHeaderBytes) padded += bb;
  padded = std::min(padded, cfg_.region_bytes - (tail_ / bb) * bb);
  content.resize(padded, 0);
  return write_blocks(tail_ / bb, std::move(content));
}

StatusOr<WriteAheadLog::ReplayResult> WriteAheadLog::recover_scan(
    uint64_t start_lsn) {
  ReplayResult result;
  std::vector<uint8_t> data;
  uint64_t fetched = 0;
  // Fetch-on-demand: replay cost tracks the live prefix, not the region.
  const auto ensure = [&](uint64_t upto) -> Status {
    upto = std::min(upto, cfg_.region_bytes);
    while (fetched < upto) {
      const uint64_t len = std::min(kReplayChunk, cfg_.region_bytes - fetched);
      data.resize(fetched + len);
      DAMKIT_RETURN_IF_ERROR(blockdev::with_retries(
          *io_, retry_, &counters_, /*retry_corruption=*/false, [&] {
            return io_->read_checked(
                cfg_.base_offset + fetched,
                std::span<uint8_t>(data.data() + fetched, len));
          }));
      fetched += len;
    }
    return Status();
  };

  uint64_t pos = 0;
  uint64_t expected = start_lsn;
  while (pos + kHeaderBytes + kCheckBytes <= cfg_.region_bytes) {
    DAMKIT_RETURN_IF_ERROR(ensure(pos + kHeaderBytes));
    const uint8_t* h = data.data() + pos;
    const uint32_t magic = load_u32(h);
    if (magic == 0) break;  // zero padding / fence: clean end
    if (magic != kRecordMagic) {
      result.torn_tail = true;
      break;
    }
    const uint64_t lsn = load_u64(h + 4);
    const uint8_t type = h[12];
    const uint64_t klen = load_u32(h + 13);
    const uint64_t vlen = load_u32(h + 17);
    const uint64_t total = kHeaderBytes + klen + vlen + kCheckBytes;
    if (type < 1 || type > 3 || pos + total > cfg_.region_bytes) {
      result.torn_tail = true;
      break;
    }
    DAMKIT_RETURN_IF_ERROR(ensure(pos + total));
    const uint8_t* rec = data.data() + pos;
    const uint64_t check = load_u64(rec + total - kCheckBytes);
    if (fnv1a({rec, static_cast<size_t>(total - kCheckBytes)}) != check) {
      result.torn_tail = true;
      break;
    }
    if (lsn != expected) {
      // A valid frame with a pre-truncation LSN is normal region reuse; a
      // *future* LSN means a hole in the sequence — that is torn state.
      if (lsn < expected) {
        ++result.stale_records;
      } else {
        result.torn_tail = true;
      }
      break;
    }
    Record r;
    r.lsn = lsn;
    r.type = static_cast<RecordType>(type);
    r.key.assign(reinterpret_cast<const char*>(rec + kHeaderBytes), klen);
    r.value.assign(reinterpret_cast<const char*>(rec + kHeaderBytes + klen),
                   vlen);
    result.records.push_back(std::move(r));
    ++expected;
    pos += total;
  }
  result.scanned_bytes = fetched;

  // Position for appends at the end of the valid prefix.
  tail_ = pos;
  const uint64_t rem = pos % cfg_.block_bytes;
  tail_partial_.assign(data.begin() + (pos - rem), data.begin() + pos);
  buffer_.clear();
  buffer_records_ = 0;
  next_lsn_ = expected;
  if (result.torn_tail) ++replay_torn_tails_;
  replay_stale_records_ += result.stale_records;
  // Bury the dead frontier so it cannot be re-read as live log by a later
  // scan — this is the only write recovery performs, and it rewrites the
  // valid prefix bytes verbatim, so recovering twice is idempotent.
  if (result.torn_tail || result.stale_records > 0) {
    DAMKIT_RETURN_IF_ERROR(seal());
  }
  return result;
}

void WriteAheadLog::export_metrics(stats::MetricsRegistry& reg,
                                   std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "wal.records_appended", records_appended_);
  reg.add(p + "wal.commits", commits_);
  reg.add(p + "wal.committed_bytes", committed_bytes_);
  reg.add(p + "wal.commit_blocks", commit_blocks_);
  reg.add(p + "wal.truncations", truncations_);
  reg.add(p + "wal.torn_tail", replay_torn_tails_);
  reg.add(p + "wal.stale_records", replay_stale_records_);
  reg.add(p + "wal.io_retries", counters_.retries);
  reg.add(p + "wal.io_give_ups", counters_.give_ups);
  reg.set(p + "wal.durable_bytes", static_cast<double>(tail_));
  reg.set(p + "wal.buffered_bytes", static_cast<double>(buffer_.size()));
}

}  // namespace damkit::wal
