// DurableEngine: crash-consistent durability for ANY kv::Dictionary —
// the five trees and the ShardedEngine router alike — as a transparent
// wrapper.
//
// Write path: every mutation (put/erase/upsert) appends one WAL record
// (LSN = its 1-based mutation index since birth) before touching the
// inner engine; group commit batches the log writes through the SQ/CQ
// submit_batch path. Reads forward untouched. checkpoint() makes the
// inner engine durable, serializes its full sorted contents into the
// double-slot SnapshotStore, and truncates the WAL at the checkpoint LSN.
//
// Recovery (static recover()) needs only the device bytes: load the
// newest verifiable snapshot, bulk_load a fresh inner engine from it,
// replay the WAL's valid prefix on top, and fence the log. It writes
// nothing else, so recovering twice yields bit-identical state. The
// durability contract: after a crash, exactly the mutations whose WAL
// records committed (a prefix, by LSN) survive.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "kv/dictionary.h"
#include "wal/snapshot.h"
#include "wal/wal.h"

namespace damkit::wal {

struct DurabilityConfig {
  WalConfig wal;
  SnapshotConfig snapshot;
  /// Auto-checkpoint once durable + buffered WAL bytes exceed this
  /// (0 = only explicit checkpoint()/flush() calls). Keep it well under
  /// wal.region_bytes or appends hit kResourceExhausted first.
  uint64_t checkpoint_wal_bytes = 16ULL << 20;
  /// Entries per try_range_scan chunk while serializing a snapshot.
  uint64_t snapshot_scan_chunk = 512;
};

/// Places the WAL region and both snapshot slots at the top of a device,
/// away from engine extent space (engines grow from low offsets).
DurabilityConfig default_durability_config(uint64_t device_capacity_bytes);

struct RecoveryReport {
  uint64_t snapshot_entries = 0;
  uint64_t snapshot_lsn = 0;       // last LSN the snapshot covers
  uint64_t replayed_records = 0;   // WAL records applied on top
  uint64_t durable_lsn = 0;        // mutations that survived the crash
  bool torn_tail = false;          // log ended in a torn record
  uint64_t stale_records = 0;      // pre-truncation frames at the frontier
};

class DurableEngine final : public kv::Dictionary {
 public:
  /// Fresh engine over an empty region: resets the WAL (fence at base).
  /// `inner` must be empty.
  DurableEngine(std::unique_ptr<kv::Dictionary> inner, sim::Device& dev,
                sim::IoContext& io, const DurabilityConfig& cfg);
  ~DurableEngine() override;

  /// Rebuild from device bytes after a crash: newest valid snapshot +
  /// WAL replay to the consistent prefix. `make_inner` must build a fresh
  /// EMPTY engine of the same kind/config as the crashed one.
  static StatusOr<std::unique_ptr<DurableEngine>> recover(
      const std::function<std::unique_ptr<kv::Dictionary>()>& make_inner,
      sim::Device& dev, sim::IoContext& io, const DurabilityConfig& cfg,
      RecoveryReport* report);

  std::string_view name() const override { return name_; }
  const kv::Capabilities& capabilities() const override {
    return inner_->capabilities();
  }

  void put(std::string_view key, std::string_view value) override;
  Status try_put(std::string_view key, std::string_view value) override;
  std::optional<std::string> get(std::string_view key) override {
    return inner_->get(key);
  }
  StatusOr<std::optional<std::string>> try_get(std::string_view key) override {
    return inner_->try_get(key);
  }
  void erase(std::string_view key) override;
  Status try_erase(std::string_view key) override;
  void upsert(std::string_view key, int64_t delta) override;
  Status try_upsert(std::string_view key, int64_t delta) override;
  std::vector<std::pair<std::string, std::string>> range_scan(
      std::string_view lo, size_t limit) override {
    return inner_->range_scan(lo, limit);
  }
  StatusOr<std::vector<std::pair<std::string, std::string>>> try_range_scan(
      std::string_view lo, size_t limit) override {
    return inner_->try_range_scan(lo, limit);
  }
  /// Forwards to the inner engine while serializing the same ascending
  /// stream into an initial snapshot — one pass, no extra scan — then
  /// resets the WAL: a freshly loaded engine is immediately recoverable.
  void bulk_load(
      uint64_t count,
      const std::function<std::pair<std::string, std::string>(uint64_t)>& item)
      override;

  void flush() override;
  /// Commit the WAL, checkpoint the inner engine, write a snapshot to the
  /// alternate slot, truncate the WAL. Any failure leaves every layer
  /// retryable (the old snapshot slot stays authoritative until the new
  /// one's header lands).
  Status checkpoint() override;
  void abandon() override;

  void set_retry_policy(const blockdev::RetryPolicy& policy) override;
  blockdev::RetryCounters retry_counters() const override;
  size_t height() const override { return inner_->height(); }
  double cache_hit_rate() const override { return inner_->cache_hit_rate(); }
  void check_invariants() override { inner_->check_invariants(); }
  void set_event_trace(stats::TraceBuffer* events) override {
    inner_->set_event_trace(events);
  }
  /// Inner metrics under `prefix` untouched, plus wal.* / snapshot.* /
  /// recovery.* under the same prefix.
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const override;

  /// Mutations durably logged so far (the LSN high-water mark). After
  /// recover() this is exactly the prefix of mutations that survived.
  uint64_t durable_mutations() const { return log_.next_lsn() - 1; }
  const RecoveryReport& recovery_report() const { return recovery_; }
  uint64_t checkpoints() const { return checkpoints_; }
  WriteAheadLog& log() { return log_; }
  kv::Dictionary& inner() { return *inner_; }

 private:
  struct RecoverTag {};
  DurableEngine(RecoverTag, std::unique_ptr<kv::Dictionary> inner,
                sim::Device& dev, sim::IoContext& io,
                const DurabilityConfig& cfg);

  Status append_mutation(WriteAheadLog::RecordType type, std::string_view key,
                         std::string_view value);
  Status maybe_auto_checkpoint();
  /// Serialize the inner engine's full contents ([u32 klen][u32 vlen]
  /// [key][value]...) via chunked try_range_scan.
  Status serialize_state(std::vector<uint8_t>* payload, uint64_t* entries);

  std::unique_ptr<kv::Dictionary> inner_;
  DurabilityConfig cfg_;
  WriteAheadLog log_;
  SnapshotStore snapshot_;
  std::string name_;
  uint64_t snapshot_seq_ = 0;  // last snapshot sequence written
  uint64_t checkpoints_ = 0;
  uint64_t auto_checkpoints_ = 0;
  bool in_checkpoint_ = false;
  RecoveryReport recovery_;  // zero for a fresh engine
  bool recovered_ = false;
};

/// Convenience: wrap `inner` fresh (the --wal switch).
std::unique_ptr<kv::Dictionary> make_durable(
    std::unique_ptr<kv::Dictionary> inner, sim::Device& dev,
    sim::IoContext& io, const DurabilityConfig& cfg);

}  // namespace damkit::wal
