#include "wal/snapshot.h"

#include <algorithm>

#include "util/bytes.h"

namespace damkit::wal {

namespace {

constexpr uint32_t kHeaderMagic = 0x504E534Bu;  // "KSNP"
// magic + seq + last_lsn + entries + payload_bytes + payload_check.
constexpr uint64_t kHeaderPayload = 4 + 5 * 8;
constexpr uint64_t kHeaderBytes = kHeaderPayload + 8;  // + header_check
// Device-request granularity for payload transfer.
constexpr uint64_t kIoChunk = 256ULL << 10;

}  // namespace

SnapshotStore::SnapshotStore(sim::Device& dev, sim::IoContext& io,
                             const SnapshotConfig& cfg)
    : dev_(&dev), io_(&io), cfg_(cfg) {
  DAMKIT_CHECK_MSG(cfg_.block_bytes >= kHeaderBytes,
                   "snapshot block_bytes too small");
  DAMKIT_CHECK_MSG(cfg_.slot_bytes >= 2 * cfg_.block_bytes &&
                       cfg_.slot_bytes % cfg_.block_bytes == 0,
                   "snapshot slot must be >= 2 blocks and block-aligned");
  DAMKIT_CHECK_MSG(
      cfg_.base_offset + 2 * cfg_.slot_bytes <= dev_->capacity_bytes(),
      "snapshot slots past device end");
}

Status SnapshotStore::write(const SnapshotMeta& meta,
                            std::span<const uint8_t> payload) {
  DAMKIT_CHECK_MSG(meta.payload_bytes == payload.size(),
                   "snapshot meta/payload size mismatch");
  const uint64_t bb = cfg_.block_bytes;
  const uint64_t slot = slot_offset(meta.seq);
  const uint64_t padded = align_up(std::max<uint64_t>(payload.size(), 1), bb);
  if (bb + padded > cfg_.slot_bytes) {
    return Status::resource_exhausted(
        "snapshot payload of " + std::to_string(payload.size()) +
        " bytes does not fit a " + std::to_string(cfg_.slot_bytes) +
        "-byte slot");
  }

  // Phase 1: payload blocks, one batch per attempt. A torn or failed
  // chunk is repaired by rewriting; nothing is loadable until the header
  // lands, so partial payload states are harmless.
  std::vector<uint8_t> image(payload.begin(), payload.end());
  image.resize(padded, 0);
  std::vector<sim::IoRequest> reqs;
  for (uint64_t off = 0; off < padded; off += kIoChunk) {
    reqs.push_back({sim::IoKind::kWrite, slot + bb + off,
                    std::min(kIoChunk, padded - off)});
  }
  DAMKIT_RETURN_IF_ERROR(blockdev::with_retries(
      *io_, retry_, &counters_, /*retry_corruption=*/true, [&]() -> Status {
        std::vector<sim::IoCompletion> cs;
        std::vector<Status> per_io;
        DAMKIT_RETURN_IF_ERROR(io_->submit_batch_checked(reqs, &cs, &per_io));
        Status first;
        for (size_t i = 0; i < reqs.size(); ++i) {
          const auto chunk = std::span<const uint8_t>(image).subspan(
              reqs[i].offset - (slot + bb), reqs[i].length);
          if (per_io[i].ok()) {
            dev_->write_bytes(reqs[i].offset, chunk);
          } else {
            dev_->note_failed_write(reqs[i].offset, chunk);
            if (first.ok()) first = per_io[i];
          }
        }
        return first;
      }));

  // Phase 2: the header block, strictly after the payload is durable —
  // this single block write is the snapshot's commit point.
  std::vector<uint8_t> header(bb, 0);
  store_u32(header.data(), kHeaderMagic);
  store_u64(header.data() + 4, meta.seq);
  store_u64(header.data() + 12, meta.last_lsn);
  store_u64(header.data() + 20, meta.entries);
  store_u64(header.data() + 28, meta.payload_bytes);
  store_u64(header.data() + 36, fnv1a(payload));
  store_u64(header.data() + kHeaderPayload,
            fnv1a({header.data(), kHeaderPayload}));
  DAMKIT_RETURN_IF_ERROR(blockdev::with_retries(
      *io_, retry_, &counters_, /*retry_corruption=*/true,
      [&] { return io_->write_checked(slot, header); }));

  ++writes_;
  written_bytes_ += payload.size();
  return Status();
}

StatusOr<bool> SnapshotStore::load_slot(int slot, SnapshotMeta* meta,
                                        std::vector<uint8_t>* payload) {
  const uint64_t bb = cfg_.block_bytes;
  const uint64_t at =
      cfg_.base_offset + static_cast<uint64_t>(slot) * cfg_.slot_bytes;
  std::vector<uint8_t> header(bb);
  DAMKIT_RETURN_IF_ERROR(blockdev::with_retries(
      *io_, retry_, &counters_, /*retry_corruption=*/false,
      [&] { return io_->read_checked(at, header); }));
  const uint32_t magic = load_u32(header.data());
  if (magic != kHeaderMagic) {
    if (magic != 0) ++invalid_slots_;
    return false;
  }
  if (fnv1a({header.data(), kHeaderPayload}) !=
      load_u64(header.data() + kHeaderPayload)) {
    ++invalid_slots_;
    return false;
  }
  SnapshotMeta m;
  m.seq = load_u64(header.data() + 4);
  m.last_lsn = load_u64(header.data() + 12);
  m.entries = load_u64(header.data() + 20);
  m.payload_bytes = load_u64(header.data() + 28);
  const uint64_t payload_check = load_u64(header.data() + 36);
  if (m.payload_bytes > cfg_.slot_bytes - bb ||
      static_cast<int>(m.seq % 2) != slot) {
    ++invalid_slots_;
    return false;
  }
  std::vector<uint8_t> body(m.payload_bytes);
  for (uint64_t off = 0; off < m.payload_bytes; off += kIoChunk) {
    const uint64_t len = std::min(kIoChunk, m.payload_bytes - off);
    DAMKIT_RETURN_IF_ERROR(blockdev::with_retries(
        *io_, retry_, &counters_, /*retry_corruption=*/false, [&] {
          return io_->read_checked(at + bb + off,
                                   std::span<uint8_t>(body.data() + off, len));
        }));
  }
  if (fnv1a(body) != payload_check) {
    // The interrupted-checkpoint signature: a stale header over a payload
    // that was being overwritten when the crash hit.
    ++invalid_slots_;
    return false;
  }
  *meta = m;
  *payload = std::move(body);
  return true;
}

StatusOr<bool> SnapshotStore::load(SnapshotMeta* meta,
                                   std::vector<uint8_t>* payload) {
  ++loads_;
  SnapshotMeta best;
  std::vector<uint8_t> best_payload;
  bool found = false;
  for (int slot = 0; slot < 2; ++slot) {
    SnapshotMeta m;
    std::vector<uint8_t> body;
    StatusOr<bool> ok = load_slot(slot, &m, &body);
    DAMKIT_RETURN_IF_ERROR(ok.status());
    if (*ok && (!found || m.seq > best.seq)) {
      best = m;
      best_payload = std::move(body);
      found = true;
    }
  }
  if (!found) {
    *meta = SnapshotMeta{};
    payload->clear();
    return false;
  }
  *meta = best;
  *payload = std::move(best_payload);
  return true;
}

void SnapshotStore::export_metrics(stats::MetricsRegistry& reg,
                                   std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "snapshot.writes", writes_);
  reg.add(p + "snapshot.written_bytes", written_bytes_);
  reg.add(p + "snapshot.loads", loads_);
  reg.add(p + "snapshot.invalid_slots", invalid_slots_);
  reg.add(p + "snapshot.io_retries", counters_.retries);
  reg.add(p + "snapshot.io_give_ups", counters_.give_ups);
}

}  // namespace damkit::wal
