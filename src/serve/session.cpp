#include "serve/session.h"

#include "util/status.h"

namespace damkit::serve {

namespace {

uint64_t ops_in_class(uint64_t total_ops, uint64_t clients,
                      uint64_t client_id) {
  // Indices client_id, client_id + clients, ... below total_ops.
  if (client_id >= total_ops) return 0;
  return (total_ops - client_id - 1) / clients + 1;
}

}  // namespace

ClientSession::ClientSession(const kv::WorkloadSpec& spec, uint64_t client_id,
                             uint64_t clients, uint64_t total_ops,
                             size_t queue_capacity)
    : client_id_(client_id),
      op_count_(ops_in_class(total_ops, clients, client_id)),
      queue_(queue_capacity) {
  DAMKIT_CHECK_MSG(clients > 0 && client_id < clients,
                   "client " << client_id << " of " << clients);
  producer_ = std::thread([this, spec, clients, total_ops] {
    kv::OpGenerator gen(spec);
    for (uint64_t i = 0; i < total_ops; ++i) {
      const kv::Op op = gen.next();
      if (i % clients != client_id_) continue;
      queue_.push({op, i});
    }
  });
}

ClientSession::~ClientSession() {
  queue_.close();
  if (producer_.joinable()) producer_.join();
}

}  // namespace damkit::serve
