#include "serve/scheduler.h"

#include <algorithm>
#include <string>
#include <unordered_map>
#include <utility>

#include "serve/session.h"
#include "sim/trace.h"
#include "util/table.h"

namespace damkit::serve {

namespace {

/// One served op, ready for replay: which client carried it and the IO
/// chain it produced on the serving device.
struct OpRecord {
  OpIoChain chain;
};

/// Replay-time state of one admitted op.
struct OpState {
  size_t next_stage = 0;
  sim::SimTime ready = 0;  // when the next stage may issue
  sim::SimTime issue = 0;  // admission instant
  bool done = false;
};

}  // namespace

double ServeResult::speedup() const {
  if (concurrent_elapsed == 0) return 1.0;
  return static_cast<double>(serial_elapsed) /
         static_cast<double>(concurrent_elapsed);
}

double ServeResult::throughput_ops_per_sec() const {
  const double secs = sim::to_seconds(concurrent_elapsed);
  if (secs <= 0.0) return 0.0;
  return static_cast<double>(ops) / secs;
}

void ServeResult::export_metrics(stats::MetricsRegistry& reg,
                                 std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "ops", ops);
  reg.add(p + "failed_ops", counters.failed_ops);
  reg.add(p + "batches", batches);
  reg.add(p + "batch_ios", batch_ios);
  reg.set(p + "serial_seconds", sim::to_seconds(serial_elapsed));
  reg.set(p + "concurrent_seconds", sim::to_seconds(concurrent_elapsed));
  reg.set(p + "speedup", speedup());
  reg.set(p + "throughput_ops_per_sec", throughput_ops_per_sec());
  reg.set(p + "max_lane_depth", static_cast<double>(max_lane_depth));
  for (size_t i = 0; i < lane_ios.size(); ++i) {
    reg.add(p + strfmt("lane.%zu.ios", i), lane_ios[i]);
  }
  stats::export_histogram_summary(reg, p + "latency_ns", latency);
}

Scheduler::Scheduler(kv::Dictionary& dict, sim::IoContext& io,
                     ServeConfig config)
    : dict_(&dict), io_(&io), config_(std::move(config)) {
  DAMKIT_CHECK_MSG(config_.clients >= 1, "need at least one client");
  DAMKIT_CHECK_MSG(config_.inflight >= 1, "need inflight depth >= 1");
  DAMKIT_CHECK_MSG(config_.lanes >= 1, "need at least one dispatch lane");
}

namespace {

/// The discrete-event replay loop (see the file comment in scheduler.h).
void replay(const std::vector<OpRecord>& records, const ServeConfig& config,
            ServeResult* result) {
  result->lane_ios.assign(config.lanes, 0);
  if (!config.replay_device_factory || records.empty()) {
    // No replay device: the concurrent timeline degenerates to the
    // serial one (still correct for k = 1).
    result->concurrent_elapsed = result->serial_elapsed;
    return;
  }
  const std::unique_ptr<sim::Device> dev = config.replay_device_factory();
  const uint64_t k = config.clients;
  const size_t n = records.size();

  std::vector<OpState> state(n);
  // Per client: next op to admit (ops of client c are c, c+k, c+2k, ...)
  // and how many are currently open.
  std::vector<size_t> next_op(k);
  std::vector<uint64_t> open_count(k, 0);
  for (uint64_t c = 0; c < k; ++c) next_op[c] = c;

  std::vector<size_t> active;  // admitted, not yet done; sorted per round
  size_t completed = 0;
  sim::SimTime makespan = 0;

  const auto admit = [&](uint64_t c, sim::SimTime t) {
    while (next_op[c] < n && open_count[c] < config.inflight) {
      const size_t id = next_op[c];
      state[id] = OpState{0, t, t, false};
      active.push_back(id);
      ++open_count[c];
      next_op[c] += k;
    }
  };
  const auto complete = [&](size_t id, sim::SimTime t) {
    state[id].done = true;
    result->latency.record(t - state[id].issue);
    makespan = std::max(makespan, t);
    const uint64_t c = id % k;
    --open_count[c];
    ++completed;
    admit(c, t);
  };

  for (uint64_t c = 0; c < k; ++c) admit(c, /*t=*/0);

  std::vector<std::vector<std::pair<sim::IoRequest, size_t>>> lane_queues(
      config.lanes);
  while (completed < n) {
    active.erase(std::remove_if(active.begin(), active.end(),
                                [&](size_t id) { return state[id].done; }),
                 active.end());
    std::sort(active.begin(), active.end());
    DAMKIT_CHECK_MSG(!active.empty(), "replay stalled with ops pending");

    sim::SimTime t = ~sim::SimTime{0};
    for (const size_t id : active) t = std::min(t, state[id].ready);

    // Chains exhausted at t complete without device work; their clients
    // may admit successors at the same instant, picked up next round.
    // complete() admits into `active`, so walk by index over the snapshot
    // length — newly admitted ops wait for the next round anyway.
    bool completed_any = false;
    const size_t active_count = active.size();
    for (size_t idx = 0; idx < active_count; ++idx) {
      const size_t id = active[idx];
      if (state[id].ready == t &&
          state[id].next_stage == records[id].chain.stages.size()) {
        complete(id, t);
        completed_any = true;
      }
    }
    if (completed_any) continue;

    // Cross-client batch formation through the per-lane dispatch queues:
    // every runnable stage's IOs are bucketed by lane, then the lanes are
    // drained round-robin into one submission-queue batch.
    std::vector<size_t> runnable;
    for (const size_t id : active) {
      if (state[id].ready == t) runnable.push_back(id);
    }
    for (auto& q : lane_queues) q.clear();
    for (const size_t id : runnable) {
      const IoStage& stage = records[id].chain.stages[state[id].next_stage];
      for (sim::IoRequest req : stage.ios) {
        // Per-client session → device queue pair: the owning client's id
        // rides on the request, so a multi-queue device lands each
        // session on its own SQ/CQ pair instead of one shared SQ.
        req.queue = static_cast<uint32_t>(id % k);
        const size_t lane =
            config.lane_of ? config.lane_of(req.offset) % config.lanes : 0;
        lane_queues[lane].emplace_back(req, id);
        ++result->lane_ios[lane];
      }
    }
    std::vector<sim::IoRequest> reqs;
    std::vector<size_t> owner;
    for (const auto& q : lane_queues) {
      result->max_lane_depth =
          std::max<uint64_t>(result->max_lane_depth, q.size());
    }
    for (size_t depth = 0;; ++depth) {
      bool any = false;
      for (const auto& q : lane_queues) {
        if (depth < q.size()) {
          reqs.push_back(q[depth].first);
          owner.push_back(q[depth].second);
          any = true;
        }
      }
      if (!any) break;
    }

    const std::vector<sim::IoCompletion> cs = dev->submit_batch(reqs, t);
    ++result->batches;
    result->batch_ios += reqs.size();

    std::unordered_map<size_t, sim::SimTime> stage_finish;
    for (size_t i = 0; i < cs.size(); ++i) {
      sim::SimTime& f = stage_finish[owner[i]];
      f = std::max(f, cs[i].finish);
    }
    for (const size_t id : runnable) {
      const sim::SimTime f = stage_finish[id];
      ++state[id].next_stage;
      if (state[id].next_stage == records[id].chain.stages.size()) {
        complete(id, f);
      } else {
        state[id].ready = f;
      }
    }
  }
  result->concurrent_elapsed = makespan;
}

}  // namespace

ServeResult Scheduler::serve(const kv::WorkloadSpec& spec, uint64_t ops) {
  ServeResult result;
  result.ops = ops;

  // --- Data phase: commit ops in generator order, record IO chains. ---
  sim::Device& dev = io_->device();
  sim::IoTrace trace;
  dev.set_trace(&trace);

  std::vector<std::unique_ptr<ClientSession>> sessions;
  sessions.reserve(config_.clients);
  for (uint64_t c = 0; c < config_.clients; ++c) {
    sessions.push_back(std::make_unique<ClientSession>(
        spec, c, config_.clients, ops, config_.queue_capacity));
  }

  std::vector<OpRecord> records;
  records.reserve(ops);
  const sim::SimTime before = io_->now();
  const kv::ApplyOptions apply_options{config_.fallible};
  kv::ApplyScratch scratch;  // all sessions apply on this thread
  for (uint64_t i = 0; i < ops; ++i) {
    ClientOp client_op;
    const bool got = sessions[i % config_.clients]->next(&client_op);
    DAMKIT_CHECK_MSG(got, "session " << i % config_.clients
                                     << " ended before op " << i);
    DAMKIT_CHECK_MSG(client_op.global_index == i,
                     "session " << i % config_.clients << " delivered op "
                                << client_op.global_index << " at slot "
                                << i);
    const size_t trace_begin = trace.size();
    kv::apply_op(*dict_, client_op.op, i, spec, apply_options,
                 &result.digest, &result.counters, &scratch);
    records.push_back(
        {build_io_chain(trace.records(), trace_begin, trace.size())});
  }
  dev.set_trace(nullptr);
  sessions.clear();  // joins the producers
  result.serial_elapsed = io_->now() - before;

  // --- Replay phase: re-time the chains under k-client concurrency. ---
  replay(records, config_, &result);
  return result;
}

}  // namespace damkit::serve
