// Concurrent request scheduler: k client sessions against one Dictionary.
//
// The simulator separates timing from data (see sim/device.h), and every
// engine's data path is time-independent — what an op reads and writes
// never depends on the simulated clock. The scheduler exploits that with a
// two-phase design:
//
//   Data phase. The controller pops the k session queues round-robin —
//   op with global index i from session i mod k — and applies each op to
//   the real engine through kv::apply_op, exactly as a single-client run
//   would. This produces the digest, the counters, the serial makespan,
//   and (via an IoTrace on the serving device) each op's IO chain:
//   which blocks it touched, batched how, in what dependency order.
//   Producer threads race; the commit order does not. A k-client run is
//   therefore bit-identical to the single-client reference by
//   construction, and fault injection/retry accounting is untouched.
//
//   Replay phase. A discrete-event loop re-times the recorded chains on a
//   fresh device with the same timing model: each client keeps up to
//   `inflight` of its ops open (admission control), every runnable stage
//   across all clients at the current virtual instant is routed through
//   per-lane dispatch queues (lane = die or shard) and issued as one
//   cross-client Device::submit_batch, and op completions admit their
//   client's next op. The result is the concurrent makespan and the
//   per-op latency distribution — the quantities the PDAM predicts scale
//   as Ω(k / log_{PB/k} N) until k reaches the device parallelism P.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "kv/dictionary.h"
#include "kv/op_apply.h"
#include "kv/workload.h"
#include "serve/io_chain.h"
#include "sim/device.h"
#include "stats/metrics.h"
#include "util/histogram.h"

namespace damkit::serve {

struct ServeConfig {
  /// Concurrent client sessions (k). 1 reproduces the sequential runner.
  uint64_t clients = 1;
  /// Admission control: ops a client may have open at once (d >= 1).
  uint64_t inflight = 4;
  /// Per-client submission queue bound (producer backpressure).
  size_t queue_capacity = 64;
  /// Apply ops through the try_* twins (fault-injection runs).
  bool fallible = false;

  /// Builds the replay device: same timing model as the serving device,
  /// fresh queue/mechanical state, no fault hook (faults already shaped
  /// the recorded chains — retries appear as extra IOs). When absent the
  /// replay is skipped and the concurrent timeline equals the serial one.
  std::function<std::unique_ptr<sim::Device>()> replay_device_factory;

  /// Dispatch-lane map for replay: byte offset -> lane in [0, lanes).
  /// Lane = SSD die (SsdConfig::die_of) or shard (offset / stride).
  /// Default: a single lane.
  std::function<size_t(uint64_t)> lane_of;
  size_t lanes = 1;
};

struct ServeResult {
  kv::ApplyCounters counters;
  uint64_t digest = kv::kFnvOffsetBasis;
  uint64_t ops = 0;

  /// Data-phase makespan: the ops applied back to back on the serving
  /// device (identical to a single-client WorkloadRunner::run).
  sim::SimTime serial_elapsed = 0;
  /// Replayed k-client makespan on the fresh device.
  sim::SimTime concurrent_elapsed = 0;
  /// serial / concurrent (>= 1 when concurrency helps).
  double speedup() const;
  /// Ops per simulated second under concurrency.
  double throughput_ops_per_sec() const;

  /// Per-op latency (ns, admission to completion) under concurrency.
  Histogram latency;

  /// Cross-client batches formed during replay.
  uint64_t batches = 0;
  uint64_t batch_ios = 0;
  /// IOs dispatched per lane (length = config lanes).
  std::vector<uint64_t> lane_ios;
  /// High-water mark of any single lane's queue depth within a batch.
  uint64_t max_lane_depth = 0;

  /// Export "<prefix>ops", "<prefix>latency_ns" (+ .p50/.p99/.p999 via
  /// stats::export_histogram_summary), elapsed/speedup gauges, batch
  /// counters, and per-lane IO counts.
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const;
};

class Scheduler {
 public:
  /// Serves ops against `dict`, charging data-phase time to `io` (the
  /// context the dictionary performs IO through).
  Scheduler(kv::Dictionary& dict, sim::IoContext& io, ServeConfig config);

  /// Drive the first `ops` ops of `spec`'s stream through k sessions.
  /// Deterministic for a given (spec, ops, config).
  ServeResult serve(const kv::WorkloadSpec& spec, uint64_t ops);

 private:
  kv::Dictionary* dict_;
  sim::IoContext* io_;
  ServeConfig config_;
};

}  // namespace damkit::serve
