// Bounded blocking submission queue: one per client session.
//
// A session's producer thread pushes generated ops; the scheduler's
// controller thread pops them in round-robin order across sessions. The
// bound is the backpressure mechanism: a producer that runs ahead of the
// controller blocks instead of buffering the whole op stream. One producer
// and one consumer per queue (SPSC), guarded by a mutex + two condvars —
// contention is cross-thread handoff only, never producer-vs-producer.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "kv/workload.h"
#include "util/status.h"

namespace damkit::serve {

/// One generated op plus its position in the overall op stream. The global
/// index rides along because put values depend on it (see kv::apply_op) and
/// because the controller uses it to re-establish the canonical order.
struct ClientOp {
  kv::Op op;
  uint64_t global_index = 0;
};

class OpQueue {
 public:
  explicit OpQueue(size_t capacity) : capacity_(capacity) {
    DAMKIT_CHECK_MSG(capacity > 0, "OpQueue capacity must be positive");
  }

  OpQueue(const OpQueue&) = delete;
  OpQueue& operator=(const OpQueue&) = delete;

  /// Block until there is room, then enqueue. No-op if closed.
  void push(const ClientOp& op) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return queue_.size() < capacity_ || closed_; });
    if (closed_) return;
    queue_.push_back(op);
    not_empty_.notify_one();
  }

  /// Block until an op is available (returns true) or the queue is closed
  /// and drained (returns false).
  bool pop(ClientOp* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return false;
    *out = queue_.front();
    queue_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// Wake all waiters; subsequent pushes are dropped, pops drain then
  /// return false. Used for shutdown (normal end-of-stream needs no close:
  /// the controller pops exactly the ops each producer pushes).
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<ClientOp> queue_;
  bool closed_ = false;
};

}  // namespace damkit::serve
