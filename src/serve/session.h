// A client session: one logical client of the serving layer.
//
// Each session owns a full copy of the workload's OpGenerator and a
// producer thread that generates the entire op stream, keeps only the ops
// in its residue class (global index i belongs to client i mod k), and
// pushes them into its bounded submission queue. The controller pops
// sessions round-robin in global-index order, so the committed op order is
// the generator order no matter how the producer threads race — that is
// what makes a k-client run's digest equal the single-client reference.
//
// (Each producer regenerating the full stream costs k× generation CPU but
// zero coordination; generation is pure RNG arithmetic, far cheaper than
// the engine work the controller does per op.)
#pragma once

#include <cstdint>
#include <thread>

#include "kv/workload.h"
#include "serve/op_queue.h"

namespace damkit::serve {

class ClientSession {
 public:
  /// Session `client_id` of `clients` total, covering the ops of its
  /// residue class among the first `total_ops` ops of `spec`'s stream.
  /// The producer thread starts immediately.
  ClientSession(const kv::WorkloadSpec& spec, uint64_t client_id,
                uint64_t clients, uint64_t total_ops, size_t queue_capacity);

  /// Closes the queue and joins the producer.
  ~ClientSession();

  ClientSession(const ClientSession&) = delete;
  ClientSession& operator=(const ClientSession&) = delete;

  uint64_t client_id() const { return client_id_; }
  /// Ops this session will produce in total.
  uint64_t op_count() const { return op_count_; }

  /// Pop this session's next op (blocks on the producer). False once the
  /// session's stream is exhausted.
  bool next(ClientOp* out) { return queue_.pop(out); }

 private:
  const uint64_t client_id_;
  const uint64_t op_count_;
  OpQueue queue_;
  std::thread producer_;
};

}  // namespace damkit::serve
