// Per-op IO chains recovered from a device trace.
//
// The serving layer separates *what* an op does (its engine data path,
// executed once, sequentially) from *when* its IOs land on the device under
// k concurrent clients (computed by replaying recovered chains through a
// discrete-event loop — see scheduler.h). This file is the bridge: given
// the slice of IoTrace records an op produced, reconstruct its dependency
// structure as a chain of stages.
//
// Recovery rule: records sharing a submission time form one stage. This is
// exact under the IoContext discipline — batch members are submitted at the
// same instant, while a dependent IO is only issued after its predecessor
// completes, and every device model charges positive service time, so
// dependent submissions carry strictly later clocks.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/device.h"
#include "sim/trace.h"

namespace damkit::serve {

/// IOs that were outstanding together: issue as one batch, complete at the
/// max finish.
struct IoStage {
  std::vector<sim::IoRequest> ios;
};

/// One op's IO dependency chain: stages execute in order, IOs within a
/// stage in parallel. Empty for ops served entirely from cache.
struct OpIoChain {
  std::vector<IoStage> stages;

  size_t io_count() const {
    size_t n = 0;
    for (const IoStage& s : stages) n += s.ios.size();
    return n;
  }
};

/// Rebuild the chain for the trace slice [begin, end).
OpIoChain build_io_chain(const std::vector<sim::TraceRecord>& records,
                         size_t begin, size_t end);

}  // namespace damkit::serve
