#include "serve/io_chain.h"

#include "util/status.h"

namespace damkit::serve {

OpIoChain build_io_chain(const std::vector<sim::TraceRecord>& records,
                         size_t begin, size_t end) {
  DAMKIT_CHECK_MSG(begin <= end && end <= records.size(),
                   "bad trace slice [" << begin << ", " << end << ") of "
                                       << records.size());
  OpIoChain chain;
  for (size_t i = begin; i < end; ++i) {
    const sim::TraceRecord& r = records[i];
    if (chain.stages.empty() || records[i - 1].submit != r.submit) {
      chain.stages.emplace_back();
    }
    chain.stages.back().ios.push_back({r.kind, r.offset, r.length});
  }
  return chain;
}

}  // namespace damkit::serve
