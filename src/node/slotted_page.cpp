#include "node/slotted_page.h"

namespace damkit::node {

void SlottedPage::compact_now() {
  std::vector<uint8_t> fresh;
  fresh.reserve(live_bytes_);
  for (Slot& s : slots_) {
    const uint32_t off = static_cast<uint32_t>(fresh.size());
    fresh.insert(fresh.end(), heap_.begin() + s.off,
                 heap_.begin() + s.off + s.len);
    s.off = off;
  }
  heap_ = std::move(fresh);
  compact_ = true;
}

}  // namespace damkit::node
