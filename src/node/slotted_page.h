// SlottedPage: the shared zero-copy in-memory node container for every
// tree in the repo (ROADMAP item 5).
//
// The pre-refactor nodes held one owned std::string per key and value, so
// deserialize() paid a heap allocation per entry (2 per leaf entry) and
// serialize() re-encoded every record. A SlottedPage instead keeps the
// records *in wire format* in one contiguous heap:
//
//   heap_   packed record bytes (append-only; rewritten only on compaction)
//   slots_  {offset, length} per record, kept in logical (key) order
//
// so deserialize is one memcpy plus one header walk (build_from_image),
// serialize of an untouched page is one memcpy (write_to), and record(i)
// is a zero-copy std::string_view into the heap. The slot array is an
// in-memory sidecar only — it is never part of the wire image, so stored
// node sizes, compression ratios, and therefore every sim-time gauge and
// digest are bit-identical to the pre-refactor layout by construction.
//
// Mutations append new bytes to the heap and edit the slot array;
// overwritten/erased bytes become garbage that is reclaimed by an
// opportunistic compaction pass once it exceeds the live size (amortized
// O(1) per byte). Record views are invalidated by any mutation, and a
// record passed into a mutator must not alias this page's own heap.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

#include "kv/slice.h"
#include "util/status.h"

namespace damkit::node {

class SlottedPage {
 public:
  size_t count() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }
  /// Sum of live record lengths (== the wire-image size of this page).
  size_t live_bytes() const { return live_bytes_; }

  /// Zero-copy view of record `i`. Invalidated by any mutation.
  std::string_view record(size_t i) const {
    const Slot& s = slots_[i];
    return std::string_view(reinterpret_cast<const char*>(heap_.data()) + s.off,
                            s.len);
  }

  void clear() {
    heap_.clear();
    slots_.clear();
    live_bytes_ = 0;
    compact_ = true;
    uniform_len_ = 0;
  }

  /// Rebuild from a wire image: one bulk copy, then one walk over the
  /// record headers (`len_of(p)` returns the full record length at p).
  /// No per-entry allocations.
  template <typename LenOf>
  void build_from_image(const uint8_t* data, size_t size, size_t entries,
                        LenOf&& len_of) {
    const size_t used = build_from_prefix(data, size, entries, len_of);
    DAMKIT_CHECK_MSG(used == size, "slotted image has trailing bytes");
  }

  /// Like build_from_image, but the records occupy only a prefix of
  /// [data, data + max_size) — the node-store hands back full padded
  /// extents. Walks the headers to find the end, then copies exactly the
  /// live prefix. Returns the number of bytes consumed.
  template <typename LenOf>
  size_t build_from_prefix(const uint8_t* data, size_t max_size,
                           size_t entries, LenOf&& len_of) {
    slots_.clear();
    slots_.reserve(entries);
    uniform_len_ = 0;
    size_t off = 0;
    for (size_t i = 0; i < entries; ++i) {
      DAMKIT_CHECK_MSG(off < max_size,
                       "short read: slotted image underruns its entry count");
      const size_t len = len_of(data + off);
      DAMKIT_CHECK_MSG(off + len <= max_size,
                       "short read: slotted record overruns the image");
      slots_.push_back(
          Slot{static_cast<uint32_t>(off), static_cast<uint32_t>(len)});
      note_len(len, i == 0);
      off += len;
    }
    heap_.assign(data, data + off);
    live_bytes_ = off;
    compact_ = true;
    return off;
  }

  /// Append the wire image to `out`. One memcpy when the page is compact
  /// (fresh from build_from_image / append-only use); otherwise one
  /// record-copy pass in slot order — still no per-entry allocations.
  void write_to(std::vector<uint8_t>* out) const {
    if (compact_) {
      out->insert(out->end(), heap_.begin(), heap_.end());
      return;
    }
    const size_t at = out->size();
    out->resize(at + live_bytes_);
    uint8_t* p = out->data() + at;
    for (const Slot& s : slots_) {
      std::memcpy(p, heap_.data() + s.off, s.len);
      p += s.len;
    }
  }

  /// Append a record (becomes the last slot).
  void append(std::string_view rec) {
    std::memcpy(alloc_tail(rec.size(), slots_.size()), rec.data(), rec.size());
  }

  /// Insert a record before position `pos`.
  void insert(size_t pos, std::string_view rec) {
    std::memcpy(insert_alloc(pos, rec.size()), rec.data(), rec.size());
  }

  /// Insert an uninitialized record of `len` bytes before `pos` and return
  /// a pointer for the caller to encode into (valid until next mutation).
  uint8_t* insert_alloc(size_t pos, size_t len) {
    uint8_t* p = alloc_tail(len, pos);
    return p;
  }

  /// Replace record `pos` with a fresh `len`-byte allocation.
  uint8_t* replace_alloc(size_t pos, size_t len) {
    const Slot old = slots_[pos];
    live_bytes_ -= old.len;
    note_len(len, slots_.size() == 1);
    // In-place when the record is the heap tail (common: repeated updates
    // of the same entry) — keeps the page compact.
    const bool at_tail = old.off + old.len == heap_.size();
    if (at_tail) {
      heap_.resize(old.off + len);
      slots_[pos] = Slot{old.off, static_cast<uint32_t>(len)};
      live_bytes_ += len;
      return heap_.data() + old.off;
    }
    const size_t off = heap_.size();
    heap_.resize(off + len);
    slots_[pos] =
        Slot{static_cast<uint32_t>(off), static_cast<uint32_t>(len)};
    live_bytes_ += len;
    compact_ = false;
    maybe_compact();
    return heap_.data() + slots_[pos].off;
  }

  void replace(size_t pos, std::string_view rec) {
    std::memcpy(replace_alloc(pos, rec.size()), rec.data(), rec.size());
  }

  /// Erase record `pos`.
  void erase(size_t pos) {
    const Slot old = slots_[pos];
    live_bytes_ -= old.len;
    slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(pos));
    if (compact_ && old.off + old.len == heap_.size()) {
      heap_.resize(old.off);  // erasing the tail keeps the page compact
      return;
    }
    compact_ = false;
    maybe_compact();
  }

  /// Drop every record from `new_count` on (split "keep the left half").
  void truncate(size_t new_count) {
    if (new_count >= slots_.size()) return;
    if (compact_) {
      heap_.resize(slots_[new_count].off);
      slots_.resize(new_count);
      live_bytes_ = heap_.size();
      return;
    }
    for (size_t i = new_count; i < slots_.size(); ++i) {
      live_bytes_ -= slots_[i].len;
    }
    slots_.resize(new_count);
    maybe_compact();
  }

  /// Drop the first `n` records (split "keep the right half", borrows).
  void drop_front(size_t n) {
    if (n == 0) return;
    for (size_t i = 0; i < n; ++i) live_bytes_ -= slots_[i].len;
    slots_.erase(slots_.begin(), slots_.begin() + static_cast<ptrdiff_t>(n));
    compact_ = false;
    maybe_compact();
  }

  /// Branchless lower bound: first index whose key is >= `key`, where
  /// `key_of(record)` extracts the comparison key from a record view.
  ///
  /// The step update is a conditional move (no data-dependent branch to
  /// mispredict on random probes), and both of the *next* level's possible
  /// midpoints are prefetched before the current compare, so the serial
  /// load-compare chain runs at L1 latency instead of stalling a full
  /// cache miss per level.
  template <typename KeyOf>
  size_t lower_bound(std::string_view key, KeyOf&& key_of) const {
    if (compact_ && uniform_len_ != 0) {
      return bound_fixed<true>(key, key_of);
    }
    return bound_slots<true>(key, key_of);
  }

  /// Branchless upper bound: first index whose key is > `key`.
  template <typename KeyOf>
  size_t upper_bound(std::string_view key, KeyOf&& key_of) const {
    if (compact_ && uniform_len_ != 0) {
      return bound_fixed<false>(key, key_of);
    }
    return bound_slots<false>(key, key_of);
  }

  /// Heap bytes currently held (live + garbage) — for tests/metrics.
  size_t heap_bytes() const { return heap_.size(); }
  bool compact() const { return compact_; }

 private:
  struct Slot {
    uint32_t off;
    uint32_t len;
  };

  static void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p);
#else
    (void)p;
#endif
  }

  /// Branchless search over a compact page of same-length records: record
  /// offsets are *computed* (i * uniform_len_), so each level's probe
  /// address needs no slot load — one fewer serial memory dependency.
  /// This is the state every freshly deserialized fixed-width node is in.
  template <bool Lower, typename KeyOf>
  size_t bound_fixed(std::string_view key, KeyOf&& key_of) const {
    const char* heap = reinterpret_cast<const char*>(heap_.data());
    const size_t stride = uniform_len_;
    const auto rec = [&](size_t i) {
      return std::string_view(heap + i * stride, stride);
    };
    size_t base = 0;
    size_t len = slots_.size();
    // Upper levels only: that's where the next probe is far away (likely
    // a different cache line) and the prefetch pays; near the bottom the
    // candidates share lines with data already touched.
    while (len > 64) {
      const size_t half = len / 2;
      const size_t next_half = (len - half) / 2;
      prefetch(heap + (base + next_half - 1) * stride);
      prefetch(heap + (base + half + next_half - 1) * stride);
      const int c = kv::compare(key_of(rec(base + half - 1)), key);
      base += static_cast<size_t>(Lower ? c < 0 : c <= 0) * half;
      len -= half;
    }
    while (len > 1) {
      const size_t half = len / 2;
      const int c = kv::compare(key_of(rec(base + half - 1)), key);
      base += static_cast<size_t>(Lower ? c < 0 : c <= 0) * half;
      len -= half;
    }
    if (slots_.empty()) return 0;
    const int c = kv::compare(key_of(rec(base)), key);
    return base + static_cast<size_t>(Lower ? c < 0 : c <= 0);
  }

  /// Branchless search through the slot array (mutated pages).
  template <bool Lower, typename KeyOf>
  size_t bound_slots(std::string_view key, KeyOf&& key_of) const {
    size_t base = 0;
    size_t len = slots_.size();
    while (len > 1) {
      const size_t half = len / 2;
      const size_t next_half = (len - half) / 2;
      if (next_half > 0) {
        prefetch(heap_.data() + slots_[base + next_half - 1].off);
        prefetch(heap_.data() + slots_[base + half + next_half - 1].off);
      }
      const int c = kv::compare(key_of(record(base + half - 1)), key);
      base += static_cast<size_t>(Lower ? c < 0 : c <= 0) * half;
      len -= half;
    }
    if (slots_.empty()) return 0;
    const int c = kv::compare(key_of(record(base)), key);
    return base + static_cast<size_t>(Lower ? c < 0 : c <= 0);
  }

  /// Track whether every record shares one length (enables bound_fixed).
  /// 0 means "mixed / unknown" and is sticky until clear()/rebuild.
  void note_len(size_t len, bool first) {
    if (first) {
      uniform_len_ = static_cast<uint32_t>(len);
    } else if (uniform_len_ != len) {
      uniform_len_ = 0;
    }
  }

  uint8_t* alloc_tail(size_t len, size_t pos) {
    const bool first = slots_.empty();
    const size_t off = heap_.size();
    heap_.resize(off + len);
    slots_.insert(slots_.begin() + static_cast<ptrdiff_t>(pos),
                  Slot{static_cast<uint32_t>(off), static_cast<uint32_t>(len)});
    live_bytes_ += len;
    note_len(len, first);
    if (pos != slots_.size() - 1) compact_ = false;
    return heap_.data() + off;
  }

  void maybe_compact() {
    if (heap_.size() > 2 * live_bytes_ + 4096) compact_now();
  }

  void compact_now();

  std::vector<uint8_t> heap_;
  std::vector<Slot> slots_;
  size_t live_bytes_ = 0;
  bool compact_ = true;
  /// Common record length when all records share one, else 0 (sticky).
  uint32_t uniform_len_ = 0;
};

}  // namespace damkit::node
