// van Emde Boas layout for complete binary trees.
//
// The vEB order stores the top half-height subtree first, then each
// bottom subtree contiguously, recursively. Its defining property — any
// root-to-leaf path touches O(log_m n) contiguous runs of size m — is
// what lets the §8 PDAM B-tree adapt to any read-ahead window: a client
// granted m blocks per time step descends ~log2(m·slots_per_block) levels
// per fetch.
#pragma once

#include <cstdint>
#include <vector>

namespace damkit::pdam_tree {

/// Positions for a complete binary tree of height `height` (2^height - 1
/// nodes, 1-based BFS indices). Returns pos such that pos[bfs - 1] is the
/// storage slot (0-based) of BFS node `bfs` in vEB order.
std::vector<uint32_t> veb_positions(int height);

/// Identity (level-order / BFS) layout, the comparison baseline.
std::vector<uint32_t> bfs_positions(int height);

}  // namespace damkit::pdam_tree
