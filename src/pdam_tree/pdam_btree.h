// The §8 construction: a static B-tree with nodes of size P·B whose
// in-node pivot tree is stored in van Emde Boas block order, driven by a
// PDAM step scheduler that divides the device's P block-slots among k
// concurrent query clients.
//
// Pivots are implicit (computed from the sorted key array on demand);
// "blocks" exist purely as the unit of PDAM IO accounting, which is the
// point: the experiment measures *time steps*, the PDAM's native cost.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace damkit::pdam_tree {

enum class NodeLayout : uint8_t { kVeb, kBfs };

struct PdamTreeConfig {
  uint64_t block_bytes = 4096;  // B
  int parallelism = 8;          // P: block-slots the device serves per step
  uint64_t slot_bytes = 16;     // pivot-slot footprint (key + child metadata)
  NodeLayout layout = NodeLayout::kVeb;
};

/// Static dictionary over sorted u64 keys.
class PdamBTree {
 public:
  PdamBTree(std::vector<uint64_t> sorted_keys, PdamTreeConfig config);

  /// lower_bound rank of `key` (index of first key >= key; keys_.size() if
  /// none). Pure in-memory search used as the correctness oracle and by
  /// the step-driven clients.
  uint64_t lower_bound(uint64_t key) const;

  /// Height (levels of pivot comparisons) of the implicit global BST.
  int global_height() const { return global_height_; }
  /// Pivot-tree height inside one P·B node.
  int node_height() const { return node_height_; }
  /// Blocks per node (≈ P).
  uint64_t node_blocks() const { return node_blocks_; }

  struct RunResult {
    uint64_t steps = 0;
    uint64_t queries = 0;
    uint64_t block_fetch_runs = 0;  // read-ahead runs issued
    uint64_t blocks_fetched = 0;    // block-slots consumed across all runs
    double throughput() const {
      return steps == 0 ? 0.0
                        : static_cast<double>(queries) /
                              static_cast<double>(steps);
    }
    /// Fraction of the P block-slots per step the clients actually used —
    /// the measured occupancy of the PDAM's parallel budget.
    double slot_occupancy(int parallelism) const {
      return steps == 0 || parallelism <= 0
                 ? 0.0
                 : static_cast<double>(blocks_fetched) /
                       (static_cast<double>(steps) *
                        static_cast<double>(parallelism));
    }
  };

  /// Run `k` concurrent clients, each answering `queries_per_client`
  /// uniform-random lower_bound queries, under the PDAM: every time step
  /// the device serves P block-slots, split across clients (rotating the
  /// remainder for fairness). Each client issues at most one contiguous
  /// read-ahead run per step and walks as far as fetched blocks allow.
  RunResult run_queries(int k, uint64_t queries_per_client,
                        uint64_t seed) const;

 private:
  /// Pivot of the global BST node `g` at depth `d`: max key of its left
  /// subtree (padded tail reads as +inf).
  uint64_t pivot(uint64_t g, int d) const;
  uint64_t key_at(uint64_t index) const {
    return index < keys_.size() ? keys_[index] : ~0ULL;
  }

  /// Storage block (within the node) of local BFS position `l` for a node
  /// of height `h` (h is node_height_ or the shorter bottom-level height).
  uint64_t block_of_local(uint64_t l, int h) const;

  std::vector<uint64_t> keys_;
  PdamTreeConfig config_;
  int global_height_ = 0;       // H: padded leaf count = 2^H
  int node_height_ = 0;         // h: pivot levels per PB node
  uint64_t slots_per_block_ = 0;
  uint64_t node_blocks_ = 0;
  // Layout position tables per distinct node height (full and the bottom
  // remainder); index by height via a small map-like vector.
  std::vector<std::vector<uint32_t>> layout_by_height_;
};

}  // namespace damkit::pdam_tree
