#include "pdam_tree/veb_layout.h"

#include "util/status.h"

namespace damkit::pdam_tree {

namespace {

// Assign vEB positions for the height-`h` subtree whose root has BFS index
// `root` *in the full tree*. `next` is the next free storage slot.
void assign(std::vector<uint32_t>& pos, uint64_t root, int h, uint32_t& next) {
  if (h == 1) {
    pos[root - 1] = next++;
    return;
  }
  const int top = h / 2;        // height of the top tree
  const int bottom = h - top;   // height of each bottom tree
  assign(pos, root, top, next);
  // Bottom-tree roots are the 2^top descendants of `root` at depth `top`.
  const uint64_t first = root << top;
  const uint64_t count = 1ULL << top;
  for (uint64_t i = 0; i < count; ++i) {
    assign(pos, first + i, bottom, next);
  }
}

}  // namespace

std::vector<uint32_t> veb_positions(int height) {
  DAMKIT_CHECK(height >= 1 && height <= 30);
  const uint64_t nodes = (1ULL << height) - 1;
  std::vector<uint32_t> pos(nodes);
  uint32_t next = 0;

  // The recursion above assigns positions for the subtree rooted at BFS 1
  // of height `height`, but descendants' BFS indices used inside must be
  // relative to the *full* tree: with root = 1 they coincide. However the
  // bottom-tree recursion computes descendant indices by shifting the
  // subtree root, which is only correct when every recursive call's tree
  // is indexed by full-tree BFS numbers — true here because shifting a
  // node's index left by d and adding an offset yields exactly its depth-d
  // descendants in the same tree.
  //
  // One subtlety: for bottom subtrees, nodes *within* the subtree are not
  // contiguous in full-tree BFS numbering, so we recurse with full-tree
  // indices throughout and never assume contiguity.
  assign(pos, 1, height, next);
  DAMKIT_CHECK(next == nodes);
  return pos;
}

std::vector<uint32_t> bfs_positions(int height) {
  DAMKIT_CHECK(height >= 1 && height <= 30);
  const uint64_t nodes = (1ULL << height) - 1;
  std::vector<uint32_t> pos(nodes);
  for (uint64_t i = 0; i < nodes; ++i) pos[i] = static_cast<uint32_t>(i);
  return pos;
}

}  // namespace damkit::pdam_tree
