#include "pdam_tree/pdam_btree.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "pdam_tree/veb_layout.h"

namespace damkit::pdam_tree {

PdamBTree::PdamBTree(std::vector<uint64_t> sorted_keys, PdamTreeConfig config)
    : keys_(std::move(sorted_keys)), config_(config) {
  DAMKIT_CHECK(!keys_.empty());
  DAMKIT_CHECK(std::is_sorted(keys_.begin(), keys_.end()));
  DAMKIT_CHECK(config_.parallelism >= 1);
  DAMKIT_CHECK(config_.block_bytes >= config_.slot_bytes);

  global_height_ = 1;
  while ((1ULL << global_height_) < keys_.size()) ++global_height_;

  slots_per_block_ = config_.block_bytes / config_.slot_bytes;
  const uint64_t node_slots =
      static_cast<uint64_t>(config_.parallelism) * slots_per_block_;
  // Largest complete pivot tree fitting in a PB node: 2^h - 1 <= node_slots.
  node_height_ = 63 - std::countl_zero(node_slots + 1);
  node_height_ = std::max(node_height_, 1);
  node_height_ = std::min(node_height_, global_height_);
  node_blocks_ =
      ((1ULL << node_height_) - 1 + slots_per_block_ - 1) / slots_per_block_;

  // Precompute layout tables for every node height that occurs: the full
  // height and, if H is not a multiple of h, the bottom remainder.
  layout_by_height_.resize(static_cast<size_t>(node_height_) + 1);
  auto build = [&](int h) {
    if (h >= 1 && layout_by_height_[static_cast<size_t>(h)].empty()) {
      layout_by_height_[static_cast<size_t>(h)] =
          (config_.layout == NodeLayout::kVeb) ? veb_positions(h)
                                               : bfs_positions(h);
    }
  };
  build(node_height_);
  const int rem = global_height_ % node_height_;
  if (rem != 0) build(rem);
}

uint64_t PdamBTree::pivot(uint64_t g, int d) const {
  // Node g at depth d covers padded leaves [(g - 2^d)·2^(H-d), +2^(H-d)).
  const uint64_t span = 1ULL << (global_height_ - d);
  const uint64_t start = (g - (1ULL << d)) * span;
  return key_at(start + span / 2 - 1);
}

uint64_t PdamBTree::lower_bound(uint64_t key) const {
  uint64_t g = 1;
  for (int d = 0; d < global_height_; ++d) {
    g = (key <= pivot(g, d)) ? 2 * g : 2 * g + 1;
  }
  return g - (1ULL << global_height_);
}

uint64_t PdamBTree::block_of_local(uint64_t l, int h) const {
  const auto& table = layout_by_height_[static_cast<size_t>(h)];
  return table[l - 1] / slots_per_block_;
}

namespace {

/// The device's P block-slots per step, exposed as one shared
/// submission/completion queue that all k clients draw from. grant(i) is
/// the slot budget the queue admits for client i in the current step:
/// floor(P/k) each plus one of the P mod k leftover slots, rotated one
/// position per step so no client is systematically favoured. The queue
/// is the single point deciding what the device serves; it also counts
/// the read-ahead runs completed (the CQ side).
class StepSlotQueue {
 public:
  StepSlotQueue(int p, int k) : p_(p), k_(k) {}

  int grant(int client) const {
    const int base = p_ / k_;
    const int extra = p_ % k_;
    const bool gets_leftover =
        (static_cast<uint64_t>(client) + rotate_) % static_cast<uint64_t>(k_) <
        static_cast<uint64_t>(extra);
    return base + (gets_leftover ? 1 : 0);
  }

  void complete_run() { ++runs_; }
  void next_step() { ++rotate_; }
  uint64_t runs() const { return runs_; }

 private:
  int p_;
  int k_;
  uint64_t rotate_ = 0;
  uint64_t runs_ = 0;
};

}  // namespace

PdamBTree::RunResult PdamBTree::run_queries(int k, uint64_t queries_per_client,
                                            uint64_t seed) const {
  DAMKIT_CHECK(k >= 1);
  struct Client {
    uint64_t remaining;     // queries left (including the active one)
    bool active = false;    // a query is in flight
    uint64_t key = 0;
    uint64_t g = 1;         // global BST position
    int depth = 0;
    uint64_t node_root = 1;  // global index of the current PB-node's root
    uint64_t local = 1;      // local BFS position within the node
    int local_height = 0;    // pivot levels in the current node
    std::vector<bool> fetched;  // blocks of the current node in cache
    Rng rng{0};
  };

  const int full_h = node_height_;
  auto node_height_at = [&](int depth) {
    return std::min(full_h, global_height_ - depth);
  };

  std::vector<Client> clients(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    auto& c = clients[static_cast<size_t>(i)];
    c.remaining = queries_per_client;
    c.rng.reseed(seed + static_cast<uint64_t>(i) * 0x9e3779b97f4a7c15ULL);
    c.fetched.assign(node_blocks_, false);
  }

  RunResult result;
  StepSlotQueue queue(config_.parallelism, k);

  auto start_query = [&](Client& c) {
    c.active = true;
    c.key = c.rng.next();
    c.g = 1;
    c.depth = 0;
    c.node_root = 1;
    c.local = 1;
    c.local_height = node_height_at(0);
    std::fill(c.fetched.begin(), c.fetched.end(), false);
  };

  bool any = false;
  for (auto& c : clients) {
    if (c.remaining > 0) {
      start_query(c);
      any = true;
    }
  }

  while (any) {
    ++result.steps;
    for (int i = 0; i < k; ++i) {
      Client& c = clients[static_cast<size_t>(i)];
      if (!c.active) continue;
      const int budget = queue.grant(i);
      bool fetched_this_step = false;

      for (;;) {
        if (c.depth == global_height_) {
          // Query answered; immediately start the next one (closed loop),
          // but its first block waits for a future step.
          ++result.queries;
          --c.remaining;
          c.active = false;
          if (c.remaining > 0) start_query(c);
          break;
        }
        const uint64_t b = block_of_local(c.local, c.local_height);
        if (!c.fetched[b]) {
          if (fetched_this_step || budget == 0) break;  // wait for next step
          // One contiguous read-ahead run per step: [b, b + budget).
          const uint64_t blocks_in_node =
              ((1ULL << c.local_height) - 1 + slots_per_block_ - 1) /
              slots_per_block_;
          const uint64_t end =
              std::min(b + static_cast<uint64_t>(budget), blocks_in_node);
          for (uint64_t j = b; j < end; ++j) c.fetched[j] = true;
          result.blocks_fetched += end - b;
          fetched_this_step = true;
          queue.complete_run();
        }
        // Compare and descend one level.
        c.g = (c.key <= pivot(c.g, c.depth)) ? 2 * c.g : 2 * c.g + 1;
        ++c.depth;
        const int local_depth =
            63 - std::countl_zero(c.local);  // depth of local within node
        if (local_depth + 1 == c.local_height) {
          // Leaving this PB-node: the global position we just arrived at
          // is the root of the child node one level of nodes down.
          c.node_root = c.g;
          c.local = 1;
          c.local_height = node_height_at(c.depth);
          std::fill(c.fetched.begin(), c.fetched.end(), false);
        } else {
          c.local = (c.g & 1ULL) ? 2 * c.local + 1 : 2 * c.local;
        }
      }
    }
    queue.next_step();
    any = false;
    for (auto& c : clients) {
      if (c.active) {
        any = true;
        break;
      }
    }
  }
  result.block_fetch_runs = queue.runs();
  return result;
}

}  // namespace damkit::pdam_tree
