#include "lsm/lsm_tree.h"

#include <algorithm>
#include <cmath>

#include "kv/slice.h"

namespace damkit::lsm {

LsmTree::LsmTree(sim::Device& dev, sim::IoContext& io, LsmConfig config)
    : dev_(&dev),
      io_(&io),
      config_(config),
      arena_(dev, config.base_offset) {
  const blockdev::CodecKind resolved =
      blockdev::resolve_codec_kind(config_.codec);
  if (resolved != blockdev::CodecKind::kIdentity) {
    codec_ = blockdev::make_codec(resolved);
  }
  DAMKIT_CHECK(config_.memtable_bytes >= 1024);
  DAMKIT_CHECK(config_.sstable_target_bytes >= config_.block_bytes);
  DAMKIT_CHECK(config_.size_ratio > 1.0);
  levels_.resize(2);  // L0 and L1 exist from the start
}

LsmTree::~LsmTree() = default;

void LsmTree::put(std::string_view key, std::string_view value) {
  DAMKIT_CHECK_OK(try_put(key, value));
}

void LsmTree::erase(std::string_view key) { DAMKIT_CHECK_OK(try_erase(key)); }

Status LsmTree::try_put(std::string_view key, std::string_view value) {
  ++stats_.puts;
  stats_.logical_bytes_written += key.size() + value.size();
  mem_.put(key, value);
  if (mem_.approximate_bytes() >= config_.memtable_bytes) {
    DAMKIT_RETURN_IF_ERROR(flush_memtable());
    return maybe_compact();
  }
  return Status();
}

Status LsmTree::try_erase(std::string_view key) {
  ++stats_.erases;
  stats_.logical_bytes_written += key.size();
  mem_.erase(key);
  if (mem_.approximate_bytes() >= config_.memtable_bytes) {
    DAMKIT_RETURN_IF_ERROR(flush_memtable());
    return maybe_compact();
  }
  return Status();
}

void LsmTree::flush() { DAMKIT_CHECK_OK(try_flush()); }

Status LsmTree::try_flush() {
  if (mem_.empty()) return Status();
  DAMKIT_RETURN_IF_ERROR(flush_memtable());
  return maybe_compact();
}

Status LsmTree::flush_memtable() {
  const uint64_t mem_bytes = mem_.approximate_bytes();
  SSTableBuilder builder(*dev_, *io_, arena_, config_.block_bytes,
                         config_.bloom_bits_per_key, next_sequence_++,
                         codec_.get());
  for (const auto& [key, slot] : mem_.entries()) {
    builder.add(Entry{key, slot.value, slot.tombstone});
  }
  // On give-up nothing was installed (the builder freed its extent) and
  // the memtable stays authoritative; the next threshold crossing retries.
  StatusOr<SSTableRef> table_or = builder.try_finish(retry_, &retry_counters_);
  DAMKIT_RETURN_IF_ERROR(table_or.status());
  SSTableRef table = *std::move(table_or);
  uint64_t table_bytes = 0;
  if (table != nullptr) {
    table_bytes = table->total_bytes();
    levels_[0].insert(levels_[0].begin(), std::move(table));  // newest first
  }
  mem_.clear();
  ++stats_.memtable_flushes;
  stats_.flush_bytes_out += table_bytes;
  DAMKIT_STATS_ONLY(if (events_ != nullptr && stats::collecting()) {
    events_->emit({io_->now(), "lsm", "memtable_flush", 0, mem_bytes,
                   table_bytes});
  });
  return Status();
}

uint64_t LsmTree::level_capacity(size_t level) const {
  DAMKIT_CHECK(level >= 1);
  return static_cast<uint64_t>(
      static_cast<double>(config_.level1_bytes) *
      std::pow(config_.size_ratio, static_cast<double>(level - 1)));
}

uint64_t LsmTree::level_bytes(size_t level) const {
  DAMKIT_CHECK(level < levels_.size());
  uint64_t bytes = 0;
  for (const auto& t : levels_[level]) bytes += t->total_bytes();
  return bytes;
}

std::vector<size_t> LsmTree::level_table_counts() const {
  std::vector<size_t> counts;
  counts.reserve(levels_.size());
  for (const auto& level : levels_) counts.push_back(level.size());
  return counts;
}

Status LsmTree::maybe_compact() {
  if (config_.style == CompactionStyle::kTiered) {
    for (bool changed = true; changed;) {
      changed = false;
      for (size_t i = 0; i < levels_.size(); ++i) {
        if (levels_[i].size() > config_.level0_limit) {
          DAMKIT_RETURN_IF_ERROR(compact_tier(i));
          changed = true;
        }
      }
    }
    return Status();
  }
  for (bool changed = true; changed;) {
    changed = false;
    if (levels_[0].size() > config_.level0_limit) {
      DAMKIT_RETURN_IF_ERROR(compact_level0());
      changed = true;
    }
    for (size_t i = 1; i < levels_.size(); ++i) {
      if (!levels_[i].empty() && level_bytes(i) > level_capacity(i)) {
        DAMKIT_RETURN_IF_ERROR(compact_level(i));
        changed = true;
      }
    }
  }
  return Status();
}

Status LsmTree::compact_tier(size_t level) {
  if (level + 1 >= levels_.size()) levels_.resize(level + 2);
  // Merge the whole tier; newest-first order is already maintained.
  std::vector<SSTableRef> inputs = levels_[level];
  bool bottom = true;
  for (size_t i = level + 1; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) bottom = false;
  }
  // One output table per merge: in tiered compaction a run must stay a
  // single unit, or run counting (and with it termination) breaks.
  StatusOr<std::vector<SSTableRef>> outputs_or =
      merge_tables(inputs, bottom, level, /*split_output=*/false);
  DAMKIT_RETURN_IF_ERROR(outputs_or.status());
  std::vector<SSTableRef> outputs = *std::move(outputs_or);
  for (const auto& t : levels_[level]) t->release();
  levels_[level].clear();
  // The merged run lands at the *front* of the next tier (it is newer
  // than everything already there).
  levels_[level + 1].insert(levels_[level + 1].begin(), outputs.begin(),
                            outputs.end());
  return Status();
}

Status LsmTree::charge_compaction_batches(std::vector<sim::IoRequest> reqs) {
  std::vector<sim::IoCompletion> completions;
  std::vector<Status> per_io;
  const size_t width = std::max<size_t>(config_.compaction_batch_ios, 1);
  const uint32_t max_attempts = std::max<uint32_t>(retry_.max_attempts, 1);
  for (size_t i = 0; i < reqs.size(); i += width) {
    const size_t n = std::min(width, reqs.size() - i);
    std::vector<sim::IoRequest> batch(
        reqs.begin() + static_cast<ptrdiff_t>(i),
        reqs.begin() + static_cast<ptrdiff_t>(i + n));
    ++stats_.compaction_batches;
    stats_.compaction_batched_ios += batch.size();
    double backoff = static_cast<double>(retry_.backoff_ns);
    for (uint32_t attempt = 1;; ++attempt) {
      DAMKIT_RETURN_IF_ERROR(
          io_->submit_batch_checked(batch, &completions, &per_io));
      // Re-batch only the transiently-failed requests; anything that
      // exhausted its attempts (or failed non-transiently) abandons the
      // compaction.
      std::vector<sim::IoRequest> failed;
      Status abandoned;
      for (size_t j = 0; j < batch.size(); ++j) {
        if (per_io[j].ok()) continue;
        if (per_io[j].code() == StatusCode::kUnavailable &&
            attempt < max_attempts) {
          failed.push_back(batch[j]);
        } else {
          ++retry_counters_.give_ups;
          if (abandoned.ok()) abandoned = per_io[j];
        }
      }
      DAMKIT_RETURN_IF_ERROR(abandoned);
      if (failed.empty()) break;
      io_->spend(static_cast<sim::SimTime>(backoff));
      backoff *= retry_.backoff_multiplier;
      retry_counters_.retries += failed.size();
      batch = std::move(failed);
    }
  }
  return Status();
}

StatusOr<std::vector<SSTableRef>> LsmTree::merge_tables(
    const std::vector<SSTableRef>& inputs, bool bottom, size_t source_level,
    bool split_output) {
  ++stats_.compactions;
  if (source_level >= compactions_by_level_.size()) {
    compactions_by_level_.resize(source_level + 1);
  }
  ++compactions_by_level_[source_level];
  uint64_t bytes_in = 0;
  for (const auto& t : inputs) bytes_in += t->total_bytes();
  stats_.compaction_bytes_in += bytes_in;

  // Precharge the input reads through the batch path: the inputs are
  // immutable, so every run IO of the merge is known upfront. Interleave
  // them round-robin across tables and submit `compaction_batch_ios` per
  // device batch — an SSD serves each batch across its dies in parallel
  // instead of one run per merge stall. The cursors below then consume
  // payload without further timing charges.
  bool precharged = false;
  if (config_.compaction_batch_ios > 1) {
    std::vector<std::vector<sim::IoRequest>> per_input;
    size_t total = 0;
    per_input.reserve(inputs.size());
    for (const auto& t : inputs) {
      per_input.push_back(t->run_requests(config_.scan_readahead_blocks));
      total += per_input.back().size();
    }
    if (total > 1) {
      std::vector<sim::IoRequest> interleaved;
      interleaved.reserve(total);
      for (size_t round = 0; interleaved.size() < total; ++round) {
        for (const auto& runs : per_input) {
          if (round < runs.size()) interleaved.push_back(runs[round]);
        }
      }
      DAMKIT_RETURN_IF_ERROR(
          charge_compaction_batches(std::move(interleaved)));
      precharged = true;
    }
  }

  // K-way merge, recency = input order (lower index shadows higher).
  struct Cursor {
    SSTable::Iterator it;
    size_t priority;
  };
  std::vector<Cursor> cursors;
  std::vector<SSTableRef> outputs;
  // Transactional failure: on a non-OK status, release every output
  // written so far and leave the inputs untouched, so the pre-merge tree
  // state stays authoritative. Passes OK through untouched.
  const auto abort_merge = [&](const Status& s) {
    if (!s.ok()) {
      for (const auto& t : outputs) t->release();
      outputs.clear();
    }
    return s;
  };

  cursors.reserve(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    SSTable::Iterator it = inputs[i]->seek(
        "", *io_, config_.scan_readahead_blocks,
        /*charge_io=*/!precharged, &retry_, &retry_counters_);
    if (!it.valid()) DAMKIT_RETURN_IF_ERROR(abort_merge(it.status()));
    if (it.valid()) cursors.push_back({std::move(it), i});
  }

  std::unique_ptr<SSTableBuilder> builder;
  auto emit = [&](Entry e) -> Status {
    if (bottom && e.tombstone) return Status();  // tombstones die at bottom
    if (!builder) {
      builder = std::make_unique<SSTableBuilder>(
          *dev_, *io_, arena_, config_.block_bytes,
          config_.bloom_bits_per_key, next_sequence_++, codec_.get());
    }
    builder->add(std::move(e));
    if (split_output &&
        builder->data_bytes() >= config_.sstable_target_bytes) {
      StatusOr<SSTableRef> table = builder->try_finish(retry_, &retry_counters_);
      DAMKIT_RETURN_IF_ERROR(table.status());
      outputs.push_back(*std::move(table));
      builder.reset();
    }
    return Status();
  };

  while (!cursors.empty()) {
    // Find the smallest key; among equals, the lowest priority (newest).
    size_t best = 0;
    for (size_t i = 1; i < cursors.size(); ++i) {
      const int c = kv::compare(cursors[i].it.entry().key,
                                cursors[best].it.entry().key);
      if (c < 0 || (c == 0 && cursors[i].priority < cursors[best].priority)) {
        best = i;
      }
    }
    Entry winner = cursors[best].it.entry().to_entry();
    // Advance every cursor positioned at this key (shadowed versions).
    for (size_t i = 0; i < cursors.size();) {
      if (kv::compare(cursors[i].it.entry().key, winner.key) == 0) {
        cursors[i].it.next();
        if (!cursors[i].it.valid()) {
          // An exhausted cursor is fine; one that stopped on a read
          // give-up aborts the merge (silently dropping its remaining
          // entries would lose data).
          DAMKIT_RETURN_IF_ERROR(abort_merge(cursors[i].it.status()));
          cursors.erase(cursors.begin() + static_cast<ptrdiff_t>(i));
          continue;
        }
      }
      ++i;
    }
    const Status emitted = emit(std::move(winner));
    DAMKIT_RETURN_IF_ERROR(abort_merge(emitted));
  }
  if (builder) {
    StatusOr<SSTableRef> last = builder->try_finish(retry_, &retry_counters_);
    DAMKIT_RETURN_IF_ERROR(abort_merge(last.status()));
    if (*last != nullptr) outputs.push_back(*std::move(last));
  }
  uint64_t bytes_out = 0;
  for (const auto& t : outputs) bytes_out += t->total_bytes();
  stats_.compaction_bytes_out += bytes_out;
  DAMKIT_STATS_ONLY(if (events_ != nullptr && stats::collecting()) {
    events_->emit({io_->now(), "lsm", "compaction", source_level, bytes_in,
                   bytes_out});
  });
  return outputs;
}

void LsmTree::install_level1plus(size_t level, std::vector<SSTableRef> added,
                                 const std::vector<SSTableRef>& removed) {
  Level& lv = levels_[level];
  for (const auto& dead : removed) {
    const auto it = std::find(lv.begin(), lv.end(), dead);
    if (it != lv.end()) lv.erase(it);
  }
  for (auto& t : added) lv.push_back(std::move(t));
  std::sort(lv.begin(), lv.end(), [](const SSTableRef& a, const SSTableRef& b) {
    return kv::compare(a->min_key(), b->min_key()) < 0;
  });
}

Status LsmTree::compact_level0() {
  // All of L0 plus every overlapping L1 table.
  std::vector<SSTableRef> inputs = levels_[0];  // newest first already
  std::string lo = inputs.front()->min_key();
  std::string hi = inputs.front()->max_key();
  for (const auto& t : inputs) {
    if (kv::compare(t->min_key(), lo) < 0) lo = t->min_key();
    if (kv::compare(t->max_key(), hi) > 0) hi = t->max_key();
  }
  std::vector<SSTableRef> overlapped;
  for (const auto& t : levels_[1]) {
    if (t->overlaps(lo, hi)) overlapped.push_back(t);
  }
  inputs.insert(inputs.end(), overlapped.begin(), overlapped.end());

  bool bottom = true;
  for (size_t i = 2; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) bottom = false;
  }
  // Remaining (non-overlapped) L1 tables also shadow deeper data; only
  // drop tombstones if L1 is the lowest level, which `bottom` captures.
  StatusOr<std::vector<SSTableRef>> outputs_or =
      merge_tables(inputs, bottom, /*source_level=*/0);
  DAMKIT_RETURN_IF_ERROR(outputs_or.status());

  for (const auto& t : levels_[0]) t->release();
  levels_[0].clear();
  for (const auto& t : overlapped) t->release();
  install_level1plus(1, *std::move(outputs_or), overlapped);
  return Status();
}

Status LsmTree::compact_level(size_t level) {
  DAMKIT_CHECK(level >= 1);
  if (level + 1 >= levels_.size()) levels_.resize(level + 2);
  Level& lv = levels_[level];
  DAMKIT_CHECK(!lv.empty());
  const SSTableRef victim = lv[compact_cursor_ % lv.size()];
  ++compact_cursor_;

  std::vector<SSTableRef> overlapped;
  for (const auto& t : levels_[level + 1]) {
    if (t->overlaps(victim->min_key(), victim->max_key())) {
      overlapped.push_back(t);
    }
  }
  std::vector<SSTableRef> inputs{victim};
  inputs.insert(inputs.end(), overlapped.begin(), overlapped.end());

  bool bottom = true;
  for (size_t i = level + 2; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) bottom = false;
  }
  StatusOr<std::vector<SSTableRef>> outputs_or =
      merge_tables(inputs, bottom, level);
  DAMKIT_RETURN_IF_ERROR(outputs_or.status());

  const auto it = std::find(lv.begin(), lv.end(), victim);
  DAMKIT_CHECK(it != lv.end());
  lv.erase(it);
  victim->release();
  for (const auto& t : overlapped) t->release();
  install_level1plus(level + 1, *std::move(outputs_or), overlapped);
  return Status();
}

std::optional<std::string> LsmTree::get(std::string_view key) {
  StatusOr<std::optional<std::string>> value = try_get(key);
  DAMKIT_CHECK_OK(value.status());
  return *std::move(value);
}

StatusOr<std::optional<std::string>> LsmTree::try_get(std::string_view key) {
  ++stats_.gets;
  if (const auto hit = mem_.get(key)) {
    if (hit->tombstone) return std::optional<std::string>();
    return std::optional<std::string>(hit->value);
  }
  // Probe one table: returns the resolved value (or deletion) if found.
  enum class Probe { kMiss, kFound, kDeleted };
  std::string found;
  const auto probe = [&](const SSTableRef& t) -> StatusOr<Probe> {
    if (!t->overlaps(key, key)) return Probe::kMiss;
    ++stats_.table_probes;
    if (!t->may_contain(key)) {
      ++stats_.bloom_negative;
      return Probe::kMiss;
    }
    StatusOr<std::optional<Entry>> hit =
        t->try_get(key, *io_, retry_, &retry_counters_);
    DAMKIT_RETURN_IF_ERROR(hit.status());
    if (!hit->has_value()) return Probe::kMiss;
    if ((*hit)->tombstone) return Probe::kDeleted;
    found = (*hit)->value;
    return Probe::kFound;
  };
  const std::optional<std::string> miss;

  if (config_.style == CompactionStyle::kTiered) {
    // Every tier may hold overlapping runs: probe all, newest first.
    for (const auto& level : levels_) {
      for (const auto& t : level) {
        StatusOr<Probe> p = probe(t);
        DAMKIT_RETURN_IF_ERROR(p.status());
        switch (*p) {
          case Probe::kFound: return std::optional<std::string>(found);
          case Probe::kDeleted: return miss;
          case Probe::kMiss: break;
        }
      }
    }
    return miss;
  }

  // L0: newest first, may overlap.
  for (const auto& t : levels_[0]) {
    StatusOr<Probe> p = probe(t);
    DAMKIT_RETURN_IF_ERROR(p.status());
    switch (*p) {
      case Probe::kFound: return std::optional<std::string>(found);
      case Probe::kDeleted: return miss;
      case Probe::kMiss: break;
    }
  }
  // L1+: at most one candidate table per level.
  for (size_t i = 1; i < levels_.size(); ++i) {
    const Level& lv = levels_[i];
    const auto it = std::upper_bound(
        lv.begin(), lv.end(), key,
        [](std::string_view k, const SSTableRef& t) {
          return kv::compare(k, t->min_key()) < 0;
        });
    if (it == lv.begin()) continue;
    StatusOr<Probe> p = probe(*(it - 1));
    DAMKIT_RETURN_IF_ERROR(p.status());
    switch (*p) {
      case Probe::kFound: return std::optional<std::string>(found);
      case Probe::kDeleted: return miss;
      case Probe::kMiss: break;
    }
  }
  return miss;
}

std::vector<std::pair<std::string, std::string>> LsmTree::scan(
    std::string_view lo, size_t limit) {
  StatusOr<std::vector<std::pair<std::string, std::string>>> out =
      try_scan(lo, limit);
  DAMKIT_CHECK_OK(out.status());
  return *std::move(out);
}

StatusOr<std::vector<std::pair<std::string, std::string>>> LsmTree::try_scan(
    std::string_view lo, size_t limit) {
  ++stats_.scans;
  std::vector<std::pair<std::string, std::string>> out;
  if (limit == 0) return out;

  // A cursor per source; priority orders recency (lower = newer).
  struct Source {
    // Either a memtable iterator...
    const MemTable::Map* mem = nullptr;
    MemTable::Map::const_iterator mem_it;
    // ...or a level run (sequence of tables + an open table iterator).
    const Level* level = nullptr;
    size_t table_idx = 0;
    std::unique_ptr<SSTable::Iterator> it;
    size_t priority = 0;

    bool valid() const {
      return mem != nullptr ? mem_it != mem->end()
                            : (it != nullptr && it->valid());
    }
    std::string_view key() const {
      return mem != nullptr ? std::string_view(mem_it->first)
                            : std::string_view(it->entry().key);
    }
  };

  std::vector<Source> sources;
  size_t priority = 0;
  {
    Source s;
    s.mem = &mem_.entries();
    s.mem_it = mem_.entries().lower_bound(lo);
    s.priority = priority++;
    if (s.valid()) sources.push_back(std::move(s));
  }
  const size_t overlapping_levels =
      (config_.style == CompactionStyle::kTiered) ? levels_.size() : 1;
  for (size_t i = 0; i < overlapping_levels; ++i) {
    for (const auto& t : levels_[i]) {
      Source s;
      s.priority = priority++;
      if (kv::compare(t->max_key(), lo) >= 0) {
        s.it = std::make_unique<SSTable::Iterator>(
            t->seek(lo, *io_, config_.scan_readahead_blocks,
                    /*charge_io=*/true, &retry_, &retry_counters_));
        DAMKIT_RETURN_IF_ERROR(s.it->status());
        if (s.it->valid()) sources.push_back(std::move(s));
      }
    }
  }
  for (size_t i = overlapping_levels; i < levels_.size(); ++i) {
    const Level& lv = levels_[i];
    Source s;
    s.level = &lv;
    s.priority = priority++;
    // First table whose max_key >= lo.
    size_t idx = 0;
    while (idx < lv.size() && kv::compare(lv[idx]->max_key(), lo) < 0) ++idx;
    if (idx == lv.size()) continue;
    s.table_idx = idx;
    s.it = std::make_unique<SSTable::Iterator>(
        lv[idx]->seek(lo, *io_, config_.scan_readahead_blocks,
                      /*charge_io=*/true, &retry_, &retry_counters_));
    DAMKIT_RETURN_IF_ERROR(s.it->status());
    if (s.it->valid()) sources.push_back(std::move(s));
  }

  auto advance = [&](Source& s) -> Status {
    if (s.mem != nullptr) {
      ++s.mem_it;
      return Status();
    }
    s.it->next();
    DAMKIT_RETURN_IF_ERROR(s.it->status());
    // A level run continues into the next table.
    while (s.level != nullptr && !s.it->valid() &&
           s.table_idx + 1 < s.level->size()) {
      ++s.table_idx;
      s.it = std::make_unique<SSTable::Iterator>(
          (*s.level)[s.table_idx]->seek(lo, *io_,
                                        config_.scan_readahead_blocks,
                                        /*charge_io=*/true, &retry_,
                                        &retry_counters_));
      DAMKIT_RETURN_IF_ERROR(s.it->status());
    }
    return Status();
  };

  while (out.size() < limit) {
    // Smallest key; ties resolved by recency.
    int best = -1;
    for (size_t i = 0; i < sources.size(); ++i) {
      if (!sources[i].valid()) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      const int c = kv::compare(sources[i].key(),
                                sources[static_cast<size_t>(best)].key());
      if (c < 0 || (c == 0 && sources[i].priority <
                                  sources[static_cast<size_t>(best)].priority)) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    Source& winner = sources[static_cast<size_t>(best)];
    const std::string key(winner.key());
    std::string value;
    bool tombstone;
    if (winner.mem != nullptr) {
      value = winner.mem_it->second.value;
      tombstone = winner.mem_it->second.tombstone;
    } else {
      value = winner.it->entry().value;
      tombstone = winner.it->entry().tombstone;
    }
    // Skip every shadowed version of this key.
    for (auto& s : sources) {
      while (s.valid() && kv::compare(s.key(), key) == 0) {
        DAMKIT_RETURN_IF_ERROR(advance(s));
      }
    }
    if (!tombstone) out.emplace_back(key, std::move(value));
  }
  return out;
}

void LsmTree::export_metrics(stats::MetricsRegistry& reg,
                             std::string_view prefix) const {
  const std::string p(prefix);
  reg.add(p + "puts", stats_.puts);
  reg.add(p + "gets", stats_.gets);
  reg.add(p + "erases", stats_.erases);
  reg.add(p + "scans", stats_.scans);
  reg.add(p + "memtable_flushes", stats_.memtable_flushes);
  reg.add(p + "compactions", stats_.compactions);
  reg.add(p + "compaction_bytes_in", stats_.compaction_bytes_in);
  reg.add(p + "compaction_bytes_out", stats_.compaction_bytes_out);
  reg.add(p + "compaction_batches", stats_.compaction_batches);
  reg.add(p + "compaction_batched_ios", stats_.compaction_batched_ios);
  reg.add(p + "flush_bytes_out", stats_.flush_bytes_out);
  reg.add(p + "logical_bytes_written", stats_.logical_bytes_written);
  reg.add(p + "bloom_negative", stats_.bloom_negative);
  reg.add(p + "table_probes", stats_.table_probes);
  reg.add(p + "io_retries", retry_counters_.retries);
  reg.add(p + "io_give_ups", retry_counters_.give_ups);
  for (size_t i = 0; i < compactions_by_level_.size(); ++i) {
    reg.add(p + "compactions.level" + std::to_string(i),
            compactions_by_level_[i]);
  }
  for (size_t i = 0; i < levels_.size(); ++i) {
    const std::string lp = p + "level" + std::to_string(i) + ".";
    reg.set(lp + "tables", static_cast<double>(levels_[i].size()));
    reg.set(lp + "bytes", static_cast<double>(level_bytes(i)));
  }
  if (stats_.compaction_batches > 0) {
    // Mean run IOs per submitted batch over the configured width — how
    // full the compaction kept the device's parallel slots.
    reg.set(p + "compaction_batch_occupancy",
            static_cast<double>(stats_.compaction_batched_ios) /
                static_cast<double>(stats_.compaction_batches *
                                    config_.compaction_batch_ios));
  }
  if (stats_.logical_bytes_written > 0) {
    reg.set(p + "write_amplification",
            static_cast<double>(stats_.flush_bytes_out +
                                stats_.compaction_bytes_out) /
                static_cast<double>(stats_.logical_bytes_written));
  }
  if (codec_ != nullptr) {
    codec_->stats().export_metrics(reg, p + "codec.");
  }
}

void LsmTree::check_invariants() const {
  const bool tiered = config_.style == CompactionStyle::kTiered;
  for (size_t i = 0; i < levels_.size(); ++i) {
    for (const auto& t : levels_[i]) {
      DAMKIT_CHECK(kv::compare(t->min_key(), t->max_key()) <= 0);
      DAMKIT_CHECK(t->entry_count() > 0);
    }
    if (!tiered && i >= 1) {
      for (size_t j = 1; j < levels_[i].size(); ++j) {
        // Leveled: each level is one sorted, non-overlapping run.
        DAMKIT_CHECK_MSG(
            kv::compare(levels_[i][j - 1]->max_key(),
                        levels_[i][j]->min_key()) < 0,
            "level " << i << " tables overlap");
      }
    }
  }
  if (!tiered) {
    // L0 recency: sequences strictly decreasing (newest first).
    for (size_t j = 1; j < levels_[0].size(); ++j) {
      DAMKIT_CHECK(levels_[0][j - 1]->sequence() > levels_[0][j]->sequence());
    }
  }
}

}  // namespace damkit::lsm
