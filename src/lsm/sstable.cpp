#include "lsm/sstable.h"

#include <algorithm>

#include "kv/codec.h"
#include "kv/slice.h"
#include "node/slotted_page.h"

namespace damkit::lsm {

namespace {

// Block entry record: [u8 tombstone][u16 klen][u32 vlen][key][value].

void encode_entry(kv::Writer& w, const Entry& e) {
  w.put_u8(e.tombstone ? 1 : 0);
  w.put_u16(static_cast<uint16_t>(e.key.size()));
  w.put_u32(static_cast<uint32_t>(e.value.size()));
  w.put_bytes(e.key);
  w.put_bytes(e.value);
}

size_t entry_record_len(const uint8_t* p) {
  return size_t{7} + load_u16(p + 1) + load_u32(p + 3);
}

std::string_view entry_record_key(std::string_view rec) {
  return rec.substr(
      7, load_u16(reinterpret_cast<const uint8_t*>(rec.data()) + 1));
}

EntryView decode_entry_view(const uint8_t* p) {
  const uint16_t klen = load_u16(p + 1);
  const uint32_t vlen = load_u32(p + 3);
  return EntryView{
      std::string_view(reinterpret_cast<const char*>(p + 7), klen),
      std::string_view(reinterpret_cast<const char*>(p + 7 + klen), vlen),
      p[0] != 0};
}

}  // namespace

SSTableBuilder::SSTableBuilder(sim::Device& dev, sim::IoContext& io,
                               blockdev::ByteArena& arena,
                               uint64_t block_bytes, double bloom_bits_per_key,
                               uint64_t sequence,
                               const blockdev::BlockCodec* codec)
    : dev_(&dev),
      io_(&io),
      arena_(&arena),
      block_bytes_(block_bytes),
      bloom_bits_(bloom_bits_per_key),
      sequence_(sequence),
      codec_(codec != nullptr &&
                     codec->kind() != blockdev::CodecKind::kIdentity
                 ? codec
                 : nullptr) {
  DAMKIT_CHECK(block_bytes_ >= 256);
}

SSTableBuilder::~SSTableBuilder() = default;

void SSTableBuilder::add(Entry entry) {
  DAMKIT_CHECK(!finished_);
  DAMKIT_CHECK_MSG(count_ == 0 || kv::compare(last_key_, entry.key) < 0,
                   "SSTable keys must be strictly ascending");
  if (count_ == 0) first_key_ = entry.key;
  last_key_ = entry.key;

  if (block_.empty()) {
    index_.push_back(
        {entry.key, data_.size(), 0, 0});
  }
  kv::Writer w(block_);
  encode_entry(w, entry);
  ++index_.back().entries;
  keys_seen_.push_back(std::move(entry.key));
  ++count_;
  if (block_.size() >= block_bytes_) flush_block();
}

void SSTableBuilder::flush_block() {
  if (block_.empty()) return;
  if (codec_ != nullptr) {
    // Blocks are framed individually so a point read still costs exactly
    // one (now smaller) block IO; the index addresses physical extents.
    codec_->encode(block_, enc_);
    index_.back().length = static_cast<uint32_t>(enc_.size());
    data_.insert(data_.end(), enc_.begin(), enc_.end());
  } else {
    index_.back().length = static_cast<uint32_t>(block_.size());
    data_.insert(data_.end(), block_.begin(), block_.end());
  }
  block_.clear();
}

SSTableRef SSTableBuilder::finish() {
  StatusOr<SSTableRef> table = try_finish(blockdev::RetryPolicy{}, nullptr);
  DAMKIT_CHECK_OK(table.status());
  return *std::move(table);
}

StatusOr<SSTableRef> SSTableBuilder::try_finish(
    const blockdev::RetryPolicy& policy, blockdev::RetryCounters* counters) {
  DAMKIT_CHECK(!finished_);
  finished_ = true;
  if (count_ == 0) return SSTableRef(nullptr);
  flush_block();

  auto table = std::shared_ptr<SSTable>(new SSTable());
  table->dev_ = dev_;
  table->arena_ = arena_;
  table->codec_ = codec_;
  table->entry_count_ = count_;
  table->sequence_ = sequence_;
  table->min_key_ = std::move(first_key_);
  table->max_key_ = std::move(last_key_);
  table->data_bytes_ = data_.size();

  table->bloom_ = BloomFilter(count_, bloom_bits_);
  for (const auto& k : keys_seen_) table->bloom_.add(k);

  table->index_.reserve(index_.size());
  for (auto& ie : index_) {
    table->index_.push_back(
        {std::move(ie.first_key), ie.offset, ie.length, ie.entries});
  }

  // The written image includes the metadata footprint (index keys +
  // bloom bits) so device bytes reflect the real storage cost, even
  // though the handle keeps the metadata resident.
  uint64_t meta_bytes = table->bloom_.byte_size();
  for (const auto& ie : table->index_) {
    meta_bytes += 16 + ie.first_key.size();
  }
  table->total_bytes_ = data_.size() + meta_bytes;

  StatusOr<uint64_t> offset = arena_->try_allocate(table->total_bytes_);
  DAMKIT_RETURN_IF_ERROR(offset.status());
  table->device_offset_ = *offset;
  // One streaming write: data payload followed by (opaque) metadata pad.
  // A torn write is repaired by rewriting the extent in full, so
  // kCorruption is retryable here.
  data_.resize(table->total_bytes_);
  const Status written = blockdev::with_retries(
      *io_, policy, counters, /*retry_corruption=*/true,
      [&] { return io_->write_checked(table->device_offset_, data_); });
  if (!written.ok()) {
    // No table came into existence: hand the extent back. The caller must
    // keep the source data (e.g. the memtable) authoritative.
    arena_->free(table->device_offset_, table->total_bytes_);
    return written;
  }
  return SSTableRef(std::move(table));
}

SSTable::~SSTable() = default;

void SSTable::release() const {
  if (!released_ && arena_ != nullptr) {
    arena_->free(device_offset_, total_bytes_);
    released_ = true;
  }
}

bool SSTable::overlaps(std::string_view lo, std::string_view hi) const {
  return kv::compare(max_key_, lo) >= 0 && kv::compare(min_key_, hi) <= 0;
}

Status SSTable::try_fetch_block_raw(size_t block_idx, sim::IoContext& io,
                                    const blockdev::RetryPolicy& policy,
                                    blockdev::RetryCounters* counters,
                                    std::vector<uint8_t>* raw) const {
  DAMKIT_CHECK(block_idx < index_.size());
  DAMKIT_CHECK_MSG(!released_, "read from released SSTable");
  const IndexEntry& ie = index_[block_idx];
  if (codec_ == nullptr) {
    raw->resize(ie.length);
    return blockdev::with_retries(
        io, policy, counters, /*retry_corruption=*/false, [&] {
          return io.read_checked(device_offset_ + ie.offset, *raw);
        });
  }
  std::vector<uint8_t> buf(ie.length);
  DAMKIT_RETURN_IF_ERROR(blockdev::with_retries(
      io, policy, counters, /*retry_corruption=*/false, [&] {
        return io.read_checked(device_offset_ + ie.offset, buf);
      }));
  if (!codec_->decode(buf, *raw)) {
    return Status::corruption("SSTable block " + std::to_string(block_idx) +
                              ": stored codec frame failed to decode");
  }
  return Status();
}

std::optional<Entry> SSTable::get(std::string_view key,
                                  sim::IoContext& io) const {
  StatusOr<std::optional<Entry>> hit =
      try_get(key, io, blockdev::RetryPolicy{}, nullptr);
  DAMKIT_CHECK_OK(hit.status());
  return *std::move(hit);
}

StatusOr<std::optional<Entry>> SSTable::try_get(
    std::string_view key, sim::IoContext& io,
    const blockdev::RetryPolicy& policy,
    blockdev::RetryCounters* counters) const {
  if (kv::compare(key, min_key_) < 0 || kv::compare(key, max_key_) > 0) {
    return std::optional<Entry>();
  }
  if (!bloom_.may_contain(key)) return std::optional<Entry>();
  // Last block whose first key <= key.
  const auto it = std::upper_bound(
      index_.begin(), index_.end(), key,
      [](std::string_view k, const IndexEntry& e) {
        return kv::compare(k, e.first_key) < 0;
      });
  if (it == index_.begin()) return std::optional<Entry>();
  const size_t block_idx = static_cast<size_t>(it - index_.begin()) - 1;
  std::vector<uint8_t> raw;
  DAMKIT_RETURN_IF_ERROR(
      try_fetch_block_raw(block_idx, io, policy, counters, &raw));
  // Index the block in place and binary-search it without materializing
  // entries; only a hit is copied out.
  node::SlottedPage page;
  page.build_from_image(raw.data(), raw.size(), index_[block_idx].entries,
                        entry_record_len);
  const size_t pos = page.lower_bound(key, entry_record_key);
  if (pos >= page.count()) return std::optional<Entry>();
  const std::string_view rec = page.record(pos);
  if (kv::compare(entry_record_key(rec), key) != 0) {
    return std::optional<Entry>();
  }
  return std::optional<Entry>(
      decode_entry_view(reinterpret_cast<const uint8_t*>(rec.data()))
          .to_entry());
}

SSTable::Iterator::Iterator(const SSTable* table, sim::IoContext* io,
                            std::string_view lo, size_t readahead_blocks,
                            bool charge_io,
                            const blockdev::RetryPolicy* policy,
                            blockdev::RetryCounters* counters)
    : table_(table),
      io_(io),
      readahead_(std::max<size_t>(readahead_blocks, 1)),
      charge_io_(charge_io),
      policy_(policy),
      counters_(counters) {
  // First block that could contain keys >= lo.
  const auto it = std::upper_bound(
      table_->index_.begin(), table_->index_.end(), lo,
      [](std::string_view k, const IndexEntry& e) {
        return kv::compare(k, e.first_key) < 0;
      });
  const size_t block_idx =
      (it == table_->index_.begin())
          ? 0
          : static_cast<size_t>(it - table_->index_.begin()) - 1;
  load_blocks(block_idx);
  // Skip entries below lo.
  while (valid_ && kv::compare(current_.key, lo) < 0) next();
}

void SSTable::Iterator::load_blocks(size_t first_block) {
  if (first_block >= table_->index_.size()) {
    valid_ = false;
    return;
  }
  DAMKIT_CHECK_MSG(!table_->released_, "read from released SSTable");
  const size_t end =
      std::min(first_block + readahead_, table_->index_.size());
  // Blocks are contiguous in the image: one IO covers the whole run.
  const IndexEntry& first = table_->index_[first_block];
  const IndexEntry& last = table_->index_[end - 1];
  const uint64_t run_bytes = last.offset + last.length - first.offset;
  std::vector<uint8_t> buf(run_bytes);
  if (charge_io_) {
    const uint64_t off = table_->device_offset_ + first.offset;
    Status s;
    if (policy_ != nullptr) {
      s = blockdev::with_retries(*io_, *policy_, counters_,
                                 /*retry_corruption=*/false,
                                 [&] { return io_->read_checked(off, buf); });
    } else {
      s = io_->read_checked(off, buf);
    }
    if (!s.ok()) {
      // The cursor stops here; the failure is reported via status() and
      // valid() goes false so merge loops terminate cleanly.
      status_ = s;
      valid_ = false;
      return;
    }
  } else {
    // Timing was precharged by the caller (batched run requests); only
    // the payload is needed here.
    table_->dev_->read_bytes(table_->device_offset_ + first.offset, buf);
  }

  size_t run_entries = 0;
  for (size_t b = first_block; b < end; ++b) {
    run_entries += table_->index_[b].entries;
  }
  if (table_->codec_ != nullptr) {
    // The run is a concatenation of per-block frames: slice each block
    // out of the physical buffer via the index, decode it, and splice the
    // raw blocks back into one contiguous run.
    run_.clear();
    std::vector<uint8_t> raw;
    for (size_t b = first_block; b < end; ++b) {
      const IndexEntry& ie = table_->index_[b];
      const std::span<const uint8_t> frame(buf.data() +
                                               (ie.offset - first.offset),
                                           ie.length);
      if (!table_->codec_->decode(frame, raw)) {
        status_ = Status::corruption(
            "SSTable block " + std::to_string(b) +
            ": stored codec frame failed to decode");
        valid_ = false;
        return;
      }
      run_.insert(run_.end(), raw.begin(), raw.end());
    }
  } else {
    // Uncompressed blocks are already wire-format records back to back.
    run_ = std::move(buf);
  }
  next_block_ = end;
  run_pos_ = 0;
  run_remaining_ = run_entries;
  DAMKIT_CHECK(run_remaining_ > 0);
  current_ = decode_entry_view(run_.data());
  valid_ = true;
}

void SSTable::Iterator::next() {
  DAMKIT_CHECK(valid_);
  if (run_remaining_ > 1) {
    run_pos_ += entry_record_len(run_.data() + run_pos_);
    --run_remaining_;
    current_ = decode_entry_view(run_.data() + run_pos_);
    return;
  }
  load_blocks(next_block_);
}

SSTable::Iterator SSTable::seek(std::string_view lo, sim::IoContext& io,
                                size_t readahead_blocks, bool charge_io,
                                const blockdev::RetryPolicy* policy,
                                blockdev::RetryCounters* counters) const {
  return Iterator(this, &io, lo, readahead_blocks, charge_io, policy,
                  counters);
}

std::vector<sim::IoRequest> SSTable::run_requests(
    size_t readahead_blocks) const {
  DAMKIT_CHECK_MSG(!released_, "run_requests on released SSTable");
  const size_t readahead = std::max<size_t>(readahead_blocks, 1);
  std::vector<sim::IoRequest> reqs;
  for (size_t b = 0; b < index_.size(); b += readahead) {
    const size_t end = std::min(b + readahead, index_.size());
    const IndexEntry& first = index_[b];
    const IndexEntry& last = index_[end - 1];
    reqs.push_back({sim::IoKind::kRead, device_offset_ + first.offset,
                    last.offset + last.length - first.offset});
  }
  return reqs;
}

}  // namespace damkit::lsm
