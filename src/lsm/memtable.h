// In-memory write buffer of the LSM-tree: a sorted map of the freshest
// version of each recently-written key (tombstones included).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "lsm/sstable.h"

namespace damkit::lsm {

class MemTable {
 public:
  void put(std::string_view key, std::string_view value) {
    upsert_entry(key, value, /*tombstone=*/false);
  }
  void erase(std::string_view key) { upsert_entry(key, "", true); }

  /// nullopt = unknown here (consult tables); Entry with tombstone=true =
  /// known-deleted.
  std::optional<Entry> get(std::string_view key) const {
    const auto it = entries_.find(key);  // transparent comparator: no copy
    if (it == entries_.end()) return std::nullopt;
    return Entry{it->first, it->second.value, it->second.tombstone};
  }

  uint64_t approximate_bytes() const { return bytes_; }
  size_t entry_count() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  void clear() {
    entries_.clear();
    bytes_ = 0;
  }

  /// Ordered traversal support for flush and merged scans.
  struct Slot {
    std::string value;
    bool tombstone = false;
  };
  using Map = std::map<std::string, Slot, std::less<>>;
  const Map& entries() const { return entries_; }

 private:
  void upsert_entry(std::string_view key, std::string_view value,
                    bool tombstone) {
    auto [it, inserted] = entries_.try_emplace(std::string(key));
    if (inserted) {
      bytes_ += key.size() + 16;
    } else {
      bytes_ -= it->second.value.size();
    }
    it->second.value.assign(value);
    it->second.tombstone = tombstone;
    bytes_ += value.size();
  }

  Map entries_;
  uint64_t bytes_ = 0;
};

}  // namespace damkit::lsm
