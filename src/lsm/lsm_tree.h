// A leveled log-structured merge tree over a simulated device — the
// third write-optimized dictionary the paper discusses (§1: "LevelDB's
// LSM-tree uses 2 MiB SSTables for all workloads").
//
// Structure follows LevelDB: an in-memory memtable; level 0 holding
// whole memtable flushes (tables may overlap, newest first); levels 1+
// holding sorted, non-overlapping runs, each level `size_ratio` times
// larger than the previous. Compaction merges one level-i table with the
// overlapping tables of level i+1, splitting output at the SSTable
// target size — the tuning knob this module exists to study under the
// affine model.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blockdev/byte_arena.h"
#include "lsm/memtable.h"
#include "lsm/sstable.h"
#include "sim/device.h"
#include "stats/metrics.h"
#include "stats/trace_buffer.h"

namespace damkit::lsm {

/// Compaction organization.
///   kLeveled — LevelDB-style: levels 1+ are single sorted runs; merging
///              rewrites overlapping data (higher write amp, 1 probe/level).
///   kTiered  — every level holds up to `level0_limit` overlapping runs;
///              a full level merges wholesale into the next (write amp
///              ~ depth, but up to level0_limit probes per level).
enum class CompactionStyle : uint8_t { kLeveled, kTiered };

struct LsmConfig {
  uint64_t memtable_bytes = 4 * 1024 * 1024;
  /// Compaction output split size — LevelDB's 2 MiB knob.
  uint64_t sstable_target_bytes = 2 * 1024 * 1024;
  uint64_t block_bytes = 4096;      // point-read granularity
  double bloom_bits_per_key = 10.0;
  size_t level0_limit = 4;          // flushes before L0→L1 compaction
  /// Blocks fetched per IO by scans and compactions (sequential access);
  /// point reads always fetch exactly one block.
  size_t scan_readahead_blocks = 32;
  /// Run IOs a compaction submits per device batch, interleaved across
  /// its input tables so they land on distinct extents (SSD dies serve
  /// them in parallel). 1 disables batching (serial per-run charging).
  size_t compaction_batch_ios = 8;
  uint64_t level1_bytes = 10 * 1024 * 1024;
  double size_ratio = 10.0;         // level i+1 / level i capacity
  CompactionStyle style = CompactionStyle::kLeveled;
  uint64_t base_offset = 0;         // device offset of the table arena
  /// Block codec for stored SSTable data blocks. Each block is framed
  /// individually, so point reads stay one-block IOs; saved bytes shrink
  /// the transfer term of every read, write, and compaction.
  blockdev::CodecKind codec = blockdev::CodecKind::kIdentity;
};

struct LsmStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t erases = 0;
  uint64_t scans = 0;
  uint64_t memtable_flushes = 0;
  uint64_t compactions = 0;
  uint64_t compaction_bytes_in = 0;
  uint64_t compaction_bytes_out = 0;
  uint64_t bloom_negative = 0;  // table probes skipped by the filter
  uint64_t table_probes = 0;    // tables consulted by point queries
  uint64_t compaction_batches = 0;      // device batches merges submitted
  uint64_t compaction_batched_ios = 0;  // run IOs inside those batches
  uint64_t flush_bytes_out = 0;         // L0 table bytes memtable flushes wrote
  uint64_t logical_bytes_written = 0;   // key+value bytes the user modified
};

class LsmTree {
 public:
  LsmTree(sim::Device& dev, sim::IoContext& io, LsmConfig config);
  ~LsmTree();

  LsmTree(const LsmTree&) = delete;
  LsmTree& operator=(const LsmTree&) = delete;

  void put(std::string_view key, std::string_view value);
  void erase(std::string_view key);
  std::optional<std::string> get(std::string_view key);
  /// Fallible variants: a non-OK status means some device IO gave up after
  /// retries. Mutations are applied to the memtable before any IO, so a
  /// failed put/erase is still durable in memory; a failed memtable flush
  /// or compaction leaves the previous tables (and the memtable) intact
  /// and is retried by the next operation that crosses the threshold.
  Status try_put(std::string_view key, std::string_view value);
  Status try_erase(std::string_view key);
  StatusOr<std::optional<std::string>> try_get(std::string_view key);

  /// Up to `limit` live pairs with key >= lo, in key order, merged across
  /// the memtable and every level (newest version wins).
  std::vector<std::pair<std::string, std::string>> scan(std::string_view lo,
                                                        size_t limit);
  StatusOr<std::vector<std::pair<std::string, std::string>>> try_scan(
      std::string_view lo, size_t limit);

  /// Force the memtable to disk (and any due compactions).
  void flush();
  Status try_flush();

  /// Retry policy for this tree's device IO (see blockdev::RetryPolicy).
  void set_retry_policy(const blockdev::RetryPolicy& policy) {
    retry_ = policy;
  }
  const blockdev::RetryPolicy& retry_policy() const { return retry_; }
  const blockdev::RetryCounters& retry_counters() const {
    return retry_counters_;
  }

  /// Levels' table counts, for introspection ([0] = L0).
  std::vector<size_t> level_table_counts() const;
  uint64_t level_bytes(size_t level) const;
  size_t level_count() const { return levels_.size(); }
  const LsmStats& stats() const { return stats_; }
  const LsmConfig& config() const { return config_; }
  sim::IoContext& io() { return *io_; }

  /// Invariants: levels 1+ sorted and non-overlapping; L0 ordered by
  /// recency; all tables alive; per-table keys within [min,max].
  void check_invariants() const;

  /// Compaction counts by source level ([0] = L0→L1). Tiered merges are
  /// attributed to the tier that overflowed.
  const std::vector<uint64_t>& compactions_by_level() const {
    return compactions_by_level_;
  }

  /// Structured-event sink for memtable flushes / compactions (nullptr
  /// disables).
  void set_event_trace(stats::TraceBuffer* events) { events_ = events; }

  /// Export op/compaction counters, per-level compaction counts
  /// (`<prefix>compactions.level<i>`), batch occupancy, per-level table
  /// counts/bytes, and write amplification under `prefix` (e.g. "lsm.").
  void export_metrics(stats::MetricsRegistry& reg,
                      std::string_view prefix) const;

 private:
  using Level = std::vector<SSTableRef>;  // L0: newest first; L1+: by key

  Status flush_memtable();
  Status maybe_compact();
  Status compact_level0();
  Status compact_level(size_t level);
  /// Tiered: merge every run of `level` into level+1 wholesale.
  Status compact_tier(size_t level);
  /// Merge `inputs` (newest first) into new tables, splitting at the
  /// target size when `split_output` (leveled) or producing one table per
  /// merge (tiered: a run is one table). `bottom` drops tombstones.
  /// `source_level` attributes the compaction for per-level counts.
  /// Transactional: on a non-OK return every output written so far has
  /// been released and the inputs are untouched.
  StatusOr<std::vector<SSTableRef>> merge_tables(
      const std::vector<SSTableRef>& inputs, bool bottom, size_t source_level,
      bool split_output = true);
  /// Charge `reqs` as device batches of `compaction_batch_ios`, retrying
  /// failed requests under the retry policy.
  Status charge_compaction_batches(std::vector<sim::IoRequest> reqs);
  uint64_t level_capacity(size_t level) const;
  void install_level1plus(size_t level, std::vector<SSTableRef> added,
                          const std::vector<SSTableRef>& removed);

  sim::Device* dev_;
  sim::IoContext* io_;
  LsmConfig config_;
  std::unique_ptr<blockdev::BlockCodec> codec_;  // nullptr = identity
  blockdev::ByteArena arena_;
  MemTable mem_;
  std::vector<Level> levels_;
  uint64_t next_sequence_ = 1;
  size_t compact_cursor_ = 0;  // round-robin pick within a level
  blockdev::RetryPolicy retry_;
  blockdev::RetryCounters retry_counters_;
  LsmStats stats_;
  std::vector<uint64_t> compactions_by_level_;  // index = source level
  stats::TraceBuffer* events_ = nullptr;
};

}  // namespace damkit::lsm
