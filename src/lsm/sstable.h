// Immutable sorted string tables (SSTables) on a simulated device — the
// LSM-tree's on-disk runs, modelled on LevelDB's format.
//
// On-device layout (one contiguous extent, written with a single
// sequential IO — compactions stream):
//
//   [ data block 0 | data block 1 | ... | (index + bloom, not re-read) ]
//
// The per-block index (first key, offset, length) and the Bloom filter
// are part of the written image but are kept resident in the in-memory
// handle after the table is opened, as LevelDB does once a table is in
// the table cache; point reads therefore cost one data-block IO.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "blockdev/byte_arena.h"
#include "blockdev/codec.h"
#include "blockdev/retry.h"
#include "sim/device.h"
#include "util/bloom.h"
#include "util/status.h"

namespace damkit::lsm {

/// A key/value pair or a deletion marker inside a table.
struct Entry {
  std::string key;
  std::string value;
  bool tombstone = false;
};

/// Zero-copy view of one entry inside a decoded block; valid until the
/// backing buffer is refilled (e.g. the iterator loads its next run).
struct EntryView {
  std::string_view key;
  std::string_view value;
  bool tombstone = false;

  Entry to_entry() const {
    return Entry{std::string(key), std::string(value), tombstone};
  }
};

class SSTable;
using SSTableRef = std::shared_ptr<const SSTable>;

/// Streams sorted entries into a new table image and writes it out.
class SSTableBuilder {
 public:
  /// `sequence` orders tables by recency (larger = newer). With a
  /// non-null `codec` each data block is stored as a compressed frame and
  /// the index addresses physical (compressed) block extents; the codec
  /// must outlive every table this builder produces. nullptr = identity.
  SSTableBuilder(sim::Device& dev, sim::IoContext& io,
                 blockdev::ByteArena& arena, uint64_t block_bytes,
                 double bloom_bits_per_key, uint64_t sequence,
                 const blockdev::BlockCodec* codec = nullptr);
  ~SSTableBuilder();

  /// Keys must arrive in strictly ascending order.
  void add(Entry entry);

  uint64_t entry_count() const { return count_; }
  uint64_t data_bytes() const { return data_.size() + block_.size(); }

  /// Write the table (one sequential device IO) and return its handle.
  /// The builder must not be reused. Returns nullptr if no entries.
  SSTableRef finish();
  /// Fallible finish with retry-with-backoff on the table write. On
  /// give-up the reserved extent is freed and no table exists — the
  /// builder's source data (e.g. the memtable) must be kept by the caller.
  StatusOr<SSTableRef> try_finish(const blockdev::RetryPolicy& policy,
                                  blockdev::RetryCounters* counters);

 private:
  void flush_block();

  sim::Device* dev_;
  sim::IoContext* io_;
  blockdev::ByteArena* arena_;
  uint64_t block_bytes_;
  double bloom_bits_;
  uint64_t sequence_;
  const blockdev::BlockCodec* codec_;

  std::vector<uint8_t> data_;    // completed (possibly compressed) blocks
  std::vector<uint8_t> block_;   // current block under construction (raw)
  std::vector<uint8_t> enc_;     // codec frame staging
  struct IndexEntry {
    std::string first_key;
    uint64_t offset;  // within the table image
    uint32_t length;
    uint32_t entries;
  };
  std::vector<IndexEntry> index_;
  std::vector<std::string> keys_seen_;  // for the bloom filter
  std::string first_key_, last_key_;
  uint64_t count_ = 0;
  bool finished_ = false;
};

/// An open, immutable table. Thread-compatible (const after creation).
class SSTable {
 public:
  ~SSTable();

  uint64_t sequence() const { return sequence_; }
  uint64_t entry_count() const { return entry_count_; }
  uint64_t data_bytes() const { return data_bytes_; }
  uint64_t total_bytes() const { return total_bytes_; }
  const std::string& min_key() const { return min_key_; }
  const std::string& max_key() const { return max_key_; }
  size_t block_count() const { return index_.size(); }

  /// True if [min_key, max_key] intersects [lo, hi] (inclusive bounds;
  /// empty strings are not special).
  bool overlaps(std::string_view lo, std::string_view hi) const;

  /// Bloom-filter probe (no IO). False ⇒ the key is definitely absent.
  bool may_contain(std::string_view key) const {
    return bloom_.may_contain(key);
  }

  /// Point lookup. Consults the bloom filter first (no IO); on a maybe,
  /// reads exactly one data block (charged to `io`). Returns nullopt if
  /// the key is not in this table; a tombstone returns an Entry with
  /// tombstone=true.
  std::optional<Entry> get(std::string_view key, sim::IoContext& io) const;
  /// Fallible lookup: the block read is retried under `policy` (transient
  /// faults only — a corrupt read has nothing to retry into), then the
  /// failure is surfaced.
  StatusOr<std::optional<Entry>> try_get(std::string_view key,
                                         sim::IoContext& io,
                                         const blockdev::RetryPolicy& policy,
                                         blockdev::RetryCounters* counters)
      const;

  /// Sequential cursor over entries with key >= lo. `readahead_blocks`
  /// blocks are fetched per IO (1 = strict point granularity; scans and
  /// compactions use larger runs — the affine model rewards exactly this).
  /// With charge_io = false the cursor reads payload only: the caller has
  /// already charged the run IOs (e.g. as one compaction-wide batch).
  class Iterator {
   public:
    bool valid() const { return valid_; }
    const EntryView& entry() const { return current_; }
    void next();
    /// Non-OK when the cursor stopped because a block read gave up after
    /// retries (valid() is then false). Callers that treat an invalid
    /// cursor as end-of-table MUST consult this or they silently truncate.
    const Status& status() const { return status_; }

   private:
    friend class SSTable;
    Iterator(const SSTable* table, sim::IoContext* io, std::string_view lo,
             size_t readahead_blocks, bool charge_io,
             const blockdev::RetryPolicy* policy,
             blockdev::RetryCounters* counters);
    void load_blocks(size_t first_block);

    const SSTable* table_ = nullptr;
    sim::IoContext* io_ = nullptr;
    size_t readahead_ = 1;
    bool charge_io_ = true;
    const blockdev::RetryPolicy* policy_ = nullptr;  // nullptr = fail fast
    blockdev::RetryCounters* counters_ = nullptr;
    Status status_;
    size_t next_block_ = 0;        // first block not yet fetched
    std::vector<uint8_t> run_;     // decoded current run, wire format
    size_t run_pos_ = 0;           // byte offset of the current record
    size_t run_remaining_ = 0;     // records left in run_ (incl. current)
    EntryView current_;            // borrows from run_
    bool valid_ = false;
  };
  Iterator seek(std::string_view lo, sim::IoContext& io,
                size_t readahead_blocks = 1, bool charge_io = true,
                const blockdev::RetryPolicy* policy = nullptr,
                blockdev::RetryCounters* counters = nullptr) const;

  /// The device reads a full sequential pass at `readahead_blocks` issues:
  /// one request per run of contiguous blocks. Used to precharge a
  /// compaction's input IOs as device batches before iterating with
  /// charge_io = false.
  std::vector<sim::IoRequest> run_requests(size_t readahead_blocks) const;

  /// Drop the table's device extent (called by the tree on obsolescence).
  /// Lifecycle operation, allowed on const handles: the table's *data*
  /// stays immutable; only its storage is reclaimed.
  void release() const;

 private:
  friend class SSTableBuilder;
  SSTable() = default;

  /// Read one data block (one device IO) and leave its decoded (raw,
  /// post-codec) wire-format bytes in `*raw`.
  Status try_fetch_block_raw(size_t block_idx, sim::IoContext& io,
                             const blockdev::RetryPolicy& policy,
                             blockdev::RetryCounters* counters,
                             std::vector<uint8_t>* raw) const;

  sim::Device* dev_ = nullptr;
  blockdev::ByteArena* arena_ = nullptr;
  const blockdev::BlockCodec* codec_ = nullptr;  // nullptr = identity
  uint64_t device_offset_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t data_bytes_ = 0;
  uint64_t entry_count_ = 0;
  uint64_t sequence_ = 0;
  std::string min_key_, max_key_;

  struct IndexEntry {
    std::string first_key;
    uint64_t offset;
    uint32_t length;
    uint32_t entries;
  };
  std::vector<IndexEntry> index_;
  BloomFilter bloom_{0};
  mutable bool released_ = false;
};

}  // namespace damkit::lsm
