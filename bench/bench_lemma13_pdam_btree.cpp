// Lemma 13 / §8: a B-tree with nodes of size P·B laid out in van Emde
// Boas block order achieves throughput Ω(k / log_{PB/k} N) for any k ≤ P
// concurrent clients — adapting obliviously as the client count varies.
//
// The bench sweeps k, measures queries/step under the PDAM scheduler for
// (a) the vEB layout, (b) the BFS layout ablation, and prints the model's
// prediction; it also contrasts the fixed-size alternatives (small nodes
// vs big plain nodes) that Lemma 13 dominates.
#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "harness/experiments.h"
#include "harness/report.h"
#include "model/pdam.h"
#include "pdam_tree/pdam_btree.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Lemma 13 — PDAM B-tree with vEB nodes vs client count",
                "Lemma 13, §8");

  const uint64_t n = args.quick ? 1ULL << 18 : 1ULL << 22;
  const int p = 16;
  const uint64_t block = 1024;

  Rng rng(args.seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.next() >> 1;
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  pdam_tree::PdamTreeConfig veb_cfg;
  veb_cfg.parallelism = p;
  veb_cfg.block_bytes = block;
  veb_cfg.slot_bytes = 16;
  veb_cfg.layout = pdam_tree::NodeLayout::kVeb;
  pdam_tree::PdamTreeConfig bfs_cfg = veb_cfg;
  bfs_cfg.layout = pdam_tree::NodeLayout::kBfs;

  const model::PdamModel model(p, block);

  const std::vector<int> clients = {1, 2, 4, 8, 16, 32};
  const uint64_t queries = args.quick ? 200 : 1000;
  const harness::PdamQueryRun veb = harness::run_pdam_tree_queries(
      keys, veb_cfg, clients, queries, args.seed + 1);
  const harness::PdamQueryRun bfs = harness::run_pdam_tree_queries(
      keys, bfs_cfg, clients, queries, args.seed + 1);
  DAMKIT_CHECK(veb.oracle_ok && bfs.oracle_ok);

  Table t({"clients k", "vEB q/step", "BFS q/step", "model Om(k/log)",
           "small-node q/step", "big-plain q/step"});
  for (size_t i = 0; i < clients.size(); ++i) {
    const int k = clients[i];
    const auto& rv = veb.points[i].result;
    const auto& rb = bfs.points[i].result;
    const double kk = std::min<double>(k, p);
    t.add_row({strfmt("%d", k), strfmt("%.3f", rv.throughput()),
               strfmt("%.3f", rb.throughput()),
               strfmt("%.3f", model.veb_btree_throughput(
                                  kk, static_cast<double>(keys.size()))),
               strfmt("%.3f", model.small_node_throughput(
                                  k, static_cast<double>(keys.size()))),
               strfmt("%.3f", model.big_plain_node_throughput(
                                  k, static_cast<double>(keys.size())))});
  }
  harness::emit("Lemma 13: query throughput vs concurrent clients", t,
                args.csv_prefix + "lemma13.csv");
  std::printf(
      "\npaper: with vEB nodes of size PB, one client gets the big-node "
      "optimum, P clients get the small-node optimum, and intermediate k "
      "degrades gracefully — no re-tuning.\n");
  std::printf("geometry: H=%d pivot levels, node height %d, %llu blocks/node\n",
              veb.global_height, veb.node_height,
              static_cast<unsigned long long>(veb.node_blocks));
  return 0;
}
