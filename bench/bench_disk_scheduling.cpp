// Extension experiment: disk scheduling changes α, and α changes designs.
//
// The affine model's setup cost s is not a constant of the hardware — it
// is a property of the request stream the arm actually serves. With an
// NCQ-style window the drive serves the nearest request (SSTF/SCAN),
// shrinking the effective s. This bench measures s under each policy and
// queue depth, re-fits the affine model, and shows how the Corollary-7
// optimal B-tree node size moves — closing the loop from the paper's
// ref [3] (disk scheduling) to its §5 (node sizing).
#include <vector>

#include "bench_common.h"
#include "harness/fitting.h"
#include "harness/report.h"
#include "model/tree_costs.h"
#include "sim/profiles.h"
#include "sim/scheduler.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace {

using namespace damkit;

std::vector<sim::TimedRequest> random_reads(uint64_t n, uint64_t io_bytes,
                                            uint64_t seed, uint64_t capacity) {
  Rng rng(seed);
  std::vector<sim::TimedRequest> reqs;
  reqs.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t off = rng.uniform(capacity / io_bytes - 1) * io_bytes;
    reqs.push_back({{sim::IoKind::kRead, off, io_bytes}, 0});
  }
  return reqs;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Disk scheduling vs the affine model (extension)",
                "§2.3 + ref [3] (Andrews-Bender-Zhang)");

  const sim::HddConfig hdd = sim::testbed_hdd_profile();
  const uint64_t n = args.quick ? 300 : 1000;

  // Part 1: effective per-IO time under each policy/depth (4 KiB reads).
  Table t({"policy", "queue depth", "ms per IO", "vs FIFO"});
  double fifo_ms = 0.0;
  for (const auto policy :
       {sim::SchedPolicy::kFifo, sim::SchedPolicy::kSstf,
        sim::SchedPolicy::kScan}) {
    for (const size_t depth : {size_t{1}, size_t{8}, size_t{32},
                               size_t{128}}) {
      if (policy == sim::SchedPolicy::kFifo && depth != 1) continue;
      sim::HddDevice dev(hdd, args.seed);
      const auto r = run_scheduled(
          dev, {policy, depth},
          random_reads(n, 4096, args.seed, dev.capacity_bytes()));
      const double ms = r.mean_seconds_per_io() * 1e3;
      if (policy == sim::SchedPolicy::kFifo) fifo_ms = ms;
      t.add_row({sim::sched_policy_name(policy), strfmt("%zu", depth),
                 strfmt("%.2f", ms), strfmt("%.2fx", fifo_ms / ms)});
    }
  }
  harness::emit("Effective per-IO time by scheduling policy", t,
                args.csv_prefix + "scheduling.csv");

  // Part 2: re-fit (s, t) under FIFO vs SCAN-32 and move Corollary 7.
  Table fit_table({"policy", "s (ms)", "t (us/4K)", "alpha",
                   "Cor-7 optimal node"});
  for (const auto& [name, policy, depth] :
       {std::tuple{"FIFO qd1", sim::SchedPolicy::kFifo, size_t{1}},
        std::tuple{"SCAN qd32", sim::SchedPolicy::kScan, size_t{32}}}) {
    std::vector<harness::AffineSample> samples;
    for (uint64_t io = 4 * kKiB; io <= 16 * kMiB; io *= 2) {
      sim::HddDevice dev(hdd, args.seed);
      const auto r = run_scheduled(
          dev, {policy, depth},
          random_reads(args.quick ? 48 : 128, io, args.seed ^ io,
                       dev.capacity_bytes()));
      samples.push_back({io, r.mean_seconds_per_io()});
    }
    const harness::AffineFit fit = fit_affine(samples);
    const double alpha_per_byte = fit.t_per_byte / fit.s;
    const double opt_elems =
        model::optimal_btree_node_size(alpha_per_byte * 128.0);  // per entry
    fit_table.add_row(
        {name, strfmt("%.1f", fit.s * 1e3), strfmt("%.1f", fit.t_per_4k * 1e6),
         strfmt("%.4f", fit.alpha),
         format_bytes(static_cast<uint64_t>(opt_elems * 128.0))});
  }
  harness::emit("Affine refit under scheduling; Corollary 7 moves",
                fit_table, args.csv_prefix + "scheduling_fit.csv");
  std::printf(
      "\nreading: reordering shrinks the effective setup cost s, raising "
      "alpha and shrinking the optimal B-tree node — the model's "
      "parameters belong to the (device x workload x scheduler) triple, "
      "not the device alone.\n");
  return 0;
}
