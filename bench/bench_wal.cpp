// BENCH_wal: is write-ahead logging an affine cost you can price from the
// model, and is it exactly free when switched off?
//
// The durability layer (src/wal/) adds one kind of device traffic: group
// commits, each a submit_batch of whole log blocks. Under the paper's
// affine lens a commit costs s + t·(blocks written) — a fixed setup per
// commit plus a per-block transfer term — so the total overhead of
// wrapping an engine must be predictable from two WAL counters alone:
//
//     sim_time(wal) − sim_time(plain)  ≈  s·commits + t·commit_blocks
//
// with (s, t) fitted, §4.2-style, from a bare-log microbenchmark on the
// same device (two record sizes → two (blocks/commit, secs/commit)
// points → a line). Three sections:
//
//   1. off switch — every workload runs twice without the wrapper; sim
//      time and state digest must be BIT-IDENTICAL (asserted). Durability
//      is opt-in, and opting out must change nothing.
//   2. transparency — the wrapped run's final state digest must equal the
//      plain run's (asserted): the WAL only adds traffic, never content.
//   3. affine overhead — measured overhead per engine vs the fitted
//      s·commits + t·blocks prediction, within 15% (asserted).
//
// CI gates the emitted JSON against bench/baselines/
// BENCH_wal_baseline.json via tools/check_bench_regression.py.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "damkit.h"

namespace {

using namespace damkit;

std::string key_of(uint64_t k) {
  return strfmt("%016llu", static_cast<unsigned long long>(k));
}

kv::EngineConfig engine_config() {
  kv::EngineConfig cfg;
  // Caches far below the working set: the plain runs must do real device
  // IO, so the overhead gate differentiates a live engine, not a memtable.
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 128 * kKiB;
  cfg.betree.node_bytes = 16 * kKiB;
  cfg.betree.cache_bytes = 96 * kKiB;
  cfg.lsm.memtable_bytes = 128 * kKiB;
  cfg.lsm.sstable_target_bytes = 128 * kKiB;
  cfg.lsm.level1_bytes = 1 * kMiB;
  return cfg;
}

// Commit every 8 mutations, auto-checkpoint off: the measured window then
// contains exactly the traffic the affine prediction prices.
wal::DurabilityConfig durability_config(uint64_t capacity_bytes) {
  wal::DurabilityConfig cfg = wal::default_durability_config(capacity_bytes);
  cfg.checkpoint_wal_bytes = 0;
  cfg.wal.group_ops = 8;
  return cfg;
}

// Mixed mutation stream: puts, upserts, and erases all produce WAL
// records (three frame types); gets keep the read path in the window.
void drive_ops(const bench::BenchArgs& args, kv::Dictionary& dict) {
  const uint64_t ops = args.quick ? 3'000 : 10'000;
  Rng rng(args.seed + 29);
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t id = rng.next() % ops;
    const uint64_t roll = rng.next() % 100;
    if (roll < 55) {
      dict.put(key_of(id), kv::make_value(id, 96));
    } else if (roll < 70) {
      dict.upsert(key_of(id), static_cast<int64_t>(id % 17) - 8);
    } else if (roll < 80) {
      dict.erase(key_of(id));
    } else {
      (void)dict.get(key_of(id));
    }
  }
}

struct RunOutcome {
  double sim_s = 0.0;      // measured window: ops only, construction excluded
  uint64_t digest = 0;     // state digest after the window
  uint64_t commits = 0;    // wal.commits (0 for plain runs)
  uint64_t blocks = 0;     // wal.commit_blocks
};

RunOutcome run_engine(const bench::BenchArgs& args, kv::EngineKind kind,
                      bool with_wal) {
  const sim::SsdConfig profile = sim::testbed_ssd_profile();
  sim::SsdDevice dev(profile);
  sim::IoContext io(dev);
  std::unique_ptr<kv::Dictionary> eng =
      kv::make_engine(kind, dev, io, engine_config());
  std::unique_ptr<wal::DurableEngine> durable;
  if (with_wal) {
    durable = std::make_unique<wal::DurableEngine>(
        std::move(eng), dev, io, durability_config(profile.capacity_bytes));
  }
  kv::Dictionary& dict = with_wal ? *durable : *eng;

  const sim::SimTime start = io.now();
  drive_ops(args, dict);
  // Flush the group buffer so the window covers every record's commit —
  // without forcing a checkpoint (snapshot traffic is priced separately).
  if (with_wal) DAMKIT_CHECK_OK(durable->log().commit());
  RunOutcome out;
  out.sim_s = sim::to_seconds(io.now() - start);
  out.digest = harness::state_digest(dict);
  if (with_wal) {
    stats::MetricsRegistry reg;
    durable->export_metrics(reg, "e.");
    out.commits = reg.counter("e.wal.commits");
    out.blocks = reg.counter("e.wal.commit_blocks");
  }
  dict.abandon();  // measured state only; no teardown flush
  return out;
}

// §4.2-style fit of the commit cost: append/commit a bare log at the same
// region with two record sizes; each run yields one (blocks-per-commit,
// seconds-per-commit) point, and the line through them is (s, t).
struct AffineFit {
  double s = 0.0;        // seconds per commit (setup)
  double t_block = 0.0;  // seconds per committed block (transfer)
};

struct CalPoint {
  double per_commit_s = 0.0;
  double blocks_per_commit = 0.0;
};

CalPoint calibrate_point(const bench::BenchArgs& args, size_t value_bytes) {
  const sim::SsdConfig profile = sim::testbed_ssd_profile();
  sim::SsdDevice dev(profile);
  sim::IoContext io(dev);
  const wal::DurabilityConfig cfg = durability_config(profile.capacity_bytes);
  wal::WriteAheadLog log(dev, io, cfg.wal);
  DAMKIT_CHECK_OK(log.reset(1));

  const uint64_t records = args.quick ? 2'000 : 6'000;
  const std::string value(value_bytes, 'w');
  const sim::SimTime start = io.now();
  for (uint64_t lsn = 1; lsn <= records; ++lsn) {
    DAMKIT_CHECK_OK(log.append(wal::WriteAheadLog::RecordType::kPut,
                               key_of(lsn), value, lsn));
  }
  DAMKIT_CHECK_OK(log.commit());
  const double elapsed = sim::to_seconds(io.now() - start);

  stats::MetricsRegistry reg;
  log.export_metrics(reg, "c.");
  const double commits = static_cast<double>(reg.counter("c.wal.commits"));
  CalPoint point;
  point.per_commit_s = elapsed / commits;
  point.blocks_per_commit =
      static_cast<double>(reg.counter("c.wal.commit_blocks")) / commits;
  return point;
}

AffineFit calibrate(const bench::BenchArgs& args) {
  // 24-byte values: a commit is mostly a single tail-block rewrite.
  // 1500-byte values: several fresh blocks per commit. The spread pins t.
  const CalPoint a = calibrate_point(args, 24);
  const CalPoint b = calibrate_point(args, 1'500);
  AffineFit fit;
  fit.t_block = (b.per_commit_s - a.per_commit_s) /
                (b.blocks_per_commit - a.blocks_per_commit);
  fit.s = a.per_commit_s - fit.t_block * a.blocks_per_commit;
  return fit;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.metrics_json.empty()) args.metrics_json = "BENCH_wal.json";
  bench::banner("write-ahead logging as an affine cost",
                "§4.2 extension: commit traffic priced as s + t*blocks");

  const AffineFit fit = calibrate(args);
  std::printf("bare-log fit: s = %.1f us/commit, t = %.1f us/block\n",
              fit.s * 1e6, fit.t_block * 1e6);

  const std::vector<kv::EngineKind> kinds = {
      kv::EngineKind::kBTree, kv::EngineKind::kBeTree, kv::EngineKind::kLsm};
  // Per kind: plain, plain again (bit-identical gate), wrapped.
  std::vector<RunOutcome> runs(kinds.size() * 3);
  harness::parallel_sweep(runs.size(), args.threads, [&](size_t i) {
    runs[i] = run_engine(args, kinds[i / 3], (i % 3) == 2);
  });

  int failures = 0;
  stats::MetricsRegistry reg;
  reg.set("wal.cal.setup_us_per_commit", fit.s * 1e6);
  reg.set("wal.cal.transfer_us_per_block", fit.t_block * 1e6);
  Table table({"engine", "off_sim_s", "on_sim_s", "commits", "blocks",
               "overhead_s", "predicted_s", "err%"});
  for (size_t k = 0; k < kinds.size(); ++k) {
    const std::string name(kv::engine_kind_name(kinds[k]));
    const RunOutcome& off1 = runs[k * 3];
    const RunOutcome& off2 = runs[k * 3 + 1];
    const RunOutcome& on = runs[k * 3 + 2];

    if (off1.sim_s != off2.sim_s || off1.digest != off2.digest) {
      std::fprintf(stderr,
                   "FAIL %s: WAL-off reruns differ (%.9f s vs %.9f s, "
                   "digest %016llx vs %016llx) — the off switch is not "
                   "bit-identical\n",
                   name.c_str(), off1.sim_s, off2.sim_s,
                   static_cast<unsigned long long>(off1.digest),
                   static_cast<unsigned long long>(off2.digest));
      ++failures;
    }
    if (on.digest != off1.digest) {
      std::fprintf(stderr,
                   "FAIL %s: wrapped digest %016llx != plain %016llx — the "
                   "WAL changed engine contents\n",
                   name.c_str(), static_cast<unsigned long long>(on.digest),
                   static_cast<unsigned long long>(off1.digest));
      ++failures;
    }

    const double overhead = on.sim_s - off1.sim_s;
    const double predicted = fit.s * static_cast<double>(on.commits) +
                             fit.t_block * static_cast<double>(on.blocks);
    const double err = std::abs(overhead - predicted) / predicted;
    if (err > 0.15) {
      std::fprintf(stderr,
                   "FAIL %s: measured WAL overhead %.4f s is %.1f%% off "
                   "s*commits + t*blocks = %.4f s (limit 15%%)\n",
                   name.c_str(), overhead, err * 100.0, predicted);
      ++failures;
    }

    reg.set("wal.off." + name + ".sim_seconds", off1.sim_s);
    reg.set("wal.on." + name + ".sim_seconds", on.sim_s);
    reg.set("wal.overhead." + name + ".measured_s", overhead);
    reg.set("wal.overhead." + name + ".predicted_s", predicted);
    reg.set("wal.overhead." + name + ".tracking_error", err);
    table.add_row({name, strfmt("%.4f", off1.sim_s), strfmt("%.4f", on.sim_s),
                   strfmt("%llu", static_cast<unsigned long long>(on.commits)),
                   strfmt("%llu", static_cast<unsigned long long>(on.blocks)),
                   strfmt("%.4f", overhead), strfmt("%.4f", predicted),
                   strfmt("%.1f", err * 100.0)});
  }
  harness::emit("WAL overhead vs s*commits + t*blocks (testbed SSD)", table,
                args.csv_prefix + "wal_overhead.csv");
  std::printf(
      "model: the wrapper adds only group commits; their cost is affine in\n"
      "commit count (setup) and committed blocks (transfer), with (s, t)\n"
      "fitted from a bare-log microbenchmark on the same device.\n");

  if (failures > 0) {
    std::fprintf(stderr, "%d WAL model check(s) FAILED\n", failures);
  }
  const bool wrote = bench::write_metrics_json(reg, args.metrics_json);
  return (failures == 0 && wrote) ? 0 : 1;
}
