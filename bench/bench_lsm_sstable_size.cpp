// Extension experiment: SSTable-size sensitivity of an LSM-tree under
// the affine model.
//
// §1 of the paper: "Nor does [the DAM] explain why ... LevelDB's LSM-tree
// uses 2 MiB SSTables for all workloads." In the DAM every table size is
// equivalent; in the affine model, compaction IO is sequential (cost
// ~ αx per byte once tables amortize the setup) while point queries pay
// one block read per probed table — so table size trades compaction
// efficiency against level geometry exactly like the Bε-tree's B. This
// bench sweeps the SSTable target size on the paper's testbed HDD and
// prints insert cost, query cost, and write amplification.
#include <memory>

#include "bench_common.h"
#include "harness/report.h"
#include "kv/engine.h"
#include "kv/slice.h"
#include "lsm/lsm_tree.h"
#include "sim/profiles.h"
#include "stats/metrics.h"
#include "util/bytes.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("LSM-tree SSTable-size sweep (extension)",
                "§1 discussion of LevelDB's 2 MiB SSTables");

  const uint64_t items = args.quick ? 60'000 : 300'000;
  const uint64_t queries = args.quick ? 200 : 600;
  const size_t value_bytes = 100;

  Table t({"SSTable size", "insert (ms/op)", "query (ms/op)", "write amp",
           "compactions", "levels"});
  for (const uint64_t sstable :
       {64 * kKiB, 256 * kKiB, 1 * kMiB, 2 * kMiB, 8 * kMiB, 32 * kMiB}) {
    sim::HddDevice dev(sim::testbed_hdd_profile(), args.seed);
    sim::IoContext io(dev);
    kv::EngineConfig cfg;
    cfg.lsm.memtable_bytes = 1 * kMiB;
    cfg.lsm.sstable_target_bytes = sstable;
    cfg.lsm.block_bytes = 4096;
    cfg.lsm.level1_bytes = 8 * kMiB;
    cfg.lsm.size_ratio = 10.0;
    const auto tree = kv::make_engine(kv::EngineKind::kLsm, dev, io, cfg);

    // Load phase (random order; the LSM makes it all sequential IO).
    Rng rng(args.seed);
    dev.clear_stats();
    const sim::SimTime t0 = io.now();
    for (uint64_t i = 0; i < items; ++i) {
      const uint64_t id = i * 2654435761 % (4 * items);
      tree->put(kv::encode_key(id, 16), kv::make_value(id, value_bytes));
    }
    tree->flush();
    const sim::SimTime t1 = io.now();
    const double insert_ms =
        sim::to_seconds(t1 - t0) * 1e3 / static_cast<double>(items);
    const double wamp = static_cast<double>(dev.stats().bytes_written) /
                        (static_cast<double>(items) * (16.0 + value_bytes));

    // Query phase.
    const sim::SimTime q0 = io.now();
    uint64_t hits = 0;
    for (uint64_t q = 0; q < queries; ++q) {
      const uint64_t id =
          (rng.uniform(items)) * 2654435761 % (4 * items);
      hits += tree->get(kv::encode_key(id, 16)).has_value() ? 1 : 0;
    }
    const double query_ms = sim::to_seconds(io.now() - q0) * 1e3 /
                            static_cast<double>(queries);
    DAMKIT_CHECK(hits == queries);

    stats::MetricsRegistry reg;
    tree->export_metrics(reg, "lsm.");
    t.add_row({format_bytes(sstable), strfmt("%.3f", insert_ms),
               strfmt("%.2f", query_ms), strfmt("%.1f", wamp),
               strfmt("%llu", static_cast<unsigned long long>(
                                  reg.counter("lsm.compactions"))),
               strfmt("%zu", tree->height())});
  }
  harness::emit("LSM: cost vs SSTable target size", t,
                args.csv_prefix + "lsm_sstable.csv");

  // Leveled vs tiered compaction — the write-amp/read-amp dial the
  // paper's Theorem 4(4) analysis generalizes across WODs.
  Table styles({"compaction", "insert (ms/op)", "query (ms/op)",
                "write amp", "table probes/query"});
  for (const auto style :
       {lsm::CompactionStyle::kLeveled, lsm::CompactionStyle::kTiered}) {
    sim::HddDevice dev(sim::testbed_hdd_profile(), args.seed);
    sim::IoContext io(dev);
    kv::EngineConfig cfg;
    cfg.lsm.memtable_bytes = 1 * kMiB;
    cfg.lsm.sstable_target_bytes = 2 * kMiB;
    cfg.lsm.level1_bytes = 8 * kMiB;
    cfg.lsm.size_ratio = 10.0;
    cfg.lsm.style = style;
    const auto tree = kv::make_engine(kv::EngineKind::kLsm, dev, io, cfg);
    Rng rng(args.seed);
    dev.clear_stats();
    const sim::SimTime t0 = io.now();
    for (uint64_t i = 0; i < items; ++i) {
      const uint64_t id = i * 2654435761 % (4 * items);
      tree->put(kv::encode_key(id, 16), kv::make_value(id, value_bytes));
    }
    tree->flush();
    const double insert_ms =
        sim::to_seconds(io.now() - t0) * 1e3 / static_cast<double>(items);
    const double wamp = static_cast<double>(dev.stats().bytes_written) /
                        (static_cast<double>(items) * (16.0 + value_bytes));
    stats::MetricsRegistry before;
    tree->export_metrics(before, "lsm.");
    const uint64_t probes_before = before.counter("lsm.table_probes");
    const sim::SimTime q0 = io.now();
    for (uint64_t q = 0; q < queries; ++q) {
      const uint64_t id = (rng.uniform(items)) * 2654435761 % (4 * items);
      if (!tree->get(kv::encode_key(id, 16)).has_value()) std::abort();
    }
    const double query_ms = sim::to_seconds(io.now() - q0) * 1e3 /
                            static_cast<double>(queries);
    styles.add_row(
        {style == lsm::CompactionStyle::kLeveled ? "leveled" : "tiered",
         strfmt("%.3f", insert_ms), strfmt("%.2f", query_ms),
         strfmt("%.1f", wamp),
         strfmt("%.1f", [&] {
           stats::MetricsRegistry after;
           tree->export_metrics(after, "lsm.");
           return static_cast<double>(after.counter("lsm.table_probes") -
                                      probes_before) /
                  static_cast<double>(queries);
         }())});
  }
  harness::emit("LSM: leveled vs tiered compaction", styles,
                args.csv_prefix + "lsm_styles.csv");
  std::printf(
      "\nreading: below ~1 MiB, per-table setup costs (seeks between many "
      "small compaction inputs, per-table metadata) raise insert cost and "
      "write amp; beyond it the curve is nearly flat — the same 'large "
      "nodes, low sensitivity' behaviour the paper proves for Be-trees "
      "(Table 3) and that lets LevelDB ship one 2 MiB size for all "
      "workloads. The DAM charges every choice identically and cannot "
      "express this question.\n");
  return 0;
}
