// Figure 2: ms per query/insert vs node size for a B-tree on an HDD
// (the paper's BerkeleyDB experiment), with the fitted affine overlay.
//
// Procedure (§7, scaled): bulk-load the data set, cap RAM at a quarter of
// it, then time random point queries and random inserts at each node
// size. Paper: costs grow once nodes exceed ~64 KiB, then roughly
// linearly with node size.
#include "bench_common.h"
#include "harness/experiments.h"
#include "harness/report.h"
#include "sim/profiles.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 2 — B-tree node-size sweep on HDD", "Figure 2, §7");

  harness::SweepConfig cfg;
  cfg.kind = kv::EngineKind::kBTree;
  cfg.node_sizes = {4 * kKiB, 16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB};
  cfg.items = args.quick ? 200'000 : 1'000'000;
  cfg.queries = args.quick ? 200 : 1000;
  cfg.inserts = args.quick ? 200 : 1000;
  cfg.cache_ratio = 0.25;  // paper: 4 GiB RAM / 16 GiB data
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  std::printf(
      "scale note: %llu items x %zu B values (paper: 16 GB data); cache = "
      "data/4 as in the paper\n",
      static_cast<unsigned long long>(cfg.items), cfg.value_bytes);

  const auto res = run_nodesize_sweep(sim::testbed_hdd_profile(), cfg);
  const Table fig = harness::make_sweep_figure(res);
  harness::emit("Figure 2: BerkeleyDB-style B-tree, ms/op vs node size", fig,
                args.csv_prefix + "fig2.csv");
  std::printf(
      "\npaper: optimum near 16-64 KiB; past it, query and insert cost grow "
      "roughly linearly with node size (20 -> 80 ms/op over the sweep).\n");
  return 0;
}
