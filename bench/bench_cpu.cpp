// Wall-clock CPU tier (ROADMAP item 5): host-time microsections over the
// node layer plus an end-to-end ops/sec section per engine. Every other
// bench gates *simulated* time; this one gates the constant factors the
// simulator cannot see — exactly the gap Didona et al. measure between
// modeled and observed tree performance on fast devices (PAPERS.md).
//
// Sections
//   cpu.search.*    interior-node search: legacy vector<string> binary
//                   search vs branchless search on the slotted image.
//   cpu.insert.*    leaf insert into a slotted page vs legacy vectors.
//   cpu.roundtrip.* serialize + deserialize of a full leaf: legacy
//                   per-entry parse/alloc vs memcpy + one header walk.
//   cpu.e2e.*       WorkloadRunner ops/sec per engine on a small-cache
//                   config (heavy node (de)serialization traffic).
//
// All gauges are medians of N repetitions on steady_clock. The legacy
// reference implementations live in this file on purpose: the speedup
// gates are same-binary, same-machine ratios, so they hold anywhere,
// unlike absolute nanoseconds. The e2e section is additionally compared
// against the pre-refactor ops/sec captured in
// bench/baselines/BENCH_cpu_baseline.json by check_bench_regression.py's
// wall-clock mode (hard locally, advisory in CI: DAMKIT_CPU_GATE).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "harness/workload_runner.h"
#include "kv/engine.h"
#include "kv/slice.h"
#include "node/slotted_page.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/status.h"

namespace damkit {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ns(Clock::time_point t0, Clock::time_point t1) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Median wall-clock nanoseconds of `reps` runs of `fn`.
template <typename Fn>
double median_wall_ns(int reps, Fn&& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point t0 = Clock::now();
    fn();
    const Clock::time_point t1 = Clock::now();
    samples.push_back(elapsed_ns(t0, t1));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Min wall-clock nanoseconds of `reps` runs — the noise-robust estimator
/// for pure-CPU microsections (interference is strictly additive).
template <typename Fn>
double min_wall_ns(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    const Clock::time_point t0 = Clock::now();
    fn();
    const Clock::time_point t1 = Clock::now();
    const double ns = elapsed_ns(t0, t1);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

// Defeat dead-code elimination without perturbing the measured loop.
volatile uint64_t g_sink = 0;

// ---------------------------------------------------------------------------
// Legacy reference node: the pre-refactor in-memory layout (one owned
// std::string per key/value, parsed entry-by-entry), kept verbatim here so
// the micro sections measure slotted-vs-legacy in the same binary.
// ---------------------------------------------------------------------------

struct LegacyLeaf {
  std::vector<std::string> keys;
  std::vector<std::string> values;
};

/// Pre-refactor deserialize: per-entry header decode + two heap strings.
LegacyLeaf legacy_parse(const std::vector<uint8_t>& image, uint32_t count) {
  LegacyLeaf node;
  node.keys.reserve(count);
  node.values.reserve(count);
  const uint8_t* p = image.data();
  for (uint32_t i = 0; i < count; ++i) {
    uint16_t klen;
    uint32_t vlen;
    std::memcpy(&klen, p, sizeof klen);
    std::memcpy(&vlen, p + 2, sizeof vlen);
    p += 6;
    node.keys.emplace_back(reinterpret_cast<const char*>(p), klen);
    p += klen;
    node.values.emplace_back(reinterpret_cast<const char*>(p), vlen);
    p += vlen;
  }
  return node;
}

/// Pre-refactor serialize: re-encode every entry into a fresh buffer.
void legacy_serialize(const LegacyLeaf& node, std::vector<uint8_t>* out) {
  out->clear();
  for (size_t i = 0; i < node.keys.size(); ++i) {
    const uint16_t klen = static_cast<uint16_t>(node.keys[i].size());
    const uint32_t vlen = static_cast<uint32_t>(node.values[i].size());
    const size_t at = out->size();
    out->resize(at + 6 + klen + vlen);
    std::memcpy(out->data() + at, &klen, sizeof klen);
    std::memcpy(out->data() + at + 2, &vlen, sizeof vlen);
    std::memcpy(out->data() + at + 6, node.keys[i].data(), klen);
    std::memcpy(out->data() + at + 6 + klen, node.values[i].data(), vlen);
  }
}

/// The pre-refactor kv::compare, verbatim: out-of-line (it lived in
/// slice.cpp) and memcmp-based. The legacy reference must pay exactly the
/// comparison cost the old binary paid.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((noinline))
#endif
int legacy_compare(std::string_view a, std::string_view b) {
  const size_t n = std::min(a.size(), b.size());
  const int c = n == 0 ? 0 : std::memcmp(a.data(), b.data(), n);
  if (c != 0) return c;
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

size_t legacy_lower_bound(const std::vector<std::string>& keys,
                          std::string_view key) {
  return static_cast<size_t>(
      std::lower_bound(keys.begin(), keys.end(), key,
                       [](const std::string& a, std::string_view b) {
                         return legacy_compare(a, b) < 0;
                       }) -
      keys.begin());
}

/// A leaf image with `count` entries in the on-disk record format, plus
/// the probe keys the search sections use.
struct LeafFixture {
  std::vector<uint8_t> image;
  uint32_t count = 0;
  std::vector<std::string> probes;
};

LeafFixture make_leaf_fixture(uint32_t count, size_t key_bytes,
                              size_t value_bytes, uint64_t seed) {
  LeafFixture fx;
  fx.count = count;
  Rng rng(seed);
  for (uint32_t i = 0; i < count; ++i) {
    // Spread ids so probe misses land between entries.
    const std::string key = kv::encode_key(i * 3 + 1, key_bytes);
    const std::string value = kv::make_value(i, value_bytes);
    const uint16_t klen = static_cast<uint16_t>(key.size());
    const uint32_t vlen = static_cast<uint32_t>(value.size());
    const size_t at = fx.image.size();
    fx.image.resize(at + 6 + klen + vlen);
    std::memcpy(fx.image.data() + at, &klen, sizeof klen);
    std::memcpy(fx.image.data() + at + 2, &vlen, sizeof vlen);
    std::memcpy(fx.image.data() + at + 6, key.data(), klen);
    std::memcpy(fx.image.data() + at + 6 + klen, value.data(), vlen);
  }
  for (int i = 0; i < 4096; ++i) {
    fx.probes.push_back(
        kv::encode_key(rng.uniform(static_cast<uint64_t>(count) * 3 + 2),
                       key_bytes));
  }
  return fx;
}

node::SlottedPage slotted_from_fixture(const LeafFixture& fx) {
  node::SlottedPage page;
  page.build_from_image(fx.image.data(), fx.image.size(), fx.count,
                        [](const uint8_t* p) {
                          uint16_t klen;
                          uint32_t vlen;
                          std::memcpy(&klen, p, sizeof klen);
                          std::memcpy(&vlen, p + 2, sizeof vlen);
                          return size_t{6} + klen + vlen;
                        });
  return page;
}

std::string_view slotted_key(const node::SlottedPage& page, size_t i) {
  const std::string_view rec = page.record(i);
  uint16_t klen;
  std::memcpy(&klen, rec.data(), sizeof klen);
  return rec.substr(6, klen);
}

// ---------------------------------------------------------------------------
// cpu.search — interior-node search, legacy vs slotted.
// ---------------------------------------------------------------------------

void section_search(const bench::BenchArgs& args, stats::MetricsRegistry* reg) {
  // Interior-node search the way a tree descent sees it: a cache-resident
  // *set* of interior nodes probed in random order. The legacy layout pays
  // two cache lines per comparison (string object + heap chars) over a 2x
  // footprint; the slotted page keeps each node's pivots contiguous and
  // reads the key straight out of the slot (record length implies key
  // length — no header decode on the compare path).
  //
  // The fixture size is the same in quick and full mode on purpose: this
  // is the gated ratio, and the fixture models the *cached* interior
  // level (the scenario node caching exists for). Full mode buys a
  // tighter estimator — more iterations and reps — not a different
  // working set, whose cache residency would change what is measured.
  const uint32_t nodes = 48;
  const uint32_t pivots = 512;  // a 16KiB node's worth of 16-byte pivots
  std::vector<std::vector<std::string>> legacy(nodes);
  std::vector<node::SlottedPage> slotted(nodes);
  for (uint32_t n = 0; n < nodes; ++n) {
    std::vector<uint8_t> image;
    for (uint32_t i = 0; i < pivots; ++i) {
      const std::string key =
          kv::encode_key((uint64_t{n} * pivots + i) * 3 + 1, 16);
      legacy[n].push_back(key);
      const uint16_t klen = static_cast<uint16_t>(key.size());
      const size_t at = image.size();
      image.resize(at + 2 + key.size());
      std::memcpy(image.data() + at, &klen, sizeof klen);
      std::memcpy(image.data() + at + 2, key.data(), key.size());
    }
    slotted[n].build_from_image(image.data(), image.size(), pivots,
                                [](const uint8_t* p) {
                                  uint16_t klen;
                                  std::memcpy(&klen, p, sizeof klen);
                                  return size_t{2} + klen;
                                });
  }
  const auto pivot_key = [](std::string_view rec) { return rec.substr(2); };

  Rng rng(args.seed);
  struct Probe {
    uint32_t node;
    std::string key;
  };
  std::vector<Probe> probes;
  for (int i = 0; i < 8192; ++i) {
    probes.push_back(
        {static_cast<uint32_t>(rng.uniform(nodes)),
         kv::encode_key(rng.uniform(uint64_t{nodes} * pivots * 3 + 2), 16)});
  }

  // More reps than the other microsections: this is the gated ratio, and
  // min-of-reps tightens monotonically with rep count.
  const int iters = args.quick ? 100 : 300;
  const int reps = args.quick ? 11 : 15;

  const double legacy_ns = min_wall_ns(reps, [&] {
    uint64_t acc = 0;
    for (int it = 0; it < iters; ++it) {
      for (const Probe& probe : probes) {
        acc += legacy_lower_bound(legacy[probe.node], probe.key);
      }
    }
    g_sink += acc;
  });
  const double slotted_ns = min_wall_ns(reps, [&] {
    uint64_t acc = 0;
    for (int it = 0; it < iters; ++it) {
      for (const Probe& probe : probes) {
        acc += slotted[probe.node].lower_bound(probe.key, pivot_key);
      }
    }
    g_sink += acc;
  });

  const double speedup = legacy_ns / std::max(slotted_ns, 1.0);
  reg->set("cpu.search.legacy_wall_ns", legacy_ns);
  reg->set("cpu.search.slotted_wall_ns", slotted_ns);
  reg->set("cpu.search.speedup_ratio", speedup);
  std::printf("cpu.search: legacy %.0f ns, slotted %.0f ns, speedup %.2fx\n",
              legacy_ns, slotted_ns, speedup);
}

// ---------------------------------------------------------------------------
// cpu.insert — leaf insert at random positions, legacy vs slotted.
// ---------------------------------------------------------------------------

void section_insert(const bench::BenchArgs& args, stats::MetricsRegistry* reg) {
  const uint32_t count = 256;
  const LeafFixture fx = make_leaf_fixture(count, 16, 100, args.seed + 1);
  const int iters = args.quick ? 50 : 200;
  const int reps = args.quick ? 5 : 9;
  const std::string key = kv::encode_key(1, 16);
  const std::string value = kv::make_value(99, 100);

  const double legacy_ns = min_wall_ns(reps, [&] {
    for (int it = 0; it < iters; ++it) {
      LegacyLeaf node = legacy_parse(fx.image, fx.count);
      Rng rng(args.seed + static_cast<uint64_t>(it));
      for (int i = 0; i < 64; ++i) {
        const size_t pos = rng.uniform(node.keys.size() + 1);
        node.keys.insert(node.keys.begin() + static_cast<long>(pos), key);
        node.values.insert(node.values.begin() + static_cast<long>(pos),
                           value);
      }
      g_sink += node.keys.size();
    }
  });
  const double slotted_ns = min_wall_ns(reps, [&] {
    for (int it = 0; it < iters; ++it) {
      node::SlottedPage page = slotted_from_fixture(fx);
      Rng rng(args.seed + static_cast<uint64_t>(it));
      for (int i = 0; i < 64; ++i) {
        const size_t pos = rng.uniform(page.count() + 1);
        uint8_t* rec = page.insert_alloc(pos, 6 + key.size() + value.size());
        const uint16_t klen = static_cast<uint16_t>(key.size());
        const uint32_t vlen = static_cast<uint32_t>(value.size());
        std::memcpy(rec, &klen, sizeof klen);
        std::memcpy(rec + 2, &vlen, sizeof vlen);
        std::memcpy(rec + 6, key.data(), key.size());
        std::memcpy(rec + 6 + key.size(), value.data(), value.size());
      }
      g_sink += page.count();
    }
  });

  const double speedup = legacy_ns / std::max(slotted_ns, 1.0);
  reg->set("cpu.insert.legacy_wall_ns", legacy_ns);
  reg->set("cpu.insert.slotted_wall_ns", slotted_ns);
  reg->set("cpu.insert.speedup_ratio", speedup);
  std::printf("cpu.insert: legacy %.0f ns, slotted %.0f ns, speedup %.2fx\n",
              legacy_ns, slotted_ns, speedup);
}

// ---------------------------------------------------------------------------
// cpu.roundtrip — full-leaf serialize + deserialize, legacy vs slotted.
// ---------------------------------------------------------------------------

void section_roundtrip(const bench::BenchArgs& args,
                       stats::MetricsRegistry* reg) {
  const uint32_t count = 256;
  const LeafFixture fx = make_leaf_fixture(count, 16, 100, args.seed + 2);
  const int iters = args.quick ? 200 : 1000;
  const int reps = args.quick ? 5 : 9;

  const double legacy_ns = min_wall_ns(reps, [&] {
    std::vector<uint8_t> out;
    for (int it = 0; it < iters; ++it) {
      const LegacyLeaf node = legacy_parse(fx.image, fx.count);
      legacy_serialize(node, &out);
      g_sink += out.size();
    }
  });
  const double slotted_ns = min_wall_ns(reps, [&] {
    std::vector<uint8_t> out;
    for (int it = 0; it < iters; ++it) {
      const node::SlottedPage page = slotted_from_fixture(fx);
      out.clear();
      page.write_to(&out);
      g_sink += out.size();
    }
  });

  const double speedup = legacy_ns / std::max(slotted_ns, 1.0);
  reg->set("cpu.roundtrip.legacy_wall_ns", legacy_ns);
  reg->set("cpu.roundtrip.slotted_wall_ns", slotted_ns);
  reg->set("cpu.roundtrip.speedup_ratio", speedup);
  std::printf(
      "cpu.roundtrip: legacy %.0f ns, slotted %.0f ns, speedup %.2fx\n",
      legacy_ns, slotted_ns, speedup);
}

// ---------------------------------------------------------------------------
// cpu.e2e — WorkloadRunner ops/sec per engine.
// ---------------------------------------------------------------------------

kv::EngineConfig e2e_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 256 * kKiB;
  cfg.betree.node_bytes = 32 * kKiB;
  cfg.betree.cache_bytes = 256 * kKiB;
  cfg.lsm.memtable_bytes = 64 * kKiB;
  cfg.lsm.sstable_target_bytes = 128 * kKiB;
  cfg.pdam.buffer_bytes = 64 * kKiB;
  return cfg;
}

kv::WorkloadSpec e2e_spec(uint64_t seed) {
  kv::WorkloadSpec spec;
  spec.key_space = 20000;
  spec.value_bytes = 100;
  spec.get_weight = 0.35;
  spec.put_weight = 0.35;
  spec.delete_weight = 0.1;
  spec.scan_weight = 0.05;
  spec.upsert_weight = 0.15;
  spec.scan_length = 40;
  spec.seed = seed;
  return spec;
}

/// Pre-refactor ops/sec (median of 5, Release, this repo's CI-class host)
/// captured at commit 9d91982, immediately before the slotted-layout port.
/// The in-binary gate uses these only when DAMKIT_CPU_GATE=hard; the
/// checked-in BENCH_cpu_baseline.json is the portable regression surface.
struct E2eBaseline {
  const char* engine;
  double ops_per_sec;
};
constexpr E2eBaseline kPreRefactorOpsPerSec[] = {
    {"btree", 85638.0},  {"betree", 69910.0}, {"opt-betree", 87529.0},
    {"lsm", 78006.0},    {"pdam", 322001.0},
};

void section_e2e(const bench::BenchArgs& args, stats::MetricsRegistry* reg,
                 bool* any_e2e_gate_pass) {
  const uint64_t ops = args.quick ? 8000 : 40000;
  const uint64_t load = args.quick ? 4000 : 10000;
  const int reps = args.quick ? 3 : 5;
  kv::WorkloadSpec spec = e2e_spec(args.seed);
  if (args.workload_spec.has_value()) {
    // --workload swaps in a named scenario (YCSB A-F / shift / olap) at
    // the e2e section's scale. The pre-refactor baselines were captured
    // on the default mix, so the uplift gate is skipped for presets.
    spec = *args.workload_spec;
    spec.key_space = 20000;
    spec.value_bytes = 100;
    spec.seed = args.seed;
    std::printf("cpu.e2e: workload preset '%s'\n", args.workload.c_str());
  }

  for (const kv::EngineKind kind : kv::kAllEngineKinds) {
    uint64_t digest = 0;
    const double wall_ns = median_wall_ns(reps, [&] {
      sim::SsdDevice dev(sim::testbed_ssd_profile());
      sim::IoContext io(dev);
      kv::EngineConfig cfg = e2e_config();
      cfg.codec = args.codec;
      const auto dict = kv::make_engine(kind, dev, io, cfg);
      harness::WorkloadRunner runner(*dict, io);
      runner.bulk_load(load, spec);
      const harness::WorkloadRunResult result = runner.run(spec, ops);
      digest = result.digest;
    });
    const double ops_per_sec =
        static_cast<double>(ops) / (wall_ns / 1e9);
    const std::string name(kv::engine_kind_name(kind));
    reg->set("cpu.e2e." + name + ".wall_ns", wall_ns);
    reg->set("cpu.e2e." + name + ".ops_per_sec", ops_per_sec);
    std::printf("cpu.e2e.%s: %.0f ops/sec (median wall %.1f ms, digest %llu)\n",
                name.c_str(), ops_per_sec, wall_ns / 1e6,
                static_cast<unsigned long long>(digest));
    if (!args.workload_spec.has_value()) {
      for (const E2eBaseline& base : kPreRefactorOpsPerSec) {
        if (name == base.engine && base.ops_per_sec > 0.0 &&
            ops_per_sec >= 1.2 * base.ops_per_sec) {
          *any_e2e_gate_pass = true;
        }
      }
    }
  }
}

}  // namespace
}  // namespace damkit

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("wall-clock CPU tier (slotted node layout)",
                "host-overhead refinement; Didona et al., PAPERS.md");

  stats::MetricsRegistry reg;
  section_search(args, &reg);
  section_insert(args, &reg);
  section_roundtrip(args, &reg);
  bool any_e2e_gate_pass = false;
  section_e2e(args, &reg, &any_e2e_gate_pass);

  if (!args.metrics_json.empty()) {
    if (!bench::write_metrics_json(reg, args.metrics_json)) return 1;
  }

#ifdef NDEBUG
  // Same-binary ratio gates: machine-independent, hard in Release.
  const double search_speedup = reg.gauge("cpu.search.speedup_ratio");
  if (search_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: interior-node search speedup %.2fx < 1.5x gate\n",
                 search_speedup);
    return 1;
  }
  const double roundtrip_speedup = reg.gauge("cpu.roundtrip.speedup_ratio");
  if (roundtrip_speedup < 1.2) {
    std::fprintf(stderr, "FAIL: roundtrip speedup %.2fx < 1.2x gate\n",
                 roundtrip_speedup);
    return 1;
  }
  // Absolute e2e uplift vs the pre-refactor capture: same-machine numbers,
  // so only hard when explicitly requested (CI runs advisory).
  const char* gate_mode = std::getenv("DAMKIT_CPU_GATE");
  if (gate_mode != nullptr && std::strcmp(gate_mode, "hard") == 0 &&
      args.workload.empty() && !any_e2e_gate_pass) {
    std::fprintf(stderr,
                 "FAIL: no engine reached 1.2x pre-refactor ops/sec\n");
    return 1;
  }
#endif
  std::printf("bench_cpu: all wall-clock gates passed\n");
  return 0;
}
