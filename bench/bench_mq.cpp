// BENCH_mq: where the PDAM mispredicts a multi-queue NVMe device and the
// MQ refinement corrects it.
//
// The §4.1 protocol (q closed-loop clients, fixed IOs each, per-client
// time ratio vs q = 1) is run against sim::MqSsdDevice on the MQ testbed
// profile, then read through both models:
//
//   * the PDAM's segmented refit finds a breakpoint P̂ and predicts the
//     ratio max(1, q/P̂) — flat until the knee. On this device per-IO
//     latency grows linearly from the FIRST added client (the inflight
//     penalty), so the flat segment is wrong across the whole mid-range;
//   * the MQ model's linear latency law lat(q) = l0 + β(q−1) with a flash
//     ceiling tracks the same sweep closely.
//
// CI gates this snapshot (BENCH_mq.json) three ways:
//   1. regression — mq.q<q>.sim_seconds vs bench/baselines/
//      BENCH_mq_baseline.json;
//   2. model consistency — mq_measured_ratio.q<q> must agree with
//      mq_predicted_ratio.q<q> within 20% via check_bench_regression.py,
//      with the gauge families pinned by BENCH_mq_manifest.json so the
//      pairs cannot silently vanish;
//   3. the in-binary gates below: every MQ prediction within 20%, and at
//      least one regime where the PDAM's prediction is off by more than
//      35% (the demonstration this bench exists for). The PDAM error is
//      exported as pdam_mispredict.q<q> — deliberately NOT under the
//      pdam_predicted_ratio.* family, which the checker treats as a gate.
//
// A GC rider shows the second failure mode: seeded die-level garbage
// collection stretches the same workload's makespan while both models,
// fitted on a quiet device, predict no change (gc_demo.* gauges).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "damkit.h"

namespace {

using namespace damkit;

constexpr double kMqTolerance = 0.20;
constexpr double kPdamTolerance = 0.35;

double pdam_predicted_ratio(double p_hat, double q) {
  return std::max(1.0, q / std::max(1.0, p_hat));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.metrics_json.empty()) args.metrics_json = "BENCH_mq.json";
  bench::banner("PDAM vs MQ model on a multi-queue NVMe device",
                "§4.1 protocol against the MQ refinement (ROADMAP item 2)");

  const sim::SsdConfig profile =
      args.apply_mq_overrides(sim::testbed_mq_profile());
  std::printf("device: %s, %d SQ/CQ pairs, depth %d, %s completions\n",
              profile.name.c_str(), profile.queue_pairs, profile.queue_depth,
              sim::completion_mode_name(profile.completion_mode));

  harness::MqExperimentConfig cfg;
  cfg.client_counts = {1, 2, 4, 8, 16, 32, 64};
  cfg.ios_per_client = args.quick ? 512 : 2048;
  cfg.io_bytes = 16 * 1024;
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  const harness::MqExperimentResult res = harness::run_mq_experiment(profile,
                                                                     cfg);

  stats::MetricsRegistry reg;
  reg.set("mq_fit.l0_us", res.fit.l0_s * 1e6);
  reg.set("mq_fit.beta_us", res.fit.beta_s * 1e6);
  reg.set("mq_fit.saturated_kiops", res.fit.saturated_iops / 1e3);
  reg.set("mq_fit.r2", res.fit.r2);
  reg.set("pdam_fit.p", res.pdam_fit.p);
  reg.set("pdam_fit.r2", res.pdam_fit.r2);

  const model::MqModel mq(res.fit.l0_s, res.fit.beta_s, res.fit.saturated_iops,
                          cfg.io_bytes);
  const double t1 = res.samples[0].seconds;

  int failures = 0;
  double worst_pdam_err = 0.0;
  double worst_mq_err = 0.0;
  Table table({"clients", "sim_seconds", "measured_x", "mq_x", "pdam_x",
               "pdam_err"});
  for (const harness::MqSample& s : res.samples) {
    const double q = static_cast<double>(s.clients);
    const double measured = s.seconds / t1;
    const double mq_predicted = mq.predicted_ratio(q);
    const double pdam_predicted = pdam_predicted_ratio(res.pdam_fit.p, q);
    const double mq_err = std::abs(mq_predicted - measured) / measured;
    const double pdam_err = std::abs(pdam_predicted - measured) / measured;
    worst_mq_err = std::max(worst_mq_err, mq_err);
    worst_pdam_err = std::max(worst_pdam_err, pdam_err);

    const std::string suffix = strfmt("q%d", s.clients);
    reg.set(strfmt("mq.q%d.sim_seconds", s.clients), s.seconds);
    reg.set(strfmt("mq.q%d.throughput_kiops", s.clients),
            static_cast<double>(s.total_ios) / s.seconds / 1e3);
    reg.set("mq_measured_ratio." + suffix, measured);
    reg.set("mq_predicted_ratio." + suffix, mq_predicted);
    // Informational: how far the PDAM's best reading of this device is
    // from the truth. NOT exported as pdam_predicted_ratio.* — that
    // family is a consistency gate, and here the inconsistency is the
    // result.
    reg.set("pdam_mispredict." + suffix, pdam_err);

    if (mq_err > kMqTolerance) {
      std::fprintf(stderr,
                   "FAIL %s: MQ model %.2fx vs measured %.2fx "
                   "(%.0f%% > %.0f%%)\n",
                   suffix.c_str(), mq_predicted, measured, mq_err * 100.0,
                   kMqTolerance * 100.0);
      ++failures;
    }
    table.add_row({strfmt("%d", s.clients), strfmt("%.4f", s.seconds),
                   strfmt("%.2f", measured), strfmt("%.2f", mq_predicted),
                   strfmt("%.2f", pdam_predicted),
                   strfmt("%.0f%%", pdam_err * 100.0)});
  }

  // The demonstration gate: somewhere in the sweep the PDAM must be off by
  // more than its own consistency tolerance while the MQ model tracks.
  if (worst_pdam_err <= kPdamTolerance) {
    std::fprintf(stderr,
                 "FAIL: PDAM worst error %.0f%% never exceeds %.0f%% — "
                 "no misprediction regime to demonstrate\n",
                 worst_pdam_err * 100.0, kPdamTolerance * 100.0);
    ++failures;
  }

  std::fputs(table.to_string().c_str(), stdout);
  std::printf(
      "fits: MQ l0=%.0fus beta=%.1fus sat=%.1fk IOPS (r2=%.4f); "
      "PDAM P̂=%.1f (r2=%.4f)\n",
      res.fit.l0_s * 1e6, res.fit.beta_s * 1e6, res.fit.saturated_iops / 1e3,
      res.fit.r2, res.pdam_fit.p, res.pdam_fit.r2);
  std::printf("worst model error over the sweep: MQ %.0f%%, PDAM %.0f%%\n",
              worst_mq_err * 100.0, worst_pdam_err * 100.0);

  // GC rider: the same q = 8 round on a device running background die-level
  // garbage collection. Both models were fitted on the quiet device, so
  // their prediction for this round is unchanged — the measured slowdown is
  // pure unmodeled tail.
  {
    sim::ClosedLoopConfig cl;
    cl.clients = 8;
    cl.ios_per_client = cfg.ios_per_client;
    cl.io_bytes = cfg.io_bytes;
    cl.seed = cfg.seed + 8;

    sim::MqSsdDevice quiet(profile);
    const sim::ClosedLoopResult quiet_run = sim::run_closed_loop(quiet, cl);

    sim::SsdConfig gc_profile = profile;
    gc_profile.gc_interval_s = 20e-3;
    gc_profile.gc_burst_s = 2e-3;  // 10% of die time to background GC
    sim::MqSsdDevice busy(gc_profile);
    const sim::ClosedLoopResult gc_run = sim::run_closed_loop(busy, cl);

    const double slowdown = sim::to_seconds(gc_run.makespan) /
                            sim::to_seconds(quiet_run.makespan);
    reg.set("gc_demo.slowdown", slowdown);
    reg.set("gc_demo.bursts", static_cast<double>(busy.gc_bursts()));
    reg.set("gc_demo.stolen_seconds", busy.gc_stolen_seconds());
    busy.export_metrics(reg, "gc_demo.dev.");
    std::printf(
        "gc rider (q=8): %.3fx slowdown from %llu bursts stealing %.3fs "
        "of die time (both models predict 1.000x)\n",
        slowdown, static_cast<unsigned long long>(busy.gc_bursts()),
        busy.gc_stolen_seconds());
    if (slowdown <= 1.0) {
      std::fprintf(stderr,
                   "FAIL gc rider: expected a measurable slowdown, got "
                   "%.4fx\n",
                   slowdown);
      ++failures;
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "%d gate failure(s)\n", failures);
  }
  const bool wrote = bench::write_metrics_json(reg, args.metrics_json);
  return (wrote && failures == 0) ? 0 : 1;
}
