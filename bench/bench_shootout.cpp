// Dictionary shootout: B-tree vs Bε-tree vs optimized Bε-tree vs
// LSM-tree on one device, one data set, four workloads.
//
// This is the §3/§6 landscape in one table: write-optimized structures
// (Bε, LSM) insert orders of magnitude faster than the B-tree at a
// modest point-query premium, the Theorem-9 Bε-tree removes most of that
// premium, and range scans favour big-leaf structures.
#include <memory>

#include "bench_common.h"
#include "harness/report.h"
#include "kv/engine.h"
#include "kv/slice.h"
#include "sim/profiles.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace {

using namespace damkit;

struct Result {
  double load_ms;
  double insert_ms;
  double query_ms;
  double scan_mbps;
  double write_amp;
};

struct Workload {
  uint64_t items;
  uint64_t inserts;
  uint64_t queries;
  int scans;
  uint32_t scan_len;
  size_t value_bytes = 100;
  uint64_t seed = 42;
};

Result run(const Workload& w, sim::HddDevice& dev, sim::IoContext& io,
           kv::Dictionary& dict) {
  Result r{};
  Rng rng(w.seed);
  const auto scan_bytes = [&dict](std::string_view lo, size_t n) {
    uint64_t bytes = 0;
    for (const auto& [k, v] : dict.range_scan(lo, n)) {
      bytes += k.size() + v.size();
    }
    return bytes;
  };
  // Load (random order — the realistic ingest case the paper motivates).
  {
    const sim::SimTime t0 = io.now();
    for (uint64_t i = 0; i < w.items; ++i) {
      const uint64_t id = i * 2654435761 % (2 * w.items);
      dict.put(kv::encode_key(id, 16), kv::make_value(id, w.value_bytes));
    }
    dict.flush();
    r.load_ms = sim::to_seconds(io.now() - t0) * 1e3 /
                static_cast<double>(w.items);
  }
  // Sustained random inserts.
  {
    dev.clear_stats();
    const sim::SimTime t0 = io.now();
    for (uint64_t i = 0; i < w.inserts; ++i) {
      const uint64_t id = rng.uniform(2 * w.items);
      dict.put(kv::encode_key(id, 16), kv::make_value(id ^ i, w.value_bytes));
    }
    dict.flush();
    r.insert_ms = sim::to_seconds(io.now() - t0) * 1e3 /
                  static_cast<double>(w.inserts);
    r.write_amp = static_cast<double>(dev.stats().bytes_written) /
                  (static_cast<double>(w.inserts) * (16.0 + w.value_bytes));
  }
  // Point queries over loaded ids.
  {
    const sim::SimTime t0 = io.now();
    for (uint64_t i = 0; i < w.queries; ++i) {
      const uint64_t id =
          (rng.uniform(w.items)) * 2654435761 % (2 * w.items);
      if (!dict.get(kv::encode_key(id, 16)).has_value()) {
        std::fprintf(stderr, "missing key\n");
        std::abort();
      }
    }
    r.query_ms = sim::to_seconds(io.now() - t0) * 1e3 /
                 static_cast<double>(w.queries);
  }
  // Range scans.
  {
    const sim::SimTime t0 = io.now();
    uint64_t bytes = 0;
    for (int s = 0; s < w.scans; ++s) {
      const uint64_t start = rng.uniform(w.items);
      bytes += scan_bytes(kv::encode_key(start, 16), w.scan_len);
    }
    r.scan_mbps =
        static_cast<double>(bytes) / sim::to_seconds(io.now() - t0) / 1e6;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Dictionary shootout — B-tree / Be-tree / Thm-9 / LSM",
                "§3, §6 (write-optimization landscape)");

  Workload w;
  w.items = args.quick ? 60'000 : 250'000;
  w.inserts = args.quick ? 2'000 : 8'000;
  w.queries = args.quick ? 150 : 400;
  w.scans = args.quick ? 10 : 25;
  w.scan_len = 5'000;
  w.seed = args.seed;
  const uint64_t cache =
      std::max<uint64_t>(w.items * (16 + w.value_bytes) / 4, 4 * kMiB);

  Table t({"structure", "load (ms/op)", "insert (ms/op)", "query (ms/op)",
           "scan MB/s", "insert write amp"});

  struct Contender {
    const char* label;
    kv::EngineKind kind;
    uint64_t node_bytes;
  };
  const Contender contenders[] = {
      {"B-tree 64 KiB", kv::EngineKind::kBTree, 64 * kKiB},  // Fig-2 optimum
      {"Be-tree 1 MiB", kv::EngineKind::kBeTree, 1 * kMiB},  // Fig-3 regime
      // Thm 9 pays off once alpha*B >> 1.
      {"Thm-9 Be 4 MiB", kv::EngineKind::kOptBeTree, 4 * kMiB},
      {"LSM 2 MiB SST", kv::EngineKind::kLsm, 2 * kMiB},
  };
  for (const Contender& c : contenders) {
    sim::HddDevice dev(sim::testbed_hdd_profile(), w.seed);
    sim::IoContext io(dev);
    kv::EngineConfig cfg;
    cfg.btree.node_bytes = c.node_bytes;
    cfg.btree.cache_bytes = cache;
    cfg.betree.node_bytes = c.node_bytes;
    cfg.betree.cache_bytes = cache;
    cfg.lsm.memtable_bytes = 4 * kMiB;
    cfg.lsm.sstable_target_bytes = c.node_bytes;
    cfg.lsm.level1_bytes = 40 * kMiB;
    const auto dict = kv::make_engine(c.kind, dev, io, cfg);
    const Result r = run(w, dev, io, *dict);
    t.add_row({c.label, strfmt("%.3f", r.load_ms), strfmt("%.3f", r.insert_ms),
               strfmt("%.2f", r.query_ms), strfmt("%.1f", r.scan_mbps),
               strfmt("%.1f", r.write_amp)});
  }

  damkit::harness::emit("Shootout on the testbed HDD", t,
                        args.csv_prefix + "shootout.csv");
  std::printf(
      "\nexpected shape: write-optimized structures (Be, LSM) load and "
      "insert orders of magnitude faster than the B-tree; the B-tree's "
      "point queries are cheapest, the Thm-9 Be-tree nearly matches them; "
      "big-leaf structures scan near disk bandwidth.\n");
  return 0;
}
