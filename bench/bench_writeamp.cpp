// Write amplification: Lemma 3 (B-tree write amp is Θ(B)) versus
// Theorem 4(4) (Bε-tree write amp is O(B^ε · log_F(N/M))).
//
// Random-update workload; write amp = device bytes written / logical
// bytes modified. The B-tree column grows linearly with node size; the
// Bε-tree column stays low and nearly flat — the analytical reason
// B-trees feel "downward pressure towards small nodes" (§5).
#include <algorithm>

#include "bench_common.h"
#include "harness/experiments.h"
#include "harness/report.h"
#include "sim/profiles.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Write amplification — B-tree Θ(B) vs Be-tree O(F log)",
                "Lemma 3 / Theorem 4(4), §3");

  harness::WriteAmpConfig cfg;
  cfg.node_sizes = {16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB};
  cfg.items = args.quick ? 60'000 : 300'000;
  cfg.updates = args.quick ? 1'500 : 8'000;
  cfg.seed = args.seed;
  cfg.threads = args.threads;

  const auto points =
      run_write_amp_experiment(sim::testbed_hdd_profile(), cfg);
  Table t({"node size", "B-tree write amp", "Be-tree write amp", "ratio"});
  for (const auto& p : points) {
    t.add_row({format_bytes(p.node_bytes),
               strfmt("%.1f", p.btree_write_amp),
               strfmt("%.1f", p.betree_write_amp),
               strfmt("%.1fx", p.btree_write_amp /
                                   std::max(p.betree_write_amp, 1e-9))});
  }
  harness::emit("Write amplification vs node size", t,
                args.csv_prefix + "writeamp.csv");
  std::printf(
      "\npaper: B-tree write amplification is linear in the node size; the "
      "Be-tree amortizes each flush over many messages.\n");
  return 0;
}
