// Design-choice ablations called out in DESIGN.md §5:
//   A. Bε-tree flush policy: fullest-child vs round-robin.
//   B. Cache ratio: how RAM/data shifts the Figure-2 node-size curve.
//   C. Range queries vs node size: §5's "small nodes under-utilize disk
//      bandwidth on range queries" claim, quantified.
//   D. Upserts vs read-modify-write: the Bε-tree's blind-write advantage.
#include <memory>

#include "bench_common.h"
#include "betree/message.h"
#include "harness/experiments.h"
#include "harness/report.h"
#include "kv/engine.h"
#include "kv/slice.h"
#include "sim/profiles.h"
#include "stats/metrics.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace {

using namespace damkit;

constexpr size_t kValueBytes = 100;

void flush_policy_ablation(const bench::BenchArgs& args) {
  const uint64_t items = args.quick ? 40'000 : 150'000;
  Table t({"flush policy", "key distribution", "insert (ms/op)",
           "flushes", "messages per flush"});
  for (const auto policy :
       {betree::FlushPolicy::kFullestChild, betree::FlushPolicy::kRoundRobin}) {
    for (const bool skewed : {false, true}) {
      sim::HddDevice dev(sim::testbed_hdd_profile(), args.seed);
      sim::IoContext io(dev);
      kv::EngineConfig cfg;
      cfg.betree.node_bytes = 256 * kKiB;
      cfg.betree.target_fanout = 16;
      cfg.betree.cache_bytes = 4 * kMiB;
      cfg.betree.flush_policy = policy;
      const auto tree =
          kv::make_engine(kv::EngineKind::kBeTree, dev, io, cfg);
      Rng rng(args.seed);
      Zipfian zipf(items, 0.99);
      const sim::SimTime t0 = io.now();
      for (uint64_t i = 0; i < items; ++i) {
        const uint64_t id =
            skewed ? zipf.sample(rng) * 0x9e3779b97f4a7c15ULL % (4 * items)
                   : rng.uniform(4 * items);
        tree->put(kv::encode_key(id, 16), kv::make_value(id, kValueBytes));
      }
      tree->flush();
      const double ms = sim::to_seconds(io.now() - t0) * 1e3 /
                        static_cast<double>(items);
      stats::MetricsRegistry reg;
      tree->export_metrics(reg, "betree.");
      const uint64_t flushes = reg.counter("betree.flushes");
      const uint64_t moved = reg.counter("betree.messages_moved");
      t.add_row(
          {policy == betree::FlushPolicy::kFullestChild ? "fullest child"
                                                        : "round robin",
           skewed ? "zipfian(0.99)" : "uniform", strfmt("%.4f", ms),
           strfmt("%llu", static_cast<unsigned long long>(flushes)),
           strfmt("%.0f", flushes == 0
                              ? 0.0
                              : static_cast<double>(moved) /
                                    static_cast<double>(flushes))});
    }
  }
  harness::emit("A. Flush policy ablation", t,
                args.csv_prefix + "ablation_flush.csv");
  std::printf(
      "fullest-child moves the biggest possible batch per node write; "
      "round-robin wastes writes on near-empty buffers — worst under "
      "skew.\n");
}

void cache_ratio_ablation(const bench::BenchArgs& args) {
  Table t({"cache/data", "16 KiB query ms", "256 KiB query ms",
           "256KiB/16KiB"});
  for (const double ratio : {0.05, 0.25, 0.6}) {
    harness::SweepConfig cfg;
    cfg.kind = kv::EngineKind::kBTree;
    cfg.node_sizes = {16 * kKiB, 256 * kKiB};
    cfg.items = args.quick ? 80'000 : 250'000;
    cfg.queries = args.quick ? 120 : 300;
    cfg.inserts = 50;
    cfg.cache_ratio = ratio;
    cfg.seed = args.seed;
    cfg.threads = args.threads;
    const auto res = run_nodesize_sweep(sim::testbed_hdd_profile(), cfg);
    t.add_row({strfmt("%.2f", ratio),
               strfmt("%.2f", res.points[0].query_ms),
               strfmt("%.2f", res.points[1].query_ms),
               strfmt("%.2fx", res.points[1].query_ms /
                                   res.points[0].query_ms)});
  }
  harness::emit("B. Cache-ratio ablation (B-tree point queries)", t,
                args.csv_prefix + "ablation_cache.csv");
  std::printf(
      "bigger caches blunt the node-size penalty (fewer uncached levels); "
      "the paper's 1/4 ratio keeps the effect visible, tiny caches "
      "amplify it.\n");
}

void range_scan_ablation(const bench::BenchArgs& args) {
  const uint64_t items = args.quick ? 80'000 : 300'000;
  const uint32_t scan_len = 20'000;
  const int scans = args.quick ? 8 : 20;
  Table t({"node size", "scan MB/s", "% of disk bandwidth"});
  const double disk_bw =
      1.0 / sim::testbed_hdd_profile().expected_transfer_s_per_byte() / 1e6;
  for (const uint64_t node : {4 * kKiB, 16 * kKiB, 64 * kKiB, 256 * kKiB,
                              1 * kMiB, 4 * kMiB}) {
    sim::HddDevice dev(sim::testbed_hdd_profile(), args.seed);
    sim::IoContext io(dev);
    kv::EngineConfig cfg;
    cfg.btree.node_bytes = node;
    cfg.btree.cache_bytes = std::max<uint64_t>(node * 4, 4 * kMiB);
    const auto tree = kv::make_engine(kv::EngineKind::kBTree, dev, io, cfg);
    tree->bulk_load(items, [](uint64_t i) {
      return std::make_pair(kv::encode_key(i, 16),
                            kv::make_value(i, kValueBytes));
    });
    Rng rng(args.seed);
    const sim::SimTime t0 = io.now();
    uint64_t bytes = 0;
    for (int s = 0; s < scans; ++s) {
      const uint64_t start = rng.uniform(items - scan_len);
      for (const auto& [k, v] : tree->range_scan(kv::encode_key(start, 16),
                                                 scan_len)) {
        bytes += k.size() + v.size();
      }
    }
    const double mbps =
        static_cast<double>(bytes) / sim::to_seconds(io.now() - t0) / 1e6;
    t.add_row({format_bytes(node), strfmt("%.1f", mbps),
               strfmt("%.0f%%", mbps / disk_bw * 100.0)});
  }
  harness::emit("C. Range-query bandwidth vs node size (B-tree)", t,
                args.csv_prefix + "ablation_range.csv");
  std::printf(
      "paper (§5): nodes sized for point queries leave range queries far "
      "below disk bandwidth; OLAP systems use ~1 MB nodes for this "
      "reason.\n");
}

void upsert_ablation(const bench::BenchArgs& args) {
  // Counter increments: Bε upsert messages vs read-modify-write. The
  // counter set must exceed RAM or RMW reads come free from the cache.
  const uint64_t counters = args.quick ? 300'000 : 1'000'000;
  const uint64_t ops = args.quick ? 2'000 : 5'000;
  Table t({"method", "ms per increment", "read IOs"});
  for (const bool blind : {true, false}) {
    sim::HddDevice dev(sim::testbed_hdd_profile(), args.seed);
    sim::IoContext io(dev);
    kv::EngineConfig cfg;
    cfg.betree.node_bytes = 512 * kKiB;
    cfg.betree.cache_bytes = 2 * kMiB;
    const auto tree = kv::make_engine(kv::EngineKind::kBeTree, dev, io, cfg);
    tree->bulk_load(counters, [](uint64_t i) {
      return std::make_pair(kv::encode_key(i, 16),
                            betree::encode_counter(0));
    });
    Rng rng(args.seed);
    dev.clear_stats();
    const sim::SimTime t0 = io.now();
    for (uint64_t i = 0; i < ops; ++i) {
      const std::string key = kv::encode_key(rng.uniform(counters), 16);
      if (blind) {
        tree->upsert(key, 1);
      } else {
        const auto cur = tree->get(key);
        const uint64_t v = cur ? betree::decode_counter(*cur) : 0;
        tree->put(key, betree::encode_counter(v + 1));
      }
    }
    tree->flush();
    t.add_row({blind ? "upsert message (blind)" : "read-modify-write",
               strfmt("%.3f",
                      sim::to_seconds(io.now() - t0) * 1e3 /
                          static_cast<double>(ops)),
               strfmt("%llu",
                      static_cast<unsigned long long>(dev.stats().reads))});
  }
  harness::emit("D. Upserts vs read-modify-write (Be-tree)", t,
                args.csv_prefix + "ablation_upsert.csv");
  std::printf(
      "blind upserts inherit the insert bound O((F/B + aF) log); RMW pays "
      "a full point query per increment (§3's motivation for message-"
      "encoded updates).\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Design ablations (flush policy, cache ratio, ranges, "
                "upserts)",
                "DESIGN.md §5");
  flush_policy_ablation(args);
  cache_ratio_ablation(args);
  range_scan_ablation(args);
  upsert_ablation(args);
  return 0;
}
