// BENCH_smoke: a reduced cross-layer sweep whose only product is a
// metrics snapshot (BENCH_smoke.json). CI runs it on every push and gates
// merges two ways:
//
//   1. regression — simulated-time gauges (*.sim_seconds / *.sim_steps)
//      must stay within 15% of the checked-in baseline
//      (bench/baselines/BENCH_smoke_baseline.json);
//   2. model consistency — the HDD section's measured setup/transfer
//      split must land within 5% of the closed-form affine prediction
//      for the Table-2 drive (hdd.predicted_* gauges).
//
// Sections run under parallel_sweep, so a --threads 2 run also exercises
// the registry's merge determinism: output is bit-identical for any
// thread count.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "damkit.h"

namespace {

using namespace damkit;

// Fixed-width decimal keys sort lexicographically in numeric order.
std::string key_of(uint64_t k) {
  return strfmt("%016llu", static_cast<unsigned long long>(k));
}

// §4.2 surrogate: uniform random fixed-size reads on the Table-2 drive.
// The device decomposes each IO into setup (command + seek + rotation)
// and transfer (zoned media) time; over a uniform workload the means must
// match HddConfig's closed-form expectations.
void run_hdd_affine(const bench::BenchArgs& args, stats::MetricsRegistry& reg) {
  const sim::HddConfig profile = sim::paper_hdd_profiles()[0];
  sim::HddDevice dev(profile);
  sim::IoContext io(dev);
  Rng rng(args.seed);
  // Track-aligned IOs smaller than one track: the measured transfer time
  // is then pure zoned media time, with no head-switch charges mixed in,
  // so it is comparable to the closed-form 1/avg_bandwidth.
  const uint64_t io_bytes = profile.track_bytes / 4;
  const uint64_t tracks = profile.capacity_bytes / profile.track_bytes;
  const int ios = args.quick ? 500 : 2000;
  for (int i = 0; i < ios; ++i) {
    io.touch_read((rng.next() % tracks) * profile.track_bytes, io_bytes);
  }
  dev.export_metrics(reg, "hdd.");
  reg.set("hdd.sim_seconds", sim::to_seconds(io.now()));
}

// §4.1 surrogate: full-width read batches on the testbed SSD. Batch width
// equals the die count, so every die serves one request per round and the
// exported per-die utilizations stay balanced.
void run_ssd_batch(const bench::BenchArgs& args, stats::MetricsRegistry& reg) {
  const sim::SsdConfig profile = sim::testbed_ssd_profile();
  sim::SsdDevice dev(profile);
  sim::IoContext io(dev);
  Rng rng(args.seed + 1);
  const uint64_t stripes = profile.capacity_bytes / profile.stripe_bytes;
  const int width = profile.total_dies();
  const int rounds = args.quick ? 150 : 600;
  std::vector<sim::IoRequest> batch;
  for (int r = 0; r < rounds; ++r) {
    batch.clear();
    for (int w = 0; w < width; ++w) {
      batch.push_back({sim::IoKind::kRead,
                       (rng.next() % stripes) * profile.stripe_bytes,
                       profile.stripe_bytes});
    }
    io.submit_batch(batch);
  }
  dev.export_metrics(reg, "ssd.");
  reg.set("ssd.sim_seconds", sim::to_seconds(io.now()));
}

void run_btree(const bench::BenchArgs& args, stats::MetricsRegistry& reg) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::EngineConfig config;
  config.btree.node_bytes = 64 * 1024;
  config.btree.cache_bytes = 2 * 1024 * 1024;
  const auto dict = kv::make_engine(kv::EngineKind::kBTree, dev, io, config);
  const uint64_t n = args.quick ? 4000 : 20000;
  dict->bulk_load(n, [](uint64_t i) {
    return std::make_pair(key_of(i * 2), std::string(64, 'v'));
  });
  harness::PutGetSpec spec;
  spec.puts = n / 2;
  spec.gets = n / 2;
  spec.key_modulus = n * 2;
  spec.value_bytes = 64;
  spec.seed = args.seed + 2;
  spec.key_of = key_of;
  harness::run_put_get(*dict, spec);
  dict->flush();
  dict->export_metrics(reg, "btree.");
  reg.set("btree.sim_seconds", sim::to_seconds(io.now()));
}

void run_betree(const bench::BenchArgs& args, stats::MetricsRegistry& reg) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::EngineConfig config;
  config.betree.node_bytes = 128 * 1024;
  config.betree.cache_bytes = 1024 * 1024;
  const auto dict = kv::make_engine(kv::EngineKind::kBeTree, dev, io, config);
  const uint64_t n = args.quick ? 6000 : 30000;
  harness::PutGetSpec spec;
  spec.puts = n;
  spec.gets = n / 4;
  spec.key_modulus = n * 4;
  spec.value_bytes = 100;
  spec.seed = args.seed + 3;
  spec.key_of = key_of;
  harness::run_put_get(*dict, spec);
  dict->flush();
  dict->export_metrics(reg, "betree.");
  reg.set("betree.sim_seconds", sim::to_seconds(io.now()));
}

void run_lsm(const bench::BenchArgs& args, stats::MetricsRegistry& reg) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::EngineConfig config;
  config.lsm.memtable_bytes = 256 * 1024;
  config.lsm.sstable_target_bytes = 128 * 1024;
  config.lsm.level1_bytes = 512 * 1024;
  const auto dict = kv::make_engine(kv::EngineKind::kLsm, dev, io, config);
  const uint64_t n = args.quick ? 6000 : 30000;
  harness::PutGetSpec spec;
  spec.puts = n;
  spec.gets = n / 4;
  spec.key_modulus = n * 4;
  spec.value_bytes = 100;
  spec.seed = args.seed + 4;
  spec.key_of = key_of;
  harness::run_put_get(*dict, spec);
  dict->flush();
  dict->export_metrics(reg, "lsm.");
  reg.set("lsm.sim_seconds", sim::to_seconds(io.now()));
}

// §8 surrogate: the PDAM B-tree has no wall clock, only time steps; the
// occupancy gauge reports how much of the per-step P-slot budget the
// clients consumed.
void run_pdam(const bench::BenchArgs& args, stats::MetricsRegistry& reg) {
  const uint64_t n = args.quick ? 1u << 16 : 1u << 18;
  std::vector<uint64_t> keys(n);
  for (uint64_t i = 0; i < n; ++i) keys[i] = i * 7 + 3;
  pdam_tree::PdamTreeConfig config;
  config.parallelism = 8;
  const harness::PdamQueryRun run = harness::run_pdam_tree_queries(
      keys, config, {config.parallelism}, args.quick ? 200 : 800,
      args.seed + 5);
  const auto& rr = run.points[0].result;
  reg.add("pdam.steps", rr.steps);
  reg.add("pdam.queries", rr.queries);
  reg.add("pdam.block_fetch_runs", rr.block_fetch_runs);
  reg.add("pdam.blocks_fetched", rr.blocks_fetched);
  reg.set("pdam.throughput_queries_per_step", rr.throughput());
  reg.set("pdam.slot_occupancy", rr.slot_occupancy(config.parallelism));
  reg.set("pdam.sim_steps", static_cast<double>(rr.steps));
}

// Router smoke: the same B-tree workload shape fanned across a 4-shard
// ShardedEngine (hash partitioning, one device region per shard), with a
// few cross-shard ordered-merge scans. Gated like every other section via
// sharded.sim_seconds.
void run_sharded(const bench::BenchArgs& args, stats::MetricsRegistry& reg) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::EngineConfig config;
  config.btree.node_bytes = 64 * 1024;
  config.btree.cache_bytes = 512 * 1024;
  kv::ShardedConfig sharded;
  sharded.shards = 4;
  kv::ShardedEngine engine(kv::EngineKind::kBTree, dev, io, config, sharded);
  const uint64_t n = args.quick ? 4000 : 20000;
  engine.bulk_load(n, [](uint64_t i) {
    return std::make_pair(key_of(i * 2), std::string(64, 'v'));
  });
  harness::PutGetSpec spec;
  spec.puts = n / 2;
  spec.gets = n / 2;
  spec.key_modulus = n * 2;
  spec.value_bytes = 64;
  spec.seed = args.seed + 6;
  spec.key_of = key_of;
  spec.scans = 8;
  spec.scan_limit = 100;
  harness::run_put_get(engine, spec);
  engine.flush();
  engine.export_metrics(reg, "sharded.");
  reg.set("sharded.sim_seconds", sim::to_seconds(io.now()));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.metrics_json.empty()) args.metrics_json = "BENCH_smoke.json";
  bench::banner("cross-layer metrics smoke sweep",
                "§4.1, §4.2, §7, §8 (reduced scale)");

  struct Section {
    const char* name;
    std::function<void(const bench::BenchArgs&, stats::MetricsRegistry&)> run;
  };
  const std::vector<Section> sections = {
      {"hdd", run_hdd_affine}, {"ssd", run_ssd_batch}, {"btree", run_btree},
      {"betree", run_betree},  {"lsm", run_lsm},       {"pdam", run_pdam},
      {"sharded", run_sharded},
  };

  std::vector<stats::MetricsRegistry> per_section(sections.size());
  harness::parallel_sweep(sections.size(), args.threads, [&](size_t i) {
    sections[i].run(args, per_section[i]);
  });

  // Merge in section order: deterministic for any host thread count.
  stats::MetricsRegistry merged;
  for (const auto& reg : per_section) merged.merge(reg);

  Table summary({"section", "sim_seconds"});
  for (const auto& s : sections) {
    const std::string gauge = std::string(s.name) + ".sim_seconds";
    summary.add_row({s.name, merged.has_gauge(gauge)
                                 ? strfmt("%.4f", merged.gauge(gauge))
                                 : std::string("-")});
  }
  std::fputs(summary.to_string().c_str(), stdout);

  std::printf("affine split on %s:\n", "the Table-2 drive");
  std::printf("  setup/IO      measured %.6f s, predicted %.6f s\n",
              merged.gauge("hdd.setup_seconds_per_io"),
              merged.gauge("hdd.predicted_setup_seconds_per_io"));
  std::printf("  transfer/byte measured %.3e s, predicted %.3e s\n",
              merged.gauge("hdd.transfer_seconds_per_byte"),
              merged.gauge("hdd.predicted_transfer_seconds_per_byte"));

  return bench::write_metrics_json(merged, args.metrics_json) ? 0 : 1;
}
