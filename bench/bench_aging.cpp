// §5's aging claim: "the optimal node size x is not large enough to
// amortize the setup cost. This means that as B-trees age, their nodes
// get spread out across disk, and range-query performance degrades.
// This is borne out in practice [28, 29, 31]."
//
// Procedure: bulk-load (leaves laid out sequentially — a freshly
// formatted tree), measure range-scan bandwidth; then age the tree with
// random insert churn (splits allocate leaves far from their neighbours),
// measure again. The paper's FAST'17 companion measured exactly this
// degradation on real file systems.
#include "bench_common.h"
#include "harness/report.h"
#include "kv/engine.h"
#include "kv/slice.h"
#include "sim/profiles.h"
#include "util/bytes.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("B-tree aging — range scans degrade under churn",
                "§5 (aging discussion), refs [28][29][31]");

  // Aging needs churn comparable to the data size before the bulk-loaded
  // layout is gone (each split relocates one leaf).
  const uint64_t items = args.quick ? 60'000 : 150'000;
  const uint64_t churn = items;
  const uint32_t scan_len = 10'000;
  const int scans = args.quick ? 8 : 12;
  constexpr size_t kValueBytes = 100;

  Table t({"node size", "fresh scan MB/s", "aged scan MB/s", "degradation"});
  for (const uint64_t node : {16 * kKiB, 64 * kKiB, 256 * kKiB}) {
    sim::HddDevice dev(sim::testbed_hdd_profile(), args.seed);
    sim::IoContext io(dev);
    kv::EngineConfig cfg;
    cfg.btree.node_bytes = node;
    cfg.btree.cache_bytes = std::max<uint64_t>(node * 4, 4 * kMiB);
    const auto tree = kv::make_engine(kv::EngineKind::kBTree, dev, io, cfg);
    tree->bulk_load(items, [](uint64_t i) {
      // Leave odd ids free so churn inserts *new* keys (forcing splits).
      return std::make_pair(kv::encode_key(i * 2, 16),
                            kv::make_value(i, kValueBytes));
    });

    Rng rng(args.seed);
    const auto measure_scans = [&] {
      uint64_t bytes = 0;
      const sim::SimTime t0 = io.now();
      for (int s = 0; s < scans; ++s) {
        const uint64_t start = rng.uniform(items - scan_len) * 2;
        for (const auto& [k, v] :
             tree->range_scan(kv::encode_key(start, 16), scan_len)) {
          bytes += k.size() + v.size();
        }
      }
      return static_cast<double>(bytes) /
             sim::to_seconds(io.now() - t0) / 1e6;
    };

    const double fresh = measure_scans();

    // Age: random new-key inserts (splits) plus deletes (merges) — the
    // churn that scatters leaves across the extent space.
    for (uint64_t i = 0; i < churn; ++i) {
      const uint64_t id = rng.uniform(2 * items);
      if (i % 4 == 3) {
        tree->erase(kv::encode_key(id, 16));
      } else {
        tree->put(kv::encode_key(id, 16), kv::make_value(id, kValueBytes));
      }
    }
    tree->flush();

    const double aged = measure_scans();
    t.add_row({format_bytes(node), strfmt("%.1f", fresh),
               strfmt("%.1f", aged), strfmt("%.1fx", fresh / aged)});
  }
  harness::emit("B-tree range-scan bandwidth, fresh vs aged", t,
                args.csv_prefix + "aging.csv");
  std::printf(
      "\npaper: nodes below the half-bandwidth point cannot amortize the "
      "setup cost once aging destroys the bulk-loaded layout. 16 KiB "
      "nodes are seek-bound even fresh (the §5 under-utilization claim); "
      "mid sizes lose most of their fresh bandwidth; only nodes near the "
      "half-bandwidth point hold up — yet those are the sizes point "
      "queries cannot afford (Cor 7). Aging is the B-tree's trap.\n");
  return 0;
}
