// Table 2: experimentally derived affine-model values (s, t, α, R²) for
// the five commodity hard disks.
//
// For each simulated disk, issue 64 block-aligned random reads at each IO
// size from 4 KiB to 16 MiB, then fit seconds = s + t·bytes by OLS — the
// §4.2 procedure. Paper α values: 0.0012, 0.0022, 0.0031, 0.0029, 0.0017,
// all with R² within 0.1% of 1.
#include "bench_common.h"
#include "harness/experiments.h"
#include "harness/report.h"
#include "sim/profiles.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Table 2 — affine parameters of five HDDs", "Table 2, §4.2");

  harness::AffineExperimentConfig cfg;
  cfg.reads_per_size = args.quick ? 16 : 64;
  cfg.seed = args.seed;
  cfg.threads = args.threads;

  std::vector<std::pair<std::string, harness::AffineExperimentResult>> rows;
  for (const sim::HddConfig& hdd : sim::paper_hdd_profiles()) {
    const std::string label =
        hdd.name + " (" + std::to_string(hdd.year) + ")";
    rows.emplace_back(label, harness::run_affine_experiment(hdd, cfg));
  }
  const Table table = harness::make_affine_table(rows);
  harness::emit("Table 2: s, t, alpha per HDD", table,
                args.csv_prefix + "table2.csv");

  // Per-size series for one disk (the regression's raw input).
  Table series({"IO size", "mean seconds"});
  for (const auto& s : rows.front().second.samples) {
    series.add_row({format_bytes(s.io_bytes), strfmt("%.4f", s.seconds)});
  }
  harness::emit("raw series for " + rows.front().first, series,
                args.csv_prefix + "table2_series.csv");
  std::printf(
      "\npaper:    s = .018/.015/.013/.012/.016, t(4K) = 21/33/41/35/26 us, "
      "alpha = .0012/.0022/.0031/.0029/.0017, R^2 ~ 0.999\n");
  return 0;
}
