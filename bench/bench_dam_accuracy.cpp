// Lemma 1 / §1: with B set to the half-bandwidth point, the DAM
// approximates the IO cost on any hardware to within a factor of 2.
//
// For each HDD profile: measure the simulated time of random IOs across
// sizes, compare with the DAM prediction (every IO rounded to blocks of
// size 1/alpha at cost s + tB each), and report the worst-case ratio —
// which must stay within [1/2, 2].
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "harness/experiments.h"
#include "harness/report.h"
#include "model/dam.h"
#include "sim/profiles.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Lemma 1 — DAM within 2x at the half-bandwidth point",
                "Lemma 1, §2.3");

  Table t({"Disk", "half-bw point", "max DAM/actual", "max actual/DAM",
           "within 2x"});
  for (const sim::HddConfig& hdd : sim::paper_hdd_profiles()) {
    harness::AffineExperimentConfig cfg;
    cfg.reads_per_size = args.quick ? 16 : 64;
    cfg.seed = args.seed;
    cfg.threads = args.threads;
    const auto res = run_affine_experiment(hdd, cfg);

    // Parameterize both models from the same measurement, exactly as a
    // practitioner would: s and t from the regression, B = s/t.
    const double s = res.fit.s;
    const double t_byte = res.fit.t_per_byte;
    const auto half_bw = static_cast<uint64_t>(s / t_byte);
    const model::DamModel dam(half_bw);

    // Compare against the fitted affine curve (the device's systematic
    // cost); raw per-size sample means carry a few-percent seek-sampling
    // noise which is irrelevant to the model claim.
    double max_over = 0.0, max_under = 0.0;
    for (const auto& sample : res.samples) {
      const double actual =
          res.fit.s +
          res.fit.t_per_byte * static_cast<double>(sample.io_bytes);
      const double dam_pred = dam.predicted_seconds(
          dam.ios_for(sample.io_bytes), s, t_byte);
      max_over = std::max(max_over, dam_pred / actual);
      max_under = std::max(max_under, actual / dam_pred);
    }
    const bool ok = max_over <= 2.05 && max_under <= 2.05;
    t.add_row({hdd.name, format_bytes(half_bw), strfmt("%.2fx", max_over),
               strfmt("%.2fx", max_under), ok ? "yes" : "NO"});
  }
  harness::emit("Lemma 1: DAM vs measured across IO sizes", t,
                args.csv_prefix + "dam_accuracy.csv");
  std::printf(
      "\npaper: a DAM with B = 1/alpha approximates any IO pattern within a "
      "factor of 2 in both directions.\n");
  return 0;
}
