// Figure 3: ms per query/insert vs node size for a Bε-tree on an HDD
// (the paper's TokuDB experiment, compression off).
//
// Paper: query optimum near 512 KiB and insert optimum near 4 MiB; the
// next few larger node sizes degrade performance only slightly — in
// contrast to the B-tree's sharp growth in Figure 2 (F ≈ √B insulates
// the Bε-tree from node-size error, Table 3).
#include "bench_common.h"
#include "harness/experiments.h"
#include "harness/report.h"
#include "sim/profiles.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 3 — Be-tree node-size sweep on HDD", "Figure 3, §7");

  harness::SweepConfig cfg;
  cfg.kind = kv::EngineKind::kBeTree;
  cfg.node_sizes = {64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB};
  cfg.items = args.quick ? 200'000 : 1'000'000;
  cfg.queries = args.quick ? 150 : 600;
  cfg.inserts = args.quick ? 150 : 600;
  cfg.cache_ratio = 0.25;
  cfg.betree_fanout = 0;  // F = sqrt(B), the TokuDB-like epsilon = 1/2
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  std::printf(
      "scale note: %llu items (paper: 16 GB data); cache = data/4; "
      "F = sqrt(B)\n",
      static_cast<unsigned long long>(cfg.items));

  const auto res = run_nodesize_sweep(sim::testbed_hdd_profile(), cfg);
  const Table fig = harness::make_sweep_figure(res);
  harness::emit("Figure 3: TokuDB-style Be-tree, ms/op vs node size", fig,
                args.csv_prefix + "fig3.csv");

  // Sensitivity comparison against Figure 2's B-tree at shared sizes.
  harness::SweepConfig bt = cfg;
  bt.kind = kv::EngineKind::kBTree;
  bt.node_sizes = {64 * kKiB, 1 * kMiB};
  const auto btres = run_nodesize_sweep(sim::testbed_hdd_profile(), bt);
  Table cmp({"structure", "insert growth 64KiB->1MiB",
             "query growth 64KiB->1MiB"});
  const auto growth = [](double a, double b) { return b / a; };
  cmp.add_row({"B-tree",
               strfmt("%.2fx", growth(btres.points[0].insert_ms,
                                      btres.points[1].insert_ms)),
               strfmt("%.2fx", growth(btres.points[0].query_ms,
                                      btres.points[1].query_ms))});
  cmp.add_row({"Be-tree",
               strfmt("%.2fx", growth(res.points[0].insert_ms,
                                      res.points[2].insert_ms)),
               strfmt("%.2fx", growth(res.points[0].query_ms,
                                      res.points[2].query_ms))});
  harness::emit("Sensitivity: Be-tree vs B-tree under 16x node growth", cmp,
                args.csv_prefix + "fig3_sensitivity.csv");
  std::printf(
      "\npaper: Be-tree degrades only slightly at the next few larger node "
      "sizes; the B-tree degrades sharply (Figures 2 vs 3).\n");
  return 0;
}
