// Figure 1: time to read a fixed volume per thread on each SSD, versus
// the number of threads p ∈ {1, 2, 4, ..., 64}.
//
// The DAM predicts time linear in p everywhere; the PDAM (and the
// devices) stay flat until p ≈ P and grow linearly after. The printed
// series is the figure's data; the log-log plot shape is in the ratios.
#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "harness/experiments.h"
#include "harness/report.h"
#include "sim/profiles.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Figure 1 — read time vs thread count per SSD",
                "Figure 1, §4.1");

  harness::PdamExperimentConfig cfg;
  cfg.bytes_per_thread = args.quick ? 64ULL * kMiB : 1ULL * kGiB;
  cfg.seed = args.seed;
  cfg.threads = args.threads;

  std::vector<std::pair<std::string, harness::PdamExperimentResult>> rows;
  for (const sim::SsdConfig& ssd : sim::paper_ssd_profiles()) {
    rows.emplace_back(ssd.name, harness::run_pdam_experiment(ssd, cfg));
  }
  const Table fig = harness::make_pdam_figure(rows);
  harness::emit("Figure 1: seconds to read " +
                    format_bytes(cfg.bytes_per_thread) + " per thread",
                fig, args.csv_prefix + "fig1.csv");

  // The headline claims: flat region error vs PDAM, and the DAM's
  // overestimate of roughly P at high thread counts.
  Table claims({"Device", "PDAM max err (p<=P)", "DAM overestimate @64"});
  for (const auto& [name, res] : rows) {
    const double base = res.samples.front().seconds;
    double max_err = 0.0;
    for (const auto& s : res.samples) {
      if (s.threads <= res.fit.p) {
        max_err = std::max(max_err, std::abs(s.seconds - base) / base);
      }
    }
    // DAM: time grows linearly from p=1 (no parallelism).
    const double dam_pred = base * res.samples.back().threads;
    const double dam_over = dam_pred / res.samples.back().seconds;
    claims.add_row({name, strfmt("%.0f%%", max_err * 100),
                    strfmt("%.1fx", dam_over)});
  }
  harness::emit("Figure 1 claims: PDAM accuracy and DAM error", claims,
                args.csv_prefix + "fig1_claims.csv");
  std::printf(
      "\npaper: PDAM predicts within 14%%; DAM overestimates by ~P "
      "(2.5-12x)\n");
  return 0;
}
