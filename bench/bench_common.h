// Shared helpers for the table/figure reproduction binaries: a tiny flag
// parser (--quick scales everything down; --seed sets determinism) and a
// banner printer so every bench states what it reproduces.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "blockdev/codec.h"
#include "kv/workload.h"
#include "sim/ssd.h"
#include "stats/metrics.h"

namespace damkit::bench {

struct BenchArgs {
  bool quick = false;    // reduced scale for smoke runs
  uint64_t seed = 42;
  std::string csv_prefix = "results/";
  /// Host threads for sweep parallelism. Each sweep point owns its device
  /// and RNG, so any value produces identical output — more threads only
  /// finish sooner.
  int threads = 1;
  /// When non-empty, benches that collect a MetricsRegistry write its JSON
  /// snapshot here (CI's regression gate consumes it).
  std::string metrics_json;
  /// Block codec for benches that build engines through EngineFactory.
  /// kDefault keeps the factory's resolution (DAMKIT_CODEC env, else
  /// identity); --codec identity|prefix|lz overrides it.
  blockdev::CodecKind codec = blockdev::CodecKind::kDefault;
  /// Concurrent client sessions for benches that drive the serving layer
  /// (run_concurrent); 1 keeps the sequential path.
  uint64_t clients = 1;
  /// Per-client admission depth for the serving layer.
  uint64_t inflight = 4;
  /// NVMe submission-queue depth override for MQ-device benches
  /// (--queue-depth; 0 keeps the device profile's default).
  int queue_depth = 0;
  /// Completion-mode override for MQ-device benches (--completion-mode
  /// polling|interrupt; unset keeps the profile's default).
  bool has_completion_mode = false;
  sim::CompletionMode completion_mode = sim::CompletionMode::kInterrupt;
  /// Named workload preset (--workload ycsb-a..ycsb-f|shift|olap) for
  /// benches that drive an OpGenerator mix; empty keeps each bench's
  /// built-in spec. `workload_spec` is the validated preset.
  std::string workload;
  std::optional<kv::WorkloadSpec> workload_spec;

  /// Applies the MQ overrides to an SSD profile.
  sim::SsdConfig apply_mq_overrides(sim::SsdConfig cfg) const {
    if (queue_depth > 0) cfg.queue_depth = queue_depth;
    if (has_completion_mode) cfg.completion_mode = completion_mode;
    return cfg;
  }
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--csv-prefix") == 0 && i + 1 < argc) {
      args.csv_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (args.threads < 1) args.threads = 1;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      args.metrics_json = argv[++i];
    } else if (std::strcmp(argv[i], "--codec") == 0 && i + 1 < argc) {
      const auto parsed = blockdev::parse_codec_kind(argv[++i]);
      if (!parsed.has_value()) {
        std::fprintf(stderr, "unknown --codec (want identity|prefix|lz)\n");
        std::exit(2);
      }
      args.codec = *parsed;
    } else if (std::strcmp(argv[i], "--clients") == 0 && i + 1 < argc) {
      args.clients = std::strtoull(argv[++i], nullptr, 10);
      if (args.clients < 1) args.clients = 1;
    } else if (std::strcmp(argv[i], "--inflight") == 0 && i + 1 < argc) {
      args.inflight = std::strtoull(argv[++i], nullptr, 10);
      if (args.inflight < 1) args.inflight = 1;
    } else if (std::strcmp(argv[i], "--queue-depth") == 0 && i + 1 < argc) {
      args.queue_depth = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (args.queue_depth < 1) {
        std::fprintf(stderr, "--queue-depth wants a positive integer\n");
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--completion-mode") == 0 && i + 1 < argc) {
      const char* mode = argv[++i];
      if (std::strcmp(mode, "polling") == 0) {
        args.completion_mode = sim::CompletionMode::kPolling;
      } else if (std::strcmp(mode, "interrupt") == 0) {
        args.completion_mode = sim::CompletionMode::kInterrupt;
      } else {
        std::fprintf(stderr,
                     "unknown --completion-mode (want polling|interrupt)\n");
        std::exit(2);
      }
      args.has_completion_mode = true;
    } else if (std::strcmp(argv[i], "--workload") == 0 && i + 1 < argc) {
      args.workload = argv[++i];
      args.workload_spec = kv::make_workload_preset(args.workload);
      if (!args.workload_spec.has_value()) {
        std::fprintf(stderr, "unknown --workload (want %s)\n",
                     kv::workload_preset_names());
        std::exit(2);
      }
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--quick] [--seed N] [--csv-prefix P] [--threads N] "
          "[--metrics-json FILE] [--codec identity|prefix|lz] "
          "[--clients K] [--inflight D] [--queue-depth N] "
          "[--completion-mode polling|interrupt] [--workload %s]\n",
          argv[0], kv::workload_preset_names());
      std::exit(0);
    }
  }
  // The default prefix points into results/; create the directory so a
  // fresh checkout (or a custom DIR/ prefix) can write CSVs immediately.
  const std::filesystem::path dir =
      std::filesystem::path(args.csv_prefix).parent_path();
  if (!dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
  }
  return args;
}

/// Write `reg`'s JSON snapshot to `path`; returns false (with a message on
/// stderr) if the file cannot be written.
inline bool write_metrics_json(const stats::MetricsRegistry& reg,
                               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write metrics JSON to %s\n", path.c_str());
    return false;
  }
  const std::string json = reg.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("metrics JSON written to %s\n", path.c_str());
  return true;
}

inline void banner(const char* what, const char* paper_ref) {
  std::printf("damkit reproduction bench: %s\n", what);
  std::printf("paper reference: %s (Bender et al., SPAA '19)\n", paper_ref);
}

}  // namespace damkit::bench
