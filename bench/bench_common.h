// Shared helpers for the table/figure reproduction binaries: a tiny flag
// parser (--quick scales everything down; --seed sets determinism) and a
// banner printer so every bench states what it reproduces.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "stats/metrics.h"

namespace damkit::bench {

struct BenchArgs {
  bool quick = false;    // reduced scale for smoke runs
  uint64_t seed = 42;
  std::string csv_prefix = "results_";
  /// Host threads for sweep parallelism. Each sweep point owns its device
  /// and RNG, so any value produces identical output — more threads only
  /// finish sooner.
  int threads = 1;
  /// When non-empty, benches that collect a MetricsRegistry write its JSON
  /// snapshot here (CI's regression gate consumes it).
  std::string metrics_json;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      args.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--csv-prefix") == 0 && i + 1 < argc) {
      args.csv_prefix = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      args.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (args.threads < 1) args.threads = 1;
    } else if (std::strcmp(argv[i], "--metrics-json") == 0 && i + 1 < argc) {
      args.metrics_json = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: %s [--quick] [--seed N] [--csv-prefix P] [--threads N] "
          "[--metrics-json FILE]\n",
          argv[0]);
      std::exit(0);
    }
  }
  return args;
}

/// Write `reg`'s JSON snapshot to `path`; returns false (with a message on
/// stderr) if the file cannot be written.
inline bool write_metrics_json(const stats::MetricsRegistry& reg,
                               const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write metrics JSON to %s\n", path.c_str());
    return false;
  }
  const std::string json = reg.to_json();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("metrics JSON written to %s\n", path.c_str());
  return true;
}

inline void banner(const char* what, const char* paper_ref) {
  std::printf("damkit reproduction bench: %s\n", what);
  std::printf("paper reference: %s (Bender et al., SPAA '19)\n", paper_ref);
}

}  // namespace damkit::bench
