// BENCH_compression: does block compression buy exactly the sim time the
// affine model says it should?
//
// The codec layer (src/blockdev/codec.h) keeps the extent layout — and
// therefore every seek and rotation — untouched, and shrinks only the
// transferred bytes of each IO. Under cost(x) = 1 + αx that pins the
// prediction completely: for the SAME workload run with and without a
// codec, the IO count is identical, the setup term cancels, and
//
//     sim_time(identity) − sim_time(codec)  ≈  α · (bytes saved)
//
// with α realized here as the drive's expected transfer seconds per byte.
// Three sections:
//
//   1. affine anchor — uniform random reads on the uniform-zone drive,
//      checking the measured setup/transfer split against the closed form
//      (the CI gate's 5% affine consistency check feeds on this);
//   2. speedup — B-tree read-heavy and Bε-tree write-heavy workloads run
//      per codec; the measured sim-time delta must track α·(bytes saved)
//      within 15% (asserted; non-zero exit on violation). An LSM mixed
//      workload is reported unasserted: compaction boundaries depend on
//      stored sizes, so its IO count is not codec-invariant.
//   3. node-size sweep — query cost vs node size for identity and lz;
//      compression lowers the per-byte term, so the optimal node size
//      must not shrink (asserted) and in practice grows (§5–7: a smaller
//      effective α favors larger nodes).
//
// CI gates the emitted JSON against bench/baselines/
// BENCH_compression_baseline.json via tools/check_bench_regression.py.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "damkit.h"

namespace {

using namespace damkit;

// Uniform-zone drive: zone_ratio 1.0 makes transfer time exactly
// bytes / avg_bandwidth (no zoning noise in the α·bytes prediction), and
// the high spindle speed keeps per-IO rotational phase differences — the
// only nondeterminism between an identity run and a codec run — small
// against the transfer deltas being measured. The modest media rate keeps
// the transfer term (the thing compression attacks) prominent at the
// node sizes swept below.
sim::HddConfig compression_hdd_profile() {
  sim::HddConfig cfg;
  cfg.name = "uniform-zone-hdd";
  cfg.year = 2019;
  cfg.rpm = 15000.0;
  cfg.zone_ratio = 1.0;
  cfg.avg_bandwidth_bps = 50.0e6;
  // A compressed read parks the head at the frame's end, an uncompressed
  // one at the extent's end — sometimes a different track. A fast settle
  // time bounds what that position difference can cost (seek(0) is free,
  // seek(1 track) costs the settle), keeping the delta about transferred
  // bytes rather than head-position luck.
  cfg.track_to_track_s = 0.0001;
  // Not a power of two: power-of-two node extents then land on densely
  // varied intra-track angles, so rotational waits stay phase-decorrelated
  // from the (constant per codec) transfer times. With 2^k extents inside
  // 2^20-byte tracks the 8 quantized target angles phase-lock against the
  // IO cadence and bias the identity-vs-codec delta by whole rotations.
  cfg.track_bytes = 1'000'000;
  return cfg;
}

std::string key_of(uint64_t k) {
  return strfmt("%016llu", static_cast<unsigned long long>(k));
}

// Record-shaped values: repeated field tags and low-entropy filler, the
// redundancy a page of real KV data carries. kv::make_value is designed
// to be incompressible and would starve the codecs of matches.
std::string compressible_value(uint64_t id, size_t bytes) {
  std::string v = strfmt("id=%016llu|tag=record-%04llu|flags=0000|",
                         static_cast<unsigned long long>(id),
                         static_cast<unsigned long long>(id % 10000));
  while (v.size() < bytes) {
    v.append("the quick brown fox jumps over the lazy disk arm ");
  }
  v.resize(bytes);
  return v;
}

// Section 1: the affine anchor. Track-aligned sub-track reads at uniform
// random tracks, so measured setup is the closed-form mean seek + half a
// rotation + command overhead and measured transfer is pure media time.
void run_affine_anchor(const bench::BenchArgs& args,
                       stats::MetricsRegistry& reg) {
  const sim::HddConfig profile = compression_hdd_profile();
  sim::HddDevice dev(profile);
  sim::IoContext io(dev);
  Rng rng(args.seed);
  const uint64_t io_bytes = profile.track_bytes / 4;
  const uint64_t tracks = profile.capacity_bytes / profile.track_bytes;
  const int ios = args.quick ? 600 : 2400;
  for (int i = 0; i < ios; ++i) {
    io.touch_read((rng.next() % tracks) * profile.track_bytes, io_bytes);
  }
  dev.export_metrics(reg, "hdd.");
  reg.set("hdd.sim_seconds", sim::to_seconds(io.now()));
}

// One workload run on a fresh device: simulated seconds, device IO count
// and byte volume, and the engine's codec ratio (1.0 under identity).
struct RunOutcome {
  double sim_s = 0.0;
  uint64_t ios = 0;
  uint64_t bytes = 0;
  double ratio = 1.0;
};

struct Workload {
  const char* name;
  kv::EngineKind kind;
  /// Exercise the engine; bulk-load plus op stream, all through `dict`.
  void (*drive)(const bench::BenchArgs&, kv::Dictionary&);
  /// IO count must match across codecs (setup cancels in the delta).
  bool codec_invariant_ios;
};

RunOutcome run_workload(const bench::BenchArgs& args, const Workload& wl,
                        blockdev::CodecKind codec) {
  sim::HddDevice dev(compression_hdd_profile(), args.seed);
  sim::IoContext io(dev);
  kv::EngineConfig cfg;
  cfg.codec = codec;
  cfg.btree.node_bytes = 128 * kKiB;
  cfg.btree.cache_bytes = 2 * kMiB;
  cfg.betree.node_bytes = 128 * kKiB;
  cfg.betree.cache_bytes = 1 * kMiB;
  cfg.lsm.memtable_bytes = 256 * kKiB;
  cfg.lsm.sstable_target_bytes = 128 * kKiB;
  cfg.lsm.level1_bytes = 1 * kMiB;
  const auto dict = kv::make_engine(wl.kind, dev, io, cfg);

  wl.drive(args, *dict);
  dict->flush();

  RunOutcome out;
  out.sim_s = sim::to_seconds(io.now());
  out.ios = dev.stats().reads + dev.stats().writes;
  out.bytes = dev.stats().bytes_read + dev.stats().bytes_written;
  stats::MetricsRegistry tree;
  dict->export_metrics(tree, "t.");
  for (const char* gauge : {"t.store.codec.ratio", "t.codec.ratio"}) {
    if (tree.has_gauge(gauge)) out.ratio = tree.gauge(gauge);
  }
  return out;
}

void drive_btree_reads(const bench::BenchArgs& args, kv::Dictionary& dict) {
  const uint64_t n = args.quick ? 20'000 : 60'000;
  dict.bulk_load(n, [](uint64_t i) {
    return std::make_pair(key_of(i * 2), compressible_value(i, 100));
  });
  Rng rng(args.seed + 11);
  const uint64_t gets = args.quick ? 1'500 : 4'000;
  for (uint64_t g = 0; g < gets; ++g) {
    (void)dict.get(key_of((rng.next() % n) * 2));
  }
}

void drive_betree_writes(const bench::BenchArgs& args, kv::Dictionary& dict) {
  const uint64_t n = args.quick ? 8'000 : 24'000;
  Rng rng(args.seed + 13);
  for (uint64_t p = 0; p < n; ++p) {
    const uint64_t id = rng.next() % (n * 4);
    dict.put(key_of(id), compressible_value(id, 100));
  }
}

void drive_lsm_mixed(const bench::BenchArgs& args, kv::Dictionary& dict) {
  const uint64_t n = args.quick ? 8'000 : 24'000;
  Rng rng(args.seed + 17);
  for (uint64_t p = 0; p < n; ++p) {
    const uint64_t id = rng.next() % (n * 2);
    dict.put(key_of(id), compressible_value(id, 100));
    if (p % 4 == 0) (void)dict.get(key_of(rng.next() % (n * 2)));
  }
}

// Section 3: node-size sweep (B-tree, identity vs lz). The workload is
// the §5 OLTP/OLAP mix: every op is one random point get plus one short
// range scan. Point gets want small nodes (pay setup once, αB is waste);
// scans want large nodes (amortize setup over the scanned range) — the
// affine model puts the optimum at B* ≈ sqrt(scan_bytes · s / α), so a
// codec that shrinks the effective α by ratio ρ must move the optimum out
// by about 1/sqrt(ρ). The cache is a few nodes (root + internals): leaf
// IOs miss at every node size, keeping the s-vs-αB tradeoff visible.
struct SweepOutcome {
  double query_ms = 0.0;  // mean simulated ms per (get + scan) op
  double sim_s = 0.0;     // whole point, load included (the gated total)
};

SweepOutcome run_sweep_point(const bench::BenchArgs& args, uint64_t node_bytes,
                             blockdev::CodecKind codec) {
  sim::HddDevice dev(compression_hdd_profile(), args.seed);
  sim::IoContext io(dev);
  const uint64_t n = args.quick ? 60'000 : 150'000;
  kv::EngineConfig cfg;
  cfg.codec = codec;
  cfg.btree.node_bytes = node_bytes;
  // Constant byte budget at every sweep point (a cache that scaled with B
  // would hand large nodes an unrelated advantage), floored at a
  // root-to-leaf path for the largest nodes. Small against the data set,
  // so leaf IOs miss throughout.
  cfg.btree.cache_bytes = std::max<uint64_t>(2 * kMiB, node_bytes * 4);
  const auto dict =
      kv::make_engine(kv::EngineKind::kBTree, dev, io, cfg);
  dict->bulk_load(n, [](uint64_t i) {
    return std::make_pair(key_of(i * 2), compressible_value(i, 100));
  });

  Rng rng(args.seed ^ node_bytes);
  const uint64_t ops = args.quick ? 300 : 1'000;
  const size_t scan_items = 320;  // ~37 KiB of records per scan
  const sim::SimTime before = io.now();
  for (uint64_t q = 0; q < ops; ++q) {
    (void)dict->get(key_of((rng.next() % n) * 2));
    (void)dict->range_scan(key_of((rng.next() % n) * 2), scan_items);
  }
  SweepOutcome out;
  out.query_ms =
      sim::to_seconds(io.now() - before) * 1e3 / static_cast<double>(ops);
  out.sim_s = sim::to_seconds(io.now());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.metrics_json.empty()) args.metrics_json = "BENCH_compression.json";
  bench::banner("block compression vs the affine model",
                "§4.2 extension: codecs shrink αx, never the setup term");

  const sim::HddConfig profile = compression_hdd_profile();
  const double alpha_s_per_byte = profile.expected_transfer_s_per_byte();
  int failures = 0;
  stats::MetricsRegistry reg;
  run_affine_anchor(args, reg);

  // --- Section 2: measured speedup vs α·(bytes saved) ---------------------
  const std::vector<Workload> workloads = {
      {"btree_reads", kv::EngineKind::kBTree, drive_btree_reads, true},
      {"betree_writes", kv::EngineKind::kBeTree, drive_betree_writes, true},
      {"lsm_mixed", kv::EngineKind::kLsm, drive_lsm_mixed, false},
  };
  const std::vector<blockdev::CodecKind> codecs = {
      blockdev::CodecKind::kIdentity, blockdev::CodecKind::kPrefix,
      blockdev::CodecKind::kLz};

  // All (workload, codec) runs are independent; run them on the thread
  // pool and compare after the barrier.
  std::vector<RunOutcome> outcomes(workloads.size() * codecs.size());
  harness::parallel_sweep(outcomes.size(), args.threads, [&](size_t i) {
    outcomes[i] =
        run_workload(args, workloads[i / codecs.size()], codecs[i % codecs.size()]);
  });

  Table speedup({"workload", "codec", "sim_s", "ios", "MiB", "ratio",
                 "saved_MiB", "measured_ds", "alpha*saved", "err%"});
  for (size_t w = 0; w < workloads.size(); ++w) {
    const RunOutcome& base = outcomes[w * codecs.size()];
    for (size_t c = 0; c < codecs.size(); ++c) {
      const RunOutcome& out = outcomes[w * codecs.size() + c];
      const std::string prefix = std::string("compression.") +
                                 workloads[w].name + "." +
                                 std::string(blockdev::codec_kind_name(codecs[c]));
      reg.set(prefix + ".sim_seconds", out.sim_s);
      reg.set(prefix + ".device_mib",
              static_cast<double>(out.bytes) / static_cast<double>(kMiB));
      reg.set(prefix + ".codec_ratio", out.ratio);
      const std::string cname(blockdev::codec_kind_name(codecs[c]));
      std::string measured = "-", predicted = "-", err = "-", saved = "-";
      if (c > 0) {
        const double saved_bytes =
            static_cast<double>(base.bytes) - static_cast<double>(out.bytes);
        const double predicted_ds = saved_bytes * alpha_s_per_byte;
        const double measured_ds = base.sim_s - out.sim_s;
        const double rel_err =
            std::abs(measured_ds - predicted_ds) / predicted_ds;
        reg.set(prefix + ".alpha_tracking_error", rel_err);
        saved = strfmt("%.1f", saved_bytes / static_cast<double>(kMiB));
        measured = strfmt("%.3f", measured_ds);
        predicted = strfmt("%.3f", predicted_ds);
        err = strfmt("%.1f", rel_err * 100.0);
        if (workloads[w].codec_invariant_ios) {
          if (out.ios != base.ios) {
            std::fprintf(stderr,
                         "FAIL %s/%s: IO count changed under compression "
                         "(%llu vs %llu) — setup no longer cancels\n",
                         workloads[w].name, cname.c_str(),
                         static_cast<unsigned long long>(out.ios),
                         static_cast<unsigned long long>(base.ios));
            ++failures;
          }
          if (rel_err > 0.15) {
            std::fprintf(stderr,
                         "FAIL %s/%s: measured speedup %.3fs is %.1f%% off "
                         "alpha*(bytes saved) = %.3fs (limit 15%%)\n",
                         workloads[w].name, cname.c_str(), measured_ds,
                         rel_err * 100.0, predicted_ds);
            ++failures;
          }
        }
      }
      speedup.add_row({workloads[w].name,
                       std::string(blockdev::codec_kind_name(codecs[c])),
                       strfmt("%.3f", out.sim_s),
                       strfmt("%llu", static_cast<unsigned long long>(out.ios)),
                       strfmt("%.1f", static_cast<double>(out.bytes) /
                                          static_cast<double>(kMiB)),
                       strfmt("%.3f", out.ratio), saved, measured, predicted,
                       err});
    }
  }
  harness::emit("Compression speedup vs alpha * bytes saved (uniform-zone "
                "HDD, alpha = 1/50 MB/s)",
                speedup, args.csv_prefix + "compression_speedup.csv");
  std::printf(
      "model: identical IO counts mean the setup term cancels; the sim-time\n"
      "delta must equal the transfer delta = alpha * (bytes saved). LSM is\n"
      "reported unasserted (compaction boundaries depend on stored sizes).\n");

  // --- Section 3: node-size sweep, identity vs lz -------------------------
  const std::vector<uint64_t> node_sizes = {16 * kKiB,  32 * kKiB,
                                            64 * kKiB,  128 * kKiB,
                                            256 * kKiB, 512 * kKiB};
  const std::vector<blockdev::CodecKind> sweep_codecs = {
      blockdev::CodecKind::kIdentity, blockdev::CodecKind::kLz};
  std::vector<SweepOutcome> sweep(node_sizes.size() * sweep_codecs.size());
  harness::parallel_sweep(sweep.size(), args.threads, [&](size_t i) {
    sweep[i] = run_sweep_point(args, node_sizes[i % node_sizes.size()],
                               sweep_codecs[i / node_sizes.size()]);
  });

  Table fig({"node_KiB", "identity_query_ms", "lz_query_ms"});
  std::vector<uint64_t> best(sweep_codecs.size());
  for (size_t c = 0; c < sweep_codecs.size(); ++c) {
    const std::string cname(blockdev::codec_kind_name(sweep_codecs[c]));
    double total_s = 0.0;
    double min_ms = sweep[c * node_sizes.size()].query_ms;
    for (size_t s = 0; s < node_sizes.size(); ++s) {
      const SweepOutcome& point = sweep[c * node_sizes.size() + s];
      total_s += point.sim_s;
      min_ms = std::min(min_ms, point.query_ms);
      reg.set(strfmt("compression.sweep.%s.q%llu_ms", cname.c_str(),
                     static_cast<unsigned long long>(node_sizes[s] / kKiB)),
              point.query_ms);
    }
    // The optimum is reported as the right edge of the plateau: the
    // largest node size within 3% of the minimum. Near the optimum the
    // cost curve is flat, so a raw argmin is decided by rotational-phase
    // noise; the plateau edge is what a designer would provision, and it
    // is exactly what a smaller effective α extends rightward.
    for (size_t s = 0; s < node_sizes.size(); ++s) {
      if (sweep[c * node_sizes.size() + s].query_ms <= min_ms * 1.03) {
        best[c] = node_sizes[s];
      }
    }
    reg.set("compression.sweep." + cname + ".sim_seconds", total_s);
    reg.set("compression.sweep." + cname + ".best_node_kib",
            static_cast<double>(best[c] / kKiB));
  }
  for (size_t s = 0; s < node_sizes.size(); ++s) {
    fig.add_row(
        {strfmt("%llu", static_cast<unsigned long long>(node_sizes[s] / kKiB)),
         strfmt("%.3f", sweep[s].query_ms),
         strfmt("%.3f", sweep[node_sizes.size() + s].query_ms)});
  }
  harness::emit("B-tree query cost vs node size, identity vs lz",
                fig, args.csv_prefix + "compression_sweep.csv");
  std::printf("optimal node size: identity %llu KiB, lz %llu KiB\n",
              static_cast<unsigned long long>(best[0] / kKiB),
              static_cast<unsigned long long>(best[1] / kKiB));
  if (best[1] < best[0]) {
    std::fprintf(stderr,
                 "FAIL sweep: compression shrank the optimal node size "
                 "(%llu KiB < %llu KiB) — a smaller effective alpha must "
                 "favor nodes at least as large\n",
                 static_cast<unsigned long long>(best[1] / kKiB),
                 static_cast<unsigned long long>(best[0] / kKiB));
    ++failures;
  }

  if (failures > 0) {
    std::fprintf(stderr, "%d compression model check(s) FAILED\n", failures);
  }
  const bool wrote = bench::write_metrics_json(reg, args.metrics_json);
  return (failures == 0 && wrote) ? 0 : 1;
}
