// Theorem 9: the internally-reorganized Bε-tree (per-child buffer
// segments ≤ B/F, pivots delivered by the parent, basement-granularity
// leaf reads) makes point queries cost (1 + αB/F + αF) per level instead
// of (1 + αB) — without hurting inserts.
//
// This bench runs the standard and the optimized Bε-tree on identical
// workloads across node sizes and reports query/insert times and the
// mean query IO size. Ablation: the B/F segment cap is the mechanism; the
// "segment bytes" column shows it directly.
#include <memory>

#include "bench_common.h"
#include "harness/report.h"
#include "kv/engine.h"
#include "kv/slice.h"
#include "kv/workload.h"
#include "sim/profiles.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace {

struct PointResult {
  double query_ms = 0.0;
  double insert_ms = 0.0;
  double mean_query_io_bytes = 0.0;
};

PointResult measure(bool optimized, uint64_t node_bytes, uint64_t items,
                    uint64_t queries, uint64_t inserts, uint64_t seed) {
  using namespace damkit;
  sim::HddDevice dev(sim::testbed_hdd_profile(), seed);
  sim::IoContext io(dev);
  kv::EngineConfig cfg;
  cfg.betree.node_bytes = node_bytes;
  cfg.betree.target_fanout = 0;  // sqrt(B)
  cfg.betree.pivot_estimate_bytes = 24;
  cfg.betree.cache_bytes = std::max<uint64_t>(
      static_cast<uint64_t>(0.25 * 122.0 * static_cast<double>(items)),
      node_bytes * 4);
  const std::unique_ptr<kv::Dictionary> tree = kv::make_engine(
      optimized ? kv::EngineKind::kOptBeTree : kv::EngineKind::kBeTree, dev,
      io, cfg);
  tree->bulk_load(items, [](uint64_t i) {
    return std::make_pair(kv::encode_key(i, 16), kv::make_value(i, 100));
  });

  PointResult out;
  Rng rng(seed ^ node_bytes);
  {
    dev.clear_stats();
    const sim::SimTime before = io.now();
    for (uint64_t q = 0; q < queries; ++q) {
      const uint64_t id = rng.uniform(items);
      if (!tree->get(kv::encode_key(id, 16)).has_value()) {
        std::fprintf(stderr, "missing key!\n");
        std::abort();
      }
    }
    out.query_ms = sim::to_seconds(io.now() - before) * 1e3 /
                   static_cast<double>(queries);
    out.mean_query_io_bytes =
        dev.stats().reads == 0
            ? 0.0
            : static_cast<double>(dev.stats().bytes_read) /
                  static_cast<double>(dev.stats().reads);
  }
  {
    const sim::SimTime before = io.now();
    for (uint64_t u = 0; u < inserts; ++u) {
      const uint64_t id = rng.uniform(items);
      tree->put(kv::encode_key(id, 16), kv::make_value(id ^ u, 100));
    }
    tree->flush();
    out.insert_ms = sim::to_seconds(io.now() - before) * 1e3 /
                    static_cast<double>(inserts);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Theorem 9 — optimized Be-tree vs standard Be-tree",
                "Theorem 9 / Corollaries 11-12, §6");

  const uint64_t items = args.quick ? 150'000 : 600'000;
  const uint64_t queries = args.quick ? 150 : 400;
  const uint64_t inserts = args.quick ? 150 : 400;

  Table t({"node size", "std query ms", "opt query ms", "query speedup",
           "std insert ms", "opt insert ms", "std query IO", "opt query IO"});
  for (uint64_t b : {256 * kKiB, 1 * kMiB, 4 * kMiB}) {
    const PointResult std_r =
        measure(false, b, items, queries, inserts, args.seed);
    const PointResult opt_r =
        measure(true, b, items, queries, inserts, args.seed);
    t.add_row({format_bytes(b), strfmt("%.2f", std_r.query_ms),
               strfmt("%.2f", opt_r.query_ms),
               strfmt("%.2fx", std_r.query_ms / opt_r.query_ms),
               strfmt("%.2f", std_r.insert_ms),
               strfmt("%.2f", opt_r.insert_ms),
               format_bytes(static_cast<uint64_t>(std_r.mean_query_io_bytes)),
               format_bytes(
                   static_cast<uint64_t>(opt_r.mean_query_io_bytes))});
  }
  harness::emit("Theorem 9: sub-node query IOs across node sizes", t,
                args.csv_prefix + "opt_betree.csv");
  std::printf(
      "\npaper: query IO per level drops from 1+aB to 1+aB/F+aF — a win "
      "once aB >> 1 (nodes past the half-bandwidth point, the regime "
      "Corollaries 11-12 put Be-trees in), while inserts stay within a "
      "constant. At small B the setup cost dominates both designs and "
      "segment-granular caching can even lose slightly. This is the "
      "TokuDB basement-node design explained (§6).\n");
  return 0;
}
