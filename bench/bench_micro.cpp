// Microbenchmarks of damkit's core components (google-benchmark): raw
// host-CPU throughput of the structures and simulators. These are not
// paper reproductions — they guard against performance regressions in
// the library itself.
#include <benchmark/benchmark.h>

#include <memory>

#include "cache/buffer_pool.h"
#include "kv/engine.h"
#include "kv/slice.h"
#include "pdam_tree/veb_layout.h"
#include "sim/closed_loop.h"
#include "sim/hdd.h"
#include "sim/profiles.h"
#include "sim/scheduler.h"
#include "sim/ssd.h"
#include "util/bloom.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/stats.h"

namespace {

using namespace damkit;

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfianSample(benchmark::State& state) {
  Rng rng(1);
  Zipfian z(1'000'000, 0.99);
  for (auto _ : state) benchmark::DoNotOptimize(z.sample(rng));
}
BENCHMARK(BM_ZipfianSample);

void BM_HddSubmit(benchmark::State& state) {
  sim::HddDevice dev(sim::testbed_hdd_profile());
  Rng rng(2);
  sim::SimTime now = 0;
  for (auto _ : state) {
    const uint64_t off = rng.uniform(dev.capacity_bytes() / 4096) * 4096;
    now = dev.submit({sim::IoKind::kRead, off, 4096}, now).finish;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HddSubmit);

void BM_SsdSubmit(benchmark::State& state) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  Rng rng(2);
  sim::SimTime now = 0;
  for (auto _ : state) {
    const uint64_t off =
        rng.uniform(dev.capacity_bytes() / (64 * kKiB)) * 64 * kKiB;
    now = dev.submit({sim::IoKind::kRead, off, 64 * kKiB}, now).finish;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SsdSubmit);

void BM_BufferPoolGetHit(benchmark::State& state) {
  cache::BufferPool pool(1 << 20, [](uint64_t, void*) { return Status(); });
  for (uint64_t i = 0; i < 64; ++i) {
    pool.put(i, std::make_shared<int>(static_cast<int>(i)), 1024, false);
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.get<int>(i % 64));
    ++i;
  }
}
BENCHMARK(BM_BufferPoolGetHit);

struct EngineFixture {
  EngineFixture(kv::EngineKind kind, uint64_t node_bytes, uint64_t items) {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 8ULL * kGiB;
    dev = std::make_unique<sim::HddDevice>(cfg, 1);
    io = std::make_unique<sim::IoContext>(*dev);
    kv::EngineConfig ec;
    ec.btree.node_bytes = node_bytes;
    ec.btree.cache_bytes = 64 * kMiB;  // in-cache: measures CPU cost
    ec.betree.node_bytes = node_bytes;
    ec.betree.cache_bytes = 64 * kMiB;
    tree = kv::make_engine(kind, *dev, *io, ec);
    tree->bulk_load(items, [](uint64_t i) {
      return std::make_pair(kv::encode_key(i), kv::make_value(i, 100));
    });
  }
  std::unique_ptr<sim::HddDevice> dev;
  std::unique_ptr<sim::IoContext> io;
  std::unique_ptr<kv::Dictionary> tree;
};

void BM_BTreeGet(benchmark::State& state) {
  EngineFixture f(kv::EngineKind::kBTree, 64 * kKiB, 100'000);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tree->get(kv::encode_key(rng.uniform(100'000))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreeGet);

void BM_BTreePut(benchmark::State& state) {
  EngineFixture f(kv::EngineKind::kBTree, 64 * kKiB, 100'000);
  Rng rng(3);
  for (auto _ : state) {
    const uint64_t id = rng.uniform(100'000);
    f.tree->put(kv::encode_key(id), kv::make_value(id, 100));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BTreePut);

void BM_BeTreePut(benchmark::State& state) {
  EngineFixture f(kv::EngineKind::kBeTree, 256 * kKiB, 100'000);
  Rng rng(3);
  for (auto _ : state) {
    const uint64_t id = rng.uniform(200'000);
    f.tree->put(kv::encode_key(id), kv::make_value(id, 100));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BeTreePut);

void BM_BeTreeGet(benchmark::State& state) {
  EngineFixture f(kv::EngineKind::kBeTree, 256 * kKiB, 100'000);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tree->get(kv::encode_key(rng.uniform(100'000))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BeTreeGet);

void BM_BeTreeUpsert(benchmark::State& state) {
  EngineFixture f(kv::EngineKind::kBeTree, 256 * kKiB, 100'000);
  Rng rng(3);
  for (auto _ : state) {
    f.tree->upsert(kv::encode_key(rng.uniform(100'000)), 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BeTreeUpsert);

void BM_VebLayoutBuild(benchmark::State& state) {
  const int h = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pdam_tree::veb_positions(h));
  }
}
BENCHMARK(BM_VebLayoutBuild)->Arg(10)->Arg(16)->Arg(20);

void BM_ClosedLoop(benchmark::State& state) {
  for (auto _ : state) {
    sim::SsdDevice dev(sim::testbed_ssd_profile());
    sim::ClosedLoopConfig cl;
    cl.clients = 8;
    cl.ios_per_client = 512;
    cl.io_bytes = 64 * kKiB;
    benchmark::DoNotOptimize(sim::run_closed_loop(dev, cl));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 8 * 512);
}
BENCHMARK(BM_ClosedLoop);

struct LsmFixture {
  LsmFixture() {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 8ULL * kGiB;
    dev = std::make_unique<sim::HddDevice>(cfg, 1);
    io = std::make_unique<sim::IoContext>(*dev);
    kv::EngineConfig ec;
    ec.lsm.memtable_bytes = 1 * kMiB;
    ec.lsm.sstable_target_bytes = 2 * kMiB;
    tree = kv::make_engine(kv::EngineKind::kLsm, *dev, *io, ec);
    for (uint64_t i = 0; i < 100'000; ++i) {
      tree->put(kv::encode_key(i), kv::make_value(i, 100));
    }
    tree->flush();
  }
  std::unique_ptr<sim::HddDevice> dev;
  std::unique_ptr<sim::IoContext> io;
  std::unique_ptr<kv::Dictionary> tree;
};

void BM_LsmPut(benchmark::State& state) {
  LsmFixture f;
  Rng rng(3);
  for (auto _ : state) {
    const uint64_t id = rng.uniform(200'000);
    f.tree->put(kv::encode_key(id), kv::make_value(id, 100));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LsmPut);

void BM_LsmGet(benchmark::State& state) {
  LsmFixture f;
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tree->get(kv::encode_key(rng.uniform(100'000))));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_LsmGet);

void BM_BloomMayContain(benchmark::State& state) {
  BloomFilter f(100'000, 10.0);
  for (uint64_t i = 0; i < 100'000; ++i) f.add(kv::encode_key(i));
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.may_contain(kv::encode_key(rng.next())));
  }
}
BENCHMARK(BM_BloomMayContain);

void BM_SchedulerScan(benchmark::State& state) {
  Rng rng(7);
  std::vector<sim::TimedRequest> reqs;
  for (int i = 0; i < 512; ++i) {
    reqs.push_back({{sim::IoKind::kRead,
                     rng.uniform((500ULL << 30) / 4096 - 1) * 4096, 4096},
                    0});
  }
  for (auto _ : state) {
    sim::HddDevice dev(sim::testbed_hdd_profile(), 1);
    benchmark::DoNotOptimize(
        run_scheduled(dev, {sim::SchedPolicy::kScan, 32}, reqs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_SchedulerScan);

void BM_SegmentedFit(benchmark::State& state) {
  std::vector<double> x, y;
  for (int i = 1; i <= 64; ++i) {
    x.push_back(i);
    y.push_back(i <= 8 ? 10.0 : 10.0 + 2.0 * (i - 8));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(segmented_linear_fit(x, y));
  }
}
BENCHMARK(BM_SegmentedFit);

}  // namespace

BENCHMARK_MAIN();
