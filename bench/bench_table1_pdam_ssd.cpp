// Table 1: experimentally derived PDAM values for the four SSDs.
//
// For each simulated device, run p = 1..64 closed-loop random-read rounds
// (64 KiB IOs), then estimate P via segmented linear regression and report
// P, the saturated throughput ∝PB, and R² — the exact procedure of §4.1.
// Paper values: 860 pro (3.3, 530), 970 pro (5.5, 2500), S55 (2.9, 260),
// Ultra II (4.6, 520), all with R² within 0.1% of 1.
#include "bench_common.h"
#include "harness/experiments.h"
#include "harness/report.h"
#include "sim/profiles.h"
#include "util/bytes.h"

int main(int argc, char** argv) {
  using namespace damkit;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Table 1 — PDAM parameters of four SSDs", "Table 1, §4.1");

  harness::PdamExperimentConfig cfg;
  cfg.bytes_per_thread = args.quick ? 64ULL * kMiB : 1ULL * kGiB;
  cfg.seed = args.seed;
  cfg.threads = args.threads;
  std::printf(
      "scale note: %s per thread (paper used 10 GiB; fitted P and MB/s are "
      "volume-invariant)\n",
      format_bytes(cfg.bytes_per_thread).c_str());

  std::vector<std::pair<std::string, harness::PdamExperimentResult>> rows;
  for (const sim::SsdConfig& ssd : sim::paper_ssd_profiles()) {
    rows.emplace_back(ssd.name, harness::run_pdam_experiment(ssd, cfg));
  }
  const Table table = harness::make_pdam_table(rows);
  harness::emit("Table 1: P and saturated throughput per SSD", table,
                args.csv_prefix + "table1.csv");
  std::printf(
      "\npaper:     860 pro P=3.3 @530 MB/s | 970 pro P=5.5 @2500 | "
      "S55 P=2.9 @260 | Ultra II P=4.6 @520\n");
  return 0;
}
