// Table 3: node-size sensitivity analysis of B-trees and Bε-trees in the
// affine model, plus the optimal-choice corollaries (6, 7, 11, 12).
//
// This bench is analytic: it evaluates the paper's cost formulas across
// node sizes and prints (a) the Table 3 cost rows, (b) the optimal node
// sizes of Corollaries 6-7, and (c) the Corollary 12 Bε-tree that matches
// B-tree queries while inserting Θ(log 1/α) faster.
#include <cmath>

#include "bench_common.h"
#include "harness/report.h"
#include "model/tree_costs.h"
#include "util/bytes.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace damkit;
  using namespace damkit::model;
  const bench::BenchArgs args = bench::parse_args(argc, argv);
  bench::banner("Table 3 — affine-model cost sensitivity", "Table 3, §5-6");

  // Working point: a disk with alpha per element. Elements are the unit:
  // with ~128-byte entries on a 2011-era disk (alpha ~ 0.003 per 4 KiB),
  // alpha per element ~ 1e-4.
  const double alpha = 1e-4;
  TreeParams p;
  p.alpha = alpha;
  p.n = 1e9;
  p.m = 1e6;

  Table t({"B (elements)", "B-tree op", "B^1/2-tree insert",
           "B^1/2-tree query", "Be-tree insert (F=16)",
           "Be-tree query naive", "Be-tree query opt (Thm 9)"});
  for (double b = 256; b <= 64.0 / alpha; b *= 4) {
    const double f16 = 16.0;
    t.add_row({strfmt("%.0f", b), strfmt("%.2f", btree_op_cost(p, b)),
               strfmt("%.3f", bhalf_tree_insert_cost(p, b)),
               strfmt("%.2f", bhalf_tree_query_cost(p, b)),
               strfmt("%.3f", betree_insert_cost(p, b, f16)),
               strfmt("%.2f", betree_query_cost_naive(p, b, f16)),
               strfmt("%.2f", betree_query_cost_optimized(p, b, f16))});
  }
  harness::emit("Table 3 instantiated: cost vs node size (alpha = 1e-4)", t,
                args.csv_prefix + "table3.csv");

  Table opt({"quantity", "value"});
  opt.add_row({"half-bandwidth point 1/alpha (Cor 6)",
               strfmt("%.0f elements", half_bandwidth_node_size(alpha))});
  opt.add_row({"optimal B-tree node (Cor 7)",
               strfmt("%.0f elements", optimal_btree_node_size(alpha))});
  const OptimalBetreeChoice c = optimal_betree_choice(alpha);
  opt.add_row({"Cor 12 fanout F = 1/(alpha ln 1/alpha)",
               strfmt("%.0f", c.fanout)});
  opt.add_row({"Cor 12 node size B = F^2",
               strfmt("%.0f elements", c.node_size)});
  opt.add_row({"Cor 12 insert speedup over optimal B-tree",
               strfmt("%.1fx (log 1/alpha = %.1f)",
                      corollary12_insert_speedup(p),
                      std::log(1.0 / alpha))});
  const double b_bt = optimal_btree_node_size(alpha);
  opt.add_row(
      {"Cor 12 query cost vs optimal B-tree",
       strfmt("%.2f vs %.2f", betree_query_cost_optimized(p, c.node_size,
                                                          c.fanout),
              btree_op_cost(p, b_bt))});
  harness::emit("Optimal parameter choices (Cor 6, 7, 12)", opt,
                args.csv_prefix + "table3_optima.csv");

  // Sensitivity headline: growing B 16x past the half-bandwidth point.
  const double b0 = 1.0 / alpha;
  Table sens({"structure", "cost @ B=1/alpha", "cost @ 16/alpha", "growth"});
  const double bt0 = btree_op_cost(p, b0), bt1 = btree_op_cost(p, 16 * b0);
  sens.add_row({"B-tree op", strfmt("%.2f", bt0), strfmt("%.2f", bt1),
                strfmt("%.1fx", bt1 / bt0)});
  const double bh0 = bhalf_tree_insert_cost(p, b0);
  const double bh1 = bhalf_tree_insert_cost(p, 16 * b0);
  sens.add_row({"B^1/2-tree insert", strfmt("%.3f", bh0),
                strfmt("%.3f", bh1), strfmt("%.1fx", bh1 / bh0)});
  const double bq0 = bhalf_tree_query_cost(p, b0);
  const double bq1 = bhalf_tree_query_cost(p, 16 * b0);
  sens.add_row({"B^1/2-tree query", strfmt("%.2f", bq0),
                strfmt("%.2f", bq1), strfmt("%.1fx", bq1 / bq0)});
  harness::emit("Sensitivity: 16x node growth (Cor 10)", sens,
                args.csv_prefix + "table3_sensitivity.csv");
  std::printf(
      "\npaper: B-tree cost grows ~linearly in B; B^1/2-tree grows ~sqrt(B) "
      "— Be-trees tolerate much larger nodes.\n");
  (void)args;
  return 0;
}
