// BENCH_concurrency: serving-layer throughput as a function of concurrent
// clients, gated against the PDAM Lemma 13 prediction.
//
// One section per client count k drives the same get-only workload through
// serve::Scheduler (via WorkloadRunner::run_concurrent) against a B-tree
// whose 16 KiB nodes each occupy exactly one die stripe of a P = 8 SSD.
// Every client keeps one op outstanding (inflight = 1), so the sweep is
// the closed-loop experiment Lemma 13 models: throughput should grow as
// Omega(k / log_{PB/k} N) until k reaches the device parallelism P, then
// flatten.
//
// CI gates this snapshot (BENCH_concurrency.json) three ways:
//   1. regression — concurrency.k<k>.sim_seconds vs the checked-in
//      baseline (bench/baselines/BENCH_concurrency_baseline.json);
//   2. model consistency — pdam_measured_ratio.k<k> must agree with
//      pdam_predicted_ratio.k<k> within 35% (the prediction is an Omega()
//      bound, not an equality), via check_bench_regression.py --no-affine;
//   3. the in-binary checks below: the same tolerance, a saturation check
//      past k = P, and digest equality across all client counts (the
//      scheduler's record/replay split must not perturb results).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "damkit.h"

namespace {

using namespace damkit;

// The device parallelism the sweep saturates; mirrored in bench_ssd_config.
constexpr double kParallelism = 8.0;
constexpr uint64_t kNodeBytes = 16 * 1024;

// Clean P = 8 SSD: four channels x two dies, one 16 KiB node per stripe so
// every leaf read occupies exactly one die for one page-service round.
sim::SsdConfig bench_ssd_config() {
  sim::SsdConfig cfg;
  cfg.name = "concurrency-testbed";
  cfg.capacity_bytes = 4ULL * 1024 * 1024 * 1024;
  cfg.channels = 4;
  cfg.dies_per_channel = 2;
  cfg.page_bytes = 4096;
  cfg.stripe_bytes = kNodeBytes;
  cfg.page_read_s = 60e-6;
  cfg.page_write_s = 250e-6;
  cfg.bus_s_per_page = 3e-6;
  cfg.command_overhead_s = 10e-6;
  cfg.link_bps = 0.0;  // die service, not the host link, bounds throughput
  return cfg;
}

uint64_t items_for(const bench::BenchArgs& args) {
  return args.quick ? 20000 : 60000;
}

kv::WorkloadSpec bench_spec(const bench::BenchArgs& args) {
  kv::WorkloadSpec spec;
  spec.key_space = items_for(args);
  spec.value_bytes = 64;
  spec.get_weight = 1.0;  // pure point queries, the Lemma 13 workload
  spec.put_weight = 0.0;
  spec.seed = args.seed + 11;
  return spec;
}

struct PointResult {
  uint64_t digest = 0;
  double concurrent_seconds = 0.0;
  double throughput_ops_per_sec = 0.0;
};

PointResult run_point(const bench::BenchArgs& args, uint64_t clients,
                      stats::MetricsRegistry& reg) {
  const sim::SsdConfig cfg = bench_ssd_config();
  sim::SsdDevice dev(cfg);
  sim::IoContext io(dev);
  kv::EngineConfig config;
  config.btree.node_bytes = kNodeBytes;
  // Room for the internal levels only: leaf reads miss, so each get costs
  // about one block IO — the per-step unit the model counts.
  config.btree.cache_bytes = 128 * 1024;
  const auto dict = kv::make_engine(kv::EngineKind::kBTree, dev, io, config);
  const kv::WorkloadSpec spec = bench_spec(args);
  harness::WorkloadRunner runner(*dict, io);
  runner.bulk_load(items_for(args), spec);

  harness::ConcurrentRunOptions copts;
  copts.clients = clients;
  copts.inflight = 1;  // one op outstanding per client: the closed loop
  copts.flush_at_end = false;
  copts.replay_device_factory = [cfg]() -> std::unique_ptr<sim::Device> {
    return std::make_unique<sim::SsdDevice>(cfg);
  };
  copts.lanes = static_cast<size_t>(cfg.total_dies());
  copts.lane_of = [cfg](uint64_t offset) {
    return static_cast<size_t>(cfg.die_of(offset));
  };
  const uint64_t ops = args.quick ? 2000 : 6000;
  const harness::ConcurrentRunResult run =
      runner.run_concurrent(spec, ops, copts);

  const std::string prefix =
      strfmt("concurrency.k%llu.", static_cast<unsigned long long>(clients));
  reg.set(prefix + "sim_seconds", sim::to_seconds(run.concurrent_elapsed));
  reg.set(prefix + "serial_seconds", sim::to_seconds(run.base.sim_elapsed));
  reg.set(prefix + "speedup", run.speedup);
  reg.set(prefix + "throughput_ops_per_sec", run.throughput_ops_per_sec);
  reg.add(prefix + "batches", run.batches);
  reg.add(prefix + "batch_ios", run.batch_ios);
  stats::export_histogram_summary(reg, prefix + "latency_ns", run.latency);

  PointResult out;
  out.digest = run.base.digest;
  out.concurrent_seconds = sim::to_seconds(run.concurrent_elapsed);
  out.throughput_ops_per_sec = run.throughput_ops_per_sec;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  if (args.metrics_json.empty()) args.metrics_json = "BENCH_concurrency.json";
  bench::banner("serving-layer throughput vs concurrent clients",
                "§8, Lemma 13 (PDAM vEB B-tree)");

  // Sweep past the device parallelism: {1, 2, 4, P, 2P, 4P}.
  const std::vector<uint64_t> ks = {1, 2, 4, 8, 16, 32};

  std::vector<stats::MetricsRegistry> per_point(ks.size());
  std::vector<PointResult> points(ks.size());
  harness::parallel_sweep(ks.size(), args.threads, [&](size_t i) {
    points[i] = run_point(args, ks[i], per_point[i]);
  });

  stats::MetricsRegistry merged;
  for (const auto& reg : per_point) merged.merge(reg);

  const double n_items = static_cast<double>(items_for(args));
  const model::PdamModel model(kParallelism, kNodeBytes);
  const double veb1 = model.veb_btree_throughput(1.0, n_items);
  const double t1 = points[0].concurrent_seconds;
  const double tolerance = 0.35;

  int failures = 0;
  Table table({"clients", "sim_seconds", "measured_x", "predicted_x",
               "p99_us"});
  for (size_t i = 0; i < ks.size(); ++i) {
    const double k = static_cast<double>(ks[i]);
    const double measured = t1 / points[i].concurrent_seconds;
    // Lemma 13 covers k <= P; past saturation the prediction stays flat.
    const double predicted =
        model.veb_btree_throughput(std::min(k, kParallelism), n_items) / veb1;
    const std::string suffix =
        strfmt("k%llu", static_cast<unsigned long long>(ks[i]));
    merged.set("pdam_measured_ratio." + suffix, measured);
    merged.set("pdam_predicted_ratio." + suffix, predicted);
    const double err = std::abs(measured - predicted) / predicted;
    if (err > tolerance) {
      std::fprintf(stderr,
                   "FAIL %s: measured %.2fx vs predicted %.2fx "
                   "(%.0f%% > %.0f%%)\n",
                   suffix.c_str(), measured, predicted, err * 100.0,
                   tolerance * 100.0);
      ++failures;
    }
    if (points[i].digest != points[0].digest) {
      std::fprintf(stderr, "FAIL %s: digest diverges from the k=1 run\n",
                   suffix.c_str());
      ++failures;
    }
    table.add_row({strfmt("%llu", static_cast<unsigned long long>(ks[i])),
                   strfmt("%.4f", points[i].concurrent_seconds),
                   strfmt("%.2f", measured), strfmt("%.2f", predicted),
                   strfmt("%.1f",
                          merged.gauge("concurrency." + suffix +
                                       ".latency_ns.p99") /
                              1000.0)});
  }

  // Saturation: going from k = P to k = 4P must not regress throughput and
  // must not exceed the P-way speedup ceiling (with 10% slack for batch
  // boundary effects).
  const size_t ip = 3, i4p = 5;  // ks[3] = P, ks[5] = 4P
  const double at_p = t1 / points[ip].concurrent_seconds;
  const double at_4p = t1 / points[i4p].concurrent_seconds;
  if (at_4p + 1e-9 < at_p) {
    std::fprintf(stderr, "FAIL saturation: k=4P speedup %.2fx < k=P %.2fx\n",
                 at_4p, at_p);
    ++failures;
  }
  if (at_4p > 1.1 * kParallelism) {
    std::fprintf(stderr, "FAIL saturation: k=4P speedup %.2fx > 1.1*P\n",
                 at_4p);
    ++failures;
  }

  std::fputs(table.to_string().c_str(), stdout);
  std::printf("saturation: %.2fx at k=P, %.2fx at k=4P (ceiling %.1fx)\n",
              at_p, at_4p, 1.1 * kParallelism);
  if (failures > 0) {
    std::fprintf(stderr, "%d gate failure(s)\n", failures);
  }

  const bool wrote = bench::write_metrics_json(merged, args.metrics_json);
  return (wrote && failures == 0) ? 0 : 1;
}
