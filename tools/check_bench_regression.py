#!/usr/bin/env python3
"""CI gate over a BENCH_smoke.json metrics snapshot.

Two checks, both against closed-form or checked-in expectations:

  1. Regression: every simulated-time gauge (name ending in `.sim_seconds`
     or `.sim_steps`) present in the baseline must exist in the current
     snapshot and must not exceed the baseline by more than --threshold
     (default 15%). Simulated time is deterministic, so any increase is a
     real modeling/code change, not noise — the slack only exists to let
     intentional small refinements land without a baseline dance. Gated
     gauges present in the current snapshot but absent from the baseline
     also fail the gate (new bench sections must be baselined to be gated).

  2. Affine split: for every device section that exports a closed-form
     prediction (`<prefix>predicted_setup_seconds_per_io`), the measured
     split must agree within --affine-tolerance (default 5%). Disable
     with --no-affine for snapshots that have no affine section
     (bench_concurrency).

  3. PDAM throughput ratio: when the snapshot carries
     `pdam_predicted_ratio.k<K>` / `pdam_measured_ratio.k<K>` gauge pairs
     (bench_concurrency's normalized throughput-vs-clients curve against
     the Lemma 13 prediction), each measured ratio must agree with its
     prediction within --pdam-tolerance (default 35% — the prediction is
     an Omega() bound, not an equality). Skipped when no such gauges
     exist.

  4. MQ time ratio: the same pair check over `mq_predicted_ratio.q<Q>` /
     `mq_measured_ratio.q<Q>` (bench_mq's per-client time curve against
     the fitted MQ model), at the tighter --mq-tolerance (default 20% —
     the MQ law is a fit, not a bound). Skipped when no such gauges
     exist.

  5. Manifest: with --manifest FILE, every gauge-family prefix listed in
     the file's "families" array must match at least one gauge in the
     CURRENT snapshot. The pair checks above auto-activate only when
     their gauges exist, so a rename or dropped export would silently
     disarm them — the manifest turns that absence into a failure.

  6. Wall-clock mode (--wallclock): for BENCH_cpu.json snapshots. Gates
     host-time gauges instead of simulated time: `.wall_ns` must not grow
     and `.ops_per_sec` must not shrink beyond --wallclock-tolerance
     (default 50% — wall clock is noisy across hosts, so the gate only
     catches collapses, not drift). Implies skipping the simulated-time,
     affine, PDAM, and MQ checks (those gauges do not exist in a CPU
     snapshot); the manifest check still applies. With --advisory,
     wall-clock failures are reported but the exit status stays 0 — the
     CI shape for shared runners whose absolute speed is not a contract.

Usage: check_bench_regression.py CURRENT.json BASELINE.json
         [--threshold 0.15] [--affine-tolerance 0.05] [--no-affine]
         [--pdam-tolerance 0.35] [--mq-tolerance 0.20] [--manifest FILE]
         [--wallclock] [--wallclock-tolerance 0.5] [--advisory]

Exit status 0 iff every check passes. Stdlib only.
"""

import argparse
import json
import sys

GATED_SUFFIXES = (".sim_seconds", ".sim_steps")


def load_gauges(path):
    with open(path) as f:
        doc = json.load(f)
    gauges = doc.get("gauges", {})
    if not isinstance(gauges, dict):
        raise SystemExit(f"{path}: 'gauges' is not an object")
    return {k: float(v) for k, v in gauges.items()}


def check_regressions(current, baseline, threshold):
    failures, report = [], []
    gated = sorted(
        k for k in baseline if k.endswith(GATED_SUFFIXES)
    )
    if not gated:
        failures.append("baseline contains no gated *.sim_seconds gauges")
    for name in gated:
        base = baseline[name]
        if name not in current:
            failures.append(f"{name}: missing from current snapshot")
            continue
        cur = current[name]
        ratio = cur / base if base > 0 else float("inf")
        status = "ok"
        if cur > base * (1.0 + threshold):
            status = "REGRESSION"
            failures.append(
                f"{name}: {cur:.6g} vs baseline {base:.6g} "
                f"({(ratio - 1.0) * 100.0:+.1f}% > +{threshold * 100.0:.0f}%)"
            )
        elif cur < base * (1.0 - threshold):
            status = "improved (consider refreshing the baseline)"
        report.append(f"  {name}: {cur:.6g} / {base:.6g} ({status})")
    # Gated gauges that only exist in the current snapshot would otherwise
    # never be checked: a new bench section must enter the baseline before
    # it can regress silently.
    ungated = sorted(
        k for k in current
        if k.endswith(GATED_SUFFIXES) and k not in baseline
    )
    for name in ungated:
        failures.append(
            f"{name}: present in current snapshot but missing from the "
            f"baseline — refresh the baseline to gate this new section"
        )
        report.append(f"  {name}: {current[name]:.6g} / (no baseline) UNGATED")
    return failures, report


WALLCLOCK_SUFFIXES = (".wall_ns", ".ops_per_sec", ".speedup_ratio")


def check_wallclock(current, baseline, tolerance):
    """Noise-tolerant host-time gate for BENCH_cpu snapshots.

    `.wall_ns` gauges are lower-is-better; `.ops_per_sec` and the micro
    sections' same-binary `.speedup_ratio` gauges are higher-is-better.
    (The micro sections' legacy_/slotted_wall_ns raw numbers are
    deliberately ungated: only their ratio is a contract.) The wide
    default tolerance makes this a collapse detector (a lost zero-copy
    path, an accidental O(n^2)), not a drift detector: wall clock varies
    across hosts and runs in ways simulated time never does.
    """
    failures, report = [], []
    gated = sorted(k for k in baseline if k.endswith(WALLCLOCK_SUFFIXES))
    if not gated:
        failures.append(
            "baseline contains no gated *.wall_ns / *.ops_per_sec gauges"
        )
    for name in gated:
        base = baseline[name]
        if name not in current:
            failures.append(f"{name}: missing from current snapshot")
            continue
        cur = current[name]
        if base <= 0:
            failures.append(f"{name}: baseline value {base:.6g} is not gateable")
            continue
        lower_better = name.endswith(".wall_ns")
        ratio = cur / base
        if lower_better:
            worse = cur > base * (1.0 + tolerance)
            improved = cur < base * (1.0 - tolerance)
        else:
            worse = cur < base * (1.0 - tolerance)
            improved = cur > base * (1.0 + tolerance)
        status = "ok"
        if worse:
            status = "REGRESSION"
            failures.append(
                f"{name}: {cur:.6g} vs baseline {base:.6g} "
                f"({(ratio - 1.0) * 100.0:+.1f}%, tolerance "
                f"{tolerance * 100.0:.0f}%, "
                f"{'lower' if lower_better else 'higher'} is better)"
            )
        elif improved:
            status = "improved (consider refreshing the baseline)"
        report.append(f"  {name}: {cur:.6g} / {base:.6g} ({status})")
    ungated = sorted(
        k for k in current
        if k.endswith(WALLCLOCK_SUFFIXES) and k not in baseline
    )
    for name in ungated:
        failures.append(
            f"{name}: present in current snapshot but missing from the "
            f"baseline — refresh the baseline to gate this new section"
        )
        report.append(f"  {name}: {current[name]:.6g} / (no baseline) UNGATED")
    return failures, report


def check_affine(current, tolerance):
    failures, report = [], []
    pairs = [
        ("setup_seconds_per_io", "predicted_setup_seconds_per_io"),
        ("transfer_seconds_per_byte", "predicted_transfer_seconds_per_byte"),
    ]
    prefixes = sorted(
        name[: -len("predicted_setup_seconds_per_io")]
        for name in current
        if name.endswith("predicted_setup_seconds_per_io")
    )
    if not prefixes:
        failures.append("no predicted_setup_seconds_per_io gauge found")
    for prefix in prefixes:
        for measured_key, predicted_key in pairs:
            measured = current.get(prefix + measured_key)
            predicted = current.get(prefix + predicted_key)
            if measured is None or predicted is None or predicted == 0:
                failures.append(f"{prefix}{measured_key}: pair incomplete")
                continue
            err = abs(measured - predicted) / predicted
            line = (
                f"  {prefix}{measured_key}: measured {measured:.6g}, "
                f"predicted {predicted:.6g} ({err * 100.0:.2f}% off)"
            )
            if err > tolerance:
                failures.append(
                    f"{prefix}{measured_key}: {err * 100.0:.2f}% from the "
                    f"closed-form prediction (> {tolerance * 100.0:.0f}%)"
                )
                line += "  FAIL"
            report.append(line)
    return failures, report


def check_ratio_pairs(current, family, tolerance, what):
    """Measured vs predicted normalized ratio per sweep point.

    Auto-activates when <family>_predicted_ratio.<P> gauges are present;
    each must pair with <family>_measured_ratio.<P> within `tolerance`.
    """
    failures, report = [], []
    prefix = f"{family}_predicted_ratio."
    points = sorted(
        name[len(prefix):] for name in current if name.startswith(prefix)
    )
    for point in points:
        predicted = current.get(f"{family}_predicted_ratio.{point}")
        measured = current.get(f"{family}_measured_ratio.{point}")
        if measured is None or not predicted:
            failures.append(
                f"{family}_measured_ratio.{point}: pair incomplete"
            )
            continue
        err = abs(measured - predicted) / predicted
        line = (
            f"  {point}: measured {measured:.4g}x, predicted "
            f"{predicted:.4g}x ({err * 100.0:.1f}% off)"
        )
        if err > tolerance:
            failures.append(
                f"{family}_measured_ratio.{point}: {err * 100.0:.1f}% from "
                f"the {what} (> {tolerance * 100.0:.0f}%)"
            )
            line += "  FAIL"
        report.append(line)
    return failures, report


def check_manifest(current, manifest_path):
    """Every gauge-family prefix in the manifest must be populated.

    The ratio-pair checks only run when their gauges exist, so a bench
    that stops exporting them would pass CI with the gate silently
    disarmed. The manifest pins which families a snapshot must carry.
    """
    with open(manifest_path) as f:
        doc = json.load(f)
    families = doc.get("families")
    if not isinstance(families, list) or not families:
        raise SystemExit(f"{manifest_path}: 'families' must be a non-empty list")
    failures, report = [], []
    for family in families:
        count = sum(1 for name in current if name.startswith(family))
        line = f"  {family}*: {count} gauge(s)"
        if count == 0:
            failures.append(
                f"manifest family '{family}' matches no gauge in the "
                f"current snapshot — an expected export vanished"
            )
            line += "  FAIL"
        report.append(line)
    return failures, report


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=0.15)
    parser.add_argument("--affine-tolerance", type=float, default=0.05)
    parser.add_argument(
        "--no-affine",
        action="store_true",
        help="skip the affine-split check (snapshot has no device section)",
    )
    parser.add_argument("--pdam-tolerance", type=float, default=0.35)
    parser.add_argument("--mq-tolerance", type=float, default=0.20)
    parser.add_argument(
        "--manifest",
        help="JSON file whose 'families' gauge-name prefixes must all be "
        "populated in the current snapshot",
    )
    parser.add_argument(
        "--wallclock",
        action="store_true",
        help="gate *.wall_ns / *.ops_per_sec host-time gauges instead of "
        "simulated time (BENCH_cpu snapshots); disables the sim-time, "
        "affine, PDAM, and MQ checks",
    )
    parser.add_argument("--wallclock-tolerance", type=float, default=0.5)
    parser.add_argument(
        "--advisory",
        action="store_true",
        help="report failures but exit 0 (CI shape for wall-clock gates on "
        "shared runners)",
    )
    args = parser.parse_args()

    current = load_gauges(args.current)
    baseline = load_gauges(args.baseline)

    if args.wallclock:
        failures, report = check_wallclock(
            current, baseline, args.wallclock_tolerance
        )
        print("wall-clock gauges vs baseline:")
        print("\n".join(report) or "  (none)")
        # Manifest failures stay hard even under --advisory: a missing
        # gauge family means the bench dropped an export (a code bug),
        # not that a shared runner was slow.
        hard_failures = []
        if args.manifest:
            man_failures, man_report = check_manifest(current, args.manifest)
            hard_failures += man_failures
            print("expected gauge families (manifest):")
            print("\n".join(man_report) or "  (none)")
        if failures or hard_failures:
            print("\nFAILED:", file=sys.stderr)
            for f in failures + hard_failures:
                print(f"  {f}", file=sys.stderr)
            if hard_failures:
                return 1
            if args.advisory:
                print(
                    "(advisory mode: wall-clock failures do not gate)",
                    file=sys.stderr,
                )
                return 0
            return 1
        print("\nall wall-clock bench gates passed")
        return 0

    reg_failures, reg_report = check_regressions(
        current, baseline, args.threshold
    )
    aff_failures, aff_report = ([], [])
    if not args.no_affine:
        aff_failures, aff_report = check_affine(
            current, args.affine_tolerance
        )
    pdam_failures, pdam_report = check_ratio_pairs(
        current, "pdam", args.pdam_tolerance, "Lemma 13 prediction"
    )
    mq_failures, mq_report = check_ratio_pairs(
        current, "mq", args.mq_tolerance, "fitted MQ model"
    )
    man_failures, man_report = ([], [])
    if args.manifest:
        man_failures, man_report = check_manifest(current, args.manifest)

    print("simulated-time gauges vs baseline:")
    print("\n".join(reg_report) or "  (none)")
    if not args.no_affine:
        print("affine-split consistency:")
        print("\n".join(aff_report) or "  (none)")
    if pdam_report or pdam_failures:
        print("PDAM throughput-vs-clients consistency:")
        print("\n".join(pdam_report) or "  (none)")
    if mq_report or mq_failures:
        print("MQ time-vs-clients consistency:")
        print("\n".join(mq_report) or "  (none)")
    if args.manifest:
        print("expected gauge families (manifest):")
        print("\n".join(man_report) or "  (none)")

    failures = (
        reg_failures + aff_failures + pdam_failures + mq_failures
        + man_failures
    )
    if failures:
        print("\nFAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        if args.advisory:
            print("(advisory mode: failures do not gate)", file=sys.stderr)
            return 0
        return 1
    print("\nall bench gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
