// damkit — command-line front end.
//
//   damkit devices                         list calibrated device profiles
//   damkit fit hdd <index>                 run §4.2 and fit the affine model
//   damkit fit ssd <index>                 run §4.1 and fit the PDAM
//   damkit fit mq                          sweep the MQ testbed, fit MqModel
//   damkit optimize <alpha> [entry_bytes]  Cor 6/7/12 design guidance
//   damkit trace stats <file.csv>          analyze a recorded IO trace
//   damkit trace replay <file.csv> <hdd-index|ssd:index>  what-if replay
//   damkit metrics [...]                   run a demo workload, dump metrics
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "damkit.h"

namespace {

using namespace damkit;

int usage() {
  std::puts(
      "usage:\n"
      "  damkit devices\n"
      "  damkit fit hdd <index 0-4>\n"
      "  damkit fit ssd <index 0-3>\n"
      "  damkit fit mq\n"
      "  damkit optimize <alpha-per-entry> [entry_bytes]\n"
      "  damkit trace stats <file.csv>\n"
      "  damkit trace replay <file.csv> <hdd:IDX | ssd:IDX>\n"
      "  damkit metrics [--engine btree|betree|opt-betree|lsm|pdam]\n"
      "                 [--codec identity|prefix|lz] [--shards N]\n"
      "                 [--device hdd|ssd|mq-ssd|hdd:IDX|ssd:IDX] [--ops N]\n"
      "                 [--json FILE] [--trace FILE]\n"
      "                 [--fault-seed SEED] [--fault-rate R]\n"
      "                 [--clients K] [--inflight D]\n"
      "                 [--queue-depth N] [--completion-mode "
      "polling|interrupt]\n"
      "                 [--wal] [--crash-at IO]\n"
      "                 [--workload ycsb-a..ycsb-f|shift|olap]\n"
      "\n"
      "  --workload swaps the demo loop for a named scenario (YCSB core\n"
      "  workloads A-F, a time-shifting Zipfian hot set, or an OLTP mix\n"
      "  with periodic OLAP scan bursts), driven through WorkloadRunner\n"
      "  with a result digest.\n"
      "  --wal wraps the engine in the write-ahead log + snapshot layer\n"
      "  (crash-consistent durability; off by default). --crash-at N kills\n"
      "  the device at its N-th checked IO, then reboots and recovers —\n"
      "  requires --wal, incompatible with --clients > 1.\n"
      "  --device mq-ssd is the multi-queue NVMe model (per-client SQ/CQ\n"
      "  pairs); --queue-depth and --completion-mode tune its admission\n"
      "  bound and completion cost (they also apply to plain ssd profiles,\n"
      "  which ignore them).");
  return 2;
}

int cmd_devices() {
  Table hdds({"#", "HDD", "year", "capacity", "rpm", "expected s (ms)",
              "t (us/4K)"});
  const auto hdd_profiles = sim::paper_hdd_profiles();
  for (size_t i = 0; i < hdd_profiles.size(); ++i) {
    const auto& h = hdd_profiles[i];
    hdds.add_row({strfmt("%zu", i), h.name, strfmt("%d", h.year),
                  format_bytes(h.capacity_bytes), strfmt("%.0f", h.rpm),
                  strfmt("%.1f", h.expected_setup_s() * 1e3),
                  strfmt("%.1f",
                         h.expected_transfer_s_per_byte() * 4096 * 1e6)});
  }
  std::fputs(hdds.to_string().c_str(), stdout);

  Table ssds({"#", "SSD", "capacity", "channels", "dies", "saturated MB/s"});
  const auto ssd_profiles = sim::paper_ssd_profiles();
  for (size_t i = 0; i < ssd_profiles.size(); ++i) {
    const auto& s = ssd_profiles[i];
    ssds.add_row({strfmt("%zu", i), s.name, format_bytes(s.capacity_bytes),
                  strfmt("%d", s.channels), strfmt("%d", s.total_dies()),
                  strfmt("%.0f", s.saturated_read_bps() / 1e6)});
  }
  std::fputs(ssds.to_string().c_str(), stdout);
  std::puts("(testbed profiles: sim::testbed_hdd_profile(), "
            "sim::testbed_ssd_profile(), sim::testbed_mq_profile())");
  return 0;
}

int cmd_fit_hdd(size_t index) {
  const auto profiles = sim::paper_hdd_profiles();
  if (index >= profiles.size()) return usage();
  std::printf("running the Table-2 microbenchmark on %s ...\n",
              profiles[index].name.c_str());
  const auto res =
      harness::run_affine_experiment(profiles[index], {});
  std::printf("affine fit: s = %.4f s, t = %.1f us/4KiB, alpha = %.4f, "
              "R^2 = %.4f\n",
              res.fit.s, res.fit.t_per_4k * 1e6, res.fit.alpha, res.fit.r2);
  std::printf("half-bandwidth point: %s\n",
              format_bytes(static_cast<uint64_t>(
                               res.fit.s / res.fit.t_per_byte))
                  .c_str());
  return 0;
}

int cmd_fit_ssd(size_t index) {
  const auto profiles = sim::paper_ssd_profiles();
  if (index >= profiles.size()) return usage();
  std::printf("running the Table-1 microbenchmark on %s (1 GiB/thread, "
              "p = 1..64) ...\n",
              profiles[index].name.c_str());
  const auto res = harness::run_pdam_experiment(profiles[index], {});
  std::printf("PDAM fit: P = %.1f, saturated = %.0f MB/s, R^2 = %.3f\n",
              res.fit.p, res.fit.saturated_mbps, res.fit.r2);
  for (const auto& s : res.samples) {
    std::printf("  p=%2d  %8.2f s\n", s.threads, s.seconds);
  }
  return 0;
}

int cmd_fit_mq() {
  const sim::SsdConfig profile = sim::testbed_mq_profile();
  std::printf("running the §4.1-style closed-loop sweep on %s "
              "(1..64 clients) ...\n",
              profile.name.c_str());
  const auto res = harness::run_mq_experiment(profile, {});
  std::printf("MQ fit:   l0 = %.0f us, beta = %.1f us/client, saturated = "
              "%.1fk IOPS, R^2 = %.4f\n",
              res.fit.l0_s * 1e6, res.fit.beta_s * 1e6,
              res.fit.saturated_iops / 1e3, res.fit.r2);
  std::printf("PDAM refit on the same sweep: P = %.1f (R^2 = %.3f) — "
              "compare the mid-range rows below\n",
              res.pdam_fit.p, res.pdam_fit.r2);
  const double t1 = res.samples.empty() ? 1.0 : res.samples[0].seconds;
  for (const auto& s : res.samples) {
    std::printf("  q=%2d  %8.3f s  (%.2fx the single-client time)\n",
                s.clients, s.seconds, s.seconds / t1);
  }
  return 0;
}

int cmd_optimize(double alpha, double entry_bytes) {
  if (alpha <= 0.0 || alpha >= 0.5) {
    std::puts("alpha must be in (0, 0.5): it is t/s per entry");
    return 2;
  }
  const auto to_bytes = [&](double elems) {
    return format_bytes(static_cast<uint64_t>(elems * entry_bytes));
  };
  std::printf("alpha = %g per entry (%g-byte entries)\n", alpha, entry_bytes);
  std::printf("half-bandwidth point (Cor 6):   %s\n",
              to_bytes(model::half_bandwidth_node_size(alpha)).c_str());
  std::printf("optimal B-tree node (Cor 7):    %s\n",
              to_bytes(model::optimal_btree_node_size(alpha)).c_str());
  const auto c = model::optimal_betree_choice(alpha);
  std::printf("Cor 12 Be-tree: fanout %.0f, node %s\n", c.fanout,
              to_bytes(c.node_size).c_str());
  model::TreeParams p;
  p.alpha = alpha;
  std::printf("insert speedup over the optimal B-tree: %.1fx\n",
              model::corollary12_insert_speedup(p));
  return 0;
}

int cmd_trace_stats(const char* path) {
  const sim::IoTrace trace = sim::IoTrace::load(path);
  std::printf("%zu IOs, %s total\n", trace.size(),
              format_bytes(trace.total_bytes()).c_str());
  std::printf("sequential fraction: %.1f%%\n",
              trace.sequential_fraction() * 100.0);
  std::printf("mean inter-IO gap:   %s\n",
              format_bytes(static_cast<uint64_t>(trace.mean_seek_bytes()))
                  .c_str());
  return 0;
}

int cmd_trace_replay(const char* path, const std::string& target) {
  const sim::IoTrace trace = sim::IoTrace::load(path);
  const auto colon = target.find(':');
  if (colon == std::string::npos) return usage();
  const std::string kind = target.substr(0, colon);
  const size_t index = std::strtoul(target.c_str() + colon + 1, nullptr, 10);
  sim::SimTime t = 0;
  std::string name;
  if (kind == "hdd") {
    const auto profiles = sim::paper_hdd_profiles();
    if (index >= profiles.size()) return usage();
    sim::HddDevice dev(profiles[index]);
    t = sim::replay_trace(dev, trace);
    name = dev.name();
  } else if (kind == "ssd") {
    const auto profiles = sim::paper_ssd_profiles();
    if (index >= profiles.size()) return usage();
    sim::SsdDevice dev(profiles[index]);
    t = sim::replay_trace(dev, trace);
    name = dev.name();
  } else {
    return usage();
  }
  std::printf("replay on %s: %.3f simulated seconds (%zu IOs)\n",
              name.c_str(), sim::to_seconds(t), trace.size());
  return 0;
}

// MQ knobs a --device spec may override. queue_depth 0 and an empty
// completion_mode keep the profile's defaults; plain SSD/HDD models
// ignore both.
struct DeviceOverrides {
  int queue_depth = 0;
  std::string completion_mode;

  // Returns false on an unknown completion mode.
  bool apply(sim::SsdConfig& profile) const {
    if (queue_depth > 0) profile.queue_depth = queue_depth;
    if (completion_mode == "polling") {
      profile.completion_mode = sim::CompletionMode::kPolling;
    } else if (completion_mode == "interrupt") {
      profile.completion_mode = sim::CompletionMode::kInterrupt;
    } else if (!completion_mode.empty()) {
      return false;
    }
    return true;
  }
};

// Build the device named by `spec`: "hdd"/"ssd"/"mq-ssd" (testbed
// profiles) or "hdd:IDX"/"ssd:IDX" (paper profiles). Returns nullptr on a
// bad spec.
std::unique_ptr<sim::Device> make_device(const std::string& spec,
                                         const DeviceOverrides& over = {}) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  if (kind == "hdd") {
    auto profile = sim::testbed_hdd_profile();
    if (colon != std::string::npos) {
      const auto profiles = sim::paper_hdd_profiles();
      const size_t index =
          std::strtoul(spec.c_str() + colon + 1, nullptr, 10);
      if (index >= profiles.size()) return nullptr;
      profile = profiles[index];
    }
    return std::make_unique<sim::HddDevice>(profile);
  }
  if (kind == "ssd") {
    auto profile = sim::testbed_ssd_profile();
    if (colon != std::string::npos) {
      const auto profiles = sim::paper_ssd_profiles();
      const size_t index =
          std::strtoul(spec.c_str() + colon + 1, nullptr, 10);
      if (index >= profiles.size()) return nullptr;
      profile = profiles[index];
    }
    if (!over.apply(profile)) return nullptr;
    return std::make_unique<sim::SsdDevice>(profile);
  }
  if (kind == "mq-ssd" && colon == std::string::npos) {
    auto profile = sim::testbed_mq_profile();
    if (!over.apply(profile)) return nullptr;
    return std::make_unique<sim::MqSsdDevice>(profile);
  }
  return nullptr;
}

// Canned demo workload: load any of the five engines (or a sharded
// composition of them) through the EngineFactory, run a mixed read/write
// phase, and checkpoint, collecting metrics from every layer it touched.
// With --fault-seed the device is wrapped in a FaultInjectingDevice and
// the workload runs through the fallible try_* APIs: every injected fault
// is either retried away by the engine or surfaced (and counted) as a
// failed operation — never an abort.
int cmd_metrics(int argc, char** argv) {
  std::string device_spec = "ssd";
  std::string json_path;
  std::string trace_path;
  kv::EngineKind kind = kv::EngineKind::kBeTree;
  // Unset keeps the factory default (kDefault → DAMKIT_CODEC → identity).
  blockdev::CodecKind codec = blockdev::CodecKind::kDefault;
  size_t shards = 1;
  uint64_t ops = 20000;
  uint64_t fault_seed = 0;  // 0 = fault injection off
  double fault_rate = 0.01;
  uint64_t clients = 1;  // > 1 serves through the concurrent scheduler
  uint64_t inflight = 4;
  DeviceOverrides overrides;  // --queue-depth / --completion-mode
  bool use_wal = false;   // wrap the engine in the durability layer
  uint64_t crash_at = 0;  // kill the device at this checked IO (0 = never)
  std::string workload;   // named preset; empty keeps the legacy demo loop
  std::optional<kv::WorkloadSpec> preset;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_next = i + 1 < argc;
    if (arg == "--device" && has_next) {
      device_spec = argv[++i];
    } else if (arg == "--engine" && has_next) {
      const std::optional<kv::EngineKind> parsed =
          kv::parse_engine_kind(argv[++i]);
      if (!parsed.has_value()) return usage();
      kind = *parsed;
    } else if (arg == "--codec" && has_next) {
      const std::optional<blockdev::CodecKind> parsed =
          blockdev::parse_codec_kind(argv[++i]);
      if (!parsed.has_value()) return usage();
      codec = *parsed;
    } else if (arg == "--shards" && has_next) {
      shards = std::strtoul(argv[++i], nullptr, 10);
      if (shards == 0) return usage();
    } else if (arg == "--ops" && has_next) {
      ops = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--json" && has_next) {
      json_path = argv[++i];
    } else if (arg == "--trace" && has_next) {
      trace_path = argv[++i];
    } else if (arg == "--fault-seed" && has_next) {
      fault_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--fault-rate" && has_next) {
      fault_rate = std::strtod(argv[++i], nullptr);
    } else if (arg == "--clients" && has_next) {
      clients = std::strtoull(argv[++i], nullptr, 10);
      if (clients == 0) return usage();
    } else if (arg == "--inflight" && has_next) {
      inflight = std::strtoull(argv[++i], nullptr, 10);
      if (inflight == 0) return usage();
    } else if (arg == "--queue-depth" && has_next) {
      overrides.queue_depth =
          static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      if (overrides.queue_depth < 1) return usage();
    } else if (arg == "--completion-mode" && has_next) {
      overrides.completion_mode = argv[++i];
      if (overrides.completion_mode != "polling" &&
          overrides.completion_mode != "interrupt") {
        return usage();
      }
    } else if (arg == "--workload" && has_next) {
      workload = argv[++i];
      preset = kv::make_workload_preset(workload);
      if (!preset.has_value()) {
        std::fprintf(stderr, "unknown --workload (want %s)\n",
                     kv::workload_preset_names());
        return usage();
      }
    } else if (arg == "--wal") {
      use_wal = true;
    } else if (arg == "--crash-at" && has_next) {
      crash_at = std::strtoull(argv[++i], nullptr, 10);
      if (crash_at == 0) return usage();
    } else {
      return usage();
    }
  }
  // A crash demo without the durability layer has nothing to recover, and
  // the concurrent scheduler drives ops from worker threads the (single
  // LSN stream) WAL wrapper does not serialize.
  if (crash_at != 0 && !use_wal) return usage();
  if (use_wal && clients > 1) return usage();
  std::unique_ptr<sim::Device> inner = make_device(device_spec, overrides);
  if (inner == nullptr || ops == 0) return usage();
  if (fault_rate < 0.0 || fault_rate > 1.0) return usage();

  std::unique_ptr<sim::FaultInjectingDevice> faulty;
  if (fault_seed != 0 || crash_at != 0) {
    sim::FaultConfig fcfg;
    fcfg.seed = fault_seed != 0 ? fault_seed : 1;
    if (fault_seed != 0) {
      fcfg.read_error_rate = fault_rate;
      fcfg.write_error_rate = fault_rate;
      fcfg.torn_write_rate = fault_rate / 4.0;
      fcfg.latency_spike_rate = fault_rate;
    }
    fcfg.crash_at_io = crash_at;
    faulty = std::make_unique<sim::FaultInjectingDevice>(*inner, fcfg);
  }
  sim::Device& dev = (faulty != nullptr)
                         ? static_cast<sim::Device&>(*faulty)
                         : *inner;

  stats::TraceBuffer events;
  dev.set_event_trace(&events);
  sim::IoContext io(dev);

  kv::EngineConfig config;
  config.betree.node_bytes = 256 * 1024;
  config.betree.cache_bytes = 4 * 1024 * 1024;
  config.codec = codec;
  kv::ShardedConfig sharded;
  sharded.shards = shards;
  const auto make_inner = [&]() {
    return kv::make_sharded_engine(kind, dev, io, config, sharded);
  };
  wal::DurabilityConfig durability;
  std::unique_ptr<kv::Dictionary> tree = make_inner();
  if (use_wal) {
    durability = wal::default_durability_config(inner->capacity_bytes());
    tree = wal::make_durable(std::move(tree), dev, io, durability);
  }
  tree->set_event_trace(&events);

  uint64_t get_hits = 0;
  uint64_t failed_ops = 0;
  std::optional<harness::ConcurrentRunResult> served;
  std::optional<harness::WorkloadRunResult> seq_run;
  if (clients > 1) {
    // Concurrent serving demo: bulk-load, then serve a mixed workload
    // through k client sessions with the requested admission depth,
    // replaying the concurrent timeline on a fresh same-spec device.
    harness::WorkloadRunner runner(*tree, io);
    kv::WorkloadSpec wspec;
    if (preset.has_value()) {
      wspec = *preset;
    } else {
      wspec.value_bytes = 100;
      wspec.get_weight = 0.4;
      wspec.put_weight = 0.4;
      wspec.delete_weight = 0.05;
      wspec.scan_weight = 0.05;
      wspec.upsert_weight = 0.1;
      wspec.scan_length = 50;
    }
    wspec.key_space = ops * 4;
    wspec.seed = 42;
    runner.bulk_load(ops / 2, wspec);
    harness::ConcurrentRunOptions copts;
    copts.clients = clients;
    copts.inflight = inflight;
    copts.fallible = true;
    copts.replay_device_factory = [&device_spec, &overrides] {
      return make_device(device_spec, overrides);
    };
    if (const auto* ssd = dynamic_cast<const sim::SsdDevice*>(inner.get())) {
      const sim::SsdConfig scfg = ssd->config();
      copts.lanes = static_cast<size_t>(scfg.total_dies());
      copts.lane_of = [scfg](uint64_t offset) {
        return static_cast<size_t>(scfg.die_of(offset));
      };
    }
    served = runner.run_concurrent(wspec, ops, copts);
    get_hits = served->base.get_hits;
    failed_ops = served->base.failed_ops;
  } else if (preset.has_value()) {
    // Named-scenario demo: bulk-load, then drive the preset through the
    // generic runner (same path the cross-engine differential pins).
    kv::WorkloadSpec wspec = *preset;
    wspec.key_space = ops * 4;
    wspec.seed = 42;
    harness::WorkloadRunner runner(*tree, io);
    runner.bulk_load(ops / 2, wspec);
    harness::WorkloadRunOptions wopts;
    wopts.fallible = true;
    seq_run = runner.run(wspec, ops, wopts);
    get_hits = seq_run->get_hits;
    failed_ops = seq_run->failed_ops;
  } else {
    harness::PutGetSpec spec;
    spec.puts = ops;
    spec.gets = ops / 4;
    spec.key_modulus = ops * 4;
    spec.value_bytes = 100;
    spec.seed = 42;
    spec.key_of = [](uint64_t k) {
      return strfmt("key%012llu", static_cast<unsigned long long>(k));
    };
    spec.scans = 1;
    spec.scan_limit = 100;
    spec.fallible = true;
    spec.tolerate_failures = faulty != nullptr;
    const harness::PutGetResult run = harness::run_put_get(*tree, spec);
    get_hits = run.get_hits;
    failed_ops = run.failed_ops;
  }
  // The armed crash can fire during the workload or inside the final
  // checkpoint below; either way the recovery path is the same.
  bool crashed = faulty != nullptr && faulty->crashed();
  if (!crashed) {
    const Status ckpt = harness::checkpoint_with_retries(*tree, 100);
    crashed = faulty != nullptr && faulty->crashed();
    if (!crashed) DAMKIT_CHECK_OK(ckpt);
  }
  if (crashed) {
    // The armed crash fired: drop the dead in-memory state, reboot the
    // device, and rebuild from the durable bytes alone — the same path
    // the crash-soak harness exercises.
    std::printf("crash: device died at checked IO %llu; rebooting and "
                "recovering from WAL + snapshot ...\n",
                static_cast<unsigned long long>(crash_at));
    tree->abandon();
    tree.reset();
    faulty->reboot();
    wal::RecoveryReport report;
    auto recovered =
        wal::DurableEngine::recover(make_inner, dev, io, durability, &report);
    DAMKIT_CHECK(recovered.ok());
    tree = std::move(*recovered);
    std::printf("recovery: %llu snapshot entries (lsn %llu), %llu WAL "
                "records replayed, durable lsn %llu, torn tail %s, "
                "%llu stale records\n",
                static_cast<unsigned long long>(report.snapshot_entries),
                static_cast<unsigned long long>(report.snapshot_lsn),
                static_cast<unsigned long long>(report.replayed_records),
                static_cast<unsigned long long>(report.durable_lsn),
                report.torn_tail ? "yes" : "no",
                static_cast<unsigned long long>(report.stale_records));
    // The checkpoint must land before the tree is destroyed (the
    // destructor treats dirty state as a programming error); the device
    // is healthy again after reboot().
    DAMKIT_CHECK_OK(harness::checkpoint_with_retries(*tree, 100));
  }

  stats::MetricsRegistry reg;
  dev.export_metrics(reg, "device.");
  tree->export_metrics(reg, std::string(kv::engine_kind_name(kind)) + ".");
  if (served.has_value()) {
    reg.set("serve.clients", static_cast<double>(clients));
    reg.set("serve.inflight", static_cast<double>(inflight));
    reg.set("serve.speedup", served->speedup);
    reg.set("serve.throughput_ops_per_sec", served->throughput_ops_per_sec);
    reg.set("serve.concurrent_seconds",
            sim::to_seconds(served->concurrent_elapsed));
    reg.add("serve.batches", served->batches);
    reg.add("serve.batch_ios", served->batch_ios);
    stats::export_histogram_summary(reg, "serve.latency_ns", served->latency);
  }

  if (served.has_value()) {
    std::printf(
        "serving: %llu ops, %llu clients (depth %llu) on %s (%s, %zu "
        "shard%s)\n",
        static_cast<unsigned long long>(ops),
        static_cast<unsigned long long>(clients),
        static_cast<unsigned long long>(inflight), dev.name().c_str(),
        std::string(kv::engine_kind_name(kind)).c_str(), shards,
        shards == 1 ? "" : "s");
    std::printf(
        "concurrent: %.3f s simulated (speedup %.2fx, %.0f ops/s), "
        "latency p50 %llu us, p99 %llu us, p999 %llu us\n",
        sim::to_seconds(served->concurrent_elapsed), served->speedup,
        served->throughput_ops_per_sec,
        static_cast<unsigned long long>(served->latency.percentile(50.0) /
                                        sim::kNsPerUs),
        static_cast<unsigned long long>(served->latency.percentile(99.0) /
                                        sim::kNsPerUs),
        static_cast<unsigned long long>(served->latency.percentile(99.9) /
                                        sim::kNsPerUs));
  } else if (seq_run.has_value()) {
    std::printf(
        "workload '%s': %llu ops (%llu puts, %llu gets [%llu hits], "
        "%llu deletes, %llu scans, %llu upserts), digest %llu on %s "
        "(%s, %zu shard%s)\n",
        workload.c_str(), static_cast<unsigned long long>(ops),
        static_cast<unsigned long long>(seq_run->puts),
        static_cast<unsigned long long>(seq_run->gets),
        static_cast<unsigned long long>(seq_run->get_hits),
        static_cast<unsigned long long>(seq_run->erases),
        static_cast<unsigned long long>(seq_run->scans),
        static_cast<unsigned long long>(seq_run->upserts),
        static_cast<unsigned long long>(seq_run->digest), dev.name().c_str(),
        std::string(kv::engine_kind_name(kind)).c_str(), shards,
        shards == 1 ? "" : "s");
  } else {
    std::printf("workload: %llu puts, %llu gets (%llu hits), 1 scan on %s "
                "(%s, %zu shard%s)\n",
                static_cast<unsigned long long>(ops),
                static_cast<unsigned long long>(ops / 4),
                static_cast<unsigned long long>(get_hits),
                dev.name().c_str(),
                std::string(kv::engine_kind_name(kind)).c_str(), shards,
                shards == 1 ? "" : "s");
  }
  if (faulty != nullptr) {
    std::printf("faults: seed %llu, %llu injected "
                "(%llu read, %llu write, %llu torn, %llu spikes), "
                "%llu retries, %llu give-ups, %llu failed ops\n",
                static_cast<unsigned long long>(fault_seed),
                static_cast<unsigned long long>(
                    faulty->fault_stats().injected_errors()),
                static_cast<unsigned long long>(
                    faulty->fault_stats().injected_read_errors),
                static_cast<unsigned long long>(
                    faulty->fault_stats().injected_write_errors),
                static_cast<unsigned long long>(
                    faulty->fault_stats().injected_torn_writes),
                static_cast<unsigned long long>(
                    faulty->fault_stats().injected_latency_spikes),
                static_cast<unsigned long long>(
                    tree->retry_counters().retries),
                static_cast<unsigned long long>(
                    tree->retry_counters().give_ups),
                static_cast<unsigned long long>(failed_ops));
  }
  std::printf("simulated time: %.3f s\n\n", sim::to_seconds(io.now()));

  Table counters({"counter", "value"});
  reg.for_each_counter([&](const std::string& name, uint64_t value) {
    counters.add_row({name, strfmt("%llu",
                                   static_cast<unsigned long long>(value))});
  });
  std::fputs(counters.to_string().c_str(), stdout);

  Table gauges({"gauge", "value"});
  reg.for_each_gauge([&](const std::string& name, double value) {
    gauges.add_row({name, strfmt("%.6g", value)});
  });
  std::fputs(gauges.to_string().c_str(), stdout);

  Table histos({"histogram", "count", "mean", "p50", "p99", "max"});
  reg.for_each_histogram([&](const std::string& name, const Histogram& h) {
    histos.add_row({name,
                    strfmt("%llu", static_cast<unsigned long long>(h.count())),
                    strfmt("%.1f", h.mean()),
                    strfmt("%llu",
                           static_cast<unsigned long long>(h.percentile(50))),
                    strfmt("%llu",
                           static_cast<unsigned long long>(h.percentile(99))),
                    strfmt("%llu",
                           static_cast<unsigned long long>(h.max()))});
  });
  std::fputs(histos.to_string().c_str(), stdout);

  if (!json_path.empty()) {
    const std::string json = reg.to_json();
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("metrics JSON written to %s\n", json_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!events.dump_jsonl(trace_path)) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    std::printf("%zu trace events written to %s\n", events.size(),
                trace_path.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "devices") return cmd_devices();
  if (cmd == "fit" && argc == 3 && std::strcmp(argv[2], "mq") == 0) {
    return cmd_fit_mq();
  }
  if (cmd == "fit" && argc == 4) {
    const size_t index = std::strtoul(argv[3], nullptr, 10);
    if (std::strcmp(argv[2], "hdd") == 0) return cmd_fit_hdd(index);
    if (std::strcmp(argv[2], "ssd") == 0) return cmd_fit_ssd(index);
  }
  if (cmd == "optimize" && (argc == 3 || argc == 4)) {
    return cmd_optimize(std::strtod(argv[2], nullptr),
                        argc == 4 ? std::strtod(argv[3], nullptr) : 128.0);
  }
  if (cmd == "trace" && argc >= 4 && std::strcmp(argv[2], "stats") == 0) {
    return cmd_trace_stats(argv[3]);
  }
  if (cmd == "trace" && argc == 5 && std::strcmp(argv[2], "replay") == 0) {
    return cmd_trace_replay(argv[3], argv[4]);
  }
  if (cmd == "metrics") return cmd_metrics(argc, argv);
  return usage();
}
