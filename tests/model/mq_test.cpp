#include "model/mq.h"

#include <gtest/gtest.h>

namespace damkit::model {
namespace {

TEST(MqModelTest, LatencyLawIsLinearInDepth) {
  const MqModel m(200e-6, 15e-6, 40000.0, 16 * 1024);
  EXPECT_DOUBLE_EQ(m.latency_s(1.0), 200e-6);
  EXPECT_DOUBLE_EQ(m.latency_s(9.0), 200e-6 + 8 * 15e-6);
  EXPECT_NEAR(m.latency_s(5.0) - m.latency_s(4.0), m.depth_slope_s(), 1e-12);
}

TEST(MqModelTest, ThroughputRisesSmoothlyThenHitsTheCeiling) {
  const MqModel m(200e-6, 15e-6, 40000.0, 16 * 1024);
  // Latency-limited regime: more clients always help, but sublinearly —
  // the smooth saturation that replaces the PDAM's sharp knee.
  EXPECT_NEAR(m.throughput_iops(1.0), 1.0 / 200e-6, 1.0);
  EXPECT_GT(m.throughput_iops(4.0), m.throughput_iops(1.0));
  EXPECT_LT(m.throughput_iops(4.0), 4.0 * m.throughput_iops(1.0));
  // Deep queues: the flash-core ceiling binds exactly.
  EXPECT_DOUBLE_EQ(m.throughput_iops(1000.0), 40000.0);
  EXPECT_DOUBLE_EQ(m.saturated_bps(), 40000.0 * 16.0 * 1024.0);
}

TEST(MqModelTest, PredictedRatioStartsAtOneAndGrowsFromTheFirstClient) {
  const MqModel m(200e-6, 15e-6, 40000.0, 16 * 1024);
  EXPECT_DOUBLE_EQ(m.predicted_ratio(1.0), 1.0);
  // The defining divergence from the PDAM: no flat segment. Adding the
  // second client already raises per-client time.
  EXPECT_GT(m.predicted_ratio(2.0), 1.0);
  EXPECT_GT(m.predicted_ratio(16.0), m.predicted_ratio(8.0));
}

TEST(MqModelTest, ZeroSlopeDegeneratesToThePdamKnee) {
  // beta = 0 makes lat(q) flat, so throughput is linear until the ceiling
  // — exactly a PDAM with P = sat · l0.
  const MqModel m(100e-6, 0.0, 50000.0, 4096);
  EXPECT_DOUBLE_EQ(m.predicted_ratio(4.0), 1.0);   // below the knee
  EXPECT_DOUBLE_EQ(m.predicted_ratio(10.0), 2.0);  // 2× past P = 5
}

TEST(MqModelDeathTest, RejectsNonPhysicalParameters) {
  EXPECT_DEATH(MqModel(0.0, 1e-6, 1000.0, 4096), "");
  EXPECT_DEATH(MqModel(1e-4, -1e-6, 1000.0, 4096), "");
  EXPECT_DEATH(MqModel(1e-4, 1e-6, 0.0, 4096), "");
}

}  // namespace
}  // namespace damkit::model
