#include "model/pdam.h"

#include <gtest/gtest.h>

#include <cmath>

namespace damkit::model {
namespace {

TEST(PdamTest, SaturatedBandwidth) {
  PdamModel m(4.0, 64 * 1024, 0.001);
  EXPECT_DOUBLE_EQ(m.saturated_bps(), 4.0 * 65536 / 0.001);
}

TEST(PdamTest, StepsFlatUpToP) {
  PdamModel m(4.0, 4096, 1.0);
  // p <= P: added threads are absorbed; per-thread time constant means
  // total steps for p*n IOs with p served per step is n.
  EXPECT_DOUBLE_EQ(m.steps_for(1000, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(m.steps_for(2000, 2.0), 1000.0);
  EXPECT_DOUBLE_EQ(m.steps_for(4000, 4.0), 1000.0);
  // p > P: linear growth.
  EXPECT_DOUBLE_EQ(m.steps_for(8000, 8.0), 2000.0);
  EXPECT_DOUBLE_EQ(m.steps_for(16000, 16.0), 4000.0);
}

TEST(PdamTest, PredictedSecondsMatchesFigure1Shape) {
  PdamModel m(4.0, 64 * 1024, 0.0005);
  const double t1 = m.predicted_seconds(1, 1000);
  const double t4 = m.predicted_seconds(4, 1000);
  const double t8 = m.predicted_seconds(8, 1000);
  EXPECT_DOUBLE_EQ(t1, t4);        // flat region
  EXPECT_DOUBLE_EQ(t8, 2.0 * t4);  // linear region
}

TEST(PdamTest, DamOverestimatesByP) {
  PdamModel m(6.0, 4096, 1.0);
  const double pdam = m.predicted_seconds(6, 100);
  const double dam = m.dam_predicted_seconds(6, 100);
  EXPECT_NEAR(dam / pdam, 6.0, 1e-9);
}

TEST(PdamTest, VebThroughputIncreasesWithClients) {
  PdamModel m(16.0, 4096, 1.0);
  const double n = 1e9;
  double prev = 0.0;
  for (double k = 1; k <= 16; k *= 2) {
    const double th = m.veb_btree_throughput(k, n);
    EXPECT_GT(th, prev);
    prev = th;
  }
}

TEST(PdamTest, VebMatchesEndpoints) {
  PdamModel m(8.0, 4096, 1.0);
  const double n = 1e8;
  // k = P: each client gets one block per step — same as small nodes.
  EXPECT_NEAR(m.veb_btree_throughput(8, n), m.small_node_throughput(8, n),
              1e-9);
  // k = 1: single client uses the whole node per step: log base PB.
  const double single = m.veb_btree_throughput(1, n);
  EXPECT_NEAR(single, 1.0 / (std::log(n) / std::log(8.0 * 4096)), 1e-9);
}

TEST(PdamTest, VebBeatsPlainBigNodesForManyClients) {
  PdamModel m(8.0, 4096, 1.0);
  const double n = 1e8;
  EXPECT_GT(m.veb_btree_throughput(8, n), m.big_plain_node_throughput(8, n));
}

TEST(PdamTest, SmallNodeThroughputSaturatesAtP) {
  PdamModel m(4.0, 4096, 1.0);
  const double n = 1e8;
  EXPECT_DOUBLE_EQ(m.small_node_throughput(4, n),
                   m.small_node_throughput(8, n));
}

TEST(PdamDeathTest, RejectsBadParams) {
  EXPECT_DEATH(PdamModel(0.0, 4096), "");
  EXPECT_DEATH(PdamModel(4.0, 0), "");
  PdamModel m(4.0, 4096);
  EXPECT_DEATH(m.veb_btree_throughput(5.0, 1e6), "");  // k > P
}

}  // namespace
}  // namespace damkit::model
