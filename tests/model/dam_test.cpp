#include "model/dam.h"

#include <gtest/gtest.h>

#include "model/affine.h"

namespace damkit::model {
namespace {

TEST(DamTest, IosForRoundsUp) {
  DamModel dam(4096);
  EXPECT_EQ(dam.ios_for(1), 1u);
  EXPECT_EQ(dam.ios_for(4096), 1u);
  EXPECT_EQ(dam.ios_for(4097), 2u);
  EXPECT_EQ(dam.ios_for(40960), 10u);
}

TEST(DamTest, CostCountsIos) {
  DamModel dam(4096);
  EXPECT_DOUBLE_EQ(dam.cost(17), 17.0);
}

TEST(DamTest, PredictedSecondsLinearInIos) {
  DamModel dam(1 << 20);
  const double one = dam.predicted_seconds(1, 0.01, 1e-8);
  EXPECT_DOUBLE_EQ(one, 0.01 + 1e-8 * (1 << 20));
  EXPECT_DOUBLE_EQ(dam.predicted_seconds(10, 0.01, 1e-8), 10 * one);
}

// Lemma 1: with B at the half-bandwidth point, the DAM approximates the
// affine cost of any single IO to within a factor of 2 in both directions.
TEST(DamTest, Lemma1FactorOfTwo) {
  const double alpha = 1e-6;
  const AffineModel affine(alpha);
  const auto b = static_cast<uint64_t>(affine.half_bandwidth_bytes());
  const DamModel dam(b);
  for (uint64_t x : {uint64_t{1}, b / 100, b / 2, b, 2 * b, 100 * b}) {
    const double affine_cost = affine.io_cost(static_cast<double>(x));
    // DAM charges 2 units per block (setup + transfer at half-bandwidth).
    const double dam_cost = 2.0 * static_cast<double>(dam.ios_for(x));
    EXPECT_LE(affine_cost, 2.0 * dam_cost) << "x=" << x;
    EXPECT_LE(dam_cost, 2.0 * affine_cost * 1.0001 + 2.0) << "x=" << x;
  }
}

TEST(DamDeathTest, ZeroBlockRejected) {
  EXPECT_DEATH(DamModel(0), "");
}

}  // namespace
}  // namespace damkit::model
